// Contamination: the water-quality cascade the paper warns about —
// "quality of water can also be compromised via contaminant propagation
// through a faulty pipe."
//
// A pipe joint fails and, during the low-pressure window before the leak
// is isolated, contaminated groundwater intrudes at the damaged node. The
// example runs hydraulic + water-quality transport to show where the
// contaminant travels, when it arrives, and how quickly the system
// flushes after the intrusion is sealed — the information a utility needs
// for a do-not-drink advisory zone.
//
// Run with: go run ./examples/contamination
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	net := aquascale.BuildEPANet()

	// The failure: a burst at J45 (08:00, isolated 10:00) whose pressure
	// transient lets contaminated groundwater intrude at J40 — the joint
	// where the west trunk main enters the grid, so the plume rides the
	// outbound flow across the network.
	j45, _ := net.NodeIndex("J45")
	j40, _ := net.NodeIndex("J40")
	burst := aquascale.ScheduledEmitter{
		Node: j45, Coeff: 2e-3,
		Start: 8 * time.Hour, End: 10 * time.Hour, // crews isolate at 10:00
	}

	fmt.Println("running 18h extended-period hydraulics (burst at J45, 08:00-10:00)...")
	ts, err := aquascale.RunEPS(net, aquascale.EPSOptions{
		Duration: 18 * time.Hour,
		Step:     15 * time.Minute,
	}, []aquascale.ScheduledEmitter{burst})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("advecting the intrusion (100 mg/L at trunk joint J40, 08:00-10:00)...")
	qr, err := aquascale.RunQuality(net, ts, []aquascale.Injection{{
		Node:          j40,
		Concentration: 100,
		Start:         8 * time.Hour,
		End:           10 * time.Hour,
	}}, aquascale.QualityOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Advisory zone: every junction that ever exceeds 10 mg/L.
	type hit struct {
		id      string
		arrival time.Duration
		peak    float64
	}
	var hits []hit
	for i := range net.Nodes {
		if net.Nodes[i].Type != aquascale.Junction || i == j40 {
			continue
		}
		if at := qr.ArrivalTime(i, 10); at >= 0 {
			hits = append(hits, hit{
				id:      net.Nodes[i].ID,
				arrival: at,
				peak:    qr.MaxAtNode(i),
			})
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].arrival < hits[b].arrival })

	fmt.Printf("\nadvisory zone: %d junctions exceed 10 mg/L\n", len(hits))
	fmt.Println("node   first exceedance  peak mg/L")
	limit := len(hits)
	if limit > 12 {
		limit = 12
	}
	for _, h := range hits[:limit] {
		fmt.Printf("%-6s %15v  %9.1f\n", h.id, h.arrival, h.peak)
	}
	if len(hits) > limit {
		fmt.Printf("... and %d more\n", len(hits)-limit)
	}

	// Flushing: concentration at the worst downstream node over time.
	if len(hits) > 0 {
		worst := hits[0]
		wIdx, _ := net.NodeIndex(worst.id)
		fmt.Printf("\nconcentration at %s over the day:\n", worst.id)
		for k, tt := range qr.Times {
			if tt%(2*time.Hour) != 0 {
				continue
			}
			c := qr.Node[k][wIdx]
			bar := ""
			for b := 0.0; b < c; b += 5 {
				bar += "#"
			}
			fmt.Printf("  %5v  %6.1f mg/L %s\n", tt, c, bar)
		}
	}
	fmt.Println("\nclean source water flushes the system once the intrusion is sealed")
}
