// Onsetwatch: noticing that something broke, before asking where.
//
// The paper assumes the leak's starting slot e.t is known and focuses on
// localization. This example closes that loop: a CUSUM change detector per
// sensor watches the live telemetry residuals (observed minus the expected
// diurnal profile) and raises a network alarm within a slot or two of a
// burst — the e.t that Phase II then consumes. It also shows the detector
// staying quiet through an uneventful day.
//
// Run with: go run ./examples/onsetwatch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	net := aquascale.BuildEPANet()
	const step = 15 * time.Minute

	// The utility's model of a normal day: a leak-free EPS run.
	clean, err := aquascale.RunEPS(net, aquascale.EPSOptions{
		Duration: 24 * time.Hour,
		Step:     step,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	placer, err := aquascale.NewPlacer(net, clean)
	if err != nil {
		log.Fatal(err)
	}
	sensors, err := placer.KMedoids(40, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}

	residuals := func(emitters []aquascale.ScheduledEmitter, seed int64) [][]float64 {
		ts, err := aquascale.RunEPS(net, aquascale.EPSOptions{
			Duration: 24 * time.Hour,
			Step:     step,
		}, emitters)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		out := make([][]float64, ts.Steps())
		for k := 0; k < ts.Steps(); k++ {
			observed := aquascale.ReadSensors(sensors,
				&aquascale.HydraulicResult{Pressure: ts.Pressure[k], Flow: ts.Flow[k]},
				aquascale.DefaultSensorNoise, rng)
			expected := aquascale.ReadSensors(sensors,
				&aquascale.HydraulicResult{Pressure: clean.Pressure[k], Flow: clean.Flow[k]},
				aquascale.SensorNoise{}, nil)
			row := make([]float64, len(observed))
			for i := range row {
				row[i] = observed[i] - expected[i]
			}
			out[k] = row
		}
		return out
	}

	// Day 1: quiet.
	fmt.Println("day 1: no failures")
	if _, found, err := aquascale.DetectOnset(residuals(nil, 7), aquascale.OnsetConfig{}); err != nil {
		log.Fatal(err)
	} else if found {
		fmt.Println("  false alarm! (should not happen)")
	} else {
		fmt.Println("  96 slots of telemetry, zero alarms")
	}

	// Day 2: a main bursts at 09:30.
	burstAt := 9*time.Hour + 30*time.Minute
	j45, _ := net.NodeIndex("J45")
	fmt.Printf("\nday 2: main bursts at %v (slot %d)\n", burstAt, int(burstAt/step))
	onset, found, err := aquascale.DetectOnset(
		residuals([]aquascale.ScheduledEmitter{{Node: j45, Coeff: 2e-3, Start: burstAt}}, 8),
		aquascale.OnsetConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		log.Fatal("burst went undetected")
	}
	alarmTime := time.Duration(onset.Slot) * step
	fmt.Printf("  network alarm at %v (slot %d), %d sensors alarmed\n",
		alarmTime, onset.Slot, onset.AlarmedSensors)
	fmt.Printf("  detection delay: %v\n", alarmTime-burstAt+step/2)
	fmt.Println("\nthe alarm slot is the e.t that Phase II localization consumes;")
	fmt.Println("compare hours-to-days for customer-complaint-driven detection")
}
