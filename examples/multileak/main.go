// Multileak: multi-source localization on the real-world-scale
// WSSC-SUBNET network.
//
// This is the paper's headline experiment in miniature: cold-weather
// multi-failures on a 299-node network, localized first from IoT data
// alone, then with ambient-temperature evidence and tweet-derived human
// reports fused in (Algorithm 2). The fused run recovers leaks the
// IoT-only run misses.
//
// Run with: go run ./examples/multileak
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	net := aquascale.BuildWSSCSubnet()
	fmt.Printf("network %s: %d nodes, %d pipes (one gravity source)\n",
		net.Name, len(net.Nodes), net.PipeCount())

	// Instrument 30% of candidate locations.
	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{
		Duration: 6 * time.Hour,
		Step:     time.Hour,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		log.Fatal(err)
	}
	sensors, err := placer.KMedoids(placer.CountForPercent(30), rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}

	leakCfg := aquascale.LeakGeneratorConfig{MinEvents: 2, MaxEvents: 5}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
		Leaks: leakCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := aquascale.NewSystem(factory, net, aquascale.SystemConfig{})

	fmt.Println("training profile (Phase I)...")
	start := time.Now()
	if err := sys.Train(500, aquascale.ProfileConfig{Technique: "svm", Seed: 7},
		rand.New(rand.NewSource(3))); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v\n\n", time.Since(start).Round(time.Millisecond))

	// A cold snap hits: pipes freeze, several burst at once.
	rng := rand.New(rand.NewSource(11))
	sc, err := sys.GenerateColdScenario(leakCfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold-weather incident: %d simultaneous bursts at %s\n\n",
		len(sc.Events), names(net, sc.LeakNodes()))

	configs := []struct {
		label string
		src   aquascale.Sources
	}{
		{"IoT only", aquascale.Sources{}},
		{"IoT + temperature", aquascale.Sources{Weather: true}},
		{"IoT + temperature + human", aquascale.Sources{Weather: true, Human: true}},
	}
	truth := sc.Labels(len(net.Nodes))
	for _, cfg := range configs {
		// Same incident, richer evidence each time.
		obsRng := rand.New(rand.NewSource(21))
		obs, err := sys.Observe(sc, aquascale.ObserveOptions{
			Sources:      cfg.src,
			ElapsedSlots: 4, // one hour of tweets at λ = 1 / 15 min
			GammaM:       60,
		}, obsRng)
		if err != nil {
			log.Fatal(err)
		}
		pred, added, err := sys.Localize(obs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> %s", cfg.label, names(net, pred.LeakNodes()))
		if len(added) > 0 {
			fmt.Printf("  (+%d from human reports)", len(added))
		}
		fmt.Printf("  score %.3f\n", aquascale.HammingScore(pred.Set(), truth))
	}
}

func names(net *aquascale.Network, nodes []int) string {
	ids := make([]string, 0, len(nodes))
	for _, v := range nodes {
		ids = append(ids, net.Nodes[v].ID)
	}
	sort.Strings(ids)
	if len(ids) == 0 {
		return "(none)"
	}
	return strings.Join(ids, ",")
}
