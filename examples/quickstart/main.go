// Quickstart: the smallest end-to-end AquaSCALE run.
//
// Builds the canonical EPA-NET network, places a modest IoT sensor set,
// trains a leak-localization profile offline (Phase I), then localizes a
// fresh multi-leak scenario from noisy sensor readings (Phase II, IoT data
// only).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	// 1. The water network: 96 nodes, 118 pipes, 2 pumps, 3 tanks.
	net := aquascale.BuildEPANet()
	fmt.Printf("network %s: %d junctions, %d pipes\n",
		net.Name, net.JunctionCount(), net.PipeCount())

	// 2. Instrument it: run a leak-free day to learn hydraulic signatures,
	// then place 60 sensors at k-medoids cluster centers.
	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{
		Duration: 6 * time.Hour,
		Step:     time.Hour,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		log.Fatal(err)
	}
	sensors, err := placer.KMedoids(60, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d IoT sensors over %d candidate locations\n",
		len(sensors), placer.CandidateCount())

	// 3. Phase I: generate leak scenarios through the hydraulic engine and
	// train one classifier per junction.
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
		Leaks: aquascale.LeakGeneratorConfig{MinEvents: 1, MaxEvents: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := factory.Generate(600, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	profile, err := aquascale.TrainProfile(ds, len(net.Nodes), aquascale.ProfileConfig{
		Technique: "svm", // any of aquascale.ClassifierNames()
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profile trained on 600 scenarios")

	// 4. Phase II: a fresh failure appears — two simultaneous leaks.
	j20, _ := net.NodeIndex("J20")
	j71, _ := net.NodeIndex("J71")
	incident := aquascale.LeakScenario{Events: []aquascale.LeakEvent{
		{Node: j20, Size: 2e-3},
		{Node: j71, Size: 1.5e-3},
	}}
	obs, err := factory.FromScenario(incident, rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}
	pred, err := profile.Predict(obs.Features)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print("localized leaks at:")
	for v, flagged := range pred {
		if flagged == 1 {
			fmt.Printf(" %s", net.Nodes[v].ID)
		}
	}
	fmt.Println()
	fmt.Printf("Hamming score vs ground truth {J20, J71}: %.3f\n",
		aquascale.HammingScore(pred, incident.Labels(len(net.Nodes))))
}
