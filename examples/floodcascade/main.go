// Floodcascade: the paper's Fig-11 storyline — from pipe failure to
// neighborhood inundation.
//
// Two mains burst on WSSC-SUBNET. The hydraulic engine computes their
// pressure-dependent discharge (eq. 1); that outflow feeds the
// shallow-water flood model over a DEM interpolated from node elevations,
// and the example prints the growing inundation as the response clock
// runs: this is what a water agency would use for damage control and
// evacuation planning.
//
// Run with: go run ./examples/floodcascade
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	net := aquascale.BuildWSSCSubnet()
	solver, err := aquascale.NewSolver(net, aquascale.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Two bursts: a large one on a distribution main, a smaller service
	// failure farther downhill.
	v1, _ := net.NodeIndex("W150")
	v2, _ := net.NodeIndex("W230")
	res, err := solver.SolveSteady(8*time.Hour, []aquascale.Emitter{
		{Node: v1, Coeff: 8e-3},
		{Node: v2, Coeff: 3e-3},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	q1, q2 := res.EmitterFlow[v1], res.EmitterFlow[v2]
	fmt.Printf("burst at %s: %.1f L/s (pressure %.1f m)\n",
		net.Nodes[v1].ID, q1*1000, res.Pressure[v1])
	fmt.Printf("burst at %s: %.1f L/s (pressure %.1f m)\n\n",
		net.Nodes[v2].ID, q2*1000, res.Pressure[v2])

	dem, err := aquascale.DEMFromNetwork(net, 40, 2)
	if err != nil {
		log.Fatal(err)
	}
	dem.AddRoughness(0.25, 5) // urban micro-topography: curbs, ditches
	sources := []aquascale.FloodSource{
		{X: net.Nodes[v1].X, Y: net.Nodes[v1].Y, Rate: func(time.Duration) float64 { return q1 }},
		{X: net.Nodes[v2].X, Y: net.Nodes[v2].Y, Rate: func(time.Duration) float64 { return q2 }},
	}

	fmt.Println("elapsed  released(m3)  area>1cm(m2)  area>10cm(m2)  peak depth(m)")
	for _, horizon := range []time.Duration{15 * time.Minute, time.Hour, 3 * time.Hour} {
		sim, err := aquascale.SimulateFlood(dem, sources, aquascale.FloodConfig{Duration: horizon})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7v  %12.0f  %12.0f  %13.0f  %13.3f\n",
			horizon, sim.InflowVolume,
			sim.FloodedArea(dem, 0.01), sim.FloodedArea(dem, 0.10),
			sim.GlobalMaxDepth())
	}
	fmt.Println("\nuse cmd/aquaflood for the full ASCII inundation map")
}
