// Coldsnap: the weather storyline behind the paper's Fig 3 and the
// freeze→burst failure model.
//
// Synthesizes a week of winter weather with a deep cold snap, tracks the
// expected pipe-break rate as temperature falls, and — once the snap
// crosses the 20 °F freeze threshold — samples which pipes freeze and
// burst, then shows how Bayesian fusion of freeze evidence (eqs. 5–6)
// sharpens uncertain leak beliefs.
//
// Run with: go run ./examples/coldsnap
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A week of winter weather; day 4 brings a polar cold snap.
	series, err := aquascale.GenerateWeatherSeries(aquascale.WeatherSeriesConfig{
		Duration:      7 * 24 * time.Hour,
		Step:          time.Hour,
		MeanF:         33,
		DiurnalAmpF:   9,
		ColdSnapStart: 3 * 24 * time.Hour,
		ColdSnapEnd:   5 * 24 * time.Hour,
		ColdSnapDropF: 22,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	breakModel := aquascale.BreakRateModel{}
	fmt.Println("day  min temp  expected breaks/day  freeze risk")
	var snapDay time.Duration = -1
	for day := 0; day < 7; day++ {
		minT := 999.0
		for h := 0; h < 24; h++ {
			t := time.Duration(day)*24*time.Hour + time.Duration(h)*time.Hour
			if v := series.At(t); v < minT {
				minT = v
			}
		}
		risk := "-"
		if minT <= aquascale.FreezeThresholdF {
			risk = "FREEZE"
			if snapDay < 0 {
				snapDay = time.Duration(day) * 24 * time.Hour
			}
		}
		fmt.Printf("%3d  %7.1fF  %18.2f  %s\n", day+1, minT, breakModel.Rate(minT), risk)
	}
	if snapDay < 0 {
		log.Fatal("no freeze day generated; adjust the cold snap")
	}

	// The snap arrives: sample which service pipes freeze and burst.
	net := aquascale.BuildEPANet()
	freeze := aquascale.DefaultFreezeModel
	frozen, burst := 0, 0
	var firstBurst string
	for _, v := range net.JunctionIndices() {
		if !freeze.SampleFrozen(series.At(snapDay+5*time.Hour), rng) {
			continue
		}
		frozen++
		if rng.Float64() < freeze.PLeakGivenFreeze {
			burst++
			if firstBurst == "" {
				firstBurst = net.Nodes[v].ID
			}
		}
	}
	fmt.Printf("\ncold snap on %s: %d/%d junction pipes frozen, %d would burst without intervention\n",
		net.Name, frozen, net.JunctionCount(), burst)
	fmt.Printf("first burst candidate: %s\n\n", firstBurst)

	// Freeze evidence sharpens uncertain IoT beliefs (Algorithm 2, l.7-11).
	fmt.Println("IoT leak belief -> fused with p(leak|freeze)=0.9 at a frozen node")
	for _, p := range []float64{0.10, 0.30, 0.45, 0.60} {
		fused := aquascale.FuseOdds(p, freeze.PLeakGivenFreeze)
		marker := ""
		if p <= 0.5 && fused > 0.5+1e-9 {
			marker = "   <- crosses the detection threshold"
		}
		fmt.Printf("  %.2f -> %.2f%s\n", p, fused, marker)
	}
}
