package aquascale_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/aquascale/aquascale"
)

// TestMetricNameStability is the observability contract test: dashboards
// and alert rules key on these exact instrument names, so renaming or
// dropping any of them is a breaking change that must show up in review.
// The golden set is everything the full pipeline (hydraulics, dataset
// factory, evaluation, serving, runtime gauges) binds on the registry.
func TestMetricNameStability(t *testing.T) {
	if testing.Short() {
		t.Skip("exercises the full pipeline")
	}
	reg := aquascale.EnableTelemetry()
	defer aquascale.DisableTelemetry()

	net := aquascale.BuildTestNet()
	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: 2 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	sensors, err := placer.KMedoids(5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	leaks := aquascale.LeakGeneratorConfig{MinEvents: 1, MaxEvents: 2}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
		Leaks: leaks,
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := aquascale.NewSystem(factory, net, aquascale.SystemConfig{})
	if err := sys.Train(40, aquascale.ProfileConfig{Technique: "linear", Seed: 5},
		rand.New(rand.NewSource(3))); err != nil {
		t.Fatalf("Train: %v", err)
	}
	// The out-of-core pipeline binds the corpus_* instruments; a
	// checkpointed streamed training binds core_checkpoint_*.
	corpusDir := t.TempDir()
	if _, err := factory.GenerateCorpus(context.Background(), 20, 6, corpusDir,
		aquascale.CorpusOptions{ShardSamples: 8}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	// A coordinator/worker run binds the distgen_* instruments.
	if _, err := aquascale.GenerateCorpusDistributed(context.Background(), factory, 20, 6, t.TempDir(),
		aquascale.DistGenOptions{ShardSamples: 8, Workers: 2}); err != nil {
		t.Fatalf("GenerateCorpusDistributed: %v", err)
	}
	corpus, err := aquascale.OpenCorpus(corpusDir)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}
	if _, err := aquascale.TrainProfileFromCorpus(context.Background(), corpus, len(net.Nodes),
		aquascale.ProfileConfig{Technique: "linear", Seed: 5},
		aquascale.CorpusTrainOptions{CheckpointPath: filepath.Join(corpusDir, "train.ckpt")}); err != nil {
		t.Fatalf("TrainProfileFromCorpus: %v", err)
	}
	if _, err := sys.Evaluate(2, leaks, aquascale.ObserveOptions{}, rand.New(rand.NewSource(4))); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// A nonzero fault probability makes serve.New build the injector, which
	// is what binds the faults_* instruments.
	server, err := aquascale.NewServer(sys, aquascale.ServeConfig{
		Workers: 1,
		Faults:  aquascale.FaultConfig{RequestSlow: 0.001, RequestDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer server.Shutdown(context.Background())
	stop := reg.StartRuntimeGauges(time.Hour)
	defer stop()

	snap := reg.Snapshot()
	var got []string
	for name := range snap.Counters {
		got = append(got, name)
	}
	for name := range snap.Gauges {
		got = append(got, name)
	}
	for name := range snap.Histograms {
		got = append(got, name)
	}
	for name := range snap.Spans {
		got = append(got, name)
	}
	sort.Strings(got)

	want := []string{
		"core_checkpoint_loads_total",
		"core_checkpoint_saves_total",
		"core_eval_retries_total",
		"core_eval_scenarios_per_second",
		"core_eval_scenarios_total",
		"core_eval_skipped_total",
		"core_eval_worker_busy_seconds_total",
		"core_evaluate_parallel",
		"core_observe_seconds",
		"corpus_bytes_written_total",
		"corpus_samples_read_total",
		"corpus_samples_written_total",
		"corpus_shard_write_seconds",
		"corpus_shards_skipped_total",
		"corpus_shards_verified_total",
		"corpus_shards_written_total",
		"dataset_bad_features_total",
		"dataset_baseline_cache_hits_total",
		"dataset_baseline_cache_misses_total",
		"dataset_retries_total",
		"dataset_sample_seconds",
		"dataset_samples_generated_total",
		"dataset_session_reuse_total",
		"dataset_sessions_opened_total",
		"dataset_skipped_total",
		"distgen_leases_expired_total",
		"distgen_merge_seconds",
		"distgen_ranges_dispatched_total",
		"distgen_ranges_reassigned_total",
		"distgen_shards_staged_total",
		"distgen_workers_joined_total",
		"faults_forced_nonconvergence_total",
		"faults_request_failed_total",
		"faults_request_slow_total",
		"faults_sensor_dropouts_total",
		"faults_sensor_nan_total",
		"faults_sensor_stuck_total",
		"hydraulic_convergence_failures_total",
		"hydraulic_eps_steps_total",
		"hydraulic_factor_fill_ratio",
		"hydraulic_injected_failures_total",
		"hydraulic_iterations_per_solve",
		"hydraulic_linear_solve_seconds",
		"hydraulic_newton_iterations_total",
		"hydraulic_numeric_factorizations_total",
		"hydraulic_retries_total",
		"hydraulic_retry_recoveries_total",
		"hydraulic_solves_total",
		"hydraulic_symbolic_factorizations_total",
		"hydraulic_warm_restarts_total",
		"runtime_gc_pause_total_seconds",
		"runtime_goroutines",
		"runtime_heap_inuse_bytes",
		"runtime_uptime_seconds",
		"serve_flat_eval_seconds",
		"serve_inflight_jobs",
		"serve_jobs_done_total",
		"serve_jobs_failed_total",
		"serve_jobs_submitted_total",
		"serve_observe_batched_jobs_total",
		"serve_observe_batches_total",
		"serve_observe_fast_path_total",
		"serve_profile_swaps_total",
		"serve_queue_depth",
		"serve_rejected_draining_total",
		"serve_rejected_queue_full_total",
		"serve_request_seconds",
		"serve_traces_captured_total",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("instrument name set drifted.\ngot:  %q\nwant: %q", got, want)
		for _, n := range diffStrings(want, got) {
			t.Errorf("missing (renamed or dropped — breaks dashboards): %s", n)
		}
		for _, n := range diffStrings(got, want) {
			t.Errorf("unexpected (new instrument? add it to the golden set): %s", n)
		}
	}
}

// diffStrings returns the elements of a not present in b.
func diffStrings(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}
