package aquascale_test

import (
	"io"
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale"
	"github.com/aquascale/aquascale/internal/bench"
)

// benchScale keeps every figure benchmark tractable under `go test
// -bench=.` on a laptop. The aquabench command runs the same generators at
// larger scales (-train/-test flags); EXPERIMENTS.md records paper-scale
// comparisons.
var benchScale = bench.Scale{
	TrainSamples:  150,
	TestScenarios: 20,
	Seed:          1,
	Technique:     "svm",
}

// scoreOfFirstSeries extracts a headline metric from a figure for
// b.ReportMetric: the mean Y of the figure's last series (usually the
// fused or hybrid variant).
func scoreOfFirstSeries(fig *bench.Figure) float64 {
	if len(fig.Series) == 0 {
		return 0
	}
	s := fig.Series[len(fig.Series)-1]
	if len(s.Points) == 0 {
		return 0
	}
	total := 0.0
	for _, p := range s.Points {
		total += p.Y
	}
	return total / float64(len(s.Points))
}

func runFigureBenchmark(b *testing.B, id string) {
	b.Helper()
	runner, ok := bench.Experiments()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		fig, err := runner(benchScale)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatalf("render %s: %v", id, err)
		}
		if score := scoreOfFirstSeries(fig); score > 0 {
			b.ReportMetric(score, "score")
		}
	}
}

// One benchmark per paper table/figure (see DESIGN.md experiment index).

func BenchmarkFig2PressureDistance(b *testing.B)    { runFigureBenchmark(b, "fig2") }
func BenchmarkFig3BreaksVsTemperature(b *testing.B) { runFigureBenchmark(b, "fig3") }
func BenchmarkFig6MLComparison(b *testing.B)        { runFigureBenchmark(b, "fig6") }
func BenchmarkFig7HybridSweep(b *testing.B)         { runFigureBenchmark(b, "fig7ab") }
func BenchmarkFig7cFusionIncrement(b *testing.B)    { runFigureBenchmark(b, "fig7c") }
func BenchmarkFig8WSSCSurface(b *testing.B)         { runFigureBenchmark(b, "fig8") }
func BenchmarkFig9Coarseness(b *testing.B)          { runFigureBenchmark(b, "fig9") }
func BenchmarkFig10MaxEvents(b *testing.B)          { runFigureBenchmark(b, "fig10") }
func BenchmarkFig11Flood(b *testing.B)              { runFigureBenchmark(b, "fig11") }

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationPlacement(b *testing.B)   { runFigureBenchmark(b, "ablation-placement") }
func BenchmarkAblationBayesFusion(b *testing.B) { runFigureBenchmark(b, "ablation-bayes") }
func BenchmarkAblationGamma(b *testing.B)       { runFigureBenchmark(b, "ablation-gamma") }
func BenchmarkAblationBeta(b *testing.B)        { runFigureBenchmark(b, "ablation-beta") }
func BenchmarkAblationDropout(b *testing.B)     { runFigureBenchmark(b, "ablation-dropout") }

// Substrate micro-benchmarks: the hot paths behind every experiment.

func BenchmarkSteadySolveEPANet(b *testing.B) {
	net := aquascale.BuildEPANet()
	solver, err := aquascale.NewSolver(net, aquascale.SolverOptions{})
	if err != nil {
		b.Fatal(err)
	}
	j, _ := net.NodeIndex("J45")
	emitters := []aquascale.Emitter{{Node: j, Coeff: 2e-3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.SolveSteady(8*time.Hour, emitters, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadySolveWSSC(b *testing.B) {
	net := aquascale.BuildWSSCSubnet()
	solver, err := aquascale.NewSolver(net, aquascale.SolverOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.SolveSteady(8*time.Hour, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEPSDayEPANet(b *testing.B) {
	net := aquascale.BuildEPANet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aquascale.RunEPS(net, aquascale.EPSOptions{
			Duration: 24 * time.Hour,
			Step:     15 * time.Minute,
		}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	net := aquascale.BuildEPANet()
	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		b.Fatal(err)
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		b.Fatal(err)
	}
	sensors, err := placer.KMedoids(40, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := factory.Generate(50, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileInference(b *testing.B) {
	net := aquascale.BuildEPANet()
	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		b.Fatal(err)
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		b.Fatal(err)
	}
	sensors, err := placer.KMedoids(40, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
	})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := factory.Generate(200, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	profile, err := aquascale.TrainProfile(ds, len(net.Nodes), aquascale.ProfileConfig{Technique: "svm", Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	features := ds.Samples[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Predict(features); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloodHour(b *testing.B) {
	net := aquascale.BuildTestNet()
	dem, err := aquascale.DEMFromNetwork(net, 50, 2)
	if err != nil {
		b.Fatal(err)
	}
	src := []aquascale.FloodSource{{
		X: net.Nodes[1].X, Y: net.Nodes[1].Y,
		Rate: func(time.Duration) float64 { return 0.05 },
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aquascale.SimulateFlood(dem, src, aquascale.FloodConfig{Duration: time.Hour}); err != nil {
			b.Fatal(err)
		}
	}
}
