module github.com/aquascale/aquascale

go 1.22
