// Command aquabench regenerates the paper's evaluation figures. Every
// table and figure of the evaluation section has an experiment id; run one
// with -run <id> or all of them with -run all. Experiment sizes default to
// a CI-friendly scale; -train/-test raise them toward the paper's
// 20000/2000.
//
// Examples:
//
//	aquabench -list
//	aquabench -run fig6
//	aquabench -run all -train 2000 -test 200 -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aquabench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list       = flag.Bool("list", false, "list experiment ids and exit")
		runID      = flag.String("run", "", "experiment id to run, or 'all'")
		train      = flag.Int("train", 0, "training scenarios (0 = default 600; paper 20000)")
		test       = flag.Int("test", 0, "test scenarios (0 = default 60; paper 2000)")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "evaluation worker goroutines (0 = all CPUs, 1 = serial; figures are identical for any value at a fixed seed)")
		retries    = flag.Int("retries", 0, "solver retry budget on non-convergence (stepped relaxation + warm restart; 0 = no retry)")
		failFast   = flag.Bool("fail-fast", false, "abort an experiment on the first failed scenario instead of skipping it")
		fDropout   = flag.Float64("fault-dropout", 0, "injected per-sensor dropout probability (reading lost, sanitized to a neutral feature)")
		fStuck     = flag.Float64("fault-stuck", 0, "injected per-sensor stuck-at probability (sensor repeats its pre-leak reading)")
		fNaN       = flag.Float64("fault-nan", 0, "injected per-sensor NaN-reading probability")
		fSolver    = flag.Float64("fault-solver", 0, "injected per-solve forced non-convergence probability")
		fAttempts  = flag.Int("fault-solver-attempts", 1, "forced failures per hit solve (above -retries makes the scenario skip)")
		outPath    = flag.String("out", "", "also write results to this file")
		metricsOut = flag.String("metrics-out", "", "write a JSON telemetry snapshot to this file on exit")
		httpAddr   = flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
		progress   = flag.Duration("progress", 0, "print a telemetry heartbeat to stderr at this interval (e.g. 10s; 0 = off)")
	)
	technique := aquascale.TechniqueHybridRSL
	flag.TextVar(&technique, "technique", technique, "profile classifier for fusion experiments")
	flag.Parse()

	if *list {
		for _, id := range aquascale.ExperimentIDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *runID == "" {
		return fmt.Errorf("nothing to do: pass -run <id> or -list")
	}

	// Telemetry is always on in the harness: the per-figure timing lines
	// are read from its spans, so console output and -metrics-out report
	// the same numbers. Enabling it does not change figure values (pinned
	// by TestTelemetryDoesNotChangeScores).
	reg := aquascale.EnableTelemetry()
	if *httpAddr != "" {
		srv, addr, err := reg.StartServer(*httpAddr)
		if err != nil {
			return fmt.Errorf("telemetry endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	if *progress > 0 {
		stop := reg.StartHeartbeat(os.Stderr, *progress)
		defer stop()
	}
	if *metricsOut != "" {
		defer func() {
			if err := reg.WriteJSONFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "aquabench: metrics-out:", err)
			}
		}()
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	scale := aquascale.ExperimentScale{
		TrainSamples:  *train,
		TestScenarios: *test,
		Seed:          *seed,
		Technique:     technique,
		Workers:       *workers,
		Retries:       *retries,
		FailFast:      *failFast,
		Faults: aquascale.FaultConfig{
			Dropout:            *fDropout,
			Stuck:              *fStuck,
			NaN:                *fNaN,
			SolverFail:         *fSolver,
			SolverFailAttempts: *fAttempts,
		},
	}
	effectiveWorkers := *workers
	if effectiveWorkers <= 0 {
		effectiveWorkers = runtime.NumCPU()
	}
	experiments := aquascale.Experiments()

	var ids []string
	if *runID == "all" {
		ids = aquascale.ExperimentIDs()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiments[id]; !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		fig, err := experiments[id](scale)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if err := fig.Render(out); err != nil {
			return err
		}
		// The figure ran inside its telemetry span; report that span's
		// measurement so this line and the metrics JSON agree exactly.
		elapsed := reg.SpanStats(aquascale.ExperimentSpanName(id)).Last()
		fmt.Fprintf(out, "[%s completed in %v, workers=%d]\n\n",
			id, elapsed.Round(time.Millisecond), effectiveWorkers)
	}
	return nil
}
