// Command aquanet inspects and converts water networks: element counts,
// pipe statistics, topology metrics, hydraulic health checks, and INP
// export of the built-in networks.
//
// Examples:
//
//	aquanet -net wssc -stats
//	aquanet -net epanet -check
//	aquanet -net epanet -map
//	aquanet -net epanet -export epanet.inp
//	aquanet -net my-network.inp -stats
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aquanet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		netName = flag.String("net", "epanet", "network: epanet, wssc, test, or a path to an INP file")
		stats   = flag.Bool("stats", false, "print element counts and pipe statistics")
		check   = flag.Bool("check", false, "validate and run a hydraulic health check")
		showMap = flag.Bool("map", false, "draw an ASCII plan of the network (the paper's Fig 5)")
		export  = flag.String("export", "", "write the network as an INP file")
	)
	flag.Parse()
	if !*stats && !*check && !*showMap && *export == "" {
		*stats = true
	}

	net, err := loadNetwork(*netName)
	if err != nil {
		return err
	}
	if *stats {
		printStats(net)
	}
	if *check {
		if err := healthCheck(net); err != nil {
			return err
		}
	}
	if *showMap {
		printMap(net)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		if err := aquascale.WriteINP(f, net); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *export)
	}
	return nil
}

func loadNetwork(name string) (*aquascale.Network, error) {
	switch name {
	case "epanet":
		return aquascale.BuildEPANet(), nil
	case "wssc":
		return aquascale.BuildWSSCSubnet(), nil
	case "test":
		return aquascale.BuildTestNet(), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return aquascale.ReadINP(f)
}

func printStats(net *aquascale.Network) {
	fmt.Printf("network: %s\n", net.Name)
	fmt.Printf("  nodes:      %d (%d junctions, %d reservoirs, %d tanks)\n",
		len(net.Nodes), net.JunctionCount(), net.ReservoirCount(), net.TankCount())
	fmt.Printf("  links:      %d (%d pipes, %d pumps, %d valves)\n",
		len(net.Links), net.PipeCount(), net.PumpCount(), net.ValveCount())
	fmt.Printf("  base demand: %.1f L/s total\n", net.TotalBaseDemand()*1000)

	// Pipe statistics.
	var lengths, diameters []float64
	totalLen := 0.0
	for i := range net.Links {
		l := &net.Links[i]
		if l.Type != aquascale.Pipe {
			continue
		}
		lengths = append(lengths, l.Length)
		diameters = append(diameters, l.Diameter)
		totalLen += l.Length
	}
	if len(lengths) > 0 {
		fmt.Printf("  pipe length: %.1f km total, median %.0f m\n", totalLen/1000, median(lengths))
		fmt.Printf("  diameters:   %.0f-%.0f mm, median %.0f mm\n",
			minOf(diameters)*1000, maxOf(diameters)*1000, median(diameters)*1000)
	}

	// Topology.
	g := net.Graph()
	degrees := make([]float64, 0, len(net.Nodes))
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		degrees = append(degrees, float64(d))
		if d > maxDeg {
			maxDeg = d
		}
	}
	loops := len(net.Links) - (len(net.Nodes) - 1)
	fmt.Printf("  topology:    mean degree %.2f, max %d, %d independent loops, connected=%v\n",
		mean(degrees), maxDeg, loops, g.Connected())

	// Elevation range.
	minE, maxE := math.Inf(1), math.Inf(-1)
	for i := range net.Nodes {
		minE = math.Min(minE, net.Nodes[i].Elevation)
		maxE = math.Max(maxE, net.Nodes[i].Elevation)
	}
	fmt.Printf("  elevations:  %.1f-%.1f m\n", minE, maxE)
}

func healthCheck(net *aquascale.Network) error {
	if err := net.Validate(); err != nil {
		return fmt.Errorf("validation: %w", err)
	}
	fmt.Println("validation: ok")

	solver, err := aquascale.NewSolver(net, aquascale.SolverOptions{})
	if err != nil {
		return err
	}
	worstP, worstID := math.Inf(1), ""
	for _, at := range []time.Duration{3 * time.Hour, 8 * time.Hour, 18 * time.Hour} {
		res, err := solver.SolveSteady(at, nil, nil)
		if err != nil {
			return fmt.Errorf("steady solve at %v: %w", at, err)
		}
		low := 0
		for i := range net.Nodes {
			if net.Nodes[i].Type != aquascale.Junction {
				continue
			}
			if res.Pressure[i] < worstP {
				worstP, worstID = res.Pressure[i], net.Nodes[i].ID
			}
			if res.Pressure[i] < 15 {
				low++
			}
		}
		fmt.Printf("hydraulics at %v: converged in %d iterations, %d junctions below 15 m\n",
			at, res.Iterations, low)
	}
	fmt.Printf("worst junction pressure: %.1f m at %s\n", worstP, worstID)
	return nil
}

// printMap draws the node layout: o junction, R reservoir, T tank, with
// P/V marking pump/valve midpoints.
func printMap(net *aquascale.Network) {
	const cols, rows = 78, 26
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := range net.Nodes {
		minX = math.Min(minX, net.Nodes[i].X)
		maxX = math.Max(maxX, net.Nodes[i].X)
		minY = math.Min(minY, net.Nodes[i].Y)
		maxY = math.Max(maxY, net.Nodes[i].Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	plot := func(x, y float64, ch byte) {
		c := int((x - minX) / spanX * float64(cols-1))
		r := rows - 1 - int((y-minY)/spanY*float64(rows-1))
		if grid[r][c] == ' ' || ch != 'o' {
			grid[r][c] = ch
		}
	}
	for i := range net.Links {
		l := &net.Links[i]
		var ch byte
		switch l.Type {
		case aquascale.Pump:
			ch = 'P'
		case aquascale.Valve:
			ch = 'V'
		default:
			continue
		}
		plot((net.Nodes[l.From].X+net.Nodes[l.To].X)/2, (net.Nodes[l.From].Y+net.Nodes[l.To].Y)/2, ch)
	}
	for i := range net.Nodes {
		n := &net.Nodes[i]
		switch n.Type {
		case aquascale.Reservoir:
			plot(n.X, n.Y, 'R')
		case aquascale.Tank:
			plot(n.X, n.Y, 'T')
		default:
			plot(n.X, n.Y, 'o')
		}
	}
	fmt.Printf("plan of %s (o junction, R reservoir, T tank, P pump, V valve):\n", net.Name)
	for _, row := range grid {
		line := string(row)
		for len(line) > 0 && line[len(line)-1] == ' ' {
			line = line[:len(line)-1]
		}
		fmt.Println(line)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, v := range xs {
		m = math.Min(m, v)
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range xs {
		m = math.Max(m, v)
	}
	return m
}
