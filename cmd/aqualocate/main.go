// Command aqualocate demonstrates the full two-phase AquaSCALE workflow
// end to end: train a profile offline (Phase I), then simulate live
// cold-weather failures and localize them online by fusing IoT readings
// with weather evidence and tweet-derived human reports (Phase II).
//
// Example:
//
//	aqualocate -net epanet -iot 30 -samples 800 -scenarios 5 -sources iot,temp,human
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aqualocate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		netName   = flag.String("net", "epanet", "network: epanet, wssc or test")
		iotPct    = flag.Float64("iot", 30, "IoT deployment percentage")
		samples   = flag.Int("samples", 800, "Phase-I training scenarios")
		scenarios = flag.Int("scenarios", 5, "live scenarios to localize")
		sources   = flag.String("sources", "iot,temp,human", "comma list of sources: iot[,temp][,human]")
		slots     = flag.Int("slots", 4, "elapsed 15-minute slots since leak onset")
		gamma     = flag.Float64("gamma", 60, "tweet coarseness gamma in meters")
		seed      = flag.Int64("seed", 1, "random seed")
		profile   = flag.String("profile", "", "load a pre-trained profile (from aquatrain -save) instead of training")
	)
	technique := aquascale.TechniqueHybridRSL
	flag.TextVar(&technique, "technique", technique, "profile classifier")
	flag.Parse()

	var src aquascale.Sources
	for _, s := range strings.Split(*sources, ",") {
		switch strings.TrimSpace(s) {
		case "iot", "":
			// always on
		case "temp", "weather":
			src.Weather = true
		case "human", "twitter":
			src.Human = true
		default:
			return fmt.Errorf("unknown source %q", s)
		}
	}

	net, err := buildNetwork(*netName)
	if err != nil {
		return err
	}
	fmt.Printf("== Phase I: offline profile training (%s, %.0f%% IoT, %s) ==\n",
		net.Name, *iotPct, technique)

	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		return err
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		return err
	}
	sensors, err := placer.KMedoids(placer.CountForPercent(*iotPct), rand.New(rand.NewSource(*seed+3)))
	if err != nil {
		return err
	}
	leakCfg := aquascale.LeakGeneratorConfig{MinEvents: 1, MaxEvents: 5}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
		Leaks: leakCfg,
	})
	if err != nil {
		return err
	}
	sys := aquascale.NewSystem(factory, net, aquascale.SystemConfig{})
	if *profile != "" {
		f, err := os.Open(*profile)
		if err != nil {
			return err
		}
		loaded, err := aquascale.LoadProfile(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load profile: %w", err)
		}
		if err := sys.SetProfile(loaded); err != nil {
			return err
		}
		fmt.Printf("loaded %s profile from %s\n\n", loaded.Technique(), *profile)
	} else {
		t0 := time.Now()
		if err := sys.Train(*samples, aquascale.ProfileConfig{Technique: technique, Seed: *seed + 77},
			rand.New(rand.NewSource(*seed+11))); err != nil {
			return err
		}
		fmt.Printf("profile trained on %d scenarios in %v\n\n", *samples, time.Since(t0).Round(time.Millisecond))
	}

	fmt.Printf("== Phase II: online localization (sources: %s) ==\n", *sources)
	rng := rand.New(rand.NewSource(*seed + 101))
	totalScore := 0.0
	for i := 0; i < *scenarios; i++ {
		sc, err := sys.GenerateColdScenario(leakCfg, rng)
		if err != nil {
			return err
		}
		obs, err := sys.Observe(sc, aquascale.ObserveOptions{
			Sources:      src,
			ElapsedSlots: *slots,
			GammaM:       *gamma,
		}, rng)
		if err != nil {
			return err
		}
		t0 := time.Now()
		pred, added, err := sys.Localize(obs)
		if err != nil {
			return err
		}
		latency := time.Since(t0)

		truth := nodeIDs(net, sc.LeakNodes())
		found := nodeIDs(net, pred.LeakNodes())
		score := aquascale.HammingScore(pred.Set(), sc.Labels(len(net.Nodes)))
		totalScore += score
		fmt.Printf("scenario %d:\n", i+1)
		fmt.Printf("  true leaks:      %s\n", strings.Join(truth, ", "))
		fmt.Printf("  localized:       %s\n", strings.Join(found, ", "))
		if len(added) > 0 {
			fmt.Printf("  from human input: %s\n", strings.Join(nodeIDs(net, added), ", "))
		}
		fmt.Printf("  Hamming score %.3f, inference latency %v\n", score, latency.Round(time.Microsecond))
	}
	fmt.Printf("\nmean Hamming score: %.3f over %d scenarios\n", totalScore/float64(*scenarios), *scenarios)
	return nil
}

func nodeIDs(net *aquascale.Network, nodes []int) []string {
	out := make([]string, 0, len(nodes))
	for _, v := range nodes {
		out = append(out, net.Nodes[v].ID)
	}
	sort.Strings(out)
	if len(out) == 0 {
		out = append(out, "(none)")
	}
	return out
}

func buildNetwork(name string) (*aquascale.Network, error) {
	switch name {
	case "epanet":
		return aquascale.BuildEPANet(), nil
	case "wssc":
		return aquascale.BuildWSSCSubnet(), nil
	case "test":
		return aquascale.BuildTestNet(), nil
	default:
		return nil, fmt.Errorf("unknown network %q (want epanet, wssc or test)", name)
	}
}
