// Command aquatrain runs Phase I of the AquaSCALE workflow: place IoT
// sensors, generate a leak-scenario dataset through the hydraulic engine,
// train a profile model with a chosen plug-and-play technique, and report
// held-out localization quality.
//
// Examples:
//
//	aquatrain -net epanet -iot 30 -samples 2000 -technique hybrid-rsl
//	aquatrain -net wssc -iot 10 -samples 500 -technique rf -max-leaks 5
//
// Out-of-core mode streams the scenario corpus through disk shards
// instead of holding it in RAM, and both generation and training are
// restartable after an interrupt:
//
//	aquatrain -net wssc -samples 20000 -corpus-out /data/corpus
//	aquatrain -net wssc -samples 20000 -corpus-out /data/corpus -resume
//	aquatrain -net wssc -samples 20000 -corpus-in /data/corpus
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aquatrain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		netName    = flag.String("net", "epanet", "network: epanet, wssc or test")
		iotPct     = flag.Float64("iot", 30, "IoT deployment percentage of |V|+|E| candidate locations")
		samples    = flag.Int("samples", 1000, "training scenarios (paper: 20000)")
		testN      = flag.Int("test", 100, "held-out test scenarios (paper: 2000)")
		minLeaks   = flag.Int("min-leaks", 1, "minimum concurrent leak events")
		maxLeaks   = flag.Int("max-leaks", 5, "maximum concurrent leak events")
		seed       = flag.Int64("seed", 1, "random seed")
		retries    = flag.Int("retries", 0, "solver retry budget on non-convergence (stepped relaxation + warm restart; 0 = no retry)")
		failFast   = flag.Bool("fail-fast", false, "abort dataset generation on the first failed scenario instead of skipping it")
		fDropout   = flag.Float64("fault-dropout", 0, "injected per-sensor dropout probability (reading lost, sanitized to a neutral feature)")
		fStuck     = flag.Float64("fault-stuck", 0, "injected per-sensor stuck-at probability (sensor repeats its pre-leak reading)")
		fNaN       = flag.Float64("fault-nan", 0, "injected per-sensor NaN-reading probability")
		fSolver    = flag.Float64("fault-solver", 0, "injected per-solve forced non-convergence probability")
		fAttempts  = flag.Int("fault-solver-attempts", 1, "forced failures per hit solve (above -retries makes the scenario skip)")
		corpusOut  = flag.String("corpus-out", "", "generate the training corpus as shards in this directory and train from the stream (out-of-core)")
		corpusIn   = flag.String("corpus-in", "", "train from an existing corpus directory (skips generation; must match -net/-iot/-seed and the generation flags)")
		shardSamps = flag.Int("shard-samples", 1024, "scenarios per corpus shard (with -corpus-out)")
		resume     = flag.Bool("resume", false, "resume an interrupted corpus run: keep verified shards and the training checkpoint")
		savePath   = flag.String("save", "", "write the trained profile to this file (gob)")
		metricsOut = flag.String("metrics-out", "", "write a JSON telemetry snapshot to this file on exit")
		httpAddr   = flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
		progress   = flag.Duration("progress", 0, "print a telemetry heartbeat to stderr at this interval (e.g. 10s; 0 = off)")
	)
	technique := aquascale.TechniqueHybridRSL
	flag.TextVar(&technique, "technique", technique,
		"classifier: "+strings.Join(aquascale.ClassifierNames(), ", "))
	flag.Parse()
	if *corpusOut != "" && *corpusIn != "" {
		return fmt.Errorf("-corpus-out and -corpus-in are mutually exclusive")
	}

	// Enable instrumentation before any solver or factory is built, so
	// their telemetry handles bind to this registry. Enabling never
	// changes results at a fixed seed.
	reg := aquascale.EnableTelemetry()
	if *httpAddr != "" {
		srv, addr, err := reg.StartServer(*httpAddr)
		if err != nil {
			return fmt.Errorf("telemetry endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	if *progress > 0 {
		stop := reg.StartHeartbeat(os.Stderr, *progress)
		defer stop()
	}
	if *metricsOut != "" {
		defer func() {
			if err := reg.WriteJSONFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "aquatrain: metrics-out:", err)
			}
		}()
	}

	net, err := buildNetwork(*netName)
	if err != nil {
		return err
	}
	fmt.Printf("network %s: %d nodes, %d links\n", net.Name, len(net.Nodes), len(net.Links))

	start := time.Now()
	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		return err
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		return err
	}
	count := placer.CountForPercent(*iotPct)
	sensors, err := placer.KMedoids(count, rand.New(rand.NewSource(*seed+3)))
	if err != nil {
		return err
	}
	fmt.Printf("placed %d sensors (%.0f%% of %d candidate locations) by k-medoids\n",
		len(sensors), *iotPct, placer.CandidateCount())

	leakCfg := aquascale.LeakGeneratorConfig{MinEvents: *minLeaks, MaxEvents: *maxLeaks}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise:    aquascale.DefaultSensorNoise,
		Leaks:    leakCfg,
		Retry:    aquascale.RetryPolicy{MaxRetries: *retries},
		FailFast: *failFast,
		Faults: aquascale.FaultConfig{
			Dropout:            *fDropout,
			Stuck:              *fStuck,
			NaN:                *fNaN,
			SolverFail:         *fSolver,
			SolverFailAttempts: *fAttempts,
		},
	})
	if err != nil {
		return err
	}

	profCfg := aquascale.ProfileConfig{Technique: technique, Seed: *seed + 77}
	var profile *aquascale.Profile
	if *corpusOut != "" || *corpusIn != "" {
		profile, err = trainOutOfCore(factory, net, outOfCoreOptions{
			out:          *corpusOut,
			in:           *corpusIn,
			samples:      *samples,
			seed:         *seed,
			shardSamples: *shardSamps,
			resume:       *resume,
		}, profCfg)
		if err != nil {
			return err
		}
	} else {
		fmt.Printf("generating %d training scenarios...\n", *samples)
		ds, err := factory.Generate(*samples, rand.New(rand.NewSource(*seed+11)))
		if err != nil {
			return err
		}
		fmt.Printf("dataset ready in %v (%d features per sample)\n",
			time.Since(start).Round(time.Millisecond), factory.SensorCount())
		if len(ds.Skipped) > 0 {
			fmt.Printf("skipped %d/%d scenarios after retry exhaustion (first: scenario %d, %d retries: %v)\n",
				len(ds.Skipped), *samples, ds.Skipped[0].Index, ds.Skipped[0].Retries, ds.Skipped[0].Err)
		}

		trainStart := time.Now()
		profile, err = aquascale.TrainProfile(ds, len(net.Nodes), profCfg)
		if err != nil {
			return err
		}
		fmt.Printf("trained %s profile (%d per-node classifiers) in %v\n",
			technique, len(ds.Junctions), time.Since(trainStart).Round(time.Millisecond))
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := profile.Save(f); err != nil {
			f.Close()
			return fmt.Errorf("save profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("profile saved to %s\n", *savePath)
	}

	// Held-out evaluation.
	gen, err := aquascale.NewLeakGenerator(net, leakCfg, rand.New(rand.NewSource(*seed+101)))
	if err != nil {
		return err
	}
	evalRng := rand.New(rand.NewSource(*seed + 103))
	sess, err := factory.NewSession()
	if err != nil {
		return err
	}
	total, detectLatency, skippedEval := 0.0, time.Duration(0), 0
	for i := 0; i < *testN; i++ {
		sc := gen.Next()
		sample, err := sess.FromScenario(sc, evalRng)
		if err != nil {
			if !*failFast && errors.Is(err, aquascale.ErrNotConverged) {
				skippedEval++
				continue
			}
			return err
		}
		t0 := time.Now()
		pred, err := profile.Predict(sample.Features)
		if err != nil {
			return err
		}
		detectLatency += time.Since(t0)
		total += aquascale.HammingScore(pred, sc.Labels(len(net.Nodes)))
	}
	evaluated := *testN - skippedEval
	if evaluated == 0 {
		return fmt.Errorf("all %d held-out scenarios failed after retries", *testN)
	}
	if skippedEval > 0 {
		fmt.Printf("skipped %d/%d held-out scenarios after retry exhaustion\n", skippedEval, *testN)
	}
	fmt.Printf("held-out mean Hamming score over %d scenarios: %.3f\n", evaluated, total/float64(evaluated))
	fmt.Printf("mean online inference latency: %v per scenario\n",
		(detectLatency / time.Duration(evaluated)).Round(time.Microsecond))
	return nil
}

// outOfCoreOptions bundles the corpus-mode flags.
type outOfCoreOptions struct {
	out, in      string
	samples      int
	seed         int64
	shardSamples int
	resume       bool
}

// trainOutOfCore runs the streamed generate→train pipeline: shards on
// disk instead of an in-RAM dataset, resumable on both sides, and
// bit-identical to the in-memory path at the same -seed. Ctrl-C stops
// between scenarios/shards; a rerun with -resume picks up where it left
// off.
func trainOutOfCore(factory *aquascale.Factory, net *aquascale.Network, opt outOfCoreOptions, cfg aquascale.ProfileConfig) (*aquascale.Profile, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	dir := opt.in
	if opt.out != "" {
		dir = opt.out
		fmt.Printf("generating %d training scenarios into %s (shards of %d)...\n",
			opt.samples, opt.out, opt.shardSamples)
		genStart := time.Now()
		// Seed +11 matches the in-memory Generate path, so the corpus is
		// bit-compatible with a plain `aquatrain -seed N` run.
		res, err := factory.GenerateCorpus(ctx, opt.samples, opt.seed+11, opt.out, aquascale.CorpusOptions{
			ShardSamples: opt.shardSamples,
			Resume:       opt.resume,
		})
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "aquatrain: interrupted; completed shards are verified — rerun with -resume to continue")
			}
			return nil, err
		}
		fmt.Printf("corpus ready in %v: %d shards (%d written, %d resumed), %d samples, %.1f MiB\n",
			time.Since(genStart).Round(time.Millisecond), res.Shards, res.ShardsWritten,
			res.ShardsResumed, res.Samples, float64(res.Bytes)/(1<<20))
		if res.SkippedScenarios > 0 {
			fmt.Printf("skipped %d/%d scenarios after retry exhaustion\n", res.SkippedScenarios, opt.samples)
		}
	}

	r, err := aquascale.OpenCorpus(dir)
	if err != nil {
		return nil, err
	}
	// Fail fast when the corpus was generated for a different deployment
	// or generation config than this invocation rebuilt.
	if err := r.Match(factory); err != nil {
		return nil, err
	}
	fmt.Printf("training %s profile from %d streamed samples (%d shards)...\n",
		cfg.Technique, r.SampleCount(), r.Shards())

	trainStart := time.Now()
	ckpt := filepath.Join(dir, "train.ckpt")
	profile, err := aquascale.TrainProfileFromCorpus(ctx, r, len(net.Nodes), cfg, aquascale.CorpusTrainOptions{
		CheckpointPath: ckpt,
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "aquatrain: interrupted; fitted classifiers are checkpointed in %s — rerun with -resume to continue\n", ckpt)
		}
		return nil, err
	}
	fmt.Printf("trained %s profile (%d per-node classifiers) in %v\n",
		cfg.Technique, len(r.Junctions()), time.Since(trainStart).Round(time.Millisecond))
	return profile, nil
}

func buildNetwork(name string) (*aquascale.Network, error) {
	switch name {
	case "epanet":
		return aquascale.BuildEPANet(), nil
	case "wssc":
		return aquascale.BuildWSSCSubnet(), nil
	case "test":
		return aquascale.BuildTestNet(), nil
	default:
		return nil, fmt.Errorf("unknown network %q (want epanet, wssc or test)", name)
	}
}
