// Command aquatrain runs Phase I of the AquaSCALE workflow: place IoT
// sensors, generate a leak-scenario dataset through the hydraulic engine,
// train a profile model with a chosen plug-and-play technique, and report
// held-out localization quality.
//
// Examples:
//
//	aquatrain -net epanet -iot 30 -samples 2000 -technique hybrid-rsl
//	aquatrain -net wssc -iot 10 -samples 500 -technique rf -max-leaks 5
//
// Out-of-core mode streams the scenario corpus through disk shards
// instead of holding it in RAM, and both generation and training are
// restartable after an interrupt:
//
//	aquatrain -net wssc -samples 20000 -corpus-out /data/corpus
//	aquatrain -net wssc -samples 20000 -corpus-out /data/corpus -resume
//	aquatrain -net wssc -samples 20000 -corpus-in /data/corpus
//
// Distributed mode fans corpus generation out across worker processes.
// The coordinating run spawns local `aquatrain -worker` subprocesses
// (one per -workers-procs); workers rebuild the deployment from the
// same flags, lease shard ranges over HTTP, and upload verified shards.
// The merged corpus is byte-identical to the single-process run:
//
//	aquatrain -net wssc -samples 20000 -corpus-out /data/corpus -workers-procs 4
//	aquatrain -net wssc -worker -coordinator http://host:port   # remote worker
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aquatrain:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aquatrain", flag.ContinueOnError)
	var (
		netName    = fs.String("net", "epanet", "network: epanet, wssc or test")
		iotPct     = fs.Float64("iot", 30, "IoT deployment percentage of |V|+|E| candidate locations")
		samples    = fs.Int("samples", 1000, "training scenarios (paper: 20000)")
		testN      = fs.Int("test", 100, "held-out test scenarios (paper: 2000)")
		minLeaks   = fs.Int("min-leaks", 1, "minimum concurrent leak events")
		maxLeaks   = fs.Int("max-leaks", 5, "maximum concurrent leak events")
		seed       = fs.Int64("seed", 1, "random seed")
		retries    = fs.Int("retries", 0, "solver retry budget on non-convergence (stepped relaxation + warm restart; 0 = no retry)")
		failFast   = fs.Bool("fail-fast", false, "abort dataset generation on the first failed scenario instead of skipping it")
		fDropout   = fs.Float64("fault-dropout", 0, "injected per-sensor dropout probability (reading lost, sanitized to a neutral feature)")
		fStuck     = fs.Float64("fault-stuck", 0, "injected per-sensor stuck-at probability (sensor repeats its pre-leak reading)")
		fNaN       = fs.Float64("fault-nan", 0, "injected per-sensor NaN-reading probability")
		fSolver    = fs.Float64("fault-solver", 0, "injected per-solve forced non-convergence probability")
		fAttempts  = fs.Int("fault-solver-attempts", 1, "forced failures per hit solve (above -retries makes the scenario skip)")
		corpusOut  = fs.String("corpus-out", "", "generate the training corpus as shards in this directory and train from the stream (out-of-core)")
		corpusIn   = fs.String("corpus-in", "", "train from an existing corpus directory (skips generation; must match -net/-iot/-seed and the generation flags)")
		shardSamps = fs.Int("shard-samples", 1024, "scenarios per corpus shard (with -corpus-out)")
		resume     = fs.Bool("resume", false, "resume an interrupted corpus run: keep verified shards and the training checkpoint")
		workerN    = fs.Int("workers-procs", 0, "with -corpus-out: fan shard generation out across this many spawned `aquatrain -worker` subprocesses")
		workerMode = fs.Bool("worker", false, "run as a distributed-generation worker against -coordinator (deployment flags must match the coordinating run)")
		coordURL   = fs.String("coordinator", "", "coordinator base URL for -worker mode")
		savePath   = fs.String("save", "", "write the trained profile to this file (gob)")
		metricsOut = fs.String("metrics-out", "", "write a JSON telemetry snapshot to this file on exit")
		httpAddr   = fs.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
		progress   = fs.Duration("progress", 0, "print a telemetry heartbeat to stderr at this interval (e.g. 10s; 0 = off)")
	)
	technique := aquascale.TechniqueHybridRSL
	fs.TextVar(&technique, "technique", technique,
		"classifier: "+strings.Join(aquascale.ClassifierNames(), ", "))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpusOut != "" && *corpusIn != "" {
		return fmt.Errorf("-corpus-out and -corpus-in are mutually exclusive")
	}
	if *workerMode && *coordURL == "" {
		return fmt.Errorf("-worker needs -coordinator URL")
	}
	if *workerN > 0 && *corpusOut == "" {
		return fmt.Errorf("-workers-procs needs -corpus-out")
	}

	// Enable instrumentation before any solver or factory is built, so
	// their telemetry handles bind to this registry. Enabling never
	// changes results at a fixed seed.
	reg := aquascale.EnableTelemetry()
	if *httpAddr != "" {
		srv, addr, err := reg.StartServer(*httpAddr)
		if err != nil {
			return fmt.Errorf("telemetry endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	if *progress > 0 {
		stop := reg.StartHeartbeat(os.Stderr, *progress)
		defer stop()
	}
	if *metricsOut != "" {
		defer func() {
			if err := reg.WriteJSONFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "aquatrain: metrics-out:", err)
			}
		}()
	}

	net, err := buildNetwork(*netName)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "network %s: %d nodes, %d links\n", net.Name, len(net.Nodes), len(net.Links))

	start := time.Now()
	baseline, err := aquascale.RunEPSContext(ctx, net, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		return err
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		return err
	}
	count := placer.CountForPercent(*iotPct)
	sensors, err := placer.KMedoids(count, rand.New(rand.NewSource(*seed+3)))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "placed %d sensors (%.0f%% of %d candidate locations) by k-medoids\n",
		len(sensors), *iotPct, placer.CandidateCount())

	leakCfg := aquascale.LeakGeneratorConfig{MinEvents: *minLeaks, MaxEvents: *maxLeaks}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise:    aquascale.DefaultSensorNoise,
		Leaks:    leakCfg,
		Retry:    aquascale.RetryPolicy{MaxRetries: *retries},
		FailFast: *failFast,
		Faults: aquascale.FaultConfig{
			Dropout:            *fDropout,
			Stuck:              *fStuck,
			NaN:                *fNaN,
			SolverFail:         *fSolver,
			SolverFailAttempts: *fAttempts,
		},
	})
	if err != nil {
		return err
	}

	if *workerMode {
		fmt.Fprintf(out, "worker %d: serving coordinator %s\n", os.Getpid(), *coordURL)
		return aquascale.RunCorpusWorker(ctx, *coordURL, aquascale.CorpusWorkerOptions{
			Factory: factory,
			ID:      fmt.Sprintf("proc-%d", os.Getpid()),
		})
	}

	profCfg := aquascale.ProfileConfig{Technique: technique, Seed: *seed + 77}
	var profile *aquascale.Profile
	if *corpusOut != "" || *corpusIn != "" {
		// Subprocess workers must rebuild this exact deployment; the
		// handshake and shard verification enforce it, these flags
		// deliver it.
		spawnArgs := []string{
			"-worker",
			"-net", *netName,
			"-iot", fmt.Sprint(*iotPct),
			"-seed", fmt.Sprint(*seed),
			"-min-leaks", fmt.Sprint(*minLeaks),
			"-max-leaks", fmt.Sprint(*maxLeaks),
			"-retries", fmt.Sprint(*retries),
			"-fail-fast=" + fmt.Sprint(*failFast),
			"-fault-dropout", fmt.Sprint(*fDropout),
			"-fault-stuck", fmt.Sprint(*fStuck),
			"-fault-nan", fmt.Sprint(*fNaN),
			"-fault-solver", fmt.Sprint(*fSolver),
			"-fault-solver-attempts", fmt.Sprint(*fAttempts),
		}
		profile, err = trainOutOfCore(ctx, factory, net, outOfCoreOptions{
			out:          *corpusOut,
			in:           *corpusIn,
			samples:      *samples,
			seed:         *seed,
			shardSamples: *shardSamps,
			resume:       *resume,
			workerProcs:  *workerN,
			spawnArgs:    spawnArgs,
		}, profCfg, out)
		if err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "generating %d training scenarios...\n", *samples)
		ds, err := factory.Generate(*samples, rand.New(rand.NewSource(*seed+11)))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "dataset ready in %v (%d features per sample)\n",
			time.Since(start).Round(time.Millisecond), factory.SensorCount())
		if len(ds.Skipped) > 0 {
			fmt.Fprintf(out, "skipped %d/%d scenarios after retry exhaustion (first: scenario %d, %d retries: %v)\n",
				len(ds.Skipped), *samples, ds.Skipped[0].Index, ds.Skipped[0].Retries, ds.Skipped[0].Err)
		}

		trainStart := time.Now()
		profile, err = aquascale.TrainProfileContext(ctx, ds, len(net.Nodes), profCfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trained %s profile (%d per-node classifiers) in %v\n",
			technique, len(ds.Junctions), time.Since(trainStart).Round(time.Millisecond))
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := profile.Save(f); err != nil {
			f.Close()
			return fmt.Errorf("save profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "profile saved to %s\n", *savePath)
	}

	// Held-out evaluation.
	gen, err := aquascale.NewLeakGenerator(net, leakCfg, rand.New(rand.NewSource(*seed+101)))
	if err != nil {
		return err
	}
	evalRng := rand.New(rand.NewSource(*seed + 103))
	sess, err := factory.NewSession()
	if err != nil {
		return err
	}
	total, detectLatency, skippedEval := 0.0, time.Duration(0), 0
	for i := 0; i < *testN; i++ {
		sc := gen.Next()
		sample, err := sess.FromScenario(sc, evalRng)
		if err != nil {
			if !*failFast && errors.Is(err, aquascale.ErrNotConverged) {
				skippedEval++
				continue
			}
			return err
		}
		t0 := time.Now()
		pred, err := profile.Predict(sample.Features)
		if err != nil {
			return err
		}
		detectLatency += time.Since(t0)
		total += aquascale.HammingScore(pred, sc.Labels(len(net.Nodes)))
	}
	evaluated := *testN - skippedEval
	if evaluated == 0 {
		return fmt.Errorf("all %d held-out scenarios failed after retries", *testN)
	}
	if skippedEval > 0 {
		fmt.Fprintf(out, "skipped %d/%d held-out scenarios after retry exhaustion\n", skippedEval, *testN)
	}
	fmt.Fprintf(out, "held-out mean Hamming score over %d scenarios: %.3f\n", evaluated, total/float64(evaluated))
	fmt.Fprintf(out, "mean online inference latency: %v per scenario\n",
		(detectLatency / time.Duration(evaluated)).Round(time.Microsecond))
	return nil
}

// outOfCoreOptions bundles the corpus-mode flags.
type outOfCoreOptions struct {
	out, in      string
	samples      int
	seed         int64
	shardSamples int
	resume       bool
	workerProcs  int
	spawnArgs    []string
}

// trainOutOfCore runs the streamed generate→train pipeline: shards on
// disk instead of an in-RAM dataset, resumable on both sides, and
// bit-identical to the in-memory path at the same -seed. Ctrl-C stops
// between scenarios/shards; a rerun with -resume picks up where it left
// off. With workerProcs > 0 generation fans out across spawned
// `aquatrain -worker` subprocesses — the corpus is still byte-identical.
func trainOutOfCore(ctx context.Context, factory *aquascale.Factory, net *aquascale.Network, opt outOfCoreOptions, cfg aquascale.ProfileConfig, out io.Writer) (*aquascale.Profile, error) {
	dir := opt.in
	if opt.out != "" {
		dir = opt.out
		genStart := time.Now()
		var (
			res *aquascale.CorpusResult
			err error
		)
		// Seed +11 matches the in-memory Generate path, so the corpus is
		// bit-compatible with a plain `aquatrain -seed N` run.
		if opt.workerProcs > 0 {
			fmt.Fprintf(out, "generating %d training scenarios into %s (shards of %d, %d worker processes)...\n",
				opt.samples, opt.out, opt.shardSamples, opt.workerProcs)
			res, err = aquascale.GenerateCorpusDistributed(ctx, factory, opt.samples, opt.seed+11, opt.out,
				aquascale.DistGenOptions{
					ShardSamples: opt.shardSamples,
					Resume:       opt.resume,
					Workers:      opt.workerProcs,
					StartWorker:  spawnWorkerProc(opt.spawnArgs),
				})
		} else {
			fmt.Fprintf(out, "generating %d training scenarios into %s (shards of %d)...\n",
				opt.samples, opt.out, opt.shardSamples)
			res, err = factory.GenerateCorpus(ctx, opt.samples, opt.seed+11, opt.out, aquascale.CorpusOptions{
				ShardSamples: opt.shardSamples,
				Resume:       opt.resume,
			})
		}
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "aquatrain: interrupted; completed shards are verified — rerun with -resume to continue")
			}
			return nil, err
		}
		fmt.Fprintf(out, "corpus ready in %v: %d shards (%d written, %d resumed), %d samples, %.1f MiB\n",
			time.Since(genStart).Round(time.Millisecond), res.Shards, res.ShardsWritten,
			res.ShardsResumed, res.Samples, float64(res.Bytes)/(1<<20))
		if res.SkippedScenarios > 0 {
			fmt.Fprintf(out, "skipped %d/%d scenarios after retry exhaustion\n", res.SkippedScenarios, opt.samples)
		}
	}

	r, err := aquascale.OpenCorpus(dir)
	if err != nil {
		return nil, err
	}
	// Fail fast when the corpus was generated for a different deployment
	// or generation config than this invocation rebuilt.
	if err := r.Match(factory); err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "training %s profile from %d streamed samples (%d shards)...\n",
		cfg.Technique, r.SampleCount(), r.Shards())

	trainStart := time.Now()
	ckpt := filepath.Join(dir, "train.ckpt")
	profile, err := aquascale.TrainProfileFromCorpus(ctx, r, len(net.Nodes), cfg, aquascale.CorpusTrainOptions{
		CheckpointPath: ckpt,
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "aquatrain: interrupted; fitted classifiers are checkpointed in %s — rerun with -resume to continue\n", ckpt)
		}
		return nil, err
	}
	fmt.Fprintf(out, "trained %s profile (%d per-node classifiers) in %v\n",
		cfg.Technique, len(r.Junctions()), time.Since(trainStart).Round(time.Millisecond))
	return profile, nil
}

// spawnWorkerProc returns a StartWorker that execs this binary as
// `aquatrain -worker ... -coordinator <url>`. Worker output goes to
// stderr; killing the coordinator's context kills the subprocesses.
func spawnWorkerProc(spawnArgs []string) func(ctx context.Context, url string, id int) error {
	return func(ctx context.Context, url string, id int) error {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		args := append(append([]string{}, spawnArgs...), "-coordinator", url)
		cmd := exec.CommandContext(ctx, exe, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd.Run()
	}
}

func buildNetwork(name string) (*aquascale.Network, error) {
	switch name {
	case "epanet":
		return aquascale.BuildEPANet(), nil
	case "wssc":
		return aquascale.BuildWSSCSubnet(), nil
	case "test":
		return aquascale.BuildTestNet(), nil
	default:
		return nil, fmt.Errorf("unknown network %q (want epanet, wssc or test)", name)
	}
}
