package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale"
)

// TestMain doubles as the worker helper process: when the test binary is
// spawned as `<binary> -worker ...` (which is exactly what the
// coordinator's StartWorker does via os.Executable()), it behaves as the
// real aquatrain worker instead of running the test suite.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-worker" {
		if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "aquatrain worker helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// shardBytes reads every shard file in dir into a name → content map.
func shardBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.aqsc"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		out[filepath.Base(p)] = b
	}
	return out
}

func assertSameShards(t *testing.T, gotDir, wantDir string) {
	t.Helper()
	got, want := shardBytes(t, gotDir), shardBytes(t, wantDir)
	if len(got) != len(want) {
		t.Fatalf("shard count %d, want %d", len(got), len(want))
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			t.Fatalf("shard %s missing", name)
		}
		if !bytes.Equal(g, want[name]) {
			t.Fatalf("shard %s bytes diverge", name)
		}
	}
}

// TestCLIDistributedMatchesSingleProcess drives the full CLI path: a
// coordinating `aquatrain -corpus-out -workers-procs 3` run spawns three
// real worker OS processes, and the merged corpus (plus the profile
// trained from it) is byte-identical to the single-process run.
func TestCLIDistributedMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	singleDir := t.TempDir()
	distDir := t.TempDir()
	base := []string{
		"-net", "test", "-iot", "30", "-samples", "48", "-seed", "1",
		"-shard-samples", "4", "-test", "5",
	}
	var out bytes.Buffer
	if err := run(context.Background(), append(append([]string{}, base...), "-corpus-out", singleDir), &out); err != nil {
		t.Fatalf("single-process run: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run(context.Background(), append(append([]string{}, base...),
		"-corpus-out", distDir, "-workers-procs", "3"), &out); err != nil {
		t.Fatalf("distributed run: %v\n%s", err, out.String())
	}
	assertSameShards(t, distDir, singleDir)
}

// TestDistributedWorkerProcessKilled kills one of three real worker OS
// processes mid-corpus (as soon as the first shard lands in staging),
// and asserts the lease machinery recovers to a corpus byte-identical to
// the single-process run.
func TestDistributedWorkerProcessKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	const seed = 1
	net, err := buildNetwork("test")
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	placer, err := aquascale.NewPlacer(net, baseline)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	sensors, err := placer.KMedoids(placer.CountForPercent(30), rand.New(rand.NewSource(seed+3)))
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	factory, err := aquascale.NewFactory(net, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
		Leaks: aquascale.LeakGeneratorConfig{MinEvents: 1, MaxEvents: 5},
		// Matches the worker helper's flag defaults (the digest covers
		// every fault knob, including -fault-solver-attempts' default 1).
		Faults: aquascale.FaultConfig{SolverFailAttempts: 1},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}

	const count, corpusSeed = 60, seed + 11
	wantDir := t.TempDir()
	if _, err := factory.GenerateCorpus(context.Background(), count, corpusSeed, wantDir,
		aquascale.CorpusOptions{ShardSamples: 4}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}

	gotDir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var (
		procMu sync.Mutex
		victim *os.Process
	)
	// Kill the victim as soon as any shard reaches the coordinator's
	// staging directory — leases are certainly in flight by then.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			staged, _ := filepath.Glob(filepath.Join(gotDir, ".distgen", "shard-*.aqsc"))
			if len(staged) > 0 {
				procMu.Lock()
				p := victim
				procMu.Unlock()
				if p != nil {
					p.Kill()
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	res, err := aquascale.GenerateCorpusDistributed(context.Background(), factory, count, corpusSeed, gotDir,
		aquascale.DistGenOptions{
			ShardSamples: 4,
			Workers:      3,
			RangeShards:  3,
			LeaseTTL:     500 * time.Millisecond,
			StartWorker: func(ctx context.Context, url string, id int) error {
				args := []string{"-worker", "-net", "test", "-iot", "30", "-seed", fmt.Sprint(seed), "-coordinator", url}
				cmd := exec.CommandContext(ctx, exe, args...)
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					return err
				}
				if id == 0 {
					procMu.Lock()
					victim = cmd.Process
					procMu.Unlock()
				}
				return cmd.Wait()
			},
		})
	if err != nil {
		t.Fatalf("GenerateCorpusDistributed: %v", err)
	}
	<-killed
	if res.ShardsWritten != 15 {
		t.Fatalf("ShardsWritten = %d, want 15", res.ShardsWritten)
	}
	assertSameShards(t, gotDir, wantDir)
}
