package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale"
)

// syncBuffer makes the daemon's output readable while run is still
// writing to it from its own goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// trainTestProfile trains a profile on the small test network with the
// exact deployment aquad rebuilds for -net test and the given iot/seed
// (same baseline EPS, same k-medoids count, same seed+3 placement
// stream) and saves it to path. It returns the deployment's sensor
// count.
func trainTestProfile(t *testing.T, path string, iotPct float64, seed int64) int {
	t.Helper()
	nw := aquascale.BuildTestNet()
	baseline, err := aquascale.RunEPS(nw, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		t.Fatalf("baseline EPS: %v", err)
	}
	placer, err := aquascale.NewPlacer(nw, baseline)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	sensors, err := placer.KMedoids(placer.CountForPercent(iotPct), rand.New(rand.NewSource(seed+3)))
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	factory, err := aquascale.NewFactory(nw, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
		Leaks: aquascale.LeakGeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := aquascale.NewSystem(factory, nw, aquascale.SystemConfig{})
	if err := sys.Train(40, aquascale.ProfileConfig{Technique: aquascale.TechniqueLinear, Seed: 5},
		rand.New(rand.NewSource(3))); err != nil {
		t.Fatalf("Train: %v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := sys.Profile().Save(f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return len(sensors)
}

// TestAquadSmoke boots the daemon on an ephemeral port, runs one
// observe/localize round-trip plus a status check over real HTTP, then
// cancels the context and asserts a clean drain.
func TestAquadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon boot trains a baseline EPS")
	}
	path := filepath.Join(t.TempDir(), "profile.gob")
	sensorCount := trainTestProfile(t, path, 30, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-profile", path, "-net", "test", "-iot", "30", "-seed", "1",
			"-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "10s",
		}, out)
	}()

	base := waitServing(t, out, done)

	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatalf("GET /v1/status: %v", err)
	}
	var status struct {
		Technique string `json:"technique"`
		Sensors   int    `json:"sensors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || status.Technique != "linear" || status.Sensors != sensorCount {
		t.Fatalf("status = %d %+v, want 200 technique=linear sensors=%d",
			resp.StatusCode, status, sensorCount)
	}

	// One synchronous observe/localize round-trip.
	features := make([]float64, sensorCount)
	body, err := json.Marshal(map[string]any{"features": features, "wait": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/observe: %v", err)
	}
	var jr struct {
		Job    string `json:"job"`
		State  string `json:"state"`
		Result *struct {
			Proba []float64 `json:"proba"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode observe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || jr.State != "done" || jr.Result == nil {
		t.Fatalf("observe = %d %+v, want 200 state=done with result", resp.StatusCode, jr)
	}
	if len(jr.Result.Proba) == 0 {
		t.Fatal("served result has no probabilities")
	}

	// The finished job stays queryable.
	resp, err = http.Get(fmt.Sprintf("%s/v1/localize/%s", base, jr.Job))
	if err != nil {
		t.Fatalf("GET /v1/localize: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/localize/%s = %d, want 200", jr.Job, resp.StatusCode)
	}

	// Clean shutdown: cancel stands in for SIGTERM (main wires the signal
	// to this same context), and the daemon must drain and exit nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after cancel; output:\n%s", out.String())
	}
	if s := out.String(); !strings.Contains(s, "aquad: drained cleanly") {
		t.Fatalf("missing drain marker; output:\n%s", s)
	}
}

// waitServing blocks until the daemon prints its bound address and
// returns the base URL, failing fast if run exits first.
func waitServing(t *testing.T, out *syncBuffer, done <-chan error) string {
	t.Helper()
	addrRe := regexp.MustCompile(`serving on http://(\S+)`)
	for deadline := time.Now().Add(30 * time.Second); ; {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1]
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before serving: %v\noutput:\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed its address; output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// observeDistrict posts one synchronous observe to a fleet district and
// returns the HTTP status code (with a decoded proba length on 200).
func observeDistrict(t *testing.T, base, district string, sensorCount int) (int, int) {
	t.Helper()
	features := make([]float64, sensorCount)
	body, err := json.Marshal(map[string]any{"features": features, "wait": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/districts/"+district+"/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST observe %s: %v", district, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, 0
	}
	var jr struct {
		State  string `json:"state"`
		Result *struct {
			Proba []float64 `json:"proba"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode observe %s: %v", district, err)
	}
	if jr.State != "done" || jr.Result == nil {
		t.Fatalf("observe %s = %+v, want state=done with result", district, jr)
	}
	return resp.StatusCode, len(jr.Result.Proba)
}

// TestAquadFleetSmoke boots the daemon in fleet mode with two districts
// trained on distinct deployments, observes both, drains one district
// while its sibling keeps serving, then shuts the whole fleet down.
func TestAquadFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon boot trains baseline EPS runs")
	}
	dir := t.TempDir()
	northProfile := filepath.Join(dir, "north.gob")
	southProfile := filepath.Join(dir, "south.gob")
	northSensors := trainTestProfile(t, northProfile, 30, 1)
	southSensors := trainTestProfile(t, southProfile, 60, 2)

	manifest := filepath.Join(dir, "fleet.json")
	manifestJSON := fmt.Sprintf(`{"districts": [
		{"id": "north", "profile": %q, "net": "test", "iot": 30, "seed": 1},
		{"id": "south", "profile": %q, "net": "test", "iot": 60, "seed": 2}
	]}`, northProfile, southProfile)
	if err := os.WriteFile(manifest, []byte(manifestJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-fleet", manifest, "-addr", "127.0.0.1:0",
			"-workers", "2", "-drain-timeout", "10s",
		}, out)
	}()
	base := waitServing(t, out, done)

	// Fleet-wide status lists both districts.
	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatalf("GET /v1/status: %v", err)
	}
	var fs struct {
		Districts   []string `json:"districts"`
		Workers     int      `json:"workers"`
		PerDistrict []struct {
			District string `json:"district"`
			Sensors  int    `json:"sensors"`
		} `json:"per_district"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatalf("decode fleet status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(fs.Districts) != 2 ||
		fs.Districts[0] != "north" || fs.Districts[1] != "south" {
		t.Fatalf("fleet status = %d %+v, want 200 with districts [north south]", resp.StatusCode, fs)
	}
	if fs.Workers != 2 {
		t.Fatalf("fleet workers = %d, want 2", fs.Workers)
	}
	if fs.PerDistrict[0].Sensors != northSensors || fs.PerDistrict[1].Sensors != southSensors {
		t.Fatalf("per-district sensors = %+v, want north=%d south=%d",
			fs.PerDistrict, northSensors, southSensors)
	}

	// Both districts localize through their own deployments.
	if code, proba := observeDistrict(t, base, "north", northSensors); code != http.StatusOK || proba == 0 {
		t.Fatalf("north observe = %d (proba %d), want 200 with result", code, proba)
	}
	if code, proba := observeDistrict(t, base, "south", southSensors); code != http.StatusOK || proba == 0 {
		t.Fatalf("south observe = %d (proba %d), want 200 with result", code, proba)
	}

	// Drain north; south must keep serving.
	resp, err = http.Post(base+"/v1/districts/north/drain", "application/json", nil)
	if err != nil {
		t.Fatalf("POST drain north: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain north = %d, want 200", resp.StatusCode)
	}
	if code, _ := observeDistrict(t, base, "north", northSensors); code != http.StatusServiceUnavailable {
		t.Fatalf("drained north observe = %d, want 503", code)
	}
	if code, proba := observeDistrict(t, base, "south", southSensors); code != http.StatusOK || proba == 0 {
		t.Fatalf("south observe after north drain = %d (proba %d), want 200 with result", code, proba)
	}

	// Whole-fleet shutdown stays clean even with north already drained.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after cancel; output:\n%s", out.String())
	}
	if s := out.String(); !strings.Contains(s, "aquad: fleet of 2 districts") ||
		!strings.Contains(s, "aquad: drained cleanly") {
		t.Fatalf("missing fleet or drain markers; output:\n%s", s)
	}
}

// TestAquadFlagErrors pins the startup validation paths: a missing
// -profile/-fleet, both at once, and an unknown network all fail fast
// with a useful error.
func TestAquadFlagErrors(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), nil, out); err == nil ||
		!strings.Contains(err.Error(), "-profile") {
		t.Fatalf("missing -profile error = %v", err)
	}
	err := run(context.Background(), []string{"-profile", "x.gob", "-fleet", "y.json"}, out)
	if err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("profile+fleet error = %v", err)
	}
	err = run(context.Background(), []string{"-profile", "x.gob", "-net", "bogus"}, out)
	if err == nil || !strings.Contains(err.Error(), "unknown network") {
		t.Fatalf("unknown network error = %v", err)
	}
}
