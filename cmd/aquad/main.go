// Command aquad is the AquaSCALE localization daemon: it loads a profile
// trained offline (aquatrain -save), rebuilds the matching sensor
// deployment, and serves online localization over HTTP/JSON.
//
// Endpoints: POST /v1/observe (submit an observation; add "wait": true or
// ?wait=1 for a synchronous answer), GET /v1/localize/{job}, GET
// /v1/trace/{job} (replay a request's stage timeline), GET /v1/status,
// POST /v1/profile (hot-swap), GET /debug/requests (the flight recorder),
// plus /metrics, /metrics.json and /debug/pprof from the telemetry layer.
//
// Every observe response carries an X-Trace-Id header; inbound W3C
// traceparent headers are honored (the id is adopted, a set sampled flag
// forces capture). Structured JSON request logs go to stdout (-log text
// for key=value, -log off to silence).
//
// The -net, -iot and -seed flags must match the aquatrain invocation that
// produced the profile — sensor placement is seeded, and a profile only
// fits the feature vector of its own deployment (the mismatch is caught
// at startup).
//
// Example:
//
//	aquatrain -net epanet -iot 30 -seed 1 -save profile.gob
//	aquad -profile profile.gob -net epanet -iot 30 -seed 1 -addr localhost:8080
//	curl -s localhost:8080/v1/status
//
// # Fleet mode
//
// -fleet MANIFEST serves many districts from one daemon instead of
// -profile: each district gets its own compiled snapshot, queue and
// result window carved from the shared -workers budget, and the API
// nests under /v1/districts/{id}/... (observe, localize, trace, status,
// profile, requests, drain) with a fleet-wide GET /v1/status. The
// manifest is JSON:
//
//	{"districts": [
//	  {"id": "north", "profile": "north.gob", "net": "test", "iot": 30, "seed": 1},
//	  {"id": "south", "profile": "south.gob", "net": "test", "iot": 60, "seed": 2}
//	]}
//
// Per-district net/iot/seed default to the daemon's -net/-iot/-seed
// flags when omitted, and must match each profile's training run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aquad:", err)
		os.Exit(1)
	}
}

// run is the daemon body, parameterized for testing: it serves until ctx
// is cancelled, then drains and exits. The bound address is printed to
// out as "serving on http://ADDR".
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aquad", flag.ContinueOnError)
	var (
		profilePath  = fs.String("profile", "", "trained profile to serve (from aquatrain -save); this or -fleet is required")
		fleetPath    = fs.String("fleet", "", "fleet manifest (JSON) serving many districts from one daemon; this or -profile is required")
		netName      = fs.String("net", "epanet", "network: epanet, wssc or test (must match training)")
		iotPct       = fs.Float64("iot", 30, "IoT deployment percentage (must match training)")
		seed         = fs.Int64("seed", 1, "random seed (must match training)")
		addr         = fs.String("addr", "localhost:8080", "HTTP listen address (port 0 picks a free one)")
		workers      = fs.Int("workers", 0, "localization workers (0 = all CPUs); in fleet mode the shared budget split across districts")
		queueSize    = fs.Int("queue", 0, "job queue bound (0 = 1024); beyond it submissions get 429")
		timeout      = fs.Duration("timeout", 0, "per-request deadline from enqueue (0 = 5s)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown drain budget for in-flight jobs")
		gamma        = fs.Float64("gamma", 30, "default tweet coarseness gamma in meters")
		batchMax     = fs.Int("batch-max", 0, "max same-hour readings requests scored per shared baseline lookup (0 = 8, 1 = off)")
		fSlow        = fs.Float64("fault-request-slow", 0, "injected per-request slow-localize probability")
		fDelay       = fs.Duration("fault-request-delay", 0, "injected delay for a slowed request (0 = 50ms)")
		fFail        = fs.Float64("fault-request-fail", 0, "injected per-request forced-failure probability")
		traceSample  = fs.Float64("trace-sample", 0, "head-based trace sampling fraction (0 = capture all, <0 = sampled captures off; errors and slow requests are always captured)")
		traceSlow    = fs.Duration("trace-slow", 0, "latency above which a request trace is always captured (0 = 250ms)")
		traceBuffer  = fs.Int("trace-buffer", 0, "flight-recorder capacity in traces (0 = 256, <0 = tracing off)")
		logMode      = fs.String("log", "json", "structured request logging: json, text or off")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*profilePath == "") == (*fleetPath == "") {
		return fmt.Errorf("need exactly one of -profile or -fleet (train one with: aquatrain -save profile.gob)")
	}

	var logger *slog.Logger
	switch *logMode {
	case "json":
		logger = aquascale.NewLogger(out, slog.LevelInfo)
	case "text":
		logger = aquascale.NewTextLogger(out, slog.LevelInfo)
	case "off":
	default:
		return fmt.Errorf("unknown -log mode %q (want json, text or off)", *logMode)
	}

	// Bind telemetry before building the solver-backed factory so every
	// component's handles land on the registry the daemon serves; the
	// runtime health gauges poll onto the same registry until shutdown.
	reg := aquascale.EnableTelemetry()
	stopGauges := reg.StartRuntimeGauges(0)
	defer stopGauges()

	cfg := aquascale.ServeConfig{
		Workers:            *workers,
		QueueSize:          *queueSize,
		RequestTimeout:     *timeout,
		GammaM:             *gamma,
		BatchMax:           *batchMax,
		TraceSample:        *traceSample,
		TraceSlowThreshold: *traceSlow,
		TraceBuffer:        *traceBuffer,
		Logger:             logger,
		Faults: aquascale.FaultConfig{
			RequestSlow:  *fSlow,
			RequestDelay: *fDelay,
			RequestFail:  *fFail,
		},
	}

	var (
		handler  http.Handler
		shutdown func(context.Context) error
	)
	if *fleetPath != "" {
		fleet, err := buildFleet(*fleetPath, *netName, *iotPct, *seed, cfg, out)
		if err != nil {
			return err
		}
		handler = fleet.Handler()
		shutdown = fleet.Shutdown
	} else {
		built, err := buildSystem(*netName, *iotPct, *seed, *profilePath)
		if err != nil {
			return err
		}
		server, err := aquascale.NewServer(built.sys, cfg)
		if err != nil {
			return err
		}
		path := "pointer path"
		if server.Status().Compiled {
			path = "compiled observe path"
		}
		fmt.Fprintf(out, "aquad: %s profile on %s (%d nodes, %d sensors), %d workers, queue %d, %s\n",
			built.profile.Technique(), built.nw.Name, len(built.nw.Nodes), built.sensors,
			server.Config().Workers, server.Config().QueueSize, path)
		handler = server.Handler()
		shutdown = server.Shutdown
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	fmt.Fprintf(out, "serving on http://%s\n", ln.Addr())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting HTTP first, then let in-flight
	// localizations finish within the drain budget.
	fmt.Fprintln(out, "aquad: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(out, "aquad: drained cleanly")
	return nil
}

// builtSystem is one rebuilt deployment ready to serve.
type builtSystem struct {
	sys     *aquascale.System
	nw      *aquascale.Network
	profile *aquascale.Profile
	sensors int
}

// buildSystem rebuilds the sensor deployment exactly as aquatrain placed
// it (same baseline EPS, same k-medoids count, same seed+3 stream), then
// loads the profile onto it.
func buildSystem(netName string, iotPct float64, seed int64, profilePath string) (*builtSystem, error) {
	nw, err := buildNetwork(netName)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	profile, err := aquascale.LoadProfile(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("load profile %s: %w", profilePath, err)
	}

	baseline, err := aquascale.RunEPS(nw, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		return nil, err
	}
	placer, err := aquascale.NewPlacer(nw, baseline)
	if err != nil {
		return nil, err
	}
	sensors, err := placer.KMedoids(placer.CountForPercent(iotPct), rand.New(rand.NewSource(seed+3)))
	if err != nil {
		return nil, err
	}
	factory, err := aquascale.NewFactory(nw, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
	})
	if err != nil {
		return nil, err
	}
	sys := aquascale.NewSystem(factory, nw, aquascale.SystemConfig{})
	if err := sys.SetProfile(profile); err != nil {
		return nil, fmt.Errorf("profile %s does not fit this deployment (check net/iot/seed): %w", profilePath, err)
	}
	return &builtSystem{sys: sys, nw: nw, profile: profile, sensors: factory.SensorCount()}, nil
}

// fleetManifest is the -fleet JSON schema: one entry per district, with
// net/iot/seed defaulting to the daemon's flags when omitted.
type fleetManifest struct {
	Districts []struct {
		ID      string  `json:"id"`
		Profile string  `json:"profile"`
		Net     string  `json:"net"`
		IoT     float64 `json:"iot"`
		Seed    int64   `json:"seed"`
	} `json:"districts"`
}

// buildFleet reads a fleet manifest, rebuilds every district's deployment
// and starts the fleet over the shared worker budget, printing one
// summary line per district.
func buildFleet(path, defNet string, defIoT float64, defSeed int64, cfg aquascale.ServeConfig, out io.Writer) (*aquascale.Fleet, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m fleetManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("fleet manifest %s: %w", path, err)
	}
	if len(m.Districts) == 0 {
		return nil, fmt.Errorf("fleet manifest %s: no districts", path)
	}

	districts := make([]aquascale.FleetDistrict, 0, len(m.Districts))
	for _, d := range m.Districts {
		if d.Net == "" {
			d.Net = defNet
		}
		if d.IoT == 0 {
			d.IoT = defIoT
		}
		if d.Seed == 0 {
			d.Seed = defSeed
		}
		if d.Profile == "" {
			return nil, fmt.Errorf("fleet manifest %s: district %q has no profile", path, d.ID)
		}
		built, err := buildSystem(d.Net, d.IoT, d.Seed, d.Profile)
		if err != nil {
			return nil, fmt.Errorf("district %q: %w", d.ID, err)
		}
		districts = append(districts, aquascale.FleetDistrict{ID: d.ID, Sys: built.sys})
		fmt.Fprintf(out, "aquad: district %s: %s profile on %s (%d nodes, %d sensors)\n",
			d.ID, built.profile.Technique(), built.nw.Name, len(built.nw.Nodes), built.sensors)
	}
	fleet, err := aquascale.NewFleet(districts, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "aquad: fleet of %d districts, %d workers total\n", len(fleet.Districts()), fleet.Workers())
	return fleet, nil
}

func buildNetwork(name string) (*aquascale.Network, error) {
	switch name {
	case "epanet":
		return aquascale.BuildEPANet(), nil
	case "wssc":
		return aquascale.BuildWSSCSubnet(), nil
	case "test":
		return aquascale.BuildTestNet(), nil
	default:
		return nil, fmt.Errorf("unknown network %q (want epanet, wssc or test)", name)
	}
}
