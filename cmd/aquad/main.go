// Command aquad is the AquaSCALE localization daemon: it loads a profile
// trained offline (aquatrain -save), rebuilds the matching sensor
// deployment, and serves online localization over HTTP/JSON.
//
// Endpoints: POST /v1/observe (submit an observation; add "wait": true or
// ?wait=1 for a synchronous answer), GET /v1/localize/{job}, GET
// /v1/trace/{job} (replay a request's stage timeline), GET /v1/status,
// POST /v1/profile (hot-swap), GET /debug/requests (the flight recorder),
// plus /metrics, /metrics.json and /debug/pprof from the telemetry layer.
//
// Every observe response carries an X-Trace-Id header; inbound W3C
// traceparent headers are honored (the id is adopted, a set sampled flag
// forces capture). Structured JSON request logs go to stdout (-log text
// for key=value, -log off to silence).
//
// The -net, -iot and -seed flags must match the aquatrain invocation that
// produced the profile — sensor placement is seeded, and a profile only
// fits the feature vector of its own deployment (the mismatch is caught
// at startup).
//
// Example:
//
//	aquatrain -net epanet -iot 30 -seed 1 -save profile.gob
//	aquad -profile profile.gob -net epanet -iot 30 -seed 1 -addr localhost:8080
//	curl -s localhost:8080/v1/status
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/aquascale/aquascale"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aquad:", err)
		os.Exit(1)
	}
}

// run is the daemon body, parameterized for testing: it serves until ctx
// is cancelled, then drains and exits. The bound address is printed to
// out as "serving on http://ADDR".
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aquad", flag.ContinueOnError)
	var (
		profilePath  = fs.String("profile", "", "trained profile to serve (from aquatrain -save); required")
		netName      = fs.String("net", "epanet", "network: epanet, wssc or test (must match training)")
		iotPct       = fs.Float64("iot", 30, "IoT deployment percentage (must match training)")
		seed         = fs.Int64("seed", 1, "random seed (must match training)")
		addr         = fs.String("addr", "localhost:8080", "HTTP listen address (port 0 picks a free one)")
		workers      = fs.Int("workers", 0, "localization workers (0 = all CPUs)")
		queueSize    = fs.Int("queue", 0, "job queue bound (0 = 1024); beyond it submissions get 429")
		timeout      = fs.Duration("timeout", 0, "per-request deadline from enqueue (0 = 5s)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown drain budget for in-flight jobs")
		gamma        = fs.Float64("gamma", 30, "default tweet coarseness gamma in meters")
		fSlow        = fs.Float64("fault-request-slow", 0, "injected per-request slow-localize probability")
		fDelay       = fs.Duration("fault-request-delay", 0, "injected delay for a slowed request (0 = 50ms)")
		fFail        = fs.Float64("fault-request-fail", 0, "injected per-request forced-failure probability")
		traceSample  = fs.Float64("trace-sample", 0, "head-based trace sampling fraction (0 = capture all, <0 = sampled captures off; errors and slow requests are always captured)")
		traceSlow    = fs.Duration("trace-slow", 0, "latency above which a request trace is always captured (0 = 250ms)")
		traceBuffer  = fs.Int("trace-buffer", 0, "flight-recorder capacity in traces (0 = 256, <0 = tracing off)")
		logMode      = fs.String("log", "json", "structured request logging: json, text or off")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profilePath == "" {
		return fmt.Errorf("missing -profile (train one with: aquatrain -save profile.gob)")
	}

	var logger *slog.Logger
	switch *logMode {
	case "json":
		logger = aquascale.NewLogger(out, slog.LevelInfo)
	case "text":
		logger = aquascale.NewTextLogger(out, slog.LevelInfo)
	case "off":
	default:
		return fmt.Errorf("unknown -log mode %q (want json, text or off)", *logMode)
	}

	// Bind telemetry before building the solver-backed factory so every
	// component's handles land on the registry the daemon serves; the
	// runtime health gauges poll onto the same registry until shutdown.
	reg := aquascale.EnableTelemetry()
	stopGauges := reg.StartRuntimeGauges(0)
	defer stopGauges()

	nw, err := buildNetwork(*netName)
	if err != nil {
		return err
	}
	f, err := os.Open(*profilePath)
	if err != nil {
		return err
	}
	profile, err := aquascale.LoadProfile(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("load profile: %w", err)
	}

	// Rebuild the sensor deployment exactly as aquatrain placed it: same
	// baseline EPS, same k-medoids count, same seed+3 stream.
	baseline, err := aquascale.RunEPS(nw, aquascale.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		return err
	}
	placer, err := aquascale.NewPlacer(nw, baseline)
	if err != nil {
		return err
	}
	sensors, err := placer.KMedoids(placer.CountForPercent(*iotPct), rand.New(rand.NewSource(*seed+3)))
	if err != nil {
		return err
	}
	factory, err := aquascale.NewFactory(nw, sensors, aquascale.DatasetConfig{
		Noise: aquascale.DefaultSensorNoise,
	})
	if err != nil {
		return err
	}
	sys := aquascale.NewSystem(factory, nw, aquascale.SystemConfig{})
	if err := sys.SetProfile(profile); err != nil {
		return fmt.Errorf("profile does not fit this deployment (check -net/-iot/-seed): %w", err)
	}

	server, err := aquascale.NewServer(sys, aquascale.ServeConfig{
		Workers:            *workers,
		QueueSize:          *queueSize,
		RequestTimeout:     *timeout,
		GammaM:             *gamma,
		TraceSample:        *traceSample,
		TraceSlowThreshold: *traceSlow,
		TraceBuffer:        *traceBuffer,
		Logger:             logger,
		Faults: aquascale.FaultConfig{
			RequestSlow:  *fSlow,
			RequestDelay: *fDelay,
			RequestFail:  *fFail,
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: server.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	path := "pointer path"
	if server.Status().Compiled {
		path = "compiled observe path"
	}
	fmt.Fprintf(out, "aquad: %s profile on %s (%d nodes, %d sensors), %d workers, queue %d, %s\n",
		profile.Technique(), nw.Name, len(nw.Nodes), factory.SensorCount(),
		server.Config().Workers, server.Config().QueueSize, path)
	fmt.Fprintf(out, "serving on http://%s\n", ln.Addr())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting HTTP first, then let in-flight
	// localizations finish within the drain budget.
	fmt.Fprintln(out, "aquad: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := server.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(out, "aquad: drained cleanly")
	return nil
}

func buildNetwork(name string) (*aquascale.Network, error) {
	switch name {
	case "epanet":
		return aquascale.BuildEPANet(), nil
	case "wssc":
		return aquascale.BuildWSSCSubnet(), nil
	case "test":
		return aquascale.BuildTestNet(), nil
	default:
		return nil, fmt.Errorf("unknown network %q (want epanet, wssc or test)", name)
	}
}
