// Command aquasim runs hydraulic simulations on a water network: build or
// load a network, inject leak events, run an extended-period simulation,
// and dump sensor-grade pressure/flow series as CSV or JSON.
//
// Examples:
//
//	aquasim -net epanet -duration 4h -leak J45:0.002:30m
//	aquasim -net wssc -format json -leak W150:0.004:0s -leak W230:0.0015:0s
//	aquasim -net my-network.inp -duration 2h
//	aquasim -net epanet -duration 12h -inject J40:100:2h:4h -series quality
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/aquascale/aquascale"
)

// leakSpec stores a raw -leak flag; node ids are resolved after the
// network loads.
type leakSpec struct {
	node  string
	size  float64
	start time.Duration
}

type leakSpecs []leakSpec

func (l *leakSpecs) String() string { return fmt.Sprintf("%d leaks", len(*l)) }

// injectSpec is a water-quality injection NODE:CONC:START:END.
type injectSpec struct {
	node       string
	conc       float64
	start, end time.Duration
}

type injectSpecs []injectSpec

func (l *injectSpecs) String() string { return fmt.Sprintf("%d injections", len(*l)) }

func (l *injectSpecs) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 4 {
		return fmt.Errorf("inject spec %q: want NODE:CONC:START:END (e.g. J40:100:2h:4h)", v)
	}
	conc, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || conc < 0 {
		return fmt.Errorf("inject spec %q: bad concentration %q", v, parts[1])
	}
	start, err := time.ParseDuration(parts[2])
	if err != nil || start < 0 {
		return fmt.Errorf("inject spec %q: bad start %q", v, parts[2])
	}
	end, err := time.ParseDuration(parts[3])
	if err != nil || end < start {
		return fmt.Errorf("inject spec %q: bad end %q", v, parts[3])
	}
	*l = append(*l, injectSpec{node: parts[0], conc: conc, start: start, end: end})
	return nil
}

func (l *leakSpecs) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("leak spec %q: want NODE:SIZE:START (e.g. J45:0.002:30m)", v)
	}
	size, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || size <= 0 {
		return fmt.Errorf("leak spec %q: bad size %q", v, parts[1])
	}
	start, err := time.ParseDuration(parts[2])
	if err != nil || start < 0 {
		return fmt.Errorf("leak spec %q: bad start %q", v, parts[2])
	}
	*l = append(*l, leakSpec{node: parts[0], size: size, start: start})
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aquasim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		netName  = flag.String("net", "epanet", "network: epanet, wssc, test, or a path to an INP file")
		duration = flag.Duration("duration", 4*time.Hour, "simulated time span")
		step     = flag.Duration("step", 15*time.Minute, "hydraulic / sampling step")
		format   = flag.String("format", "csv", "output format: csv or json")
		what     = flag.String("series", "pressure", "series to dump: pressure, flow or quality")
		decay    = flag.Float64("decay", 0, "first-order constituent decay per hour (quality series)")
		leaks    leakSpecs
		injects  injectSpecs
	)
	flag.Var(&leaks, "leak", "leak event NODE:SIZE:START (repeatable); SIZE is EC in m^3/s per m^0.5")
	flag.Var(&injects, "inject", "quality injection NODE:CONC:START:END (repeatable, mg/L)")
	flag.Parse()

	net, err := loadNetwork(*netName)
	if err != nil {
		return err
	}
	emitters := make([]aquascale.ScheduledEmitter, 0, len(leaks))
	for _, spec := range leaks {
		idx, ok := net.NodeIndex(spec.node)
		if !ok {
			return fmt.Errorf("unknown node %q in network %s", spec.node, net.Name)
		}
		emitters = append(emitters, aquascale.ScheduledEmitter{
			Node: idx, Coeff: spec.size, Start: spec.start,
		})
	}

	ts, err := aquascale.RunEPS(net, aquascale.EPSOptions{Duration: *duration, Step: *step}, emitters)
	if err != nil {
		return err
	}

	if *what == "quality" {
		injections := make([]aquascale.Injection, 0, len(injects))
		for _, spec := range injects {
			idx, ok := net.NodeIndex(spec.node)
			if !ok {
				return fmt.Errorf("unknown node %q in network %s", spec.node, net.Name)
			}
			injections = append(injections, aquascale.Injection{
				Node: idx, Concentration: spec.conc, Start: spec.start, End: spec.end,
			})
		}
		if len(injections) == 0 {
			return fmt.Errorf("quality series needs at least one -inject NODE:CONC:START:END")
		}
		qr, err := aquascale.RunQuality(net, ts, injections, aquascale.QualityOptions{DecayRate: *decay})
		if err != nil {
			return err
		}
		return writeQualityCSV(net, qr)
	}

	switch *format {
	case "csv":
		return writeCSV(net, ts, *what)
	case "json":
		return writeJSON(net, ts, *what)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func loadNetwork(name string) (*aquascale.Network, error) {
	switch name {
	case "epanet":
		return aquascale.BuildEPANet(), nil
	case "wssc":
		return aquascale.BuildWSSCSubnet(), nil
	case "test":
		return aquascale.BuildTestNet(), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	net, err := aquascale.ReadINP(f)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

func writeCSV(net *aquascale.Network, ts *aquascale.TimeSeries, what string) error {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{"time_min"}
	switch what {
	case "pressure":
		for i := range net.Nodes {
			header = append(header, net.Nodes[i].ID)
		}
	case "flow":
		for i := range net.Links {
			header = append(header, net.Links[i].ID)
		}
	default:
		return fmt.Errorf("unknown series %q", what)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for k := range ts.Times {
		row := []string{strconv.FormatFloat(ts.Times[k].Minutes(), 'f', 1, 64)}
		var vals []float64
		if what == "pressure" {
			vals = ts.Pressure[k]
		} else {
			vals = ts.Flow[k]
		}
		for _, v := range vals {
			row = append(row, strconv.FormatFloat(v, 'f', 6, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// writeQualityCSV dumps per-node constituent concentrations.
func writeQualityCSV(net *aquascale.Network, qr *aquascale.QualityResult) error {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{"time_min"}
	for i := range net.Nodes {
		header = append(header, net.Nodes[i].ID)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for k := range qr.Times {
		row := []string{strconv.FormatFloat(qr.Times[k].Minutes(), 'f', 1, 64)}
		for _, c := range qr.Node[k] {
			row = append(row, strconv.FormatFloat(c, 'f', 4, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

type jsonOutput struct {
	Network string               `json:"network"`
	Series  string               `json:"series"`
	IDs     []string             `json:"ids"`
	TimeMin []float64            `json:"timeMinutes"`
	Values  [][]float64          `json:"values"`
	Leaks   []map[string]float64 `json:"leakOutflow,omitempty"`
}

func writeJSON(net *aquascale.Network, ts *aquascale.TimeSeries, what string) error {
	out := jsonOutput{Network: net.Name, Series: what}
	switch what {
	case "pressure":
		for i := range net.Nodes {
			out.IDs = append(out.IDs, net.Nodes[i].ID)
		}
		out.Values = ts.Pressure
	case "flow":
		for i := range net.Links {
			out.IDs = append(out.IDs, net.Links[i].ID)
		}
		out.Values = ts.Flow
	default:
		return fmt.Errorf("unknown series %q", what)
	}
	for k := range ts.Times {
		out.TimeMin = append(out.TimeMin, ts.Times[k].Minutes())
		leakMap := make(map[string]float64)
		for node, q := range ts.EmitterOutflow[k] {
			leakMap[net.Nodes[node].ID] = q
		}
		out.Leaks = append(out.Leaks, leakMap)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
