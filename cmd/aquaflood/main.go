// Command aquaflood simulates the cascading flood impact of pipe failures:
// leaks discharge at their pressure-dependent rate (eq. 1 of the paper)
// onto a DEM interpolated from the network's node elevations, and a
// shallow-water model spreads the water over the terrain.
//
// Example:
//
//	aquaflood -net wssc -leak W150:0.004 -leak W230:0.0015 -duration 2h
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/aquascale/aquascale"
)

type leakSpec struct {
	node string
	size float64
}

type leakSpecs []leakSpec

func (l *leakSpecs) String() string { return fmt.Sprintf("%d leaks", len(*l)) }

func (l *leakSpecs) Set(v string) error {
	node, sizeStr, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("leak spec %q: want NODE:SIZE", v)
	}
	size, err := strconv.ParseFloat(sizeStr, 64)
	if err != nil || size <= 0 {
		return fmt.Errorf("leak spec %q: bad size %q", v, sizeStr)
	}
	*l = append(*l, leakSpec{node: node, size: size})
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aquaflood:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		netName  = flag.String("net", "wssc", "network: epanet, wssc or test")
		duration = flag.Duration("duration", 2*time.Hour, "flood simulation span")
		cell     = flag.Float64("cell", 40, "DEM cell size in meters")
		rough    = flag.Float64("rough", 0.25, "DEM micro-topography roughness std in meters")
		leaks    leakSpecs
	)
	flag.Var(&leaks, "leak", "leak NODE:SIZE (repeatable); SIZE is EC in m^3/s per m^0.5")
	flag.Parse()
	if len(leaks) == 0 {
		return fmt.Errorf("at least one -leak NODE:SIZE is required")
	}

	var net *aquascale.Network
	switch *netName {
	case "epanet":
		net = aquascale.BuildEPANet()
	case "wssc":
		net = aquascale.BuildWSSCSubnet()
	case "test":
		net = aquascale.BuildTestNet()
	default:
		return fmt.Errorf("unknown network %q", *netName)
	}

	solver, err := aquascale.NewSolver(net, aquascale.SolverOptions{})
	if err != nil {
		return err
	}
	emitters := make([]aquascale.Emitter, 0, len(leaks))
	for _, spec := range leaks {
		idx, ok := net.NodeIndex(spec.node)
		if !ok {
			return fmt.Errorf("unknown node %q", spec.node)
		}
		emitters = append(emitters, aquascale.Emitter{Node: idx, Coeff: spec.size})
	}
	res, err := solver.SolveSteady(8*time.Hour, emitters, nil)
	if err != nil {
		return err
	}

	dem, err := aquascale.DEMFromNetwork(net, *cell, 2)
	if err != nil {
		return err
	}
	dem.AddRoughness(*rough, 5)
	var sources []aquascale.FloodSource
	fmt.Println("leak discharge (pressure-dependent, eq. 1):")
	for _, e := range emitters {
		q := res.EmitterFlow[e.Node]
		node := net.Nodes[e.Node]
		fmt.Printf("  %s: %.1f L/s at %.1f m pressure head\n", node.ID, q*1000, res.Pressure[e.Node])
		sources = append(sources, aquascale.FloodSource{
			X: node.X, Y: node.Y,
			Rate: func(time.Duration) float64 { return q },
		})
	}

	sim, err := aquascale.SimulateFlood(dem, sources, aquascale.FloodConfig{Duration: *duration})
	if err != nil {
		return err
	}
	fmt.Printf("\nafter %v:\n", *duration)
	fmt.Printf("  released volume:     %.0f m3\n", sim.InflowVolume)
	fmt.Printf("  flooded area >1 cm:  %.0f m2\n", sim.FloodedArea(dem, 0.01))
	fmt.Printf("  flooded area >10 cm: %.0f m2\n", sim.FloodedArea(dem, 0.10))

	fmt.Println("\nmax-depth map ('.': <1cm, ':': <5cm, '*': <20cm, '#': >=20cm):")
	printDepthMap(dem, sim)
	return nil
}

func printDepthMap(dem *aquascale.DEM, sim *aquascale.FloodResult) {
	const maxW, maxH = 70, 30
	stepX := (dem.Width + maxW - 1) / maxW
	stepY := (dem.Height + maxH - 1) / maxH
	if stepX < 1 {
		stepX = 1
	}
	if stepY < 1 {
		stepY = 1
	}
	for y0 := dem.Height - 1; y0 >= 0; y0 -= stepY {
		var sb strings.Builder
		for x0 := 0; x0 < dem.Width; x0 += stepX {
			peak := 0.0
			for dy := 0; dy < stepY && y0-dy >= 0; dy++ {
				for dx := 0; dx < stepX && x0+dx < dem.Width; dx++ {
					if d := sim.MaxDepth[(y0-dy)*dem.Width+x0+dx]; d > peak {
						peak = d
					}
				}
			}
			switch {
			case peak >= 0.20:
				sb.WriteByte('#')
			case peak >= 0.05:
				sb.WriteByte('*')
			case peak >= 0.01:
				sb.WriteByte(':')
			case peak > 0:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		fmt.Println(strings.TrimRight(sb.String(), " "))
	}
}
