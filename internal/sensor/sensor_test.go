package sensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/network"
)

func testBaseline(t *testing.T, net *network.Network) *hydraulic.TimeSeries {
	t.Helper()
	ts, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{
		Duration: 6 * time.Hour,
		Step:     time.Hour,
	}, nil)
	if err != nil {
		t.Fatalf("baseline EPS: %v", err)
	}
	return ts
}

func TestPlacerCandidates(t *testing.T) {
	net := network.BuildTestNet()
	p, err := NewPlacer(net, testBaseline(t, net))
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	want := len(net.Nodes) + len(net.Links) // all links open
	if got := p.CandidateCount(); got != want {
		t.Fatalf("candidates = %d, want %d", got, want)
	}
}

func TestPlacerExcludesClosedLinks(t *testing.T) {
	net := network.BuildTestNet()
	idx, _ := net.LinkIndex("P7")
	net.Links[idx].Status = network.Closed
	p, err := NewPlacer(net, testBaseline(t, net))
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	want := len(net.Nodes) + len(net.Links) - 1
	if got := p.CandidateCount(); got != want {
		t.Fatalf("candidates = %d, want %d", got, want)
	}
	for _, c := range allSensors(t, p) {
		if c.Kind == Flow && c.Index == idx {
			t.Fatal("closed link offered as flow-meter candidate")
		}
	}
}

func allSensors(t *testing.T, p *Placer) []Sensor {
	t.Helper()
	all, err := p.KMedoids(p.CandidateCount(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("KMedoids(all): %v", err)
	}
	return all
}

func TestKMedoidsCountAndDistinct(t *testing.T) {
	net := network.BuildEPANet()
	p, err := NewPlacer(net, testBaseline(t, net))
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, count := range []int{1, 5, 20, 60} {
		sensors, err := p.KMedoids(count, rng)
		if err != nil {
			t.Fatalf("KMedoids(%d): %v", count, err)
		}
		if len(sensors) != count {
			t.Fatalf("placed %d sensors, want %d", len(sensors), count)
		}
		seen := make(map[Sensor]bool)
		for _, s := range sensors {
			if seen[s] {
				t.Fatalf("duplicate sensor %+v", s)
			}
			seen[s] = true
		}
	}
}

func TestKMedoidsSpreadsBetterThanWorstCase(t *testing.T) {
	// The medoid placement should achieve lower within-cluster scatter than
	// an adversarially clumped selection. Compare mean distance from each
	// candidate to its nearest selected sensor.
	net := network.BuildEPANet()
	base := testBaseline(t, net)
	p, err := NewPlacer(net, base)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	count := 12
	medoids, err := p.KMedoids(count, rng)
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	// Clumped: first `count` candidates (consecutive nodes, highly correlated).
	clumped := make([]Sensor, count)
	copy(clumped, allSensorsOrdered(p)[:count])
	if cost(p, medoids) >= cost(p, clumped) {
		t.Fatalf("k-medoids cost %v not better than clumped cost %v",
			cost(p, medoids), cost(p, clumped))
	}
}

func allSensorsOrdered(p *Placer) []Sensor { return p.candidates }

// cost computes mean squared distance from every candidate signature to the
// nearest selected sensor's signature.
func cost(p *Placer, selected []Sensor) float64 {
	selIdx := make([]int, 0, len(selected))
	for _, s := range selected {
		for i, c := range p.candidates {
			if c == s {
				selIdx = append(selIdx, i)
				break
			}
		}
	}
	total := 0.0
	for i := range p.candidates {
		best := math.Inf(1)
		for _, j := range selIdx {
			if d := sqDist(p.signatures[i], p.signatures[j]); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(p.candidates))
}

func TestPlacerValidation(t *testing.T) {
	net := network.BuildTestNet()
	p, _ := NewPlacer(net, testBaseline(t, net))
	rng := rand.New(rand.NewSource(1))
	if _, err := p.KMedoids(0, rng); err == nil {
		t.Fatal("zero count should error")
	}
	if _, err := p.KMedoids(3, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	if _, err := p.Random(-1, rng); err == nil {
		t.Fatal("negative count should error")
	}
	if _, err := p.Random(3, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	empty := &hydraulic.TimeSeries{}
	if _, err := NewPlacer(net, empty); err == nil {
		t.Fatal("empty baseline should error")
	}
}

func TestRandomPlacement(t *testing.T) {
	net := network.BuildTestNet()
	p, _ := NewPlacer(net, testBaseline(t, net))
	rng := rand.New(rand.NewSource(5))
	sensors, err := p.Random(4, rng)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	if len(sensors) != 4 {
		t.Fatalf("placed %d, want 4", len(sensors))
	}
	all, err := p.Random(9999, rng)
	if err != nil {
		t.Fatalf("Random(all): %v", err)
	}
	if len(all) != p.CandidateCount() {
		t.Fatalf("oversized request returned %d, want %d", len(all), p.CandidateCount())
	}
}

func TestCountForPercent(t *testing.T) {
	net := network.BuildTestNet() // 8 nodes + 9 links = 17 candidates
	p, _ := NewPlacer(net, testBaseline(t, net))
	if got := p.CountForPercent(100); got != p.CandidateCount() {
		t.Fatalf("100%% = %d, want %d", got, p.CandidateCount())
	}
	if got := p.CountForPercent(0.0001); got != 1 {
		t.Fatalf("tiny pct = %d, want 1", got)
	}
	if got := p.CountForPercent(50); got != int(math.Round(float64(p.CandidateCount())/2)) {
		t.Fatalf("50%% = %d", got)
	}
	if got := p.CountForPercent(500); got != p.CandidateCount() {
		t.Fatalf("oversized pct = %d", got)
	}
}

func TestReadNoiseFreeMatchesResult(t *testing.T) {
	net := network.BuildTestNet()
	s, err := hydraulic.NewSolver(net, hydraulic.Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	j5, _ := net.NodeIndex("J5")
	p1, _ := net.LinkIndex("P1")
	sensors := []Sensor{{Kind: Pressure, Index: j5}, {Kind: Flow, Index: p1}}
	vals := Read(sensors, res, DefaultNoise, nil) // nil rng → noise-free
	if vals[0] != res.Pressure[j5] || vals[1] != res.Flow[p1] {
		t.Fatalf("Read = %v, want [%v %v]", vals, res.Pressure[j5], res.Flow[p1])
	}
}

func TestReadNoiseStatistics(t *testing.T) {
	net := network.BuildTestNet()
	s, _ := hydraulic.NewSolver(net, hydraulic.Options{})
	res, _ := s.SolveSteady(0, nil, nil)
	j5, _ := net.NodeIndex("J5")
	sensors := []Sensor{{Kind: Pressure, Index: j5}}
	rng := rand.New(rand.NewSource(11))
	noise := Noise{PressureStd: 0.5}
	const trials = 4000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		v := Read(sensors, res, noise, rng)[0] - res.Pressure[j5]
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)
	if math.Abs(mean) > 0.03 {
		t.Fatalf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(std-0.5) > 0.05 {
		t.Fatalf("noise std = %v, want ~0.5", std)
	}
}

// TestReadUnknownKindPanics pins the fail-loud contract: a sensor with an
// uninitialized or unknown Kind must panic (naming the sensor index)
// instead of silently reading 0.0 into the feature stream.
func TestReadUnknownKindPanics(t *testing.T) {
	net := network.BuildTestNet()
	s, err := hydraulic.NewSolver(net, hydraulic.Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	sensors := []Sensor{{Kind: Pressure, Index: 0}, {}} // zero Kind at index 1
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Read with an unknown sensor kind did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "sensor 1") {
			t.Fatalf("panic %v does not name the offending sensor index", r)
		}
	}()
	Read(sensors, res, DefaultNoise, nil)
}

// TestApplyNoiseUnknownKindPanics covers the same guard on the noise path,
// which also runs on simulated re-readings that bypass Read.
func TestApplyNoiseUnknownKindPanics(t *testing.T) {
	sensors := []Sensor{{Kind: Kind(99), Index: 0}}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ApplyNoise with an unknown sensor kind did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "sensor 0") {
			t.Fatalf("panic %v does not name the offending sensor index", r)
		}
	}()
	ApplyNoise(sensors, []float64{1}, DefaultNoise, rand.New(rand.NewSource(1)))
}

func TestDelta(t *testing.T) {
	d := Delta([]float64{1, 2, 3}, []float64{1.5, 1.0, 3.0})
	if d[0] != 0.5 || d[1] != -1.0 || d[2] != 0.0 {
		t.Fatalf("Delta = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Delta([]float64{1}, []float64{1, 2})
}
