// Package sensor models the IoT instrumentation layer: pressure transducers
// at nodes and flow meters on pipes, sampled at the hydraulic time step
// (15 minutes in the paper), with Gaussian measurement noise.
//
// It also implements sensor placement. The paper selects sensor locations
// by partitioning the |V|+|E| candidate locations with the k-medoids
// algorithm over baseline pressure/flow signatures and instrumenting the
// cluster medoids; a uniform-random placer is provided as an ablation
// baseline.
package sensor

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/network"
)

// Kind distinguishes pressure sensors (on nodes) from flow meters (on
// links).
type Kind int

// Sensor kinds.
const (
	Pressure Kind = iota + 1
	Flow
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Pressure:
		return "pressure"
	case Flow:
		return "flow"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Sensor is one installed IoT device.
type Sensor struct {
	Kind  Kind
	Index int // node index (Pressure) or link index (Flow)
}

// Noise is the Gaussian measurement-noise model.
type Noise struct {
	// PressureStd is the standard deviation of pressure readings (m).
	PressureStd float64

	// FlowStd is the standard deviation of flow readings (m³/s).
	FlowStd float64
}

// DefaultNoise matches commodity district-metering instruments: ±2 cm
// of water column and ±0.2 L/s.
var DefaultNoise = Noise{PressureStd: 0.02, FlowStd: 2e-4}

// Read samples every sensor from a steady-state snapshot, adding Gaussian
// noise (rng may be nil for noise-free readings). A sensor with an unknown
// Kind panics: silently reading 0.0 would flow into training features as a
// plausible value and corrupt every downstream model.
func Read(sensors []Sensor, res *hydraulic.Result, noise Noise, rng *rand.Rand) []float64 {
	out := make([]float64, len(sensors))
	for i, s := range sensors {
		switch s.Kind {
		case Pressure:
			out[i] = res.Pressure[s.Index]
		case Flow:
			out[i] = res.Flow[s.Index]
		default:
			panic(fmt.Sprintf("sensor: Read: sensor %d has unknown kind %v", i, s.Kind))
		}
	}
	ApplyNoise(sensors, out, noise, rng)
	return out
}

// ApplyNoise perturbs noise-free readings in place with one fresh Gaussian
// measurement-noise draw per sensor, selecting each sensor's standard
// deviation by kind. It is the single source of truth for the per-kind
// noise model: Read and every simulated re-reading (e.g. the independent
// pre-leak baseline sample) share it, so a new sensor kind gets noise in
// every path or none. A nil rng or a zero standard deviation leaves the
// affected readings untouched (and draws nothing, keeping rng streams
// independent of zero-noise channels).
func ApplyNoise(sensors []Sensor, vals []float64, noise Noise, rng *rand.Rand) {
	if rng == nil {
		return
	}
	if len(vals) != len(sensors) {
		panic(fmt.Sprintf("sensor: ApplyNoise length mismatch %d vs %d", len(vals), len(sensors)))
	}
	for i, s := range sensors {
		var sd float64
		switch s.Kind {
		case Pressure:
			sd = noise.PressureStd
		case Flow:
			sd = noise.FlowStd
		default:
			panic(fmt.Sprintf("sensor: ApplyNoise: sensor %d has unknown kind %v", i, s.Kind))
		}
		if sd > 0 {
			vals[i] += rng.NormFloat64() * sd
		}
	}
}

// Delta returns after−before element-wise — the paper's feature: the change
// in each sensor's reading across the leak onset.
func Delta(before, after []float64) []float64 {
	if len(before) != len(after) {
		panic(fmt.Sprintf("sensor: Delta length mismatch %d vs %d", len(before), len(after)))
	}
	out := make([]float64, len(before))
	for i := range before {
		out[i] = after[i] - before[i]
	}
	return out
}

// Placer selects sensor locations for a network using baseline hydraulic
// signatures (one time series per candidate location).
type Placer struct {
	candidates []Sensor
	signatures [][]float64 // normalized, aligned with candidates
}

// NewPlacer builds a placer from a baseline (leak-free) extended-period
// simulation: each node contributes its pressure series, each open pipe its
// flow series. Signatures are normalized to zero mean and unit norm so
// pressures and flows cluster on shape, not magnitude.
func NewPlacer(net *network.Network, baseline *hydraulic.TimeSeries) (*Placer, error) {
	if baseline.Steps() == 0 {
		return nil, fmt.Errorf("sensor: baseline has no snapshots")
	}
	p := &Placer{}
	for i := range net.Nodes {
		sig := make([]float64, baseline.Steps())
		for k := range sig {
			sig[k] = baseline.Pressure[k][i]
		}
		p.candidates = append(p.candidates, Sensor{Kind: Pressure, Index: i})
		p.signatures = append(p.signatures, normalize(sig))
	}
	for j := range net.Links {
		if net.Links[j].Status == network.Closed {
			continue
		}
		sig := make([]float64, baseline.Steps())
		for k := range sig {
			sig[k] = baseline.Flow[k][j]
		}
		p.candidates = append(p.candidates, Sensor{Kind: Flow, Index: j})
		p.signatures = append(p.signatures, normalize(sig))
	}
	return p, nil
}

// CandidateCount returns |V|+|E| (open links only).
func (p *Placer) CandidateCount() int { return len(p.candidates) }

// normalize shifts to zero mean and scales to unit norm; constant series
// map to the zero vector.
func normalize(sig []float64) []float64 {
	mean := 0.0
	for _, v := range sig {
		mean += v
	}
	mean /= float64(len(sig))
	out := make([]float64, len(sig))
	norm := 0.0
	for i, v := range sig {
		out[i] = v - mean
		norm += out[i] * out[i]
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// KMedoids places count sensors at the medoids of a k-medoids partition of
// the candidate locations (Voronoi-iteration PAM variant). count values at
// or above CandidateCount return full instrumentation.
func (p *Placer) KMedoids(count int, rng *rand.Rand) ([]Sensor, error) {
	n := len(p.candidates)
	if count <= 0 {
		return nil, fmt.Errorf("sensor: non-positive sensor count %d", count)
	}
	if rng == nil {
		return nil, fmt.Errorf("sensor: nil rng")
	}
	if count >= n {
		out := make([]Sensor, n)
		copy(out, p.candidates)
		return out, nil
	}

	// Initialize medoids with a random distinct sample.
	medoids := rng.Perm(n)[:count]
	assign := make([]int, n)
	members := make([][]int, count)

	for iter := 0; iter < 50; iter++ {
		// Assignment step.
		for i := range members {
			members[i] = members[i][:0]
		}
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for m, med := range medoids {
				if d := sqDist(p.signatures[i], p.signatures[med]); d < bestD {
					best, bestD = m, d
				}
			}
			assign[i] = best
		}
		for i := 0; i < n; i++ {
			members[assign[i]] = append(members[assign[i]], i)
		}

		// Update step: each cluster's medoid minimizes total distance to
		// its members.
		changed := false
		for m := range medoids {
			if len(members[m]) == 0 {
				continue
			}
			best, bestCost := medoids[m], math.Inf(1)
			for _, cand := range members[m] {
				cost := 0.0
				for _, other := range members[m] {
					cost += sqDist(p.signatures[cand], p.signatures[other])
				}
				if cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			if best != medoids[m] {
				medoids[m] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	out := make([]Sensor, count)
	for i, med := range medoids {
		out[i] = p.candidates[med]
	}
	return out, nil
}

// Random places count sensors uniformly at random — the placement-ablation
// baseline.
func (p *Placer) Random(count int, rng *rand.Rand) ([]Sensor, error) {
	n := len(p.candidates)
	if count <= 0 {
		return nil, fmt.Errorf("sensor: non-positive sensor count %d", count)
	}
	if rng == nil {
		return nil, fmt.Errorf("sensor: nil rng")
	}
	if count >= n {
		out := make([]Sensor, n)
		copy(out, p.candidates)
		return out, nil
	}
	out := make([]Sensor, count)
	for i, idx := range rng.Perm(n)[:count] {
		out[i] = p.candidates[idx]
	}
	return out, nil
}

// CountForPercent converts an IoT deployment percentage (the paper's
// "percentage of IoT observations") to a sensor count, at least 1.
func (p *Placer) CountForPercent(pct float64) int {
	c := int(math.Round(pct / 100 * float64(len(p.candidates))))
	if c < 1 {
		c = 1
	}
	if c > len(p.candidates) {
		c = len(p.candidates)
	}
	return c
}
