package detect

import (
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// TestDetectOnsetFromHydraulics drives the detector with real simulated
// IoT streams. Utilities detrend telemetry against the expected diurnal
// profile (the demand pattern steps hourly, which would otherwise swamp
// any change detector), so the detector consumes residuals: observed
// noisy readings minus the leak-free expectation at the same instant. A
// burst day must be flagged within a slot or two of onset; a leak-free
// day must stay quiet.
func TestDetectOnsetFromHydraulics(t *testing.T) {
	net := network.BuildEPANet()
	const step = 15 * time.Minute
	leakNode, _ := net.NodeIndex("J45")
	leakStart := 6 * time.Hour
	leakSlot := int(leakStart / step)

	run := func(emitters []hydraulic.ScheduledEmitter) [][]float64 {
		t.Helper()
		clean, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{
			Duration: 12 * time.Hour,
			Step:     step,
		}, nil)
		if err != nil {
			t.Fatalf("RunEPS(clean): %v", err)
		}
		ts, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{
			Duration: 12 * time.Hour,
			Step:     step,
		}, emitters)
		if err != nil {
			t.Fatalf("RunEPS: %v", err)
		}
		// Sample 40 sensors with realistic noise; emit residuals against
		// the noise-free expected profile.
		placer, err := sensor.NewPlacer(net, clean)
		if err != nil {
			t.Fatalf("NewPlacer: %v", err)
		}
		sensors, err := placer.KMedoids(40, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("KMedoids: %v", err)
		}
		noiseRng := rand.New(rand.NewSource(3))
		readings := make([][]float64, ts.Steps())
		for k := 0; k < ts.Steps(); k++ {
			res := &hydraulic.Result{Pressure: ts.Pressure[k], Flow: ts.Flow[k]}
			expectedRes := &hydraulic.Result{Pressure: clean.Pressure[k], Flow: clean.Flow[k]}
			observed := sensor.Read(sensors, res, sensor.DefaultNoise, noiseRng)
			expected := sensor.Read(sensors, expectedRes, sensor.Noise{}, nil)
			readings[k] = sensor.Delta(expected, observed)
		}
		return readings
	}

	// Burst day: detect near the true onset.
	withLeak := run([]hydraulic.ScheduledEmitter{{Node: leakNode, Coeff: 2e-3, Start: leakStart}})
	onset, found, err := DetectOnset(withLeak, OnsetConfig{})
	if err != nil {
		t.Fatalf("DetectOnset: %v", err)
	}
	if !found {
		t.Fatal("burst not detected")
	}
	if onset.Slot < leakSlot || onset.Slot > leakSlot+2 {
		t.Fatalf("onset detected at slot %d, true onset %d", onset.Slot, leakSlot)
	}

	// Quiet day: the diurnal demand cycle alone must not alarm.
	clean := run(nil)
	if _, found, err := DetectOnset(clean, OnsetConfig{}); err != nil {
		t.Fatalf("DetectOnset(clean): %v", err)
	} else if found {
		t.Fatal("false network alarm on a leak-free day")
	}
}
