package detect

import (
	"math/rand"
	"testing"
)

// stream builds a noisy series with a level shift at changeAt.
func stream(rng *rand.Rand, n, changeAt int, base, shift, noise float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		v := base
		if changeAt >= 0 && i >= changeAt {
			v += shift
		}
		out[i] = v + rng.NormFloat64()*noise
	}
	return out
}

func TestCUSUMDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCUSUM(CUSUMConfig{})
	series := stream(rng, 60, 30, 40, -1.5, 0.05)
	alarmAt := -1
	for i, v := range series {
		if c.Update(v) {
			alarmAt = i
			break
		}
	}
	if alarmAt < 30 {
		t.Fatalf("alarm before the change: %d", alarmAt)
	}
	if alarmAt > 36 {
		t.Fatalf("alarm too late: slot %d for change at 30", alarmAt)
	}
	if !c.Alarmed() {
		t.Fatal("alarm state not sticky")
	}
	// Alarm stays on regardless of further input.
	if !c.Update(40) {
		t.Fatal("alarm cleared by new data")
	}
	c.Reset()
	if c.Alarmed() {
		t.Fatal("Reset did not clear the alarm")
	}
}

func TestCUSUMNoFalseAlarmOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		c := NewCUSUM(CUSUMConfig{})
		series := stream(rng, 200, -1, 40, 0, 0.05)
		for i, v := range series {
			if c.Update(v) {
				t.Fatalf("trial %d: false alarm at slot %d", trial, i)
			}
		}
	}
}

func TestCUSUMTracksSlowDrift(t *testing.T) {
	// A gentle seasonal drift (well below the drift slack) must not alarm.
	rng := rand.New(rand.NewSource(3))
	c := NewCUSUM(CUSUMConfig{})
	for i := 0; i < 300; i++ {
		v := 40 + float64(i)*0.0004 + rng.NormFloat64()*0.05
		if c.Update(v) {
			t.Fatalf("alarm on slow drift at slot %d", i)
		}
	}
}

func TestCUSUMDetectsPositiveShift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewCUSUM(CUSUMConfig{})
	series := stream(rng, 60, 25, 10, +0.8, 0.05)
	alarmAt := -1
	for i, v := range series {
		if c.Update(v) {
			alarmAt = i
			break
		}
	}
	if alarmAt < 25 || alarmAt > 31 {
		t.Fatalf("positive shift alarm at %d, want 25-31", alarmAt)
	}
}

// TestCUSUMSlowRampAlarms is the regression test for the
// adapt-through-the-leak bug: a slow pressure ramp kept the sums
// elevated-but-subcritical while the baseline and scale kept adapting,
// absorbing the leak so the alarm never fired. With adaptation frozen at
// half the threshold the detector must catch this ramp.
func TestCUSUMSlowRampAlarms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewCUSUM(CUSUMConfig{})
	alarmAt := -1
	for i := 0; i < 3000; i++ {
		v := 40.0
		if i >= 50 {
			// 0.0005 per slot: ~10x the noise std only after 1000 slots —
			// slow enough that an always-adapting baseline tracks it forever.
			v -= 0.0005 * float64(i-50)
		}
		if c.Update(v + rng.NormFloat64()*0.05) {
			alarmAt = i
			break
		}
	}
	if alarmAt < 0 {
		t.Fatal("slow ramp absorbed into the baseline: no alarm in 3000 slots")
	}
	if alarmAt < 50 {
		t.Fatalf("alarm before the ramp started: slot %d", alarmAt)
	}
	if alarmAt > 1000 {
		t.Fatalf("alarm too late for a slow ramp: slot %d", alarmAt)
	}
}

// TestCUSUMAdaptationFreezesWhenElevated pins the mechanism directly:
// once either sum passes half the threshold, the baseline and scale stop
// moving until the detector either alarms or decays back to quiescence.
func TestCUSUMAdaptationFreezesWhenElevated(t *testing.T) {
	c := NewCUSUM(CUSUMConfig{})
	// Warmup on an alternating pair so the learned scale is positive.
	for i := 0; i < 16; i++ {
		v := 40.0
		if i%2 == 1 {
			v = 40.1
		}
		c.Update(v)
	}
	// Feed mildly low readings until the negative sum crosses half the
	// threshold (still below alarm level).
	for i := 0; c.negSum <= c.cfg.Threshold/2; i++ {
		if i > 200 {
			t.Fatal("negative sum never reached the freeze region")
		}
		if c.Update(c.baseline - 0.1) {
			t.Fatal("alarmed before reaching the freeze region")
		}
	}
	base, scale := c.baseline, c.scale
	if c.Update(base - 0.1) {
		// Crossing the full threshold here would also be fine for the
		// detector, but the test wants the frozen window.
		t.Skip("alarm fired immediately after the freeze point")
	}
	if c.baseline != base || c.scale != scale {
		t.Fatalf("adaptation continued while elevated: baseline %v→%v, scale %v→%v",
			base, c.baseline, scale, c.scale)
	}
}

func TestDetectOnsetQuorum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const sensors = 20
	const changeAt = 40
	readings := make([][]float64, 80)
	// Half the sensors see the change; half do not.
	cols := make([][]float64, sensors)
	for s := 0; s < sensors; s++ {
		at := -1
		if s < sensors/2 {
			at = changeAt
		}
		cols[s] = stream(rng, len(readings), at, 30+float64(s), -1.0, 0.05)
	}
	for k := range readings {
		row := make([]float64, sensors)
		for s := 0; s < sensors; s++ {
			row[s] = cols[s][k]
		}
		readings[k] = row
	}
	onset, found, err := DetectOnset(readings, OnsetConfig{Quorum: 5})
	if err != nil {
		t.Fatalf("DetectOnset: %v", err)
	}
	if !found {
		t.Fatal("onset not detected")
	}
	if onset.Slot < changeAt || onset.Slot > changeAt+6 {
		t.Fatalf("onset slot %d, want near %d", onset.Slot, changeAt)
	}
	if onset.FirstAlarmSlot > onset.Slot {
		t.Fatalf("first alarm %d after quorum slot %d", onset.FirstAlarmSlot, onset.Slot)
	}
	if onset.AlarmedSensors < 5 {
		t.Fatalf("alarmed sensors = %d", onset.AlarmedSensors)
	}
}

func TestDetectOnsetNoChange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	readings := make([][]float64, 100)
	for k := range readings {
		row := make([]float64, 10)
		for s := range row {
			row[s] = 25 + rng.NormFloat64()*0.05
		}
		readings[k] = row
	}
	_, found, err := DetectOnset(readings, OnsetConfig{})
	if err != nil {
		t.Fatalf("DetectOnset: %v", err)
	}
	if found {
		t.Fatal("phantom onset on pure noise")
	}
}

func TestDetectOnsetValidation(t *testing.T) {
	if _, _, err := DetectOnset(nil, OnsetConfig{}); err == nil {
		t.Fatal("empty matrix should error")
	}
	bad := [][]float64{{1, 2}, {1}}
	if _, _, err := DetectOnset(bad, OnsetConfig{}); err == nil {
		t.Fatal("ragged matrix should error")
	}
}
