// Package detect estimates the leak onset time e.t from raw IoT streams.
//
// The paper assumes the starting time slot of a failure is known and
// focuses on locating e.l; a deployed system must first notice that
// *something* happened. This package implements the standard change-point
// machinery for that: a two-sided CUSUM detector per sensor over
// standardized residuals from an exponentially-weighted baseline, and a
// quorum rule across sensors that turns per-sensor alarms into a network
// alarm with an onset estimate. The output slot is what Phase II uses as
// e.t.
package detect

import (
	"fmt"
	"math"
)

// CUSUMConfig tunes one sensor's change detector.
type CUSUMConfig struct {
	// Drift is the CUSUM slack k in standard deviations — changes smaller
	// than this are ignored. Zero means 0.5.
	Drift float64

	// Threshold is the alarm level h in standard deviations. Zero means 8
	// (high: a pipe burst shifts readings by tens of σ, so sensitivity is
	// cheap and false alarms are the real cost).
	Threshold float64

	// BaselineAlpha is the EWMA weight for the adaptive baseline.
	// Zero means 0.05 (slow drift tracking).
	BaselineAlpha float64

	// WarmupSamples estimate the residual scale before alarms may fire.
	// Zero means 16.
	WarmupSamples int
}

func (c CUSUMConfig) withDefaults() CUSUMConfig {
	if c.Drift <= 0 {
		c.Drift = 0.5
	}
	if c.Threshold <= 0 {
		c.Threshold = 8
	}
	if c.BaselineAlpha <= 0 {
		c.BaselineAlpha = 0.05
	}
	if c.WarmupSamples <= 0 {
		c.WarmupSamples = 16
	}
	return c
}

// CUSUM is a two-sided cumulative-sum change detector with an adaptive
// EWMA baseline and online scale estimation.
type CUSUM struct {
	cfg      CUSUMConfig
	n        int
	scaleN   int // quiescent samples folded into the running-mean scale
	baseline float64
	scale    float64 // mean absolute residual (robust-ish σ proxy)
	posSum   float64
	negSum   float64
	alarmed  bool
}

// scaleSamples is how many quiescent residuals feed the running-mean scale
// estimate before it switches to EWMA tracking. The handful of warmup
// samples alone underestimates the noise scale often enough to inflate
// every standardized residual and trip false alarms.
const scaleSamples = 64

// NewCUSUM creates a detector.
func NewCUSUM(cfg CUSUMConfig) *CUSUM {
	return &CUSUM{cfg: cfg.withDefaults()}
}

// Update consumes one reading and reports whether the detector is in the
// alarmed state. Once alarmed it stays alarmed until Reset.
func (c *CUSUM) Update(v float64) bool {
	if c.alarmed {
		return true
	}
	c.n++
	if c.n == 1 {
		c.baseline = v
		return false
	}
	residual := v - c.baseline
	absR := math.Abs(residual)

	if c.n <= c.cfg.WarmupSamples {
		// Warmup: learn the noise scale, keep the baseline current.
		c.scaleN++
		c.scale += (absR - c.scale) / float64(c.scaleN)
		c.baseline += c.cfg.BaselineAlpha * residual
		return false
	}
	scale := c.scale
	if scale < 1e-12 {
		scale = 1e-12
	}
	z := residual / (scale * 1.2533) // E|X| = σ·√(2/π) for Gaussian noise
	c.posSum = math.Max(0, c.posSum+z-c.cfg.Drift)
	c.negSum = math.Max(0, c.negSum-z-c.cfg.Drift)
	if c.posSum > c.cfg.Threshold || c.negSum > c.cfg.Threshold {
		c.alarmed = true
		return true
	}
	// Only adapt the baseline (and scale) while quiescent. Quiescent means
	// both sums are below half the threshold — not merely below it: a slow
	// ramp keeps the sums elevated-but-subcritical for many slots, and
	// adapting through that window absorbs the leak into the baseline
	// before the alarm can ever fire.
	if c.posSum < c.cfg.Threshold/2 && c.negSum < c.cfg.Threshold/2 {
		c.baseline += c.cfg.BaselineAlpha * residual
		if c.scaleN < scaleSamples {
			// Still converging: running mean over quiescent residuals beats
			// the EWMA here because it weights all evidence equally.
			c.scaleN++
			c.scale += (absR - c.scale) / float64(c.scaleN)
		} else {
			c.scale += c.cfg.BaselineAlpha * (absR - c.scale)
		}
	}
	return false
}

// Alarmed reports the sticky alarm state.
func (c *CUSUM) Alarmed() bool { return c.alarmed }

// Reset clears the alarm and statistics.
func (c *CUSUM) Reset() {
	*c = CUSUM{cfg: c.cfg}
}

// OnsetConfig tunes network-level onset detection.
type OnsetConfig struct {
	// Sensor is the per-sensor CUSUM configuration.
	Sensor CUSUMConfig

	// Quorum is the number of sensors that must alarm before the network
	// alarm fires. Zero means max(2, 5% of sensors).
	Quorum int
}

// Onset is a detected network change.
type Onset struct {
	// Slot is the reading index at which the quorum was reached.
	Slot int

	// FirstAlarmSlot is the earliest individual sensor alarm.
	FirstAlarmSlot int

	// AlarmedSensors counts sensors alarmed at Slot.
	AlarmedSensors int
}

// DetectOnset scans a reading matrix (readings[slot][sensor]) and returns
// the first slot at which the alarm quorum is reached.
func DetectOnset(readings [][]float64, cfg OnsetConfig) (Onset, bool, error) {
	if len(readings) == 0 || len(readings[0]) == 0 {
		return Onset{}, false, fmt.Errorf("detect: empty reading matrix")
	}
	sensors := len(readings[0])
	quorum := cfg.Quorum
	if quorum <= 0 {
		quorum = sensors / 20
		if quorum < 2 {
			quorum = 2
		}
	}
	if quorum > sensors {
		quorum = sensors
	}
	dets := make([]*CUSUM, sensors)
	for i := range dets {
		dets[i] = NewCUSUM(cfg.Sensor)
	}
	firstAlarm := -1
	for slot, row := range readings {
		if len(row) != sensors {
			return Onset{}, false, fmt.Errorf("detect: ragged readings at slot %d", slot)
		}
		alarmed := 0
		for i, v := range row {
			wasAlarmed := dets[i].Alarmed()
			if dets[i].Update(v) {
				alarmed++
				if !wasAlarmed && firstAlarm < 0 {
					firstAlarm = slot
				}
			}
		}
		if alarmed >= quorum {
			return Onset{
				Slot:           slot,
				FirstAlarmSlot: firstAlarm,
				AlarmedSensors: alarmed,
			}, true, nil
		}
	}
	return Onset{}, false, nil
}
