// Package faults provides deterministic fault injection for robustness
// testing of the AquaSCALE pipeline: sensor dropout, stuck-at and NaN
// readings, forced hydraulic-solver non-convergence, and slow/failed
// online localize requests (the serving layer's degradation probes).
//
// Every random decision is drawn from a caller-provided rng — in the
// pipeline, a stream derived from the per-scenario seed — so injected
// runs are bit-identical for any worker count and GOMAXPROCS setting,
// exactly like the noise draws they ride alongside. A zero Config is
// fully disabled: it injects nothing and, crucially, draws nothing, so
// disabling faults leaves every downstream random stream untouched.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale/internal/telemetry"
)

// ErrInjectedFailure is the terminal error of a localize request forced
// to fail by Config.RequestFail — distinguishable from real failures so
// degradation tests can assert on the injection itself.
var ErrInjectedFailure = errors.New("faults: injected request failure")

// Config sets per-fault injection rates. All rates are probabilities in
// [0, 1]; the three sensor rates are mutually exclusive per reading and
// must sum to at most 1.
type Config struct {
	// Dropout is the per-sensor probability that a reading is lost in
	// transit: the sensor's value becomes NaN (missing), which the
	// feature pipeline later sanitizes to a zero delta.
	Dropout float64

	// Stuck is the per-sensor probability that the sensor holds its
	// previous (pre-leak) value instead of the fresh reading — the
	// classic stuck-at fault of aging transducers.
	Stuck float64

	// NaN is the per-sensor probability that the device emits a literal
	// NaN (firmware glitch). Downstream it behaves like Dropout but is
	// injected and counted separately.
	NaN float64

	// SolverFail is the per-solve probability that the hydraulic solve
	// for a scenario is forced to fail with a ConvergenceError, which is
	// what exercises the retry/skip machinery.
	SolverFail float64

	// SolverFailAttempts is how many leading attempts of a hit solve are
	// forced to fail (default 1): 1 means one retry recovers the solve,
	// a value above the retry budget makes the scenario skip.
	SolverFailAttempts int

	// RequestSlow is the per-request probability that an online localize
	// job is delayed by RequestDelay before running — the serving layer's
	// slow-solve degradation probe (exercises queue backpressure and
	// request timeouts).
	RequestSlow float64

	// RequestDelay is the injected delay for a slowed request. Zero with
	// RequestSlow > 0 means 50ms.
	RequestDelay time.Duration

	// RequestFail is the per-request probability that an online localize
	// job is forced to fail with ErrInjectedFailure.
	RequestFail float64
}

// Enabled reports whether any fault channel is active.
func (c Config) Enabled() bool {
	return c.Dropout > 0 || c.Stuck > 0 || c.NaN > 0 || c.SolverFail > 0 ||
		c.RequestSlow > 0 || c.RequestFail > 0
}

// Validate checks rate ranges.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"Dropout", c.Dropout}, {"Stuck", c.Stuck}, {"NaN", c.NaN}, {"SolverFail", c.SolverFail},
		{"RequestSlow", c.RequestSlow}, {"RequestFail", c.RequestFail},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("faults: %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	if sum := c.Dropout + c.Stuck + c.NaN; sum > 1 {
		return fmt.Errorf("faults: sensor fault rates sum to %v > 1", sum)
	}
	if c.SolverFailAttempts < 0 {
		return fmt.Errorf("faults: negative SolverFailAttempts %d", c.SolverFailAttempts)
	}
	if c.RequestDelay < 0 {
		return fmt.Errorf("faults: negative RequestDelay %v", c.RequestDelay)
	}
	return nil
}

// Injector applies a Config to sensor readings and hydraulic solves. All
// methods are safe on a nil receiver (no-ops), so pipelines can hold a
// nil *Injector when faults are disabled.
type Injector struct {
	cfg Config

	// Telemetry handles, bound at construction; nil no-ops when
	// telemetry is off.
	mDropout *telemetry.Counter
	mStuck   *telemetry.Counter
	mNaN     *telemetry.Counter
	mSolver  *telemetry.Counter
	mSlow    *telemetry.Counter
	mFail    *telemetry.Counter
}

// New validates cfg and builds an injector. A disabled config returns
// (nil, nil): the nil injector is the canonical "no faults" value.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	reg := telemetry.Default()
	return &Injector{
		cfg:      cfg,
		mDropout: reg.Counter("faults_sensor_dropouts_total"),
		mStuck:   reg.Counter("faults_sensor_stuck_total"),
		mNaN:     reg.Counter("faults_sensor_nan_total"),
		mSolver:  reg.Counter("faults_forced_nonconvergence_total"),
		mSlow:    reg.Counter("faults_request_slow_total"),
		mFail:    reg.Counter("faults_request_failed_total"),
	}, nil
}

// Enabled reports whether the injector injects anything (false on nil).
func (in *Injector) Enabled() bool { return in != nil && in.cfg.Enabled() }

// Config returns the injector's configuration (zero on nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// PerturbReadings applies sensor faults to readings in place. held is the
// value a stuck sensor reports (the stale pre-leak reading); a nil held
// leaves stuck sensors at their current reading. Exactly one uniform draw
// is consumed per reading regardless of outcome, so the rng stream length
// depends only on the sensor count — never on which faults fired.
func (in *Injector) PerturbReadings(readings, held []float64, rng *rand.Rand) {
	if in == nil || rng == nil {
		return
	}
	d, s, n := in.cfg.Dropout, in.cfg.Stuck, in.cfg.NaN
	if d == 0 && s == 0 && n == 0 {
		return
	}
	for i := range readings {
		u := rng.Float64()
		switch {
		case u < d:
			readings[i] = math.NaN()
			in.mDropout.Inc()
		case u < d+s:
			if held != nil {
				readings[i] = held[i]
			}
			in.mStuck.Inc()
		case u < d+s+n:
			readings[i] = math.NaN()
			in.mNaN.Inc()
		}
	}
}

// RequestPlan draws the injected degradation for one online localize
// request from rng: a delay to impose before the job runs (0 when the
// slow channel missed or is disabled) and a forced error (nil, or
// ErrInjectedFailure). At most one uniform is consumed per enabled
// channel and none when a channel is disabled, so request-fault streams
// stay untouched at zero rates — the same stream discipline as the
// sensor and solver channels.
func (in *Injector) RequestPlan(rng *rand.Rand) (time.Duration, error) {
	if in == nil || rng == nil {
		return 0, nil
	}
	var delay time.Duration
	if in.cfg.RequestSlow > 0 && rng.Float64() < in.cfg.RequestSlow {
		delay = in.cfg.RequestDelay
		if delay <= 0 {
			delay = 50 * time.Millisecond
		}
		in.mSlow.Inc()
	}
	if in.cfg.RequestFail > 0 && rng.Float64() < in.cfg.RequestFail {
		in.mFail.Inc()
		return delay, ErrInjectedFailure
	}
	return delay, nil
}

// SolveHook returns a hydraulic.Solver failure hook bound to rng, or nil
// when forced non-convergence is disabled. The hook draws once per solve
// (at attempt 0) whether the solve is hit; a hit solve fails its first
// SolverFailAttempts attempts and then succeeds, so retry budgets at or
// above that count recover it and smaller budgets exhaust into a skip.
func (in *Injector) SolveHook(rng *rand.Rand) func(t time.Duration, attempt int) bool {
	if in == nil || in.cfg.SolverFail <= 0 || rng == nil {
		return nil
	}
	attempts := in.cfg.SolverFailAttempts
	if attempts <= 0 {
		attempts = 1
	}
	hit := false
	return func(_ time.Duration, attempt int) bool {
		if attempt == 0 {
			hit = rng.Float64() < in.cfg.SolverFail
			if hit {
				in.mSolver.Inc()
			}
		}
		return hit && attempt < attempts
	}
}
