package faults

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/telemetry"
)

func TestRequestPlanNilInjector(t *testing.T) {
	var inj *Injector
	delay, err := inj.RequestPlan(rand.New(rand.NewSource(1)))
	if delay != 0 || err != nil {
		t.Fatalf("nil injector plan = (%v, %v), want (0, nil)", delay, err)
	}
	inj2, err := New(Config{RequestSlow: 1})
	if err != nil {
		t.Fatal(err)
	}
	if delay, err := inj2.RequestPlan(nil); delay != 0 || err != nil {
		t.Fatalf("nil rng plan = (%v, %v), want (0, nil)", delay, err)
	}
}

func TestRequestPlanSlowChannel(t *testing.T) {
	inj, err := New(Config{RequestSlow: 1})
	if err != nil {
		t.Fatal(err)
	}
	delay, planErr := inj.RequestPlan(rand.New(rand.NewSource(1)))
	if planErr != nil {
		t.Fatalf("slow-only plan errored: %v", planErr)
	}
	if delay != 50*time.Millisecond {
		t.Fatalf("default delay = %v, want 50ms", delay)
	}

	inj, err = New(Config{RequestSlow: 1, RequestDelay: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if delay, _ := inj.RequestPlan(rand.New(rand.NewSource(1))); delay != 120*time.Millisecond {
		t.Fatalf("configured delay = %v, want 120ms", delay)
	}
}

func TestRequestPlanFailChannel(t *testing.T) {
	inj, err := New(Config{RequestFail: 1})
	if err != nil {
		t.Fatal(err)
	}
	delay, planErr := inj.RequestPlan(rand.New(rand.NewSource(1)))
	if !errors.Is(planErr, ErrInjectedFailure) {
		t.Fatalf("err = %v, want ErrInjectedFailure", planErr)
	}
	if delay != 0 {
		t.Fatalf("fail-only plan delayed %v", delay)
	}
}

// TestRequestPlanStreamDiscipline pins the documented draw budget: one
// uniform per enabled channel, none for disabled ones, so adding request
// faults never shifts other channels' rng streams.
func TestRequestPlanStreamDiscipline(t *testing.T) {
	inj, err := New(Config{RequestSlow: 0.5, RequestFail: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	if _, err := inj.RequestPlan(rng); err != nil && !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("RequestPlan: %v", err)
	}
	got := rng.Int63()
	control := rand.New(rand.NewSource(11))
	control.Float64()
	control.Float64()
	if want := control.Int63(); got != want {
		t.Fatal("plan with both channels enabled consumed != 2 draws")
	}

	// Request channels disabled: the stream is untouched even when other
	// fault channels are on.
	inj, err = New(Config{Dropout: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(11))
	if _, err := inj.RequestPlan(rng); err != nil {
		t.Fatalf("RequestPlan: %v", err)
	}
	if got, want := rng.Int63(), rand.New(rand.NewSource(11)).Int63(); got != want {
		t.Fatal("disabled request channels consumed rng draws")
	}
}

func TestRequestConfigValidateAndEnabled(t *testing.T) {
	bad := []Config{
		{RequestSlow: -0.1},
		{RequestSlow: 1.5},
		{RequestFail: 2},
		{RequestDelay: -time.Second},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", cfg)
		}
	}
	if (Config{RequestDelay: time.Second}).Enabled() {
		t.Fatal("a bare delay with zero RequestSlow should not enable the injector")
	}
	for _, cfg := range []Config{{RequestSlow: 0.1}, {RequestFail: 0.1}} {
		if !cfg.Enabled() {
			t.Errorf("Enabled(%+v) = false", cfg)
		}
	}
}

func TestRequestPlanTelemetry(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	inj, err := New(Config{RequestSlow: 1, RequestFail: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inj.RequestPlan(rand.New(rand.NewSource(1))); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("err = %v, want ErrInjectedFailure", err)
	}
	if got := reg.Counter("faults_request_slow_total").Value(); got != 1 {
		t.Fatalf("faults_request_slow_total = %d, want 1", got)
	}
	if got := reg.Counter("faults_request_failed_total").Value(); got != 1 {
		t.Fatalf("faults_request_failed_total = %d, want 1", got)
	}
}
