package faults

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/telemetry"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Dropout: -0.1},
		{Stuck: 1.5},
		{NaN: math.NaN()},
		{SolverFail: 2},
		{Dropout: 0.5, Stuck: 0.4, NaN: 0.2}, // sums to 1.1
		{SolverFailAttempts: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", cfg)
		}
	}
	good := []Config{
		{},
		{Dropout: 0.5, Stuck: 0.3, NaN: 0.2},
		{SolverFail: 1, SolverFailAttempts: 4},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", cfg, err)
		}
	}
}

func TestNewDisabledReturnsNil(t *testing.T) {
	inj, err := New(Config{})
	if err != nil {
		t.Fatalf("New(zero): %v", err)
	}
	if inj != nil {
		t.Fatal("disabled config should return a nil injector")
	}
	// The nil injector is a safe no-op everywhere.
	if inj.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	readings := []float64{1, 2, 3}
	inj.PerturbReadings(readings, nil, rand.New(rand.NewSource(1)))
	if readings[0] != 1 || readings[1] != 2 || readings[2] != 3 {
		t.Fatal("nil injector perturbed readings")
	}
	if hook := inj.SolveHook(rand.New(rand.NewSource(1))); hook != nil {
		t.Fatal("nil injector returned a solve hook")
	}
}

func TestPerturbReadingsOutcomes(t *testing.T) {
	// Rate-1 configs pin each fault's observable effect.
	held := []float64{10, 20, 30}
	t.Run("dropout", func(t *testing.T) {
		inj, err := New(Config{Dropout: 1})
		if err != nil {
			t.Fatal(err)
		}
		r := []float64{1, 2, 3}
		inj.PerturbReadings(r, held, rand.New(rand.NewSource(2)))
		for i, v := range r {
			if !math.IsNaN(v) {
				t.Fatalf("reading %d = %v, want NaN after dropout", i, v)
			}
		}
	})
	t.Run("stuck", func(t *testing.T) {
		inj, err := New(Config{Stuck: 1})
		if err != nil {
			t.Fatal(err)
		}
		r := []float64{1, 2, 3}
		inj.PerturbReadings(r, held, rand.New(rand.NewSource(2)))
		for i, v := range r {
			if v != held[i] {
				t.Fatalf("reading %d = %v, want held value %v", i, v, held[i])
			}
		}
	})
	t.Run("nan", func(t *testing.T) {
		inj, err := New(Config{NaN: 1})
		if err != nil {
			t.Fatal(err)
		}
		r := []float64{1, 2, 3}
		inj.PerturbReadings(r, held, rand.New(rand.NewSource(2)))
		for i, v := range r {
			if !math.IsNaN(v) {
				t.Fatalf("reading %d = %v, want NaN", i, v)
			}
		}
	})
}

// TestPerturbReadingsFixedDrawCount pins the stream-length contract: one
// uniform draw per reading regardless of which faults fire, so downstream
// consumers of the same rng see the same stream for any fault config with
// equal sensor counts.
func TestPerturbReadingsFixedDrawCount(t *testing.T) {
	for _, cfg := range []Config{
		{Dropout: 1},
		{Dropout: 0.2, Stuck: 0.2, NaN: 0.2},
		{Stuck: 0.01},
	} {
		inj, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		r := make([]float64, 9)
		inj.PerturbReadings(r, nil, rng)
		got := rng.Int63()

		control := rand.New(rand.NewSource(7))
		for i := 0; i < 9; i++ {
			control.Float64()
		}
		if want := control.Int63(); got != want {
			t.Fatalf("config %+v consumed a different number of draws", cfg)
		}
	}
}

func TestPerturbReadingsDeterministic(t *testing.T) {
	inj, err := New(Config{Dropout: 0.3, Stuck: 0.3, NaN: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		r := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		held := []float64{0, 0, 0, 0, 0, 0, 0, 0}
		inj.PerturbReadings(r, held, rand.New(rand.NewSource(11)))
		return r
	}
	a, b := run(), run()
	for i := range a {
		same := a[i] == b[i] || (math.IsNaN(a[i]) && math.IsNaN(b[i]))
		if !same {
			t.Fatalf("reading %d diverged across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSolveHook(t *testing.T) {
	inj, err := New(Config{SolverFail: 1, SolverFailAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	hook := inj.SolveHook(rand.New(rand.NewSource(3)))
	if hook == nil {
		t.Fatal("expected a hook for SolverFail=1")
	}
	// A hit solve fails attempts 0 and 1, then succeeds.
	for attempt, want := range []bool{true, true, false, false} {
		if got := hook(time.Hour, attempt); got != want {
			t.Fatalf("attempt %d: hook = %v, want %v", attempt, got, want)
		}
	}

	// Rate 0 solver fail (but other channels on) yields no hook.
	inj, err = New(Config{Dropout: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if inj.SolveHook(rand.New(rand.NewSource(3))) != nil {
		t.Fatal("SolverFail=0 should yield a nil hook")
	}
}

// TestSolveHookDrawsOncePerSolve pins that the hit decision consumes
// exactly one draw at attempt 0 and nothing on retries.
func TestSolveHookDrawsOncePerSolve(t *testing.T) {
	inj, err := New(Config{SolverFail: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	hook := inj.SolveHook(rng)
	hook(0, 0)
	hook(0, 1)
	hook(0, 2)
	got := rng.Int63()

	control := rand.New(rand.NewSource(5))
	control.Float64()
	if want := control.Int63(); got != want {
		t.Fatal("hook consumed draws beyond the one per-solve hit decision")
	}
}

func TestInjectorTelemetry(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	inj, err := New(Config{Dropout: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, 5)
	inj.PerturbReadings(r, nil, rand.New(rand.NewSource(1)))
	if got := reg.Counter("faults_sensor_dropouts_total").Value(); got != 5 {
		t.Fatalf("faults_sensor_dropouts_total = %d, want 5", got)
	}
}
