package mlearn

import (
	"math"
	"math/rand"

	"github.com/aquascale/aquascale/internal/matrix"
)

// SVMConfig configures the linear SVM.
type SVMConfig struct {
	// Lambda is the regularization strength of the primal objective.
	// Zero means 1e-3.
	Lambda float64

	// Epochs of Pegasos stochastic subgradient descent. Zero means 40.
	Epochs int

	// Seed drives sampling order.
	Seed int64
}

// SVM is a linear soft-margin support vector machine trained with the
// Pegasos stochastic subgradient method — the paper's "SVM". Probabilities
// come from Platt scaling: a logistic sigmoid fitted to the decision
// margins.
type SVM struct {
	cfg    SVMConfig
	scale  *scaler
	w      []float64
	bias   float64
	plattA float64
	plattB float64
	fitted bool
}

var _ Classifier = (*SVM)(nil)

// NewSVM creates an unfitted SVM.
func NewSVM(cfg SVMConfig) *SVM {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	return &SVM{cfg: cfg}
}

// Fit runs Pegasos with balanced class weights, then fits the Platt
// sigmoid on the training margins.
func (m *SVM) Fit(x [][]float64, y []int) error {
	d, err := validateXY(x, y)
	if err != nil {
		return err
	}
	m.scale = fitScaler(x)
	cw := classWeights(y)
	n := len(x)
	xs := make([][]float64, n)
	sign := make([]float64, n)
	for i := range x {
		xs[i] = m.scale.transform(x[i])
		if y[i] == 1 {
			sign[i] = 1
		} else {
			sign[i] = -1
		}
	}

	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.w = make([]float64, d)
	m.bias = 0
	lambda := m.cfg.Lambda
	t := 0
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		for _, i := range rng.Perm(n) {
			t++
			eta := 1 / (lambda * float64(t))
			margin := sign[i] * (matrix.Dot(m.w, xs[i]) + m.bias)
			matrix.Scale(1-eta*lambda, m.w)
			if margin < 1 {
				c := eta * cw[y[i]] * sign[i]
				matrix.AxpY(c, xs[i], m.w)
				m.bias += c
			}
		}
	}

	// Platt scaling on the training margins, with the standard label
	// smoothing to avoid overconfidence.
	margins := make([]float64, n)
	for i := range xs {
		margins[i] = matrix.Dot(m.w, xs[i]) + m.bias
	}
	m.plattA, m.plattB = fitPlatt(margins, y)
	m.fitted = true
	return nil
}

// fitPlatt fits P(y=1|m) = sigmoid(A·m + B) by gradient descent on the
// cross-entropy with Platt's smoothed targets.
func fitPlatt(margins []float64, y []int) (a, b float64) {
	nPos, nNeg := 0, 0
	for _, v := range y {
		if v == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	tPos := (float64(nPos) + 1) / (float64(nPos) + 2)
	tNeg := 1 / (float64(nNeg) + 2)
	targets := make([]float64, len(y))
	for i, v := range y {
		if v == 1 {
			targets[i] = tPos
		} else {
			targets[i] = tNeg
		}
	}
	a, b = 1, 0
	lr := 0.01
	for epoch := 0; epoch < 500; epoch++ {
		var ga, gb float64
		for i, mgn := range margins {
			p := sigmoid(a*mgn + b)
			g := p - targets[i]
			ga += g * mgn
			gb += g
		}
		inv := 1 / float64(len(margins))
		a -= lr * ga * inv
		b -= lr * gb * inv
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return 1, 0
	}
	return a, b
}

// PredictProba returns the Platt-scaled margin. Non-finite features are
// treated as 0 (see Classifier).
func (m *SVM) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	xi := m.scale.transform(cleanFeatures(x))
	margin := matrix.Dot(m.w, xi) + m.bias
	return sigmoid(m.plattA*margin + m.plattB)
}

// Margin returns the raw decision value (distance from the separating
// hyperplane in scaled feature space).
func (m *SVM) Margin(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	xi := m.scale.transform(cleanFeatures(x))
	return matrix.Dot(m.w, xi) + m.bias
}
