package mlearn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Serialization of trained classifiers, so a profile trained offline
// (Phase I can take hours at paper scale) can be saved and reloaded for
// online inference. Each classifier flattens to an exported-field state
// struct; a kind tag selects the decoder. Training-only bookkeeping (the
// forest's out-of-bag estimates) is not persisted.

// ErrUnknownModelKind is returned when decoding an unrecognized tag.
var ErrUnknownModelKind = errors.New("mlearn: unknown model kind")

// envelope wraps any model state with its kind tag.
type envelope struct {
	Kind    string
	Payload []byte
}

// flatNode is a tree node in flattened (index-linked) form.
type flatNode struct {
	Feature   int
	Threshold float64
	Left      int // index into the flat slice; -1 for leaves
	Right     int
	Value     float64
	Leaf      bool
}

func flattenTree(root *treeNode) []flatNode {
	var out []flatNode
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		idx := len(out)
		out = append(out, flatNode{
			Feature:   n.feature,
			Threshold: n.threshold,
			Value:     n.value,
			Leaf:      n.leaf,
			Left:      -1,
			Right:     -1,
		})
		if !n.leaf {
			out[idx].Left = walk(n.left)
			out[idx].Right = walk(n.right)
		}
		return idx
	}
	if root != nil {
		walk(root)
	}
	return out
}

func unflattenTree(nodes []flatNode) (*treeNode, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	built := make([]*treeNode, len(nodes))
	for i := range nodes {
		built[i] = &treeNode{
			feature:   nodes[i].Feature,
			threshold: nodes[i].Threshold,
			value:     nodes[i].Value,
			leaf:      nodes[i].Leaf,
		}
	}
	for i, fn := range nodes {
		if fn.Leaf {
			continue
		}
		if fn.Left < 0 || fn.Left >= len(built) || fn.Right < 0 || fn.Right >= len(built) {
			return nil, fmt.Errorf("mlearn: corrupt tree: node %d links (%d,%d) out of %d",
				i, fn.Left, fn.Right, len(built))
		}
		built[i].left = built[fn.Left]
		built[i].right = built[fn.Right]
	}
	return built[0], nil
}

// scalerState is the exported form of a feature scaler.
type scalerState struct {
	Mean []float64
	Inv  []float64
}

func scalerToState(s *scaler) *scalerState {
	if s == nil {
		return nil
	}
	return &scalerState{Mean: s.mean, Inv: s.inv}
}

func stateToScaler(s *scalerState) *scaler {
	if s == nil {
		return nil
	}
	return &scaler{mean: s.Mean, inv: s.Inv}
}

// Per-classifier state structs.

type linearState struct {
	Cfg    LinearConfig
	Scale  *scalerState
	W      []float64
	Bias   float64
	Fitted bool
}

type logisticState struct {
	Cfg    LogisticConfig
	Scale  *scalerState
	W      []float64
	Bias   float64
	Fitted bool
}

type treeState struct {
	Cfg   TreeConfig
	Nodes []flatNode
}

type forestState struct {
	Cfg   RFConfig
	Trees [][]flatNode
}

type gbState struct {
	Cfg   GBConfig
	Bias  float64
	Trees [][]flatNode
}

type svmState struct {
	Cfg    SVMConfig
	Scale  *scalerState
	W      []float64
	Bias   float64
	PlattA float64
	PlattB float64
	Fitted bool
}

type hybridState struct {
	Seed   int64
	RF     []byte // nested envelopes
	SVM    []byte
	Meta   []byte
	Fitted bool
}

// SaveClassifier serializes a trained classifier (any of this package's
// implementations) to w.
func SaveClassifier(w io.Writer, c Classifier) error {
	env, err := encodeClassifier(c)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(env)
}

// LoadClassifier reads a classifier previously written by SaveClassifier.
func LoadClassifier(r io.Reader) (Classifier, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("mlearn: decode envelope: %w", err)
	}
	return decodeClassifier(env)
}

func encodeClassifier(c Classifier) (envelope, error) {
	var (
		kind  string
		state interface{}
	)
	switch m := c.(type) {
	case *LinearRegression:
		kind = "linear"
		state = linearState{Cfg: m.cfg, Scale: scalerToState(m.scale), W: m.w, Bias: m.bias, Fitted: m.fitted}
	case *LogisticRegression:
		kind = "logistic"
		state = logisticState{Cfg: m.cfg, Scale: scalerToState(m.scale), W: m.w, Bias: m.bias, Fitted: m.fitted}
	case *DecisionTree:
		kind = "tree"
		state = treeState{Cfg: m.cfg, Nodes: flattenTree(m.root)}
	case *RandomForest:
		trees := make([][]flatNode, len(m.trees))
		for i, t := range m.trees {
			trees[i] = flattenTree(t)
		}
		kind = "rf"
		state = forestState{Cfg: m.cfg, Trees: trees}
	case *GradientBoosting:
		trees := make([][]flatNode, len(m.trees))
		for i, t := range m.trees {
			trees[i] = flattenTree(t)
		}
		kind = "gb"
		state = gbState{Cfg: m.cfg, Bias: m.bias, Trees: trees}
	case *SVM:
		kind = "svm"
		state = svmState{
			Cfg: m.cfg, Scale: scalerToState(m.scale),
			W: m.w, Bias: m.bias, PlattA: m.plattA, PlattB: m.plattB, Fitted: m.fitted,
		}
	case *HybridRSL:
		if !m.fitted {
			return envelope{}, errors.New("mlearn: cannot save unfitted hybrid")
		}
		rfB, err := marshalEnvelope(m.rf)
		if err != nil {
			return envelope{}, err
		}
		svmB, err := marshalEnvelope(m.svm)
		if err != nil {
			return envelope{}, err
		}
		metaB, err := marshalEnvelope(m.meta)
		if err != nil {
			return envelope{}, err
		}
		kind = "hybrid-rsl"
		state = hybridState{Seed: m.cfg.Seed, RF: rfB, SVM: svmB, Meta: metaB, Fitted: true}
	default:
		return envelope{}, fmt.Errorf("mlearn: cannot serialize %T", c)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return envelope{}, fmt.Errorf("mlearn: encode %s state: %w", kind, err)
	}
	return envelope{Kind: kind, Payload: buf.Bytes()}, nil
}

func marshalEnvelope(c Classifier) ([]byte, error) {
	env, err := encodeClassifier(c)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func unmarshalEnvelope(data []byte) (Classifier, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, err
	}
	return decodeClassifier(env)
}

func decodeClassifier(env envelope) (Classifier, error) {
	dec := gob.NewDecoder(bytes.NewReader(env.Payload))
	switch env.Kind {
	case "linear":
		var s linearState
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
		return &LinearRegression{cfg: s.Cfg, scale: stateToScaler(s.Scale), w: s.W, bias: s.Bias, fitted: s.Fitted}, nil
	case "logistic":
		var s logisticState
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
		return &LogisticRegression{cfg: s.Cfg, scale: stateToScaler(s.Scale), w: s.W, bias: s.Bias, fitted: s.Fitted}, nil
	case "tree":
		var s treeState
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
		root, err := unflattenTree(s.Nodes)
		if err != nil {
			return nil, err
		}
		return &DecisionTree{cfg: s.Cfg, root: root}, nil
	case "rf":
		var s forestState
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
		m := &RandomForest{cfg: s.Cfg}
		for _, flat := range s.Trees {
			root, err := unflattenTree(flat)
			if err != nil {
				return nil, err
			}
			m.trees = append(m.trees, root)
		}
		return m, nil
	case "gb":
		var s gbState
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
		m := &GradientBoosting{cfg: s.Cfg, bias: s.Bias}
		for _, flat := range s.Trees {
			root, err := unflattenTree(flat)
			if err != nil {
				return nil, err
			}
			m.trees = append(m.trees, root)
		}
		return m, nil
	case "svm":
		var s svmState
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
		return &SVM{
			cfg: s.Cfg, scale: stateToScaler(s.Scale),
			w: s.W, bias: s.Bias, plattA: s.PlattA, plattB: s.PlattB, fitted: s.Fitted,
		}, nil
	case "hybrid-rsl":
		var s hybridState
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
		rfC, err := unmarshalEnvelope(s.RF)
		if err != nil {
			return nil, err
		}
		svmC, err := unmarshalEnvelope(s.SVM)
		if err != nil {
			return nil, err
		}
		metaC, err := unmarshalEnvelope(s.Meta)
		if err != nil {
			return nil, err
		}
		rf, ok1 := rfC.(*RandomForest)
		svm, ok2 := svmC.(*SVM)
		meta, ok3 := metaC.(*LogisticRegression)
		if !ok1 || !ok2 || !ok3 {
			return nil, errors.New("mlearn: corrupt hybrid state")
		}
		return &HybridRSL{
			cfg:    HybridConfig{Seed: s.Seed},
			rf:     rf,
			svm:    svm,
			meta:   meta,
			fitted: s.Fitted,
		}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModelKind, env.Kind)
	}
}

// multiOutputState is the persisted form of a MultiOutput bank.
type multiOutputState struct {
	Seed   int64
	Models [][]byte
}

// Save serializes the fitted multi-output bank. The factory is not
// persisted; a loaded bank can predict but not be refit.
func (m *MultiOutput) Save(w io.Writer) error {
	if m.models == nil {
		return ErrNotFitted
	}
	st := multiOutputState{Seed: m.seed, Models: make([][]byte, len(m.models))}
	for i, c := range m.models {
		b, err := marshalEnvelope(c)
		if err != nil {
			return fmt.Errorf("mlearn: output %d: %w", i, err)
		}
		st.Models[i] = b
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadMultiOutput reads a bank previously written by Save.
func LoadMultiOutput(r io.Reader) (*MultiOutput, error) {
	var st multiOutputState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("mlearn: decode multi-output: %w", err)
	}
	m := &MultiOutput{seed: st.Seed, models: make([]Classifier, len(st.Models))}
	for i, b := range st.Models {
		c, err := unmarshalEnvelope(b)
		if err != nil {
			return nil, fmt.Errorf("mlearn: output %d: %w", i, err)
		}
		m.models[i] = c
	}
	return m, nil
}

// encodeGob is a test seam for writing raw envelopes.
func encodeGob(w io.Writer, v interface{}) error {
	return gob.NewEncoder(w).Encode(v)
}
