package mlearn

// Flat, compiled inference for the Phase-II serving hot path.
//
// Compile converts a fitted classifier into a read-only form that
// evaluates without heap allocations: tree ensembles are flattened into
// contiguous node-major arrays traversed with a branchless child select,
// and the linear family inlines feature standardization into the weight
// accumulation loop. Compiled predictions are bit-identical to the
// source classifier: the flat traversal preserves the
// `x[f] <= threshold → left` split predicate (including its
// NaN-goes-right behavior), and the linear path keeps the exact
// transform-then-dot operation order of scaler.transform + matrix.Dot —
// the scaler is never algebraically folded into the weights, which would
// change floating-point rounding.

import "fmt"

// Compiled is the inference-only form of a fitted classifier produced by
// Compile. Implementations in this package are safe for concurrent use
// and allocate nothing on PredictProba when the input is finite.
type Compiled interface {
	// PredictProba returns P(y=1 | x), bit-identical to the source
	// classifier's PredictProba on the same input.
	PredictProba(x []float64) float64
}

// cleanPredictor is the internal fast-path contract: predictClean
// assumes x already passed cleanFeatures, letting CompiledMultiOutput
// sanitize once and share the vector across every per-node model.
type cleanPredictor interface {
	predictClean(x []float64) float64
}

const flatLeaf = int32(-1)

// flatArena stores one or more flattened trees in node-major parallel
// arrays. Node i's split feature is feature[i] (flatLeaf marks a leaf,
// whose prediction is stored in threshold[i]); its children are
// child[2i] (left) and child[2i+1] (right). Trees are laid out in
// preorder so a node's left child is adjacent to it.
type flatArena struct {
	feature   []int32
	threshold []float64
	child     []int32
	roots     []int32
}

// appendTree flattens the pointer tree rooted at n into the arena and
// records its root offset.
func (a *flatArena) appendTree(n *treeNode) {
	a.roots = append(a.roots, a.walk(n))
}

func (a *flatArena) walk(n *treeNode) int32 {
	idx := int32(len(a.feature))
	if n.leaf {
		a.feature = append(a.feature, flatLeaf)
		a.threshold = append(a.threshold, n.value)
		a.child = append(a.child, 0, 0)
		return idx
	}
	a.feature = append(a.feature, int32(n.feature))
	a.threshold = append(a.threshold, n.threshold)
	a.child = append(a.child, 0, 0)
	a.child[2*idx] = a.walk(n.left)
	a.child[2*idx+1] = a.walk(n.right)
	return idx
}

// predict traverses the tree at root r. The branch predicate mirrors
// treeNode.predict exactly — left iff x[f] <= threshold, so NaN (never
// ≤) goes right — but the child index is computed as a select instead
// of a pointer chase through two possible fields.
func (a *flatArena) predict(r int32, x []float64) float64 {
	i := r
	f := a.feature[i]
	for f >= 0 {
		b := int32(1)
		if x[f] <= a.threshold[i] {
			b = 0
		}
		i = a.child[2*i+b]
		f = a.feature[i]
	}
	return a.threshold[i]
}

// nodes returns the total flattened node count across all trees.
func (a *flatArena) nodes() int { return len(a.feature) }

// FlatTree is the compiled form of DecisionTree.
type FlatTree struct {
	a flatArena
}

var _ Compiled = (*FlatTree)(nil)

// Compile flattens the fitted tree into a contiguous arena.
func (m *DecisionTree) Compile() (*FlatTree, error) {
	if m.root == nil {
		return nil, fmt.Errorf("mlearn: compile decision tree: %w", ErrNotFitted)
	}
	t := &FlatTree{}
	t.a.appendTree(m.root)
	return t, nil
}

// PredictProba returns the leaf's positive fraction.
func (t *FlatTree) PredictProba(x []float64) float64 { return t.predictClean(cleanFeatures(x)) }

func (t *FlatTree) predictClean(x []float64) float64 {
	return clamp01(t.a.predict(t.a.roots[0], x))
}

// Nodes reports the flattened node count.
func (t *FlatTree) Nodes() int { return t.a.nodes() }

// FlatForest is the compiled form of RandomForest: all trees share one
// arena, walked root by root.
type FlatForest struct {
	a flatArena
	n float64 // float64(#trees), the divisor of the ensemble mean
}

var _ Compiled = (*FlatForest)(nil)

// Compile flattens the fitted ensemble into one shared arena.
func (m *RandomForest) Compile() (*FlatForest, error) {
	if len(m.trees) == 0 {
		return nil, fmt.Errorf("mlearn: compile random forest: %w", ErrNotFitted)
	}
	f := &FlatForest{n: float64(len(m.trees))}
	for _, root := range m.trees {
		f.a.appendTree(root)
	}
	return f, nil
}

// PredictProba averages the trees' leaf probabilities.
func (f *FlatForest) PredictProba(x []float64) float64 { return f.predictClean(cleanFeatures(x)) }

func (f *FlatForest) predictClean(x []float64) float64 {
	sum := 0.0
	for _, r := range f.a.roots {
		sum += f.a.predict(r, x)
	}
	return clamp01(sum / f.n)
}

// Nodes reports the flattened node count across all trees.
func (f *FlatForest) Nodes() int { return f.a.nodes() }

// FlatGBM is the compiled form of GradientBoosting.
type FlatGBM struct {
	a    flatArena
	bias float64
	lr   float64
}

var _ Compiled = (*FlatGBM)(nil)

// Compile flattens the fitted boosting stages into one shared arena.
func (m *GradientBoosting) Compile() (*FlatGBM, error) {
	if m.trees == nil {
		return nil, fmt.Errorf("mlearn: compile gradient boosting: %w", ErrNotFitted)
	}
	g := &FlatGBM{bias: m.bias, lr: m.cfg.LearningRate}
	for _, root := range m.trees {
		g.a.appendTree(root)
	}
	return g, nil
}

// PredictProba returns the sigmoid of the boosted score.
func (g *FlatGBM) PredictProba(x []float64) float64 { return g.predictClean(cleanFeatures(x)) }

func (g *FlatGBM) predictClean(x []float64) float64 {
	// Stages accumulate sequentially in training order — the same
	// rounding sequence as the pointer path.
	score := g.bias
	for _, r := range g.a.roots {
		score += g.lr * g.a.predict(r, x)
	}
	return sigmoid(score)
}

// Nodes reports the flattened node count across all stages.
func (g *FlatGBM) Nodes() int { return g.a.nodes() }

// scaledDot standardizes x on the fly and accumulates the weighted sum
// in index order — exactly the operations of scaler.transform followed
// by matrix.Dot, without the transform's per-call allocation.
func scaledDot(w, mean, inv, x []float64) float64 {
	s := 0.0
	for j, wj := range w {
		s += wj * ((x[j] - mean[j]) * inv[j])
	}
	return s
}

// FlatLinear is the compiled form of LinearRegression.
type FlatLinear struct {
	mean, inv, w []float64
	bias         float64
}

var _ Compiled = (*FlatLinear)(nil)

// Compile snapshots the fitted coefficients and scaler.
func (m *LinearRegression) Compile() (*FlatLinear, error) {
	if !m.fitted {
		return nil, fmt.Errorf("mlearn: compile linear regression: %w", ErrNotFitted)
	}
	return &FlatLinear{
		mean: cloneFloats(m.scale.mean),
		inv:  cloneFloats(m.scale.inv),
		w:    cloneFloats(m.w),
		bias: m.bias,
	}, nil
}

// PredictProba returns the clipped linear response.
func (l *FlatLinear) PredictProba(x []float64) float64 { return l.predictClean(cleanFeatures(x)) }

func (l *FlatLinear) predictClean(x []float64) float64 {
	return clamp01(scaledDot(l.w, l.mean, l.inv, x) + l.bias)
}

// FlatLogistic is the compiled form of LogisticRegression.
type FlatLogistic struct {
	mean, inv, w []float64
	bias         float64
}

var _ Compiled = (*FlatLogistic)(nil)

// Compile snapshots the fitted coefficients and scaler.
func (m *LogisticRegression) Compile() (*FlatLogistic, error) {
	if !m.fitted {
		return nil, fmt.Errorf("mlearn: compile logistic regression: %w", ErrNotFitted)
	}
	return &FlatLogistic{
		mean: cloneFloats(m.scale.mean),
		inv:  cloneFloats(m.scale.inv),
		w:    cloneFloats(m.w),
		bias: m.bias,
	}, nil
}

// PredictProba returns the sigmoid response.
func (l *FlatLogistic) PredictProba(x []float64) float64 { return l.predictClean(cleanFeatures(x)) }

func (l *FlatLogistic) predictClean(x []float64) float64 {
	return sigmoid(scaledDot(l.w, l.mean, l.inv, x) + l.bias)
}

// FlatSVM is the compiled form of SVM.
type FlatSVM struct {
	mean, inv, w   []float64
	bias           float64
	plattA, plattB float64
}

var _ Compiled = (*FlatSVM)(nil)

// Compile snapshots the fitted hyperplane, scaler and Platt sigmoid.
func (m *SVM) Compile() (*FlatSVM, error) {
	if !m.fitted {
		return nil, fmt.Errorf("mlearn: compile svm: %w", ErrNotFitted)
	}
	return &FlatSVM{
		mean:   cloneFloats(m.scale.mean),
		inv:    cloneFloats(m.scale.inv),
		w:      cloneFloats(m.w),
		bias:   m.bias,
		plattA: m.plattA,
		plattB: m.plattB,
	}, nil
}

// PredictProba returns the Platt-scaled margin.
func (s *FlatSVM) PredictProba(x []float64) float64 { return s.predictClean(cleanFeatures(x)) }

func (s *FlatSVM) predictClean(x []float64) float64 {
	margin := scaledDot(s.w, s.mean, s.inv, x) + s.bias
	return sigmoid(s.plattA*margin + s.plattB)
}

// FlatHybrid is the compiled form of HybridRSL: compiled RF and SVM legs
// fused through the compiled logistic meta layer over a stack-allocated
// meta-feature vector.
type FlatHybrid struct {
	rf   *FlatForest
	svm  *FlatSVM
	meta *FlatLogistic
}

var _ Compiled = (*FlatHybrid)(nil)

// Compile flattens both legs and the fusion layer.
func (m *HybridRSL) Compile() (*FlatHybrid, error) {
	if !m.fitted {
		return nil, fmt.Errorf("mlearn: compile hybrid-rsl: %w", ErrNotFitted)
	}
	rf, err := m.rf.Compile()
	if err != nil {
		return nil, fmt.Errorf("mlearn: compile hybrid-rsl: %w", err)
	}
	svm, err := m.svm.Compile()
	if err != nil {
		return nil, fmt.Errorf("mlearn: compile hybrid-rsl: %w", err)
	}
	meta, err := m.meta.Compile()
	if err != nil {
		return nil, fmt.Errorf("mlearn: compile hybrid-rsl: %w", err)
	}
	return &FlatHybrid{rf: rf, svm: svm, meta: meta}, nil
}

// PredictProba fuses the two legs through the logistic layer.
func (h *FlatHybrid) PredictProba(x []float64) float64 { return h.predictClean(cleanFeatures(x)) }

func (h *FlatHybrid) predictClean(x []float64) float64 {
	rfP := h.rf.predictClean(x)
	svmP := h.svm.predictClean(x)
	// Same layout as metaFeatures, but on the stack: probabilities are
	// finite by construction, so the meta layer can skip sanitization.
	mf := [4]float64{rfP, svmP, clippedLogit(rfP), clippedLogit(svmP)}
	return h.meta.predictClean(mf[:])
}

// passthrough serves classifier types Compile does not recognize through
// their own PredictProba: semantics are preserved, the compiled-path
// zero-allocation guarantee is not.
type passthrough struct{ c Classifier }

func (p passthrough) PredictProba(x []float64) float64 { return p.c.PredictProba(x) }
func (p passthrough) predictClean(x []float64) float64 { return p.c.PredictProba(x) }

// Compile returns the allocation-free compiled form of a fitted
// classifier. Every classifier in this package flattens to a dedicated
// representation; unknown types fall back to their own PredictProba.
func Compile(c Classifier) (Compiled, error) {
	switch m := c.(type) {
	case *DecisionTree:
		return m.Compile()
	case *RandomForest:
		return m.Compile()
	case *GradientBoosting:
		return m.Compile()
	case *LinearRegression:
		return m.Compile()
	case *LogisticRegression:
		return m.Compile()
	case *SVM:
		return m.Compile()
	case *HybridRSL:
		return m.Compile()
	default:
		return passthrough{c}, nil
	}
}

// CompiledMultiOutput is the compiled form of MultiOutput: every
// per-node classifier flattened, all evaluated against one shared
// sanitized feature vector.
type CompiledMultiOutput struct {
	models []cleanPredictor
}

// Compile flattens every fitted per-output classifier.
func (m *MultiOutput) Compile() (*CompiledMultiOutput, error) {
	if m.models == nil {
		return nil, ErrNotFitted
	}
	out := &CompiledMultiOutput{models: make([]cleanPredictor, len(m.models))}
	for v, c := range m.models {
		cc, err := Compile(c)
		if err != nil {
			return nil, fmt.Errorf("mlearn: compile output %d: %w", v, err)
		}
		cp, ok := cc.(cleanPredictor)
		if !ok {
			cp = passthrough{c}
		}
		out.models[v] = cp
	}
	return out, nil
}

// Outputs returns the number of compiled outputs.
func (c *CompiledMultiOutput) Outputs() int { return len(c.models) }

// PredictProbaInto writes P(y_v = 1 | x) for every output v into out,
// sanitizing x once and sharing it across all per-node models. It
// performs no heap allocations when x is finite. len(out) must equal
// Outputs().
func (c *CompiledMultiOutput) PredictProbaInto(x, out []float64) error {
	if len(out) != len(c.models) {
		return fmt.Errorf("mlearn: output buffer has %d slots, want %d", len(out), len(c.models))
	}
	x = cleanFeatures(x)
	for v, m := range c.models {
		out[v] = m.predictClean(x)
	}
	return nil
}

// PredictProba is the allocating convenience form of PredictProbaInto.
func (c *CompiledMultiOutput) PredictProba(x []float64) ([]float64, error) {
	out := make([]float64, len(c.models))
	if err := c.PredictProbaInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}

func cloneFloats(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
