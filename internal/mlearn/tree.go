package mlearn

import (
	"math/rand"
	"sort"
)

// CART trees with histogram-based split finding: every feature is
// quantile-binned once per Fit (at most 32 bins), and split search scans
// per-bin weight/target histograms instead of re-sorting samples at every
// node. This is the standard trick from modern boosting systems; it makes
// per-node split cost O(samples + bins) per feature and lets the forest
// and booster train on tens of thousands of hydraulic scenarios.

const maxBins = 32

// binner holds per-feature quantile bin edges and the precomputed bin
// index of every (sample, feature) pair.
type binner struct {
	// edges[f] are ascending cut values; bin b covers values in
	// (edges[b-1], edges[b]]; the last bin is open-ended.
	edges [][]float64

	// bins[i] is sample i's bin index per feature.
	bins [][]uint8
}

// newBinner computes quantile bins for the feature matrix.
func newBinner(x [][]float64) *binner {
	n := len(x)
	d := len(x[0])
	b := &binner{
		edges: make([][]float64, d),
		bins:  make([][]uint8, n),
	}
	vals := make([]float64, n)
	for f := 0; f < d; f++ {
		for i := range x {
			vals[i] = x[i][f]
		}
		sort.Float64s(vals)
		// Up to maxBins-1 quantile cuts, deduplicated.
		var edges []float64
		for k := 1; k < maxBins; k++ {
			q := vals[k*(n-1)/maxBins]
			if len(edges) == 0 || q > edges[len(edges)-1] {
				edges = append(edges, q)
			}
		}
		b.edges[f] = edges
	}
	for i := range x {
		row := make([]uint8, d)
		for f := 0; f < d; f++ {
			row[f] = uint8(sort.SearchFloat64s(b.edges[f], x[i][f]))
			// SearchFloat64s returns the first edge ≥ value, so values
			// equal to an edge land in that edge's bin — consistent with
			// the (lo, hi] convention used at prediction time.
		}
		b.bins[i] = row
	}
	return b
}

// threshold returns the split value for "bin ≤ b": the edge value itself
// (prediction uses x ≤ threshold ⇒ left, matching SearchFloat64s).
func (b *binner) threshold(f, bin int) float64 {
	return b.edges[f][bin]
}

// treeNode is one node of a binary CART tree. Leaves carry the prediction
// (class-1 probability for classification trees, additive value for
// boosted regression trees).
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64
	leaf      bool
}

func (n *treeNode) predict(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// growConfig parameterizes the CART grower.
type growConfig struct {
	maxDepth int
	minLeaf  int
	mtry     int        // candidate features per split; 0 = all
	rng      *rand.Rand // required when mtry > 0

	// leafValue computes a leaf's prediction from its sample indices. For
	// classification this is the weighted positive fraction; boosting uses
	// a Newton step.
	leafValue func(indices []int) float64
}

// grower builds CART trees by weighted-variance reduction over binned
// features. For binary 0/1 targets weighted variance is p(1−p)·W —
// proportional to weighted Gini — so the same criterion serves
// classification and regression.
type grower struct {
	x      [][]float64
	bin    *binner
	target []float64
	weight []float64
	cfg    growConfig
	feats  []int // scratch: candidate feature ids

	histW  [maxBins]float64
	histWT [maxBins]float64
}

// newGrower prepares a grower; bin may be shared across trees built from
// the same matrix (random forest, boosting rounds).
func newGrower(x [][]float64, bin *binner, target, weight []float64, cfg growConfig) *grower {
	if cfg.maxDepth <= 0 {
		cfg.maxDepth = 6
	}
	if cfg.minLeaf <= 0 {
		cfg.minLeaf = 2
	}
	g := &grower{x: x, bin: bin, target: target, weight: weight, cfg: cfg}
	d := len(x[0])
	g.feats = make([]int, d)
	for j := range g.feats {
		g.feats[j] = j
	}
	return g
}

// growAll builds a tree over all samples.
func (g *grower) growAll() *treeNode {
	indices := make([]int, len(g.x))
	for i := range indices {
		indices[i] = i
	}
	return g.grow(indices, 0)
}

func growTree(x [][]float64, target, weight []float64, cfg growConfig) *treeNode {
	return newGrower(x, newBinner(x), target, weight, cfg).growAll()
}

func (g *grower) grow(indices []int, depth int) *treeNode {
	if depth >= g.cfg.maxDepth || len(indices) < 2*g.cfg.minLeaf || g.pure(indices) {
		return &treeNode{leaf: true, value: g.cfg.leafValue(indices)}
	}
	feat, bin, ok := g.bestSplit(indices)
	if !ok {
		return &treeNode{leaf: true, value: g.cfg.leafValue(indices)}
	}
	// Partition in place: left = bin ≤ split bin.
	lo, hi := 0, len(indices)
	for lo < hi {
		if int(g.bin.bins[indices[lo]][feat]) <= bin {
			lo++
		} else {
			hi--
			indices[lo], indices[hi] = indices[hi], indices[lo]
		}
	}
	left, right := indices[:lo], indices[lo:]
	if len(left) < g.cfg.minLeaf || len(right) < g.cfg.minLeaf {
		return &treeNode{leaf: true, value: g.cfg.leafValue(indices)}
	}
	return &treeNode{
		feature:   feat,
		threshold: g.bin.threshold(feat, bin),
		left:      g.grow(left, depth+1),
		right:     g.grow(right, depth+1),
	}
}

func (g *grower) pure(indices []int) bool {
	first := g.target[indices[0]]
	for _, i := range indices[1:] {
		if g.target[i] != first {
			return false
		}
	}
	return true
}

// bestSplit scans candidate features' bin histograms for the split with
// the greatest weighted-variance reduction. It returns the feature and the
// highest bin index of the left child.
func (g *grower) bestSplit(indices []int) (feature, bin int, ok bool) {
	candidates := g.feats
	if g.cfg.mtry > 0 && g.cfg.mtry < len(g.feats) {
		g.cfg.rng.Shuffle(len(g.feats), func(i, j int) { g.feats[i], g.feats[j] = g.feats[j], g.feats[i] })
		candidates = g.feats[:g.cfg.mtry]
	}

	var wSum, wtSum float64
	for _, i := range indices {
		wSum += g.weight[i]
		wtSum += g.weight[i] * g.target[i]
	}
	if wSum <= 0 {
		return 0, 0, false
	}
	parentScore := wtSum * wtSum / wSum

	bestGain := 1e-12
	for _, f := range candidates {
		nb := len(g.bin.edges[f]) + 1
		if nb < 2 {
			continue
		}
		for b := 0; b < nb; b++ {
			g.histW[b] = 0
			g.histWT[b] = 0
		}
		for _, i := range indices {
			b := g.bin.bins[i][f]
			g.histW[b] += g.weight[i]
			g.histWT[b] += g.weight[i] * g.target[i]
		}
		var lw, lwt float64
		for b := 0; b+1 < nb; b++ {
			lw += g.histW[b]
			lwt += g.histWT[b]
			if lw <= 0 {
				continue
			}
			rw := wSum - lw
			if rw <= 0 {
				break
			}
			rwt := wtSum - lwt
			gain := lwt*lwt/lw + rwt*rwt/rw - parentScore
			if gain > bestGain {
				bestGain = gain
				feature = f
				bin = b
				ok = true
			}
		}
	}
	return feature, bin, ok
}

// TreeConfig configures a single CART classification tree.
type TreeConfig struct {
	// MaxDepth bounds tree depth. Zero means 6.
	MaxDepth int

	// MinLeaf is the minimum samples per leaf. Zero means 2.
	MinLeaf int
}

// DecisionTree is a CART classifier with weighted-Gini splits and
// class-balanced sample weights. Leaves predict the weighted positive
// fraction.
type DecisionTree struct {
	cfg  TreeConfig
	root *treeNode
}

var _ Classifier = (*DecisionTree)(nil)

// NewDecisionTree creates an unfitted CART tree.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	return &DecisionTree{cfg: cfg}
}

// Fit grows the tree.
func (m *DecisionTree) Fit(x [][]float64, y []int) error {
	if _, err := validateXY(x, y); err != nil {
		return err
	}
	cw := classWeights(y)
	target := make([]float64, len(y))
	weight := make([]float64, len(y))
	for i, v := range y {
		target[i] = float64(v)
		weight[i] = cw[v]
	}
	m.root = growTree(x, target, weight, growConfig{
		maxDepth: m.cfg.MaxDepth,
		minLeaf:  m.cfg.MinLeaf,
		leafValue: func(indices []int) float64 {
			var w, wt float64
			for _, i := range indices {
				w += weight[i]
				wt += weight[i] * target[i]
			}
			if w <= 0 {
				return 0
			}
			return wt / w
		},
	})
	return nil
}

// PredictProba returns the leaf's positive fraction. Non-finite
// features are treated as 0 (see Classifier).
func (m *DecisionTree) PredictProba(x []float64) float64 {
	if m.root == nil {
		return 0
	}
	return clamp01(m.root.predict(cleanFeatures(x)))
}
