package mlearn

import (
	"math/rand"
)

// RFConfig configures a random forest.
type RFConfig struct {
	// Trees is the ensemble size. Zero means 25.
	Trees int

	// MaxDepth per tree. Zero means 8.
	MaxDepth int

	// MinLeaf per tree. Zero means 2.
	MinLeaf int

	// Mtry is the number of candidate features per split. Zero means
	// ⌈√d⌉.
	Mtry int

	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
}

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling — the paper's "RF". Probabilities are the mean of per-tree
// leaf estimates; out-of-bag probabilities are retained for stacking.
type RandomForest struct {
	cfg   RFConfig
	trees []*treeNode
	oob   []float64 // out-of-bag probability per training row
	hasOO []bool
}

var _ Classifier = (*RandomForest)(nil)

// NewRandomForest creates an unfitted forest.
func NewRandomForest(cfg RFConfig) *RandomForest {
	if cfg.Trees <= 0 {
		cfg.Trees = 30
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 10
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	return &RandomForest{cfg: cfg}
}

// Fit grows the ensemble on bootstrap resamples with balanced class
// weights.
func (m *RandomForest) Fit(x [][]float64, y []int) error {
	d, err := validateXY(x, y)
	if err != nil {
		return err
	}
	// Default mtry is d/3 (the regression-forest convention) rather than
	// √d: leak signatures concentrate in the few sensors hydraulically
	// near each node, and √d subsampling rarely offers them to a split.
	mtry := m.cfg.Mtry
	if mtry <= 0 {
		mtry = (d + 2) / 3
		if mtry < 2 {
			mtry = 2
		}
	}
	cw := classWeights(y)
	n := len(x)
	target := make([]float64, n)
	baseWeight := make([]float64, n)
	for i, v := range y {
		target[i] = float64(v)
		baseWeight[i] = cw[v]
	}

	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.trees = make([]*treeNode, 0, m.cfg.Trees)
	oobSum := make([]float64, n)
	oobCount := make([]int, n)
	weight := make([]float64, n)
	bin := newBinner(x) // shared across all trees

	for t := 0; t < m.cfg.Trees; t++ {
		// Bootstrap as multiplicative weights (keeps index slices simple).
		for i := range weight {
			weight[i] = 0
		}
		inBag := make([]bool, n)
		for k := 0; k < n; k++ {
			i := rng.Intn(n)
			weight[i] += baseWeight[i]
			inBag[i] = true
		}
		var indices []int
		for i := 0; i < n; i++ {
			if inBag[i] {
				indices = append(indices, i)
			}
		}
		treeRng := rand.New(rand.NewSource(m.cfg.Seed + int64(t)*7919 + 1))
		g := newGrower(x, bin, target, weight, growConfig{
			maxDepth: m.cfg.MaxDepth,
			minLeaf:  m.cfg.MinLeaf,
			mtry:     mtry,
			rng:      treeRng,
			leafValue: func(idx []int) float64 {
				var w, wt float64
				for _, i := range idx {
					w += weight[i]
					wt += weight[i] * target[i]
				}
				if w <= 0 {
					return 0
				}
				return wt / w
			},
		})
		root := g.grow(indices, 0)
		m.trees = append(m.trees, root)

		for i := 0; i < n; i++ {
			if !inBag[i] {
				oobSum[i] += root.predict(x[i])
				oobCount[i]++
			}
		}
	}

	m.oob = make([]float64, n)
	m.hasOO = make([]bool, n)
	for i := 0; i < n; i++ {
		if oobCount[i] > 0 {
			m.oob[i] = oobSum[i] / float64(oobCount[i])
			m.hasOO[i] = true
		}
	}
	return nil
}

// PredictProba averages the trees' leaf probabilities. Non-finite
// features are treated as 0 (see Classifier).
func (m *RandomForest) PredictProba(x []float64) float64 {
	if len(m.trees) == 0 {
		return 0
	}
	x = cleanFeatures(x)
	sum := 0.0
	for _, t := range m.trees {
		sum += t.predict(x)
	}
	return clamp01(sum / float64(len(m.trees)))
}

// OOBProba returns the out-of-bag probability for training row i and
// whether row i was ever out of bag. Used by HybridRSL to build unbiased
// meta-features.
func (m *RandomForest) OOBProba(i int) (float64, bool) {
	if m.oob == nil || i < 0 || i >= len(m.oob) {
		return 0, false
	}
	return m.oob[i], m.hasOO[i]
}
