// Package mlearn provides the plug-and-play machine-learning suite used for
// leak identification: from-scratch binary classifiers with probabilistic
// output (the scikit-learn predict_proba analog), a multi-output wrapper
// that trains one classifier per network node, and the paper's evaluation
// metric (Hamming score).
//
// Implemented classifiers match the paper's lineup: linear regression
// (ridge), logistic regression, gradient boosting, random forest, a linear
// SVM with Platt-scaled probabilities, and the paper's HybridRSL stack
// (RF + SVM fused through logistic regression).
//
// Classifiers are registered by name in a registry so experiment harnesses
// can select and compose techniques at run time — the paper's
// "plug-and-play analytic engine".
package mlearn

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// ErrNotFitted is returned when prediction is attempted before Fit.
var ErrNotFitted = errors.New("mlearn: model not fitted")

// Classifier is a binary classifier with probabilistic output.
//
// All implementations in this package share the non-finite input
// contract: PredictProba treats NaN and ±Inf feature values as 0 — the
// neutral "no deviation from baseline" delta, the same substitution the
// dataset pipeline applies to solver output — so a corrupt reading can
// never silently propagate into probabilities.
type Classifier interface {
	// Fit trains on feature rows X and labels y ∈ {0,1}.
	Fit(x [][]float64, y []int) error

	// PredictProba returns P(y=1 | x) in [0, 1].
	PredictProba(x []float64) float64
}

// Factory creates a classifier seeded for deterministic training.
type Factory func(seed int64) Classifier

// Predict thresholds a classifier's probability at 0.5.
func Predict(c Classifier, x []float64) int {
	if c.PredictProba(x) > 0.5 {
		return 1
	}
	return 0
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register adds a named classifier factory to the plug-and-play registry.
// Registering an existing name replaces it.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = f
}

// NewByName instantiates a registered classifier.
func NewByName(name string, seed int64) (Classifier, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mlearn: unknown classifier %q (have %v)", name, Names())
	}
	return f(seed), nil
}

// Names lists the registered classifier names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("linear", func(seed int64) Classifier { return NewLinearRegression(LinearConfig{}) })
	Register("logistic", func(seed int64) Classifier { return NewLogisticRegression(LogisticConfig{}) })
	Register("gb", func(seed int64) Classifier { return NewGradientBoosting(GBConfig{Seed: seed}) })
	Register("rf", func(seed int64) Classifier { return NewRandomForest(RFConfig{Seed: seed}) })
	Register("svm", func(seed int64) Classifier { return NewSVM(SVMConfig{Seed: seed}) })
	Register("hybrid-rsl", func(seed int64) Classifier { return NewHybridRSL(HybridConfig{Seed: seed}) })
}

// validateXY checks the common Fit preconditions.
func validateXY(x [][]float64, y []int) (features int, err error) {
	if len(x) == 0 {
		return 0, errors.New("mlearn: empty training set")
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("mlearn: %d feature rows but %d labels", len(x), len(y))
	}
	features = len(x[0])
	if features == 0 {
		return 0, errors.New("mlearn: zero-width feature rows")
	}
	for i, row := range x {
		if len(row) != features {
			return 0, fmt.Errorf("mlearn: ragged features: row %d has %d, want %d", i, len(row), features)
		}
	}
	for i, label := range y {
		if label != 0 && label != 1 {
			return 0, fmt.Errorf("mlearn: label %d at row %d is not binary", label, i)
		}
	}
	return features, nil
}

// classWeights returns balanced per-class weights (index 0 and 1): each
// class contributes equally to the loss regardless of prevalence. Leak
// labels are heavily imbalanced (a handful of leaking nodes out of
// hundreds), so unweighted training would collapse to "never leak".
func classWeights(y []int) [2]float64 {
	var counts [2]int
	for _, v := range y {
		counts[v]++
	}
	n := float64(len(y))
	var w [2]float64
	for c := 0; c < 2; c++ {
		if counts[c] == 0 {
			w[c] = 0
			continue
		}
		w[c] = n / (2 * float64(counts[c]))
	}
	return w
}

// cleanFeatures enforces the package's non-finite input contract: NaN
// and ±Inf feature values are replaced with 0. The common all-finite
// path returns x unchanged without allocating; a dirty vector yields a
// sanitized copy, leaving the caller's slice untouched.
func cleanFeatures(x []float64) []float64 {
	for i, v := range x {
		if nonFinite(v) {
			out := make([]float64, len(x))
			copy(out, x[:i])
			for j := i + 1; j < len(x); j++ {
				if v := x[j]; !nonFinite(v) {
					out[j] = v
				}
			}
			return out
		}
	}
	return x
}

func nonFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// clamp01 clips p into [0, 1].
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
