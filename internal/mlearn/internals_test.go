package mlearn

import (
	"math"
	"math/rand"
	"testing"
)

func TestScaler(t *testing.T) {
	x := [][]float64{{1, 100}, {3, 300}, {5, 500}}
	s := fitScaler(x)
	// Transformed training data has zero mean per feature.
	var sums [2]float64
	for _, row := range x {
		tr := s.transform(row)
		sums[0] += tr[0]
		sums[1] += tr[1]
	}
	if math.Abs(sums[0]) > 1e-12 || math.Abs(sums[1]) > 1e-12 {
		t.Fatalf("transformed means = %v", sums)
	}
	// Unit variance per feature.
	var sq [2]float64
	for _, row := range x {
		tr := s.transform(row)
		sq[0] += tr[0] * tr[0]
		sq[1] += tr[1] * tr[1]
	}
	for f := 0; f < 2; f++ {
		if math.Abs(sq[f]/3-1) > 1e-9 {
			t.Fatalf("feature %d variance = %v", f, sq[f]/3)
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	x := [][]float64{{7, 1}, {7, 2}, {7, 3}}
	s := fitScaler(x)
	tr := s.transform([]float64{7, 2})
	if tr[0] != 0 {
		t.Fatalf("constant feature transforms to %v, want 0", tr[0])
	}
	if math.IsNaN(tr[1]) || math.IsInf(tr[1], 0) {
		t.Fatalf("non-finite transform: %v", tr[1])
	}
}

func TestClassWeights(t *testing.T) {
	w := classWeights([]int{0, 0, 0, 1})
	// Each class contributes equally: 3·w0 == 1·w1 == n/2.
	if math.Abs(3*w[0]-2) > 1e-12 || math.Abs(w[1]-2) > 1e-12 {
		t.Fatalf("weights = %v", w)
	}
	w = classWeights([]int{0, 0})
	if w[1] != 0 {
		t.Fatalf("absent class weight = %v, want 0", w[1])
	}
}

func TestBinnerRespectsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64() * 10}
	}
	b := newBinner(x)
	// Bin index must be monotone in the raw value.
	type pair struct {
		v   float64
		bin uint8
	}
	pairs := make([]pair, n)
	for i := range x {
		pairs[i] = pair{x[i][0], b.bins[i][0]}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if pairs[i].v < pairs[j].v && pairs[i].bin > pairs[j].bin {
				t.Fatalf("bin order violated: %v→%d vs %v→%d",
					pairs[i].v, pairs[i].bin, pairs[j].v, pairs[j].bin)
			}
		}
	}
	// Threshold semantics: value ≤ threshold(bin) ⟺ binOf(value) ≤ bin.
	for trial := 0; trial < 200; trial++ {
		v := rng.NormFloat64() * 10
		for bin := 0; bin < len(b.edges[0]); bin++ {
			thr := b.threshold(0, bin)
			goesLeft := v <= thr
			binOf := int(uint8(searchBin(b.edges[0], v)))
			if goesLeft != (binOf <= bin) {
				t.Fatalf("threshold semantics broken at v=%v bin=%d", v, bin)
			}
		}
	}
}

// searchBin mirrors the binner's index computation for the test.
func searchBin(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func TestBinnerConstantFeature(t *testing.T) {
	x := [][]float64{{5}, {5}, {5}, {5}}
	b := newBinner(x)
	if len(b.edges[0]) > 1 {
		t.Fatalf("constant feature produced %d edges", len(b.edges[0]))
	}
	// A tree on a constant feature must fall back to a leaf, not crash.
	tree := NewDecisionTree(TreeConfig{})
	if err := tree.Fit(x, []int{0, 1, 0, 1}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	p := tree.PredictProba([]float64{5})
	if p < 0 || p > 1 {
		t.Fatalf("proba = %v", p)
	}
}

func TestSigmoid(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Fatalf("sigmoid(0) = %v", sigmoid(0))
	}
	if s := sigmoid(100); s <= 0.999 || s > 1 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := sigmoid(-100); s >= 0.001 || s < 0 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
	// Symmetry.
	for _, z := range []float64{0.1, 1, 5} {
		if math.Abs(sigmoid(z)+sigmoid(-z)-1) > 1e-12 {
			t.Fatalf("sigmoid asymmetric at %v", z)
		}
	}
}

func TestClippedLogit(t *testing.T) {
	if clippedLogit(0.5) != 0 {
		t.Fatalf("logit(0.5) = %v", clippedLogit(0.5))
	}
	// Clipping keeps extremes finite.
	if math.IsInf(clippedLogit(0), 0) || math.IsInf(clippedLogit(1), 0) {
		t.Fatal("clipping failed at the extremes")
	}
	if clippedLogit(0.9) <= 0 || clippedLogit(0.1) >= 0 {
		t.Fatal("logit signs wrong")
	}
}

func TestFitPlattProducesCalibratedSign(t *testing.T) {
	// Positive margins ↔ positive class: A must come out positive.
	margins := make([]float64, 200)
	y := make([]int, 200)
	rng := rand.New(rand.NewSource(2))
	for i := range margins {
		if i%2 == 0 {
			margins[i] = 1 + rng.NormFloat64()*0.3
			y[i] = 1
		} else {
			margins[i] = -1 + rng.NormFloat64()*0.3
		}
	}
	a, b := fitPlatt(margins, y)
	if a <= 0 {
		t.Fatalf("Platt slope = %v, want positive", a)
	}
	if p := sigmoid(a*2 + b); p < 0.7 {
		t.Fatalf("P(y=1 | margin=2) = %v, want high", p)
	}
	if p := sigmoid(a*(-2) + b); p > 0.3 {
		t.Fatalf("P(y=1 | margin=-2) = %v, want low", p)
	}
}
