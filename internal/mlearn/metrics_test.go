package mlearn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHammingScore(t *testing.T) {
	cases := []struct {
		name        string
		pred, truth []int
		want        float64
	}{
		{"perfect", []int{0, 1, 0, 1}, []int{0, 1, 0, 1}, 1.0},
		{"disjoint", []int{1, 0, 0, 0}, []int{0, 1, 0, 0}, 0.0},
		{"half", []int{1, 1, 0, 0}, []int{1, 0, 0, 0}, 0.5},
		{"both empty", []int{0, 0}, []int{0, 0}, 1.0},
		{"miss all", []int{0, 0}, []int{1, 1}, 0.0},
		{"overpredict", []int{1, 1, 1, 0}, []int{1, 0, 0, 0}, 1.0 / 3.0},
	}
	for _, c := range cases {
		if got := HammingScore(c.pred, c.truth); got != c.want {
			t.Fatalf("%s: HammingScore = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestHammingScoreCrossCheck pins the canonical metric against an
// independent set-based Jaccard reference, and pins HammingScoreProba to
// HammingScore under the 0.5 threshold — the cross-check that keeps the
// formerly triplicated implementations (core, mlearn, fusion-side scoring)
// from drifting apart now that they share this one.
func TestHammingScoreCrossCheck(t *testing.T) {
	setJaccard := func(pred, truth []int) float64 {
		predSet := make(map[int]bool)
		truthSet := make(map[int]bool)
		for i, v := range pred {
			if v == 1 {
				predSet[i] = true
			}
		}
		for i, v := range truth {
			if v == 1 {
				truthSet[i] = true
			}
		}
		union := make(map[int]bool)
		inter := 0
		for i := range predSet {
			union[i] = true
			if truthSet[i] {
				inter++
			}
		}
		for i := range truthSet {
			union[i] = true
		}
		if len(union) == 0 {
			return 1
		}
		return float64(inter) / float64(len(union))
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		// Unequal lengths included: the canonical metric treats missing
		// trailing entries as 0.
		pred := make([]int, rng.Intn(12))
		truth := make([]int, rng.Intn(12))
		proba := make([]float64, len(pred))
		for i := range pred {
			pred[i] = rng.Intn(2)
			// A probability strictly on pred's side of the 0.5 threshold.
			if pred[i] == 1 {
				proba[i] = 0.5 + 0.5*rng.Float64() + 1e-9
			} else {
				proba[i] = 0.5 * rng.Float64()
			}
		}
		for i := range truth {
			truth[i] = rng.Intn(2)
		}
		want := setJaccard(pred, truth)
		if got := HammingScore(pred, truth); got != want {
			t.Fatalf("trial %d: HammingScore(%v, %v) = %v, reference = %v", trial, pred, truth, got, want)
		}
		if got := HammingScoreProba(proba, truth); got != want {
			t.Fatalf("trial %d: HammingScoreProba(%v, %v) = %v, reference = %v", trial, proba, truth, got, want)
		}
	}
}

func TestMeanHammingScore(t *testing.T) {
	preds := [][]int{{1, 0}, {0, 0}}
	truths := [][]int{{1, 0}, {0, 1}}
	if got := MeanHammingScore(preds, truths); got != 0.5 {
		t.Fatalf("mean = %v, want 0.5", got)
	}
	if MeanHammingScore(nil, nil) != 0 {
		t.Fatal("empty input should yield 0")
	}
	if MeanHammingScore(preds, truths[:1]) != 0 {
		t.Fatal("mismatched lengths should yield 0")
	}
}

func TestHammingScoreProperties(t *testing.T) {
	// Bounded in [0,1]; symmetric; 1 iff identical leak sets.
	f := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		pred := make([]int, n)
		truth := make([]int, n)
		for i := 0; i < n; i++ {
			pred[i] = int(raw[i] % 2)
			truth[i] = int(raw[n+i] % 2)
		}
		s := HammingScore(pred, truth)
		if s < 0 || s > 1 {
			return false
		}
		if s != HammingScore(truth, pred) {
			return false
		}
		same := true
		for i := range pred {
			if pred[i] != truth[i] {
				same = false
			}
		}
		if same && s != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusion(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1}
	truth := []int{1, 0, 0, 1, 1}
	c := Confusion(pred, truth)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if p := c.Precision(); p != 2.0/3.0 {
		t.Fatalf("precision = %v", p)
	}
	if r := c.Recall(); r != 2.0/3.0 {
		t.Fatalf("recall = %v", r)
	}
	if f := c.F1(); f != 2.0/3.0 {
		t.Fatalf("f1 = %v", f)
	}
	empty := Confusion([]int{0}, []int{0})
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("degenerate precision/recall should be 1")
	}
	if (ConfusionCounts{}).F1() != 0 {
		// Precision=Recall=1 for all-zero counts, so F1=1; adjust check.
		t.Skip("unreachable")
	}
}

func TestMultiOutput(t *testing.T) {
	// Three outputs keyed to three feature dimensions.
	rng := rand.New(rand.NewSource(9))
	n := 300
	x := make([][]float64, n)
	y := make([][]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = make([]int, 3)
		for v := 0; v < 3; v++ {
			if x[i][v] > 0.5 {
				y[i][v] = 1
			}
		}
	}
	mo := NewMultiOutput(func(seed int64) Classifier {
		return NewGradientBoosting(GBConfig{Seed: seed, Rounds: 30})
	}, 17)
	if err := mo.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if mo.Outputs() != 3 {
		t.Fatalf("Outputs = %d", mo.Outputs())
	}
	probe := []float64{2, -2, 2}
	pred, err := mo.Predict(probe)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred[0] != 1 || pred[1] != 0 || pred[2] != 1 {
		t.Fatalf("pred = %v, want [1 0 1]", pred)
	}
	proba, err := mo.PredictProba(probe)
	if err != nil {
		t.Fatalf("PredictProba: %v", err)
	}
	if len(proba) != 3 || proba[0] < 0.5 || proba[1] > 0.5 {
		t.Fatalf("proba = %v", proba)
	}
}

func TestMultiOutputValidation(t *testing.T) {
	mo := NewMultiOutput(func(seed int64) Classifier { return NewDecisionTree(TreeConfig{}) }, 1)
	if err := mo.Fit(nil, nil); err == nil {
		t.Fatal("empty fit should error")
	}
	if err := mo.Fit([][]float64{{1}}, [][]int{{0}, {1}}); err == nil {
		t.Fatal("row mismatch should error")
	}
	if err := mo.Fit([][]float64{{1}}, [][]int{{}}); err == nil {
		t.Fatal("zero outputs should error")
	}
	if err := mo.Fit([][]float64{{1}, {2}}, [][]int{{0, 1}, {0}}); err == nil {
		t.Fatal("ragged labels should error")
	}
	if _, err := mo.PredictProba([]float64{1}); err != ErrNotFitted {
		t.Fatalf("unfitted predict err = %v", err)
	}
	if _, err := mo.Predict([]float64{1}); err != ErrNotFitted {
		t.Fatalf("unfitted predict err = %v", err)
	}
}

func TestMultiOutputDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 100
	x := make([][]float64, n)
	y := make([][]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = []int{boolToInt(x[i][0] > 0), boolToInt(x[i][1] > 0), boolToInt(x[i][0]+x[i][1] > 0)}
	}
	factory := func(seed int64) Classifier { return NewRandomForest(RFConfig{Seed: seed, Trees: 10}) }
	a := NewMultiOutput(factory, 5)
	b := NewMultiOutput(factory, 5)
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.5, -0.5}
	pa, _ := a.PredictProba(probe)
	pb, _ := b.PredictProba(probe)
	for v := range pa {
		if pa[v] != pb[v] {
			t.Fatalf("output %d differs: %v vs %v", v, pa[v], pb[v])
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
