package mlearn

import (
	"math"
	"math/rand"
	"testing"
)

// blobs generates a linearly separable 2-class problem with the positive
// class at fraction posFrac.
func blobs(rng *rand.Rand, n int, posFrac float64) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < posFrac {
			y[i] = 1
			x[i] = []float64{2 + rng.NormFloat64()*0.7, 2 + rng.NormFloat64()*0.7}
		} else {
			y[i] = 0
			x[i] = []float64{-1 + rng.NormFloat64()*0.7, -1 + rng.NormFloat64()*0.7}
		}
	}
	return x, y
}

// xorData generates the XOR problem no linear model can solve.
func xorData(rng *rand.Rand, n int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x[i] = []float64{a, b}
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	return x, y
}

func accuracy(c Classifier, x [][]float64, y []int) float64 {
	correct := 0
	for i := range x {
		if Predict(c, x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func makeAll(seed int64) map[string]Classifier {
	return map[string]Classifier{
		"linear":     NewLinearRegression(LinearConfig{}),
		"logistic":   NewLogisticRegression(LogisticConfig{}),
		"tree":       NewDecisionTree(TreeConfig{}),
		"rf":         NewRandomForest(RFConfig{Seed: seed}),
		"gb":         NewGradientBoosting(GBConfig{Seed: seed}),
		"svm":        NewSVM(SVMConfig{Seed: seed}),
		"hybrid-rsl": NewHybridRSL(HybridConfig{Seed: seed}),
	}
}

func TestAllClassifiersSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trX, trY := blobs(rng, 300, 0.5)
	teX, teY := blobs(rng, 200, 0.5)
	for name, c := range makeAll(7) {
		t.Run(name, func(t *testing.T) {
			if err := c.Fit(trX, trY); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			if acc := accuracy(c, teX, teY); acc < 0.95 {
				t.Fatalf("accuracy = %v, want ≥ 0.95", acc)
			}
		})
	}
}

func TestAllClassifiersImbalanced(t *testing.T) {
	// 5% positives: class weighting must preserve recall.
	rng := rand.New(rand.NewSource(2))
	trX, trY := blobs(rng, 600, 0.05)
	teX, teY := blobs(rng, 300, 0.05)
	for name, c := range makeAll(9) {
		t.Run(name, func(t *testing.T) {
			if err := c.Fit(trX, trY); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			preds := make([]int, len(teX))
			for i := range teX {
				preds[i] = Predict(c, teX[i])
			}
			cm := Confusion(preds, teY)
			if cm.Recall() < 0.8 {
				t.Fatalf("recall = %v, want ≥ 0.8 (TP=%d FN=%d)", cm.Recall(), cm.TP, cm.FN)
			}
		})
	}
}

func TestNonlinearModelsSolveXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trX, trY := xorData(rng, 600)
	teX, teY := xorData(rng, 300)
	nonlinear := map[string]Classifier{
		"tree": NewDecisionTree(TreeConfig{MaxDepth: 8}),
		"rf":   NewRandomForest(RFConfig{Seed: 5, Trees: 40}),
		"gb":   NewGradientBoosting(GBConfig{Seed: 5, Rounds: 80}),
	}
	for name, c := range nonlinear {
		t.Run(name, func(t *testing.T) {
			if err := c.Fit(trX, trY); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			if acc := accuracy(c, teX, teY); acc < 0.9 {
				t.Fatalf("accuracy = %v, want ≥ 0.9", acc)
			}
		})
	}
	// Sanity: linear SVM cannot solve XOR (validates the test itself).
	svm := NewSVM(SVMConfig{Seed: 5})
	if err := svm.Fit(trX, trY); err != nil {
		t.Fatalf("svm fit: %v", err)
	}
	if acc := accuracy(svm, teX, teY); acc > 0.75 {
		t.Fatalf("linear SVM accuracy %v on XOR is implausibly high", acc)
	}
}

func TestProbabilitiesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trX, trY := blobs(rng, 200, 0.3)
	for name, c := range makeAll(11) {
		if err := c.Fit(trX, trY); err != nil {
			t.Fatalf("%s Fit: %v", name, err)
		}
		for trial := 0; trial < 200; trial++ {
			x := []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
			p := c.PredictProba(x)
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("%s: proba %v outside [0,1]", name, p)
			}
		}
	}
}

func TestProbabilityOrdering(t *testing.T) {
	// Deep-positive points should score higher than deep-negative points.
	rng := rand.New(rand.NewSource(5))
	trX, trY := blobs(rng, 300, 0.5)
	pos := []float64{2.5, 2.5}
	neg := []float64{-1.5, -1.5}
	for name, c := range makeAll(13) {
		if err := c.Fit(trX, trY); err != nil {
			t.Fatalf("%s Fit: %v", name, err)
		}
		if pp, pn := c.PredictProba(pos), c.PredictProba(neg); pp <= pn {
			t.Fatalf("%s: P(pos)=%v ≤ P(neg)=%v", name, pp, pn)
		}
	}
}

func TestFitValidation(t *testing.T) {
	cases := []struct {
		name string
		x    [][]float64
		y    []int
	}{
		{"empty", nil, nil},
		{"mismatch", [][]float64{{1}}, []int{0, 1}},
		{"ragged", [][]float64{{1, 2}, {3}}, []int{0, 1}},
		{"zero width", [][]float64{{}}, []int{0}},
		{"bad label", [][]float64{{1}}, []int{2}},
	}
	for name, c := range makeAll(1) {
		for _, tc := range cases {
			if err := c.Fit(tc.x, tc.y); err == nil {
				t.Fatalf("%s: Fit(%s) should error", name, tc.name)
			}
		}
	}
}

func TestUnfittedPredicts(t *testing.T) {
	for name, c := range makeAll(1) {
		if p := c.PredictProba([]float64{1, 2}); p != 0 {
			t.Fatalf("%s: unfitted proba = %v, want 0", name, p)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	trX, trY := blobs(rng, 150, 0.4)
	probe := []float64{0.3, 0.7}
	for _, name := range []string{"rf", "gb", "svm", "hybrid-rsl"} {
		a, err := NewByName(name, 99)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewByName(name, 99)
		if err := a.Fit(trX, trY); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Fit(trX, trY); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pa, pb := a.PredictProba(probe), b.PredictProba(probe); pa != pb {
			t.Fatalf("%s: same seed differs: %v vs %v", name, pa, pb)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"gb", "hybrid-rsl", "linear", "logistic", "rf", "svm"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", w, names)
		}
	}
	if _, err := NewByName("nope", 0); err == nil {
		t.Fatal("unknown name should error")
	}
	Register("custom", func(seed int64) Classifier { return NewDecisionTree(TreeConfig{}) })
	c, err := NewByName("custom", 0)
	if err != nil || c == nil {
		t.Fatalf("custom registration failed: %v", err)
	}
}

func TestRandomForestOOB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trX, trY := blobs(rng, 200, 0.5)
	rf := NewRandomForest(RFConfig{Seed: 3, Trees: 30})
	if err := rf.Fit(trX, trY); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	covered, correct := 0, 0
	for i := range trX {
		p, ok := rf.OOBProba(i)
		if !ok {
			continue
		}
		covered++
		pred := 0
		if p > 0.5 {
			pred = 1
		}
		if pred == trY[i] {
			correct++
		}
	}
	if covered < len(trX)*8/10 {
		t.Fatalf("OOB coverage %d/%d too low", covered, len(trX))
	}
	if acc := float64(correct) / float64(covered); acc < 0.9 {
		t.Fatalf("OOB accuracy = %v", acc)
	}
	if _, ok := rf.OOBProba(-1); ok {
		t.Fatal("negative index should not have OOB")
	}
	if _, ok := rf.OOBProba(99999); ok {
		t.Fatal("out-of-range index should not have OOB")
	}
}

func TestSVMMargin(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	trX, trY := blobs(rng, 200, 0.5)
	svm := NewSVM(SVMConfig{Seed: 1})
	if err := svm.Fit(trX, trY); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m := svm.Margin([]float64{2.5, 2.5}); m <= 0 {
		t.Fatalf("positive-side margin = %v", m)
	}
	if m := svm.Margin([]float64{-1.5, -1.5}); m >= 0 {
		t.Fatalf("negative-side margin = %v", m)
	}
	unfitted := NewSVM(SVMConfig{})
	if unfitted.Margin([]float64{1}) != 0 {
		t.Fatal("unfitted margin should be 0")
	}
}

func TestHybridSmallDataFallback(t *testing.T) {
	// 6 samples: too few for cross-fitting, must still train.
	x := [][]float64{{0, 0}, {0.2, 0}, {0, 0.1}, {3, 3}, {3.2, 3}, {3, 3.1}}
	y := []int{0, 0, 0, 1, 1, 1}
	h := NewHybridRSL(HybridConfig{Seed: 2})
	if err := h.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if p := h.PredictProba([]float64{3.1, 3.1}); p < 0.5 {
		t.Fatalf("positive proba = %v", p)
	}
}
