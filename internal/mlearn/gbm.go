package mlearn

import (
	"math"
	"math/rand"
)

// GBConfig configures gradient boosting.
type GBConfig struct {
	// Rounds is the number of boosting stages. Zero means 60.
	Rounds int

	// LearningRate shrinks each stage. Zero means 0.1.
	LearningRate float64

	// MaxDepth per stage tree. Zero means 3.
	MaxDepth int

	// Subsample is the stochastic-boosting row fraction. Zero means 0.8.
	Subsample float64

	// Seed drives subsampling.
	Seed int64
}

// GradientBoosting is gradient-boosted trees on the logistic loss — the
// paper's "GB". Each stage fits a shallow regression tree to the loss
// gradient and applies a Newton leaf update.
type GradientBoosting struct {
	cfg   GBConfig
	bias  float64 // initial log-odds
	trees []*treeNode
}

var _ Classifier = (*GradientBoosting)(nil)

// NewGradientBoosting creates an unfitted booster.
func NewGradientBoosting(cfg GBConfig) *GradientBoosting {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 60
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	if cfg.Subsample <= 0 || cfg.Subsample > 1 {
		cfg.Subsample = 0.8
	}
	return &GradientBoosting{cfg: cfg}
}

// Fit runs Newton-style boosting with balanced class weights.
func (m *GradientBoosting) Fit(x [][]float64, y []int) error {
	if _, err := validateXY(x, y); err != nil {
		return err
	}
	n := len(x)
	cw := classWeights(y)
	weight := make([]float64, n)
	wPos, wTot := 0.0, 0.0
	for i, v := range y {
		weight[i] = cw[v]
		wTot += weight[i]
		if v == 1 {
			wPos += weight[i]
		}
	}
	// Initial score: weighted log-odds, clipped away from ±∞.
	p0 := wPos / wTot
	if p0 < 1e-6 {
		p0 = 1e-6
	}
	if p0 > 1-1e-6 {
		p0 = 1 - 1e-6
	}
	m.bias = math.Log(p0 / (1 - p0))

	score := make([]float64, n)
	for i := range score {
		score[i] = m.bias
	}
	residual := make([]float64, n)
	hessian := make([]float64, n)
	rng := rand.New(rand.NewSource(m.cfg.Seed))
	m.trees = make([]*treeNode, 0, m.cfg.Rounds)
	bin := newBinner(x) // shared across all boosting rounds

	for round := 0; round < m.cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(score[i])
			residual[i] = float64(y[i]) - p
			hessian[i] = p * (1 - p)
		}
		// Stochastic subsample of rows.
		var indices []int
		if m.cfg.Subsample < 1 {
			for i := 0; i < n; i++ {
				if rng.Float64() < m.cfg.Subsample {
					indices = append(indices, i)
				}
			}
			if len(indices) < 4 {
				indices = nil
			}
		}
		if indices == nil {
			indices = make([]int, n)
			for i := range indices {
				indices[i] = i
			}
		}

		g := newGrower(x, bin, residual, weight, growConfig{
			maxDepth: m.cfg.MaxDepth,
			minLeaf:  4,
			leafValue: func(idx []int) float64 {
				// Newton step: Σw·r / Σw·p(1−p).
				var num, den float64
				for _, i := range idx {
					num += weight[i] * residual[i]
					den += weight[i] * hessian[i]
				}
				if den < 1e-9 {
					return 0
				}
				v := num / den
				// Clip extreme leaf values for stability.
				if v > 4 {
					v = 4
				}
				if v < -4 {
					v = -4
				}
				return v
			},
		})
		root := g.grow(indices, 0)
		m.trees = append(m.trees, root)
		for i := 0; i < n; i++ {
			score[i] += m.cfg.LearningRate * root.predict(x[i])
		}
	}
	return nil
}

// PredictProba returns the sigmoid of the boosted score. Non-finite
// features are treated as 0 (see Classifier).
func (m *GradientBoosting) PredictProba(x []float64) float64 {
	if m.trees == nil {
		return 0
	}
	x = cleanFeatures(x)
	score := m.bias
	for _, t := range m.trees {
		score += m.cfg.LearningRate * t.predict(x)
	}
	return sigmoid(score)
}
