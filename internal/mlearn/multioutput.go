package mlearn

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// MultiOutput transforms the multi-output leak classification into
// independent per-node binary problems (paper Sec. III-B): one classifier
// per node, all trained on the same features. Training parallelizes across
// nodes.
type MultiOutput struct {
	factory Factory
	seed    int64
	models  []Classifier
}

// NewMultiOutput creates a multi-output wrapper around a classifier
// factory. Each node's classifier gets a distinct derived seed.
func NewMultiOutput(factory Factory, seed int64) *MultiOutput {
	return &MultiOutput{factory: factory, seed: seed}
}

// Fit trains one classifier per output column. Y is indexed
// [sample][output] with binary entries. It is shorthand for FitContext
// with context.Background().
func (m *MultiOutput) Fit(x [][]float64, y [][]int) error {
	return m.FitContext(context.Background(), x, y)
}

// FitContext is Fit with cancellation: ctx is checked between column
// dispatches, so in-flight per-node fits finish, the bank is left
// unfitted, and the error is ctx.Err().
func (m *MultiOutput) FitContext(ctx context.Context, x [][]float64, y [][]int) error {
	if len(x) == 0 {
		return fmt.Errorf("mlearn: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("mlearn: %d feature rows but %d label rows", len(x), len(y))
	}
	outputs := len(y[0])
	if outputs == 0 {
		return fmt.Errorf("mlearn: zero outputs")
	}
	for i, row := range y {
		if len(row) != outputs {
			return fmt.Errorf("mlearn: ragged labels: row %d has %d outputs, want %d", i, len(row), outputs)
		}
	}

	m.models = make([]Classifier, outputs)
	errs := make([]error, outputs)
	workers := runtime.NumCPU()
	if workers > outputs {
		workers = outputs
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range work {
				col := make([]int, len(y))
				for i := range y {
					col[i] = y[i][v]
				}
				c := m.factory(m.seed + int64(v)*31337)
				if err := c.Fit(x, col); err != nil {
					errs[v] = fmt.Errorf("output %d: %w", v, err)
					continue
				}
				m.models[v] = c
			}
		}()
	}
	cancelled := false
	for v := 0; v < outputs; v++ {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		work <- v
	}
	close(work)
	wg.Wait()
	if cancelled {
		m.models = nil
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AssembleMultiOutput reconstructs a fitted bank from per-output
// classifiers trained elsewhere — the streaming/checkpointed training
// path fits junction windows one at a time and assembles the bank at
// the end. Like a loaded bank it can predict but not be refit. Given
// the same seed and the classifiers an in-process Fit would have
// produced, Save output is byte-identical to the fitted bank's.
func AssembleMultiOutput(seed int64, models []Classifier) (*MultiOutput, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("mlearn: empty model bank")
	}
	for v, c := range models {
		if c == nil {
			return nil, fmt.Errorf("mlearn: output %d missing from model bank", v)
		}
	}
	return &MultiOutput{seed: seed, models: append([]Classifier(nil), models...)}, nil
}

// Outputs returns the number of trained outputs.
func (m *MultiOutput) Outputs() int { return len(m.models) }

// PredictProba returns P(y_v = 1 | x) for every output v — the paper's
// predict_proba. Non-finite features are treated as 0 (see Classifier);
// sanitization happens once here and the cleaned vector is shared by
// every per-node model.
func (m *MultiOutput) PredictProba(x []float64) ([]float64, error) {
	if m.models == nil {
		return nil, ErrNotFitted
	}
	x = cleanFeatures(x)
	out := make([]float64, len(m.models))
	for v, c := range m.models {
		out[v] = c.PredictProba(x)
	}
	return out, nil
}

// Predict thresholds each output at 0.5 — the paper's predict, yielding
// the set S of nodes predicted to leak.
func (m *MultiOutput) Predict(x []float64) ([]int, error) {
	proba, err := m.PredictProba(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(proba))
	for v, p := range proba {
		if p > 0.5 {
			out[v] = 1
		}
	}
	return out, nil
}
