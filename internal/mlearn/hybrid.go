package mlearn

import (
	"fmt"
	"math"
)

// HybridConfig configures the HybridRSL stack.
type HybridConfig struct {
	// RF configures the random-forest leg (Seed is derived).
	RF RFConfig

	// SVM configures the SVM leg (Seed is derived).
	SVM SVMConfig

	// Meta configures the logistic fusion layer.
	Meta LogisticConfig

	// CrossFitMeta trains the fusion layer on out-of-sample base-learner
	// probabilities (RF out-of-bag + SVM 2-fold cross-fitting) instead of
	// the default in-sample ones (the paper's literal Fig-4 workflow).
	// In-sample is the default because it matches the calibration of the
	// deployed full models — the fusion threshold is applied to full-model
	// probabilities at prediction time, and out-of-sample meta-features
	// are systematically softer, which makes the stack over-predict.
	CrossFitMeta bool

	// Seed drives fold assignment and the base learners.
	Seed int64
}

// HybridRSL is the paper's hybrid classifier: a Random forest and an Svm
// trained on the same data, fused through Logistic regression over their
// predicted probabilities (Fig. 4). RF and SVM stay robust as sensor
// coverage shrinks; the logistic fusion has low variance and resists
// overfitting.
type HybridRSL struct {
	cfg    HybridConfig
	rf     *RandomForest
	svm    *SVM
	meta   *LogisticRegression
	fitted bool
}

var _ Classifier = (*HybridRSL)(nil)

// NewHybridRSL creates an unfitted hybrid stack.
func NewHybridRSL(cfg HybridConfig) *HybridRSL {
	return &HybridRSL{cfg: cfg}
}

// Fit trains both legs, builds the meta-features, and fits the logistic
// fusion layer.
func (m *HybridRSL) Fit(x [][]float64, y []int) error {
	if _, err := validateXY(x, y); err != nil {
		return err
	}
	n := len(x)

	// RF leg: OOB probabilities double as meta-features.
	rfCfg := m.cfg.RF
	rfCfg.Seed = m.cfg.Seed + 101
	m.rf = NewRandomForest(rfCfg)
	if err := m.rf.Fit(x, y); err != nil {
		return fmt.Errorf("hybrid-rsl: rf leg: %w", err)
	}

	// SVM leg: 2-fold cross-fitted probabilities.
	svmProba := make([]float64, n)
	crossFit := m.cfg.CrossFitMeta && n >= 8 && hasBothClassesInFolds(y)
	if crossFit {
		for fold := 0; fold < 2; fold++ {
			var trX [][]float64
			var trY []int
			var teIdx []int
			for i := 0; i < n; i++ {
				if i%2 == fold {
					teIdx = append(teIdx, i)
				} else {
					trX = append(trX, x[i])
					trY = append(trY, y[i])
				}
			}
			cfg := m.cfg.SVM
			cfg.Seed = m.cfg.Seed + int64(211+fold)
			leg := NewSVM(cfg)
			if err := leg.Fit(trX, trY); err != nil {
				return fmt.Errorf("hybrid-rsl: svm fold %d: %w", fold, err)
			}
			for _, i := range teIdx {
				svmProba[i] = leg.PredictProba(x[i])
			}
		}
	}

	svmCfg := m.cfg.SVM
	svmCfg.Seed = m.cfg.Seed + 307
	m.svm = NewSVM(svmCfg)
	if err := m.svm.Fit(x, y); err != nil {
		return fmt.Errorf("hybrid-rsl: svm leg: %w", err)
	}
	if !crossFit {
		for i := range svmProba {
			svmProba[i] = m.svm.PredictProba(x[i])
		}
	}

	meta := make([][]float64, n)
	for i := 0; i < n; i++ {
		rfP := m.rf.PredictProba(x[i])
		if m.cfg.CrossFitMeta {
			if p, ok := m.rf.OOBProba(i); ok {
				rfP = p
			}
		}
		meta[i] = metaFeatures(rfP, svmProba[i])
	}
	m.meta = NewLogisticRegression(m.cfg.Meta)
	if err := m.meta.Fit(meta, y); err != nil {
		return fmt.Errorf("hybrid-rsl: meta layer: %w", err)
	}
	m.fitted = true
	return nil
}

// hasBothClassesInFolds reports whether both parity folds contain both
// classes, the precondition for 2-fold cross fitting.
func hasBothClassesInFolds(y []int) bool {
	var count [2][2]int // [fold][class]
	for i, v := range y {
		count[i%2][v]++
	}
	for fold := 0; fold < 2; fold++ {
		if count[fold][0] == 0 || count[fold][1] == 0 {
			return false
		}
	}
	return true
}

// metaFeatures maps the two legs' probabilities into the fusion layer's
// feature space: raw probabilities plus clipped log-odds. The logit
// features let the logistic layer implement a calibrated opinion pool; the
// raw probabilities preserve threshold information.
func metaFeatures(rfP, svmP float64) []float64 {
	return []float64{rfP, svmP, clippedLogit(rfP), clippedLogit(svmP)}
}

func clippedLogit(p float64) float64 {
	const eps = 1e-3
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return math.Log(p / (1 - p))
}

// PredictProba fuses the two legs through the logistic layer.
// Non-finite features are treated as 0 (see Classifier).
func (m *HybridRSL) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	x = cleanFeatures(x)
	return m.meta.PredictProba(metaFeatures(m.rf.PredictProba(x), m.svm.PredictProba(x)))
}
