package mlearn

import (
	"math"
	"math/rand"
	"testing"
)

// randomXY draws a random binary problem with both classes present.
func randomXY(rng *rand.Rand, n, d int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * 3
		}
		x[i] = row
		y[i] = rng.Intn(2)
	}
	// Guarantee both classes.
	y[0], y[1] = 0, 1
	return x, y
}

// probes draws prediction inputs: random vectors plus exact training
// rows (which sit on split thresholds, the interesting edge).
func probes(rng *rand.Rand, x [][]float64, count int) [][]float64 {
	d := len(x[0])
	out := make([][]float64, 0, count+4)
	for i := 0; i < count; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * 4
		}
		out = append(out, row)
	}
	for i := 0; i < 4 && i < len(x); i++ {
		out = append(out, x[i])
	}
	return out
}

// TestFlatTreePropertyEqualsPointer is the compiled-path property test:
// over 1e3 randomized fitted trees, flattened traversal must equal
// pointer traversal bit for bit on every probe.
func TestFlatTreePropertyEqualsPointer(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 1000; trial++ {
		n := 10 + rng.Intn(40)
		d := 2 + rng.Intn(5)
		x, y := randomXY(rng, n, d)
		tree := NewDecisionTree(TreeConfig{MaxDepth: 2 + rng.Intn(8), MinLeaf: 1 + rng.Intn(3)})
		if err := tree.Fit(x, y); err != nil {
			t.Fatalf("trial %d: fit: %v", trial, err)
		}
		flat, err := tree.Compile()
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		for pi, probe := range probes(rng, x, 4) {
			want := tree.PredictProba(probe)
			got := flat.PredictProba(probe)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("trial %d probe %d: pointer %v != flat %v", trial, pi, want, got)
			}
		}
	}
}

// TestCompiledMatchesPointerAllTechniques pins bit-identity of Compile
// output for every registered technique, on finite and non-finite
// inputs.
func TestCompiledMatchesPointerAllTechniques(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 10; trial++ {
				n := 24 + rng.Intn(40)
				d := 3 + rng.Intn(4)
				x, y := randomXY(rng, n, d)
				c, err := NewByName(name, int64(trial))
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Fit(x, y); err != nil {
					t.Fatalf("trial %d: fit: %v", trial, err)
				}
				cc, err := Compile(c)
				if err != nil {
					t.Fatalf("trial %d: compile: %v", trial, err)
				}
				if _, ok := cc.(passthrough); ok {
					t.Fatalf("%s compiled to the passthrough fallback", name)
				}
				for pi, probe := range probes(rng, x, 6) {
					want := c.PredictProba(probe)
					got := cc.PredictProba(probe)
					if math.Float64bits(want) != math.Float64bits(got) {
						t.Fatalf("trial %d probe %d: pointer %v != compiled %v", trial, pi, want, got)
					}
					// Corrupt one entry; both paths must still agree and
					// match the explicit zero substitution.
					dirty := append([]float64(nil), probe...)
					dirty[pi%d] = math.NaN()
					zeroed := append([]float64(nil), probe...)
					zeroed[pi%d] = 0
					pw, pg := c.PredictProba(dirty), cc.PredictProba(dirty)
					if math.Float64bits(pw) != math.Float64bits(pg) {
						t.Fatalf("trial %d probe %d: NaN input: pointer %v != compiled %v", trial, pi, pw, pg)
					}
					if math.Float64bits(pw) != math.Float64bits(c.PredictProba(zeroed)) {
						t.Fatalf("trial %d probe %d: NaN not treated as 0", trial, pi)
					}
				}
			}
		})
	}
}

// TestNonFiniteFeatureContract pins the uniform predictor contract:
// NaN and ±Inf features act as 0 and the output stays a probability.
func TestNonFiniteFeatureContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y := randomXY(rng, 60, 4)
	for _, name := range Names() {
		c, err := NewByName(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Fit(x, y); err != nil {
			t.Fatalf("%s: fit: %v", name, err)
		}
		dirty := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1.5}
		clean := []float64{0, 0, 0, 1.5}
		got := c.PredictProba(dirty)
		want := c.PredictProba(clean)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: dirty %v != clean %v", name, got, want)
		}
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("%s: dirty input produced %v, want probability", name, got)
		}
		// The caller's slice must stay untouched.
		if !math.IsNaN(dirty[0]) || !math.IsInf(dirty[1], 1) {
			t.Errorf("%s: PredictProba mutated the input slice", name)
		}
	}
}

func TestCleanFeaturesAllocatesOnlyWhenDirty(t *testing.T) {
	clean := []float64{1, 2, 3}
	if got := testing.AllocsPerRun(100, func() { cleanFeatures(clean) }); got != 0 {
		t.Errorf("clean path allocated %v times per run", got)
	}
	dirty := []float64{1, math.NaN(), 3}
	out := cleanFeatures(dirty)
	if &out[0] == &dirty[0] {
		t.Fatal("dirty path returned the caller's slice")
	}
	if out[0] != 1 || out[1] != 0 || out[2] != 3 {
		t.Fatalf("sanitized = %v, want [1 0 3]", out)
	}
}

// TestCompiledMultiOutput pins CompiledMultiOutput against MultiOutput:
// bitwise-equal probabilities and an allocation-free PredictProbaInto.
func TestCompiledMultiOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, d, outputs := 40, 5, 6
	x := make([][]float64, n)
	yy := make([][]int, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		lab := make([]int, outputs)
		for v := range lab {
			lab[v] = rng.Intn(2)
		}
		yy[i] = lab
	}
	for v := 0; v < outputs; v++ {
		yy[0][v], yy[1][v] = 0, 1
	}
	factory := func(seed int64) Classifier {
		return NewHybridRSL(HybridConfig{
			RF:   RFConfig{Trees: 5, MaxDepth: 4},
			SVM:  SVMConfig{Epochs: 5},
			Meta: LogisticConfig{Epochs: 40},
			Seed: seed,
		})
	}
	mo := NewMultiOutput(factory, 1)
	if err := mo.Fit(x, yy); err != nil {
		t.Fatal(err)
	}
	cm, err := mo.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Outputs() != outputs {
		t.Fatalf("Outputs = %d, want %d", cm.Outputs(), outputs)
	}

	out := make([]float64, outputs)
	for _, probe := range probes(rng, x, 8) {
		want, err := mo.PredictProba(probe)
		if err != nil {
			t.Fatal(err)
		}
		if err := cm.PredictProbaInto(probe, out); err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if math.Float64bits(want[v]) != math.Float64bits(out[v]) {
				t.Fatalf("output %d: pointer %v != compiled %v", v, want[v], out[v])
			}
		}
	}

	probe := x[0]
	if got := testing.AllocsPerRun(100, func() {
		if err := cm.PredictProbaInto(probe, out); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("PredictProbaInto allocated %v times per run, want 0", got)
	}

	if err := cm.PredictProbaInto(probe, out[:2]); err == nil {
		t.Error("short buffer accepted")
	}
}

// TestCompileUnfitted pins the error contract for unfitted models.
func TestCompileUnfitted(t *testing.T) {
	cases := []Classifier{
		NewDecisionTree(TreeConfig{}),
		NewRandomForest(RFConfig{}),
		NewGradientBoosting(GBConfig{}),
		NewLinearRegression(LinearConfig{}),
		NewLogisticRegression(LogisticConfig{}),
		NewSVM(SVMConfig{}),
		NewHybridRSL(HybridConfig{}),
	}
	for _, c := range cases {
		if _, err := Compile(c); err == nil {
			t.Errorf("%T: compiling unfitted model succeeded", c)
		}
	}
}
