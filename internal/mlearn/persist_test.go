package mlearn

import (
	"bytes"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, c Classifier) Classifier {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveClassifier(&buf, c); err != nil {
		t.Fatalf("SaveClassifier: %v", err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatalf("LoadClassifier: %v", err)
	}
	return loaded
}

func TestClassifierRoundTripPreservesPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trX, trY := blobs(rng, 250, 0.4)
	probes := make([][]float64, 50)
	for i := range probes {
		probes[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	for name, c := range makeAll(5) {
		t.Run(name, func(t *testing.T) {
			if err := c.Fit(trX, trY); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			loaded := roundTrip(t, c)
			for _, x := range probes {
				want := c.PredictProba(x)
				got := loaded.PredictProba(x)
				if want != got {
					t.Fatalf("prediction drift after round trip: %v vs %v", want, got)
				}
			}
		})
	}
}

func TestFlattenTreeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trX, trY := xorData(rng, 300)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 8})
	if err := tree.Fit(trX, trY); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	flat := flattenTree(tree.root)
	if len(flat) < 3 {
		t.Fatalf("tree too small: %d nodes", len(flat))
	}
	rebuilt, err := unflattenTree(flat)
	if err != nil {
		t.Fatalf("unflattenTree: %v", err)
	}
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		if tree.root.predict(x) != rebuilt.predict(x) {
			t.Fatal("rebuilt tree predicts differently")
		}
	}
}

func TestUnflattenTreeCorrupt(t *testing.T) {
	if _, err := unflattenTree([]flatNode{{Leaf: false, Left: 5, Right: 6}}); err == nil {
		t.Fatal("corrupt links should error")
	}
	root, err := unflattenTree(nil)
	if err != nil || root != nil {
		t.Fatalf("empty input: %v, %v", root, err)
	}
}

func TestLoadClassifierUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft an envelope with a bogus kind.
	env := envelope{Kind: "bogus", Payload: []byte{1, 2, 3}}
	if err := encodeGob(&buf, env); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClassifier(&buf); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestSaveUnfittedHybrid(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveClassifier(&buf, NewHybridRSL(HybridConfig{})); err == nil {
		t.Fatal("unfitted hybrid should refuse to save")
	}
}

func TestMultiOutputRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 150
	x := make([][]float64, n)
	y := make([][]int, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = []int{boolToInt(x[i][0] > 0), boolToInt(x[i][1] > 0)}
	}
	mo := NewMultiOutput(func(seed int64) Classifier {
		return NewGradientBoosting(GBConfig{Seed: seed, Rounds: 20})
	}, 9)
	if err := mo.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	var buf bytes.Buffer
	if err := mo.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadMultiOutput(&buf)
	if err != nil {
		t.Fatalf("LoadMultiOutput: %v", err)
	}
	if loaded.Outputs() != 2 {
		t.Fatalf("outputs = %d", loaded.Outputs())
	}
	probe := []float64{1.2, -0.7}
	want, _ := mo.PredictProba(probe)
	got, err := loaded.PredictProba(probe)
	if err != nil {
		t.Fatalf("PredictProba: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("output %d drift: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestMultiOutputSaveUnfitted(t *testing.T) {
	mo := NewMultiOutput(func(seed int64) Classifier { return NewDecisionTree(TreeConfig{}) }, 1)
	var buf bytes.Buffer
	if err := mo.Save(&buf); err != ErrNotFitted {
		t.Fatalf("err = %v, want ErrNotFitted", err)
	}
}
