package mlearn

import (
	"math"

	"github.com/aquascale/aquascale/internal/matrix"
)

// scaler standardizes features to zero mean and unit variance, which the
// gradient-based learners (logistic regression, SVM) need because pressure
// deltas (m) and flow deltas (m³/s) differ by orders of magnitude.
type scaler struct {
	mean []float64
	inv  []float64 // 1/std, 1 for constant features
}

func fitScaler(x [][]float64) *scaler {
	d := len(x[0])
	s := &scaler{mean: make([]float64, d), inv: make([]float64, d)}
	n := float64(len(x))
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	varAcc := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			dv := v - s.mean[j]
			varAcc[j] += dv * dv
		}
	}
	for j := range varAcc {
		std := math.Sqrt(varAcc[j] / n)
		if std < 1e-12 {
			s.inv[j] = 1
		} else {
			s.inv[j] = 1 / std
		}
	}
	return s
}

func (s *scaler) transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) * s.inv[j]
	}
	return out
}

// LinearConfig configures ridge linear regression.
type LinearConfig struct {
	// Lambda is the L2 penalty. Zero means 1e-3.
	Lambda float64
}

// LinearRegression is a ridge least-squares fit of the binary label,
// interpreted as a probability after clipping to [0, 1] — the paper's
// "LinearR" baseline.
type LinearRegression struct {
	cfg    LinearConfig
	scale  *scaler
	w      []float64
	bias   float64
	fitted bool
}

var _ Classifier = (*LinearRegression)(nil)

// NewLinearRegression creates an unfitted ridge regressor.
func NewLinearRegression(cfg LinearConfig) *LinearRegression {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-3
	}
	return &LinearRegression{cfg: cfg}
}

// Fit solves the weighted normal equations (XᵀWX + λI)β = XᵀWy with
// balanced class weights.
func (m *LinearRegression) Fit(x [][]float64, y []int) error {
	d, err := validateXY(x, y)
	if err != nil {
		return err
	}
	m.scale = fitScaler(x)
	cw := classWeights(y)

	// Augment with a bias column (index d).
	cols := d + 1
	a := matrix.NewDense(cols, cols)
	b := make([]float64, cols)
	row := make([]float64, cols)
	for i, raw := range x {
		xi := m.scale.transform(raw)
		copy(row, xi)
		row[d] = 1
		w := cw[y[i]]
		yi := float64(y[i])
		for p := 0; p < cols; p++ {
			if row[p] == 0 {
				continue
			}
			wp := w * row[p]
			for q := p; q < cols; q++ {
				a.Add(p, q, wp*row[q])
			}
			b[p] += wp * yi
		}
	}
	// Mirror the upper triangle and add the ridge.
	for p := 0; p < cols; p++ {
		for q := p + 1; q < cols; q++ {
			a.Set(q, p, a.At(p, q))
		}
		a.Add(p, p, m.cfg.Lambda*float64(len(x)))
	}
	beta, err := matrix.SolveSPD(a, b)
	if err != nil {
		return err
	}
	m.w = beta[:d]
	m.bias = beta[d]
	m.fitted = true
	return nil
}

// PredictProba returns the clipped linear response. Non-finite features
// are treated as 0 (see Classifier).
func (m *LinearRegression) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	xi := m.scale.transform(cleanFeatures(x))
	return clamp01(matrix.Dot(m.w, xi) + m.bias)
}

// LogisticConfig configures logistic regression.
type LogisticConfig struct {
	// Lambda is the L2 penalty. Zero means 1e-4.
	Lambda float64

	// LearningRate for full-batch gradient descent. Zero means 0.5.
	LearningRate float64

	// Epochs of gradient descent. Zero means 300.
	Epochs int
}

// LogisticRegression is L2-regularized logistic regression trained with
// full-batch gradient descent over standardized features — the paper's
// "LogisticR" and the fusion layer of HybridRSL.
type LogisticRegression struct {
	cfg    LogisticConfig
	scale  *scaler
	w      []float64
	bias   float64
	fitted bool
}

var _ Classifier = (*LogisticRegression)(nil)

// NewLogisticRegression creates an unfitted logistic regressor.
func NewLogisticRegression(cfg LogisticConfig) *LogisticRegression {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-4
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.5
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 300
	}
	return &LogisticRegression{cfg: cfg}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit runs weighted batch gradient descent on the logistic loss.
func (m *LogisticRegression) Fit(x [][]float64, y []int) error {
	d, err := validateXY(x, y)
	if err != nil {
		return err
	}
	m.scale = fitScaler(x)
	cw := classWeights(y)

	xs := make([][]float64, len(x))
	totalW := 0.0
	for i, raw := range x {
		xs[i] = m.scale.transform(raw)
		totalW += cw[y[i]]
	}
	m.w = make([]float64, d)
	m.bias = 0
	grad := make([]float64, d)
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gBias := 0.0
		for i, xi := range xs {
			p := sigmoid(matrix.Dot(m.w, xi) + m.bias)
			g := cw[y[i]] * (p - float64(y[i]))
			matrix.AxpY(g, xi, grad)
			gBias += g
		}
		inv := 1 / totalW
		lr := m.cfg.LearningRate
		for j := range m.w {
			m.w[j] -= lr * (grad[j]*inv + m.cfg.Lambda*m.w[j])
		}
		m.bias -= lr * gBias * inv
	}
	m.fitted = true
	return nil
}

// PredictProba returns the sigmoid response. Non-finite features are
// treated as 0 (see Classifier).
func (m *LogisticRegression) PredictProba(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	xi := m.scale.transform(cleanFeatures(x))
	return sigmoid(matrix.Dot(m.w, xi) + m.bias)
}
