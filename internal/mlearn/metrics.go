package mlearn

// HammingScore is the paper's evaluation metric (Sec. V-B): the number of
// correctly predicted leak events divided by the union of predicted and
// true leak events — the Jaccard index of the two leak sets. A scenario
// with no true and no predicted leaks scores 1.
//
// This is the canonical implementation, shared by Phase-I profile
// evaluation, Phase-II system evaluation and the fusion-side experiment
// scoring; score any 0/1 node vectors through it (or HammingScoreProba)
// rather than re-deriving the set arithmetic. Vectors of unequal length
// are compared over the longer one, with missing entries treated as 0, so
// the metric stays symmetric.
func HammingScore(pred, truth []int) float64 {
	inter, union := 0, 0
	n := len(pred)
	if len(truth) > n {
		n = len(truth)
	}
	for i := 0; i < n; i++ {
		p := i < len(pred) && pred[i] == 1
		t := i < len(truth) && truth[i] == 1
		if p && t {
			inter++
		}
		if p || t {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// HammingScoreProba is HammingScore with the prediction given as per-node
// probabilities, thresholded at the paper's 0.5 decision boundary (the
// same S = {v : p_v(1) > 0.5} rule fusion.Prediction.Set applies).
func HammingScoreProba(proba []float64, truth []int) float64 {
	n := len(proba)
	if len(truth) > n {
		n = len(truth)
	}
	inter, union := 0, 0
	for i := 0; i < n; i++ {
		p := i < len(proba) && proba[i] > 0.5
		t := i < len(truth) && truth[i] == 1
		if p && t {
			inter++
		}
		if p || t {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// MeanHammingScore averages HammingScore over aligned prediction/truth
// pairs; it returns 0 for empty input.
func MeanHammingScore(preds, truths [][]int) float64 {
	if len(preds) == 0 || len(preds) != len(truths) {
		return 0
	}
	total := 0.0
	for i := range preds {
		total += HammingScore(preds[i], truths[i])
	}
	return total / float64(len(preds))
}

// ConfusionCounts tallies binary outcomes over one prediction vector.
type ConfusionCounts struct {
	TP, FP, TN, FN int
}

// Confusion computes the confusion counts for one scenario.
func Confusion(pred, truth []int) ConfusionCounts {
	var c ConfusionCounts
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	for i := 0; i < n; i++ {
		switch {
		case pred[i] == 1 && truth[i] == 1:
			c.TP++
		case pred[i] == 1 && truth[i] == 0:
			c.FP++
		case pred[i] == 0 && truth[i] == 1:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 1 when nothing was predicted positive.
func (c ConfusionCounts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 1 when nothing was truly positive.
func (c ConfusionCounts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c ConfusionCounts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
