// Package social models the human information source: leak-related social
// media reports (the TAS tweet-stream substitute), their arrival process,
// their geolocation noise and false positives, and the geo-clique
// extraction that turns raw reports into subzone-level leak evidence.
//
// The paper's model (Sec. III-D): reports arrive as a Poisson process with
// rate λ per IoT sampling interval (their corpus statistics give λ = 1 per
// 15 minutes); each collected tweet is a false positive with probability
// p_e (0.3); the confidence that a subzone has a leak after k reports is
// p_t = 1 − p_e^k (eq. 3). A clique c is the set of nodes within distance
// γ of a report location l_c.
package social

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/stats"
)

// Report is one leak-related social media post.
type Report struct {
	// X, Y is the post's geotag (m, network plan coordinates).
	X, Y float64

	// Slot is the IoT sampling interval in which the report arrived.
	Slot int

	// Relevant marks ground truth: false means the report is a false
	// positive (collected but unrelated to any leak). Exposed for test
	// and diagnostic use; the inference pipeline must not read it.
	Relevant bool
}

// Config parameterizes the report generator.
type Config struct {
	// ArrivalRate is λ: expected reports per sampling interval. Zero
	// means the paper's 1.0.
	ArrivalRate float64

	// FalsePositiveRate is p_e. Zero means the paper's 0.3.
	FalsePositiveRate float64

	// ScatterM is the standard deviation of a relevant report's geotag
	// around the true leak (people post from the sidewalk next to the
	// visible water, not at the pipe itself). Zero means 20 m, consistent
	// with the paper's γ = 30 m clique radius.
	ScatterM float64
}

func (c Config) withDefaults() Config {
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 1.0
	}
	if c.FalsePositiveRate <= 0 {
		c.FalsePositiveRate = 0.3
	}
	if c.ScatterM <= 0 {
		c.ScatterM = 20
	}
	return c
}

// Confidence is eq. 3: the confidence that a region has a leak after k
// collected reports, p_t = 1 − p_e^k.
func Confidence(pe float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if pe <= 0 {
		return 1
	}
	if pe >= 1 {
		return 0
	}
	return 1 - math.Pow(pe, float64(k))
}

// Generator draws synthetic report streams for a network.
type Generator struct {
	cfg  Config
	net  *network.Network
	rng  *rand.Rand
	minX float64
	maxX float64
	minY float64
	maxY float64
}

// NewGenerator builds a report generator over the network's bounding box.
func NewGenerator(net *network.Network, cfg Config, rng *rand.Rand) (*Generator, error) {
	if rng == nil {
		return nil, fmt.Errorf("social: nil rng")
	}
	if len(net.Nodes) == 0 {
		return nil, fmt.Errorf("social: empty network")
	}
	g := &Generator{
		cfg: cfg.withDefaults(), net: net, rng: rng,
		minX: math.Inf(1), maxX: math.Inf(-1),
		minY: math.Inf(1), maxY: math.Inf(-1),
	}
	for i := range net.Nodes {
		n := &net.Nodes[i]
		g.minX = math.Min(g.minX, n.X)
		g.maxX = math.Max(g.maxX, n.X)
		g.minY = math.Min(g.minY, n.Y)
		g.maxY = math.Max(g.maxY, n.Y)
	}
	return g, nil
}

// Reports draws the report stream for `slots` elapsed sampling intervals
// given the true leak locations. Arrival count per slot is
// Poisson(λ); each report is a false positive with probability p_e
// (uniform geotag over the service area) and otherwise a relevant report
// geotagged near a uniformly chosen true leak.
//
// With no true leaks, every arrival is a false positive regardless of p_e:
// there is nothing relevant to report.
func (g *Generator) Reports(leakNodes []int, slots int) ([]Report, error) {
	return g.ReportsWith(g.rng, leakNodes, slots)
}

// ReportsWith is Reports with an explicit rng, so one Generator (and its
// precomputed service-area bounding box) can be reused across many
// scenarios that each carry their own deterministic random stream — the
// pattern the parallel Phase-II evaluator relies on.
func (g *Generator) ReportsWith(rng *rand.Rand, leakNodes []int, slots int) ([]Report, error) {
	if rng == nil {
		return nil, fmt.Errorf("social: nil rng")
	}
	for _, v := range leakNodes {
		if v < 0 || v >= len(g.net.Nodes) {
			return nil, fmt.Errorf("social: leak node %d out of range", v)
		}
	}
	var out []Report
	for slot := 0; slot < slots; slot++ {
		k := stats.SamplePoisson(g.cfg.ArrivalRate, rng)
		for i := 0; i < k; i++ {
			relevant := len(leakNodes) > 0 && rng.Float64() >= g.cfg.FalsePositiveRate
			var r Report
			r.Slot = slot
			if relevant {
				leak := g.net.Nodes[leakNodes[rng.Intn(len(leakNodes))]]
				r.X = leak.X + rng.NormFloat64()*g.cfg.ScatterM
				r.Y = leak.Y + rng.NormFloat64()*g.cfg.ScatterM
				r.Relevant = true
			} else {
				r.X = g.minX + rng.Float64()*(g.maxX-g.minX)
				r.Y = g.minY + rng.Float64()*(g.maxY-g.minY)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Clique is the paper's c = {v : |l_c − l_v| < γ}: the nodes within γ of a
// report cluster, with the eq.-3 confidence from the cluster's report
// count.
type Clique struct {
	// CenterX, CenterY is the report-cluster centroid l_c.
	CenterX, CenterY float64

	// Nodes are the network node indices within γ of the centroid.
	Nodes []int

	// Reports is k, the number of reports in the cluster.
	Reports int

	// Confidence is p_t = 1 − p_e^k.
	Confidence float64
}

// BuildCliques groups reports into clusters (greedy: a report joins the
// first cluster whose centroid lies within γ, else starts a new one) and
// attaches the nodes within γ of each cluster centroid. γ is the paper's
// coarseness parameter: larger γ means coarser localization.
func BuildCliques(net *network.Network, reports []Report, gammaM, pe float64) []Clique {
	if gammaM <= 0 || len(reports) == 0 {
		return nil
	}
	type cluster struct {
		sumX, sumY float64
		count      int
	}
	var clusters []*cluster
	for _, r := range reports {
		placed := false
		for _, c := range clusters {
			cx, cy := c.sumX/float64(c.count), c.sumY/float64(c.count)
			if math.Hypot(r.X-cx, r.Y-cy) < gammaM {
				c.sumX += r.X
				c.sumY += r.Y
				c.count++
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &cluster{sumX: r.X, sumY: r.Y, count: 1})
		}
	}

	out := make([]Clique, 0, len(clusters))
	for _, c := range clusters {
		cx, cy := c.sumX/float64(c.count), c.sumY/float64(c.count)
		cl := Clique{
			CenterX:    cx,
			CenterY:    cy,
			Reports:    c.count,
			Confidence: Confidence(pe, c.count),
		}
		for i := range net.Nodes {
			if math.Hypot(net.Nodes[i].X-cx, net.Nodes[i].Y-cy) < gammaM {
				cl.Nodes = append(cl.Nodes, i)
			}
		}
		if len(cl.Nodes) > 0 {
			out = append(out, cl)
		}
	}
	return out
}

// ReportPMF is eq. 4 as the paper applies it ("we use Poisson
// distribution"): the probability of receiving k reports in n elapsed
// sampling intervals, Poisson with mean n·λ. (The formula as typeset in
// the paper has (n+1)^k where the Poisson k! belongs — a typo, since that
// expression does not normalize; we implement the distribution the text
// names.)
func ReportPMF(k, n int, lambda float64) float64 {
	if n < 0 {
		return 0
	}
	return stats.PoissonPMF(k, float64(n)*lambda)
}

// SlotOf converts elapsed time to a sampling-interval index.
func SlotOf(t, step time.Duration) int {
	if step <= 0 {
		return 0
	}
	return int(t / step)
}
