package social

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/network"
)

func TestConfidence(t *testing.T) {
	// Paper eq. 3 with p_e = 0.3.
	if got := Confidence(0.3, 1); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("k=1: %v, want 0.7", got)
	}
	if got := Confidence(0.3, 2); math.Abs(got-0.91) > 1e-12 {
		t.Fatalf("k=2: %v, want 0.91", got)
	}
	if Confidence(0.3, 0) != 0 {
		t.Fatal("k=0 should have zero confidence")
	}
	// Monotone in k.
	prev := 0.0
	for k := 1; k < 10; k++ {
		c := Confidence(0.3, k)
		if c <= prev {
			t.Fatalf("confidence not increasing at k=%d", k)
		}
		prev = c
	}
	if Confidence(0, 3) != 1 {
		t.Fatal("pe=0 should be certain")
	}
	if Confidence(1, 3) != 0 {
		t.Fatal("pe=1 should be useless")
	}
}

func TestGeneratorValidation(t *testing.T) {
	net := network.BuildTestNet()
	if _, err := NewGenerator(net, Config{}, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	if _, err := NewGenerator(network.New("x"), Config{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty network should error")
	}
	g, err := NewGenerator(net, Config{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if _, err := g.Reports([]int{999}, 2); err == nil {
		t.Fatal("out-of-range leak node should error")
	}
}

func TestReportsArrivalRate(t *testing.T) {
	net := network.BuildEPANet()
	g, _ := NewGenerator(net, Config{ArrivalRate: 2.0}, rand.New(rand.NewSource(3)))
	leak, _ := net.NodeIndex("J40")
	const slots = 4000
	reports, err := g.Reports([]int{leak}, slots)
	if err != nil {
		t.Fatalf("Reports: %v", err)
	}
	perSlot := float64(len(reports)) / slots
	if math.Abs(perSlot-2.0) > 0.1 {
		t.Fatalf("arrival rate = %v, want ~2.0", perSlot)
	}
	for _, r := range reports {
		if r.Slot < 0 || r.Slot >= slots {
			t.Fatalf("report slot %d out of range", r.Slot)
		}
	}
}

func TestReportsFalsePositiveRate(t *testing.T) {
	net := network.BuildEPANet()
	g, _ := NewGenerator(net, Config{FalsePositiveRate: 0.3}, rand.New(rand.NewSource(4)))
	leak, _ := net.NodeIndex("J40")
	reports, _ := g.Reports([]int{leak}, 5000)
	fp := 0
	for _, r := range reports {
		if !r.Relevant {
			fp++
		}
	}
	rate := float64(fp) / float64(len(reports))
	if math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("false positive rate = %v, want ~0.3", rate)
	}
}

func TestReportsRelevantNearLeak(t *testing.T) {
	net := network.BuildEPANet()
	g, _ := NewGenerator(net, Config{ScatterM: 50}, rand.New(rand.NewSource(5)))
	leakIdx, _ := net.NodeIndex("J40")
	leak := net.Nodes[leakIdx]
	reports, _ := g.Reports([]int{leakIdx}, 2000)
	for _, r := range reports {
		if !r.Relevant {
			continue
		}
		if d := math.Hypot(r.X-leak.X, r.Y-leak.Y); d > 50*6 {
			t.Fatalf("relevant report %v m from leak, beyond 6σ", d)
		}
	}
}

func TestReportsNoLeaksAllFalsePositives(t *testing.T) {
	net := network.BuildEPANet()
	g, _ := NewGenerator(net, Config{}, rand.New(rand.NewSource(6)))
	reports, err := g.Reports(nil, 500)
	if err != nil {
		t.Fatalf("Reports: %v", err)
	}
	for _, r := range reports {
		if r.Relevant {
			t.Fatal("relevant report with no leaks")
		}
	}
}

func TestBuildCliques(t *testing.T) {
	net := network.BuildEPANet()
	leakIdx, _ := net.NodeIndex("J40")
	leak := net.Nodes[leakIdx]
	// Three reports tightly around the leak.
	reports := []Report{
		{X: leak.X + 10, Y: leak.Y - 5},
		{X: leak.X - 8, Y: leak.Y + 12},
		{X: leak.X + 3, Y: leak.Y + 2},
	}
	cliques := BuildCliques(net, reports, 150, 0.3)
	if len(cliques) != 1 {
		t.Fatalf("cliques = %d, want 1", len(cliques))
	}
	c := cliques[0]
	if c.Reports != 3 {
		t.Fatalf("clique reports = %d, want 3", c.Reports)
	}
	if math.Abs(c.Confidence-Confidence(0.3, 3)) > 1e-12 {
		t.Fatalf("confidence = %v", c.Confidence)
	}
	found := false
	for _, v := range c.Nodes {
		if v == leakIdx {
			found = true
		}
	}
	if !found {
		t.Fatal("leak node not in its clique")
	}
	// Every clique member must be within γ of the centroid.
	for _, v := range c.Nodes {
		if d := math.Hypot(net.Nodes[v].X-c.CenterX, net.Nodes[v].Y-c.CenterY); d >= 150 {
			t.Fatalf("node %d at %v m, outside γ", v, d)
		}
	}
}

func TestBuildCliquesSeparatesDistantReports(t *testing.T) {
	net := network.BuildEPANet()
	a := net.Nodes[0]
	b := net.Nodes[len(net.Nodes)-10]
	if math.Hypot(a.X-b.X, a.Y-b.Y) < 500 {
		t.Skip("chosen nodes too close for this test")
	}
	reports := []Report{{X: a.X, Y: a.Y}, {X: b.X, Y: b.Y}}
	cliques := BuildCliques(net, reports, 200, 0.3)
	if len(cliques) != 2 {
		t.Fatalf("cliques = %d, want 2", len(cliques))
	}
}

func TestBuildCliquesGammaCoarseness(t *testing.T) {
	// Larger γ yields cliques with at least as many member nodes.
	net := network.BuildEPANet()
	leakIdx, _ := net.NodeIndex("J40")
	leak := net.Nodes[leakIdx]
	reports := []Report{{X: leak.X, Y: leak.Y}}
	small := BuildCliques(net, reports, 100, 0.3)
	big := BuildCliques(net, reports, 800, 0.3)
	if len(small) != 1 || len(big) != 1 {
		t.Fatalf("clique counts = %d/%d", len(small), len(big))
	}
	if len(big[0].Nodes) <= len(small[0].Nodes) {
		t.Fatalf("coarser γ should include more nodes: %d vs %d",
			len(big[0].Nodes), len(small[0].Nodes))
	}
}

func TestBuildCliquesEdgeCases(t *testing.T) {
	net := network.BuildTestNet()
	if got := BuildCliques(net, nil, 100, 0.3); got != nil {
		t.Fatal("no reports should yield no cliques")
	}
	if got := BuildCliques(net, []Report{{X: 0, Y: 0}}, 0, 0.3); got != nil {
		t.Fatal("zero gamma should yield no cliques")
	}
	// A report in the middle of nowhere attaches no nodes → dropped.
	far := []Report{{X: 1e7, Y: 1e7}}
	if got := BuildCliques(net, far, 100, 0.3); len(got) != 0 {
		t.Fatalf("unattached clique should be dropped, got %v", got)
	}
}

func TestReportPMF(t *testing.T) {
	// Mean n·λ Poisson; k=0 at n=0 is certain.
	if got := ReportPMF(0, 0, 1); got != 1 {
		t.Fatalf("PMF(0;0) = %v", got)
	}
	if got := ReportPMF(1, -1, 1); got != 0 {
		t.Fatalf("negative n should yield 0")
	}
	total := 0.0
	for k := 0; k < 100; k++ {
		total += ReportPMF(k, 4, 1.0)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", total)
	}
}

func TestSlotOf(t *testing.T) {
	if SlotOf(31*time.Minute, 15*time.Minute) != 2 {
		t.Fatal("SlotOf failed")
	}
	if SlotOf(time.Hour, 0) != 0 {
		t.Fatal("zero step should yield slot 0")
	}
}
