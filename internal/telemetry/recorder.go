package telemetry

import (
	"sort"
	"sync/atomic"
)

// recorderEntry pairs a snapshot with its global publish sequence so
// readers can order the ring's contents without locking writers.
type recorderEntry struct {
	seq  uint64
	snap *TraceSnapshot
}

// Recorder is the flight recorder: a lock-free bounded ring buffer of
// completed trace snapshots. Writers claim a slot with one atomic add and
// publish with one atomic pointer store; the newest Cap() traces survive,
// older ones are overwritten in place. Readers see each slot atomically —
// a concurrent overwrite yields either the old or the new snapshot, never
// a torn one. All methods are safe on a nil receiver.
type Recorder struct {
	slots []atomic.Pointer[recorderEntry]
	seq   atomic.Uint64
}

// NewRecorder builds a recorder holding up to capacity traces (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{slots: make([]atomic.Pointer[recorderEntry], capacity)}
}

// Cap returns the ring capacity (0 on a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Put publishes one completed trace, overwriting the oldest slot once the
// ring is full. Nil snapshots are ignored.
func (r *Recorder) Put(snap *TraceSnapshot) {
	if r == nil || snap == nil {
		return
	}
	seq := r.seq.Add(1)
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&recorderEntry{seq: seq, snap: snap})
}

// Len returns how many traces are currently held (at most Cap).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Recent returns up to n traces, newest first (all of them when n <= 0).
func (r *Recorder) Recent(n int) []*TraceSnapshot {
	if r == nil {
		return nil
	}
	entries := make([]*recorderEntry, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq > entries[j].seq })
	if n > 0 && n < len(entries) {
		entries = entries[:n]
	}
	out := make([]*TraceSnapshot, len(entries))
	for i, e := range entries {
		out[i] = e.snap
	}
	return out
}

// Find returns the most recently published trace for the given job id,
// or nil when it was never captured or has been overwritten.
func (r *Recorder) Find(job string) *TraceSnapshot {
	if r == nil || job == "" {
		return nil
	}
	var best *recorderEntry
	for i := range r.slots {
		e := r.slots[i].Load()
		if e != nil && e.snap.Job == job && (best == nil || e.seq > best.seq) {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	return best.snap
}
