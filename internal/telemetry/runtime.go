package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// Runtime health gauge names, pinned by the metric-name stability test.
const (
	gaugeGoroutines   = "runtime_goroutines"
	gaugeHeapInuse    = "runtime_heap_inuse_bytes"
	gaugeGCPauseTotal = "runtime_gc_pause_total_seconds"
	gaugeUptime       = "runtime_uptime_seconds"
)

// RuntimeHealth is one poll of the process-health gauges.
type RuntimeHealth struct {
	Goroutines          int     `json:"goroutines"`
	HeapInuseBytes      uint64  `json:"heap_inuse_bytes"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
}

// ReadRuntimeHealth samples the runtime once (goroutine count, heap
// in-use, cumulative GC pause). It stops the world briefly for
// runtime.ReadMemStats, so callers should not put it on hot paths.
func ReadRuntimeHealth() RuntimeHealth {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeHealth{
		Goroutines:          runtime.NumGoroutine(),
		HeapInuseBytes:      ms.HeapInuse,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
	}
}

// StartRuntimeGauges polls process-health gauges into the registry every
// interval (zero means 10s): runtime_goroutines, runtime_heap_inuse_bytes,
// runtime_gc_pause_total_seconds and runtime_uptime_seconds, all exported
// on /metrics alongside the pipeline's own instruments. One poll happens
// immediately so the gauges are never absent from an early scrape. The
// returned stop function is idempotent; on a nil registry it is a no-op.
func (r *Registry) StartRuntimeGauges(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	gGo := r.Gauge(gaugeGoroutines)
	gHeap := r.Gauge(gaugeHeapInuse)
	gGC := r.Gauge(gaugeGCPauseTotal)
	gUp := r.Gauge(gaugeUptime)
	start := time.Now()
	poll := func() {
		h := ReadRuntimeHealth()
		gGo.Set(float64(h.Goroutines))
		gHeap.Set(float64(h.HeapInuseBytes))
		gGC.Set(h.GCPauseTotalSeconds)
		gUp.Set(time.Since(start).Seconds())
	}
	poll()
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				poll()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
