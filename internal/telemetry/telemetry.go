// Package telemetry is the instrumentation layer of the AquaSCALE
// pipeline: atomic counters, gauges, fixed-bucket histograms and timing
// spans, with Prometheus-text and JSON exporters and an opt-in HTTP
// endpoint (metrics + pprof). It depends only on the standard library.
//
// The package is built around two rules:
//
//   - Determinism: no instrument touches random state or feeds back into
//     computation, so enabling telemetry never changes results at a fixed
//     seed. Instruments record counts and wall-clock time, nothing else.
//
//   - Near-zero disabled cost: every instrument method is safe on a nil
//     receiver and returns immediately, and the global registry defaults
//     to nil. Hot paths bind instrument handles once (at solver/factory
//     construction or per evaluation run); with telemetry disabled those
//     handles are nil and each record call is a single pointer test.
//
// Typical use:
//
//	reg := telemetry.Enable()              // install a global registry
//	... run the pipeline ...
//	reg.WriteJSON(f)                       // or reg.WritePrometheus(w)
//
// Instruments are identified by snake_case names ("hydraulic_solves_total");
// a name always maps to the same instrument within one registry.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if c != nil && delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can move in both directions. The zero
// value is ready to use; all methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic bucket counts. Bucket
// bounds are upper bounds in ascending order; observations above the last
// bound land in an implicit +Inf bucket. All methods are safe on a nil
// receiver.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. NaN observations match no finite bucket and
// land in the implicit +Inf bucket (the Prometheus convention); the sum
// still absorbs them, so a poisoned series is visible as a NaN _sum
// rather than silently miscounted.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound holds v; linear scan beats binary
	// search at the typical 10–20 bucket count.
	i := 0
	if math.IsNaN(v) {
		i = len(h.bounds)
	}
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds (nil on a nil receiver).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns per-bucket (non-cumulative) counts, one per bound
// plus the final +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// LinearBuckets returns count bounds start, start+width, …
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns count bounds start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ServingLatencyBuckets is the default bucket layout for online observe
// latency. The compiled serving path answers in tens of microseconds
// (EPA-NET p50 ≈ 55µs, p99 ≈ 82µs), so bounds start at 10µs and double
// through ≈5.2s — the old 100µs-first-bucket layout flattened the whole
// serving distribution into its first bin.
func ServingLatencyBuckets() []float64 { return ExpBuckets(1e-5, 2, 20) }

// EvalLatencyBuckets is the bucket layout for offline per-scenario
// observation latency (a hydraulic solve per sample, ms–s regime). These
// are the historical pre-retune bounds, kept for offline eval spans so
// long-run dashboards stay comparable.
func EvalLatencyBuckets() []float64 { return ExpBuckets(1e-4, 2, 16) }

// FastPathLatencyBuckets is the bucket layout for the flattened-ensemble
// evaluation step alone (no queueing, no HTTP): 1µs doubling to ≈0.13s.
func FastPathLatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 18) }

// SpanStats aggregates completed spans of one name: count, total, min,
// max and most-recent duration. All methods are safe on a nil receiver.
type SpanStats struct {
	count   atomic.Int64
	totalNS atomic.Int64
	minNS   atomic.Int64 // math.MaxInt64 until the first record
	maxNS   atomic.Int64
	lastNS  atomic.Int64
}

func newSpanStats() *SpanStats {
	s := &SpanStats{}
	s.minNS.Store(math.MaxInt64)
	return s
}

func (s *SpanStats) record(d time.Duration) {
	ns := int64(d)
	s.count.Add(1)
	s.totalNS.Add(ns)
	s.lastNS.Store(ns)
	for {
		old := s.minNS.Load()
		if ns >= old || s.minNS.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := s.maxNS.Load()
		if ns <= old || s.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns how many spans completed.
func (s *SpanStats) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Total returns the summed duration of completed spans.
func (s *SpanStats) Total() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.totalNS.Load())
}

// Last returns the duration of the most recently completed span.
func (s *SpanStats) Last() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.lastNS.Load())
}

// Min returns the shortest completed span (0 before any completes).
func (s *SpanStats) Min() time.Duration {
	if s == nil {
		return 0
	}
	if v := s.minNS.Load(); v != math.MaxInt64 {
		return time.Duration(v)
	}
	return 0
}

// Max returns the longest completed span.
func (s *SpanStats) Max() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.maxNS.Load())
}

// Span is one in-flight timed region. It is a small value type: starting a
// span on a nil registry yields a zero Span whose End is a no-op, so call
// sites never branch on whether telemetry is enabled.
type Span struct {
	stats *SpanStats
	start time.Time
}

// End completes the span, records it, and returns the measured duration
// (0 for a zero Span).
func (s Span) End() time.Duration {
	if s.stats == nil {
		return 0
	}
	d := time.Since(s.start)
	s.stats.record(d)
	return d
}

// Registry holds named instruments. Instruments are created on first use
// and live for the registry's lifetime; lookups are mutex-guarded (bind
// handles outside hot loops), recording is lock-free. All methods are safe
// on a nil receiver, returning nil instruments whose methods no-op.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	spans  map[string]*SpanStats
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		spans:  make(map[string]*SpanStats),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the existing buckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SpanStats returns the aggregate for the named span, creating it on
// first use.
func (r *Registry) SpanStats(name string) *SpanStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[name]
	if !ok {
		s = newSpanStats()
		r.spans[name] = s
	}
	return s
}

// StartSpan begins a timed region recorded under name when ended. On a nil
// registry it returns a zero Span (End is a no-op returning 0).
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{stats: r.SpanStats(name), start: time.Now()}
}

// WithLabel returns the instrument name carrying one label pair:
// `name{key="value"}`. A labeled name is an ordinary registry key — two
// label values yield two independent instruments — and the Prometheus
// exporter emits it as a labeled series of the base name (merging the
// label with histogram le labels), so per-district serving instruments
// aggregate under one metric family on dashboards. The value is
// sanitized to [a-zA-Z0-9_.-]; an empty value returns name unchanged.
func WithLabel(name, key, value string) string {
	if value == "" {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + len(key) + len(value) + 5)
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range value {
		ok := r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// splitLabels splits a (possibly labeled) instrument name into its base
// name and the label block without braces ("" when unlabeled).
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// global is the process-wide registry; nil means telemetry is disabled
// (the default), and every handle bound from it is a no-op.
var global atomic.Pointer[Registry]

// Enable installs a fresh global registry and returns it. Instrumented
// components bind their handles at construction time, so enable telemetry
// before building solvers, factories and systems.
func Enable() *Registry {
	r := New()
	global.Store(r)
	return r
}

// SetDefault installs reg (nil disables telemetry).
func SetDefault(reg *Registry) { global.Store(reg) }

// Disable removes the global registry; subsequently bound handles no-op.
func Disable() { global.Store(nil) }

// Default returns the global registry, or nil when telemetry is disabled.
// All Registry methods accept the nil result.
func Default() *Registry { return global.Load() }
