package telemetry

// Benchmarks for the two costs that matter: the disabled path (nil
// handles) that every instrumented hot loop pays when telemetry is off,
// and the enabled path for comparison. Baselines from the recording
// machine live in EXPERIMENTS.md ("Observability & profiling").

import (
	"testing"
	"time"
)

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := New().Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := New().Histogram("h", ExpBuckets(1e-4, 2, 16))
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1024))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		r.StartSpan("s").End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := New()
	st := r.SpanStats("s") // pre-create so the loop measures record cost
	_ = st
	for i := 0; i < b.N; i++ {
		r.StartSpan("s").End()
	}
}

func BenchmarkGaugeAddEnabled(b *testing.B) {
	g := New().Gauge("g")
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

// BenchmarkDisabledInstrumentedLoop models an instrumented hot loop (the
// shape the solver and dataset paths use): a nil-handle counter bump, a
// guarded time.Now, and a histogram observe per item, telemetry off.
func BenchmarkDisabledInstrumentedLoop(b *testing.B) {
	var (
		c *Counter
		h *Histogram
	)
	acc := 0.0
	for i := 0; i < b.N; i++ {
		var start time.Time
		if h != nil {
			start = time.Now()
		}
		acc += float64(i) // stand-in for real work
		c.Inc()
		if h != nil {
			h.ObserveDuration(time.Since(start))
		}
	}
	_ = acc
}
