package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// Upper bounds are inclusive: 1 lands in the first bucket.
	want := []int64{2, 1, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-12 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	if r.Histogram("h", nil) != h {
		t.Fatal("same name returned a different histogram")
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(5, 5, 3)
	if fmt.Sprint(lin) != "[5 10 15]" {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1e-3, 10, 3)
	if fmt.Sprint(exp) != "[0.001 0.01 0.1]" {
		t.Fatalf("ExpBuckets = %v", exp)
	}
}

func TestSpanStats(t *testing.T) {
	r := New()
	sp := r.StartSpan("s")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration = %v, want > 0", d)
	}
	st := r.SpanStats("s")
	if st.Count() != 1 || st.Total() != d || st.Last() != d || st.Min() != d || st.Max() != d {
		t.Fatalf("span stats = count %d total %v last %v min %v max %v, want all = %v",
			st.Count(), st.Total(), st.Last(), st.Min(), st.Max(), d)
	}
	r.StartSpan("s").End()
	if st.Count() != 2 {
		t.Fatalf("count = %d, want 2", st.Count())
	}
	if st.Min() > st.Max() {
		t.Fatalf("min %v > max %v", st.Min(), st.Max())
	}
}

// TestNilSafety pins the disabled path: every instrument obtained from a
// nil registry must be a no-op, not a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	if r.Counter("c").Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	if r.Gauge("g").Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("h", []float64{1})
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil || h.BucketCounts() != nil {
		t.Fatal("nil histogram has state")
	}
	if d := r.StartSpan("s").End(); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	if r.SpanStats("s").Count() != 0 {
		t.Fatal("nil span stats has a count")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Spans) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if r.ProgressLine() != "" {
		t.Fatal("nil ProgressLine not empty")
	}
}

// TestConcurrentWrites hammers one registry from many goroutines; run
// under -race this is the registry's data-race certificate, and the final
// totals pin that no increment is lost.
func TestConcurrentWrites(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Mix pre-bound and looked-up handles like real call sites.
				r.Counter("ops").Inc()
				r.Gauge("level").Add(1)
				r.Histogram("lat", []float64{1, 10, 100}).Observe(float64(i % 200))
				sp := r.StartSpan("work")
				sp.End()
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := r.Counter("ops").Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("level").Value(); got != total {
		t.Fatalf("gauge = %v, want %d", got, total)
	}
	h := r.Histogram("lat", nil)
	if h.Count() != total {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	sum := int64(0)
	for _, c := range h.BucketCounts() {
		sum += c
	}
	if sum != total {
		t.Fatalf("bucket counts sum to %d, want %d", sum, total)
	}
	if got := r.SpanStats("work").Count(); got != total {
		t.Fatalf("span count = %d, want %d", got, total)
	}
}

// TestConcurrentSnapshot exercises exporting while writers are active —
// the -http endpoint's situation — under -race.
func TestConcurrentSnapshot(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Counter("ops").Inc()
					r.Histogram("lat", []float64{1}).Observe(0.5)
					r.StartSpan("work").End()
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Snapshot()
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotAndJSON(t *testing.T) {
	r := New()
	r.Counter("hydraulic_solves_total").Add(7)
	r.Gauge("eval_rate").Set(3.25)
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.5)
	r.StartSpan("fig7").End()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if snap.Counters["hydraulic_solves_total"] != 7 {
		t.Fatalf("counter lost in round-trip: %+v", snap)
	}
	if snap.Gauges["eval_rate"] != 3.25 {
		t.Fatalf("gauge lost in round-trip: %+v", snap)
	}
	h := snap.Histograms["lat_seconds"]
	if h.Count != 1 || len(h.Buckets) != 3 || h.Buckets[1] != 1 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	s := snap.Spans["fig7"]
	if s.Count != 1 || s.TotalSeconds < 0 || s.LastSeconds != s.TotalSeconds {
		t.Fatalf("span snapshot = %+v", s)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("solves_total").Add(3)
	r.Gauge("rate").Set(2.5)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	r.StartSpan("bench.fig7ab").End()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE solves_total counter\nsolves_total 3\n",
		"# TYPE rate gauge\nrate 2.5\n",
		"lat_bucket{le=\"1\"} 1\n",
		"lat_bucket{le=\"2\"} 2\n",
		"lat_bucket{le=\"+Inf\"} 3\n",
		"lat_sum 11\nlat_count 3\n",
		"bench_fig7ab_seconds_count 1\n", // dot sanitized to _
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestProgressLine(t *testing.T) {
	r := New()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	if got, want := r.ProgressLine(), "a_total=1 b_total=2"; got != want {
		t.Fatalf("ProgressLine = %q, want %q", got, want)
	}
}

func TestGlobalEnableDisable(t *testing.T) {
	defer SetDefault(nil)
	if Default() != nil {
		t.Fatal("telemetry enabled at package init")
	}
	r := Enable()
	if Default() != r {
		t.Fatal("Enable did not install the registry")
	}
	Default().Counter("x").Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("write through Default() lost")
	}
	Disable()
	if Default() != nil {
		t.Fatal("Disable did not clear the registry")
	}
	Default().Counter("x").Inc() // must not panic
	if r.Counter("x").Value() != 1 {
		t.Fatal("disabled write mutated the old registry")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := New()
	r.Counter("solves_total").Add(5)
	srv, addr, err := r.StartServer("localhost:0")
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "solves_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, "\"solves_total\": 5") {
		t.Fatalf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Fatalf("/debug/vars missing memstats:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"bench.figure.fig7ab": "bench_figure_fig7ab",
		"ok_name:sub":         "ok_name:sub",
		"9starts":             "_starts",
		"sp ace":              "sp_ace",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
