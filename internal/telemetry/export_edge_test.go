package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestPromNameEscaping(t *testing.T) {
	cases := map[string]string{
		"serve_request_seconds": "serve_request_seconds",
		"with-dash":             "with_dash",
		"with.dot":              "with_dot",
		"with space":            "with_space",
		"colon:ok":              "colon:ok",
		"µ-weird/чars":          "__weird__ars",
		"9leading_digit":        "_leading_digit", // leading digit is invalid
		"trailing9":             "trailing9",      // non-leading digits are fine
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		0:            "0",
	}
	for in, want := range cases {
		if got := promFloat(in); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
}

// TestHistogramExtremeObservations pins the histogram edge contract:
// +Inf lands in the implicit +Inf bucket, -Inf in the first bucket, and
// NaN (which no <= comparison can place) also falls through to +Inf so
// the bucket counts always sum to the count.
func TestHistogramExtremeObservations(t *testing.T) {
	r := New()
	h := r.Histogram("edge_seconds", []float64{1, 10})
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(math.NaN())
	h.Observe(5)

	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	buckets := h.BucketCounts()
	if len(buckets) != 3 {
		t.Fatalf("got %d buckets, want 3", len(buckets))
	}
	if buckets[0] != 1 || buckets[1] != 1 || buckets[2] != 2 {
		t.Fatalf("buckets = %v, want [1 1 2]", buckets)
	}
	var total int64
	for _, b := range buckets {
		total += b
	}
	if total != h.Count() {
		t.Fatalf("bucket sum %d != count %d", total, h.Count())
	}
	if !math.IsNaN(h.Sum()) {
		t.Fatalf("Sum = %v, want NaN (absorbed the NaN observation)", h.Sum())
	}

	// The Prometheus rendering of this state must stay parseable: _bucket
	// lines cumulative, the sum spelled NaN, no panics on ±Inf.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`edge_seconds_bucket{le="1"} 1`,
		`edge_seconds_bucket{le="10"} 2`,
		`edge_seconds_bucket{le="+Inf"} 4`,
		"edge_seconds_sum NaN",
		"edge_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestInfGaugePrometheus(t *testing.T) {
	r := New()
	r.Gauge("pos").Set(math.Inf(1))
	r.Gauge("neg").Set(math.Inf(-1))
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "pos +Inf") || !strings.Contains(out, "neg -Inf") {
		t.Fatalf("gauge infinities mis-rendered:\n%s", out)
	}
}

func TestEmptyRegistryExports(t *testing.T) {
	r := New()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if sb.String() != "" {
		t.Fatalf("empty registry rendered %q", sb.String())
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Spans) != 0 {
		t.Fatalf("empty registry snapshot: %+v", snap)
	}
	// Nil registry: same story, no panics.
	var nilReg *Registry
	sb.Reset()
	if err := nilReg.WritePrometheus(&sb); err != nil || sb.String() != "" {
		t.Fatalf("nil registry: err=%v out=%q", err, sb.String())
	}
	if nilReg.ProgressLine() != "" {
		t.Fatal("nil registry progress line non-empty")
	}
}
