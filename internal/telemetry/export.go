package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// suitable for JSON serialization (the -metrics-out format).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// HistogramSnapshot is one histogram's state.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`  // bucket upper bounds
	Buckets []int64   `json:"buckets"` // per-bucket counts; one extra for +Inf
}

// SpanSnapshot is one span aggregate's state. Durations are seconds.
type SpanSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	LastSeconds  float64 `json:"last_seconds"`
}

// Snapshot copies every instrument's current state. Safe on a nil registry
// (returns an empty snapshot). Concurrent writers may land between two
// instrument reads; each individual value is atomically consistent.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	spans := make(map[string]*SpanStats, len(r.spans))
	for k, v := range r.spans {
		spans[k] = v
	}
	r.mu.Unlock()

	for name, c := range counts {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Bounds:  h.Bounds(),
			Buckets: h.BucketCounts(),
		}
	}
	for name, s := range spans {
		snap.Spans[name] = SpanSnapshot{
			Count:        s.Count(),
			TotalSeconds: s.Total().Seconds(),
			MinSeconds:   s.Min().Seconds(),
			MaxSeconds:   s.Max().Seconds(),
			LastSeconds:  s.Last().Seconds(),
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes every instrument in the Prometheus text exposition
// format (version 0.0.4). Histograms emit cumulative _bucket series plus
// _sum and _count; spans emit _seconds_count, _seconds_sum and min/max/last
// gauges. Instrument names are sanitized to the Prometheus charset.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[len(h.Buckets)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Spans {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := snap.Spans[name]
		n := promName(name)
		_, err := fmt.Fprintf(w,
			"# TYPE %s_seconds_count counter\n%s_seconds_count %d\n"+
				"# TYPE %s_seconds_sum counter\n%s_seconds_sum %s\n"+
				"# TYPE %s_seconds_min gauge\n%s_seconds_min %s\n"+
				"# TYPE %s_seconds_max gauge\n%s_seconds_max %s\n"+
				"# TYPE %s_seconds_last gauge\n%s_seconds_last %s\n",
			n, n, s.Count,
			n, n, promFloat(s.TotalSeconds),
			n, n, promFloat(s.MinSeconds),
			n, n, promFloat(s.MaxSeconds),
			n, n, promFloat(s.LastSeconds))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONFile writes the JSON snapshot to a file (the -metrics-out
// behavior of the CLIs).
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartHeartbeat writes "progress t=<elapsed> <counters>" to w every
// interval until the returned stop function is called (the -progress
// behavior of the CLIs). Stop is idempotent.
func (r *Registry) StartHeartbeat(w io.Writer, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		start := time.Now()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintf(w, "progress t=%v %s\n",
					time.Since(start).Round(time.Second), r.ProgressLine())
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// ProgressLine renders every counter as "name=value" pairs in name order —
// a compact heartbeat line for long runs. Empty string on a nil registry.
func (r *Registry) ProgressLine() string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, name+"="+strconv.FormatInt(snap.Counters[name], 10))
	}
	return strings.Join(parts, " ")
}

// promName maps an instrument name onto the Prometheus metric-name charset
// [a-zA-Z0-9_:], replacing anything else with '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trip representation; +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
