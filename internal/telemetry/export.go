package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Snapshot is a point-in-time copy of every instrument in a registry,
// suitable for JSON serialization (the -metrics-out format).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// HistogramSnapshot is one histogram's state.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`  // bucket upper bounds
	Buckets []int64   `json:"buckets"` // per-bucket counts; one extra for +Inf
}

// SpanSnapshot is one span aggregate's state. Durations are seconds.
type SpanSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	LastSeconds  float64 `json:"last_seconds"`
}

// Snapshot copies every instrument's current state. Safe on a nil registry
// (returns an empty snapshot). Concurrent writers may land between two
// instrument reads; each individual value is atomically consistent.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	spans := make(map[string]*SpanStats, len(r.spans))
	for k, v := range r.spans {
		spans[k] = v
	}
	r.mu.Unlock()

	for name, c := range counts {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Bounds:  h.Bounds(),
			Buckets: h.BucketCounts(),
		}
	}
	for name, s := range spans {
		snap.Spans[name] = SpanSnapshot{
			Count:        s.Count(),
			TotalSeconds: s.Total().Seconds(),
			MinSeconds:   s.Min().Seconds(),
			MaxSeconds:   s.Max().Seconds(),
			LastSeconds:  s.Last().Seconds(),
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes every instrument in the Prometheus text exposition
// format (version 0.0.4). Histograms emit cumulative _bucket series plus
// _sum and _count; spans emit _seconds_count, _seconds_sum and min/max/last
// gauges. Instrument names are sanitized to the Prometheus charset. Names
// built with WithLabel emit as labeled series of one shared base family —
// a single # TYPE line followed by one sample per label set — so
// per-district instruments aggregate the way dashboards expect.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	typed := map[string]bool{} // families that already got a # TYPE line
	writeType := func(family, kind string) error {
		if typed[family] {
			return nil
		}
		typed[family] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		return err
	}
	// series renders "name" or "name{labels}" for one sample line.
	series := func(base, labels string) string {
		if labels == "" {
			return base
		}
		return base + "{" + labels + "}"
	}

	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitLabels(name)
		n := promName(base)
		if err := writeType(n, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series(n, labels), snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, labels := splitLabels(name)
		n := promName(base)
		if err := writeType(n, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", series(n, labels), promFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		base, labels := splitLabels(name)
		n := promName(base)
		if err := writeType(n, "histogram"); err != nil {
			return err
		}
		bucket := func(bound string) string {
			if labels == "" {
				return fmt.Sprintf("%s_bucket{le=%q}", n, bound)
			}
			return fmt.Sprintf("%s_bucket{%s,le=%q}", n, labels, bound)
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s %d\n", bucket(promFloat(bound)), cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[len(h.Buckets)-1]
		if _, err := fmt.Fprintf(w, "%s %d\n", bucket("+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
			series(n+"_sum", labels), promFloat(h.Sum),
			series(n+"_count", labels), h.Count); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Spans {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := snap.Spans[name]
		base, labels := splitLabels(name)
		n := promName(base)
		for _, part := range []struct {
			suffix, kind, value string
		}{
			{"_seconds_count", "counter", strconv.FormatInt(s.Count, 10)},
			{"_seconds_sum", "counter", promFloat(s.TotalSeconds)},
			{"_seconds_min", "gauge", promFloat(s.MinSeconds)},
			{"_seconds_max", "gauge", promFloat(s.MaxSeconds)},
			{"_seconds_last", "gauge", promFloat(s.LastSeconds)},
		} {
			if err := writeType(n+part.suffix, part.kind); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", series(n+part.suffix, labels), part.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSONFile writes the JSON snapshot to a file (the -metrics-out
// behavior of the CLIs).
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartHeartbeat writes "progress t=<elapsed> <counters>" to w every
// interval until the returned stop function is called (the -progress
// behavior of the CLIs). Stop is idempotent.
func (r *Registry) StartHeartbeat(w io.Writer, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		start := time.Now()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintf(w, "progress t=%v %s\n",
					time.Since(start).Round(time.Second), r.ProgressLine())
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// ProgressLine renders every counter as "name=value" pairs in name order —
// a compact heartbeat line for long runs. Empty string on a nil registry.
func (r *Registry) ProgressLine() string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, name+"="+strconv.FormatInt(snap.Counters[name], 10))
	}
	return strings.Join(parts, " ")
}

// promName maps an instrument name onto the Prometheus metric-name charset
// [a-zA-Z0-9_:], replacing anything else with '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trip representation; +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
