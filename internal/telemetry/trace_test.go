package telemetry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseTraceID(t *testing.T) {
	id, ok := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok {
		t.Fatal("valid id rejected")
	}
	if got := id.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("round-trip = %q", got)
	}
	for _, bad := range []string{
		"",
		"4bf92f3577b34da6a3ce929d0e0e473",    // short
		"4bf92f3577b34da6a3ce929d0e0e47366",  // long
		"00000000000000000000000000000000",   // all-zero is invalid per spec
		"4bf92f3577b34da6a3ce929d0e0e473g",   // non-hex
		"4BF92F3577B34DA6A3CE929D0E0E4736x1", // wrong length with junk
	} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestParseTraceParent(t *testing.T) {
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	id, sampled, ok := ParseTraceParent("00-" + tid + "-00f067aa0ba902b7-01")
	if !ok || !sampled || id.String() != tid {
		t.Fatalf("sampled header: id=%s sampled=%v ok=%v", id, sampled, ok)
	}
	_, sampled, ok = ParseTraceParent("00-" + tid + "-00f067aa0ba902b7-00")
	if !ok || sampled {
		t.Fatalf("unsampled header: sampled=%v ok=%v", sampled, ok)
	}
	for _, bad := range []string{
		"",
		"00-" + tid + "-00f067aa0ba902b7",     // missing flags
		"ff-" + tid + "-00f067aa0ba902b7-01",  // reserved version
		"00-" + tid + "-00f067aa0ba902b7-01x", // version 00 must be exactly 55 chars
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00_" + tid + "-00f067aa0ba902b7-01",                      // bad separator
		"00-" + tid + "-00f067aa0ba902zz-01",                      // non-hex parent
		"00-" + tid + "-00f067aa0ba902b7-zz",                      // non-hex flags
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted", bad)
		}
	}
}

func TestMintTraceIDUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := MintTraceID()
		if id.IsZero() {
			t.Fatal("minted zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestSampleDeterministicAndBounded(t *testing.T) {
	id := MintTraceID()
	if id.Sample(1) != true || id.Sample(1.5) != true {
		t.Fatal("rate >= 1 must always sample")
	}
	if id.Sample(0) || id.Sample(-1) {
		t.Fatal("rate <= 0 must never sample")
	}
	// Pure function of (id, rate): repeated calls agree.
	for i := 0; i < 10; i++ {
		if id.Sample(0.5) != id.Sample(0.5) {
			t.Fatal("Sample is not deterministic")
		}
	}
	// The hash spreads: across many ids a mid rate selects some but not all.
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if MintTraceID().Sample(0.5) {
			hits++
		}
	}
	if hits == 0 || hits == n {
		t.Fatalf("Sample(0.5) hit %d/%d ids", hits, n)
	}
}

func TestNilTraceNoOps(t *testing.T) {
	var tr *Trace
	tr.SetJob("j")
	tr.Force()
	tr.Event(StageEnqueue)
	tr.EventValue(StageQueueWait, 1)
	tr.EventDetail(StageSolverRetry, 1, "warm")
	tr.Fail(errors.New("boom"))
	if tr.ID() != (TraceID{}) || tr.Job() != "" || tr.Forced() {
		t.Fatal("nil trace leaked state")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil trace snapshot non-nil")
	}
	if got := tr.Snapshot().String(); got != "<nil trace>" {
		t.Fatalf("nil snapshot String() = %q", got)
	}
}

func TestTraceTimelineMonotonic(t *testing.T) {
	tr := NewTrace(TraceID{})
	tr.SetJob("j-1")
	tr.Event(StageEnqueue)
	tr.EventValue(StageQueueWait, 0.001)
	time.Sleep(time.Millisecond)
	tr.EventDetail(StageSolverRetry, 0.5, "warm")
	tr.Fail(fmt.Errorf("solver gave up"))
	tr.Event(StageDone)

	snap := tr.Snapshot()
	if snap.TraceID != tr.ID().String() || snap.Job != "j-1" {
		t.Fatalf("snapshot header: %+v", snap)
	}
	if snap.Error != "solver gave up" {
		t.Fatalf("snapshot error = %q", snap.Error)
	}
	want := []string{"enqueue", "queue_wait", "solver_retry", "error", "done"}
	if len(snap.Events) != len(want) {
		t.Fatalf("got %d events, want %d: %s", len(snap.Events), len(want), snap)
	}
	prev := -1.0
	for i, e := range snap.Events {
		if e.Stage != want[i] {
			t.Fatalf("event %d stage = %q, want %q", i, e.Stage, want[i])
		}
		if e.AtSeconds < prev {
			t.Fatalf("timestamps went backwards at event %d: %s", i, snap)
		}
		prev = e.AtSeconds
	}
	if snap.DurationSeconds < prev {
		t.Fatalf("duration %.9f earlier than last event %.9f", snap.DurationSeconds, prev)
	}
	if !strings.Contains(snap.String(), "solver_retry") {
		t.Fatalf("String() missing stage: %s", snap)
	}
}

func TestTraceParentIDAdopted(t *testing.T) {
	id, _, _ := ParseTraceParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr := NewTrace(id)
	if tr.ID() != id {
		t.Fatalf("trace id %s, want %s", tr.ID(), id)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if got := ContextWithTrace(ctx, nil); got != ctx {
		t.Fatal("nil trace must not wrap the context")
	}
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context carried a trace")
	}
	if TraceFrom(nil) != nil { //nolint:staticcheck // nil ctx is the documented degenerate case
		t.Fatal("nil context carried a trace")
	}
	tr := NewTrace(TraceID{})
	if TraceFrom(ContextWithTrace(ctx, tr)) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
}

func TestSnapshotWhileWriting(t *testing.T) {
	tr := NewTrace(TraceID{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			tr.EventValue(StageQueueWait, float64(i))
		}
	}()
	for i := 0; i < 100; i++ {
		snap := tr.Snapshot()
		for j, e := range snap.Events {
			if e.Value != float64(j) {
				t.Fatalf("torn snapshot: event %d value %v", j, e.Value)
			}
		}
	}
	<-done
}
