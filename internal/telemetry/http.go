package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-global expvar registration ("telemetry"),
// which expvar forbids repeating.
var publishOnce sync.Once

// Handler returns the observability endpoint for this registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (the -metrics-out format)
//	/debug/vars    expvar (memstats, cmdline, and a live "telemetry" var)
//	/debug/pprof/  the full net/http/pprof suite (profile, heap, trace, …)
//
// The handler reads live instrument state on every request; it is safe to
// serve while the pipeline runs.
func (r *Registry) Handler() http.Handler {
	publishOnce.Do(func() {
		// Resolve through Default() at read time so the published var
		// follows Enable/Disable instead of pinning one registry.
		expvar.Publish("telemetry", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer binds addr (e.g. "localhost:6060"; port 0 picks a free one)
// and serves Handler in a background goroutine. It returns the server —
// close it to stop — and the bound address.
func (r *Registry) StartServer(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
