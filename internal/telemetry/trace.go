package telemetry

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit per-request identifier, wire-compatible with the
// W3C trace-context trace-id (32 lowercase hex characters).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses a 32-hex-character trace id. The all-zero id is
// invalid per the W3C spec and rejected.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseTraceParent extracts the trace id and sampled flag from a W3C
// traceparent header ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>"). ok is false for malformed headers, the reserved version ff,
// and the invalid all-zero trace id.
func ParseTraceParent(h string) (id TraceID, sampled bool, ok bool) {
	// version(2) '-' traceid(32) '-' parentid(16) '-' flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, false, false
	}
	version := h[:2]
	if version == "ff" {
		return TraceID{}, false, false
	}
	if version == "00" && len(h) != 55 {
		return TraceID{}, false, false
	}
	id, ok = ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, false, false
	}
	var parent [8]byte
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return TraceID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, false, false
	}
	return id, flags[0]&0x01 != 0, true
}

// traceSeq and tracePrefix implement cheap unique id minting: one
// process-wide random 8-byte prefix plus an atomic counter, so a mint is
// an atomic add instead of a syscall per request.
var (
	traceSeq       atomic.Uint64
	tracePrefix    [8]byte
	tracePrefixSet sync.Once
)

// MintTraceID returns a fresh process-unique trace id: 8 random prefix
// bytes (drawn once per process) followed by a big-endian sequence
// number. Minting never touches caller rng streams, preserving the
// project's determinism invariant.
func MintTraceID() TraceID {
	tracePrefixSet.Do(func() {
		if _, err := cryptorand.Read(tracePrefix[:]); err != nil {
			binary.BigEndian.PutUint64(tracePrefix[:], uint64(time.Now().UnixNano())|1)
		}
	})
	var id TraceID
	copy(id[:8], tracePrefix[:])
	binary.BigEndian.PutUint64(id[8:], traceSeq.Add(1))
	return id
}

// Sample is the head-based sampling decision for this id at the given
// rate in [0, 1]: an FNV-1a hash of the id against the rate threshold.
// The decision is a pure function of (id, rate) — deterministic,
// consistent across processes, and free of any rng stream consumption.
func (id TraceID) Sample(rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, b := range id {
		h ^= uint64(b)
		h *= 1099511628211
	}
	// FNV's high bits avalanche poorly for near-sequential inputs (minted
	// ids share a prefix and count upward), so finish with a murmur3-style
	// mix before taking the top 53 bits as a uniform in [0, 1).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11)/float64(1<<53) < rate
}

// Stage identifies one typed step of a request's journey through the
// pipeline. Stage names are part of the trace wire format (the
// /debug/requests JSON) and are pinned by the metric-name stability test.
type Stage string

// Trace stages, in rough pipeline order.
const (
	// StageEnqueue marks the job entering the bounded queue.
	StageEnqueue Stage = "enqueue"

	// StageQueueWait marks the dequeue; the event value is the queue
	// wait in seconds.
	StageQueueWait Stage = "queue_wait"

	// StageBaselineMemoHit / StageBaselineMemoMiss record the quiescent
	// baseline lookup on the readings-ingestion path; the value is the
	// pattern hour.
	StageBaselineMemoHit  Stage = "baseline_memo_hit"
	StageBaselineMemoMiss Stage = "baseline_memo_miss"

	// StageEvalCompiled / StageEvalPointer record which inference path
	// scored the observation: the flattened compiled snapshot or the
	// pointer-chasing model bank.
	StageEvalCompiled Stage = "eval_compiled"
	StageEvalPointer  Stage = "eval_pointer"

	// StageJunctionScatter records the in-place junction→node scatter of
	// the compiled path; the value is the junction count scattered.
	StageJunctionScatter Stage = "junction_scatter"

	// StageSolverRetry records one rung of the hydraulic retry ladder;
	// the value is the Newton relaxation factor of the re-attempt and the
	// detail distinguishes warm/cold restarts and injected failures.
	StageSolverRetry Stage = "solver_retry"

	// StageFaultDelay / StageFaultFail record fired request-level fault
	// injections (the value of a delay event is the delay in seconds).
	StageFaultDelay Stage = "fault_delay"
	StageFaultFail  Stage = "fault_fail"

	// StageBatchLead / StageBatchShare record observe micro-batching
	// provenance: the batch leader resolved the quiescent baseline once
	// (value = batch size, members included) and members reused the
	// leader's slice (value = the shared pattern hour).
	StageBatchLead  Stage = "batch_lead"
	StageBatchShare Stage = "batch_share"

	// StageError records a terminal failure; the detail is the error.
	StageError Stage = "error"

	// StageDone marks request completion (success or failure).
	StageDone Stage = "done"
)

// TraceEvent is one recorded stage of a trace. At is the offset from the
// trace's start on the monotonic clock, so event timestamps within one
// trace never go backwards even across wall-clock adjustments.
type TraceEvent struct {
	Stage  Stage         `json:"stage"`
	At     time.Duration `json:"-"`
	Value  float64       `json:"value,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// Trace is one request's append-only journey through the pipeline. A nil
// *Trace is the disabled/unsampled form: every method no-ops after a
// single nil check, so hot paths carry traces unconditionally and pay
// nothing when tracing is off.
//
// A Trace is written by whichever goroutine currently owns the request
// (handler, then worker — sequenced by the job queue) and may be
// snapshotted concurrently by debug endpoints, so appends and reads are
// mutex-guarded. Completed traces are published to a Recorder as
// immutable snapshots.
type Trace struct {
	id    TraceID
	start time.Time

	mu     sync.Mutex
	job    string
	forced bool
	events []TraceEvent
	errMsg string
}

// NewTrace starts a trace with the given id (a zero id mints a fresh
// one). The trace's clock starts now.
func NewTrace(id TraceID) *Trace {
	if id.IsZero() {
		id = MintTraceID()
	}
	return &Trace{id: id, start: time.Now(), events: make([]TraceEvent, 0, 8)}
}

// ID returns the trace id (zero on a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// SetJob associates the trace with a job id.
func (t *Trace) SetJob(job string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.job = job
	t.mu.Unlock()
}

// Job returns the associated job id ("" on a nil trace).
func (t *Trace) Job() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.job
}

// Force marks the trace for unconditional capture regardless of the
// head-sampling decision (used for the W3C sampled flag and by tests).
func (t *Trace) Force() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.forced = true
	t.mu.Unlock()
}

// Forced reports whether capture was forced.
func (t *Trace) Forced() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.forced
}

// Event appends a stage event stamped with the monotonic offset from the
// trace's start.
func (t *Trace) Event(stage Stage) { t.append(stage, 0, "") }

// EventValue is Event with a numeric payload (a duration, an hour, a
// relaxation factor — stage-dependent).
func (t *Trace) EventValue(stage Stage, value float64) { t.append(stage, value, "") }

// EventDetail is Event with both a numeric and a short string payload.
func (t *Trace) EventDetail(stage Stage, value float64, detail string) {
	t.append(stage, value, detail)
}

func (t *Trace) append(stage Stage, value float64, detail string) {
	if t == nil {
		return
	}
	at := time.Since(t.start)
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{Stage: stage, At: at, Value: value, Detail: detail})
	t.mu.Unlock()
}

// Fail records the terminal error as both an error event and the trace's
// error field.
func (t *Trace) Fail(err error) {
	if t == nil || err == nil {
		return
	}
	at := time.Since(t.start)
	msg := err.Error()
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{Stage: StageError, At: at, Detail: msg})
	t.errMsg = msg
	t.mu.Unlock()
}

// Snapshot copies the trace into an immutable wire form. Safe to call
// while the trace is still being written (the snapshot covers everything
// appended so far); returns nil on a nil trace.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	dur := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	events := make([]TraceEventSnapshot, len(t.events))
	for i, e := range t.events {
		events[i] = TraceEventSnapshot{
			Stage:     string(e.Stage),
			AtSeconds: e.At.Seconds(),
			Value:     e.Value,
			Detail:    e.Detail,
		}
	}
	return &TraceSnapshot{
		TraceID:         t.id.String(),
		Job:             t.job,
		Start:           t.start,
		DurationSeconds: dur.Seconds(),
		Error:           t.errMsg,
		Events:          events,
	}
}

// TraceSnapshot is the immutable JSON wire form of a completed (or
// in-flight) trace, served by GET /debug/requests and GET /v1/trace/{job}.
type TraceSnapshot struct {
	TraceID         string               `json:"trace_id"`
	Job             string               `json:"job,omitempty"`
	Start           time.Time            `json:"start"`
	DurationSeconds float64              `json:"duration_seconds"`
	Error           string               `json:"error,omitempty"`
	Events          []TraceEventSnapshot `json:"events"`
}

// TraceEventSnapshot is one stage event on the wire. AtSeconds is the
// monotonic offset from the trace start.
type TraceEventSnapshot struct {
	Stage     string  `json:"stage"`
	AtSeconds float64 `json:"at_seconds"`
	Value     float64 `json:"value,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// String renders a compact one-line timeline, handy in test failures and
// log messages.
func (s *TraceSnapshot) String() string {
	if s == nil {
		return "<nil trace>"
	}
	out := fmt.Sprintf("trace %s job=%s %.6fs", s.TraceID, s.Job, s.DurationSeconds)
	for _, e := range s.Events {
		out += fmt.Sprintf(" [%s@%.6fs]", e.Stage, e.AtSeconds)
	}
	return out
}

// traceKey is the context key trace propagation rides on.
type traceKey struct{}

// ContextWithTrace returns ctx carrying tr. A nil trace returns ctx
// unchanged, so untraced requests never allocate a context wrapper.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom extracts the trace carried by ctx, or nil. The nil result is
// directly usable: every Trace method no-ops on a nil receiver.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
