package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func snapFor(job string) *TraceSnapshot {
	tr := NewTrace(TraceID{})
	tr.SetJob(job)
	tr.Event(StageDone)
	return tr.Snapshot()
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Put(snapFor("j"))
	if r.Cap() != 0 || r.Len() != 0 || r.Recent(5) != nil || r.Find("j") != nil {
		t.Fatal("nil recorder leaked state")
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	r := NewRecorder(0)
	if r.Cap() != 1 {
		t.Fatalf("Cap() = %d, want 1", r.Cap())
	}
}

func TestRecorderNewestFirstAndOverwrite(t *testing.T) {
	r := NewRecorder(3)
	if r.Len() != 0 {
		t.Fatalf("fresh Len() = %d", r.Len())
	}
	r.Put(nil) // ignored
	for i := 1; i <= 5; i++ {
		r.Put(snapFor(fmt.Sprintf("j-%d", i)))
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	got := r.Recent(0)
	want := []string{"j-5", "j-4", "j-3"}
	if len(got) != len(want) {
		t.Fatalf("Recent(0) returned %d traces", len(got))
	}
	for i, s := range got {
		if s.Job != want[i] {
			t.Fatalf("Recent[%d].Job = %q, want %q", i, s.Job, want[i])
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].Job != "j-5" {
		t.Fatalf("Recent(2) = %v", got)
	}
	if r.Find("j-1") != nil {
		t.Fatal("overwritten trace still findable")
	}
	if s := r.Find("j-4"); s == nil || s.Job != "j-4" {
		t.Fatalf("Find(j-4) = %v", s)
	}
	if r.Find("") != nil {
		t.Fatal("empty job matched")
	}
}

func TestRecorderFindNewestDuplicate(t *testing.T) {
	r := NewRecorder(4)
	old := snapFor("dup")
	newer := snapFor("dup")
	r.Put(old)
	r.Put(newer)
	if got := r.Find("dup"); got != newer {
		t.Fatal("Find returned the older duplicate")
	}
}

// TestRecorderConcurrent hammers Put from many goroutines while readers
// call Recent/Find/Len — the lock-free ring must stay torn-free under
// the race detector.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(8)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Put(snapFor(fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range r.Recent(0) {
					if s == nil || s.Job == "" {
						t.Error("torn snapshot read")
						return
					}
				}
				_ = r.Len()
				_ = r.Find("w0-0")
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if r.Len() != 8 {
		t.Fatalf("Len() = %d, want full ring", r.Len())
	}
	// Exactly the last 8 published sequence numbers survive.
	if got := len(r.Recent(0)); got != 8 {
		t.Fatalf("Recent(0) = %d traces, want 8", got)
	}
}
