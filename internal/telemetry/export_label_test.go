package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestWithLabelNames pins the label-mangling scheme fleet serving keys
// its per-district instruments on: WithLabel folds a label pair into the
// registry name, splitLabels recovers it at export time, and unsafe
// label values are sanitized rather than escaped.
func TestWithLabelNames(t *testing.T) {
	cases := []struct {
		name, key, value, want string
	}{
		{"serve_jobs_done_total", "district", "north", `serve_jobs_done_total{district="north"}`},
		{"serve_jobs_done_total", "district", "", "serve_jobs_done_total"},
		{"x_total", "district", `we"ird id`, `x_total{district="we_ird_id"}`},
	}
	for _, c := range cases {
		if got := WithLabel(c.name, c.key, c.value); got != c.want {
			t.Errorf("WithLabel(%q, %q, %q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
	base, labels := splitLabels(`serve_jobs_done_total{district="north"}`)
	if base != "serve_jobs_done_total" || labels != `district="north"` {
		t.Fatalf("splitLabels = (%q, %q)", base, labels)
	}
	if base, labels := splitLabels("plain_total"); base != "plain_total" || labels != "" {
		t.Fatalf("splitLabels(plain) = (%q, %q)", base, labels)
	}
}

// TestWritePrometheusLabeled pins labeled emission: WithLabel-named
// instruments export as proper labeled series — one # TYPE line per
// family across districts, labels merged with le on histogram buckets,
// and every span sub-series labeled.
func TestWritePrometheusLabeled(t *testing.T) {
	r := New()
	r.Counter(WithLabel("serve_jobs_done_total", "district", "north")).Add(2)
	r.Counter(WithLabel("serve_jobs_done_total", "district", "south")).Add(5)
	r.Gauge(WithLabel("serve_queue_depth", "district", "north")).Set(3)
	h := r.Histogram(WithLabel("serve_request_seconds", "district", "north"), []float64{1, 2})
	h.Observe(0.5)
	h.Observe(9)
	r.StartSpan(WithLabel("serve_flat_eval", "district", "north")).End()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"serve_jobs_done_total{district=\"north\"} 2\n",
		"serve_jobs_done_total{district=\"south\"} 5\n",
		"serve_queue_depth{district=\"north\"} 3\n",
		"serve_request_seconds_bucket{district=\"north\",le=\"1\"} 1\n",
		"serve_request_seconds_bucket{district=\"north\",le=\"+Inf\"} 2\n",
		"serve_request_seconds_sum{district=\"north\"} 9.5\n",
		"serve_request_seconds_count{district=\"north\"} 2\n",
		"serve_flat_eval_seconds_count{district=\"north\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with two districts on it, and no
	// mangled name leaking through as a literal series name.
	if n := strings.Count(out, "# TYPE serve_jobs_done_total counter"); n != 1 {
		t.Fatalf("serve_jobs_done_total TYPE lines = %d, want 1:\n%s", n, out)
	}
	if strings.Contains(out, `_total_district_`) || strings.Contains(out, `__`) {
		t.Fatalf("mangled label name leaked into output:\n%s", out)
	}
}
