package telemetry

import (
	"io"
	"log/slog"
)

// NewLogger builds the project's structured logger: log/slog with a JSON
// handler, one object per line, durations in seconds, levels from level
// up. Components attach a trace id with TraceAttr so log lines correlate
// with flight-recorder entries.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewTextLogger is NewLogger with the human-readable key=value handler,
// for interactive runs where JSON lines are noise.
func NewTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// TraceAttr renders a trace id as the canonical "trace_id" attribute
// (empty ids render as the empty string so lines stay greppable).
func TraceAttr(id TraceID) slog.Attr {
	if id.IsZero() {
		return slog.String("trace_id", "")
	}
	return slog.String("trace_id", id.String())
}
