package weather

import (
	"math/rand"
	"testing"
	"time"
)

func TestGenerateMarkovSeriesBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := GenerateMarkovSeries(MarkovConfig{}, rng)
	if err != nil {
		t.Fatalf("GenerateMarkovSeries: %v", err)
	}
	wantSteps := 7*24 + 1
	if len(m.TempF) != wantSteps || len(m.Regimes) != wantSteps {
		t.Fatalf("steps = %d/%d, want %d", len(m.TempF), len(m.Regimes), wantSteps)
	}
	for k, r := range m.Regimes {
		if r != Mild && r != ColdSnap {
			t.Fatalf("invalid regime %v at step %d", r, k)
		}
	}
}

func TestGenerateMarkovSeriesValidation(t *testing.T) {
	if _, err := GenerateMarkovSeries(MarkovConfig{}, nil); err == nil {
		t.Fatal("nil rng should error")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateMarkovSeries(MarkovConfig{PEnterSnap: 1.5}, rng); err == nil {
		t.Fatal("invalid transition probability should error")
	}
}

func TestMarkovSnapsAreColdAndPersistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := GenerateMarkovSeries(MarkovConfig{
		Duration:   60 * 24 * time.Hour, // two months for stable statistics
		PEnterSnap: 0.02,
		PExitSnap:  0.04,
	}, rng)
	if err != nil {
		t.Fatalf("GenerateMarkovSeries: %v", err)
	}
	frac := m.SnapFraction()
	// Stationary fraction ≈ pEnter/(pEnter+pExit) = 1/3.
	if frac < 0.15 || frac > 0.55 {
		t.Fatalf("snap fraction = %v, want near 1/3", frac)
	}
	// Snap samples are colder on average than mild samples.
	var snapSum, mildSum float64
	var snapN, mildN int
	for k, r := range m.Regimes {
		if r == ColdSnap {
			snapSum += m.TempF[k]
			snapN++
		} else {
			mildSum += m.TempF[k]
			mildN++
		}
	}
	if snapN == 0 || mildN == 0 {
		t.Fatal("expected both regimes to occur over two months")
	}
	if snapSum/float64(snapN) >= mildSum/float64(mildN)-8 {
		t.Fatalf("snap mean %v not clearly colder than mild mean %v",
			snapSum/float64(snapN), mildSum/float64(mildN))
	}
	// Persistence: transitions should be far fewer than a coin-flip chain.
	transitions := 0
	for k := 1; k < len(m.Regimes); k++ {
		if m.Regimes[k] != m.Regimes[k-1] {
			transitions++
		}
	}
	if transitions > len(m.Regimes)/5 {
		t.Fatalf("regimes not persistent: %d transitions over %d steps", transitions, len(m.Regimes))
	}
	// Snaps reach the freeze-risk regime.
	sawFreeze := false
	for k, r := range m.Regimes {
		if r == ColdSnap && Freezing(m.TempF[k]) {
			sawFreeze = true
			break
		}
	}
	if !sawFreeze {
		t.Fatal("no cold-snap sample reached the freeze threshold")
	}
}

func TestRegimeString(t *testing.T) {
	if Mild.String() != "mild" || ColdSnap.String() != "cold-snap" {
		t.Fatal("regime names wrong")
	}
	if Regime(99).String() == "" {
		t.Fatal("unknown regime should stringify")
	}
}
