package weather

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// The paper's Sec. III-C closes with "Markov chain will be studied for the
// modeling of weather information in the future." This file implements
// that extension: a two-state (mild/cold-snap) Markov regime model whose
// emissions drive the temperature series, capturing the multi-day
// persistence of cold spells that the plain sinusoid-plus-noise model
// lacks.

// Regime is a weather state of the Markov model.
type Regime int

// Weather regimes.
const (
	Mild Regime = iota + 1
	ColdSnap
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case Mild:
		return "mild"
	case ColdSnap:
		return "cold-snap"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// MarkovConfig parameterizes the regime-switching weather model.
type MarkovConfig struct {
	// Step between samples. Zero means 1 hour.
	Step time.Duration

	// Duration of the series. Zero means 7 days.
	Duration time.Duration

	// MildMeanF and SnapMeanF are the regime temperature means (°F).
	// Zeros mean 38 and 14 (a mid-Atlantic winter and a polar outbreak).
	MildMeanF float64
	SnapMeanF float64

	// DiurnalAmpF is the day/night swing (°F). Zero means 8.
	DiurnalAmpF float64

	// NoiseStdF is Gaussian weather noise (°F). Zero means 1.5.
	NoiseStdF float64

	// PEnterSnap is the per-step probability of Mild → ColdSnap.
	// Zero means 0.01 (about one snap per 4 days at 1-hour steps).
	PEnterSnap float64

	// PExitSnap is the per-step probability of ColdSnap → Mild.
	// Zero means 0.03 (snaps last ~33 hours on average).
	PExitSnap float64
}

func (c MarkovConfig) withDefaults() MarkovConfig {
	if c.Step <= 0 {
		c.Step = time.Hour
	}
	if c.Duration <= 0 {
		c.Duration = 7 * 24 * time.Hour
	}
	if c.MildMeanF == 0 {
		c.MildMeanF = 38
	}
	if c.SnapMeanF == 0 {
		c.SnapMeanF = 14
	}
	if c.DiurnalAmpF == 0 {
		c.DiurnalAmpF = 8
	}
	if c.NoiseStdF == 0 {
		c.NoiseStdF = 1.5
	}
	if c.PEnterSnap <= 0 {
		c.PEnterSnap = 0.01
	}
	if c.PExitSnap <= 0 {
		c.PExitSnap = 0.03
	}
	return c
}

// MarkovSeries is a temperature series with its hidden regime path.
type MarkovSeries struct {
	Series
	Regimes []Regime
}

// SnapFraction returns the fraction of samples spent in the cold-snap
// regime.
func (m *MarkovSeries) SnapFraction() float64 {
	if len(m.Regimes) == 0 {
		return 0
	}
	count := 0
	for _, r := range m.Regimes {
		if r == ColdSnap {
			count++
		}
	}
	return float64(count) / float64(len(m.Regimes))
}

// GenerateMarkovSeries synthesizes a regime-switching temperature series:
// the hidden state follows a two-state Markov chain; each sample's
// temperature is the regime mean plus the diurnal cycle and noise. The
// regime mean blends over a few steps at transitions so snaps set in over
// hours, not instantaneously.
func GenerateMarkovSeries(cfg MarkovConfig, rng *rand.Rand) (*MarkovSeries, error) {
	cfg = cfg.withDefaults()
	if rng == nil {
		return nil, fmt.Errorf("weather: nil rng")
	}
	if cfg.PEnterSnap >= 1 || cfg.PExitSnap >= 1 {
		return nil, fmt.Errorf("weather: transition probabilities must be below 1")
	}
	steps := int(cfg.Duration/cfg.Step) + 1
	out := &MarkovSeries{
		Series:  Series{Step: cfg.Step, TempF: make([]float64, steps)},
		Regimes: make([]Regime, steps),
	}
	state := Mild
	level := cfg.MildMeanF // smoothed regime mean
	const blend = 0.25     // per-step approach toward the regime mean
	for k := 0; k < steps; k++ {
		// Transition.
		switch state {
		case Mild:
			if rng.Float64() < cfg.PEnterSnap {
				state = ColdSnap
			}
		case ColdSnap:
			if rng.Float64() < cfg.PExitSnap {
				state = Mild
			}
		}
		target := cfg.MildMeanF
		if state == ColdSnap {
			target = cfg.SnapMeanF
		}
		level += blend * (target - level)

		t := time.Duration(k) * cfg.Step
		hours := t.Hours()
		diurnal := cfg.DiurnalAmpF * cosDiurnal(hours)
		out.TempF[k] = level + diurnal + rng.NormFloat64()*cfg.NoiseStdF
		out.Regimes[k] = state
	}
	return out, nil
}

// cosDiurnal peaks at 17:00 and bottoms at 05:00 like GenerateSeries.
func cosDiurnal(hours float64) float64 {
	return math.Cos(2 * math.Pi * (hours - 17) / 24)
}
