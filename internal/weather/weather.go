// Package weather models the environmental information source: ambient
// temperature series (the NOAA-report substitute), the freeze→burst pipe
// failure model, and the cold-weather break-rate relationship behind the
// paper's Fig. 3.
//
// The paper's model: when ambient temperature falls to 20 °F or below, a
// pipe may freeze with probability p(freeze); a frozen pipe then leaks with
// probability p(leak|freeze) because continued freezing and expansion
// raises internal pressure until the pipe cracks. The paper sets
// p(freeze) = 0.8 and p(leak|freeze) = 0.9 uniformly.
package weather

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale/internal/stats"
)

// FreezeThresholdF is the paper's freezing-risk temperature (°F).
const FreezeThresholdF = 20.0

// SeriesConfig configures synthetic ambient-temperature generation.
type SeriesConfig struct {
	// Step between samples. Zero means 15 minutes (the IoT period).
	Step time.Duration

	// Duration of the series. Zero means 24 hours.
	Duration time.Duration

	// MeanF is the mean temperature (°F). Zero means 35 — a cold-season
	// mid-Atlantic default (the paper's Jan–Apr 2016 window).
	MeanF float64

	// DiurnalAmpF is the day/night swing amplitude (°F). Zero means 8.
	DiurnalAmpF float64

	// NoiseStdF is Gaussian weather noise (°F). Zero means 1.5.
	NoiseStdF float64

	// ColdSnap forces a cold spell: temperature is depressed by
	// ColdSnapDropF between ColdSnapStart and ColdSnapEnd.
	ColdSnapStart time.Duration
	ColdSnapEnd   time.Duration
	ColdSnapDropF float64
}

func (c SeriesConfig) withDefaults() SeriesConfig {
	if c.Step <= 0 {
		c.Step = 15 * time.Minute
	}
	if c.Duration <= 0 {
		c.Duration = 24 * time.Hour
	}
	if c.MeanF == 0 {
		c.MeanF = 35
	}
	if c.DiurnalAmpF == 0 {
		c.DiurnalAmpF = 8
	}
	if c.NoiseStdF == 0 {
		c.NoiseStdF = 1.5
	}
	return c
}

// Series is a sampled ambient temperature record (°F).
type Series struct {
	Step  time.Duration
	TempF []float64
}

// GenerateSeries synthesizes a temperature series: diurnal sinusoid around
// the mean, Gaussian noise, and an optional cold-snap depression window.
func GenerateSeries(cfg SeriesConfig, rng *rand.Rand) (*Series, error) {
	cfg = cfg.withDefaults()
	if rng == nil {
		return nil, fmt.Errorf("weather: nil rng")
	}
	steps := int(cfg.Duration/cfg.Step) + 1
	s := &Series{Step: cfg.Step, TempF: make([]float64, steps)}
	for k := 0; k < steps; k++ {
		t := time.Duration(k) * cfg.Step
		hours := t.Hours()
		// Coldest around 05:00, warmest around 17:00.
		diurnal := cfg.DiurnalAmpF * math.Cos(2*math.Pi*(hours-17)/24)
		v := cfg.MeanF + diurnal + rng.NormFloat64()*cfg.NoiseStdF
		if cfg.ColdSnapDropF > 0 && t >= cfg.ColdSnapStart && t <= cfg.ColdSnapEnd {
			v -= cfg.ColdSnapDropF
		}
		s.TempF[k] = v
	}
	return s, nil
}

// At returns the temperature at elapsed time t (nearest earlier sample,
// clamped to the series range).
func (s *Series) At(t time.Duration) float64 {
	if len(s.TempF) == 0 {
		return math.NaN()
	}
	k := int(t / s.Step)
	if k < 0 {
		k = 0
	}
	if k >= len(s.TempF) {
		k = len(s.TempF) - 1
	}
	return s.TempF[k]
}

// Duration returns the time span covered by the series.
func (s *Series) Duration() time.Duration {
	if len(s.TempF) == 0 {
		return 0
	}
	return time.Duration(len(s.TempF)-1) * s.Step
}

// FreezeModel holds the paper's freeze probabilities.
type FreezeModel struct {
	// PFreeze is p_v(freeze): probability a pipe is frozen given the
	// temperature is at or below FreezeThresholdF. Paper value 0.8.
	PFreeze float64

	// PLeakGivenFreeze is p_v(leak|freeze). Paper value 0.9.
	PLeakGivenFreeze float64
}

// DefaultFreezeModel uses the paper's parameters.
var DefaultFreezeModel = FreezeModel{PFreeze: 0.8, PLeakGivenFreeze: 0.9}

// Freezing reports whether the temperature is in the freeze-risk regime.
func Freezing(tempF float64) bool { return tempF <= FreezeThresholdF }

// SampleFrozen draws whether a given pipe is frozen at this temperature
// (the paper's per-simulation-run uniform draw against p(freeze)).
func (m FreezeModel) SampleFrozen(tempF float64, rng *rand.Rand) bool {
	if !Freezing(tempF) {
		return false
	}
	return rng.Float64() < m.PFreeze
}

// FuseLeakEvidence updates an IoT-predicted leak probability with freeze
// evidence by Bayesian odds aggregation — Algorithm 2 lines 7–11: the
// posterior odds are the product of the IoT odds and the freeze-leak odds.
func (m FreezeModel) FuseLeakEvidence(pLeakIoT float64) float64 {
	return stats.FuseOdds(pLeakIoT, m.PLeakGivenFreeze)
}

// BreakRateModel regenerates the Fig-3 relationship between ambient
// temperature and observed pipe breaks per day: a baseline break rate that
// amplifies exponentially as temperature falls below the reference.
type BreakRateModel struct {
	// BasePerDay is the warm-weather break rate. Zero means 1.2 breaks/day
	// (the WSSC service-area scale).
	BasePerDay float64

	// ReferenceF is the temperature below which breaks accelerate.
	// Zero means 45 °F.
	ReferenceF float64

	// AmplificationPerDeg is the exponential growth per °F below the
	// reference. Zero means 0.045 (≈ 3.8× at 15 °F below freezing).
	AmplificationPerDeg float64
}

func (m BreakRateModel) withDefaults() BreakRateModel {
	if m.BasePerDay <= 0 {
		m.BasePerDay = 1.2
	}
	if m.ReferenceF == 0 {
		m.ReferenceF = 45
	}
	if m.AmplificationPerDeg <= 0 {
		m.AmplificationPerDeg = 0.045
	}
	return m
}

// Rate returns the expected breaks/day at the given temperature.
func (m BreakRateModel) Rate(tempF float64) float64 {
	m = m.withDefaults()
	cold := m.ReferenceF - tempF
	if cold < 0 {
		cold = 0
	}
	return m.BasePerDay * math.Exp(m.AmplificationPerDeg*cold)
}

// SampleDailyBreaks draws the day's break count from a Poisson with the
// temperature-dependent rate.
func (m BreakRateModel) SampleDailyBreaks(tempF float64, rng *rand.Rand) int {
	return stats.SamplePoisson(m.Rate(tempF), rng)
}
