package weather

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestGenerateSeriesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := GenerateSeries(SeriesConfig{Duration: 24 * time.Hour, Step: 15 * time.Minute}, rng)
	if err != nil {
		t.Fatalf("GenerateSeries: %v", err)
	}
	if len(s.TempF) != 97 {
		t.Fatalf("samples = %d, want 97", len(s.TempF))
	}
	if s.Duration() != 24*time.Hour {
		t.Fatalf("Duration = %v", s.Duration())
	}
	// Afternoon should be warmer than pre-dawn (diurnal cycle).
	if s.At(17*time.Hour) <= s.At(5*time.Hour) {
		t.Fatalf("no diurnal cycle: 17h=%v, 5h=%v", s.At(17*time.Hour), s.At(5*time.Hour))
	}
}

func TestGenerateSeriesColdSnap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := GenerateSeries(SeriesConfig{
		Duration:      24 * time.Hour,
		MeanF:         30,
		ColdSnapStart: 6 * time.Hour,
		ColdSnapEnd:   12 * time.Hour,
		ColdSnapDropF: 25,
	}, rng)
	if err != nil {
		t.Fatalf("GenerateSeries: %v", err)
	}
	inSnap := s.At(9 * time.Hour)
	outSnap := s.At(20 * time.Hour)
	if inSnap >= outSnap-10 {
		t.Fatalf("cold snap not visible: in=%v out=%v", inSnap, outSnap)
	}
	if !Freezing(inSnap) {
		t.Fatalf("snap temperature %v should be in freeze regime", inSnap)
	}
}

func TestGenerateSeriesNilRNG(t *testing.T) {
	if _, err := GenerateSeries(SeriesConfig{}, nil); err == nil {
		t.Fatal("nil rng should error")
	}
}

func TestSeriesAtClamps(t *testing.T) {
	s := &Series{Step: time.Hour, TempF: []float64{10, 20, 30}}
	if s.At(-time.Hour) != 10 {
		t.Fatal("negative time should clamp to first sample")
	}
	if s.At(100*time.Hour) != 30 {
		t.Fatal("overlong time should clamp to last sample")
	}
	if s.At(time.Hour) != 20 {
		t.Fatal("exact sample lookup failed")
	}
	empty := &Series{Step: time.Hour}
	if !math.IsNaN(empty.At(0)) {
		t.Fatal("empty series should return NaN")
	}
	if empty.Duration() != 0 {
		t.Fatal("empty series duration should be 0")
	}
}

func TestFreezing(t *testing.T) {
	if Freezing(25) {
		t.Fatal("25°F should not be freeze-risk")
	}
	if !Freezing(20) || !Freezing(-5) {
		t.Fatal("≤20°F should be freeze-risk")
	}
}

func TestSampleFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := DefaultFreezeModel
	// Warm: never frozen.
	for i := 0; i < 100; i++ {
		if m.SampleFrozen(40, rng) {
			t.Fatal("frozen above threshold")
		}
	}
	// Cold: frequency ≈ 0.8.
	count := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if m.SampleFrozen(10, rng) {
			count++
		}
	}
	freq := float64(count) / trials
	if math.Abs(freq-0.8) > 0.02 {
		t.Fatalf("freeze frequency = %v, want ~0.8", freq)
	}
}

func TestFuseLeakEvidence(t *testing.T) {
	m := DefaultFreezeModel
	// Paper Algorithm 2 line 8: q* = (p/(1−p))·(0.9/0.1); p* = q*/(1+q*).
	p := 0.4
	q := (p / (1 - p)) * (0.9 / 0.1)
	want := q / (1 + q)
	if got := m.FuseLeakEvidence(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("fused = %v, want %v", got, want)
	}
	// Freeze evidence should raise any non-degenerate probability.
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		if got := m.FuseLeakEvidence(p); got <= p {
			t.Fatalf("fusing freeze evidence lowered %v to %v", p, got)
		}
	}
}

func TestBreakRateModel(t *testing.T) {
	var m BreakRateModel // defaults
	warm := m.Rate(70)
	mild := m.Rate(45)
	cold := m.Rate(15)
	if warm != mild {
		t.Fatalf("rates above reference should equal base: %v vs %v", warm, mild)
	}
	if cold <= 2*warm {
		t.Fatalf("cold rate %v should be well above warm rate %v", cold, warm)
	}
	// The Fig-3 shape: monotone non-increasing in temperature.
	prev := math.Inf(1)
	for f := -10.0; f <= 80; f += 5 {
		r := m.Rate(f)
		if r > prev+1e-12 {
			t.Fatalf("rate increased with temperature at %v°F", f)
		}
		prev = r
	}
}

func TestSampleDailyBreaksMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var m BreakRateModel
	const trials = 8000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += m.SampleDailyBreaks(10, rng)
	}
	mean := float64(sum) / trials
	want := m.Rate(10)
	if math.Abs(mean-want) > 0.1*want {
		t.Fatalf("sampled mean %v, want ~%v", mean, want)
	}
}
