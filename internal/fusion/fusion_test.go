package fusion

import (
	"math"
	"testing"

	"github.com/aquascale/aquascale/internal/social"
	"github.com/aquascale/aquascale/internal/stats"
	"github.com/aquascale/aquascale/internal/weather"
)

func TestPredictionSet(t *testing.T) {
	p := NewPrediction([]float64{0.1, 0.9, 0.5, 0.7})
	set := p.Set()
	want := []int{0, 1, 0, 1} // 0.5 is not > 0.5
	for i := range want {
		if set[i] != want[i] {
			t.Fatalf("Set = %v, want %v", set, want)
		}
	}
	nodes := p.LeakNodes()
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 3 {
		t.Fatalf("LeakNodes = %v", nodes)
	}
}

func TestNewPredictionCopies(t *testing.T) {
	src := []float64{0.2, 0.8}
	p := NewPrediction(src)
	p.Proba[0] = 0.99
	if src[0] != 0.2 {
		t.Fatal("NewPrediction aliases input")
	}
}

func TestEntropyAndEnergy(t *testing.T) {
	p := NewPrediction([]float64{0.5, 1.0, 0.0})
	if math.Abs(p.Entropy(0)-math.Ln2) > 1e-12 {
		t.Fatalf("Entropy(0) = %v", p.Entropy(0))
	}
	if p.Entropy(1) != 0 || p.Entropy(2) != 0 {
		t.Fatal("degenerate entropies should be 0")
	}
	if math.Abs(p.TotalEntropy()-math.Ln2) > 1e-12 {
		t.Fatalf("TotalEntropy = %v", p.TotalEntropy())
	}
	// No cliques: energy equals total entropy.
	if p.Energy(nil, 0) != p.TotalEntropy() {
		t.Fatal("energy without cliques should equal entropy")
	}
}

func TestPotential(t *testing.T) {
	p := NewPrediction([]float64{0.9, 0.3, 0.3})
	// Clique containing a predicted-leak node: zero potential.
	cSat := social.Clique{Nodes: []int{0, 1}}
	if p.Potential(cSat, 0) != 0 {
		t.Fatal("satisfied clique should have zero potential")
	}
	// Clique with only uncertain non-leak nodes: infinite potential at Γ=0.
	cBad := social.Clique{Nodes: []int{1, 2}}
	if !math.IsInf(p.Potential(cBad, 0), 1) {
		t.Fatal("inconsistent clique should have infinite potential")
	}
	// High Γ: determinate-enough predictions suppress the clique.
	gamma := stats.BinaryEntropy(0.3) + 0.01
	if p.Potential(cBad, gamma) != 0 {
		t.Fatal("below-threshold entropies should zero the potential")
	}
	// Degenerate probabilities (entropy exactly 0) never trigger Inf.
	pDet := NewPrediction([]float64{0.0, 0.0})
	if v := pDet.Potential(social.Clique{Nodes: []int{0, 1}}, 0); v != 0 {
		t.Fatalf("deterministic non-leak clique potential = %v, want 0", v)
	}
}

func TestApplyFreezeEvidence(t *testing.T) {
	e := NewEngine(Config{})
	p := NewPrediction([]float64{0.3, 0.3, 0.3})
	frozen := []bool{true, false, true}
	n, err := e.ApplyFreezeEvidence(p, frozen)
	if err != nil {
		t.Fatalf("ApplyFreezeEvidence: %v", err)
	}
	if n != 2 {
		t.Fatalf("updated = %d, want 2", n)
	}
	want := weather.DefaultFreezeModel.FuseLeakEvidence(0.3)
	if math.Abs(p.Proba[0]-want) > 1e-12 || math.Abs(p.Proba[2]-want) > 1e-12 {
		t.Fatalf("fused probs = %v, want %v", p.Proba, want)
	}
	if p.Proba[1] != 0.3 {
		t.Fatal("unfrozen node should be untouched")
	}
	if _, err := e.ApplyFreezeEvidence(p, []bool{true}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestApplyCliquesForcesHighestEntropy(t *testing.T) {
	e := NewEngine(Config{})
	// Node 1 is most uncertain (0.45 → highest entropy among members).
	p := NewPrediction([]float64{0.1, 0.45, 0.2})
	c := social.Clique{Nodes: []int{0, 1, 2}, Confidence: 0.9}
	added := e.ApplyCliques(p, []social.Clique{c})
	if len(added) != 1 || added[0] != 1 {
		t.Fatalf("added = %v, want [1]", added)
	}
	if p.Proba[1] != 1 {
		t.Fatalf("forced node prob = %v, want 1", p.Proba[1])
	}
	if p.Entropy(1) != 0 {
		t.Fatal("forced node entropy should be 0")
	}
}

func TestApplyCliquesSkipsSatisfied(t *testing.T) {
	e := NewEngine(Config{})
	p := NewPrediction([]float64{0.8, 0.2})
	c := social.Clique{Nodes: []int{0, 1}, Confidence: 0.9}
	if added := e.ApplyCliques(p, []social.Clique{c}); added != nil {
		t.Fatalf("satisfied clique should add nothing, got %v", added)
	}
	if p.Proba[0] != 0.8 || p.Proba[1] != 0.2 {
		t.Fatal("satisfied clique must not mutate the prediction")
	}
}

func TestApplyCliquesConfidenceGate(t *testing.T) {
	e := NewEngine(Config{MinCliqueConfidence: 0.8})
	p := NewPrediction([]float64{0.2, 0.3})
	weak := social.Clique{Nodes: []int{0, 1}, Confidence: 0.7}
	if added := e.ApplyCliques(p, []social.Clique{weak}); added != nil {
		t.Fatalf("weak clique should be gated, got %v", added)
	}
	strong := social.Clique{Nodes: []int{0, 1}, Confidence: 0.95}
	if added := e.ApplyCliques(p, []social.Clique{strong}); len(added) != 1 {
		t.Fatalf("strong clique should force a node, got %v", added)
	}
}

func TestApplyCliquesReducesEnergy(t *testing.T) {
	e := NewEngine(Config{})
	p := NewPrediction([]float64{0.2, 0.4, 0.3, 0.1})
	cliques := []social.Clique{
		{Nodes: []int{0, 1}, Confidence: 0.9},
		{Nodes: []int{2, 3}, Confidence: 0.9},
	}
	before := p.Energy(cliques, 0)
	if !math.IsInf(before, 1) {
		t.Fatalf("energy before = %v, want +Inf", before)
	}
	e.ApplyCliques(p, cliques)
	after := p.Energy(cliques, 0)
	if math.IsInf(after, 1) {
		t.Fatal("energy still infinite after tuning")
	}
}

func TestInferPipeline(t *testing.T) {
	e := NewEngine(Config{})
	proba := []float64{0.45, 0.2, 0.1}
	frozen := []bool{true, false, false}
	cliques := []social.Clique{{Nodes: []int{1, 2}, Confidence: 0.9}}
	p, added, err := e.Infer(proba, frozen, cliques)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	// Node 0: freeze evidence lifts 0.45 above 0.5 → predicted.
	if p.Proba[0] <= 0.5 {
		t.Fatalf("freeze-fused prob = %v, want > 0.5", p.Proba[0])
	}
	// The clique over {1,2} has no predicted leak → forces one.
	if len(added) != 1 {
		t.Fatalf("added = %v, want one forced node", added)
	}
	set := p.Set()
	if set[0] != 1 {
		t.Fatal("node 0 should be in S")
	}
	// Original input must be untouched.
	if proba[0] != 0.45 {
		t.Fatal("Infer mutated its input")
	}
	// Error path: bad frozen mask.
	if _, _, err := e.Infer(proba, []bool{true}, nil); err == nil {
		t.Fatal("bad frozen mask should error")
	}
	// Nil frozen mask is allowed.
	if _, _, err := e.Infer(proba, nil, nil); err != nil {
		t.Fatalf("nil frozen mask: %v", err)
	}
}
