// Package fusion implements Phase II of the paper's composite leak
// identification algorithm (Sec. IV-B, Algorithm 2): starting from the
// profile model's per-node leak probabilities, it fuses freeze evidence by
// Bayesian odds aggregation (eqs. 5–6) and enforces consistency with
// human-report cliques through the entropy-based energy function with
// higher-order potentials (eqs. 7–10).
package fusion

import (
	"fmt"
	"math"

	"github.com/aquascale/aquascale/internal/social"
	"github.com/aquascale/aquascale/internal/stats"
	"github.com/aquascale/aquascale/internal/weather"
)

// Prediction is the evolving per-node leak belief: P in the paper.
type Prediction struct {
	// Proba[v] is p_v(1), the probability node v leaks.
	Proba []float64
}

// NewPrediction wraps profile-model probabilities (copied).
func NewPrediction(proba []float64) *Prediction {
	p := &Prediction{Proba: make([]float64, len(proba))}
	copy(p.Proba, proba)
	return p
}

// Set returns S = {v : p_v(1) > p_v(0)}: the nodes predicted to leak.
func (p *Prediction) Set() []int {
	out := make([]int, len(p.Proba))
	for v, pv := range p.Proba {
		if pv > 0.5 {
			out[v] = 1
		}
	}
	return out
}

// LeakNodes returns the indices in S.
func (p *Prediction) LeakNodes() []int {
	var out []int
	for v, pv := range p.Proba {
		if pv > 0.5 {
			out = append(out, v)
		}
	}
	return out
}

// Entropy returns H(y_v) (eq. 7) for node v.
func (p *Prediction) Entropy(v int) float64 {
	return stats.BinaryEntropy(p.Proba[v])
}

// TotalEntropy is Σ_v H(y_v) — the first term of the energy (eq. 8).
func (p *Prediction) TotalEntropy() float64 {
	total := 0.0
	for _, pv := range p.Proba {
		total += stats.BinaryEntropy(pv)
	}
	return total
}

// Potential is Φ_c (eq. 10) for one clique given the current prediction:
// 0 when some clique node is predicted to leak, 0 when every clique node's
// entropy is below the threshold Γ (the pipeline-level prediction is
// determinate enough to override the subzone report), +Inf otherwise.
func (p *Prediction) Potential(c social.Clique, gammaThreshold float64) float64 {
	for _, v := range c.Nodes {
		if p.Proba[v] > 0.5 {
			return 0
		}
	}
	for _, v := range c.Nodes {
		if p.Entropy(v) >= gammaThreshold && p.Entropy(v) > 0 {
			return math.Inf(1)
		}
	}
	return 0
}

// Energy is E[y] (eq. 9): total entropy plus the clique potentials. An
// inconsistent clique pushes the energy to +Inf.
func (p *Prediction) Energy(cliques []social.Clique, gammaThreshold float64) float64 {
	e := p.TotalEntropy()
	for _, c := range cliques {
		e += p.Potential(c, gammaThreshold)
	}
	return e
}

// Config parameterizes Phase-II fusion.
type Config struct {
	// EntropyThreshold is Γ in eq. 10: a clique is overridden only when
	// some member's pipeline-level entropy exceeds it. The paper sets
	// Γ = 0 to always apply human input.
	EntropyThreshold float64

	// MinCliqueConfidence gates clique application by eq.-3 confidence:
	// cliques backed by too few reports (p_t below this) are ignored.
	// Zero means 0.5 (one report at the paper's p_e = 0.3 suffices).
	MinCliqueConfidence float64

	// Freeze is the freeze-evidence model.
	Freeze weather.FreezeModel
}

func (c Config) withDefaults() Config {
	if c.MinCliqueConfidence == 0 {
		c.MinCliqueConfidence = 0.5
	}
	if c.Freeze == (weather.FreezeModel{}) {
		c.Freeze = weather.DefaultFreezeModel
	}
	return c
}

// Engine runs Phase-II inference.
type Engine struct {
	cfg Config
}

// NewEngine creates a fusion engine.
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// ApplyFreezeEvidence fuses weather evidence into the prediction
// (Algorithm 2 lines 6–13): for every node flagged frozen, the leak
// probability is updated by Bayesian odds aggregation with
// p(leak|freeze). Returns the number of nodes updated.
func (e *Engine) ApplyFreezeEvidence(p *Prediction, frozen []bool) (int, error) {
	if len(frozen) != len(p.Proba) {
		return 0, fmt.Errorf("fusion: frozen mask has %d entries, prediction has %d",
			len(frozen), len(p.Proba))
	}
	updated := 0
	for v, isFrozen := range frozen {
		if !isFrozen {
			continue
		}
		p.Proba[v] = e.cfg.Freeze.FuseLeakEvidence(p.Proba[v])
		updated++
	}
	return updated, nil
}

// ApplyCliques performs event tuning (Algorithm 2 lines 14–26): for every
// sufficiently confident clique with an infinite potential (no member
// predicted to leak), the member with the highest entropy is forced to
// leak (p = 1, H = 0), eliminating the infinite potential and reducing the
// energy. Returns the indices of nodes forced to leak.
func (e *Engine) ApplyCliques(p *Prediction, cliques []social.Clique) []int {
	var added []int
	for _, c := range cliques {
		if c.Confidence < e.cfg.MinCliqueConfidence || len(c.Nodes) == 0 {
			continue
		}
		if !math.IsInf(p.Potential(c, e.cfg.EntropyThreshold), 1) {
			continue
		}
		best, bestH := -1, -1.0
		for _, v := range c.Nodes {
			if h := p.Entropy(v); h > bestH {
				best, bestH = v, h
			}
		}
		if best < 0 || bestH <= e.cfg.EntropyThreshold {
			continue
		}
		p.Proba[best] = 1
		added = append(added, best)
	}
	return added
}

// Refine runs the full Phase-II pipeline in place on an existing
// prediction: freeze fusion then clique tuning. It mutates p.Proba and
// returns the nodes added by human input. Callers that need to keep the
// profile-model probabilities should pass a copy (as Infer does); the
// serving fast path refines its per-request buffer directly, avoiding
// the copy.
func (e *Engine) Refine(p *Prediction, frozen []bool, cliques []social.Clique) ([]int, error) {
	if frozen != nil {
		if _, err := e.ApplyFreezeEvidence(p, frozen); err != nil {
			return nil, err
		}
	}
	return e.ApplyCliques(p, cliques), nil
}

// Infer runs the full Phase-II pipeline on profile-model probabilities:
// freeze fusion then clique tuning. It returns the refined prediction and
// the list of nodes added by human input.
func (e *Engine) Infer(proba []float64, frozen []bool, cliques []social.Clique) (*Prediction, []int, error) {
	p := NewPrediction(proba)
	added, err := e.Refine(p, frozen, cliques)
	if err != nil {
		return nil, nil, err
	}
	return p, added, nil
}
