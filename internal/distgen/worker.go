package distgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
)

// WorkerOptions configures one generation worker.
type WorkerOptions struct {
	// Factory is the worker's deployment. It must rebuild the exact
	// network, sensor set, and generation config the coordinator
	// planned against — the join handshake and every shard upload
	// verify this, so a misconfigured worker fails fast instead of
	// producing wrong bytes.
	Factory *dataset.Factory

	// ID names the worker in leases and error messages ("" derives one
	// from the pid).
	ID string

	// Dir is the worker's local staging directory for generated shards
	// ("" means a temp directory removed when the worker exits).
	Dir string

	// GenWorkers bounds the sample-building pool per leased shard
	// (0 means runtime.NumCPU()).
	GenWorkers int

	// Client is the HTTP client for coordinator calls (nil means a
	// default client; no global timeout — uploads of large shards are
	// bounded by the request context).
	Client *http.Client
}

// ProtocolError is a non-2xx coordinator response, carrying the uniform
// {"code", "error"} envelope the protocol speaks.
type ProtocolError struct {
	Status  int
	Code    string
	Message string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("distgen: coordinator returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// errLeaseLost marks a 410 from the coordinator: the lease expired and
// the range may already belong to someone else. The worker abandons the
// range and asks for new work — never an error, just lost the race.
var errLeaseLost = errors.New("distgen: lease lost")

// RunWorker runs one generation worker against the coordinator at url
// until the corpus is complete (returns nil), the context is cancelled,
// or the coordinator becomes unreachable. It loops: lease a shard
// range, regenerate each shard locally with GenerateShardRange
// (byte-identical to the coordinator's own GenerateCorpus would be),
// upload it, heartbeat throughout, and report completion. A lost lease
// (410) abandons the range and re-polls — safe because whoever owns the
// range now regenerates the identical bytes.
func RunWorker(ctx context.Context, url string, opt WorkerOptions) error {
	if opt.Factory == nil {
		return errors.New("distgen: RunWorker needs a Factory")
	}
	id := opt.ID
	if id == "" {
		id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	w := &worker{id: id, url: url, client: client, factory: opt.Factory, genWorkers: opt.GenWorkers}

	var p planResponse
	if err := w.call(ctx, http.MethodGet, "/distgen/v1/plan", nil, &p); err != nil {
		return fmt.Errorf("distgen: fetch plan: %w", err)
	}
	if p.Proto != ProtoVersion {
		return fmt.Errorf("distgen: coordinator speaks protocol v%d, this worker v%d", p.Proto, ProtoVersion)
	}
	plan, err := opt.Factory.PlanCorpus(p.Count, p.Seed, dataset.CorpusOptions{ShardSamples: p.ShardSamples})
	if err != nil {
		return err
	}
	if plan.Deployment() != p.Deployment || plan.ConfigDigest() != p.ConfigDigest {
		return fmt.Errorf("%w: worker deployment %016x/config %016x does not match coordinator %016x/%016x",
			dataset.ErrCorpusMismatch, plan.Deployment(), plan.ConfigDigest(), p.Deployment, p.ConfigDigest)
	}
	w.plan = plan
	w.ttl = time.Duration(p.LeaseTTLMs) * time.Millisecond
	if err := w.call(ctx, http.MethodPost, "/distgen/v1/join",
		joinRequest{Worker: id, Deployment: plan.Deployment(), ConfigDigest: plan.ConfigDigest()}, nil); err != nil {
		return fmt.Errorf("distgen: join: %w", err)
	}

	w.dir = opt.Dir
	if w.dir == "" {
		tmp, err := os.MkdirTemp("", "distgen-worker-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		w.dir = tmp
	} else if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return err
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease leaseResponse
		if err := w.call(ctx, http.MethodPost, "/distgen/v1/lease", leaseRequest{Worker: id}, &lease); err != nil {
			return fmt.Errorf("distgen: lease: %w", err)
		}
		if lease.Done {
			return nil
		}
		if lease.Lease == "" {
			if err := sleepCtx(ctx, time.Duration(lease.RetryMs)*time.Millisecond); err != nil {
				return err
			}
			continue
		}
		err := w.runLease(ctx, lease)
		switch {
		case errors.Is(err, errLeaseLost):
			continue
		case err != nil:
			return err
		}
	}
}

// worker is the per-run client state.
type worker struct {
	id         string
	url        string
	dir        string
	client     *http.Client
	factory    *dataset.Factory
	plan       dataset.CorpusPlan
	genWorkers int
	ttl        time.Duration
}

// runLease generates and uploads every shard of one leased range,
// heartbeating in the background, then reports completion.
func (w *worker) runLease(ctx context.Context, lease leaseResponse) error {
	hbCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	lost := make(chan struct{})
	go w.heartbeatLoop(hbCtx, lease.Lease, lost)

	for si := lease.Lo; si < lease.Hi; si++ {
		select {
		case <-lost:
			return errLeaseLost
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		// Width-1 range: resume-aware (a shard left from an earlier
		// lease of ours verifies and is skipped), cancellable via the
		// heartbeat context so a lost lease stops the solves too.
		if _, err := w.factory.GenerateShardRange(hbCtx, w.plan, si, si+1, w.dir, w.genWorkers); err != nil {
			select {
			case <-lost:
				return errLeaseLost
			default:
			}
			return err
		}
		if err := w.uploadShard(ctx, lease.Lease, si); err != nil {
			var pe *ProtocolError
			if errors.As(err, &pe) && pe.Status == http.StatusGone {
				return errLeaseLost
			}
			return err
		}
	}
	err := w.call(ctx, http.MethodPost, "/distgen/v1/complete", completeRequest{Lease: lease.Lease}, nil)
	var pe *ProtocolError
	if errors.As(err, &pe) && pe.Status == http.StatusGone {
		return errLeaseLost
	}
	return err
}

// heartbeatLoop extends the lease every ttl/3 and closes lost when the
// coordinator says the lease is gone or stops answering entirely.
func (w *worker) heartbeatLoop(ctx context.Context, lease string, lost chan<- struct{}) {
	every := w.ttl / 3
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	failures := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		err := w.call(ctx, http.MethodPost, "/distgen/v1/heartbeat", heartbeatRequest{Lease: lease}, nil)
		switch {
		case err == nil:
			failures = 0
			continue
		case ctx.Err() != nil:
			return
		}
		var pe *ProtocolError
		if errors.As(err, &pe) && pe.Status == http.StatusGone {
			close(lost)
			return
		}
		// Transport trouble: tolerate a few misses (the lease outlives
		// ttl/3 by design), then assume the lease is forfeit.
		if failures++; failures >= 3 {
			close(lost)
			return
		}
	}
}

// uploadShard PUTs the staged shard file to the coordinator.
func (w *worker) uploadShard(ctx context.Context, lease string, idx int) error {
	path := filepath.Join(w.dir, dataset.ShardFileName(idx))
	body, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/distgen/v1/shards/%d?lease=%s", w.url, idx, lease)
	return retryTransport(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		return drainResponse(resp)
	})
}

// call does one JSON round trip with transient-transport retry. in may
// be nil (no body); out may be nil (response body discarded).
func (w *worker) call(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	return retryTransport(ctx, func() error {
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, w.url+path, body)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		if out == nil {
			return drainResponse(resp)
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return protocolError(resp)
		}
		return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
	})
}

// drainResponse consumes and closes the body, converting non-2xx into a
// ProtocolError.
func drainResponse(resp *http.Response) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return protocolError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// protocolError decodes the {"code", "error"} envelope.
func protocolError(resp *http.Response) error {
	var env errorEnvelope
	json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&env)
	if env.Code == "" {
		env.Code = "internal"
	}
	return &ProtocolError{Status: resp.StatusCode, Code: env.Code, Message: env.Error}
}

// retryTransport retries fn on transport-level failures (connection
// refused, reset, ...) with capped exponential backoff. Protocol errors
// — the coordinator answered — are returned immediately.
func retryTransport(ctx context.Context, fn func() error) error {
	delay := 50 * time.Millisecond
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		var pe *ProtocolError
		if errors.As(err, &pe) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if serr := sleepCtx(ctx, delay); serr != nil {
			return serr
		}
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
	return err
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
