// Package distgen fans corpus generation out across worker processes.
//
// A coordinator partitions a planned corpus (dataset.CorpusPlan) into
// contiguous shard ranges and leases them to workers over a small
// versioned HTTP protocol (see http.go). Each worker regenerates its
// leased shards locally — byte-identical to a single-process run,
// because every shard's scenarios and noise seeds are re-derived from
// the corpus seed — and uploads them; the coordinator verifies every
// upload against the plan (structure, CRCs, full header metadata)
// before staging it.
//
// Leases carry deadlines and are kept alive by heartbeats. A range
// whose lease expires (worker died, stalled, or partitioned away)
// returns to the pending pool and is re-leased to the next worker that
// asks. Reassignment is idempotent by construction: regeneration of a
// shard is bit-for-bit identical no matter which worker produces it,
// and uploads of an already-staged shard are accepted and discarded.
//
// When every range completes, staged shards are renamed into the corpus
// directory and the whole corpus is re-validated with OpenCorpus
// (contiguous scenario tiling, cross-shard metadata agreement) — the
// merged directory is byte-identical to GenerateCorpus at the same
// seed, which the tests pin.
package distgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// stagingDirName is the coordinator's staging subdirectory inside the
// corpus directory. Subdirectories are invisible to the shard glob, so
// OpenCorpus and resume never see half-merged state.
const stagingDirName = ".distgen"

// Options configures a distributed generation run.
type Options struct {
	// ShardSamples is the scenarios-per-shard partition grain (0 means
	// the GenerateCorpus default, 1024).
	ShardSamples int

	// Resume adopts valid matching shards already present in the corpus
	// directory (and staged shards left by a crashed coordinator)
	// instead of failing on a non-empty directory — the distributed
	// twin of CorpusOptions.Resume.
	Resume bool

	// Workers is how many workers to start via StartWorker. 0 means 1.
	// Set it to -1 to start none and rely on externally launched
	// workers joining over the network (Addr must then be reachable).
	Workers int

	// GenWorkers bounds each in-process worker's sample-building pool
	// (0 means runtime.NumCPU()).
	GenWorkers int

	// RangeShards is how many consecutive shards one lease covers
	// (0 means 1 — finest reassignment granularity).
	RangeShards int

	// LeaseTTL is how long a lease lives without a heartbeat before the
	// coordinator reclaims its range (0 means 30s).
	LeaseTTL time.Duration

	// Addr is the coordinator listen address (0 means loopback with an
	// ephemeral port — subprocess workers on the same host can reach
	// it; use a routable address for remote workers).
	Addr string

	// StartWorker launches worker id against the coordinator at url and
	// blocks until the worker exits. nil means an in-process
	// RunWorker sharing the coordinator's factory — the zero-config
	// spelling; cmd/aquatrain overrides it to spawn `aquatrain -worker`
	// subprocesses.
	StartWorker func(ctx context.Context, url string, id int) error
}

// metrics are the coordinator-side telemetry handles, bound lazily per
// run like the corpus_* instruments.
type metrics struct {
	rangesDispatched *telemetry.Counter
	leasesExpired    *telemetry.Counter
	rangesReassigned *telemetry.Counter
	shardsStaged     *telemetry.Counter
	workersJoined    *telemetry.Counter
	mergeSeconds     *telemetry.Histogram
}

func bindMetrics() metrics {
	reg := telemetry.Default()
	return metrics{
		rangesDispatched: reg.Counter("distgen_ranges_dispatched_total"),
		leasesExpired:    reg.Counter("distgen_leases_expired_total"),
		rangesReassigned: reg.Counter("distgen_ranges_reassigned_total"),
		shardsStaged:     reg.Counter("distgen_shards_staged_total"),
		workersJoined:    reg.Counter("distgen_workers_joined_total"),
		mergeSeconds:     reg.Histogram("distgen_merge_seconds", telemetry.ExpBuckets(1e-3, 2, 16)),
	}
}

// rangeState is the lease state machine: pending → leased → done, with
// leased → pending on expiry (DESIGN.md §12).
type rangeState int

const (
	rangePending rangeState = iota
	rangeLeased
	rangeDone
)

// shardRange is one leasable unit of work: shards [lo, hi).
type shardRange struct {
	lo, hi   int
	state    rangeState
	lease    string
	worker   string
	deadline time.Time
	assigned int // lease grants so far; >1 means reassigned
}

// coordinator owns the lease table and staging directory. All mutable
// state is guarded by mu; handlers are safe for concurrent workers.
type coordinator struct {
	plan    dataset.CorpusPlan
	dir     string
	staging string
	ttl     time.Duration
	met     metrics

	mu        sync.Mutex
	ranges    []*shardRange
	leases    map[string]*shardRange
	staged    map[int]bool // uploaded and verified, waiting in staging
	preseeded int          // valid shards adopted from dir at startup
	doneCount int
	leaseSeq  int
	doneCh    chan struct{}
	closed    bool
}

// newCoordinator scans dir (and its staging subdirectory) for work
// already done, sweeps crash debris, and builds the lease table over
// the shards still missing.
func newCoordinator(f *dataset.Factory, plan dataset.CorpusPlan, dir string, opt Options) (*coordinator, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("distgen: corpus dir: %w", err)
	}
	staging := filepath.Join(dir, stagingDirName)
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return nil, fmt.Errorf("distgen: staging dir: %w", err)
	}
	for _, pat := range []string{
		filepath.Join(dir, "shard-*.aqsc.tmp"),
		filepath.Join(staging, "shard-*.aqsc.tmp"),
		filepath.Join(staging, "upload-*.tmp"),
	} {
		if tmps, err := filepath.Glob(pat); err == nil {
			for _, p := range tmps {
				os.Remove(p)
			}
		}
	}
	existing, err := filepath.Glob(filepath.Join(dir, "shard-*.aqsc"))
	if err != nil {
		return nil, fmt.Errorf("distgen: corpus dir: %w", err)
	}
	if len(existing) > 0 && !opt.Resume {
		return nil, fmt.Errorf("distgen: corpus dir %s already holds %d shard(s); resume or use an empty directory", dir, len(existing))
	}

	ttl := opt.LeaseTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	c := &coordinator{
		plan:    plan,
		dir:     dir,
		staging: staging,
		ttl:     ttl,
		met:     bindMetrics(),
		leases:  make(map[string]*shardRange),
		staged:  make(map[int]bool),
		doneCh:  make(chan struct{}),
	}

	// Adopt finished work: a valid matching shard already in the corpus
	// directory, or one staged by a previous coordinator that died
	// before merging. Damaged files regenerate; valid foreign shards
	// fail fast exactly like single-process resume.
	done := make(map[int]bool)
	for i := 0; i < plan.ShardCount; i++ {
		path := filepath.Join(dir, dataset.ShardFileName(i))
		if _, err := c.verifyAdoptable(path, i); err == nil {
			done[i] = true
			c.preseeded++
			continue
		} else if errors.Is(err, dataset.ErrCorpusMismatch) {
			return nil, err
		}
		spath := filepath.Join(staging, dataset.ShardFileName(i))
		if _, err := c.verifyAdoptable(spath, i); err == nil {
			done[i] = true
			c.staged[i] = true
		} else if errors.Is(err, dataset.ErrCorpusMismatch) {
			return nil, err
		}
	}

	grain := opt.RangeShards
	if grain <= 0 {
		grain = 1
	}
	for lo := 0; lo < plan.ShardCount; {
		if done[lo] {
			lo++
			continue
		}
		hi := lo + 1
		for hi < plan.ShardCount && hi-lo < grain && !done[hi] {
			hi++
		}
		c.ranges = append(c.ranges, &shardRange{lo: lo, hi: hi})
		lo = hi
	}
	if len(c.ranges) == 0 {
		close(c.doneCh)
		c.closed = true
	}
	return c, nil
}

// verifyAdoptable checks whether path holds a fully valid shard i of
// the plan. Damaged or partial files are removed so regeneration can
// proceed; mismatched valid shards surface ErrCorpusMismatch.
func (c *coordinator) verifyAdoptable(path string, i int) (dataset.ShardHeader, error) {
	hdr, err := c.plan.VerifyShardFile(path, i)
	switch {
	case err == nil:
		return hdr, nil
	case errors.Is(err, os.ErrNotExist), errors.Is(err, dataset.ErrCorpusMismatch):
		return dataset.ShardHeader{}, err
	default:
		os.Remove(path)
		return dataset.ShardHeader{}, err
	}
}

// sweepLocked reclaims expired leases. Called under mu from every
// handler that reads the lease table, so liveness needs no background
// goroutine: any worker asking for work triggers reclamation.
func (c *coordinator) sweepLocked(now time.Time) {
	for id, r := range c.leases {
		if now.After(r.deadline) {
			delete(c.leases, id)
			r.state = rangePending
			r.lease = ""
			r.worker = ""
			c.met.leasesExpired.Inc()
		}
	}
}

// grantLocked leases the next pending range to worker, or returns nil
// when none is pending.
func (c *coordinator) grantLocked(worker string, now time.Time) *shardRange {
	for _, r := range c.ranges {
		if r.state != rangePending {
			continue
		}
		c.leaseSeq++
		r.state = rangeLeased
		r.lease = fmt.Sprintf("lease-%d", c.leaseSeq)
		r.worker = worker
		r.deadline = now.Add(c.ttl)
		if r.assigned > 0 {
			c.met.rangesReassigned.Inc()
		}
		r.assigned++
		c.leases[r.lease] = r
		c.met.rangesDispatched.Inc()
		return r
	}
	return nil
}

// completeLocked marks the leased range done; every shard in it must
// already be staged.
func (c *coordinator) completeLocked(r *shardRange) error {
	for i := r.lo; i < r.hi; i++ {
		if !c.staged[i] {
			return fmt.Errorf("distgen: range [%d,%d) completed but shard %d was never staged", r.lo, r.hi, i)
		}
	}
	delete(c.leases, r.lease)
	r.state = rangeDone
	r.lease = ""
	c.doneCount++
	if c.doneCount == len(c.ranges) && !c.closed {
		close(c.doneCh)
		c.closed = true
	}
	return nil
}

// remainingLocked counts ranges not yet done.
func (c *coordinator) remainingLocked() int {
	return len(c.ranges) - c.doneCount
}

// merge renames staged shards into the corpus directory, re-validates
// the whole corpus with OpenCorpus (shard indices, contiguous scenario
// tiling, cross-shard metadata agreement) and against the live factory,
// and assembles the result.
func (c *coordinator) merge(f *dataset.Factory) (*dataset.CorpusResult, error) {
	start := time.Now()
	res := &dataset.CorpusResult{
		Dir:           c.dir,
		Shards:        c.plan.ShardCount,
		Scenarios:     c.plan.Count,
		ShardsResumed: c.preseeded,
	}
	for i := range c.staged {
		src := filepath.Join(c.staging, dataset.ShardFileName(i))
		dst := filepath.Join(c.dir, dataset.ShardFileName(i))
		if err := os.Rename(src, dst); err != nil {
			return res, fmt.Errorf("distgen: merge shard %d: %w", i, err)
		}
		if fi, err := os.Stat(dst); err == nil {
			res.Bytes += fi.Size()
		}
		res.ShardsWritten++
	}
	os.RemoveAll(c.staging)

	r, err := dataset.OpenCorpus(c.dir)
	if err != nil {
		return res, fmt.Errorf("distgen: merged corpus failed validation: %w", err)
	}
	if err := r.Match(f); err != nil {
		return res, err
	}
	res.Samples = r.SampleCount()
	res.SkippedScenarios = r.ScenarioCount() - r.SampleCount()
	c.met.mergeSeconds.ObserveDuration(time.Since(start))
	if res.Samples == 0 {
		return res, fmt.Errorf("distgen: corpus holds no samples over %d scenarios", c.plan.Count)
	}
	return res, nil
}

// Coordinate runs a full distributed generation: plan, serve the worker
// protocol, lease shard ranges to opt.Workers workers (in-process by
// default, subprocesses or remote machines via opt.StartWorker), verify
// and stage every uploaded shard, reassign ranges whose leases expire,
// and merge + validate the result into dir.
//
// The merged directory is byte-identical to a single-process
// GenerateCorpus(ctx, count, seed, dir, ...) at the same seed and shard
// size, no matter how many workers ran or how many leases were
// reassigned mid-range.
func Coordinate(ctx context.Context, f *dataset.Factory, count int, seed int64, dir string, opt Options) (*dataset.CorpusResult, error) {
	plan, err := f.PlanCorpus(count, seed, dataset.CorpusOptions{ShardSamples: opt.ShardSamples})
	if err != nil {
		return nil, err
	}
	c, err := newCoordinator(f, plan, dir, opt)
	if err != nil {
		return nil, err
	}
	if len(c.ranges) == 0 {
		// Everything already on disk — nothing to serve.
		return c.merge(f)
	}

	addr := opt.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distgen: listen: %w", err)
	}
	srv := &http.Server{Handler: c.mux()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		<-serveErr
	}()
	url := "http://" + ln.Addr().String()

	nworkers := opt.Workers
	if nworkers == 0 {
		nworkers = 1
	}
	start := opt.StartWorker
	if start == nil {
		start = func(ctx context.Context, url string, id int) error {
			return RunWorker(ctx, url, WorkerOptions{
				Factory:    f,
				ID:         fmt.Sprintf("inproc-%d", id),
				GenWorkers: opt.GenWorkers,
			})
		}
	}
	wctx, cancelWorkers := context.WithCancel(ctx)
	defer cancelWorkers()
	var (
		wg          sync.WaitGroup
		workersDone = make(chan struct{})
		errMu       sync.Mutex
		workerErrs  []error
	)
	if nworkers > 0 {
		for i := 0; i < nworkers; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if err := start(wctx, url, id); err != nil && wctx.Err() == nil {
					errMu.Lock()
					workerErrs = append(workerErrs, fmt.Errorf("worker %d: %w", id, err))
					errMu.Unlock()
				}
			}(i)
		}
		go func() { wg.Wait(); close(workersDone) }()
	}

	select {
	case <-c.doneCh:
	case <-ctx.Done():
		cancelWorkers()
		wg.Wait()
		return nil, ctx.Err()
	case <-workersDone:
		c.mu.Lock()
		remaining := c.remainingLocked()
		c.mu.Unlock()
		if remaining > 0 {
			errMu.Lock()
			defer errMu.Unlock()
			return nil, fmt.Errorf("distgen: all %d worker(s) exited with %d range(s) unfinished: %w",
				nworkers, remaining, errors.Join(workerErrs...))
		}
	}
	cancelWorkers()
	wg.Wait()
	return c.merge(f)
}
