package distgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
)

// ProtoVersion is the worker protocol version. Workers refuse to talk
// to a coordinator speaking a different version; bump it on any wire
// change.
const ProtoVersion = 1

// The wire types below are JSON over HTTP under /distgen/v1/. int64
// and uint64 fields round-trip exactly through encoding/json because
// both ends decode into typed struct fields, never through float64.

// planResponse describes the corpus a worker must regenerate shards
// for. Workers re-derive the identical CorpusPlan locally and refuse
// to serve a coordinator whose deployment or config digest differs.
type planResponse struct {
	Proto        int    `json:"proto"`
	Count        int    `json:"count"`
	Seed         int64  `json:"seed"`
	ShardSamples int    `json:"shardSamples"`
	ShardCount   int    `json:"shardCount"`
	Deployment   uint64 `json:"deployment"`
	ConfigDigest uint64 `json:"configDigest"`
	LeaseTTLMs   int64  `json:"leaseTTLMs"`
}

// joinRequest announces a worker and proves it rebuilt the same
// deployment (network + sensors + generation config) the coordinator
// planned against.
type joinRequest struct {
	Worker       string `json:"worker"`
	Deployment   uint64 `json:"deployment"`
	ConfigDigest uint64 `json:"configDigest"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseResponse grants shards [Lo, Hi), reports overall completion, or
// asks the worker to poll again after RetryMs (all ranges leased but
// not yet done).
type leaseResponse struct {
	Lease   string `json:"lease,omitempty"`
	Lo      int    `json:"lo,omitempty"`
	Hi      int    `json:"hi,omitempty"`
	Done    bool   `json:"done,omitempty"`
	RetryMs int64  `json:"retryMs,omitempty"`
}

type heartbeatRequest struct {
	Lease string `json:"lease"`
}

type completeRequest struct {
	Lease string `json:"lease"`
}

// errorEnvelope is the uniform non-2xx body: the same
// {"code": ..., "error": ...} shape every aquad/fleet endpoint speaks.
type errorEnvelope struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{Code: code, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// mux routes the versioned worker protocol.
func (c *coordinator) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /distgen/v1/plan", c.handlePlan)
	mux.HandleFunc("POST /distgen/v1/join", c.handleJoin)
	mux.HandleFunc("POST /distgen/v1/lease", c.handleLease)
	mux.HandleFunc("POST /distgen/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("PUT /distgen/v1/shards/{index}", c.handleShard)
	mux.HandleFunc("POST /distgen/v1/complete", c.handleComplete)
	return mux
}

func (c *coordinator) handlePlan(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, planResponse{
		Proto:        ProtoVersion,
		Count:        c.plan.Count,
		Seed:         c.plan.Seed,
		ShardSamples: c.plan.ShardSamples,
		ShardCount:   c.plan.ShardCount,
		Deployment:   c.plan.Deployment(),
		ConfigDigest: c.plan.ConfigDigest(),
		LeaseTTLMs:   c.ttl.Milliseconds(),
	})
}

func (c *coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Deployment != c.plan.Deployment() {
		writeError(w, http.StatusConflict, "conflict",
			fmt.Errorf("worker %s deployment fingerprint %016x does not match coordinator %016x (different network, sensor set, or placement)",
				req.Worker, req.Deployment, c.plan.Deployment()))
		return
	}
	if req.ConfigDigest != c.plan.ConfigDigest() {
		writeError(w, http.StatusConflict, "conflict",
			fmt.Errorf("worker %s config digest %016x does not match coordinator %016x (generation Config differs)",
				req.Worker, req.ConfigDigest, c.plan.ConfigDigest()))
		return
	}
	c.met.workersJoined.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (c *coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	if c.remainingLocked() == 0 {
		writeJSON(w, leaseResponse{Done: true})
		return
	}
	if rg := c.grantLocked(req.Worker, now); rg != nil {
		writeJSON(w, leaseResponse{Lease: rg.lease, Lo: rg.lo, Hi: rg.hi})
		return
	}
	// All remaining ranges are leased to live workers: poll again well
	// inside the TTL so an expiry is picked up promptly.
	retry := c.ttl / 4
	if retry < 50*time.Millisecond {
		retry = 50 * time.Millisecond
	}
	if retry > 2*time.Second {
		retry = 2 * time.Second
	}
	writeJSON(w, leaseResponse{RetryMs: retry.Milliseconds()})
}

func (c *coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	rg, ok := c.leases[req.Lease]
	if !ok {
		writeError(w, http.StatusGone, "gone",
			fmt.Errorf("lease %s expired or was never granted; its range may be reassigned", req.Lease))
		return
	}
	rg.deadline = now.Add(c.ttl)
	w.WriteHeader(http.StatusNoContent)
}

// handleShard accepts a generated shard, verifies it against the plan
// before it can ever reach the corpus, and stages it. Re-uploads of an
// already-staged shard are accepted and discarded — that idempotency is
// what makes lease reassignment safe.
func (c *coordinator) handleShard(w http.ResponseWriter, r *http.Request) {
	idx, err := strconv.Atoi(r.PathValue("index"))
	if err != nil || idx < 0 || idx >= c.plan.ShardCount {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("shard index %q outside plan of %d shards", r.PathValue("index"), c.plan.ShardCount))
		return
	}
	lease := r.URL.Query().Get("lease")
	now := time.Now()
	c.mu.Lock()
	c.sweepLocked(now)
	rg, ok := c.leases[lease]
	if ok {
		rg.deadline = now.Add(c.ttl) // an upload is proof of life
	}
	alreadyStaged := c.staged[idx]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusGone, "gone",
			fmt.Errorf("lease %s expired or was never granted; its range may be reassigned", lease))
		return
	}
	if idx < rg.lo || idx >= rg.hi {
		writeError(w, http.StatusConflict, "conflict",
			fmt.Errorf("shard %d outside leased range [%d,%d)", idx, rg.lo, rg.hi))
		return
	}
	if alreadyStaged {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusNoContent)
		return
	}

	// Unique temp name per upload: after a reassignment the old and new
	// owner can race on the same shard, and the payloads are identical
	// by construction — last rename wins harmlessly.
	final := filepath.Join(c.staging, dataset.ShardFileName(idx))
	fh, err := os.CreateTemp(c.staging, "upload-*.tmp")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	tmp := fh.Name()
	if _, err := io.Copy(fh, r.Body); err != nil {
		fh.Close()
		os.Remove(tmp)
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("read shard body: %w", err))
		return
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	// Full acceptance check — structure, CRCs, every header field —
	// before the shard can enter the corpus.
	if _, err := c.plan.VerifyShardFile(tmp, idx); err != nil {
		os.Remove(tmp)
		writeError(w, http.StatusUnprocessableEntity, "shard_invalid",
			fmt.Errorf("shard %d rejected: %w", idx, err))
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		writeError(w, http.StatusInternalServerError, "internal", err)
		return
	}
	c.mu.Lock()
	first := !c.staged[idx]
	c.staged[idx] = true
	c.mu.Unlock()
	if first {
		c.met.shardsStaged.Inc()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(now)
	rg, ok := c.leases[req.Lease]
	if !ok {
		writeError(w, http.StatusGone, "gone",
			fmt.Errorf("lease %s expired or was never granted; its range may be reassigned", req.Lease))
		return
	}
	if err := c.completeLocked(rg); err != nil {
		writeError(w, http.StatusConflict, "conflict", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
