package distgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

func testNetFactory(t *testing.T) *dataset.Factory {
	t.Helper()
	net := network.BuildTestNet()
	j, ok := net.NodeIndex("J2")
	if !ok {
		t.Fatal("test network lost node J2")
	}
	f, err := dataset.NewFactory(net, []sensor.Sensor{{Kind: sensor.Pressure, Index: j}}, dataset.Config{
		Noise: sensor.DefaultNoise,
		Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	return f
}

// dirShardBytes reads every shard file in dir into a name → content map.
func dirShardBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.aqsc"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		out[filepath.Base(p)] = b
	}
	return out
}

// sameShardSet asserts two corpus directories hold byte-identical shard
// sets — the distributed acceptance criterion.
func sameShardSet(t *testing.T, gotDir, wantDir string) {
	t.Helper()
	got, want := dirShardBytes(t, gotDir), dirShardBytes(t, wantDir)
	if len(got) != len(want) {
		t.Fatalf("shard count %d, want %d", len(got), len(want))
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			t.Fatalf("shard %s missing", name)
		}
		if string(g) != string(want[name]) {
			t.Fatalf("shard %s bytes diverge (%d vs %d bytes)", name, len(g), len(want[name]))
		}
	}
}

// TestCoordinateMatchesSingleProcess is the tentpole equivalence: three
// workers over real loopback HTTP produce a corpus byte-identical to
// single-process GenerateCorpus at the same seed.
func TestCoordinateMatchesSingleProcess(t *testing.T) {
	f := testNetFactory(t)
	const count, seed = 40, 9

	wantDir := t.TempDir()
	wantRes, err := f.GenerateCorpus(context.Background(), count, seed, wantDir,
		dataset.CorpusOptions{ShardSamples: 4})
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}

	gotDir := t.TempDir()
	res, err := Coordinate(context.Background(), f, count, seed, gotDir, Options{
		ShardSamples: 4,
		Workers:      3,
		RangeShards:  2,
	})
	if err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	sameShardSet(t, gotDir, wantDir)

	if res.Shards != 10 || res.ShardsWritten != 10 || res.ShardsResumed != 0 {
		t.Fatalf("result shards = %d written %d resumed %d, want 10/10/0",
			res.Shards, res.ShardsWritten, res.ShardsResumed)
	}
	if res.Samples != wantRes.Samples || res.Scenarios != wantRes.Scenarios ||
		res.SkippedScenarios != wantRes.SkippedScenarios {
		t.Fatalf("result accounting %+v diverges from single-process %+v", res, wantRes)
	}
	if _, err := os.Stat(filepath.Join(gotDir, stagingDirName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("staging directory survived the merge: %v", err)
	}
	r, err := dataset.OpenCorpus(gotDir)
	if err != nil {
		t.Fatalf("OpenCorpus on merged dir: %v", err)
	}
	if err := r.Match(f); err != nil {
		t.Fatalf("merged corpus does not match factory: %v", err)
	}
}

// killAfterFirstUpload is a RoundTripper that cancels its worker's
// context as soon as one shard upload succeeds — simulating a worker
// dying mid-range (range width is 2, so one shard is staged and the
// range is never completed).
type killAfterFirstUpload struct {
	cancel context.CancelFunc
	once   sync.Once
}

func (k *killAfterFirstUpload) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err == nil && req.Method == http.MethodPut && resp.StatusCode/100 == 2 {
		k.once.Do(k.cancel)
	}
	return resp, err
}

// TestWorkerKilledMidRangeIsReassigned pins lease recovery: a worker
// dies after uploading the first shard of a two-shard range, its lease
// expires, the range is re-leased, and the merged corpus is still
// byte-identical to the single-process run.
func TestWorkerKilledMidRangeIsReassigned(t *testing.T) {
	f := testNetFactory(t)
	const count, seed = 40, 9

	wantDir := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), count, seed, wantDir,
		dataset.CorpusOptions{ShardSamples: 4}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}

	var (
		killedMu  sync.Mutex
		killedErr error
	)
	gotDir := t.TempDir()
	res, err := Coordinate(context.Background(), f, count, seed, gotDir, Options{
		ShardSamples: 4,
		Workers:      3,
		RangeShards:  2,
		LeaseTTL:     400 * time.Millisecond,
		StartWorker: func(ctx context.Context, url string, id int) error {
			opt := WorkerOptions{Factory: f, ID: fmt.Sprintf("w%d", id)}
			if id != 0 {
				return RunWorker(ctx, url, opt)
			}
			kctx, cancel := context.WithCancel(ctx)
			defer cancel()
			opt.Client = &http.Client{Transport: &killAfterFirstUpload{cancel: cancel}}
			err := RunWorker(kctx, url, opt)
			killedMu.Lock()
			killedErr = err
			killedMu.Unlock()
			// Swallow the kill so Coordinate sees a cleanly exited
			// worker — the lease must still be reclaimed by TTL.
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	killedMu.Lock()
	ke := killedErr
	killedMu.Unlock()
	if !errors.Is(ke, context.Canceled) {
		t.Fatalf("killed worker returned %v, want context.Canceled", ke)
	}
	if res.ShardsWritten != 10 {
		t.Fatalf("ShardsWritten = %d, want 10", res.ShardsWritten)
	}
	sameShardSet(t, gotDir, wantDir)
}

// TestCoordinateResume pins the Resume semantics: valid shards already
// in the directory are adopted, missing ones are generated, and a
// non-empty directory without Resume fails fast.
func TestCoordinateResume(t *testing.T) {
	f := testNetFactory(t)
	const count, seed = 40, 9

	wantDir := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), count, seed, wantDir,
		dataset.CorpusOptions{ShardSamples: 4}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}

	gotDir := t.TempDir()
	for _, name := range []string{dataset.ShardFileName(0), dataset.ShardFileName(7)} {
		b, err := os.ReadFile(filepath.Join(wantDir, name))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		if err := os.WriteFile(filepath.Join(gotDir, name), b, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}

	if _, err := Coordinate(context.Background(), f, count, seed, gotDir, Options{
		ShardSamples: 4, Workers: 2,
	}); err == nil || !strings.Contains(err.Error(), "resume or use an empty directory") {
		t.Fatalf("non-empty dir without Resume: err = %v", err)
	}

	res, err := Coordinate(context.Background(), f, count, seed, gotDir, Options{
		ShardSamples: 4, Workers: 2, Resume: true,
	})
	if err != nil {
		t.Fatalf("Coordinate resume: %v", err)
	}
	if res.ShardsResumed != 2 || res.ShardsWritten != 8 {
		t.Fatalf("resumed %d written %d, want 2/8", res.ShardsResumed, res.ShardsWritten)
	}
	sameShardSet(t, gotDir, wantDir)
}

// TestWorkerRejectsForeignCoordinator pins the handshake: a worker whose
// deployment differs from the plan refuses before generating anything.
func TestWorkerRejectsForeignCoordinator(t *testing.T) {
	f := testNetFactory(t)
	net := network.BuildTestNet()
	j3, ok := net.NodeIndex("J3")
	if !ok {
		t.Fatal("test network lost node J3")
	}
	other, err := dataset.NewFactory(net, []sensor.Sensor{{Kind: sensor.Pressure, Index: j3}}, dataset.Config{
		Noise: sensor.DefaultNoise,
		Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}

	_, err = Coordinate(context.Background(), f, 8, 3, t.TempDir(), Options{
		ShardSamples: 4,
		Workers:      1,
		LeaseTTL:     time.Second,
		StartWorker: func(ctx context.Context, url string, id int) error {
			return RunWorker(ctx, url, WorkerOptions{Factory: other, ID: "foreign"})
		},
	})
	if !errors.Is(err, dataset.ErrCorpusMismatch) {
		t.Fatalf("err = %v, want ErrCorpusMismatch", err)
	}
}

// TestErrorEnvelope pins the wire contract: every non-2xx protocol
// response carries the uniform {"code", "error"} envelope.
func TestErrorEnvelope(t *testing.T) {
	f := testNetFactory(t)
	plan, err := f.PlanCorpus(8, 3, dataset.CorpusOptions{ShardSamples: 4})
	if err != nil {
		t.Fatalf("PlanCorpus: %v", err)
	}
	c, err := newCoordinator(f, plan, t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("newCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.mux())
	defer srv.Close()

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", http.MethodPost, "/distgen/v1/lease", "{", http.StatusBadRequest, "bad_request"},
		{"unknown lease", http.MethodPost, "/distgen/v1/heartbeat", `{"lease":"lease-99"}`, http.StatusGone, "gone"},
		{"shard without lease", http.MethodPut, "/distgen/v1/shards/0", "junk", http.StatusGone, "gone"},
		{"shard index out of range", http.MethodPut, "/distgen/v1/shards/99", "junk", http.StatusBadRequest, "bad_request"},
		{"join mismatch", http.MethodPost, "/distgen/v1/join", `{"worker":"x","deployment":1,"configDigest":2}`, http.StatusConflict, "conflict"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("NewRequest: %v", err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("Do: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var env struct {
				Code  string `json:"code"`
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("non-2xx body is not the JSON envelope: %v", err)
			}
			if env.Code != tc.wantCode || env.Error == "" {
				t.Fatalf("envelope = %+v, want code %q and a message", env, tc.wantCode)
			}
		})
	}
}

// TestPlanRoundTrip pins exact int64/uint64 JSON round-tripping of the
// plan advertisement (fingerprints use all 64 bits).
func TestPlanRoundTrip(t *testing.T) {
	f := testNetFactory(t)
	plan, err := f.PlanCorpus(8, 3, dataset.CorpusOptions{ShardSamples: 4})
	if err != nil {
		t.Fatalf("PlanCorpus: %v", err)
	}
	c, err := newCoordinator(f, plan, t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("newCoordinator: %v", err)
	}
	srv := httptest.NewServer(c.mux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/distgen/v1/plan")
	if err != nil {
		t.Fatalf("GET plan: %v", err)
	}
	defer resp.Body.Close()
	var p planResponse
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if p.Proto != ProtoVersion || p.Count != 8 || p.Seed != 3 || p.ShardCount != 2 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Deployment != plan.Deployment() || p.ConfigDigest != plan.ConfigDigest() {
		t.Fatalf("fingerprints did not round-trip: %+v vs %016x/%016x",
			p, plan.Deployment(), plan.ConfigDigest())
	}
}
