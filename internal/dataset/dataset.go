// Package dataset is the Phase-I data factory: it runs leak scenarios
// through the hydraulic engine, samples the IoT sensor set before and
// after leak onset, and emits feature/label pairs for profile training
// (paper Sec. IV-A).
//
// Features follow the paper: the change in each sensor's reading between
// the sampling instants e.t−1 and e.t+n, where n is the number of elapsed
// time slots after the leak. (The paper nominally adds the static topology
// vector T to every sample; constant features carry no per-sample
// information for a fixed network, so they are omitted from the feature
// matrix — the topology instead enters through the network-specific
// profile itself.)
//
// By default the factory uses snapshot mode: one steady solve per sample
// at the post-leak instant against a cached leak-free baseline. This is
// the paper's setting (leak effects within minutes-to-hours, tank drift
// negligible across the feature window) and keeps 20,000-scenario dataset
// generation tractable.
package dataset

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// Config controls sample generation.
type Config struct {
	// ElapsedSlots is n: sampling intervals between leak onset and the
	// post-leak reading. Zero means 1.
	ElapsedSlots int

	// Step is the IoT sampling period. Zero means 15 minutes.
	Step time.Duration

	// BaseTime is the leak onset e.t within the demand-pattern day.
	// Zero means 08:00 (morning peak).
	BaseTime time.Duration

	// Noise is the sensor noise model (zero value means noise-free).
	Noise sensor.Noise

	// Leaks configures the scenario generator.
	Leaks leak.GeneratorConfig

	// Solver configures the hydraulic engine.
	Solver hydraulic.Options

	// Retry bounds solver retry-with-degradation on non-convergence
	// (stepped relaxation plus warm restart; see
	// hydraulic.SolveSteadyRetry). The zero value disables retry.
	Retry hydraulic.RetryPolicy

	// Faults enables deterministic fault injection — sensor dropout,
	// stuck-at and NaN readings plus forced solver non-convergence —
	// drawn from a stream derived from each scenario's seed. The zero
	// value injects nothing and leaves every random stream untouched.
	Faults faults.Config

	// FailFast makes Generate abort on the first failed scenario, the
	// historical behavior. By default a scenario whose solve still fails
	// after retries is skipped and recorded in Dataset.Skipped instead
	// of discarding the whole run.
	FailFast bool
}

func (c Config) withDefaults() Config {
	if c.ElapsedSlots <= 0 {
		c.ElapsedSlots = 1
	}
	if c.Step <= 0 {
		c.Step = 15 * time.Minute
	}
	if c.BaseTime == 0 {
		c.BaseTime = 8 * time.Hour
	}
	return c
}

// Sample is one training or test example.
type Sample struct {
	// Features is the per-sensor reading delta across leak onset.
	Features []float64

	// Labels is the per-junction ground truth (aligned with
	// Factory.Junctions()).
	Labels []int

	// Scenario is the generating leak scenario.
	Scenario leak.Scenario

	// Retries is the number of solver re-attempts this sample's leak
	// solve consumed (0 when the first attempt converged).
	Retries int

	// RetrySteps is the exact retry sequence (relaxation factor,
	// warm/cold restart, injected or real failure) behind Retries — nil
	// on clean first-attempt solves.
	RetrySteps []hydraulic.RetryStep
}

// ScenarioError wraps a scenario's hydraulic solve failure with the retry
// count consumed before giving up. It unwraps to the underlying solver
// error, so errors.Is(err, hydraulic.ErrNotConverged) keeps working.
type ScenarioError struct {
	Retries int
	Err     error

	// Steps is the retry ladder the failing solve walked before giving
	// up, in attempt order.
	Steps []hydraulic.RetryStep
}

// Error implements the error interface.
func (e *ScenarioError) Error() string {
	return fmt.Sprintf("dataset: leak solve failed after %d retries: %v", e.Retries, e.Err)
}

// Unwrap exposes the underlying solver error.
func (e *ScenarioError) Unwrap() error { return e.Err }

// SkippedScenario records one scenario dropped from a generated dataset
// after retry exhaustion.
type SkippedScenario struct {
	// Index is the scenario's position in generation order.
	Index int

	// Scenario is the failing scenario itself, so callers can re-run or
	// inspect it.
	Scenario leak.Scenario

	// Err is the terminal solve error (errors.Is-compatible with
	// hydraulic.ErrNotConverged).
	Err error

	// Retries is the retry budget consumed before the skip.
	Retries int

	// Trace replays the scenario's solver retry ladder (one solver_retry
	// event per re-attempt with the relaxation factor, warm/cold restart
	// and injection provenance) so fault-tolerance reports can name the
	// exact degradation sequence instead of just counting retries.
	Trace *telemetry.TraceSnapshot
}

// Dataset is a set of samples with its feature/label geometry.
type Dataset struct {
	Samples   []Sample
	Junctions []int // junction node indices labeling the output columns

	// Skipped lists scenarios dropped after retry exhaustion, in
	// generation order. Empty on clean runs and always empty under
	// Config.FailFast.
	Skipped []SkippedScenario
}

// X returns the feature matrix view.
func (d *Dataset) X() [][]float64 {
	out := make([][]float64, len(d.Samples))
	for i := range d.Samples {
		out[i] = d.Samples[i].Features
	}
	return out
}

// Y returns the label matrix view.
func (d *Dataset) Y() [][]int {
	out := make([][]int, len(d.Samples))
	for i := range d.Samples {
		out[i] = d.Samples[i].Labels
	}
	return out
}

// Factory generates datasets for one network and sensor set.
type Factory struct {
	net       *network.Network
	sensors   []sensor.Sensor
	cfg       Config
	inj       *faults.Injector // nil when fault injection is disabled
	junctions []int
	jIndex    map[int]int // node index → junction column

	// Leak-free baseline readings are cached per reading time so the
	// feature is the pure leak-induced change: the "before" reading is
	// the expected no-leak state at the same clock time as the post-leak
	// reading, which removes demand-pattern drift from the delta.
	mu         sync.Mutex
	baseSolver *hydraulic.Solver
	baseCache  map[time.Duration][]float64

	met factoryMetrics
}

// factoryMetrics are the factory's telemetry handles, bound once at
// NewFactory and shared by every session; all nil (free no-ops) when
// telemetry is disabled at construction time.
type factoryMetrics struct {
	samples        *telemetry.Counter
	sessionsOpened *telemetry.Counter
	sessionReuse   *telemetry.Counter
	baselineHits   *telemetry.Counter
	baselineMisses *telemetry.Counter
	retries        *telemetry.Counter
	skipped        *telemetry.Counter
	badFeatures    *telemetry.Counter
	sampleSeconds  *telemetry.Histogram
}

func bindFactoryMetrics() factoryMetrics {
	reg := telemetry.Default()
	return factoryMetrics{
		samples:        reg.Counter("dataset_samples_generated_total"),
		sessionsOpened: reg.Counter("dataset_sessions_opened_total"),
		sessionReuse:   reg.Counter("dataset_session_reuse_total"),
		baselineHits:   reg.Counter("dataset_baseline_cache_hits_total"),
		baselineMisses: reg.Counter("dataset_baseline_cache_misses_total"),
		retries:        reg.Counter("dataset_retries_total"),
		skipped:        reg.Counter("dataset_skipped_total"),
		badFeatures:    reg.Counter("dataset_bad_features_total"),
		sampleSeconds:  reg.Histogram("dataset_sample_seconds", telemetry.ExpBuckets(1e-4, 2, 16)),
	}
}

// NewFactory prepares a factory: it validates the network, solves the
// leak-free baseline at e.t−1 once, and caches the noise-free baseline
// readings.
func NewFactory(net *network.Network, sensors []sensor.Sensor, cfg Config) (*Factory, error) {
	cfg = cfg.withDefaults()
	if len(sensors) == 0 {
		return nil, fmt.Errorf("dataset: no sensors")
	}
	solver, err := hydraulic.NewSolver(net, cfg.Solver)
	if err != nil {
		return nil, err
	}
	inj, err := faults.New(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	f := &Factory{
		net:        net,
		sensors:    append([]sensor.Sensor(nil), sensors...),
		cfg:        cfg,
		inj:        inj,
		junctions:  net.JunctionIndices(),
		baseSolver: solver,
		baseCache:  make(map[time.Duration][]float64),
		met:        bindFactoryMetrics(),
	}
	f.jIndex = make(map[int]int, len(f.junctions))
	for col, nodeIdx := range f.junctions {
		f.jIndex[nodeIdx] = col
	}
	// Fail fast if the network cannot sustain a baseline solve.
	if _, err := f.baselineAt(f.cfg.BaseTime); err != nil {
		return nil, fmt.Errorf("dataset: baseline solve: %w", err)
	}
	return f, nil
}

// baselineAt returns the cached noise-free leak-free readings at time t.
func (f *Factory) baselineAt(t time.Duration) ([]float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if vals, ok := f.baseCache[t]; ok {
		f.met.baselineHits.Inc()
		return vals, nil
	}
	f.met.baselineMisses.Inc()
	res, err := f.baseSolver.SolveSteady(t, nil, nil)
	if err != nil {
		return nil, err
	}
	vals := sensor.Read(f.sensors, res, sensor.Noise{}, nil)
	f.baseCache[t] = vals
	return vals, nil
}

// Junctions returns the node indices labeling the output columns.
func (f *Factory) Junctions() []int {
	return append([]int(nil), f.junctions...)
}

// SensorCount returns the feature dimension.
func (f *Factory) SensorCount() int { return len(f.sensors) }

// BaseTime returns the configured leak-onset clock time within the
// demand-pattern day.
func (f *Factory) BaseTime() time.Duration { return f.cfg.BaseTime }

// BaselineReadings returns the noise-free leak-free sensor readings at
// clock time t, solving at most once per distinct t (the result is
// cached). The returned slice is shared — treat it as read-only.
func (f *Factory) BaselineReadings(t time.Duration) ([]float64, error) {
	return f.baselineAt(t)
}

// JunctionColumn maps a node index to its label column (-1 if the node is
// not a junction).
func (f *Factory) JunctionColumn(nodeIdx int) int {
	if col, ok := f.jIndex[nodeIdx]; ok {
		return col
	}
	return -1
}

// FromScenario builds one sample for a specific scenario at the factory's
// configured elapsed-slot count. The rng adds sensor noise (nil for
// noise-free features).
func (f *Factory) FromScenario(sc leak.Scenario, rng *rand.Rand) (Sample, error) {
	return f.FromScenarioAt(sc, f.cfg.ElapsedSlots, rng)
}

// FromScenarioAt builds one sample with an explicit elapsed-slot count n —
// the post-leak reading is taken at e.t + n·Step. Used by online
// evaluation to model observations arriving later than the training
// configuration.
//
// This is the documented slow path: it constructs a throwaway
// hydraulic.Solver on every call. Code that builds many samples (dataset
// generation, Phase-II evaluation sweeps) should open a Session once and
// call Session.FromScenarioAt instead, amortizing solver construction
// across scenarios.
func (f *Factory) FromScenarioAt(sc leak.Scenario, elapsedSlots int, rng *rand.Rand) (Sample, error) {
	sess, err := f.NewSession()
	if err != nil {
		return Sample{}, err
	}
	return sess.FromScenarioAt(sc, elapsedSlots, rng)
}

// Session carries a dedicated hydraulic solver for repeated sample
// construction, so hot loops pay for solver construction once instead of
// once per scenario. The underlying factory (junction geometry, baseline
// cache) is shared and safe to use from many sessions concurrently; a
// Session itself is NOT safe for concurrent use — open one per goroutine.
//
// Solves are cold-started from fixed initial guesses, so a reused session
// produces bit-identical samples to a fresh solver per call.
type Session struct {
	f      *Factory
	solver *hydraulic.Solver
	used   bool // a sample was already built — later builds are reuse hits
}

// NewSession opens a sample-building session with its own solver.
func (f *Factory) NewSession() (*Session, error) {
	solver, err := hydraulic.NewSolver(f.net, f.cfg.Solver)
	if err != nil {
		return nil, fmt.Errorf("dataset: session solver: %w", err)
	}
	f.met.sessionsOpened.Inc()
	return &Session{f: f, solver: solver}, nil
}

// FromScenario builds one sample at the factory's configured elapsed-slot
// count, reusing the session's solver.
func (s *Session) FromScenario(sc leak.Scenario, rng *rand.Rand) (Sample, error) {
	return s.FromScenarioAt(sc, s.f.cfg.ElapsedSlots, rng)
}

// FromScenarioAt builds one sample with an explicit elapsed-slot count,
// reusing the session's solver.
func (s *Session) FromScenarioAt(sc leak.Scenario, elapsedSlots int, rng *rand.Rand) (Sample, error) {
	if s.used {
		s.f.met.sessionReuse.Inc()
	}
	s.used = true
	return s.f.fromScenario(s.solver, sc, elapsedSlots, rng)
}

func (f *Factory) fromScenario(solver *hydraulic.Solver, sc leak.Scenario, elapsedSlots int, rng *rand.Rand) (Sample, error) {
	var start time.Time
	if f.met.sampleSeconds != nil {
		start = time.Now()
	}
	if elapsedSlots <= 0 {
		elapsedSlots = f.cfg.ElapsedSlots
	}
	// Fault draws come from a dedicated stream seeded by one draw from the
	// scenario rng, so the injection schedule is per-scenario deterministic
	// and — with faults disabled — the noise stream is exactly the
	// historical one (no draw happens at all).
	var faultRng *rand.Rand
	if f.inj.Enabled() && rng != nil {
		faultRng = rand.New(rand.NewSource(rng.Int63()))
		solver.SetFailureHook(f.inj.SolveHook(faultRng))
		defer solver.SetFailureHook(nil)
	}
	readTime := f.cfg.BaseTime + time.Duration(elapsedSlots)*f.cfg.Step
	res, stats, err := solver.SolveSteadyRetry(readTime, sc.Emitters(), nil, f.cfg.Retry)
	f.met.retries.Add(int64(stats.Retries))
	if err != nil {
		return Sample{}, &ScenarioError{Retries: stats.Retries, Err: err, Steps: stats.Steps}
	}
	after := sensor.Read(f.sensors, res, f.cfg.Noise, rng)
	baseTruth, err := f.baselineAt(readTime)
	if err != nil {
		return Sample{}, fmt.Errorf("dataset: baseline solve: %w", err)
	}
	before := f.noisyBaseline(baseTruth, rng)
	// Sensor faults perturb the post-leak reading: a stuck sensor reports
	// the stale pre-leak value (zero delta), dropout and NaN glitches
	// become non-finite readings sanitized below.
	f.inj.PerturbReadings(after, before, faultRng)
	labels := make([]int, len(f.junctions))
	for _, e := range sc.Events {
		if col, ok := f.jIndex[e.Node]; ok {
			labels[col] = 1
		}
	}
	features := sensor.Delta(before, after)
	// Degraded-input guard: a non-finite reading must become a neutral
	// feature, not silently poison training or inference downstream. (NaN
	// propagates through every classifier dot product unnoticed.)
	bad := 0
	for i, v := range features {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			features[i] = 0
			bad++
		}
	}
	f.met.badFeatures.Add(int64(bad))
	f.met.samples.Inc()
	if f.met.sampleSeconds != nil {
		f.met.sampleSeconds.ObserveDuration(time.Since(start))
	}
	return Sample{
		Features:   features,
		Labels:     labels,
		Scenario:   sc,
		Retries:    stats.Retries,
		RetrySteps: stats.Steps,
	}, nil
}

// RetryTrace synthesizes a trace snapshot replaying a scenario's solver
// retry ladder: one solver_retry event per re-attempt carrying the
// relaxation factor and a warm/cold + injected/real detail, plus the
// terminal error when the ladder was exhausted. Returns nil when the
// scenario never retried (no trace to tell).
func RetryTrace(job string, steps []hydraulic.RetryStep, err error) *telemetry.TraceSnapshot {
	if len(steps) == 0 && err == nil {
		return nil
	}
	tr := telemetry.NewTrace(telemetry.TraceID{})
	tr.SetJob(job)
	for _, st := range steps {
		detail := "cold"
		if st.Warm {
			detail = "warm"
		}
		if st.Injected {
			detail += ",injected"
		}
		tr.EventDetail(telemetry.StageSolverRetry, st.Relaxation, detail)
	}
	tr.Fail(err)
	tr.Event(telemetry.StageDone)
	return tr.Snapshot()
}

// noisyBaseline perturbs noise-free baseline readings with fresh
// measurement noise, simulating the independent pre-leak reading. The
// per-kind noise model is sensor.ApplyNoise — the same switch Read uses —
// so both reading paths stay in lockstep.
func (f *Factory) noisyBaseline(baseTruth []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(baseTruth))
	copy(out, baseTruth)
	sensor.ApplyNoise(f.sensors, out, f.cfg.Noise, rng)
	return out
}

// Generate draws count random scenarios and builds their samples in
// parallel. The result is deterministic for a given rng seed regardless of
// worker scheduling: scenarios and per-sample noise seeds are drawn
// sequentially up front.
//
// A scenario whose hydraulic solve still fails after the configured
// retries is skipped and recorded in Dataset.Skipped (in generation
// order) instead of aborting the run — unless Config.FailFast is set,
// which restores the historical first-error-aborts behavior. Only
// non-convergence is skippable; any other error (a programming or data
// defect) aborts either way. Generate fails outright if every scenario
// is skipped.
func (f *Factory) Generate(count int, rng *rand.Rand) (*Dataset, error) {
	return f.GenerateContext(context.Background(), count, rng)
}

// GenerateContext is Generate with cancellation: ctx is observed between
// scenarios, so a cancelled call returns within roughly one scenario's
// solve latency. On cancellation it returns the partial dataset — every
// sample fully built before the cancel, in scenario order — together
// with ctx.Err(), so long-running generation can be interrupted without
// losing completed work. An uncancelled call is bit-identical to
// Generate for the same rng seed.
func (f *Factory) GenerateContext(ctx context.Context, count int, rng *rand.Rand) (*Dataset, error) {
	if count <= 0 {
		return nil, fmt.Errorf("dataset: non-positive sample count %d", count)
	}
	gen, err := leak.NewGenerator(f.net, f.cfg.Leaks, rng)
	if err != nil {
		return nil, err
	}
	scenarios := gen.Batch(count)
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	samples := make([]Sample, count)
	errs := make([]error, count)
	workers := runtime.NumCPU()
	if workers > count {
		workers = count
	}
	// Per-worker sessions are constructed up front so a solver-construction
	// failure surfaces here as one deterministic error, instead of being
	// smeared over whichever work items the broken worker happened to drain
	// (which made error attribution scheduling-dependent).
	sessions := make([]*Session, workers)
	for w := range sessions {
		sess, err := f.NewSession()
		if err != nil {
			return nil, err
		}
		sessions[w] = sess
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			for i := range work {
				noiseRng := rand.New(rand.NewSource(seeds[i]))
				samples[i], errs[i] = sess.FromScenarioAt(scenarios[i], f.cfg.ElapsedSlots, noiseRng)
			}
		}(sessions[w])
	}
	// Dispatch observes ctx between scenarios: on cancellation no further
	// scenario starts, in-flight solves finish, and the reduction below
	// only covers what was dispatched.
	dispatched := count
dispatch:
	for i := 0; i < count; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			dispatched = i
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	// Reduce in scenario order so both the fail-fast error and the skip
	// report are deterministic for any worker scheduling.
	kept := make([]Sample, 0, dispatched)
	var skipped []SkippedScenario
	for i, err := range errs[:dispatched] {
		if err == nil {
			kept = append(kept, samples[i])
			continue
		}
		if f.cfg.FailFast || !errors.Is(err, hydraulic.ErrNotConverged) {
			return nil, err
		}
		retries := 0
		var steps []hydraulic.RetryStep
		var se *ScenarioError
		if errors.As(err, &se) {
			retries = se.Retries
			steps = se.Steps
		}
		skipped = append(skipped, SkippedScenario{
			Index:    i,
			Scenario: scenarios[i],
			Err:      err,
			Retries:  retries,
			Trace:    RetryTrace(fmt.Sprintf("scenario-%d", i), steps, err),
		})
	}
	f.met.skipped.Add(int64(len(skipped)))
	if ctxErr := ctx.Err(); ctxErr != nil {
		return &Dataset{Samples: kept, Junctions: f.Junctions(), Skipped: skipped}, ctxErr
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("dataset: all %d scenarios failed (first: %w)", count, skipped[0].Err)
	}
	return &Dataset{Samples: kept, Junctions: f.Junctions(), Skipped: skipped}, nil
}
