package dataset

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// testNetFactory builds a factory on the small test network so context
// tests stay fast enough to run many scenarios.
func testNetFactory(t *testing.T) *Factory {
	t.Helper()
	net := network.BuildTestNet()
	j, ok := net.NodeIndex("J2")
	if !ok {
		t.Fatal("test network lost node J2")
	}
	f, err := NewFactory(net, []sensor.Sensor{{Kind: sensor.Pressure, Index: j}}, Config{
		Noise: sensor.DefaultNoise,
		Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	return f
}

func TestGenerateContextPreCancelled(t *testing.T) {
	f := testNetFactory(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := f.GenerateContext(ctx, 10, rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ds == nil {
		t.Fatal("cancelled GenerateContext should still return the partial dataset")
	}
	if len(ds.Samples) != 0 {
		t.Fatalf("%d samples built before any dispatch", len(ds.Samples))
	}
}

func TestGenerateContextMidRunCancel(t *testing.T) {
	f := testNetFactory(t)
	// Large count so the run outlives the cancel timer on any machine.
	const count = 2000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	ds, err := f.GenerateContext(ctx, count, rand.New(rand.NewSource(3)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ds == nil {
		t.Fatal("cancelled GenerateContext should still return the partial dataset")
	}
	if len(ds.Samples) >= count {
		t.Fatalf("samples = %d, want < %d after cancel", len(ds.Samples), count)
	}
	// Every kept sample is fully built, in scenario order.
	for i, s := range ds.Samples {
		if len(s.Features) != f.SensorCount() || len(s.Labels) != len(f.Junctions()) {
			t.Fatalf("partial sample %d: %d features, %d labels", i, len(s.Features), len(s.Labels))
		}
	}
}

func TestGenerateContextBackgroundMatchesLegacy(t *testing.T) {
	f := testNetFactory(t)
	legacy, err := f.Generate(25, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	viaCtx, err := f.GenerateContext(context.Background(), 25, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("GenerateContext: %v", err)
	}
	if len(legacy.Samples) != len(viaCtx.Samples) {
		t.Fatalf("sample counts diverge: %d vs %d", len(legacy.Samples), len(viaCtx.Samples))
	}
	for i := range legacy.Samples {
		for j := range legacy.Samples[i].Features {
			if legacy.Samples[i].Features[j] != viaCtx.Samples[i].Features[j] {
				t.Fatalf("sample %d feature %d: %v vs %v", i, j,
					legacy.Samples[i].Features[j], viaCtx.Samples[i].Features[j])
			}
		}
		for j := range legacy.Samples[i].Labels {
			if legacy.Samples[i].Labels[j] != viaCtx.Samples[i].Labels[j] {
				t.Fatalf("sample %d label %d diverges", i, j)
			}
		}
	}
}
