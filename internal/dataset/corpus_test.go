package dataset

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// dirBytes reads every shard file in dir into a name → content map.
func dirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, shardFileGlob))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		out[filepath.Base(p)] = b
	}
	return out
}

// sameShardSet asserts two corpus directories hold byte-identical shard
// sets.
func sameShardSet(t *testing.T, gotDir, wantDir string) {
	t.Helper()
	got, want := dirBytes(t, gotDir), dirBytes(t, wantDir)
	if len(got) != len(want) {
		t.Fatalf("shard count %d, want %d", len(got), len(want))
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			t.Fatalf("shard %s missing", name)
		}
		if string(g) != string(want[name]) {
			t.Fatalf("shard %s bytes diverge (%d vs %d bytes)", name, len(g), len(want[name]))
		}
	}
}

// TestGenerateCorpusRoundTrip pins the tentpole equivalence: the
// streamed corpus at seed s holds exactly the samples Generate produces
// with rng seed s — features bitwise, labels, retries, order.
func TestGenerateCorpusRoundTrip(t *testing.T) {
	f := testNetFactory(t)
	const count, seed = 40, 9

	ds, err := f.Generate(count, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dir := t.TempDir()
	res, err := f.GenerateCorpus(context.Background(), count, seed, dir, CorpusOptions{ShardSamples: 16})
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	if res.Shards != 3 || res.ShardsWritten != 3 || res.ShardsResumed != 0 {
		t.Fatalf("result shards = %d written %d resumed %d, want 3/3/0",
			res.Shards, res.ShardsWritten, res.ShardsResumed)
	}
	if res.Scenarios != count || res.Samples != len(ds.Samples) || res.Bytes <= 0 {
		t.Fatalf("result = %+v, want %d scenarios, %d samples", res, count, len(ds.Samples))
	}

	r, err := OpenCorpus(dir)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}
	if r.Seed() != seed || r.Deployment() != f.DeploymentFingerprint() || r.ConfigDigest() != f.ConfigDigest() {
		t.Fatalf("corpus meta drifted: seed %d dep %x cfg %x", r.Seed(), r.Deployment(), r.ConfigDigest())
	}
	if r.FeatureDim() != f.SensorCount() || r.Shards() != 3 ||
		r.SampleCount() != len(ds.Samples) || r.ScenarioCount() != count {
		t.Fatalf("corpus geometry drifted: %d features, %d shards, %d samples, %d scenarios",
			r.FeatureDim(), r.Shards(), r.SampleCount(), r.ScenarioCount())
	}
	junctions := r.Junctions()
	wantJ := f.Junctions()
	if len(junctions) != len(wantJ) {
		t.Fatalf("junction table length %d, want %d", len(junctions), len(wantJ))
	}
	for i := range junctions {
		if junctions[i] != wantJ[i] {
			t.Fatalf("junction column %d = node %d, want %d", i, junctions[i], wantJ[i])
		}
	}
	if err := r.Match(f); err != nil {
		t.Fatalf("Match against own factory: %v", err)
	}

	// The test network converges without retries, so kept == generated
	// and sample i is scenario i.
	if len(ds.Skipped) != 0 {
		t.Fatalf("unexpected skips on the test network: %d", len(ds.Skipped))
	}
	i := 0
	err = r.Each(context.Background(), func(s *CorpusSample) error {
		want := ds.Samples[i]
		if s.Index != i || s.Retries != want.Retries {
			t.Fatalf("sample %d: index %d retries %d, want %d/%d",
				i, s.Index, s.Retries, i, want.Retries)
		}
		for j := range want.Features {
			if math.Float64bits(s.Features[j]) != math.Float64bits(want.Features[j]) {
				t.Fatalf("sample %d feature %d: corpus %v != in-memory %v",
					i, j, s.Features[j], want.Features[j])
			}
		}
		for col, v := range want.Labels {
			if s.Label(col) != v {
				t.Fatalf("sample %d label %d: corpus %d != in-memory %d", i, col, s.Label(col), v)
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("Each: %v", err)
	}
	if i != len(ds.Samples) {
		t.Fatalf("iterated %d samples, want %d", i, len(ds.Samples))
	}
}

// TestGenerateCorpusResumeByteIdentical pins the resume contract:
// delete one shard, truncate another, bit-flip a third, drop crash
// debris — and the resumed run regenerates exactly the damaged shards,
// converging to the byte-identical shard set of an uninterrupted run.
func TestGenerateCorpusResumeByteIdentical(t *testing.T) {
	f := testNetFactory(t)
	const count, seed = 40, 11
	opt := CorpusOptions{ShardSamples: 10}

	ref := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), count, seed, ref, opt); err != nil {
		t.Fatalf("reference GenerateCorpus: %v", err)
	}
	dir := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), count, seed, dir, opt); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}

	// Damage three of the four shards plus leave crash debris behind.
	if err := os.Remove(shardPath(dir, 3)); err != nil {
		t.Fatalf("remove: %v", err)
	}
	b, err := os.ReadFile(shardPath(dir, 1))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(shardPath(dir, 1), b[:len(b)/2], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	b, err = os.ReadFile(shardPath(dir, 2))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	b[len(b)-10] ^= 0x40
	if err := os.WriteFile(shardPath(dir, 2), b, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if err := os.WriteFile(shardPath(dir, 0)+".tmp", []byte("debris"), 0o644); err != nil {
		t.Fatalf("debris: %v", err)
	}

	opt.Resume = true
	res, err := f.GenerateCorpus(context.Background(), count, seed, dir, opt)
	if err != nil {
		t.Fatalf("resumed GenerateCorpus: %v", err)
	}
	if res.ShardsResumed != 1 || res.ShardsWritten != 3 {
		t.Fatalf("resumed %d written %d, want 1 resumed / 3 written", res.ShardsResumed, res.ShardsWritten)
	}
	sameShardSet(t, dir, ref)
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("staging debris survived resume: %v", tmps)
	}
}

// TestGenerateCorpusRefusesDirtyDir pins the non-resume guard: writing
// into a directory that already holds shards requires explicit Resume.
func TestGenerateCorpusRefusesDirtyDir(t *testing.T) {
	f := testNetFactory(t)
	dir := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), 10, 3, dir, CorpusOptions{ShardSamples: 10}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	_, err := f.GenerateCorpus(context.Background(), 10, 3, dir, CorpusOptions{ShardSamples: 10})
	if err == nil || !strings.Contains(err.Error(), "already holds") {
		t.Fatalf("dirty dir error = %v, want refusal naming the directory state", err)
	}
}

// TestGenerateCorpusResumeMismatch pins the fail-fast guard: resuming
// into a valid corpus generated with different parameters must not
// absorb or clobber it, and the error names both sides.
func TestGenerateCorpusResumeMismatch(t *testing.T) {
	f := testNetFactory(t)
	dir := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), 10, 3, dir, CorpusOptions{ShardSamples: 10}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}

	_, err := f.GenerateCorpus(context.Background(), 10, 4, dir, CorpusOptions{ShardSamples: 10, Resume: true})
	if !errors.Is(err, ErrCorpusMismatch) {
		t.Fatalf("seed mismatch error = %v, want ErrCorpusMismatch", err)
	}
	for _, frag := range []string{"seed 3", "seed 4"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("mismatch error %q does not name %q", err, frag)
		}
	}

	// Different partitioning of the same scenarios is also a different
	// corpus.
	_, err = f.GenerateCorpus(context.Background(), 10, 3, dir, CorpusOptions{ShardSamples: 5, Resume: true})
	if !errors.Is(err, ErrCorpusMismatch) || !strings.Contains(err.Error(), "-shard-samples") {
		t.Fatalf("partition mismatch error = %v, want ErrCorpusMismatch naming -shard-samples", err)
	}
}

// TestCorpusReaderMatchGuards pins the deployment/config guards with
// real error text: both fingerprints must appear in the message.
func TestCorpusReaderMatchGuards(t *testing.T) {
	f := testNetFactory(t)
	dir := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), 10, 3, dir, CorpusOptions{ShardSamples: 10}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	r, err := OpenCorpus(dir)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}

	net := network.BuildTestNet()
	j, ok := net.NodeIndex("J2")
	if !ok {
		t.Fatal("test network lost node J2")
	}
	k, ok := net.NodeIndex("J3")
	if !ok {
		t.Fatal("test network lost node J3")
	}

	// Different sensor set → deployment fingerprint mismatch.
	other, err := NewFactory(net, []sensor.Sensor{
		{Kind: sensor.Pressure, Index: j},
		{Kind: sensor.Pressure, Index: k},
	}, Config{
		Noise: sensor.DefaultNoise,
		Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	err = r.Match(other)
	if !errors.Is(err, ErrCorpusMismatch) {
		t.Fatalf("deployment mismatch error = %v, want ErrCorpusMismatch", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "deployment fingerprint") ||
		!strings.Contains(msg, fmtHex(r.Deployment())) ||
		!strings.Contains(msg, fmtHex(other.DeploymentFingerprint())) {
		t.Fatalf("deployment mismatch message %q does not name both fingerprints", msg)
	}

	// Same deployment, different generation Config → digest mismatch.
	other2, err := NewFactory(net, []sensor.Sensor{{Kind: sensor.Pressure, Index: j}}, Config{
		Noise: sensor.Noise{PressureStd: 0.5},
		Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	err = r.Match(other2)
	if !errors.Is(err, ErrCorpusMismatch) {
		t.Fatalf("config mismatch error = %v, want ErrCorpusMismatch", err)
	}
	msg = err.Error()
	if !strings.Contains(msg, "config digest") ||
		!strings.Contains(msg, fmtHex(r.ConfigDigest())) ||
		!strings.Contains(msg, fmtHex(other2.ConfigDigest())) {
		t.Fatalf("config mismatch message %q does not name both digests", msg)
	}
}

// fmtHex matches the %016x rendering the mismatch errors use.
func fmtHex(v uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[v&0xf]
		v >>= 4
	}
	return string(out)
}

// TestOpenCorpusDetectsGaps pins corpus-level validation: a missing
// middle shard is an incomplete corpus, not a shorter one.
func TestOpenCorpusDetectsGaps(t *testing.T) {
	f := testNetFactory(t)
	dir := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), 30, 3, dir, CorpusOptions{ShardSamples: 10}); err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	if err := os.Remove(shardPath(dir, 1)); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := OpenCorpus(dir); !errors.Is(err, ErrCorpusMismatch) {
		t.Fatalf("gapped corpus error = %v, want ErrCorpusMismatch", err)
	}
}

// TestGenerateCorpusCancelMidRun pins cancellation semantics: a
// cancelled run leaves only fully verified shards (a partial shard is
// absent, never valid-looking), and resuming converges to the
// byte-identical full corpus.
func TestGenerateCorpusCancelMidRun(t *testing.T) {
	f := testNetFactory(t)
	const count, seed = 1200, 5
	opt := CorpusOptions{ShardSamples: 25}

	ref := t.TempDir()
	if _, err := f.GenerateCorpus(context.Background(), count, seed, ref, opt); err != nil {
		t.Fatalf("reference GenerateCorpus: %v", err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	slow := opt
	slow.Workers = 1 // one scenario at a time, so the cancel lands mid-run
	res, err := f.GenerateCorpus(ctx, count, seed, dir, slow)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.ShardsWritten >= res.Shards {
		t.Fatalf("cancelled run wrote %+v, want a strict subset of shards", res)
	}

	// Every shard on disk is complete and verified; nothing half-written
	// is visible under a shard name.
	paths, err := filepath.Glob(filepath.Join(dir, shardFileGlob))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(paths) != res.ShardsWritten {
		t.Fatalf("%d shard files after cancel, result says %d", len(paths), res.ShardsWritten)
	}
	for _, p := range paths {
		if _, err := VerifyShard(p); err != nil {
			t.Fatalf("cancelled run left unverifiable shard %s: %v", p, err)
		}
	}

	opt.Resume = true
	if _, err := f.GenerateCorpus(context.Background(), count, seed, dir, opt); err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	sameShardSet(t, dir, ref)
}

// TestGenerateCorpusPreCancelled mirrors the GenerateContext contract.
func TestGenerateCorpusPreCancelled(t *testing.T) {
	f := testNetFactory(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.GenerateCorpus(ctx, 10, 1, t.TempDir(), CorpusOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
