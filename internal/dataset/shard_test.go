package dataset

import (
	"context"
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// syntheticShardHeader describes a corpus geometry used by the
// format-level tests, with no hydraulics behind it.
func syntheticShardHeader(shard, shardCount, firstScenario, scenarios, featDim, juncs int) ShardHeader {
	junctions := make([]int, juncs)
	for i := range junctions {
		junctions[i] = i + 3 // arbitrary node indices
	}
	return ShardHeader{
		Seed:          424242,
		Deployment:    0xfeedc0de,
		ConfigDigest:  0xabad1dea,
		Shard:         shard,
		ShardCount:    shardCount,
		FirstScenario: firstScenario,
		Scenarios:     scenarios,
		FeatureDim:    featDim,
		Junctions:     junctions,
	}
}

// writeSyntheticShard writes one shard with deterministic content:
// scenario first+i, retries i%3, feature j of sample i is i·1000+j, and
// label column v of sample i is set iff (i+v)%7 == 0.
func writeSyntheticShard(t testing.TB, path string, hdr ShardHeader) {
	t.Helper()
	w, err := NewShardWriter(path, hdr)
	if err != nil {
		t.Fatalf("NewShardWriter: %v", err)
	}
	features := make([]float64, hdr.FeatureDim)
	labels := make([]int, len(hdr.Junctions))
	for i := 0; i < hdr.Scenarios; i++ {
		for j := range features {
			features[j] = float64(i*1000 + j)
		}
		for v := range labels {
			labels[v] = 0
			if (i+v)%7 == 0 {
				labels[v] = 1
			}
		}
		if err := w.Append(hdr.FirstScenario+i, i%3, features, labels); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestShardRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-00000.aqsc")
	hdr := syntheticShardHeader(0, 1, 0, 9, 4, 11)
	writeSyntheticShard(t, path, hdr)

	got, err := VerifyShard(path)
	if err != nil {
		t.Fatalf("VerifyShard: %v", err)
	}
	if got.Version != ShardFormatVersion || got.Seed != hdr.Seed ||
		got.Deployment != hdr.Deployment || got.ConfigDigest != hdr.ConfigDigest ||
		got.Samples != 9 || got.Scenarios != 9 || got.FeatureDim != 4 ||
		len(got.Junctions) != 11 {
		t.Fatalf("header round trip drifted: %+v", got)
	}
	for i, node := range got.Junctions {
		if node != i+3 {
			t.Fatalf("junction table[%d] = %d, want %d", i, node, i+3)
		}
	}

	i := 0
	labels := make([]int, 0, 11)
	_, err = ReadShard(path, func(s *CorpusSample) error {
		if s.Index != i || s.Retries != i%3 {
			t.Fatalf("sample %d: index %d retries %d", i, s.Index, s.Retries)
		}
		for j, v := range s.Features {
			if v != float64(i*1000+j) {
				t.Fatalf("sample %d feature %d = %v", i, j, v)
			}
		}
		if s.LabelCount() != 11 {
			t.Fatalf("LabelCount = %d", s.LabelCount())
		}
		labels = s.Labels(labels[:0])
		for v := 0; v < 11; v++ {
			want := 0
			if (i+v)%7 == 0 {
				want = 1
			}
			if s.Label(v) != want || labels[v] != want {
				t.Fatalf("sample %d label %d = %d/%d, want %d", i, v, s.Label(v), labels[v], want)
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("ReadShard: %v", err)
	}
	if i != 9 {
		t.Fatalf("yielded %d samples, want 9", i)
	}
}

// TestShardTypedErrors pins the corruption contract: every way a shard
// file can be unusable maps to exactly one typed sentinel, and version
// is checked before any checksum so future-format shards report as such.
func TestShardTypedErrors(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.aqsc")
	writeSyntheticShard(t, ref, syntheticShardHeader(0, 1, 0, 6, 3, 9))
	valid, err := os.ReadFile(ref)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrShardFormat},
		{"future version", func(b []byte) []byte { b[4] = 99; return b }, ErrShardVersion},
		{"header bit flip", func(b []byte) []byte { b[10] ^= 0x01; return b }, ErrShardChecksum},
		{"payload bit flip", func(b []byte) []byte { b[len(b)-9] ^= 0x01; return b }, ErrShardChecksum},
		{"truncated header", func(b []byte) []byte { return b[:30] }, ErrShardTruncated},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, ErrShardTruncated},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xaa) }, ErrShardFormat},
		{"empty file", func(b []byte) []byte { return nil }, ErrShardTruncated},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, "mut-"+tc.name+".aqsc")
			if err := os.WriteFile(p, tc.mutate(append([]byte(nil), valid...)), 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			if _, err := VerifyShard(p); !errors.Is(err, tc.want) {
				t.Fatalf("VerifyShard error = %v, want %v", err, tc.want)
			}
			// Corrupt shards must never leak samples to the callback.
			if _, err := ReadShard(p, func(*CorpusSample) error {
				t.Fatal("corrupt shard yielded a sample")
				return nil
			}); !errors.Is(err, tc.want) {
				t.Fatalf("ReadShard error = %v, want %v", err, tc.want)
			}
		})
	}

	if _, err := VerifyShard(filepath.Join(dir, "nope.aqsc")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing shard error = %v, want fs.ErrNotExist", err)
	}
}

// buildSyntheticCorpus writes a consistent multi-shard corpus and
// returns its directory and per-shard byte size.
func buildSyntheticCorpus(t testing.TB, shards, perShard, featDim, juncs int) (string, int) {
	t.Helper()
	dir := t.TempDir()
	for si := 0; si < shards; si++ {
		hdr := syntheticShardHeader(si, shards, si*perShard, perShard, featDim, juncs)
		writeSyntheticShard(t, shardPath(dir, si), hdr)
	}
	rec := 8 + 8*featDim + (juncs+7)/8
	return dir, rec * perShard
}

// TestCorpusReaderBoundedMemory is the out-of-core guard: a full
// iteration's steady-state allocations must be O(shard), not O(corpus).
// The corpus here is ~12 shards; after a warm-up pass the reader's
// buffers are sized, so a second full pass may allocate on the order of
// one shard (open/stat/header per shard), never the corpus.
func TestCorpusReaderBoundedMemory(t *testing.T) {
	const shards, perShard, featDim, juncs = 12, 96, 256, 512
	dir, shardBytes := buildSyntheticCorpus(t, shards, perShard, featDim, juncs)
	corpusBytes := shardBytes * shards

	r, err := OpenCorpus(dir)
	if err != nil {
		t.Fatalf("OpenCorpus: %v", err)
	}
	var sink float64
	pass := func() {
		if err := r.Each(context.Background(), func(s *CorpusSample) error {
			sink += s.Features[0]
			return nil
		}); err != nil {
			t.Fatalf("Each: %v", err)
		}
	}
	pass() // size the reusable buffers

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	pass()
	runtime.ReadMemStats(&after)
	delta := after.TotalAlloc - before.TotalAlloc
	ceiling := uint64(2*shardBytes) + 1<<16
	if delta > ceiling {
		t.Errorf("steady-state pass allocated %d bytes; ceiling %d (shard %d bytes, corpus %d bytes)",
			delta, ceiling, shardBytes, corpusBytes)
	}
	if math.IsNaN(sink) {
		t.Fatal("sink NaN")
	}
}

// FuzzShardRead feeds arbitrary bytes to the shard decoder: it must
// return nil or one of the typed sentinels and never panic — a shard
// that fails verification must yield zero samples.
func FuzzShardRead(f *testing.F) {
	ref := filepath.Join(f.TempDir(), "seed.aqsc")
	writeSyntheticShard(f, ref, syntheticShardHeader(0, 1, 0, 5, 3, 10))
	valid, err := os.ReadFile(ref)
	if err != nil {
		f.Fatalf("ReadFile: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("AQSC"))
	flipped := append([]byte(nil), valid...)
	flipped[4] = 2 // future version
	f.Add(flipped)
	huge := append([]byte(nil), valid...)
	huge[56], huge[57], huge[58], huge[59] = 0xff, 0xff, 0xff, 0xff // junction-count bomb
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.aqsc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		yielded := 0
		_, err := ReadShard(path, func(s *CorpusSample) error {
			yielded++
			if len(s.Features) == 0 || s.LabelCount() <= 0 {
				t.Fatalf("yielded sample with empty geometry: %d features, %d labels",
					len(s.Features), s.LabelCount())
			}
			return nil
		})
		if err == nil {
			return
		}
		if yielded != 0 {
			t.Fatalf("decoder yielded %d samples from a shard it then rejected: %v", yielded, err)
		}
		switch {
		case errors.Is(err, ErrShardFormat),
			errors.Is(err, ErrShardVersion),
			errors.Is(err, ErrShardTruncated),
			errors.Is(err, ErrShardChecksum):
		default:
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}
