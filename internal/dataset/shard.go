// Shard wire format for the out-of-core scenario corpus.
//
// A corpus is a directory of shard files, each holding a contiguous run
// of generation-order scenarios as fixed-size little-endian sample
// records behind a self-describing header. The format is designed so
// that (a) any shard can be regenerated in isolation from the corpus
// seed (per-scenario rngs are pre-drawn, so shard i never depends on
// shard i−1 having been built in the same process), (b) a half-written
// shard is never mistakable for a complete one (writers stage to a .tmp
// file and rename on success; readers verify length and CRC before
// yielding a single sample), and (c) a corpus generated against one
// deployment fails fast against another (the header carries the network
// + sensor fingerprint and the generation Config digest).
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "AQSC"
//	4       2     format version (currently 1)
//	6       2     reserved (must be zero)
//	8       8     generation seed (int64)
//	16      8     deployment fingerprint (network ⊕ sensor set)
//	24      8     Config digest
//	32      4     shard index
//	36      4     shard count (total shards in the corpus)
//	40      4     first scenario (global index of this shard's first)
//	44      4     scenarios assigned to this shard (including skipped)
//	48      4     sample records present (scenarios − skipped)
//	52      4     feature dimension (sensor count)
//	56      4     junction column count J
//	60      4·J   junction table (label column → node index)
//	..      4     header CRC-32C over every preceding byte
//	..      r·N   N sample records (fixed size r, below)
//	..      4     payload CRC-32C over all record bytes
//
// One record is:
//
//	4             global scenario index (uint32)
//	4             solver retries consumed (uint32)
//	8·featureDim  features (float64 bits)
//	⌈J/8⌉         label bitset (LSB-first within each byte)
package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"time"
)

// Shard decode errors. Every way a shard file can be unusable maps to
// exactly one of these sentinels (wrapped with file context), so callers
// can distinguish "not a shard" from "a shard from the future" from
// "damaged in storage" — and the fuzz harness can assert the decoder
// never panics or silently yields garbage.
var (
	// ErrShardFormat means the bytes are not a corpus shard at all, or
	// violate the format's structural invariants (bad magic, nonzero
	// reserved field, impossible counts, trailing garbage).
	ErrShardFormat = errors.New("dataset: not a corpus shard")

	// ErrShardVersion means the shard declares a format version this
	// build does not speak. Version is checked before any checksum so a
	// future writer's shard reports "too new", not "corrupt".
	ErrShardVersion = errors.New("dataset: unsupported corpus shard version")

	// ErrShardTruncated means the file ends before the declared content
	// does — the classic killed-mid-write artifact.
	ErrShardTruncated = errors.New("dataset: corpus shard truncated")

	// ErrShardChecksum means the declared bytes are all present but a
	// CRC-32C does not match — bit rot, a torn write, or tampering.
	ErrShardChecksum = errors.New("dataset: corpus shard checksum mismatch")
)

// ErrCorpusMismatch means a structurally valid corpus does not belong to
// the deployment (network + sensors) or generation Config it is being
// used with.
var ErrCorpusMismatch = errors.New("dataset: corpus does not match deployment")

// ShardFormatVersion is the wire format version this build reads and
// writes. The policy is strict equality: the format has no optional
// regions, so any layout change bumps the version and old builds refuse
// new shards (and vice versa) instead of misparsing them.
const ShardFormatVersion = 1

const (
	shardMagic      = "AQSC"
	shardFixedBytes = 60 // through the junction-count field

	// Decode-time caps: a header whose counts exceed these is treated as
	// structurally invalid before any allocation, so a corrupt or
	// adversarial length field cannot balloon memory.
	maxShardJunctions  = 1 << 20
	maxShardFeatureDim = 1 << 20
	maxShardSamples    = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ShardHeader is the decoded self-description of one corpus shard.
type ShardHeader struct {
	// Version is the wire format version (ShardFormatVersion).
	Version int

	// Seed is the corpus generation seed: the root of every scenario and
	// noise stream, recorded so a resumed run can re-derive the exact
	// per-scenario draws.
	Seed int64

	// Deployment fingerprints the network and sensor set the samples
	// were generated against (see Factory.DeploymentFingerprint).
	Deployment uint64

	// ConfigDigest fingerprints the generation Config (see
	// Config.Digest).
	ConfigDigest uint64

	// Shard and ShardCount place this file in the corpus.
	Shard      int
	ShardCount int

	// FirstScenario and Scenarios give the contiguous generation-order
	// range [FirstScenario, FirstScenario+Scenarios) this shard covers,
	// counting scenarios that were skipped after retry exhaustion.
	FirstScenario int
	Scenarios     int

	// Samples is the number of records present (Scenarios minus skips).
	Samples int

	// FeatureDim is the per-record feature count (the sensor count).
	FeatureDim int

	// Junctions maps label columns to node indices, exactly as
	// Factory.Junctions orders them.
	Junctions []int
}

// labelBytes is the size of one record's label bitset.
func labelBytes(junctions int) int { return (junctions + 7) / 8 }

// recordSize is the fixed size of one sample record.
func (h *ShardHeader) recordSize() int {
	return 8 + 8*h.FeatureDim + labelBytes(len(h.Junctions))
}

// headerSize is the on-disk header length including the junction table
// and the header CRC.
func (h *ShardHeader) headerSize() int {
	return shardFixedBytes + 4*len(h.Junctions) + 4
}

// encode serializes the header, including its CRC.
func (h *ShardHeader) encode() []byte {
	buf := make([]byte, h.headerSize())
	copy(buf[0:4], shardMagic)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(h.Version))
	binary.LittleEndian.PutUint16(buf[6:8], 0)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(h.Seed))
	binary.LittleEndian.PutUint64(buf[16:24], h.Deployment)
	binary.LittleEndian.PutUint64(buf[24:32], h.ConfigDigest)
	binary.LittleEndian.PutUint32(buf[32:36], uint32(h.Shard))
	binary.LittleEndian.PutUint32(buf[36:40], uint32(h.ShardCount))
	binary.LittleEndian.PutUint32(buf[40:44], uint32(h.FirstScenario))
	binary.LittleEndian.PutUint32(buf[44:48], uint32(h.Scenarios))
	binary.LittleEndian.PutUint32(buf[48:52], uint32(h.Samples))
	binary.LittleEndian.PutUint32(buf[52:56], uint32(h.FeatureDim))
	binary.LittleEndian.PutUint32(buf[56:60], uint32(len(h.Junctions)))
	off := shardFixedBytes
	for _, node := range h.Junctions {
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(node))
		off += 4
	}
	crc := crc32.Checksum(buf[:off], castagnoli)
	binary.LittleEndian.PutUint32(buf[off:off+4], crc)
	return buf
}

// decodeShardHeader reads and validates a header from r. The version
// check precedes the CRC check so wrong-version shards are reported as
// such rather than as corrupt.
func decodeShardHeader(r io.Reader) (ShardHeader, error) {
	fixed := make([]byte, shardFixedBytes)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return ShardHeader{}, fmt.Errorf("%w: header: %v", ErrShardTruncated, err)
	}
	if string(fixed[0:4]) != shardMagic {
		return ShardHeader{}, fmt.Errorf("%w: bad magic %q", ErrShardFormat, fixed[0:4])
	}
	version := int(binary.LittleEndian.Uint16(fixed[4:6]))
	if version != ShardFormatVersion {
		return ShardHeader{}, fmt.Errorf("%w: shard is v%d, this build reads v%d",
			ErrShardVersion, version, ShardFormatVersion)
	}
	if reserved := binary.LittleEndian.Uint16(fixed[6:8]); reserved != 0 {
		return ShardHeader{}, fmt.Errorf("%w: nonzero reserved field %d", ErrShardFormat, reserved)
	}
	h := ShardHeader{
		Version:       version,
		Seed:          int64(binary.LittleEndian.Uint64(fixed[8:16])),
		Deployment:    binary.LittleEndian.Uint64(fixed[16:24]),
		ConfigDigest:  binary.LittleEndian.Uint64(fixed[24:32]),
		Shard:         int(binary.LittleEndian.Uint32(fixed[32:36])),
		ShardCount:    int(binary.LittleEndian.Uint32(fixed[36:40])),
		FirstScenario: int(binary.LittleEndian.Uint32(fixed[40:44])),
		Scenarios:     int(binary.LittleEndian.Uint32(fixed[44:48])),
		Samples:       int(binary.LittleEndian.Uint32(fixed[48:52])),
		FeatureDim:    int(binary.LittleEndian.Uint32(fixed[52:56])),
	}
	junctionCount := int(binary.LittleEndian.Uint32(fixed[56:60]))
	switch {
	case junctionCount == 0 || junctionCount > maxShardJunctions:
		return ShardHeader{}, fmt.Errorf("%w: junction count %d", ErrShardFormat, junctionCount)
	case h.FeatureDim <= 0 || h.FeatureDim > maxShardFeatureDim:
		return ShardHeader{}, fmt.Errorf("%w: feature dimension %d", ErrShardFormat, h.FeatureDim)
	case h.Samples < 0 || h.Samples > maxShardSamples || h.Samples > h.Scenarios:
		return ShardHeader{}, fmt.Errorf("%w: %d samples over %d scenarios", ErrShardFormat, h.Samples, h.Scenarios)
	case h.Scenarios <= 0 || h.Scenarios > maxShardSamples:
		return ShardHeader{}, fmt.Errorf("%w: scenario count %d", ErrShardFormat, h.Scenarios)
	case h.ShardCount <= 0 || h.Shard < 0 || h.Shard >= h.ShardCount:
		return ShardHeader{}, fmt.Errorf("%w: shard %d of %d", ErrShardFormat, h.Shard, h.ShardCount)
	case h.FirstScenario < 0:
		return ShardHeader{}, fmt.Errorf("%w: first scenario %d", ErrShardFormat, h.FirstScenario)
	}
	table := make([]byte, 4*junctionCount+4)
	if _, err := io.ReadFull(r, table); err != nil {
		return ShardHeader{}, fmt.Errorf("%w: junction table: %v", ErrShardTruncated, err)
	}
	crc := crc32.Checksum(fixed, castagnoli)
	crc = crc32.Update(crc, castagnoli, table[:4*junctionCount])
	if want := binary.LittleEndian.Uint32(table[4*junctionCount:]); crc != want {
		return ShardHeader{}, fmt.Errorf("%w: header CRC %08x, computed %08x", ErrShardChecksum, want, crc)
	}
	h.Junctions = make([]int, junctionCount)
	for i := range h.Junctions {
		h.Junctions[i] = int(binary.LittleEndian.Uint32(table[4*i : 4*i+4]))
	}
	return h, nil
}

// ShardWriter streams fixed-size sample records into one corpus shard.
// Records land in a staging file (path + ".tmp") and the finished shard
// appears under its final name only on a successful Close, so a crash or
// kill at any instant leaves either no shard or an ignorable .tmp —
// never a complete-looking short shard.
//
// A ShardWriter is single-goroutine; the concurrency in corpus
// generation lives in the sample-building worker pool that feeds it.
type ShardWriter struct {
	hdr     ShardHeader
	path    string
	tmp     string
	f       *os.File
	rec     []byte // one-record scratch
	crc     uint32 // running CRC-32C over record bytes
	samples int
	bytes   int64
}

// NewShardWriter creates the staging file and writes a provisional
// header (sample count zero; patched on Close). hdr.Samples is ignored.
func NewShardWriter(path string, hdr ShardHeader) (*ShardWriter, error) {
	if hdr.FeatureDim <= 0 || len(hdr.Junctions) == 0 {
		return nil, fmt.Errorf("dataset: shard writer: empty geometry (%d features, %d junctions)",
			hdr.FeatureDim, len(hdr.Junctions))
	}
	hdr.Version = ShardFormatVersion
	hdr.Samples = 0
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("dataset: shard writer: %w", err)
	}
	w := &ShardWriter{
		hdr:  hdr,
		path: path,
		tmp:  tmp,
		f:    f,
		rec:  make([]byte, hdr.recordSize()),
	}
	if _, err := f.Write(hdr.encode()); err != nil {
		w.Abort()
		return nil, fmt.Errorf("dataset: shard writer: header: %w", err)
	}
	return w, nil
}

// Append writes one sample record. labels is the per-junction-column
// ground truth (aligned with the header's junction table); any nonzero
// entry sets the column's bit.
func (w *ShardWriter) Append(scenario, retries int, features []float64, labels []int) error {
	if len(features) != w.hdr.FeatureDim {
		return fmt.Errorf("dataset: shard writer: %d features, want %d", len(features), w.hdr.FeatureDim)
	}
	if len(labels) != len(w.hdr.Junctions) {
		return fmt.Errorf("dataset: shard writer: %d label columns, want %d", len(labels), len(w.hdr.Junctions))
	}
	rec := w.rec
	binary.LittleEndian.PutUint32(rec[0:4], uint32(scenario))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(retries))
	off := 8
	for _, v := range features {
		binary.LittleEndian.PutUint64(rec[off:off+8], math.Float64bits(v))
		off += 8
	}
	bits := rec[off:]
	for i := range bits {
		bits[i] = 0
	}
	for col, v := range labels {
		if v != 0 {
			bits[col>>3] |= 1 << (col & 7)
		}
	}
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("dataset: shard writer: record: %w", err)
	}
	w.crc = crc32.Update(w.crc, castagnoli, rec)
	w.samples++
	return nil
}

// Samples returns the record count appended so far.
func (w *ShardWriter) Samples() int { return w.samples }

// Close finalizes the shard: it writes the payload CRC, patches the
// header with the final sample count, syncs, and atomically renames the
// staging file into place. Only after Close returns nil does a complete
// shard exist under the final name.
func (w *ShardWriter) Close() error {
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], w.crc)
	if _, err := w.f.Write(tail[:]); err != nil {
		w.Abort()
		return fmt.Errorf("dataset: shard writer: payload CRC: %w", err)
	}
	w.hdr.Samples = w.samples
	if _, err := w.f.WriteAt(w.hdr.encode(), 0); err != nil {
		w.Abort()
		return fmt.Errorf("dataset: shard writer: header patch: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return fmt.Errorf("dataset: shard writer: sync: %w", err)
	}
	size, err := w.f.Seek(0, io.SeekEnd)
	if err == nil {
		w.bytes = size
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("dataset: shard writer: close: %w", err)
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("dataset: shard writer: publish: %w", err)
	}
	return nil
}

// Bytes returns the finished shard's size (valid after Close).
func (w *ShardWriter) Bytes() int64 { return w.bytes }

// Abort discards the staging file. Safe to call after a failed Close.
func (w *ShardWriter) Abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	os.Remove(w.tmp)
}

// CorpusSample is one decoded sample yielded during corpus iteration.
// Features and the label bits are views into the reader's reused buffers
// — valid only until the callback returns; callers that retain data must
// copy it.
type CorpusSample struct {
	// Index is the sample's global generation-order scenario index.
	Index int

	// Retries is the solver retry count the sample's leak solve consumed.
	Retries int

	// Features is the per-sensor reading-delta vector (borrowed).
	Features []float64

	labels []byte
	cols   int
}

// LabelCount returns the number of junction label columns.
func (s *CorpusSample) LabelCount() int { return s.cols }

// Label returns the ground-truth bit for one junction column (0 or 1).
func (s *CorpusSample) Label(col int) int {
	if col < 0 || col >= s.cols {
		return 0
	}
	return int(s.labels[col>>3]>>(col&7)) & 1
}

// Labels expands the bitset into dst (allocated when nil or short) and
// returns it — the same []int shape dataset.Sample.Labels carries.
func (s *CorpusSample) Labels(dst []int) []int {
	if cap(dst) < s.cols {
		dst = make([]int, s.cols)
	}
	dst = dst[:s.cols]
	for col := range dst {
		dst[col] = s.Label(col)
	}
	return dst
}

// shardBuffers hold one shard's decode state, reused across shards so a
// full-corpus iteration allocates O(largest shard), not O(corpus).
type shardBuffers struct {
	payload  []byte
	features []float64
}

// readShardFile opens, fully verifies (structure, length, both CRCs) and
// then iterates one shard. No sample reaches fn before the whole shard
// checks out, so a damaged shard can never leak garbage samples into a
// training pass. Iteration stops early with fn's error.
func readShardFile(path string, buf *shardBuffers, fn func(*CorpusSample) error) (ShardHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return ShardHeader{}, err
	}
	defer f.Close()
	hdr, err := decodeShardHeader(f)
	if err != nil {
		return ShardHeader{}, fmt.Errorf("%s: %w", path, err)
	}
	rec := hdr.recordSize()
	want := int64(hdr.headerSize()) + int64(rec)*int64(hdr.Samples) + 4
	st, err := f.Stat()
	if err != nil {
		return ShardHeader{}, fmt.Errorf("dataset: %s: %w", path, err)
	}
	switch {
	case st.Size() < want:
		return ShardHeader{}, fmt.Errorf("%s: %w: %d bytes, need %d", path, ErrShardTruncated, st.Size(), want)
	case st.Size() > want:
		return ShardHeader{}, fmt.Errorf("%s: %w: %d trailing bytes", path, ErrShardFormat, st.Size()-want)
	}
	n := rec*hdr.Samples + 4
	if cap(buf.payload) < n {
		buf.payload = make([]byte, n)
	}
	payload := buf.payload[:n]
	if _, err := io.ReadFull(f, payload); err != nil {
		return ShardHeader{}, fmt.Errorf("%s: %w: records: %v", path, ErrShardTruncated, err)
	}
	records := payload[:n-4]
	crc := crc32.Checksum(records, castagnoli)
	if got := binary.LittleEndian.Uint32(payload[n-4:]); crc != got {
		return ShardHeader{}, fmt.Errorf("%s: %w: payload CRC %08x, computed %08x", path, ErrShardChecksum, got, crc)
	}
	// The CRC vouches for transport integrity, not writer sanity:
	// scenario indices must stay inside the declared range and strictly
	// increase, or the shard is structurally invalid. Validated over the
	// whole shard BEFORE any sample is yielded, so a rejected shard
	// never leaks samples to the callback.
	prev := -1
	for i := 0; i < hdr.Samples; i++ {
		idx := int(binary.LittleEndian.Uint32(records[i*rec : i*rec+4]))
		if idx <= prev || idx < hdr.FirstScenario || idx >= hdr.FirstScenario+hdr.Scenarios {
			return ShardHeader{}, fmt.Errorf("%s: %w: record %d has scenario index %d outside [%d,%d)",
				path, ErrShardFormat, i, idx, hdr.FirstScenario, hdr.FirstScenario+hdr.Scenarios)
		}
		prev = idx
	}
	if fn == nil {
		return hdr, nil
	}
	if cap(buf.features) < hdr.FeatureDim {
		buf.features = make([]float64, hdr.FeatureDim)
	}
	s := CorpusSample{Features: buf.features[:hdr.FeatureDim], cols: len(hdr.Junctions)}
	lb := labelBytes(len(hdr.Junctions))
	for i := 0; i < hdr.Samples; i++ {
		r := records[i*rec : (i+1)*rec]
		s.Index = int(binary.LittleEndian.Uint32(r[0:4]))
		s.Retries = int(binary.LittleEndian.Uint32(r[4:8]))
		off := 8
		for j := 0; j < hdr.FeatureDim; j++ {
			s.Features[j] = math.Float64frombits(binary.LittleEndian.Uint64(r[off : off+8]))
			off += 8
		}
		s.labels = r[off : off+lb]
		if err := fn(&s); err != nil {
			return hdr, err
		}
	}
	return hdr, nil
}

// ReadShard fully verifies one shard file (structure, length, header and
// payload CRCs) and, when fn is non-nil, yields every sample in record
// order. It is the single-shard entry point VerifyShard, corpus
// iteration and the fuzz harness all share.
func ReadShard(path string, fn func(*CorpusSample) error) (ShardHeader, error) {
	var buf shardBuffers
	return readShardFile(path, &buf, fn)
}

// VerifyShard checks one shard end to end — header, length, junction
// table and both CRCs — without decoding samples. It is what resume uses
// to decide a shard needs no regeneration.
func VerifyShard(path string) (ShardHeader, error) {
	return ReadShard(path, nil)
}

// Digest returns a stable FNV-1a digest over every Config field that
// influences generated sample values. Two factories whose configs digest
// equal produce bit-identical corpora from the same seed and deployment;
// anything else must refuse to mix (the digest rides in every shard
// header for exactly that check). Defaults are applied before hashing,
// so an explicit Step of 15m digests the same as the zero value.
func (c Config) Digest() uint64 {
	c = c.withDefaults()
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	b := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}

	i64(int64(c.ElapsedSlots))
	i64(int64(c.Step / time.Nanosecond))
	i64(int64(c.BaseTime / time.Nanosecond))
	f64(c.Noise.PressureStd)
	f64(c.Noise.FlowStd)
	i64(int64(c.Leaks.MinEvents))
	i64(int64(c.Leaks.MaxEvents))
	f64(c.Leaks.MinSize)
	f64(c.Leaks.MaxSize)
	i64(int64(c.Leaks.Start / time.Nanosecond))
	i64(int64(c.Solver.Backend))
	f64(c.Solver.Accuracy)
	i64(int64(c.Solver.MaxIterations))
	f64(c.Solver.EmitterExponent)
	b(c.Solver.PressureDriven)
	f64(c.Solver.MinPressure)
	f64(c.Solver.RefPressure)
	i64(int64(c.Retry.MaxRetries))
	f64(c.Retry.Relaxation)
	f64(c.Faults.Dropout)
	f64(c.Faults.Stuck)
	f64(c.Faults.NaN)
	f64(c.Faults.SolverFail)
	i64(int64(c.Faults.SolverFailAttempts))
	f64(c.Faults.RequestSlow)
	i64(int64(c.Faults.RequestDelay / time.Nanosecond))
	f64(c.Faults.RequestFail)
	b(c.FailFast)
	return h.Sum64()
}

// ConfigDigest returns the digest of the factory's effective (defaulted)
// generation config — the value stamped into every shard this factory
// writes.
func (f *Factory) ConfigDigest() uint64 { return f.cfg.Digest() }

// DeploymentFingerprint fingerprints everything a corpus sample's
// meaning depends on besides the Config: the network's hydraulic
// identity and the exact ordered sensor set. It mirrors the aquad
// -net/-iot/-seed startup match — a corpus only fits the deployment it
// was generated against.
func (f *Factory) DeploymentFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(f.net.Fingerprint())
	u64(uint64(len(f.sensors)))
	for _, s := range f.sensors {
		u64(uint64(s.Kind))
		u64(uint64(s.Index))
	}
	return h.Sum64()
}
