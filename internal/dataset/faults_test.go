package dataset

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// faultyFactory builds an EPA-NET factory with the given fault config and
// retry budget.
func faultyFactory(t *testing.T, fcfg faults.Config, retries int) *Factory {
	t.Helper()
	net := network.BuildEPANet()
	f, err := NewFactory(net, epanetSensors(t, net, 20), Config{
		Leaks:  leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
		Retry:  hydraulic.RetryPolicy{MaxRetries: retries},
		Faults: fcfg,
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	return f
}

// TestGenerateSkipsExhaustedScenarios is the skip-and-account contract:
// scenarios whose forced failures outlast the retry budget are recorded in
// Dataset.Skipped with their error and retry count, and the run completes.
func TestGenerateSkipsExhaustedScenarios(t *testing.T) {
	// Forced failure depth 2 vs budget 1: every hit scenario skips.
	f := faultyFactory(t, faults.Config{SolverFail: 0.3, SolverFailAttempts: 2}, 1)
	const count = 40
	ds, err := f.Generate(count, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Skipped) == 0 {
		t.Fatal("expected skipped scenarios at a 30% forced-failure rate")
	}
	if len(ds.Samples)+len(ds.Skipped) != count {
		t.Fatalf("samples (%d) + skipped (%d) != %d", len(ds.Samples), len(ds.Skipped), count)
	}
	prev := -1
	for _, sk := range ds.Skipped {
		if sk.Index <= prev || sk.Index >= count {
			t.Fatalf("skip indices not strictly increasing in range: %+v", ds.Skipped)
		}
		prev = sk.Index
		if !errors.Is(sk.Err, hydraulic.ErrNotConverged) {
			t.Fatalf("skipped scenario %d: err %v is not ErrNotConverged", sk.Index, sk.Err)
		}
		if sk.Retries != 1 {
			t.Fatalf("skipped scenario %d consumed %d retries, want the full budget 1", sk.Index, sk.Retries)
		}
		if len(sk.Scenario.Events) == 0 {
			t.Fatalf("skipped scenario %d lost its scenario payload", sk.Index)
		}
		if sk.Trace == nil {
			t.Fatalf("skipped scenario %d carries no trace", sk.Index)
		}
		var retrySteps int
		for _, e := range sk.Trace.Events {
			if e.Stage == string(telemetry.StageSolverRetry) {
				retrySteps++
			}
		}
		if retrySteps != sk.Retries {
			t.Fatalf("skipped scenario %d trace records %d retry steps, stats say %d",
				sk.Index, retrySteps, sk.Retries)
		}
		if sk.Trace.Error == "" {
			t.Fatalf("skipped scenario %d trace has no error", sk.Index)
		}
	}
}

// TestRetryTrace pins the offline trace-synthesis helper: clean solves
// yield no trace, retried/failed ones replay the ladder with warm/cold
// and injected provenance.
func TestRetryTrace(t *testing.T) {
	if RetryTrace("s", nil, nil) != nil {
		t.Fatal("clean solve must not synthesize a trace")
	}
	steps := []hydraulic.RetryStep{
		{Attempt: 1, Relaxation: 0.5, Warm: true},
		{Attempt: 2, Relaxation: 0.25, Warm: false, Injected: true},
	}
	snap := RetryTrace("scenario-3", steps, hydraulic.ErrNotConverged)
	if snap == nil || snap.Job != "scenario-3" {
		t.Fatalf("snapshot = %v", snap)
	}
	var got []string
	for _, e := range snap.Events {
		got = append(got, e.Stage+":"+e.Detail)
	}
	want := []string{
		"solver_retry:warm",
		"solver_retry:cold,injected",
		"error:" + hydraulic.ErrNotConverged.Error(),
		"done:",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("timeline = %q, want %q", got, want)
	}
	if snap.Events[0].Value != 0.5 || snap.Events[1].Value != 0.25 {
		t.Fatalf("relaxation values = %v, %v", snap.Events[0].Value, snap.Events[1].Value)
	}
}

// TestGenerateRetryRecoversAll checks the other side: with the budget at
// the forced-failure depth, every scenario recovers and nothing skips.
func TestGenerateRetryRecoversAll(t *testing.T) {
	f := faultyFactory(t, faults.Config{SolverFail: 0.3, SolverFailAttempts: 1}, 1)
	ds, err := f.Generate(30, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Skipped) != 0 {
		t.Fatalf("expected no skips with budget >= failure depth, got %d", len(ds.Skipped))
	}
	if len(ds.Samples) != 30 {
		t.Fatalf("samples = %d, want 30", len(ds.Samples))
	}
	recovered := 0
	for _, s := range ds.Samples {
		if s.Retries > 0 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("expected some samples to record retries at a 30% forced-failure rate")
	}
}

// TestGenerateFailFast pins the opt-in historical behavior: the first
// failed scenario aborts the whole run.
func TestGenerateFailFast(t *testing.T) {
	net := network.BuildEPANet()
	f, err := NewFactory(net, epanetSensors(t, net, 20), Config{
		Leaks:    leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
		Faults:   faults.Config{SolverFail: 0.5, SolverFailAttempts: 1},
		FailFast: true,
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	_, err = f.Generate(20, rand.New(rand.NewSource(9)))
	if err == nil {
		t.Fatal("FailFast should abort on the first failed scenario")
	}
	if !errors.Is(err, hydraulic.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	var se *ScenarioError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a ScenarioError carrying the retry count", err)
	}
}

// TestGenerateAllSkippedErrors checks that a run where every scenario
// fails returns an error instead of an empty dataset.
func TestGenerateAllSkippedErrors(t *testing.T) {
	f := faultyFactory(t, faults.Config{SolverFail: 1, SolverFailAttempts: 1}, 0)
	if _, err := f.Generate(5, rand.New(rand.NewSource(9))); err == nil {
		t.Fatal("expected an error when every scenario is skipped")
	}
}

// TestGenerateWithFaultsDeterministic checks that fault injection is
// seed-stable: two runs at the same seed produce identical datasets,
// including the skip report.
func TestGenerateWithFaultsDeterministic(t *testing.T) {
	cfg := faults.Config{Dropout: 0.2, Stuck: 0.1, SolverFail: 0.2, SolverFailAttempts: 2}
	run := func() *Dataset {
		f := faultyFactory(t, cfg, 1)
		ds, err := f.Generate(24, rand.New(rand.NewSource(13)))
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return ds
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) || len(a.Skipped) != len(b.Skipped) {
		t.Fatalf("run shapes diverged: %d/%d vs %d/%d samples/skipped",
			len(a.Samples), len(a.Skipped), len(b.Samples), len(b.Skipped))
	}
	for i := range a.Samples {
		if !reflect.DeepEqual(a.Samples[i].Features, b.Samples[i].Features) {
			t.Fatalf("sample %d features diverged across identical seeds", i)
		}
		if a.Samples[i].Retries != b.Samples[i].Retries {
			t.Fatalf("sample %d retry counts diverged", i)
		}
	}
	for i := range a.Skipped {
		if a.Skipped[i].Index != b.Skipped[i].Index || a.Skipped[i].Retries != b.Skipped[i].Retries {
			t.Fatalf("skip report diverged at %d", i)
		}
	}
}

// TestFaultsDisabledMatchesBaseline pins the zero-config contract: a
// factory with a zero faults.Config (and no retry budget) produces
// bit-identical datasets to one that never heard of fault injection.
func TestFaultsDisabledMatchesBaseline(t *testing.T) {
	net := network.BuildEPANet()
	sensors := epanetSensors(t, net, 20)
	gen := func(cfg Config) *Dataset {
		f, err := NewFactory(net, sensors, cfg)
		if err != nil {
			t.Fatalf("NewFactory: %v", err)
		}
		ds, err := f.Generate(16, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return ds
	}
	base := Config{Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}}
	withZeroFaults := base
	withZeroFaults.Faults = faults.Config{}
	withZeroFaults.Retry = hydraulic.RetryPolicy{}
	a, b := gen(base), gen(withZeroFaults)
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("zero fault config changed generated samples")
	}
}

// TestSensorFaultsSanitizedFeatures checks the degraded-input guard: NaN
// readings from dropout/NaN faults must surface as zero features, never as
// non-finite values.
func TestSensorFaultsSanitizedFeatures(t *testing.T) {
	f := faultyFactory(t, faults.Config{Dropout: 0.5, NaN: 0.3}, 0)
	ds, err := f.Generate(10, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for i, s := range ds.Samples {
		for j, v := range s.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("sample %d feature %d is non-finite: %v", i, j, v)
			}
		}
	}
}

// TestScenarioErrorUnwrap pins the error-chain contract.
func TestScenarioErrorUnwrap(t *testing.T) {
	inner := &hydraulic.ConvergenceError{Iterations: 7}
	err := &ScenarioError{Retries: 2, Err: inner}
	if !errors.Is(err, hydraulic.ErrNotConverged) {
		t.Fatal("ScenarioError does not unwrap to ErrNotConverged")
	}
	var ce *hydraulic.ConvergenceError
	if !errors.As(err, &ce) || ce.Iterations != 7 {
		t.Fatal("ScenarioError does not expose the ConvergenceError")
	}
}
