package dataset

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// epanetSensors places a deterministic sensor set on EPA-NET.
func epanetSensors(t *testing.T, net *network.Network, count int) []sensor.Sensor {
	t.Helper()
	ts, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{Duration: 6 * time.Hour, Step: time.Hour}, nil)
	if err != nil {
		t.Fatalf("baseline EPS: %v", err)
	}
	placer, err := sensor.NewPlacer(net, ts)
	if err != nil {
		t.Fatalf("NewPlacer: %v", err)
	}
	sensors, err := placer.KMedoids(count, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("KMedoids: %v", err)
	}
	return sensors
}

func TestFactoryBasics(t *testing.T) {
	net := network.BuildEPANet()
	sensors := epanetSensors(t, net, 30)
	f, err := NewFactory(net, sensors, Config{})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	if f.SensorCount() != 30 {
		t.Fatalf("SensorCount = %d", f.SensorCount())
	}
	if len(f.Junctions()) != 91 {
		t.Fatalf("junction columns = %d, want 91", len(f.Junctions()))
	}
	for col, nodeIdx := range f.Junctions() {
		if f.JunctionColumn(nodeIdx) != col {
			t.Fatalf("JunctionColumn(%d) = %d, want %d", nodeIdx, f.JunctionColumn(nodeIdx), col)
		}
	}
	// Reservoirs map to no column.
	ri, _ := net.NodeIndex("RES-W")
	if f.JunctionColumn(ri) != -1 {
		t.Fatal("reservoir should have no label column")
	}
}

func TestFactoryValidation(t *testing.T) {
	net := network.BuildEPANet()
	if _, err := NewFactory(net, nil, Config{}); err == nil {
		t.Fatal("no sensors should error")
	}
	f, _ := NewFactory(net, epanetSensors(t, net, 10), Config{})
	if _, err := f.Generate(0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero count should error")
	}
}

func TestFromScenarioSignal(t *testing.T) {
	// A leak adjacent to a pressure sensor must produce a negative
	// pressure delta at that sensor (noise-free).
	net := network.BuildEPANet()
	leakNode, _ := net.NodeIndex("J40")
	sensors := []sensor.Sensor{{Kind: sensor.Pressure, Index: leakNode}}
	f, err := NewFactory(net, sensors, Config{})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sc := leak.Scenario{Events: []leak.Event{{Node: leakNode, Size: 2e-3, Start: 8 * time.Hour}}}
	s, err := f.FromScenario(sc, nil)
	if err != nil {
		t.Fatalf("FromScenario: %v", err)
	}
	if s.Features[0] >= 0 {
		t.Fatalf("pressure delta at leak = %v, want negative", s.Features[0])
	}
	col := f.JunctionColumn(leakNode)
	if s.Labels[col] != 1 {
		t.Fatal("leak node not labeled")
	}
	ones := 0
	for _, v := range s.Labels {
		ones += v
	}
	if ones != 1 {
		t.Fatalf("label count = %d, want 1", ones)
	}
}

func TestGenerateDataset(t *testing.T) {
	net := network.BuildEPANet()
	f, err := NewFactory(net, epanetSensors(t, net, 25), Config{
		Noise: sensor.DefaultNoise,
	})
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	ds, err := f.Generate(40, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Samples) != 40 {
		t.Fatalf("samples = %d", len(ds.Samples))
	}
	x, y := ds.X(), ds.Y()
	if len(x) != 40 || len(y) != 40 {
		t.Fatal("X/Y views wrong size")
	}
	for i, s := range ds.Samples {
		if len(s.Features) != 25 {
			t.Fatalf("sample %d: %d features", i, len(s.Features))
		}
		if len(s.Labels) != 91 {
			t.Fatalf("sample %d: %d labels", i, len(s.Labels))
		}
		leaks := 0
		for _, v := range s.Labels {
			leaks += v
		}
		if leaks < 1 || leaks > 5 {
			t.Fatalf("sample %d: %d leaks outside U(1,5)", i, leaks)
		}
		if len(s.Scenario.Events) < leaks {
			t.Fatalf("sample %d: scenario/label mismatch", i)
		}
		for _, v := range s.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("sample %d: non-finite feature %v", i, v)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	net := network.BuildEPANet()
	sensors := epanetSensors(t, net, 15)
	mk := func(seed int64) *Dataset {
		f, err := NewFactory(net, sensors, Config{Noise: sensor.DefaultNoise})
		if err != nil {
			t.Fatalf("NewFactory: %v", err)
		}
		ds, err := f.Generate(12, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return ds
	}
	a, b := mk(42), mk(42)
	for i := range a.Samples {
		for j := range a.Samples[i].Features {
			if a.Samples[i].Features[j] != b.Samples[i].Features[j] {
				t.Fatalf("sample %d feature %d differs", i, j)
			}
		}
		for j := range a.Samples[i].Labels {
			if a.Samples[i].Labels[j] != b.Samples[i].Labels[j] {
				t.Fatalf("sample %d label %d differs", i, j)
			}
		}
	}
	c := mk(43)
	same := true
	for i := range a.Samples {
		for j := range a.Samples[i].Features {
			if a.Samples[i].Features[j] != c.Samples[i].Features[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestElapsedSlotsStrengthenSignal(t *testing.T) {
	// More elapsed time means demand-pattern drift joins the leak signal;
	// the leak-node pressure delta must remain negative and the factory
	// must honor the configured slot count.
	net := network.BuildEPANet()
	leakNode, _ := net.NodeIndex("J40")
	sensors := []sensor.Sensor{{Kind: sensor.Pressure, Index: leakNode}}
	sc := leak.Scenario{Events: []leak.Event{{Node: leakNode, Size: 2e-3}}}
	for _, slots := range []int{1, 4, 8} {
		f, err := NewFactory(net, sensors, Config{ElapsedSlots: slots})
		if err != nil {
			t.Fatalf("NewFactory(n=%d): %v", slots, err)
		}
		s, err := f.FromScenario(sc, nil)
		if err != nil {
			t.Fatalf("FromScenario(n=%d): %v", slots, err)
		}
		if s.Features[0] >= 0 {
			t.Fatalf("n=%d: delta = %v, want negative", slots, s.Features[0])
		}
	}
}
