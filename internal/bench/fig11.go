package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/aquascale/aquascale/internal/flood"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/network"
)

// Fig11Flood reproduces Fig. 11: two concurrent leaks on WSSC-SUBNET feed
// their pressure-dependent discharge (eq. 1) into the flood model over a
// DEM interpolated from node elevations, producing an inundation map.
func Fig11Flood(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	net := network.BuildWSSCSubnet()
	dem, err := flood.FromNetwork(net, 40, 2)
	if err != nil {
		return nil, err
	}
	dem.AddRoughness(0.25, scale.Seed+5)
	solver, err := hydraulic.NewSolver(net, hydraulic.Options{})
	if err != nil {
		return nil, err
	}

	// Two leaks with different sizes and a shared start time, matching the
	// paper's v1/v2 setup.
	v1, ok := net.NodeIndex("W150")
	if !ok {
		return nil, fmt.Errorf("bench: missing WSSC node W150")
	}
	v2, ok := net.NodeIndex("W230")
	if !ok {
		return nil, fmt.Errorf("bench: missing WSSC node W230")
	}
	emitters := []hydraulic.Emitter{
		{Node: v1, Coeff: 8e-3},
		{Node: v2, Coeff: 3e-3},
	}
	res, err := solver.SolveSteady(8*time.Hour, emitters, nil)
	if err != nil {
		return nil, err
	}
	q1 := res.EmitterFlow[v1]
	q2 := res.EmitterFlow[v2]

	sources := []flood.Source{
		{X: net.Nodes[v1].X, Y: net.Nodes[v1].Y, Rate: flood.ConstantRate(q1)},
		{X: net.Nodes[v2].X, Y: net.Nodes[v2].Y, Rate: flood.ConstantRate(q2)},
	}
	sim, err := flood.Simulate(dem, sources, flood.SimConfig{Duration: 4 * time.Hour})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:    "fig11",
		Title: "Flood prediction from two pipe leaks (WSSC-SUBNET DEM)",
	}
	stats := Table{
		Title:   "inundation summary",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"leak v1 outflow (L/s)", fmt.Sprintf("%.1f", q1*1000)},
			{"leak v2 outflow (L/s)", fmt.Sprintf("%.1f", q2*1000)},
			{"released volume (m3)", fmt.Sprintf("%.0f", sim.InflowVolume)},
			{"stored volume (m3)", fmt.Sprintf("%.0f", sim.StoredVolume(dem))},
			{"flooded area >1 cm (m2)", fmt.Sprintf("%.0f", sim.FloodedArea(dem, 0.01))},
			{"flooded area >10 cm (m2)", fmt.Sprintf("%.0f", sim.FloodedArea(dem, 0.10))},
			{"peak depth anywhere (m)", fmt.Sprintf("%.3f", sim.GlobalMaxDepth())},
			{"peak depth near v1 (m)", fmt.Sprintf("%.3f", sim.MaxDepthAt(dem, net.Nodes[v1].X, net.Nodes[v1].Y))},
		},
	}
	fig.Tables = append(fig.Tables, stats)
	fig.Notes = append(fig.Notes, "depth map (H in m; '.': <1cm, ':': <5cm, '*': <20cm, '#': >=20cm):")
	fig.Notes = append(fig.Notes, asciiDepthMap(dem, sim, 60, 24)...)
	return fig, nil
}

// asciiDepthMap renders the max-depth raster as ASCII art, downsampled to
// at most the given dimensions.
func asciiDepthMap(dem *flood.DEM, sim *flood.Result, maxW, maxH int) []string {
	stepX := (dem.Width + maxW - 1) / maxW
	stepY := (dem.Height + maxH - 1) / maxH
	if stepX < 1 {
		stepX = 1
	}
	if stepY < 1 {
		stepY = 1
	}
	var lines []string
	// Row 0 is south; render north-up.
	for y0 := dem.Height - 1; y0 >= 0; y0 -= stepY {
		var sb strings.Builder
		for x0 := 0; x0 < dem.Width; x0 += stepX {
			// Peak depth within the block.
			peak := 0.0
			for dy := 0; dy < stepY && y0-dy >= 0; dy++ {
				for dx := 0; dx < stepX && x0+dx < dem.Width; dx++ {
					d := sim.MaxDepth[(y0-dy)*dem.Width+x0+dx]
					if d > peak {
						peak = d
					}
				}
			}
			switch {
			case peak >= 0.20:
				sb.WriteByte('#')
			case peak >= 0.05:
				sb.WriteByte('*')
			case peak >= 0.01:
				sb.WriteByte(':')
			case peak > 0:
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		lines = append(lines, strings.TrimRight(sb.String(), " "))
	}
	return lines
}
