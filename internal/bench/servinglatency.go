package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/fusion"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/serve"
)

// ServingLatency measures the Phase-II observe hot path the way the
// serving daemon drives it: per-request Localize latency on EPA-NET,
// pointer-tree path (pre-compile, one allocation-heavy Localize per
// request) vs. the compiled flattened path (System.Compile +
// LocalizeInto on a reused buffer), plus the same requests served
// end-to-end through a one-district Fleet (Submit, queue, worker
// hand-off). All paths replay the same recorded observations; the figure
// also asserts the paths stay bit-identical, which is the correctness
// contract the fast path and the serving layer ship under. Structural
// columns are deterministic; the latency columns are wall-clock.
func ServingLatency(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	fig := &Figure{
		ID:    "serving-latency",
		Title: "Serving hot path: pointer-tree vs. compiled flattened inference",
	}

	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(60, scale.Seed+5)
	if err != nil {
		return nil, err
	}
	leakCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2}
	sys, err := tb.trainedSystem(sensors, leakCfg, scale)
	if err != nil {
		return nil, err
	}

	// Record a small pool of real observations once, then replay them:
	// latency is a property of the inference path, not the leak draw.
	const obsPool = 8
	rng := rand.New(rand.NewSource(scale.Seed + 23))
	observations := make([]core.Observation, 0, obsPool)
	for len(observations) < obsPool {
		sc, err := sys.GenerateColdScenario(leakCfg, rng)
		if err != nil {
			return nil, fmt.Errorf("bench: serving-latency scenario: %w", err)
		}
		obs, err := sys.Observe(sc, core.ObserveOptions{}, rng)
		if err != nil {
			return nil, fmt.Errorf("bench: serving-latency observe: %w", err)
		}
		observations = append(observations, obs)
	}

	requests := scale.TestScenarios * 25
	if requests < 500 {
		requests = 500
	}

	// Pointer path first, recording its probabilities for the parity check.
	pointerProba := make([][]float64, len(observations))
	for i, obs := range observations {
		pred, _, err := sys.Localize(obs)
		if err != nil {
			return nil, fmt.Errorf("bench: serving-latency pointer: %w", err)
		}
		pointerProba[i] = pred.Proba
	}
	pointerLat, err := timeRequests(requests, func(i int) error {
		_, _, err := sys.Localize(observations[i%len(observations)])
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: serving-latency pointer: %w", err)
	}

	if err := sys.Compile(); err != nil {
		return nil, fmt.Errorf("bench: serving-latency compile: %w", err)
	}

	// Parity: the compiled path must be bit-identical to the pointer path.
	mismatches := 0
	pred := &fusion.Prediction{Proba: make([]float64, len(tb.net.Nodes))}
	for i, obs := range observations {
		if _, err := sys.LocalizeInto(pred, obs); err != nil {
			return nil, fmt.Errorf("bench: serving-latency compiled: %w", err)
		}
		for v := range pred.Proba {
			if math.Float64bits(pred.Proba[v]) != math.Float64bits(pointerProba[i][v]) {
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		return nil, fmt.Errorf("bench: serving-latency: compiled path diverged at %d probabilities", mismatches)
	}

	compiledLat, err := timeRequests(requests, func(i int) error {
		_, err := sys.LocalizeInto(pred, observations[i%len(observations)])
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: serving-latency compiled: %w", err)
	}

	// Fleet-served: the same inference driven end-to-end through a
	// one-district Fleet the way aquad hosts it — Submit, queue, worker
	// hand-off and result-window accounting on top of the compiled path.
	fleet, err := serve.NewFleet([]serve.District{{ID: "epanet", Sys: sys}}, serve.Config{
		Workers:        1,
		QueueSize:      64,
		RequestTimeout: 30 * time.Second,
		TraceSample:    -1,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: serving-latency fleet: %w", err)
	}
	srv := fleet.District("epanet")
	serveOne := func(i int) (*serve.Result, error) {
		j, err := srv.Submit(serve.ObserveRequest{
			Features: observations[i%len(observations)].Features,
			Seed:     int64(i + 1),
		})
		if err != nil {
			return nil, err
		}
		<-j.Done()
		_, res, err := j.Status()
		return res, err
	}
	// Parity: results served through the fleet must stay bit-identical to
	// the offline Localize on each observation's own features.
	for i := range observations {
		res, err := serveOne(i)
		if err != nil {
			return nil, fmt.Errorf("bench: serving-latency fleet: %w", err)
		}
		offline, _, err := sys.Localize(core.Observation{Features: observations[i].Features})
		if err != nil {
			return nil, fmt.Errorf("bench: serving-latency fleet offline: %w", err)
		}
		for v := range res.Proba {
			if math.Float64bits(res.Proba[v]) != math.Float64bits(offline.Proba[v]) {
				mismatches++
			}
		}
	}
	if mismatches > 0 {
		return nil, fmt.Errorf("bench: serving-latency: fleet-served path diverged at %d probabilities", mismatches)
	}
	fleetLat, err := timeRequests(requests, func(i int) error {
		_, err := serveOne(i)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: serving-latency fleet: %w", err)
	}
	if err := fleet.Shutdown(context.Background()); err != nil {
		return nil, fmt.Errorf("bench: serving-latency fleet drain: %w", err)
	}

	table := Table{
		Title: fmt.Sprintf("per-request observe latency, EPA-NET, %d sensors, %d requests over %d recorded observations",
			len(sensors), requests, len(observations)),
		Columns: []string{"path", "p50 us", "p99 us", "mean us", "speedup"},
	}
	table.Rows = append(table.Rows,
		latencyRow("pointer", pointerLat, pointerLat),
		latencyRow("compiled", compiledLat, pointerLat),
		latencyRow("fleet served", fleetLat, pointerLat),
	)
	fig.Tables = append(fig.Tables, table)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("compiled probabilities bit-identical to pointer path on all %d observations", len(observations)),
		"compiled path uses System.Compile + LocalizeInto on a reused buffer (0 allocs/op; see BenchmarkObserve)",
		"fleet served drives Submit+wait through a one-district serve.Fleet (queue, worker hand-off, result window) and stays bit-identical to offline Localize",
	)
	return fig, nil
}

// timeRequests runs n sequential requests and returns their individual
// latencies in microseconds.
func timeRequests(n int, do func(i int) error) ([]float64, error) {
	lat := make([]float64, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := do(i); err != nil {
			return nil, err
		}
		lat[i] = float64(time.Since(start)) / float64(time.Microsecond)
	}
	return lat, nil
}

func latencyRow(name string, lat, baseline []float64) []string {
	return []string{
		name,
		fmt.Sprintf("%.1f", latPercentile(lat, 50)),
		fmt.Sprintf("%.1f", latPercentile(lat, 99)),
		fmt.Sprintf("%.1f", latMean(lat)),
		fmt.Sprintf("%.1fx", latMean(baseline)/latMean(lat)),
	}
}

// latPercentile returns the pth percentile (nearest-rank) of latencies.
func latPercentile(lat []float64, p float64) float64 {
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func latMean(lat []float64) float64 {
	total := 0.0
	for _, v := range lat {
		total += v
	}
	return total / float64(len(lat))
}
