package bench

import (
	"fmt"
	"math/rand"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
)

// fig7Percents is the IoT-deployment sweep grid (the paper sweeps
// 10–100%).
var fig7Percents = []float64{10, 30, 50, 70, 100}

// Fig7HybridSweep reproduces Fig. 7a/7b: RF vs SVM vs HybridRSL Hamming
// score across IoT deployment percentages, for single- (a) and multi-leak
// (b) scenarios on EPA-NET.
func Fig7HybridSweep(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig7ab",
		Title:  "RF vs SVM vs HybridRSL across IoT deployment (EPA-NET)",
		XLabel: "IoT observation (%)",
		YLabel: "Hamming score",
	}
	families := []struct {
		name string
		cfg  leak.GeneratorConfig
	}{
		{"single", epanetSingleLeak},
		{"multi", epanetMultiLeak},
	}
	techniques := []core.Technique{core.TechniqueRF, core.TechniqueSVM, core.TechniqueHybridRSL}
	scores := make(map[string][]Point)

	for _, fam := range families {
		for _, pct := range fig7Percents {
			sensors, err := tb.sensorsAtPercent(pct, scale.Seed+3)
			if err != nil {
				return nil, err
			}
			factory, err := tb.factoryFor(sensors, fam.cfg, scale)
			if err != nil {
				return nil, err
			}
			ds, err := factory.Generate(scale.TrainSamples, rand.New(rand.NewSource(scale.Seed+11)))
			if err != nil {
				return nil, err
			}
			for _, tech := range techniques {
				profile, err := trainProfileOnly(ds, len(tb.net.Nodes), tech, scale.Seed+77)
				if err != nil {
					return nil, fmt.Errorf("bench: fig7 %s/%s at %.0f%%: %w", fam.name, tech, pct, err)
				}
				score, err := evalProfile(factory, profile, tb.net, fam.cfg,
					scale.TestScenarios, scale.Workers, rand.New(rand.NewSource(scale.Seed+101)))
				if err != nil {
					return nil, err
				}
				key := fam.name + "/" + tech.String()
				scores[key] = append(scores[key], Point{X: pct, Y: score})
			}
		}
	}
	for _, fam := range families {
		for _, tech := range techniques {
			key := fam.name + "/" + tech.String()
			fig.Series = append(fig.Series, Series{Name: key, Points: scores[key]})
		}
	}
	fig.Notes = append(fig.Notes,
		"paper: scores rise with IoT coverage; multi-leak is uniformly harder than single; HybridRSL tracks the better leg",
	)
	return fig, nil
}

// Fig7cFusionIncrement reproduces Fig. 7c: the average increment on the
// Hamming score from adding weather and human inputs, across IoT
// deployment, on EPA-NET cold-weather multi-failures.
func Fig7cFusionIncrement(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig7c",
		Title:  "Increment on Hamming score from weather + human inputs (EPA-NET)",
		XLabel: "IoT observation (%)",
		YLabel: "Hamming score",
	}
	var iotS, allS, incS Series
	iotS.Name = "IoT only"
	allS.Name = "IoT + temp + human"
	incS.Name = "increment"
	leakCfg := epanetMultiLeak

	for _, pct := range fig7Percents {
		sensors, err := tb.sensorsAtPercent(pct, scale.Seed+3)
		if err != nil {
			return nil, err
		}
		sys, err := tb.trainedSystem(sensors, leakCfg, scale)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7c at %.0f%%: %w", pct, err)
		}
		iot, err := sys.EvaluateParallel(scale.TestScenarios, leakCfg,
			core.ObserveOptions{ElapsedSlots: 4},
			scale.Workers,
			rand.New(rand.NewSource(scale.Seed+101)))
		if err != nil {
			return nil, err
		}
		all, err := sys.EvaluateParallel(scale.TestScenarios, leakCfg,
			core.ObserveOptions{
				Sources:      core.Sources{Weather: true, Human: true},
				ElapsedSlots: 4,
			},
			scale.Workers,
			rand.New(rand.NewSource(scale.Seed+101)))
		if err != nil {
			return nil, err
		}
		iotS.Points = append(iotS.Points, Point{X: pct, Y: iot.MeanHamming})
		allS.Points = append(allS.Points, Point{X: pct, Y: all.MeanHamming})
		incS.Points = append(incS.Points, Point{X: pct, Y: all.MeanHamming - iot.MeanHamming})
	}
	fig.Series = append(fig.Series, iotS, allS, incS)
	fig.Notes = append(fig.Notes,
		"paper: the increment from external sources is larger when IoT coverage is smaller",
	)
	return fig, nil
}
