package bench

import (
	"math/rand"

	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/mlearn"
	"github.com/aquascale/aquascale/internal/network"
)

// AblationSensorDropout measures robustness to in-service sensor failures:
// the profile is trained with the full 30% deployment healthy, then
// evaluated with a growing fraction of sensors dead (a dead sensor reports
// its expected baseline, so its delta feature reads zero). The paper
// motivates AquaSCALE partly by measurement uncertainty; this ablation
// quantifies how gracefully the localizer degrades when devices fail
// silently.
func AblationSensorDropout(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(30, scale.Seed+3)
	if err != nil {
		return nil, err
	}
	factory, err := tb.factoryFor(sensors, epanetMultiLeak, scale)
	if err != nil {
		return nil, err
	}
	ds, err := factory.Generate(scale.TrainSamples, rand.New(rand.NewSource(scale.Seed+11)))
	if err != nil {
		return nil, err
	}
	profile, err := trainProfileOnly(ds, len(tb.net.Nodes), scale.Technique, scale.Seed+77)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "ablation-dropout",
		Title:  "Robustness to silent sensor failures (EPA-NET, 30% IoT, multi-leak)",
		XLabel: "failed sensors (%)",
		YLabel: "Hamming score",
	}
	var s Series
	s.Name = scale.Technique.String()
	// The dropout mask couples consecutive rng draws, so this sweep stays
	// serial; the session still amortizes solver construction per curve.
	sess, err := factory.NewSession()
	if err != nil {
		return nil, err
	}
	for _, failPct := range []float64{0, 10, 20, 30, 50} {
		rng := rand.New(rand.NewSource(scale.Seed + 101))
		gen, err := leak.NewGenerator(tb.net, epanetMultiLeak, rng)
		if err != nil {
			return nil, err
		}
		total := 0.0
		for i := 0; i < scale.TestScenarios; i++ {
			sc := gen.Next()
			sample, err := sess.FromScenario(sc, rng)
			if err != nil {
				return nil, err
			}
			// Fail a random subset: their deltas read zero.
			failCount := int(failPct / 100 * float64(len(sample.Features)))
			for _, idx := range rng.Perm(len(sample.Features))[:failCount] {
				sample.Features[idx] = 0
			}
			pred, err := profile.Predict(sample.Features)
			if err != nil {
				return nil, err
			}
			total += mlearn.HammingScore(pred, sc.Labels(len(tb.net.Nodes)))
		}
		s.Points = append(s.Points, Point{X: failPct, Y: total / float64(scale.TestScenarios)})
	}
	fig.Series = append(fig.Series, s)
	fig.Notes = append(fig.Notes,
		"a dead sensor reporting its expected baseline silently removes evidence; degradation should be gradual, not a cliff",
	)
	return fig, nil
}
