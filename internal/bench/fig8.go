package bench

import (
	"fmt"
	"math/rand"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
)

// fig8Percents and fig8Slots form the surface grid of Fig 8 (the paper
// sweeps IoT percentage against elapsed 15-minute slots).
var (
	fig8Percents = []float64{10, 40, 70, 100}
	fig8Slots    = []int{1, 2, 4, 6, 8}
)

// wsscMultiLeak is the WSSC cold-weather multi-failure family.
var wsscMultiLeak = leak.GeneratorConfig{MinEvents: 1, MaxEvents: 5}

// Fig8WSSCSurface reproduces Fig. 8: the Hamming-score surface over IoT
// deployment percentage × elapsed time slots on WSSC-SUBNET cold-weather
// multi-failures — (a) IoT data only, (b) IoT + temperature + human
// reports, (c) the increment.
func Fig8WSSCSurface(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildWSSCSubnet)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:    "fig8",
		Title: "Hamming surface: IoT % x elapsed slots (WSSC-SUBNET, cold multi-failures)",
	}

	cols := []string{"IoT %"}
	for _, n := range fig8Slots {
		cols = append(cols, fmt.Sprintf("n=%d", n))
	}
	iotTable := Table{Title: "(a) IoT only", Columns: cols}
	allTable := Table{Title: "(b) IoT + temp + human", Columns: cols}
	incTable := Table{Title: "(c) increment (b - a)", Columns: cols}

	for _, pct := range fig8Percents {
		sensors, err := tb.sensorsAtPercent(pct, scale.Seed+3)
		if err != nil {
			return nil, err
		}
		sys, err := tb.trainedSystem(sensors, wsscMultiLeak, scale)
		if err != nil {
			return nil, fmt.Errorf("bench: fig8 at %.0f%%: %w", pct, err)
		}
		iotRow := []string{fmt.Sprintf("%.0f", pct)}
		allRow := []string{fmt.Sprintf("%.0f", pct)}
		incRow := []string{fmt.Sprintf("%.0f", pct)}
		for _, n := range fig8Slots {
			iot, err := sys.EvaluateParallel(scale.TestScenarios, wsscMultiLeak,
				core.ObserveOptions{ElapsedSlots: n},
				scale.Workers,
				rand.New(rand.NewSource(scale.Seed+int64(1000+n))))
			if err != nil {
				return nil, err
			}
			all, err := sys.EvaluateParallel(scale.TestScenarios, wsscMultiLeak,
				core.ObserveOptions{
					Sources:      core.Sources{Weather: true, Human: true},
					ElapsedSlots: n,
				},
				scale.Workers,
				rand.New(rand.NewSource(scale.Seed+int64(1000+n))))
			if err != nil {
				return nil, err
			}
			iotRow = append(iotRow, fmt.Sprintf("%.3f", iot.MeanHamming))
			allRow = append(allRow, fmt.Sprintf("%.3f", all.MeanHamming))
			incRow = append(incRow, fmt.Sprintf("%+.3f", all.MeanHamming-iot.MeanHamming))
		}
		iotTable.Rows = append(iotTable.Rows, iotRow)
		allTable.Rows = append(allTable.Rows, allRow)
		incTable.Rows = append(incTable.Rows, incRow)
	}
	fig.Tables = append(fig.Tables, iotTable, allTable, incTable)
	fig.Notes = append(fig.Notes,
		"paper: fused sources keep the score high even with limited IoT; the increment grows as IoT coverage shrinks",
	)
	return fig, nil
}
