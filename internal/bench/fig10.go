package bench

import (
	"fmt"
	"math/rand"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
)

// fig10MaxEvents sweeps the maximum number of concurrent leak events.
var fig10MaxEvents = []int{2, 3, 4, 5, 6, 7, 8}

// fig10Percent fixes the IoT deployment for the sweep.
const fig10Percent = 40.0

// Fig10MaxEvents reproduces Fig. 10: the Hamming score as the maximum
// number of concurrent leak events grows, using IoT data only versus all
// sources fused, on WSSC-SUBNET.
func Fig10MaxEvents(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildWSSCSubnet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(fig10Percent, scale.Seed+3)
	if err != nil {
		return nil, err
	}
	// The profile is trained on the widest family so every evaluation
	// draws from its training support.
	trainCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: fig10MaxEvents[len(fig10MaxEvents)-1]}
	sys, err := tb.trainedSystem(sensors, trainCfg, scale)
	if err != nil {
		return nil, fmt.Errorf("bench: fig10: %w", err)
	}

	fig := &Figure{
		ID:     "fig10",
		Title:  fmt.Sprintf("Hamming score vs. max concurrent leak events (WSSC-SUBNET, %.0f%% IoT)", fig10Percent),
		XLabel: "max number of leak events",
		YLabel: "Hamming score",
	}
	var iotS, allS Series
	iotS.Name = "IoT only"
	allS.Name = "IoT + human + temp"
	for _, maxEv := range fig10MaxEvents {
		evalCfg := leak.GeneratorConfig{MinEvents: 1, MaxEvents: maxEv}
		iot, err := sys.EvaluateParallel(scale.TestScenarios, evalCfg,
			core.ObserveOptions{ElapsedSlots: 4},
			scale.Workers,
			rand.New(rand.NewSource(scale.Seed+int64(100+maxEv))))
		if err != nil {
			return nil, err
		}
		all, err := sys.EvaluateParallel(scale.TestScenarios, evalCfg,
			core.ObserveOptions{
				Sources:      core.Sources{Weather: true, Human: true},
				ElapsedSlots: 4,
			},
			scale.Workers,
			rand.New(rand.NewSource(scale.Seed+int64(100+maxEv))))
		if err != nil {
			return nil, err
		}
		iotS.Points = append(iotS.Points, Point{X: float64(maxEv), Y: iot.MeanHamming})
		allS.Points = append(allS.Points, Point{X: float64(maxEv), Y: all.MeanHamming})
	}
	fig.Series = append(fig.Series, iotS, allS)
	fig.Notes = append(fig.Notes,
		"paper: IoT-only detection degrades as concurrent events multiply; fused sources degrade more slowly",
	)
	return fig, nil
}
