package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/aquascale/aquascale/internal/network"
)

// tinyScale keeps training-backed experiments fast enough for unit tests.
var tinyScale = Scale{TrainSamples: 80, TestScenarios: 10, Seed: 1, Technique: "svm"}

func renderOK(t *testing.T, fig *Figure) string {
	t.Helper()
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, fig.ID) {
		t.Fatalf("render misses figure id:\n%s", out)
	}
	return out
}

func TestFig2PressureDistance(t *testing.T) {
	fig, err := Fig2PressureDistance(tinyScale)
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	// The single-failure curve must start high and decay: the first ring
	// around e1 sees more total change than the last.
	single := fig.Series[0].Points
	if len(single) < 3 {
		t.Fatalf("too few rings: %d", len(single))
	}
	if single[0].Y <= single[len(single)-1].Y {
		t.Fatalf("single-failure signature does not decay: first=%v last=%v",
			single[0].Y, single[len(single)-1].Y)
	}
	renderOK(t, fig)
}

func TestFig3BreaksVsTemperature(t *testing.T) {
	fig, err := Fig3BreaksVsTemperature(tinyScale)
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	temp, breaks := fig.Series[0].Points, fig.Series[1].Points
	if len(temp) != 60 || len(breaks) != 60 {
		t.Fatalf("months = %d/%d, want 60", len(temp), len(breaks))
	}
	// Anti-correlation: coldest month has more breaks than warmest.
	minT, maxT := 0, 0
	for i := range temp {
		if temp[i].Y < temp[minT].Y {
			minT = i
		}
		if temp[i].Y > temp[maxT].Y {
			maxT = i
		}
	}
	if breaks[minT].Y <= breaks[maxT].Y {
		t.Fatalf("cold month breaks (%v) not above warm month breaks (%v)",
			breaks[minT].Y, breaks[maxT].Y)
	}
	renderOK(t, fig)
}

func TestFig11Flood(t *testing.T) {
	fig, err := Fig11Flood(tinyScale)
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	if len(fig.Tables) == 0 {
		t.Fatal("no summary table")
	}
	out := renderOK(t, fig)
	if !strings.Contains(out, "flooded area") {
		t.Fatalf("missing inundation stats:\n%s", out)
	}
	// The depth map must contain some flooded cells.
	if !strings.ContainsAny(out, ".:*#") {
		t.Fatal("depth map is empty")
	}
}

func TestAblationEmitterExponent(t *testing.T) {
	fig, err := AblationEmitterExponent(tinyScale)
	if err != nil {
		t.Fatalf("ablation-beta: %v", err)
	}
	if len(fig.Tables) != 1 || len(fig.Tables[0].Rows) != 3 {
		t.Fatalf("unexpected table shape: %+v", fig.Tables)
	}
	renderOK(t, fig)
}

func TestFig6TinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	fig, err := Fig6MLComparison(tinyScale)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(fig.Series) != len(fig6Techniques) {
		t.Fatalf("series = %d, want %d", len(fig.Series), len(fig6Techniques))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("series %q score %v outside [0,1]", s.Name, p.Y)
			}
		}
	}
	renderOK(t, fig)
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	for _, id := range ExperimentIDs() {
		if _, ok := exps[id]; !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if len(exps) != len(ExperimentIDs()) {
		t.Fatalf("registry has %d entries, ids list %d", len(exps), len(ExperimentIDs()))
	}
}

func TestRenderTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := renderTable(&buf, Table{
		Title:   "t",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"first-cell", "x"}},
	})
	if err != nil {
		t.Fatalf("renderTable: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), buf.String())
	}
}

func TestScaleDefaults(t *testing.T) {
	s := Scale{}.withDefaults()
	if s.TrainSamples != 600 || s.TestScenarios != 60 || s.Technique != "hybrid-rsl" || s.Seed != 1 {
		t.Fatalf("defaults = %+v", s)
	}
	if s.Workers != 0 {
		t.Fatalf("workers default = %d, want 0 (NumCPU at point of use)", s.Workers)
	}
}

// TestEvalProfileParallelDeterministic checks the profile-only evaluation
// path gives bit-identical scores for every worker count at a fixed seed.
func TestEvalProfileParallelDeterministic(t *testing.T) {
	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		t.Fatalf("newTestbed: %v", err)
	}
	sensors, err := tb.sensorsAtPercent(10, tinyScale.Seed+3)
	if err != nil {
		t.Fatalf("sensorsAtPercent: %v", err)
	}
	factory, err := tb.factoryFor(sensors, epanetSingleLeak, Scale{})
	if err != nil {
		t.Fatalf("factoryFor: %v", err)
	}
	ds, err := factory.Generate(tinyScale.TrainSamples, rand.New(rand.NewSource(tinyScale.Seed+11)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	profile, err := trainProfileOnly(ds, len(tb.net.Nodes), "linear", tinyScale.Seed+77)
	if err != nil {
		t.Fatalf("trainProfileOnly: %v", err)
	}
	run := func(workers int) float64 {
		score, err := evalProfile(factory, profile, tb.net, epanetSingleLeak,
			16, workers, rand.New(rand.NewSource(tinyScale.Seed+101)))
		if err != nil {
			t.Fatalf("evalProfile(workers=%d): %v", workers, err)
		}
		return score
	}
	serial := run(1)
	for _, workers := range []int{2, 7, 0} {
		if par := run(workers); par != serial {
			t.Fatalf("workers=%d diverged: serial=%v parallel=%v", workers, serial, par)
		}
	}
}
