package bench

import (
	"fmt"
	"math/rand"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// FaultTolerance measures how the evaluation pipeline behaves under
// injected faults on the WSSC-SUBNET cold-weather testbed: forced solver
// non-convergence exercising the retry/skip machinery, and sensor faults
// (dropout/stuck/NaN) exercising the degraded-input guards. The profile is
// trained on clean data once; each row re-evaluates it through a factory
// with that row's fault configuration, so rows differ only in the injected
// faults.
func FaultTolerance(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildWSSCSubnet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(30, scale.Seed+3)
	if err != nil {
		return nil, err
	}
	cleanFactory, err := tb.factoryFor(sensors, wsscMultiLeak, Scale{})
	if err != nil {
		return nil, err
	}
	ds, err := cleanFactory.Generate(scale.TrainSamples, rand.New(rand.NewSource(scale.Seed+11)))
	if err != nil {
		return nil, err
	}
	profileCfg := core.ProfileConfig{Technique: scale.Technique, Seed: scale.Seed + 77}

	// faultySystem wires the clean-trained profile behind a factory that
	// injects cfg's faults with the given retry budget. TrainOn is
	// deterministic for a fixed dataset and config, so every row carries
	// the identical profile.
	faultySystem := func(cfg faults.Config, retries int) (*core.System, error) {
		factory, err := dataset.NewFactory(tb.net, sensors, dataset.Config{
			Noise:  sensor.DefaultNoise,
			Leaks:  wsscMultiLeak,
			Retry:  hydraulic.RetryPolicy{MaxRetries: retries},
			Faults: cfg,
		})
		if err != nil {
			return nil, err
		}
		sys := core.NewSystem(factory, tb.net, core.SystemConfig{})
		if err := sys.TrainOn(ds, profileCfg); err != nil {
			return nil, err
		}
		return sys, nil
	}
	evalRow := func(sys *core.System) (core.EvalResult, error) {
		return sys.EvaluateParallel(scale.TestScenarios, wsscMultiLeak,
			core.ObserveOptions{ElapsedSlots: 2},
			scale.Workers,
			rand.New(rand.NewSource(scale.Seed+501)))
	}

	fig := &Figure{
		ID:    "fault-tolerance",
		Title: "Fault tolerance: solver retry/skip and sensor faults (WSSC-SUBNET, cold multi-failures)",
	}

	solverCols := []string{"fail rate", "evaluated", "skipped", "retries", "Hamming"}
	recovered := Table{Title: "(a) forced non-convergence, retry budget 2 (1 forced failure per hit)", Columns: solverCols}
	exhausted := Table{Title: "(b) forced non-convergence, retry budget 0 (every hit skips)", Columns: solverCols}
	for _, rate := range []float64{0, 0.05, 0.10, 0.20} {
		for _, tbl := range []struct {
			table    *Table
			retries  int
			attempts int
		}{
			{&recovered, 2, 1},
			{&exhausted, 0, 1},
		} {
			sys, err := faultySystem(faults.Config{SolverFail: rate, SolverFailAttempts: tbl.attempts}, tbl.retries)
			if err != nil {
				return nil, err
			}
			res, err := evalRow(sys)
			if err != nil {
				return nil, fmt.Errorf("bench: fault-tolerance at rate %.2f: %w", rate, err)
			}
			tbl.table.Rows = append(tbl.table.Rows, []string{
				fmt.Sprintf("%.2f", rate),
				fmt.Sprintf("%d/%d", res.Evaluated, res.Scenarios),
				fmt.Sprintf("%d", len(res.Skipped)),
				fmt.Sprintf("%d", res.Retries),
				fmt.Sprintf("%.3f", res.MeanHamming),
			})
		}
	}

	sensorTable := Table{Title: "(c) sensor faults (retry budget 0, no solver faults)", Columns: []string{"dropout", "stuck", "NaN", "Hamming"}}
	for _, cfg := range []faults.Config{
		{},
		{Dropout: 0.10},
		{Dropout: 0.25},
		{Dropout: 0.10, Stuck: 0.10, NaN: 0.05},
	} {
		sys, err := faultySystem(cfg, 0)
		if err != nil {
			return nil, err
		}
		res, err := evalRow(sys)
		if err != nil {
			return nil, fmt.Errorf("bench: fault-tolerance sensor row %+v: %w", cfg, err)
		}
		sensorTable.Rows = append(sensorTable.Rows, []string{
			fmt.Sprintf("%.2f", cfg.Dropout),
			fmt.Sprintf("%.2f", cfg.Stuck),
			fmt.Sprintf("%.2f", cfg.NaN),
			fmt.Sprintf("%.3f", res.MeanHamming),
		})
	}

	fig.Tables = append(fig.Tables, recovered, exhausted, sensorTable)
	fig.Notes = append(fig.Notes,
		"with the retry budget at or above the forced-failure depth every hit recovers (skipped=0); with no budget every hit is skipped and accounted, and the score is computed over the survivors",
		"sensor faults degrade the score gradually: non-finite readings are sanitized to neutral features instead of poisoning inference",
	)
	return fig, nil
}
