package bench

import (
	"fmt"
	"math/rand"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/network"
)

// fig9Gammas sweeps the tweet coarseness γ in meters (the paper's 30 m up
// to kilometer-scale coarseness).
var fig9Gammas = []float64{30, 100, 300, 600, 1200, 2000}

// fig9Percent fixes the IoT deployment for the γ sweep.
const fig9Percent = 40.0

// Fig9Coarseness reproduces Fig. 9: the effect of coarser Twitter data
// (larger γ) on the Hamming score, with and without temperature data, on
// WSSC-SUBNET cold-weather multi-failures.
func Fig9Coarseness(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildWSSCSubnet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(fig9Percent, scale.Seed+3)
	if err != nil {
		return nil, err
	}
	sys, err := tb.trainedSystem(sensors, wsscMultiLeak, scale)
	if err != nil {
		return nil, fmt.Errorf("bench: fig9: %w", err)
	}

	fig := &Figure{
		ID:     "fig9",
		Title:  fmt.Sprintf("Effect of twitter-data coarseness gamma (WSSC-SUBNET, %.0f%% IoT)", fig9Percent),
		XLabel: "gamma (m)",
		YLabel: "Hamming score",
	}

	iotOnly, err := sys.EvaluateParallel(scale.TestScenarios, wsscMultiLeak,
		core.ObserveOptions{ElapsedSlots: 4},
		scale.Workers,
		rand.New(rand.NewSource(scale.Seed+101)))
	if err != nil {
		return nil, err
	}

	var base, human, humanTemp Series
	base.Name = "IoT only"
	human.Name = "IoT + human"
	humanTemp.Name = "IoT + human + temp"
	for _, gamma := range fig9Gammas {
		h, err := sys.EvaluateParallel(scale.TestScenarios, wsscMultiLeak,
			core.ObserveOptions{
				Sources:      core.Sources{Human: true},
				ElapsedSlots: 4,
				GammaM:       gamma,
			},
			scale.Workers,
			rand.New(rand.NewSource(scale.Seed+101)))
		if err != nil {
			return nil, err
		}
		ht, err := sys.EvaluateParallel(scale.TestScenarios, wsscMultiLeak,
			core.ObserveOptions{
				Sources:      core.Sources{Weather: true, Human: true},
				ElapsedSlots: 4,
				GammaM:       gamma,
			},
			scale.Workers,
			rand.New(rand.NewSource(scale.Seed+101)))
		if err != nil {
			return nil, err
		}
		base.Points = append(base.Points, Point{X: gamma, Y: iotOnly.MeanHamming})
		human.Points = append(human.Points, Point{X: gamma, Y: h.MeanHamming})
		humanTemp.Points = append(humanTemp.Points, Point{X: gamma, Y: ht.MeanHamming})
	}
	fig.Series = append(fig.Series, base, human, humanTemp)
	fig.Notes = append(fig.Notes,
		"paper: human input loses efficacy as gamma coarsens; adding temperature compensates and keeps the score higher",
	)
	return fig, nil
}
