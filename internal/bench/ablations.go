package bench

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/fusion"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/mlearn"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
	"github.com/aquascale/aquascale/internal/stats"
)

// Ablations probe the design choices DESIGN.md calls out: k-medoids
// placement, Bayesian odds fusion, the Γ entropy threshold, and the
// emitter exponent β.

// AblationPlacement compares k-medoids sensor placement against uniform
// random placement at equal device budgets (EPA-NET, single leak).
func AblationPlacement(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-placement",
		Title:  "Sensor placement: k-medoids vs random (EPA-NET, single failure)",
		XLabel: "IoT observation (%)",
		YLabel: "Hamming score",
	}
	var med, rnd Series
	med.Name = "k-medoids"
	rnd.Name = "random"
	for _, pct := range []float64{10, 30, 50} {
		count := tb.placer.CountForPercent(pct)
		kmed, err := tb.placer.KMedoids(count, rand.New(rand.NewSource(scale.Seed+3)))
		if err != nil {
			return nil, err
		}
		random, err := tb.placer.Random(count, rand.New(rand.NewSource(scale.Seed+3)))
		if err != nil {
			return nil, err
		}
		kScore, err := placementScore(tb, kmed, scale)
		if err != nil {
			return nil, err
		}
		rScore, err := placementScore(tb, random, scale)
		if err != nil {
			return nil, err
		}
		med.Points = append(med.Points, Point{X: pct, Y: kScore})
		rnd.Points = append(rnd.Points, Point{X: pct, Y: rScore})
	}
	fig.Series = append(fig.Series, med, rnd)
	fig.Notes = append(fig.Notes,
		"on EPA-NET's looped grid the two placements perform comparably: pressures are broadly correlated, so signature-based k-medoids mainly guards against pathological clustering",
		"the paper defers placement optimization to future work; this ablation quantifies how much headroom it has")
	return fig, nil
}

func placementScore(tb *testbed, sensors []sensor.Sensor, scale Scale) (float64, error) {
	factory, err := tb.factoryFor(sensors, epanetSingleLeak, scale)
	if err != nil {
		return 0, err
	}
	ds, err := factory.Generate(scale.TrainSamples, rand.New(rand.NewSource(scale.Seed+11)))
	if err != nil {
		return 0, err
	}
	profile, err := trainProfileOnly(ds, len(tb.net.Nodes), scale.Technique, scale.Seed+77)
	if err != nil {
		return 0, err
	}
	return evalProfile(factory, profile, tb.net, epanetSingleLeak,
		scale.TestScenarios, scale.Workers, rand.New(rand.NewSource(scale.Seed+101)))
}

// AblationBayesFusion compares the paper's Bayesian odds aggregation of
// freeze evidence (eqs. 5–6) against naive probability averaging.
func AblationBayesFusion(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(30, scale.Seed+3)
	if err != nil {
		return nil, err
	}
	sys, err := tb.trainedSystem(sensors, epanetMultiLeak, scale)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "ablation-bayes",
		Title:  "Freeze-evidence fusion: Bayesian odds vs naive averaging (EPA-NET, 30% IoT)",
		XLabel: "variant",
		YLabel: "Hamming score",
	}
	rng := rand.New(rand.NewSource(scale.Seed + 101))
	var noFuse, bayes, naive float64
	var noFuseBrier, bayesBrier, naiveBrier float64
	pLeak := 0.9 // p(leak|freeze), the paper's value
	for i := 0; i < scale.TestScenarios; i++ {
		sc, err := sys.GenerateColdScenario(epanetMultiLeak, rng)
		if err != nil {
			return nil, err
		}
		obs, err := sys.Observe(sc, core.ObserveOptions{
			Sources:      core.Sources{Weather: true},
			ElapsedSlots: 1,
		}, rng)
		if err != nil {
			return nil, err
		}
		proba, err := sys.Profile().PredictProba(obs.Features)
		if err != nil {
			return nil, err
		}
		truth := sc.Labels(len(tb.net.Nodes))

		fused := make([]float64, len(proba))
		copy(fused, proba)
		avg := make([]float64, len(proba))
		copy(avg, proba)
		for v, frozen := range obs.Frozen {
			if !frozen {
				continue
			}
			fused[v] = stats.FuseOdds(fused[v], pLeak)
			avg[v] = (avg[v] + pLeak) / 2
		}
		noFuse += mlearn.HammingScoreProba(proba, truth)
		bayes += mlearn.HammingScoreProba(fused, truth)
		naive += mlearn.HammingScoreProba(avg, truth)
		noFuseBrier += brier(proba, truth)
		bayesBrier += brier(fused, truth)
		naiveBrier += brier(avg, truth)
	}
	n := float64(scale.TestScenarios)
	fig.Tables = append(fig.Tables, Table{
		Columns: []string{"fusion variant", "mean Hamming", "Brier score (lower = better calibrated)"},
		Rows: [][]string{
			{"no weather evidence", fmt.Sprintf("%.3f", noFuse/n), fmt.Sprintf("%.4f", noFuseBrier/n)},
			{"Bayesian odds (paper)", fmt.Sprintf("%.3f", bayes/n), fmt.Sprintf("%.4f", bayesBrier/n)},
			{"naive average", fmt.Sprintf("%.3f", naive/n), fmt.Sprintf("%.4f", naiveBrier/n)},
		},
	})
	fig.Notes = append(fig.Notes,
		"with p(leak|freeze)=0.9 both rules share the same 0.5-crossing (prior p > 0.1), so thresholded Hamming ties",
		"the Brier score separates them: averaging inflates every detected node to >=0.45, wrecking calibration of the probabilities Phase II feeds into the entropy/energy machinery; odds fusion scales with the prior",
	)
	return fig, nil
}

// brier is the mean squared error of probabilities against binary truth.
func brier(proba []float64, truth []int) float64 {
	if len(proba) == 0 {
		return 0
	}
	total := 0.0
	for v, p := range proba {
		y := 0.0
		if v < len(truth) && truth[v] == 1 {
			y = 1
		}
		d := p - y
		total += d * d
	}
	return total / float64(len(proba))
}

// AblationGammaThreshold sweeps the Γ entropy threshold of the
// higher-order potential (eq. 10): Γ = 0 always applies human input;
// larger Γ lets determinate pipeline-level predictions override cliques.
func AblationGammaThreshold(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(30, scale.Seed+3)
	if err != nil {
		return nil, err
	}
	sys, err := tb.trainedSystem(sensors, epanetMultiLeak, scale)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "ablation-gamma",
		Title:  "Entropy threshold Gamma of the higher-order potential (EPA-NET, 30% IoT)",
		XLabel: "Gamma (nats)",
		YLabel: "Hamming score",
	}
	var s Series
	s.Name = "IoT + human"
	for _, gammaT := range []float64{0, 0.2, 0.4, 0.6, 0.69} {
		engine := fusion.NewEngine(fusion.Config{EntropyThreshold: gammaT})
		rng := rand.New(rand.NewSource(scale.Seed + 101))
		total := 0.0
		for i := 0; i < scale.TestScenarios; i++ {
			sc, err := sys.GenerateColdScenario(epanetMultiLeak, rng)
			if err != nil {
				return nil, err
			}
			obs, err := sys.Observe(sc, core.ObserveOptions{
				Sources:      core.Sources{Human: true},
				ElapsedSlots: 4,
				GammaM:       60,
			}, rng)
			if err != nil {
				return nil, err
			}
			proba, err := sys.Profile().PredictProba(obs.Features)
			if err != nil {
				return nil, err
			}
			pred, _, err := engine.Infer(proba, nil, obs.Cliques)
			if err != nil {
				return nil, err
			}
			total += mlearn.HammingScoreProba(pred.Proba, sc.Labels(len(tb.net.Nodes)))
		}
		s.Points = append(s.Points, Point{X: gammaT, Y: total / float64(scale.TestScenarios)})
	}
	fig.Series = append(fig.Series, s)
	fig.Notes = append(fig.Notes,
		"Gamma=0 (paper default) always applies human input; near ln2 the potential is suppressed and human input is ignored",
	)
	return fig, nil
}

// AblationEmitterExponent sweeps the leak-model exponent β in
// Q = EC·p^β (the paper fixes β = 0.5) and reports the hydraulic effect of
// the same leak under each β.
func AblationEmitterExponent(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	net := network.BuildEPANet()
	leakNode, ok := net.NodeIndex("J45")
	if !ok {
		return nil, fmt.Errorf("bench: missing EPA-NET node J45")
	}
	fig := &Figure{
		ID:     "ablation-beta",
		Title:  "Emitter exponent beta sensitivity (EPA-NET, EC=2e-3 at J45)",
		XLabel: "beta",
		YLabel: "hydraulic response",
	}
	table := Table{
		Columns: []string{"beta", "leak outflow (L/s)", "pressure at leak (m)", "pressure drop (m)"},
	}
	for _, beta := range []float64{0.5, 1.0, 1.5} {
		solver, err := hydraulic.NewSolver(net, hydraulic.Options{EmitterExponent: beta})
		if err != nil {
			return nil, err
		}
		base, err := solver.SolveSteady(0, nil, nil)
		if err != nil {
			return nil, err
		}
		// EC scaled so flows stay comparable across beta at ~40 m head.
		ec := 2e-3 / math.Pow(40, beta-0.5)
		res, err := solver.SolveSteady(0, []hydraulic.Emitter{{Node: leakNode, Coeff: ec}}, nil)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.1f", beta),
			fmt.Sprintf("%.2f", res.EmitterFlow[leakNode]*1000),
			fmt.Sprintf("%.2f", res.Pressure[leakNode]),
			fmt.Sprintf("%.3f", base.Pressure[leakNode]-res.Pressure[leakNode]),
		})
	}
	fig.Tables = append(fig.Tables, table)
	fig.Notes = append(fig.Notes,
		"higher beta makes discharge more pressure-sensitive; beta=0.5 (paper) models orifice-type leaks",
	)
	return fig, nil
}
