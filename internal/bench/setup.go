package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/mlearn"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// testbed bundles a network with its sensor placer (built from a leak-free
// baseline EPS run, as sensor placement requires).
type testbed struct {
	net    *network.Network
	placer *sensor.Placer
}

func newTestbed(build func() *network.Network) (*testbed, error) {
	net := build()
	baseline, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{
		Duration: 6 * time.Hour,
		Step:     time.Hour,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline EPS for %s: %w", net.Name, err)
	}
	placer, err := sensor.NewPlacer(net, baseline)
	if err != nil {
		return nil, err
	}
	return &testbed{net: net, placer: placer}, nil
}

// sensorsAtPercent places k-medoids sensors at the given IoT deployment
// percentage.
func (tb *testbed) sensorsAtPercent(pct float64, seed int64) ([]sensor.Sensor, error) {
	count := tb.placer.CountForPercent(pct)
	return tb.placer.KMedoids(count, rand.New(rand.NewSource(seed)))
}

// factoryFor builds a data factory over the given sensors, threading the
// scale's robustness knobs (fault injection, retry budget, fail-fast) into
// the factory config. A zero-valued Scale robustness section reproduces
// the historical factory exactly.
func (tb *testbed) factoryFor(sensors []sensor.Sensor, leakCfg leak.GeneratorConfig, scale Scale) (*dataset.Factory, error) {
	return dataset.NewFactory(tb.net, sensors, dataset.Config{
		Noise:    sensor.DefaultNoise,
		Leaks:    leakCfg,
		Retry:    hydraulic.RetryPolicy{MaxRetries: scale.Retries},
		Faults:   scale.Faults,
		FailFast: scale.FailFast,
	})
}

// trainedSystem wires and trains a full AquaSCALE system.
func (tb *testbed) trainedSystem(sensors []sensor.Sensor, leakCfg leak.GeneratorConfig, scale Scale) (*core.System, error) {
	factory, err := tb.factoryFor(sensors, leakCfg, scale)
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(factory, tb.net, core.SystemConfig{})
	err = sys.Train(scale.TrainSamples,
		core.ProfileConfig{Technique: scale.Technique, Seed: scale.Seed + 77},
		rand.New(rand.NewSource(scale.Seed+11)))
	if err != nil {
		return nil, err
	}
	return sys, nil
}

// evalProfile measures the profile-only (IoT data only, no fusion) mean
// Hamming score over fresh plain scenarios — the Fig 6/7 setting.
//
// Scenarios and one noise seed per scenario are pre-drawn from rng, then
// fanned out over workers (0 means runtime.NumCPU(), 1 forces serial),
// each worker reusing one dataset session; the score is identical for
// every worker count at a fixed seed.
func evalProfile(factory *dataset.Factory, profile *core.Profile, net *network.Network,
	leakCfg leak.GeneratorConfig, count, workers int, rng *rand.Rand) (float64, error) {
	gen, err := leak.NewGenerator(net, leakCfg, rng)
	if err != nil {
		return 0, err
	}
	scenarios := gen.Batch(count)
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > count {
		workers = count
	}
	sessions := make([]*dataset.Session, workers)
	for w := range sessions {
		sess, err := factory.NewSession()
		if err != nil {
			return 0, err
		}
		sessions[w] = sess
	}

	preds := make([][]int, count)
	truths := make([][]int, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sess *dataset.Session) {
			defer wg.Done()
			for i := range work {
				sample, err := sess.FromScenario(scenarios[i], rand.New(rand.NewSource(seeds[i])))
				if err != nil {
					errs[i] = err
					continue
				}
				pred, err := profile.Predict(sample.Features)
				if err != nil {
					errs[i] = err
					continue
				}
				preds[i] = pred
				truths[i] = scenarios[i].Labels(len(net.Nodes))
			}
		}(sessions[w])
	}
	for i := 0; i < count; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return mlearn.MeanHammingScore(preds, truths), nil
}

// trainProfileOnly trains just a Phase-I profile for one technique over a
// pre-generated dataset (so Fig 6 can reuse one dataset across techniques).
func trainProfileOnly(ds *dataset.Dataset, nodeCount int, technique core.Technique, seed int64) (*core.Profile, error) {
	return core.TrainProfile(ds, nodeCount, core.ProfileConfig{Technique: technique, Seed: seed})
}

// epanetSingleLeak is the Fig 6/7a scenario family.
var epanetSingleLeak = leak.GeneratorConfig{MinEvents: 1, MaxEvents: 1}

// epanetMultiLeak is the paper's U(1,5) concurrent-failure family.
var epanetMultiLeak = leak.GeneratorConfig{MinEvents: 1, MaxEvents: 5}
