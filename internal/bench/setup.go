package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/mlearn"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// testbed bundles a network with its sensor placer (built from a leak-free
// baseline EPS run, as sensor placement requires).
type testbed struct {
	net    *network.Network
	placer *sensor.Placer
}

func newTestbed(build func() *network.Network) (*testbed, error) {
	net := build()
	baseline, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{
		Duration: 6 * time.Hour,
		Step:     time.Hour,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline EPS for %s: %w", net.Name, err)
	}
	placer, err := sensor.NewPlacer(net, baseline)
	if err != nil {
		return nil, err
	}
	return &testbed{net: net, placer: placer}, nil
}

// sensorsAtPercent places k-medoids sensors at the given IoT deployment
// percentage.
func (tb *testbed) sensorsAtPercent(pct float64, seed int64) ([]sensor.Sensor, error) {
	count := tb.placer.CountForPercent(pct)
	return tb.placer.KMedoids(count, rand.New(rand.NewSource(seed)))
}

// factoryFor builds a data factory over the given sensors.
func (tb *testbed) factoryFor(sensors []sensor.Sensor, leakCfg leak.GeneratorConfig) (*dataset.Factory, error) {
	return dataset.NewFactory(tb.net, sensors, dataset.Config{
		Noise: sensor.DefaultNoise,
		Leaks: leakCfg,
	})
}

// trainedSystem wires and trains a full AquaSCALE system.
func (tb *testbed) trainedSystem(sensors []sensor.Sensor, leakCfg leak.GeneratorConfig, scale Scale) (*core.System, error) {
	factory, err := tb.factoryFor(sensors, leakCfg)
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(factory, tb.net, core.SystemConfig{})
	err = sys.Train(scale.TrainSamples,
		core.ProfileConfig{Technique: scale.Technique, Seed: scale.Seed + 77},
		rand.New(rand.NewSource(scale.Seed+11)))
	if err != nil {
		return nil, err
	}
	return sys, nil
}

// evalProfile measures the profile-only (IoT data only, no fusion) mean
// Hamming score over fresh plain scenarios — the Fig 6/7 setting.
func evalProfile(factory *dataset.Factory, profile *core.Profile, net *network.Network,
	leakCfg leak.GeneratorConfig, count int, rng *rand.Rand) (float64, error) {
	gen, err := leak.NewGenerator(net, leakCfg, rng)
	if err != nil {
		return 0, err
	}
	var preds, truths [][]int
	for i := 0; i < count; i++ {
		sc := gen.Next()
		sample, err := factory.FromScenario(sc, rng)
		if err != nil {
			return 0, err
		}
		pred, err := profile.Predict(sample.Features)
		if err != nil {
			return 0, err
		}
		preds = append(preds, pred)
		truths = append(truths, sc.Labels(len(net.Nodes)))
	}
	return mlearn.MeanHammingScore(preds, truths), nil
}

// trainProfileOnly trains just a Phase-I profile for one technique over a
// pre-generated dataset (so Fig 6 can reuse one dataset across techniques).
func trainProfileOnly(ds *dataset.Dataset, nodeCount int, technique string, seed int64) (*core.Profile, error) {
	return core.TrainProfile(ds, nodeCount, core.ProfileConfig{Technique: technique, Seed: seed})
}

// epanetSingleLeak is the Fig 6/7a scenario family.
var epanetSingleLeak = leak.GeneratorConfig{MinEvents: 1, MaxEvents: 1}

// epanetMultiLeak is the paper's U(1,5) concurrent-failure family.
var epanetMultiLeak = leak.GeneratorConfig{MinEvents: 1, MaxEvents: 5}
