package bench

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/aquascale/aquascale/internal/weather"
)

// Fig3BreaksVsTemperature reproduces Fig. 3: average pipe breaks per day
// alongside ambient temperature over five years (the paper plots WSSC
// break records for 2012–2016 against NOAA temperatures). Here the break
// records come from the temperature-driven break-rate model; the figure's
// message — break rate spikes whenever temperature dips toward freezing —
// is regenerated from the model.
func Fig3BreaksVsTemperature(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	rng := rand.New(rand.NewSource(scale.Seed))
	model := weather.BreakRateModel{}

	const years = 5
	const daysPerMonth = 30
	months := years * 12

	fig := &Figure{
		ID:     "fig3",
		Title:  "Average pipe breaks/day vs. ambient temperature (synthetic 5-year record)",
		XLabel: "month index",
		YLabel: "monthly mean",
	}
	temp := Series{Name: "temperature (F)"}
	breaks := Series{Name: "breaks/day"}

	coldest := math.Inf(1)
	warmest := math.Inf(-1)
	var coldBreaks, warmBreaks []float64
	for m := 0; m < months; m++ {
		// Seasonal mid-Atlantic climate: coldest around mid-January
		// (month index 0), warmest in July.
		seasonal := 52 - 30*math.Cos(2*math.Pi*float64(m%12)/12)
		var mTemp, mBreaks float64
		for d := 0; d < daysPerMonth; d++ {
			dayTemp := seasonal + rng.NormFloat64()*6
			mTemp += dayTemp
			mBreaks += float64(model.SampleDailyBreaks(dayTemp, rng))
		}
		mTemp /= daysPerMonth
		mBreaks /= daysPerMonth
		temp.Points = append(temp.Points, Point{X: float64(m + 1), Y: mTemp})
		breaks.Points = append(breaks.Points, Point{X: float64(m + 1), Y: mBreaks})
		if mTemp < coldest {
			coldest = mTemp
		}
		if mTemp > warmest {
			warmest = mTemp
		}
		if mTemp < 40 {
			coldBreaks = append(coldBreaks, mBreaks)
		}
		if mTemp > 65 {
			warmBreaks = append(warmBreaks, mBreaks)
		}
	}
	fig.Series = append(fig.Series, temp, breaks)

	coldMean := mean(coldBreaks)
	warmMean := mean(warmBreaks)
	ratio := math.Inf(1)
	if warmMean > 0 {
		ratio = coldMean / warmMean
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("monthly temperature range %.1f–%.1f F", coldest, warmest),
		fmt.Sprintf("cold months (<40F) average %.2f breaks/day vs %.2f in warm months (>65F): %.1fx amplification",
			coldMean, warmMean, ratio),
	)
	return fig, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
