package bench

import (
	"fmt"
	"math/rand"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/network"
)

// fig6Techniques is the paper's Fig-6 lineup.
var fig6Techniques = []core.Technique{
	core.TechniqueLinear, core.TechniqueLogistic, core.TechniqueGB,
	core.TechniqueRF, core.TechniqueSVM,
}

// Fig6MLComparison reproduces Fig. 6: the plug-and-play comparison of ML
// techniques for single-leak identification on EPA-NET, at full (a) and
// 10% (b) IoT observation.
func Fig6MLComparison(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig6",
		Title:  "ML technique comparison, single failure (EPA-NET)",
		XLabel: "IoT observation (%)",
		YLabel: "Hamming score",
	}
	scores := make(map[core.Technique][]Point, len(fig6Techniques))

	for _, pct := range []float64{100, 10} {
		sensors, err := tb.sensorsAtPercent(pct, scale.Seed+3)
		if err != nil {
			return nil, err
		}
		factory, err := tb.factoryFor(sensors, epanetSingleLeak, scale)
		if err != nil {
			return nil, err
		}
		// One dataset per deployment, shared by all techniques — exactly
		// the paper's protocol ("the same dataset is trained...").
		ds, err := factory.Generate(scale.TrainSamples, rand.New(rand.NewSource(scale.Seed+11)))
		if err != nil {
			return nil, err
		}
		for _, tech := range fig6Techniques {
			profile, err := trainProfileOnly(ds, len(tb.net.Nodes), tech, scale.Seed+77)
			if err != nil {
				return nil, fmt.Errorf("bench: fig6 %s at %.0f%%: %w", tech, pct, err)
			}
			score, err := evalProfile(factory, profile, tb.net, epanetSingleLeak,
				scale.TestScenarios, scale.Workers, rand.New(rand.NewSource(scale.Seed+101)))
			if err != nil {
				return nil, err
			}
			scores[tech] = append(scores[tech], Point{X: pct, Y: score})
		}
	}
	for _, tech := range fig6Techniques {
		fig.Series = append(fig.Series, Series{Name: tech.String(), Points: scores[tech]})
	}
	fig.Notes = append(fig.Notes,
		"paper: all techniques score high at 100% IoT; RF and SVM degrade least at 10%",
		fmt.Sprintf("scale: %d training scenarios, %d test scenarios (paper: 20000/2000)",
			scale.TrainSamples, scale.TestScenarios),
	)
	return fig, nil
}
