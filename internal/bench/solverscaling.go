package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// denseSolveCap is the junction count above which the dense backend is
// not measured: one dense steady solve past ~2.5k junctions runs into
// minutes of O(nj³) factorization per Newton iteration, which is the
// point the experiment exists to demonstrate, not to sit through.
const denseSolveCap = 2500

// SolverScaling measures the sparse linear-algebra refactor two ways:
// (a) one steady solve per network across sizes, dense vs. sparse, with
// the pattern/fill statistics that explain the gap; (b) the WSSC-SUBNET
// end-to-end Phase-II pipeline (train + parallel evaluation) with the
// backend forced each way. Structural columns (junctions, nnz, fill,
// agreement, scores) are deterministic; the timing columns are wall-clock
// measurements and vary run to run like the per-figure timing lines.
func SolverScaling(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	fig := &Figure{
		ID:    "solver-scaling",
		Title: "Solver scaling: dense Cholesky vs. reordered sparse LDL^T",
	}

	nets := []struct {
		name  string
		build func() *network.Network
	}{
		{"EPA-NET", network.BuildEPANet},
		{"WSSC-SUBNET", network.BuildWSSCSubnet},
		{"GRID-32x32", func() *network.Network { return network.BuildGrid(network.GridConfig{Rows: 32, Cols: 32}) }},
		{"GRID-46x46", func() *network.Network { return network.BuildGrid(network.GridConfig{Rows: 46, Cols: 46}) }},
		{"GRID-64x64", func() *network.Network { return network.BuildGrid(network.GridConfig{Rows: 64, Cols: 64}) }},
	}
	solveTable := Table{
		Title:   "(a) one steady solve (all Newton iterations), per backend",
		Columns: []string{"network", "junctions", "nnz(A)", "nnz(L)", "fill", "dense ms", "sparse ms", "speedup", "max rel diff"},
	}
	for _, tc := range nets {
		net := tc.build()
		nj := net.JunctionCount()
		sparse, err := hydraulic.NewSolver(net, hydraulic.Options{Backend: hydraulic.BackendSparse})
		if err != nil {
			return nil, fmt.Errorf("bench: solver-scaling %s: %w", tc.name, err)
		}
		nnz, factorNNZ := sparse.SystemStats()
		sres, sparseMS, err := timeSteadySolve(sparse, 3)
		if err != nil {
			return nil, fmt.Errorf("bench: solver-scaling %s sparse: %w", tc.name, err)
		}
		denseCell, speedupCell, diffCell := "-", "-", "-"
		if nj <= denseSolveCap {
			dense, err := hydraulic.NewSolver(net, hydraulic.Options{Backend: hydraulic.BackendDense})
			if err != nil {
				return nil, fmt.Errorf("bench: solver-scaling %s: %w", tc.name, err)
			}
			dres, denseMS, err := timeSteadySolve(dense, 1)
			if err != nil {
				return nil, fmt.Errorf("bench: solver-scaling %s dense: %w", tc.name, err)
			}
			denseCell = fmt.Sprintf("%.2f", denseMS)
			speedupCell = fmt.Sprintf("%.0fx", denseMS/sparseMS)
			diffCell = fmt.Sprintf("%.1e", maxRelDiff(dres.Head, sres.Head))
		}
		solveTable.Rows = append(solveTable.Rows, []string{
			tc.name,
			fmt.Sprintf("%d", nj),
			fmt.Sprintf("%d", nnz),
			fmt.Sprintf("%d", factorNNZ),
			fmt.Sprintf("%.2f", float64(factorNNZ)/float64(nnz)),
			denseCell,
			fmt.Sprintf("%.2f", sparseMS),
			speedupCell,
			diffCell,
		})
	}
	fig.Tables = append(fig.Tables, solveTable)

	// (b) End to end on the paper's larger network: same trained pipeline,
	// backend forced each way through the dataset factory's solver options.
	tb, err := newTestbed(network.BuildWSSCSubnet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(30, scale.Seed+3)
	if err != nil {
		return nil, err
	}
	endTable := Table{
		Title:   fmt.Sprintf("(b) WSSC-SUBNET Phase-II end to end: train %d, evaluate %d multi-leak scenarios", scale.TrainSamples, scale.TestScenarios),
		Columns: []string{"backend", "train s", "eval s", "Hamming"},
	}
	for _, be := range []struct {
		name    string
		backend hydraulic.Backend
	}{
		{"dense", hydraulic.BackendDense},
		{"sparse", hydraulic.BackendSparse},
	} {
		factory, err := dataset.NewFactory(tb.net, sensors, dataset.Config{
			Noise:  sensor.DefaultNoise,
			Leaks:  wsscMultiLeak,
			Solver: hydraulic.Options{Backend: be.backend},
		})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		ds, err := factory.Generate(scale.TrainSamples, rand.New(rand.NewSource(scale.Seed+11)))
		if err != nil {
			return nil, fmt.Errorf("bench: solver-scaling %s train: %w", be.name, err)
		}
		sys := core.NewSystem(factory, tb.net, core.SystemConfig{})
		if err := sys.TrainOn(ds, core.ProfileConfig{Technique: scale.Technique, Seed: scale.Seed + 77}); err != nil {
			return nil, err
		}
		trainSec := time.Since(t0).Seconds()
		t0 = time.Now()
		res, err := sys.EvaluateParallel(scale.TestScenarios, wsscMultiLeak,
			core.ObserveOptions{ElapsedSlots: 2},
			scale.Workers,
			rand.New(rand.NewSource(scale.Seed+501)))
		if err != nil {
			return nil, fmt.Errorf("bench: solver-scaling %s eval: %w", be.name, err)
		}
		endTable.Rows = append(endTable.Rows, []string{
			be.name,
			fmt.Sprintf("%.1f", trainSec),
			fmt.Sprintf("%.1f", time.Since(t0).Seconds()),
			fmt.Sprintf("%.3f", res.MeanHamming),
		})
	}
	fig.Tables = append(fig.Tables, endTable)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("dense omitted above %d junctions: one O(nj³) factorization per Newton iteration is impractical there — the gap the sparse backend closes", denseSolveCap),
		"timing cells are wall-clock and vary run to run; junctions, nnz, fill, max rel diff and Hamming are deterministic",
	)
	return fig, nil
}

// timeSteadySolve runs reps cold steady solves and returns the last
// result and the mean wall-clock milliseconds per solve.
func timeSteadySolve(s *hydraulic.Solver, reps int) (*hydraulic.Result, float64, error) {
	var res *hydraulic.Result
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		var err error
		res, err = s.SolveSteady(0, nil, nil)
		if err != nil {
			return nil, 0, err
		}
	}
	return res, time.Since(t0).Seconds() * 1000 / float64(reps), nil
}

// maxRelDiff is the worst relative disagreement max|a−b|/(1+|a|).
func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i]-b[i]) / (1 + math.Abs(a[i])); d > worst {
			worst = d
		}
	}
	return worst
}
