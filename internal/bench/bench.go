// Package bench is the experiment harness: one generator per table/figure
// of the paper's evaluation (Sec. V), shared by the aquabench command and
// the repository's testing.B benchmarks. Each generator rebuilds the
// experiment — network, sensor placement, profile training, multi-source
// inference — and returns a renderable Figure with the same series the
// paper plots.
//
// Experiments accept a Scale so the same code runs CI-sized (seconds to
// minutes) or paper-sized (the paper trains on 20,000 scenarios and tests
// on 2,000). Absolute scores at reduced scale sit below the paper's; the
// qualitative shape — who wins, what improves with more sensors, sources
// and time — is preserved and recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// Scale sets the experiment size.
type Scale struct {
	// TrainSamples is the Phase-I dataset size. Zero means 600.
	// The paper uses 20,000.
	TrainSamples int

	// TestScenarios is the evaluation set size. Zero means 60.
	// The paper uses 2,000.
	TestScenarios int

	// Seed drives every stochastic component.
	Seed int64

	// Technique is the profile classifier for fusion experiments.
	// Empty means core.TechniqueHybridRSL (the paper's choice after Fig 7).
	Technique core.Technique

	// Workers caps the parallel-evaluation worker pool. Zero means
	// runtime.NumCPU(); 1 forces serial evaluation. For a fixed Seed the
	// figures are identical at every worker count.
	Workers int

	// Faults injects deterministic sensor/solver faults into every data
	// factory the experiments build (see internal/faults). The zero value
	// injects nothing and leaves every figure bit-identical to a run
	// without this field.
	Faults faults.Config

	// Retries is the solver retry budget on non-convergence (stepped
	// relaxation + warm restart). Zero disables retry.
	Retries int

	// FailFast aborts experiments on the first failed scenario instead of
	// skipping it — the historical behavior.
	FailFast bool
}

func (s Scale) withDefaults() Scale {
	if s.TrainSamples <= 0 {
		s.TrainSamples = 600
	}
	if s.TestScenarios <= 0 {
		s.TestScenarios = 60
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Technique == "" {
		s.Technique = core.TechniqueHybridRSL
	}
	return s
}

// PaperScale matches the paper's experiment sizes. Expect hours of compute.
var PaperScale = Scale{TrainSamples: 20000, TestScenarios: 2000, Seed: 1}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Table is a rendered matrix (used for surface figures like Fig 8).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Figure is a reproduced experiment output.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Tables []Table
	Notes  []string
}

// Render writes the figure as aligned ASCII tables.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", f.ID, f.Title); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		cols := []string{f.XLabel}
		for _, s := range f.Series {
			cols = append(cols, s.Name)
		}
		// Collect the x grid from the first series (all series share it).
		var rows [][]string
		for i, p := range f.Series[0].Points {
			row := []string{trimFloat(p.X)}
			for _, s := range f.Series {
				if i < len(s.Points) {
					row = append(row, fmt.Sprintf("%.3f", s.Points[i].Y))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
		if err := renderTable(w, Table{Title: f.YLabel, Columns: cols, Rows: rows}); err != nil {
			return err
		}
	}
	for _, t := range f.Tables {
		if err := renderTable(w, t); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func renderTable(w io.Writer, t Table) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "-- %s --\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Runner maps experiment ids to their generators.
type Runner func(Scale) (*Figure, error)

// FigureSpanName is the telemetry span each experiment runs under; the
// aquabench per-figure timing lines and the metrics exporters both read
// this span, so the console and -metrics-out report the same measurement.
func FigureSpanName(id string) string { return "bench_figure_" + id }

// withSpan wraps a figure generator in its telemetry span. The span also
// completes on error, so failed experiments still leave a timing record.
func withSpan(id string, run Runner) Runner {
	return func(s Scale) (*Figure, error) {
		span := telemetry.Default().StartSpan(FigureSpanName(id))
		defer span.End()
		return run(s)
	}
}

// registry memoizes the span-wrapped experiment map so Experiments can
// hand out one shared instance instead of rebuilding it per call.
var registry struct {
	once sync.Once
	m    map[string]Runner
}

// Experiments lists every reproduced figure by id. The returned map is
// the registry itself, built once and shared by all callers — treat it
// as read-only.
func Experiments() map[string]Runner {
	registry.once.Do(func() {
		raw := experiments()
		registry.m = make(map[string]Runner, len(raw))
		for id, run := range raw {
			registry.m[id] = withSpan(id, run)
		}
	})
	return registry.m
}

func experiments() map[string]Runner {
	return map[string]Runner{
		"fig2":               Fig2PressureDistance,
		"fig3":               Fig3BreaksVsTemperature,
		"fig6":               Fig6MLComparison,
		"fig7ab":             Fig7HybridSweep,
		"fig7c":              Fig7cFusionIncrement,
		"fig8":               Fig8WSSCSurface,
		"fig9":               Fig9Coarseness,
		"fig10":              Fig10MaxEvents,
		"fig11":              Fig11Flood,
		"ablation-placement": AblationPlacement,
		"ablation-bayes":     AblationBayesFusion,
		"ablation-gamma":     AblationGammaThreshold,
		"ablation-beta":      AblationEmitterExponent,
		"ablation-dropout":   AblationSensorDropout,
		"fault-tolerance":    FaultTolerance,
		"solver-scaling":     SolverScaling,
		"serving-latency":    ServingLatency,
		"corpus-throughput":  CorpusThroughput,
	}
}

// ExperimentIDs returns the ids in a stable presentation order.
func ExperimentIDs() []string {
	return []string{
		"fig2", "fig3", "fig6", "fig7ab", "fig7c", "fig8", "fig9", "fig10", "fig11",
		"ablation-placement", "ablation-bayes", "ablation-gamma", "ablation-beta", "ablation-dropout",
		"fault-tolerance", "solver-scaling", "serving-latency", "corpus-throughput",
	}
}
