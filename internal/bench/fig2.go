package bench

import (
	"fmt"
	"math"

	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
)

// Fig2PressureDistance reproduces Fig. 2: the sum of pressure-head changes
// of nodes within increasing shortest-path distance rings of the first
// leak's location, for one, two and three concurrent leaks. The paper's
// point: a single failure produces a clean decaying signature, while
// concurrent failures interact and break the pattern.
func Fig2PressureDistance(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	net := network.BuildEPANet()
	solver, err := hydraulic.NewSolver(net, hydraulic.Options{})
	if err != nil {
		return nil, err
	}
	base, err := solver.SolveSteady(0, nil, nil)
	if err != nil {
		return nil, err
	}

	// Fixed event locations spread across the grid (e1 central, the others
	// progressively farther), mirroring the paper's Fig 2a layout.
	pick := func(id string) int {
		idx, ok := net.NodeIndex(id)
		if !ok {
			panic("bench: missing EPA-NET node " + id)
		}
		return idx
	}
	e1 := pick("J45")
	e2 := pick("J48")
	e3 := pick("J20")
	e4 := pick("J75")
	const size = 2e-3

	scenarios := []struct {
		name   string
		events []leak.Event
	}{
		{"1 event {e1}", []leak.Event{{Node: e1, Size: size}}},
		{"2 events {e1,e2}", []leak.Event{{Node: e1, Size: size}, {Node: e2, Size: size}}},
		{"3 events {e1,e3,e4}", []leak.Event{{Node: e1, Size: size}, {Node: e3, Size: size}, {Node: e4, Size: size}}},
	}

	dist := net.Graph().ShortestPaths(e1)
	const binWidth = 300.0 // meters of pipe distance per ring
	maxDist := 0.0
	for i, d := range dist {
		if net.Nodes[i].Type == network.Junction && !math.IsInf(d, 1) && d > maxDist {
			maxDist = d
		}
	}
	bins := int(maxDist/binWidth) + 1

	fig := &Figure{
		ID:     "fig2",
		Title:  "Sum of pressure-head change vs. distance to e1 (EPA-NET)",
		XLabel: "distance ring (m)",
		YLabel: "mean |pressure change| per node in ring (m)",
	}
	for _, sc := range scenarios {
		scenario := leak.Scenario{Events: sc.events}
		res, err := solver.SolveSteady(0, scenario.Emitters(), nil)
		if err != nil {
			return nil, fmt.Errorf("bench: fig2 scenario %q: %w", sc.name, err)
		}
		sums := make([]float64, bins)
		counts := make([]int, bins)
		for i := range net.Nodes {
			if net.Nodes[i].Type != network.Junction || math.IsInf(dist[i], 1) {
				continue
			}
			b := int(dist[i] / binWidth)
			if b >= bins {
				b = bins - 1
			}
			sums[b] += math.Abs(base.Pressure[i] - res.Pressure[i])
			counts[b]++
		}
		s := Series{Name: sc.name}
		for b := 0; b < bins; b++ {
			y := 0.0
			if counts[b] > 0 {
				// Mean per node in the ring: ring populations grow with
				// distance on a grid, so raw sums would hide the decay.
				y = sums[b] / float64(counts[b])
			}
			s.Points = append(s.Points, Point{X: float64(b+1) * binWidth, Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"single failure decays with distance; concurrent failures interact and break the monotone pattern",
	)
	return fig, nil
}
