package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/distgen"
	"github.com/aquascale/aquascale/internal/network"
)

// CorpusThroughput measures the out-of-core generate→train pipeline
// against the in-memory path it replaces: corpus write throughput
// (shards to disk) and streamed training wall-clock vs.
// Factory.Generate + TrainProfile on EPA-NET. The figure also asserts
// the correctness contract the streamed path ships under: at the same
// seed, the streamed profile is bitwise-identical to the in-memory one.
// Structural columns are deterministic; throughput columns are
// wall-clock.
func CorpusThroughput(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	fig := &Figure{
		ID:    "corpus-throughput",
		Title: "Out-of-core corpus: shard write throughput and streamed training",
	}

	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(60, scale.Seed+5)
	if err != nil {
		return nil, err
	}
	factory, err := tb.factoryFor(sensors, epanetMultiLeak, scale)
	if err != nil {
		return nil, err
	}
	profCfg := core.ProfileConfig{Technique: scale.Technique, Seed: scale.Seed + 77}

	// In-memory reference path.
	memGenStart := time.Now()
	ds, err := factory.Generate(scale.TrainSamples, rand.New(rand.NewSource(scale.Seed+11)))
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput generate: %w", err)
	}
	memGen := time.Since(memGenStart)
	memTrainStart := time.Now()
	memProfile, err := core.TrainProfile(ds, len(tb.net.Nodes), profCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput train: %w", err)
	}
	memTrain := time.Since(memTrainStart)

	// Streamed path: shards on disk, bounded-memory training.
	dir, err := os.MkdirTemp("", "aquascale-corpus-bench-")
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput: %w", err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	corpusGenStart := time.Now()
	res, err := factory.GenerateCorpus(ctx, scale.TrainSamples, scale.Seed+11, dir,
		dataset.CorpusOptions{ShardSamples: 256})
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput generate-corpus: %w", err)
	}
	corpusGen := time.Since(corpusGenStart)
	r, err := dataset.OpenCorpus(dir)
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput open: %w", err)
	}
	corpusTrainStart := time.Now()
	corpusProfile, err := core.TrainProfileFromCorpus(ctx, r, len(tb.net.Nodes), profCfg,
		core.CorpusTrainOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput train-from-corpus: %w", err)
	}
	corpusTrain := time.Since(corpusTrainStart)

	// Parity: the streamed profile must be bitwise-identical in-memory's.
	var memBytes, corpusBytes bytes.Buffer
	if err := memProfile.Save(&memBytes); err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput save: %w", err)
	}
	if err := corpusProfile.Save(&corpusBytes); err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput save: %w", err)
	}
	if !bytes.Equal(memBytes.Bytes(), corpusBytes.Bytes()) {
		return nil, fmt.Errorf("bench: corpus-throughput: streamed profile diverged from in-memory profile")
	}

	mib := float64(res.Bytes) / (1 << 20)
	table := Table{
		Title: fmt.Sprintf("generate→train pipeline, EPA-NET, %d sensors, %d scenarios (%d shards, %.1f MiB on disk)",
			len(sensors), scale.TrainSamples, res.Shards, mib),
		Columns: []string{"path", "generate s", "train s", "total s"},
		Rows: [][]string{
			{"in-memory", fmt.Sprintf("%.2f", memGen.Seconds()),
				fmt.Sprintf("%.2f", memTrain.Seconds()),
				fmt.Sprintf("%.2f", (memGen + memTrain).Seconds())},
			{"streamed corpus", fmt.Sprintf("%.2f", corpusGen.Seconds()),
				fmt.Sprintf("%.2f", corpusTrain.Seconds()),
				fmt.Sprintf("%.2f", (corpusGen + corpusTrain).Seconds())},
		},
	}
	fig.Tables = append(fig.Tables, table)
	fig.Tables = append(fig.Tables, Table{
		Title:   "corpus write throughput",
		Columns: []string{"shards", "samples", "MiB", "MiB/s", "samples/s"},
		Rows: [][]string{{
			fmt.Sprintf("%d", res.Shards),
			fmt.Sprintf("%d", res.Samples),
			fmt.Sprintf("%.1f", mib),
			fmt.Sprintf("%.1f", mib/corpusGen.Seconds()),
			fmt.Sprintf("%.0f", float64(res.Samples)/corpusGen.Seconds()),
		}},
	})
	fig.Notes = append(fig.Notes,
		"streamed profile bitwise-identical to the in-memory profile at the same seed (also pinned by TestTrainFromCorpusBitIdentical)",
		"streamed training re-reads the corpus once per junction window, holding O(shard) resident — corpus size no longer bounds trainable scale",
		"generation throughput is solver-bound; the shard writer adds CRC-32C and one fsync+rename per shard",
	)

	if err := corpusDistributedSection(fig, scale); err != nil {
		return nil, err
	}
	return fig, nil
}

// corpusDistributedSection compares single-process GenerateCorpus against
// the coordinator/worker fan-out (3 in-process workers) on a synthetic
// looped grid, asserting the contract the distributed path ships under:
// the merged corpus is bitwise-identical to the single-process one at the
// same seed.
func corpusDistributedSection(fig *Figure, scale Scale) error {
	tb, err := newTestbed(func() *network.Network {
		return network.BuildGrid(network.GridConfig{Rows: 6, Cols: 6})
	})
	if err != nil {
		return err
	}
	sensors, err := tb.sensorsAtPercent(30, scale.Seed+3)
	if err != nil {
		return err
	}
	factory, err := tb.factoryFor(sensors, epanetMultiLeak, scale)
	if err != nil {
		return err
	}

	count := scale.TrainSamples
	shardSamples := (count + 11) / 12 // ~12 shards so three workers get real ranges
	if shardSamples < 1 {
		shardSamples = 1
	}
	ctx := context.Background()

	singleDir, err := os.MkdirTemp("", "aquascale-distgen-single-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(singleDir)
	singleStart := time.Now()
	singleRes, err := factory.GenerateCorpus(ctx, count, scale.Seed+11, singleDir,
		dataset.CorpusOptions{ShardSamples: shardSamples})
	if err != nil {
		return fmt.Errorf("bench: distgen single-process: %w", err)
	}
	single := time.Since(singleStart)

	distDir, err := os.MkdirTemp("", "aquascale-distgen-dist-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(distDir)
	distStart := time.Now()
	distRes, err := distgen.Coordinate(ctx, factory, count, scale.Seed+11, distDir,
		distgen.Options{ShardSamples: shardSamples, Workers: 3})
	if err != nil {
		return fmt.Errorf("bench: distgen coordinate: %w", err)
	}
	dist := time.Since(distStart)

	if err := sameShardBytes(distDir, singleDir); err != nil {
		return fmt.Errorf("bench: distgen parity: %w", err)
	}

	fig.Tables = append(fig.Tables, Table{
		Title: fmt.Sprintf("distributed generation, %d-junction grid, %d scenarios (%d shards)",
			len(tb.net.Nodes), count, singleRes.Shards),
		Columns: []string{"path", "workers", "generate s", "samples/s"},
		Rows: [][]string{
			{"single-process", "1", fmt.Sprintf("%.2f", single.Seconds()),
				fmt.Sprintf("%.0f", float64(singleRes.Samples)/single.Seconds())},
			{"distributed (in-process)", "3", fmt.Sprintf("%.2f", dist.Seconds()),
				fmt.Sprintf("%.0f", float64(distRes.Samples)/dist.Seconds())},
		},
	})
	fig.Notes = append(fig.Notes,
		"merged distributed corpus bitwise-identical to the single-process corpus at the same seed (also pinned under -race by internal/distgen tests)",
		"distributed wall-clock reflects the host's core count — on a single-core host the fan-out adds coordination overhead without parallel speedup; the row measures protocol cost, not scaling",
	)
	return nil
}

// sameShardBytes errors unless both directories hold identical shard sets
// with identical bytes.
func sameShardBytes(gotDir, wantDir string) error {
	want, err := filepath.Glob(filepath.Join(wantDir, "shard-*.aqsc"))
	if err != nil {
		return err
	}
	got, err := filepath.Glob(filepath.Join(gotDir, "shard-*.aqsc"))
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("%d shards, want %d", len(got), len(want))
	}
	for _, wp := range want {
		gp := filepath.Join(gotDir, filepath.Base(wp))
		wb, err := os.ReadFile(wp)
		if err != nil {
			return err
		}
		gb, err := os.ReadFile(gp)
		if err != nil {
			return err
		}
		if !bytes.Equal(gb, wb) {
			return fmt.Errorf("shard %s bytes diverge", filepath.Base(wp))
		}
	}
	return nil
}
