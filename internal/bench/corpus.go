package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/network"
)

// CorpusThroughput measures the out-of-core generate→train pipeline
// against the in-memory path it replaces: corpus write throughput
// (shards to disk) and streamed training wall-clock vs.
// Factory.Generate + TrainProfile on EPA-NET. The figure also asserts
// the correctness contract the streamed path ships under: at the same
// seed, the streamed profile is bitwise-identical to the in-memory one.
// Structural columns are deterministic; throughput columns are
// wall-clock.
func CorpusThroughput(scale Scale) (*Figure, error) {
	scale = scale.withDefaults()
	fig := &Figure{
		ID:    "corpus-throughput",
		Title: "Out-of-core corpus: shard write throughput and streamed training",
	}

	tb, err := newTestbed(network.BuildEPANet)
	if err != nil {
		return nil, err
	}
	sensors, err := tb.sensorsAtPercent(60, scale.Seed+5)
	if err != nil {
		return nil, err
	}
	factory, err := tb.factoryFor(sensors, epanetMultiLeak, scale)
	if err != nil {
		return nil, err
	}
	profCfg := core.ProfileConfig{Technique: scale.Technique, Seed: scale.Seed + 77}

	// In-memory reference path.
	memGenStart := time.Now()
	ds, err := factory.Generate(scale.TrainSamples, rand.New(rand.NewSource(scale.Seed+11)))
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput generate: %w", err)
	}
	memGen := time.Since(memGenStart)
	memTrainStart := time.Now()
	memProfile, err := core.TrainProfile(ds, len(tb.net.Nodes), profCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput train: %w", err)
	}
	memTrain := time.Since(memTrainStart)

	// Streamed path: shards on disk, bounded-memory training.
	dir, err := os.MkdirTemp("", "aquascale-corpus-bench-")
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput: %w", err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	corpusGenStart := time.Now()
	res, err := factory.GenerateCorpus(ctx, scale.TrainSamples, scale.Seed+11, dir,
		dataset.CorpusOptions{ShardSamples: 256})
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput generate-corpus: %w", err)
	}
	corpusGen := time.Since(corpusGenStart)
	r, err := dataset.OpenCorpus(dir)
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput open: %w", err)
	}
	corpusTrainStart := time.Now()
	corpusProfile, err := core.TrainProfileFromCorpus(ctx, r, len(tb.net.Nodes), profCfg,
		core.CorpusTrainOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput train-from-corpus: %w", err)
	}
	corpusTrain := time.Since(corpusTrainStart)

	// Parity: the streamed profile must be bitwise-identical in-memory's.
	var memBytes, corpusBytes bytes.Buffer
	if err := memProfile.Save(&memBytes); err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput save: %w", err)
	}
	if err := corpusProfile.Save(&corpusBytes); err != nil {
		return nil, fmt.Errorf("bench: corpus-throughput save: %w", err)
	}
	if !bytes.Equal(memBytes.Bytes(), corpusBytes.Bytes()) {
		return nil, fmt.Errorf("bench: corpus-throughput: streamed profile diverged from in-memory profile")
	}

	mib := float64(res.Bytes) / (1 << 20)
	table := Table{
		Title: fmt.Sprintf("generate→train pipeline, EPA-NET, %d sensors, %d scenarios (%d shards, %.1f MiB on disk)",
			len(sensors), scale.TrainSamples, res.Shards, mib),
		Columns: []string{"path", "generate s", "train s", "total s"},
		Rows: [][]string{
			{"in-memory", fmt.Sprintf("%.2f", memGen.Seconds()),
				fmt.Sprintf("%.2f", memTrain.Seconds()),
				fmt.Sprintf("%.2f", (memGen + memTrain).Seconds())},
			{"streamed corpus", fmt.Sprintf("%.2f", corpusGen.Seconds()),
				fmt.Sprintf("%.2f", corpusTrain.Seconds()),
				fmt.Sprintf("%.2f", (corpusGen + corpusTrain).Seconds())},
		},
	}
	fig.Tables = append(fig.Tables, table)
	fig.Tables = append(fig.Tables, Table{
		Title:   "corpus write throughput",
		Columns: []string{"shards", "samples", "MiB", "MiB/s", "samples/s"},
		Rows: [][]string{{
			fmt.Sprintf("%d", res.Shards),
			fmt.Sprintf("%d", res.Samples),
			fmt.Sprintf("%.1f", mib),
			fmt.Sprintf("%.1f", mib/corpusGen.Seconds()),
			fmt.Sprintf("%.0f", float64(res.Samples)/corpusGen.Seconds()),
		}},
	})
	fig.Notes = append(fig.Notes,
		"streamed profile bitwise-identical to the in-memory profile at the same seed (also pinned by TestTrainFromCorpusBitIdentical)",
		"streamed training re-reads the corpus once per junction window, holding O(shard) resident — corpus size no longer bounds trainable scale",
		"generation throughput is solver-bound; the shard writer adds CRC-32C and one fsync+rename per shard",
	)
	return fig, nil
}
