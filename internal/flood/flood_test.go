package flood

import (
	"math"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/network"
)

func flatDEM(t *testing.T, w, h int, elev float64) *DEM {
	t.Helper()
	dem, err := NewDEM(w, h, 10, 0, 0)
	if err != nil {
		t.Fatalf("NewDEM: %v", err)
	}
	for i := range dem.Elev {
		dem.Elev[i] = elev
	}
	return dem
}

func TestNewDEMValidation(t *testing.T) {
	if _, err := NewDEM(0, 5, 10, 0, 0); err == nil {
		t.Fatal("zero width should error")
	}
	if _, err := NewDEM(5, 5, 0, 0, 0); err == nil {
		t.Fatal("zero cell size should error")
	}
}

func TestDEMCellMapping(t *testing.T) {
	dem := flatDEM(t, 10, 8, 0)
	ix, iy, ok := dem.CellOf(52, 31)
	if !ok || ix != 5 || iy != 3 {
		t.Fatalf("CellOf = %d,%d,%v", ix, iy, ok)
	}
	if _, _, ok := dem.CellOf(-100, 0); ok {
		t.Fatal("out-of-grid coordinates should not map")
	}
	x, y := dem.CellCenter(5, 3)
	if x != 50 || y != 30 {
		t.Fatalf("CellCenter = %v,%v", x, y)
	}
	dem.Set(2, 1, 42)
	if dem.At(2, 1) != 42 {
		t.Fatal("Set/At failed")
	}
}

func TestFromNetworkDEM(t *testing.T) {
	net := network.BuildWSSCSubnet()
	dem, err := FromNetwork(net, 100, 2)
	if err != nil {
		t.Fatalf("FromNetwork: %v", err)
	}
	if dem.Width < 10 || dem.Height < 10 {
		t.Fatalf("DEM too small: %dx%d", dem.Width, dem.Height)
	}
	// Interpolated elevations must stay within the node elevation range.
	minE, maxE := math.Inf(1), math.Inf(-1)
	for i := range net.Nodes {
		minE = math.Min(minE, net.Nodes[i].Elevation)
		maxE = math.Max(maxE, net.Nodes[i].Elevation)
	}
	for _, e := range dem.Elev {
		if e < minE-1e-9 || e > maxE+1e-9 {
			t.Fatalf("DEM elevation %v outside node range [%v, %v]", e, minE, maxE)
		}
	}
	// The DEM should reflect the terrain gradient: near the hilltop
	// source it must be higher than at the far corner.
	src := net.Nodes[0]
	six, siy, ok := dem.CellOf(src.X, src.Y)
	if !ok {
		t.Fatal("source outside DEM")
	}
	if dem.At(six, siy) < dem.At(dem.Width-1, dem.Height-1) {
		t.Fatal("DEM lost the terrain gradient")
	}

	if _, err := FromNetwork(network.New("x"), 100, 2); err == nil {
		t.Fatal("empty network should error")
	}
	if _, err := FromNetwork(net, -1, 2); err == nil {
		t.Fatal("bad cell size should error")
	}
}

func TestSimulateMassConservation(t *testing.T) {
	dem := flatDEM(t, 20, 20, 5)
	res, err := Simulate(dem, []Source{
		{X: 100, Y: 100, Rate: ConstantRate(0.05)},
	}, SimConfig{Duration: 10 * time.Minute})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	wantVol := 0.05 * 600
	if math.Abs(res.InflowVolume-wantVol) > 0.01*wantVol {
		t.Fatalf("inflow volume = %v, want ~%v", res.InflowVolume, wantVol)
	}
	stored := res.StoredVolume(dem)
	if math.Abs(stored-res.InflowVolume) > 0.01*res.InflowVolume {
		t.Fatalf("stored %v != inflow %v (mass not conserved)", stored, res.InflowVolume)
	}
	if res.Steps <= 0 {
		t.Fatal("no steps taken")
	}
}

func TestSimulateSpreadsFromSource(t *testing.T) {
	dem := flatDEM(t, 21, 21, 0)
	res, err := Simulate(dem, []Source{
		{X: 100, Y: 100, Rate: ConstantRate(0.1)},
	}, SimConfig{Duration: 20 * time.Minute})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	center := res.MaxDepthAt(dem, 100, 100)
	ring := res.MaxDepthAt(dem, 130, 100)
	far := res.MaxDepthAt(dem, 200, 200)
	if center <= 0 {
		t.Fatal("no water at source")
	}
	if ring <= 0 {
		t.Fatal("water did not spread to adjacent cells")
	}
	if center < ring {
		t.Fatalf("depth at source (%v) below ring (%v)", center, ring)
	}
	if far > center {
		t.Fatalf("corner depth %v exceeds source depth %v", far, center)
	}
}

func TestSimulateFlowsDownhill(t *testing.T) {
	// A sloped plane: water released mid-slope must pool downhill.
	dem := flatDEM(t, 30, 5, 0)
	for iy := 0; iy < 5; iy++ {
		for ix := 0; ix < 30; ix++ {
			dem.Set(ix, iy, float64(30-ix)*0.5) // falls to the east
		}
	}
	res, err := Simulate(dem, []Source{
		{X: 50, Y: 20, Rate: ConstantRate(0.05)},
	}, SimConfig{Duration: 30 * time.Minute})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	uphill := res.MaxDepthAt(dem, 10, 20)
	downhill := res.MaxDepthAt(dem, 250, 20)
	if downhill <= uphill {
		t.Fatalf("water did not flow downhill: up=%v down=%v", uphill, downhill)
	}
}

func TestSimulateFillsDepression(t *testing.T) {
	// A bowl: water must stay inside it.
	dem := flatDEM(t, 15, 15, 10)
	for iy := 5; iy < 10; iy++ {
		for ix := 5; ix < 10; ix++ {
			dem.Set(ix, iy, 5)
		}
	}
	res, err := Simulate(dem, []Source{
		{X: 70, Y: 70, Rate: ConstantRate(0.02)},
	}, SimConfig{Duration: 15 * time.Minute})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	inside := res.MaxDepthAt(dem, 70, 70)
	outside := res.MaxDepthAt(dem, 20, 20)
	if inside <= 0 {
		t.Fatal("bowl is dry")
	}
	if outside > 1e-6 {
		t.Fatalf("water escaped the bowl: %v", outside)
	}
}

func TestSimulateValidation(t *testing.T) {
	dem := flatDEM(t, 5, 5, 0)
	if _, err := Simulate(dem, []Source{{X: 1e6, Y: 0, Rate: ConstantRate(1)}}, SimConfig{}); err == nil {
		t.Fatal("out-of-grid source should error")
	}
	if _, err := Simulate(dem, []Source{{X: 0, Y: 0}}, SimConfig{}); err == nil {
		t.Fatal("nil rate should error")
	}
}

func TestFloodedArea(t *testing.T) {
	dem := flatDEM(t, 10, 10, 0)
	res, err := Simulate(dem, []Source{
		{X: 50, Y: 50, Rate: ConstantRate(0.05)},
	}, SimConfig{Duration: 10 * time.Minute})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	all := res.FloodedArea(dem, 0)
	deep := res.FloodedArea(dem, 0.05)
	if all <= 0 {
		t.Fatal("nothing flooded")
	}
	if deep > all {
		t.Fatal("deeper threshold covers more area")
	}
}

func TestTimeVaryingSource(t *testing.T) {
	dem := flatDEM(t, 10, 10, 0)
	// Source shuts off halfway.
	rate := func(t time.Duration) float64 {
		if t < 5*time.Minute {
			return 0.1
		}
		return 0
	}
	res, err := Simulate(dem, []Source{{X: 50, Y: 50, Rate: rate}}, SimConfig{Duration: 10 * time.Minute})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	want := 0.1 * 300
	if math.Abs(res.InflowVolume-want) > 0.05*want {
		t.Fatalf("inflow = %v, want ~%v", res.InflowVolume, want)
	}
}
