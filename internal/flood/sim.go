package flood

import (
	"context"
	"fmt"
	"math"
	"time"
)

const gravity = 9.81

// Source is a point inflow onto the terrain — a surfacing pipe leak. Rate
// gives the inflow in m³/s at elapsed time t, letting callers couple the
// pressure-dependent leak discharge (eq. 1) into the flood model.
type Source struct {
	X, Y float64
	Rate func(t time.Duration) float64
}

// ConstantRate is a convenience constructor for fixed-rate sources.
func ConstantRate(rate float64) func(time.Duration) float64 {
	return func(time.Duration) float64 { return rate }
}

// SimConfig configures the shallow-water run.
type SimConfig struct {
	// Duration of simulated time. Zero means 1 hour.
	Duration time.Duration

	// Manning is the roughness coefficient n. Zero means 0.035 (mixed
	// urban surface).
	Manning float64

	// MaxStep caps the adaptive time step in seconds. Zero means 5 s.
	MaxStep float64

	// CFL is the stability fraction of the gravity-wave limit.
	// Zero means 0.7.
	CFL float64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Duration <= 0 {
		c.Duration = time.Hour
	}
	if c.Manning <= 0 {
		c.Manning = 0.035
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 5
	}
	if c.CFL <= 0 || c.CFL > 1 {
		c.CFL = 0.7
	}
	return c
}

// Result holds the inundation output.
type Result struct {
	// Depth is the final water depth per cell (m), row-major on the DEM.
	Depth []float64

	// MaxDepth is the peak depth per cell over the run (m).
	MaxDepth []float64

	// InflowVolume is the total water released by sources (m³).
	InflowVolume float64

	// Steps is the number of adaptive time steps taken.
	Steps int
}

// FloodedArea returns the area (m²) with final depth above the threshold.
func (r *Result) FloodedArea(dem *DEM, threshold float64) float64 {
	cells := 0
	for _, h := range r.Depth {
		if h > threshold {
			cells++
		}
	}
	return float64(cells) * dem.CellSize * dem.CellSize
}

// StoredVolume integrates the final depth over the grid (m³).
func (r *Result) StoredVolume(dem *DEM) float64 {
	total := 0.0
	for _, h := range r.Depth {
		total += h
	}
	return total * dem.CellSize * dem.CellSize
}

// GlobalMaxDepth returns the largest peak depth anywhere on the grid.
func (r *Result) GlobalMaxDepth() float64 {
	peak := 0.0
	for _, h := range r.MaxDepth {
		if h > peak {
			peak = h
		}
	}
	return peak
}

// MaxDepthAt returns the peak depth at the cell containing (x, y).
func (r *Result) MaxDepthAt(dem *DEM, x, y float64) float64 {
	ix, iy, ok := dem.CellOf(x, y)
	if !ok {
		return 0
	}
	return r.MaxDepth[iy*dem.Width+ix]
}

// Simulate runs the local-inertial shallow-water scheme over the DEM with
// the given point sources. Boundaries are closed walls; mass is conserved
// (inflow volume equals stored volume within numerical tolerance), which
// the tests assert. It is shorthand for SimulateContext with
// context.Background().
func Simulate(dem *DEM, sources []Source, cfg SimConfig) (*Result, error) {
	return SimulateContext(context.Background(), dem, sources, cfg)
}

// SimulateContext is Simulate with cancellation: ctx is checked between
// adaptive time steps and the error is ctx.Err().
func SimulateContext(ctx context.Context, dem *DEM, sources []Source, cfg SimConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	w, h := dem.Width, dem.Height
	n := w * h

	type src struct {
		cell int
		rate func(time.Duration) float64
	}
	srcs := make([]src, 0, len(sources))
	for i, s := range sources {
		ix, iy, ok := dem.CellOf(s.X, s.Y)
		if !ok {
			return nil, fmt.Errorf("flood: source %d at (%v, %v) outside DEM", i, s.X, s.Y)
		}
		if s.Rate == nil {
			return nil, fmt.Errorf("flood: source %d has nil rate", i)
		}
		srcs = append(srcs, src{cell: iy*w + ix, rate: s.Rate})
	}

	depth := make([]float64, n)
	maxDepth := make([]float64, n)
	qx := make([]float64, n) // flux across the east face of each cell (m²/s)
	qy := make([]float64, n) // flux across the north face
	dx := dem.CellSize
	cellArea := dx * dx
	nsq := cfg.Manning * cfg.Manning

	res := &Result{}
	elapsed := 0.0
	total := cfg.Duration.Seconds()
	const minDepth = 1e-4

	for elapsed < total {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Adaptive step from the gravity-wave CFL condition.
		hMax := minDepth
		for _, hv := range depth {
			if hv > hMax {
				hMax = hv
			}
		}
		dt := cfg.CFL * dx / math.Sqrt(gravity*hMax)
		if dt > cfg.MaxStep {
			dt = cfg.MaxStep
		}
		if elapsed+dt > total {
			dt = total - elapsed
		}

		// Update face fluxes (local inertial formulation).
		for iy := 0; iy < h; iy++ {
			for ix := 0; ix < w; ix++ {
				i := iy*w + ix
				if ix+1 < w {
					qx[i] = faceFlux(qx[i], depth[i], depth[i+1], dem.Elev[i], dem.Elev[i+1], dx, dt, nsq)
				}
				if iy+1 < h {
					qy[i] = faceFlux(qy[i], depth[i], depth[i+w], dem.Elev[i], dem.Elev[i+w], dx, dt, nsq)
				}
			}
		}

		// Update depths from flux divergence.
		for iy := 0; iy < h; iy++ {
			for ix := 0; ix < w; ix++ {
				i := iy*w + ix
				net := 0.0
				if ix+1 < w {
					net -= qx[i]
				}
				if ix > 0 {
					net += qx[i-1]
				}
				if iy+1 < h {
					net -= qy[i]
				}
				if iy > 0 {
					net += qy[i-w]
				}
				depth[i] += net * dx * dt / cellArea
				if depth[i] < 0 {
					depth[i] = 0 // guard tiny negative from flux overshoot
				}
			}
		}

		// Inject sources.
		t := time.Duration(elapsed * float64(time.Second))
		for _, s := range srcs {
			rate := s.rate(t)
			if rate < 0 {
				rate = 0
			}
			depth[s.cell] += rate * dt / cellArea
			res.InflowVolume += rate * dt
		}

		for i, hv := range depth {
			if hv > maxDepth[i] {
				maxDepth[i] = hv
			}
		}
		elapsed += dt
		res.Steps++
		if res.Steps > 10_000_000 {
			return nil, fmt.Errorf("flood: step budget exhausted (dt collapsed)")
		}
	}

	res.Depth = depth
	res.MaxDepth = maxDepth
	return res, nil
}

// faceFlux advances one face's unit-width flux with the de Almeida–Bates
// local-inertial update: explicit gravity forcing on the water-surface
// slope, semi-implicit Manning friction.
func faceFlux(q, hL, hR, zL, zR, dx, dt, nsq float64) float64 {
	etaL := zL + hL
	etaR := zR + hR
	// Flow depth at the face: highest surface minus highest bed.
	hf := math.Max(etaL, etaR) - math.Max(zL, zR)
	if hf <= 1e-4 {
		return 0
	}
	slope := (etaR - etaL) / dx
	qNew := q - gravity*hf*dt*slope
	// Semi-implicit friction keeps the update stable for thin sheets.
	qNew /= 1 + gravity*dt*nsq*math.Abs(q)/math.Pow(hf, 7.0/3.0)

	// Stability limiters (standard for local-inertial schemes):
	// (1) Froude limit — flow no faster than the gravity wave speed.
	if fr := hf * math.Sqrt(gravity*hf); qNew > fr {
		qNew = fr
	} else if qNew < -fr {
		qNew = -fr
	}
	// (2) Availability limit — a face may move at most a quarter of the
	// upstream cell's water per step, so cells cannot be overdrained.
	var avail float64
	if qNew > 0 {
		avail = 0.25 * hL * dx / dt
	} else {
		avail = 0.25 * hR * dx / dt
	}
	if qNew > avail {
		qNew = avail
	} else if qNew < -avail {
		qNew = -avail
	}
	return qNew
}
