// Package flood models the cascading impact of pipe failures: leak
// outflow spreading over the terrain as an inundation — the paper's Fig-11
// experiment, which feeds EPANET++ leak discharge into the BreZo hydraulic
// flood model.
//
// BreZo is a Godunov-type finite-volume solver on unstructured meshes;
// this package substitutes the standard lightweight raster alternative: a
// local-inertial (de Almeida–Bates) shallow-water scheme with Manning
// friction on a DEM grid. The DEM is interpolated from network node
// elevations by inverse-distance weighting, exactly as the paper builds
// its DEM from node elevations.
package flood

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/aquascale/aquascale/internal/network"
)

// DEM is a raster digital elevation model (row-major, meters).
type DEM struct {
	Width    int
	Height   int
	CellSize float64
	OriginX  float64 // world coordinate of cell (0,0) center
	OriginY  float64
	Elev     []float64
}

// NewDEM allocates a flat DEM.
func NewDEM(width, height int, cellSize, originX, originY float64) (*DEM, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("flood: invalid DEM size %dx%d", width, height)
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("flood: invalid cell size %v", cellSize)
	}
	return &DEM{
		Width: width, Height: height, CellSize: cellSize,
		OriginX: originX, OriginY: originY,
		Elev: make([]float64, width*height),
	}, nil
}

// At returns the elevation of cell (ix, iy).
func (d *DEM) At(ix, iy int) float64 { return d.Elev[iy*d.Width+ix] }

// Set assigns the elevation of cell (ix, iy).
func (d *DEM) Set(ix, iy int, v float64) { d.Elev[iy*d.Width+ix] = v }

// CellOf maps world coordinates to the containing cell.
func (d *DEM) CellOf(x, y float64) (ix, iy int, ok bool) {
	ix = int(math.Round((x - d.OriginX) / d.CellSize))
	iy = int(math.Round((y - d.OriginY) / d.CellSize))
	ok = ix >= 0 && ix < d.Width && iy >= 0 && iy < d.Height
	return ix, iy, ok
}

// CellCenter returns the world coordinates of a cell center.
func (d *DEM) CellCenter(ix, iy int) (x, y float64) {
	return d.OriginX + float64(ix)*d.CellSize, d.OriginY + float64(iy)*d.CellSize
}

// FromNetwork interpolates a DEM from the network's node elevations by
// inverse-distance weighting (power 2) over the node cloud, with the grid
// covering the network bounding box plus a margin of marginCells cells.
func FromNetwork(net *network.Network, cellSize float64, marginCells int) (*DEM, error) {
	if len(net.Nodes) == 0 {
		return nil, fmt.Errorf("flood: empty network")
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("flood: invalid cell size %v", cellSize)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := range net.Nodes {
		n := &net.Nodes[i]
		minX, maxX = math.Min(minX, n.X), math.Max(maxX, n.X)
		minY, maxY = math.Min(minY, n.Y), math.Max(maxY, n.Y)
	}
	margin := float64(marginCells) * cellSize
	minX -= margin
	minY -= margin
	maxX += margin
	maxY += margin
	width := int(math.Ceil((maxX-minX)/cellSize)) + 1
	height := int(math.Ceil((maxY-minY)/cellSize)) + 1
	dem, err := NewDEM(width, height, cellSize, minX, minY)
	if err != nil {
		return nil, err
	}
	for iy := 0; iy < height; iy++ {
		for ix := 0; ix < width; ix++ {
			cx, cy := dem.CellCenter(ix, iy)
			num, den := 0.0, 0.0
			exact := false
			for i := range net.Nodes {
				n := &net.Nodes[i]
				d2 := (n.X-cx)*(n.X-cx) + (n.Y-cy)*(n.Y-cy)
				if d2 < 1e-9 {
					dem.Set(ix, iy, n.Elevation)
					exact = true
					break
				}
				w := 1 / d2
				num += w * n.Elevation
				den += w
			}
			if !exact {
				dem.Set(ix, iy, num/den)
			}
		}
	}
	return dem, nil
}

// AddRoughness superimposes Gaussian micro-topography (curbs, ditches,
// local depressions) on the DEM. IDW interpolation from sparse node
// elevations yields an unrealistically smooth surface over which released
// water sheets thinly; sub-meter roughness restores the ponding behavior
// of real urban terrain. The perturbation is deterministic in the seed.
func (d *DEM) AddRoughness(std float64, seed int64) {
	if std <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range d.Elev {
		d.Elev[i] += rng.NormFloat64() * std
	}
}
