package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoissonPMF(t *testing.T) {
	// Hand values for mean 2: P(0)=e⁻², P(1)=2e⁻², P(2)=2e⁻².
	e2 := math.Exp(-2)
	cases := []struct {
		k    int
		want float64
	}{
		{0, e2}, {1, 2 * e2}, {2, 2 * e2}, {3, 4.0 / 3.0 * e2},
	}
	for _, c := range cases {
		if got := PoissonPMF(c.k, 2); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("PMF(%d;2) = %v, want %v", c.k, got, c.want)
		}
	}
	if PoissonPMF(-1, 2) != 0 || PoissonPMF(1, -1) != 0 {
		t.Fatal("invalid arguments should yield 0")
	}
	if PoissonPMF(0, 0) != 1 || PoissonPMF(3, 0) != 0 {
		t.Fatal("zero-mean PMF wrong")
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, mean := range []float64{0.1, 1, 4, 15} {
		total := 0.0
		for k := 0; k < 200; k++ {
			total += PoissonPMF(k, mean)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("mean %v: PMF sums to %v", mean, total)
		}
	}
}

func TestPoissonCDF(t *testing.T) {
	if got := PoissonCDF(-1, 2); got != 0 {
		t.Fatalf("CDF(-1) = %v", got)
	}
	if got := PoissonCDF(1000, 3); math.Abs(got-1) > 1e-9 {
		t.Fatalf("CDF(large) = %v", got)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for k := 0; k < 20; k++ {
		c := PoissonCDF(k, 4)
		if c < prev {
			t.Fatalf("CDF decreasing at k=%d", k)
		}
		prev = c
	}
}

func TestSamplePoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0.5, 3, 50} {
		const trials = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			v := float64(SamplePoisson(mean, rng))
			sum += v
			sumSq += v * v
		}
		m := sum / trials
		variance := sumSq/trials - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Fatalf("mean %v: sample mean %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.15*mean+0.1 {
			t.Fatalf("mean %v: sample variance %v", mean, variance)
		}
	}
	if SamplePoisson(0, rng) != 0 || SamplePoisson(-3, rng) != 0 {
		t.Fatal("non-positive mean should sample 0")
	}
}

func TestFuseOdds(t *testing.T) {
	// Two agreeing sources at 0.6 reinforce above 0.6 (paper's example).
	fused := FuseOdds(0.6, 0.6)
	if fused <= 0.6 {
		t.Fatalf("fused = %v, want > 0.6", fused)
	}
	want := (0.6 / 0.4 * 0.6 / 0.4) / (1 + 0.6/0.4*0.6/0.4)
	if math.Abs(fused-want) > 1e-12 {
		t.Fatalf("fused = %v, want %v", fused, want)
	}
	// A single source passes through unchanged.
	if got := FuseOdds(0.3); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("single source = %v", got)
	}
	// Conflicting sources cancel.
	if got := FuseOdds(0.8, 0.2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("conflicting = %v", got)
	}
	// Decisive inputs.
	if FuseOdds(1.0, 0.1) != 1 {
		t.Fatal("certain-positive should dominate")
	}
	if FuseOdds(0.0, 0.9) != 0 {
		t.Fatal("certain-negative should dominate")
	}
	if FuseOdds() != 0.5 {
		t.Fatal("no sources should be uninformative")
	}
}

func TestFuseOddsProperties(t *testing.T) {
	// Result bounded; agreeing evidence ≥ max single source when both > .5.
	f := func(a, b float64) bool {
		pa := 0.5 + math.Mod(math.Abs(a), 0.49)
		pb := 0.5 + math.Mod(math.Abs(b), 0.49)
		fused := FuseOdds(pa, pb)
		if fused < 0 || fused > 1 {
			return false
		}
		return fused >= math.Max(pa, pb)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := BinaryEntropy(0.5); math.Abs(got-math.Ln2) > 1e-12 {
		t.Fatalf("H(0.5) = %v, want ln 2", got)
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 || BinaryEntropy(-0.1) != 0 {
		t.Fatal("degenerate entropy should be 0")
	}
	// Symmetric and maximized at 0.5.
	for _, p := range []float64{0.1, 0.25, 0.4} {
		if math.Abs(BinaryEntropy(p)-BinaryEntropy(1-p)) > 1e-12 {
			t.Fatalf("entropy asymmetric at %v", p)
		}
		if BinaryEntropy(p) >= BinaryEntropy(0.5) {
			t.Fatalf("entropy at %v not below max", p)
		}
	}
}
