// Package stats provides the probability utilities shared by the weather
// and human-input models: Poisson sampling and mass functions, and
// Clemen–Winkler Bayesian odds aggregation for combining probability
// assessments from multiple information sources (paper eqs. 5–6).
package stats

import (
	"math"
	"math/rand"
)

// PoissonPMF returns P(K = k) for a Poisson distribution with the given
// mean (0 for invalid arguments).
func PoissonPMF(k int, mean float64) float64 {
	if k < 0 || mean < 0 {
		return 0
	}
	if mean == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	// exp(k·ln m − m − ln k!) for numerical stability.
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(mean) - mean - lg)
}

// PoissonCDF returns P(K ≤ k).
func PoissonCDF(k int, mean float64) float64 {
	if k < 0 {
		return 0
	}
	total := 0.0
	for i := 0; i <= k; i++ {
		total += PoissonPMF(i, mean)
	}
	if total > 1 {
		total = 1
	}
	return total
}

// SamplePoisson draws a Poisson variate. Knuth's method is used for small
// means; a normal approximation (rounded, clamped at zero) for large ones.
func SamplePoisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// FuseOdds combines independent probability assessments of the same binary
// event by multiplying posterior odds (Clemen–Winkler expert aggregation,
// the paper's eqs. 5–6): q* = Π pⱼ/(1−pⱼ), fused p = q*/(1+q*).
//
// Probabilities at 0 or 1 are decisive: any source reporting 1 forces the
// fused value toward 1 (and symmetrically for 0, with 1 winning ties).
// An empty input returns 0.5 (no information).
func FuseOdds(probs ...float64) float64 {
	if len(probs) == 0 {
		return 0.5
	}
	logOdds := 0.0
	for _, p := range probs {
		switch {
		case p >= 1:
			return 1
		case p <= 0:
			return 0
		default:
			logOdds += math.Log(p / (1 - p))
		}
	}
	// Convert back through the numerically stable sigmoid.
	if logOdds >= 0 {
		return 1 / (1 + math.Exp(-logOdds))
	}
	e := math.Exp(logOdds)
	return e / (1 + e)
}

// BinaryEntropy returns H(p) = −p·log p − (1−p)·log(1−p) in nats — the
// paper's per-node uncertainty measure (eq. 7). Degenerate probabilities
// yield 0.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}
