package hydraulic

import (
	"math"
	"testing"

	"github.com/aquascale/aquascale/internal/network"
)

// lowHeadNet is a single junction fed from a barely-elevated reservoir, so
// service pressure is inherently marginal.
func lowHeadNet(head float64, demand float64) *network.Network {
	n := network.New("lowhead")
	r, _ := n.AddNode(network.Node{ID: "R", Type: network.Reservoir, Elevation: head})
	j, _ := n.AddNode(network.Node{ID: "J", Type: network.Junction, Elevation: 0, BaseDemand: demand})
	_, _ = n.AddLink(network.Link{
		ID: "P", Type: network.Pipe, From: r, To: j,
		Length: 800, Diameter: 0.15, Roughness: 100,
	})
	return n
}

func TestWagnerFunction(t *testing.T) {
	g, dg := wagner(-5, 0, 20)
	if g != 0 || dg != 0 {
		t.Fatalf("below pMin: g=%v dg=%v", g, dg)
	}
	g, dg = wagner(30, 0, 20)
	if g != 1 || dg != 0 {
		t.Fatalf("above pRef: g=%v dg=%v", g, dg)
	}
	g, _ = wagner(5, 0, 20)
	if math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("g(5;0,20) = %v, want 0.5", g)
	}
	// Monotone in p.
	prev := -1.0
	for p := 0.5; p <= 20; p += 0.5 {
		g, _ := wagner(p, 0, 20)
		if g < prev {
			t.Fatalf("wagner not monotone at p=%v", p)
		}
		prev = g
	}
}

func TestPDDFullPressureDeliversFullDemand(t *testing.T) {
	n := lowHeadNet(60, 0.005)
	s, err := NewSolver(n, Options{PressureDriven: true, Accuracy: 1e-6})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	j, _ := n.NodeIndex("J")
	if math.Abs(res.Demand[j]-0.005) > 1e-8 {
		t.Fatalf("delivered = %v, want full 0.005", res.Demand[j])
	}
}

func TestPDDLowPressureShedsDemand(t *testing.T) {
	// Source head of 8 m cannot sustain 20 m reference pressure: delivery
	// must drop below base demand but stay positive.
	n := lowHeadNet(8, 0.01)
	s, err := NewSolver(n, Options{PressureDriven: true, Accuracy: 1e-6})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	j, _ := n.NodeIndex("J")
	if res.Demand[j] >= 0.01 {
		t.Fatalf("delivered = %v, want below base demand", res.Demand[j])
	}
	if res.Demand[j] <= 0 {
		t.Fatalf("delivered = %v, want positive", res.Demand[j])
	}
	// Consistency: delivered demand matches the Wagner fraction of the
	// solved pressure.
	g, _ := wagner(res.Pressure[j], 0, 20)
	if math.Abs(res.Demand[j]-0.01*g) > 1e-6 {
		t.Fatalf("delivered %v inconsistent with g(p)=%v", res.Demand[j], g)
	}
	if mbe := s.MassBalanceError(res); mbe > 1e-5 {
		t.Fatalf("mass balance error = %v", mbe)
	}
	// Demand-driven analysis of the same network reports full (fictional)
	// delivery with deeply negative pressure.
	dd, err := NewSolver(n, Options{Accuracy: 1e-6})
	if err != nil {
		t.Fatalf("NewSolver(dd): %v", err)
	}
	resDD, err := dd.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady(dd): %v", err)
	}
	if resDD.Pressure[j] >= res.Pressure[j] {
		t.Fatalf("demand-driven pressure %v should be below PDD pressure %v",
			resDD.Pressure[j], res.Pressure[j])
	}
}

func TestPDDMultiLeakPressureInteraction(t *testing.T) {
	// Under PDD, a severe leak sheds neighboring demand instead of driving
	// pressures arbitrarily negative.
	n := network.BuildTestNet()
	pdd, err := NewSolver(n, Options{PressureDriven: true, RefPressure: 30})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	j5, _ := n.NodeIndex("J5")
	res, err := pdd.SolveSteady(0, []Emitter{{Node: j5, Coeff: 0.15}}, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	totalBase := n.TotalBaseDemand()
	totalDelivered := 0.0
	for i := range n.Nodes {
		totalDelivered += res.Demand[i]
	}
	if totalDelivered >= totalBase {
		t.Fatalf("severe leak should shed demand: delivered %v of %v", totalDelivered, totalBase)
	}
	for i := range n.Nodes {
		if n.Nodes[i].Type == network.Junction && res.Pressure[i] < -1 {
			t.Fatalf("PDD pressure %v at node %d implausibly negative", res.Pressure[i], i)
		}
	}
}

func TestPDDDefaults(t *testing.T) {
	o := Options{PressureDriven: true}.withDefaults()
	if o.MinPressure != 0 || o.RefPressure != 20 {
		t.Fatalf("PDD defaults = %v/%v", o.MinPressure, o.RefPressure)
	}
	o = Options{PressureDriven: true, MinPressure: 5, RefPressure: 3}.withDefaults()
	if o.RefPressure <= o.MinPressure {
		t.Fatalf("inverted pressures not repaired: %v/%v", o.MinPressure, o.RefPressure)
	}
}
