package hydraulic

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/aquascale/aquascale/internal/network"
)

// Water-quality transport. The paper motivates AquaSCALE partly by
// contamination risk ("quality of water can also be compromised via
// contaminant propagation through a faulty pipe") and notes EPANET++
// captures "hydraulic and water quality behavior"; this file implements
// the corresponding substrate: plug-flow advection of a conservative or
// first-order-decaying constituent through the network, with complete
// mixing at junctions and in tanks — the same transport model EPANET uses.

// Injection is a constituent source: the node's outflow concentration is
// raised to Concentration between Start and End (a contaminant intrusion
// at a damaged pipe joint, or a tracer study).
type Injection struct {
	Node          int
	Concentration float64 // mg/L
	Start         time.Duration
	End           time.Duration // zero means never ends
}

func (inj Injection) active(t time.Duration) bool {
	if t < inj.Start {
		return false
	}
	return inj.End <= 0 || t <= inj.End
}

// QualityOptions configures transport simulation.
type QualityOptions struct {
	// Step is the transport sub-step. Zero means 1 minute. It must divide
	// the hydraulic step reasonably; flows are frozen between hydraulic
	// snapshots.
	Step time.Duration

	// DecayRate is the first-order decay constant per hour (chlorine-like
	// die-off). Zero means a conservative constituent.
	DecayRate float64
}

func (o QualityOptions) withDefaults() QualityOptions {
	if o.Step <= 0 {
		o.Step = time.Minute
	}
	return o
}

// QualityResult holds constituent concentrations over time.
type QualityResult struct {
	// Times mirror the hydraulic snapshots the quality run was driven by.
	Times []time.Duration

	// Node[k][i] is the concentration at node i at Times[k] (mg/L).
	Node [][]float64
}

// MaxAtNode returns the peak concentration seen at a node.
func (r *QualityResult) MaxAtNode(node int) float64 {
	peak := 0.0
	for _, snap := range r.Node {
		if node < len(snap) && snap[node] > peak {
			peak = snap[node]
		}
	}
	return peak
}

// ArrivalTime returns the first snapshot time at which the node's
// concentration reaches the threshold, or a negative duration if never.
func (r *QualityResult) ArrivalTime(node int, threshold float64) time.Duration {
	for k, snap := range r.Node {
		if node < len(snap) && snap[node] >= threshold {
			return r.Times[k]
		}
	}
	return -1
}

// pipeSegment is one plug of water in a pipe, ordered From→To.
type pipeSegment struct {
	volume float64 // m³
	conc   float64 // mg/L
}

// RunQuality advects a constituent through the network along the flows of
// a completed hydraulic simulation. Pipes carry plug-flow segment queues
// (travel time emerges from pipe volume over flow); junctions mix their
// inflows instantaneously; tanks are completely mixed storage. It is
// shorthand for RunQualityContext with context.Background().
func RunQuality(net *network.Network, ts *TimeSeries, injections []Injection, opts QualityOptions) (*QualityResult, error) {
	return RunQualityContext(context.Background(), net, ts, injections, opts)
}

// RunQualityContext is RunQuality with cancellation: ctx is checked
// between hydraulic snapshots, and the error is ctx.Err().
func RunQualityContext(ctx context.Context, net *network.Network, ts *TimeSeries, injections []Injection, opts QualityOptions) (*QualityResult, error) {
	opts = opts.withDefaults()
	if ts.Steps() < 2 {
		return nil, fmt.Errorf("hydraulic: quality needs at least two hydraulic snapshots")
	}
	for _, inj := range injections {
		if inj.Node < 0 || inj.Node >= len(net.Nodes) {
			return nil, fmt.Errorf("hydraulic: injection node %d out of range", inj.Node)
		}
		if inj.Concentration < 0 {
			return nil, fmt.Errorf("hydraulic: negative injection concentration at node %d", inj.Node)
		}
	}

	// Segment queues, index 0 at the From end.
	segs := make([][]pipeSegment, len(net.Links))
	for li := range net.Links {
		l := &net.Links[li]
		vol := pipeVolume(l)
		segs[li] = []pipeSegment{{volume: vol, conc: 0}}
	}

	nodeConc := make([]float64, len(net.Nodes))
	tankVol := make(map[int]float64)
	for i := range net.Nodes {
		if net.Nodes[i].Type == network.Tank {
			n := &net.Nodes[i]
			area := math.Pi * n.TankDiameter * n.TankDiameter / 4
			tankVol[i] = area * n.InitLevel
		}
	}

	res := &QualityResult{}
	hydStep := ts.Times[1] - ts.Times[0]
	sub := int(hydStep / opts.Step)
	if sub < 1 {
		sub = 1
	}
	dt := hydStep.Seconds() / float64(sub)
	decay := math.Exp(-opts.DecayRate / 3600 * dt)

	inflowMass := make([]float64, len(net.Nodes))
	inflowVol := make([]float64, len(net.Nodes))

	for k := 0; k < ts.Steps(); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		flows := ts.Flow[k]
		t := ts.Times[k]
		for s := 0; s < sub; s++ {
			subT := t + time.Duration(float64(s)*dt*float64(time.Second))
			for i := range inflowMass {
				inflowMass[i] = 0
				inflowVol[i] = 0
			}

			// Advect each open link: pull a plug of volume |Q|·dt from the
			// upstream node into the pipe, push the same volume out of the
			// downstream end into the downstream node's mixing pool.
			for li := range net.Links {
				l := &net.Links[li]
				if l.Status == network.Closed {
					continue
				}
				q := flows[li]
				if q == 0 {
					continue
				}
				up, down := l.From, l.To
				if q < 0 {
					up, down = down, up
				}
				vol := math.Abs(q) * dt
				mass := advect(&segs[li], vol, nodeConc[up], q >= 0)
				inflowMass[down] += mass
				inflowVol[down] += vol
			}

			// Mix at nodes.
			for i := range net.Nodes {
				node := &net.Nodes[i]
				switch node.Type {
				case network.Reservoir:
					nodeConc[i] = 0 // clean source water
				case network.Tank:
					// Completely mixed storage: blend inflow into volume.
					v := tankVol[i]
					if v <= 0 {
						v = 1
					}
					mass := nodeConc[i]*v + inflowMass[i]
					vol := v + inflowVol[i]
					nodeConc[i] = mass / vol
					// Outflow leaves at tank concentration; volume is
					// refreshed from hydraulics each hydraulic step.
				default:
					if inflowVol[i] > 0 {
						nodeConc[i] = inflowMass[i] / inflowVol[i]
					}
					// Dead-end with no inflow this sub-step keeps its
					// previous concentration (stagnant water).
				}
				if decay < 1 {
					nodeConc[i] *= decay
				}
			}

			// Apply active injections: the node's outflow is overridden to
			// the source concentration (EPANET's SOURCE SETPOINT).
			for _, inj := range injections {
				if inj.active(subT) {
					nodeConc[inj.Node] = inj.Concentration
				}
			}
		}

		// Refresh tank volumes from the hydraulic trajectory.
		for i, levels := range ts.TankLevel {
			if k < len(levels) {
				n := &net.Nodes[i]
				area := math.Pi * n.TankDiameter * n.TankDiameter / 4
				tankVol[i] = area * levels[k]
				if tankVol[i] <= 0 {
					tankVol[i] = 1e-3
				}
			}
		}

		snap := make([]float64, len(nodeConc))
		copy(snap, nodeConc)
		res.Times = append(res.Times, t)
		res.Node = append(res.Node, snap)
	}
	return res, nil
}

// advect pushes a plug of volume vol at concentration inConc into the
// upstream end of the segment queue and pulls vol out of the downstream
// end, returning the mass removed. forward selects which end is upstream
// (segment order is From→To).
func advect(queue *[]pipeSegment, vol, inConc float64, forward bool) float64 {
	segsIn := *queue
	if !forward {
		reverseSegments(segsIn)
	}
	// Push at the front (upstream).
	segsIn = append([]pipeSegment{{volume: vol, conc: inConc}}, segsIn...)
	// Pull vol from the back (downstream).
	mass := 0.0
	remaining := vol
	for remaining > 0 && len(segsIn) > 0 {
		last := &segsIn[len(segsIn)-1]
		if last.volume > remaining {
			mass += remaining * last.conc
			last.volume -= remaining
			remaining = 0
		} else {
			mass += last.volume * last.conc
			remaining -= last.volume
			segsIn = segsIn[:len(segsIn)-1]
		}
	}
	// Merge adjacent segments with near-equal concentration to bound the
	// queue length over long runs.
	merged := segsIn[:0]
	for _, s := range segsIn {
		if n := len(merged); n > 0 && math.Abs(merged[n-1].conc-s.conc) < 1e-9 {
			merged[n-1].volume += s.volume
			continue
		}
		merged = append(merged, s)
	}
	if !forward {
		reverseSegments(merged)
	}
	*queue = merged
	return mass
}

func reverseSegments(s []pipeSegment) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// pipeVolume returns the water volume of a link (pumps and valves are
// short devices with nominal volume).
func pipeVolume(l *network.Link) float64 {
	if l.Type != network.Pipe || l.Diameter <= 0 || l.Length <= 0 {
		return 0.05
	}
	area := math.Pi * l.Diameter * l.Diameter / 4
	v := area * l.Length
	if v < 1e-3 {
		v = 1e-3
	}
	return v
}
