package hydraulic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/aquascale/aquascale/internal/network"
)

// randomNetwork builds a random connected gravity-fed network: a spanning
// tree over n junctions plus extra loop pipes, one elevated reservoir.
func randomNetwork(rng *rand.Rand, junctions int) *network.Network {
	net := network.New(fmt.Sprintf("rand-%d", junctions))
	res, _ := net.AddNode(network.Node{ID: "R", Type: network.Reservoir, Elevation: 80})
	idx := make([]int, junctions)
	for i := 0; i < junctions; i++ {
		idx[i], _ = net.AddNode(network.Node{
			ID:         fmt.Sprintf("J%d", i),
			Type:       network.Junction,
			Elevation:  rng.Float64() * 25,
			X:          rng.Float64() * 2000,
			Y:          rng.Float64() * 2000,
			BaseDemand: (0.2 + rng.Float64()) / 1000,
		})
	}
	link := 0
	addPipe := func(a, b int, diam float64) {
		link++
		_, _ = net.AddLink(network.Link{
			ID: fmt.Sprintf("P%d", link), Type: network.Pipe,
			From: a, To: b,
			Length:    50 + rng.Float64()*500,
			Diameter:  diam,
			Roughness: 90 + rng.Float64()*40,
		})
	}
	// Trunk from the reservoir, then a random spanning tree, then loops.
	addPipe(res, idx[0], 0.4)
	for i := 1; i < junctions; i++ {
		addPipe(idx[rng.Intn(i)], idx[i], 0.15+rng.Float64()*0.25)
	}
	for k := 0; k < junctions/2; k++ {
		a, b := rng.Intn(junctions), rng.Intn(junctions)
		if a != b {
			addPipe(idx[a], idx[b], 0.15+rng.Float64()*0.15)
		}
	}
	return net
}

// TestSolverPropertyRandomNetworks checks core hydraulic invariants on a
// population of random networks: convergence, junction mass balance,
// energy consistency along every open pipe (headloss sign matches flow
// direction), and source outflow equal to total consumption.
func TestSolverPropertyRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		junctions := 4 + rng.Intn(40)
		net := randomNetwork(rng, junctions)
		if err := net.Validate(); err != nil {
			t.Fatalf("trial %d: invalid generated network: %v", trial, err)
		}
		solver, err := NewSolver(net, Options{Accuracy: 1e-5})
		if err != nil {
			t.Fatalf("trial %d: NewSolver: %v", trial, err)
		}

		// Optionally add a leak at a random junction.
		var emitters []Emitter
		if rng.Intn(2) == 0 {
			emitters = append(emitters, Emitter{
				Node:  net.JunctionIndices()[rng.Intn(junctions)],
				Coeff: 1e-3,
			})
		}
		res, err := solver.SolveSteady(0, emitters, nil)
		if err != nil {
			t.Fatalf("trial %d (%d junctions): %v", trial, junctions, err)
		}

		// Invariant 1: junction mass balance.
		if mbe := solver.MassBalanceError(res); mbe > 1e-6 {
			t.Fatalf("trial %d: mass balance error %v", trial, mbe)
		}

		// Invariant 2: energy consistency — flow runs downhill in head
		// across every open pipe.
		for li := range net.Links {
			l := &net.Links[li]
			if l.Type != network.Pipe || l.Status == network.Closed {
				continue
			}
			dh := res.Head[l.From] - res.Head[l.To]
			q := res.Flow[li]
			if math.Abs(q) < 1e-9 {
				continue
			}
			if q > 0 && dh < -1e-6 {
				t.Fatalf("trial %d: pipe %s flows uphill: q=%v dh=%v", trial, l.ID, q, dh)
			}
			if q < 0 && dh > 1e-6 {
				t.Fatalf("trial %d: pipe %s flows uphill: q=%v dh=%v", trial, l.ID, q, dh)
			}
		}

		// Invariant 3: source outflow equals demand + leak.
		var sourceOut float64
		for li := range net.Links {
			l := &net.Links[li]
			if net.Nodes[l.From].Type == network.Reservoir {
				sourceOut += res.Flow[li]
			}
			if net.Nodes[l.To].Type == network.Reservoir {
				sourceOut -= res.Flow[li]
			}
		}
		want := 0.0
		for i := range net.Nodes {
			want += res.Demand[i]
		}
		want += res.TotalEmitterFlow()
		if math.Abs(sourceOut-want) > 1e-6 {
			t.Fatalf("trial %d: source supplies %v, consumption is %v", trial, sourceOut, want)
		}
	}
}

// TestSolverLeakMonotonicity: on random networks, growing a leak's
// effective area increases its discharge and decreases the local pressure.
func TestSolverLeakMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		net := randomNetwork(rng, 10+rng.Intn(20))
		solver, err := NewSolver(net, Options{Accuracy: 1e-5})
		if err != nil {
			t.Fatalf("NewSolver: %v", err)
		}
		node := net.JunctionIndices()[rng.Intn(net.JunctionCount())]
		prevQ := -1.0
		prevP := math.Inf(1)
		for _, ec := range []float64{5e-4, 1e-3, 2e-3, 4e-3} {
			res, err := solver.SolveSteady(0, []Emitter{{Node: node, Coeff: ec}}, nil)
			if err != nil {
				t.Fatalf("trial %d ec=%v: %v", trial, ec, err)
			}
			q := res.EmitterFlow[node]
			p := res.Pressure[node]
			if q <= prevQ {
				t.Fatalf("trial %d: leak flow not increasing with EC: %v → %v", trial, prevQ, q)
			}
			if p >= prevP {
				t.Fatalf("trial %d: leak pressure not decreasing with EC: %v → %v", trial, prevP, p)
			}
			prevQ, prevP = q, p
		}
	}
}
