// Package hydraulic implements a demand-driven hydraulic solver for water
// distribution networks — the repository's "EPANET++" substitute.
//
// The steady-state engine is the Todini–Pilati Global Gradient Algorithm
// (GGA), the same algorithm EPANET 2 implements: junction heads and link
// flows are solved simultaneously by Newton iteration over the coupled
// energy and continuity equations. Pipe friction follows Hazen–Williams,
// pumps follow a parametric curve H = H0 − R·Qᴺ, and pipe leaks are modeled
// as pressure-dependent emitters Q = EC·p^β exactly as in the paper
// (eq. 1). An extended-period engine integrates tank levels between steady
// solves at the IoT sampling period (15 minutes in the paper).
//
// All quantities are SI: m, m³/s, meters of head.
package hydraulic

import (
	"math"

	"github.com/aquascale/aquascale/internal/network"
)

const (
	// hwCoeff is the Hazen-Williams resistance coefficient for SI units
	// (h in m, Q in m³/s, length and diameter in m).
	hwCoeff = 10.667

	// hwExp is the Hazen-Williams flow exponent.
	hwExp = 1.852

	// minorLossCoeff converts a dimensionless minor-loss coefficient K and
	// diameter d to the quadratic resistance m = K·8/(g·π²·d⁴).
	minorLossCoeff = 8.0 / (9.81 * math.Pi * math.Pi)

	// qSmall is the flow magnitude below which gradients are linearized to
	// keep the Jacobian bounded (EPANET applies the same guard).
	qSmall = 1e-6

	// pumpBackflowResistance penalizes reverse flow through pumps, which
	// EPANET models with a large linear resistance (check-valve behavior).
	pumpBackflowResistance = 1e8
)

// pipeResistance returns the Hazen-Williams resistance r such that the
// friction loss is r·Q^1.852.
func pipeResistance(l *network.Link) float64 {
	return hwCoeff * l.Length / (math.Pow(l.Roughness, hwExp) * math.Pow(l.Diameter, 4.871))
}

// minorResistance returns the quadratic minor-loss resistance m such that
// the loss is m·Q².
func minorResistance(l *network.Link) float64 {
	if l.MinorLoss <= 0 || l.Diameter <= 0 {
		return 0
	}
	d4 := l.Diameter * l.Diameter * l.Diameter * l.Diameter
	return minorLossCoeff * l.MinorLoss / d4
}

// linkCoeffs holds the per-iteration Newton linearization of one link:
// headloss h(Q) and inverse gradient p = 1/(dh/dQ).
type linkCoeffs struct {
	h float64 // headloss From→To at current flow (m); negative = head gain
	p float64 // inverse gradient 1/(dh/dQ)
}

// evalLink computes the current headloss and inverse gradient for a link.
// r and m are precomputed resistances (pipe/valve); pumps use the curve
// parameters directly.
func evalLink(l *network.Link, r, m, q float64) linkCoeffs {
	switch l.Type {
	case network.Pump:
		return evalPump(l, q)
	default:
		return evalPipe(r, m, q)
	}
}

// evalPipe evaluates Hazen-Williams friction plus quadratic minor loss.
func evalPipe(r, m, q float64) linkCoeffs {
	aq := math.Abs(q)
	if aq < qSmall {
		aq = qSmall
	}
	// h = r·Q·|Q|^0.852 + m·Q·|Q|; dh/dQ = 1.852·r·|Q|^0.852 + 2·m·|Q|.
	hw := math.Pow(aq, hwExp-1)
	grad := hwExp*r*hw + 2*m*aq
	h := q * (r*hw + m*aq)
	return linkCoeffs{h: h, p: 1 / grad}
}

// evalPump evaluates the pump curve as a negative headloss. Forward flow
// follows h = −(H0 − R·Qᴺ); reverse flow meets a large linear resistance.
func evalPump(l *network.Link, q float64) linkCoeffs {
	if q < 0 {
		// Check valve: strongly resist backflow.
		return linkCoeffs{
			h: -l.PumpH0 + pumpBackflowResistance*q,
			p: 1 / pumpBackflowResistance,
		}
	}
	aq := q
	if aq < qSmall {
		aq = qSmall
	}
	grad := l.PumpN * l.PumpR * math.Pow(aq, l.PumpN-1)
	if grad < 1e-8 {
		grad = 1e-8
	}
	h := -l.PumpH0 + l.PumpR*math.Pow(aq, l.PumpN)
	return linkCoeffs{h: h, p: 1 / grad}
}

// initialFlow picks a starting flow for the Newton iteration: pipes and
// valves start at 0.5 m/s velocity; pumps at half their open-discharge flow.
func initialFlow(l *network.Link) float64 {
	switch l.Type {
	case network.Pump:
		if l.PumpR <= 0 {
			return 0.01
		}
		qMax := math.Pow(l.PumpH0/l.PumpR, 1/l.PumpN)
		return qMax / 2
	default:
		area := math.Pi * l.Diameter * l.Diameter / 4
		return 0.5 * area
	}
}
