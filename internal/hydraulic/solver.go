package hydraulic

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/aquascale/aquascale/internal/matrix"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// ErrNotConverged is returned when the Newton iteration exhausts its
// iteration budget without meeting the accuracy target.
var ErrNotConverged = errors.New("hydraulic: solver did not converge")

// ConvergenceError is the concrete error SolveSteady returns on
// non-convergence. It wraps ErrNotConverged — errors.Is(err,
// ErrNotConverged) keeps working — and carries the failure context so
// callers and metrics can distinguish failure modes (budget too small vs.
// genuinely oscillating vs. near-singular late iterations).
type ConvergenceError struct {
	// Iterations is the Newton iteration count consumed.
	Iterations int

	// Residual is the last observed convergence ratio Σ|ΔQ| / Σ|Q|
	// (+Inf if no flow update completed).
	Residual float64

	// SimTime is the elapsed simulation time of the failing solve — the
	// demand-pattern instant, which locates the failure within an EPS run.
	SimTime time.Duration

	// Injected marks failures forced by a fault-injection hook (see
	// SetFailureHook) rather than produced by the Newton iteration. An
	// injected attempt never iterates, so it leaves no iterate for the
	// next attempt to warm-start from.
	Injected bool
}

func (e *ConvergenceError) Error() string {
	if e.Injected {
		return fmt.Sprintf("%v (injected fault, sim time %v)", ErrNotConverged, e.SimTime)
	}
	return fmt.Sprintf("%v after %d iterations (residual %.3g, sim time %v)",
		ErrNotConverged, e.Iterations, e.Residual, e.SimTime)
}

// Unwrap keeps errors.Is(err, ErrNotConverged) true.
func (e *ConvergenceError) Unwrap() error { return ErrNotConverged }

// Backend selects the linear-algebra backend for the junction head
// system (see matrix.SPDSystem).
type Backend int

const (
	// BackendAuto picks by junction count: dense below
	// DefaultSparseJunctions, sparse at or above it.
	BackendAuto Backend = iota

	// BackendDense forces the dense Cholesky path.
	BackendDense

	// BackendSparse forces the reordered sparse LDLᵀ path.
	BackendSparse
)

// DefaultSparseJunctions is the BackendAuto switchover point. Water
// networks are sparse graphs, so the reordered sparse factorization wins
// from a few dozen junctions up (measured: ~20× at 91 junctions, ~100× at
// 299); dense survives only as the small-system and cross-check baseline.
const DefaultSparseJunctions = 32

// Options configures the steady-state solver.
type Options struct {
	// Backend selects the linear-algebra backend for the junction head
	// system. The zero value (BackendAuto) switches from dense to sparse
	// at DefaultSparseJunctions junctions. For a fixed backend results
	// are bit-identical run to run; dense and sparse agree to ~1e-8
	// relative (different factorization orderings round differently).
	Backend Backend

	// Accuracy is the convergence target on Σ|ΔQ| / Σ|Q| per iteration.
	// Zero means the EPANET default of 1e-3.
	Accuracy float64

	// MaxIterations bounds the Newton loop. Zero means 200.
	MaxIterations int

	// EmitterExponent is β in Q = EC·p^β. Zero means the paper's 0.5.
	EmitterExponent float64

	// PressureDriven enables Wagner pressure-driven demand: delivered
	// demand scales with √((p−Pmin)/(Pref−Pmin)), clamped to [0, 1].
	// Demand-driven analysis (the default, and EPANET's) assumes full
	// delivery regardless of pressure, which overstates consumption when
	// severe multi-leak events depress service pressure.
	PressureDriven bool

	// MinPressure is the head below which no demand is delivered (m).
	// Used only with PressureDriven; default 0.
	MinPressure float64

	// RefPressure is the head at which full demand is delivered (m).
	// Used only with PressureDriven; zero means 20.
	RefPressure float64
}

func (o Options) withDefaults() Options {
	if o.Accuracy <= 0 {
		o.Accuracy = 1e-3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.EmitterExponent <= 0 {
		o.EmitterExponent = 0.5
	}
	if o.RefPressure <= o.MinPressure {
		o.RefPressure = o.MinPressure + 20
	}
	return o
}

// wagner returns the delivered-demand fraction g(p) and its derivative
// dg/dp for the Wagner pressure-demand relationship.
func wagner(p, pMin, pRef float64) (g, dg float64) {
	switch {
	case p <= pMin:
		return 0, 0
	case p >= pRef:
		return 1, 0
	default:
		span := pRef - pMin
		g = math.Sqrt((p - pMin) / span)
		if g < 0.05 {
			g = 0.05 // keep the Newton derivative bounded near pMin
		}
		return g, 0.5 / (span * g)
	}
}

// Emitter is a pressure-dependent discharge at a node: Q = Coeff·p^β where
// p is the pressure head above the node elevation. This is the paper's leak
// model (eq. 1); Coeff is the effective leak area EC (the leak size e.s).
type Emitter struct {
	Node  int     // node index
	Coeff float64 // EC, in m³/s per m^β of pressure head
}

// Result is a steady-state hydraulic snapshot.
type Result struct {
	// Head is hydraulic head per node (m).
	Head []float64

	// Pressure is pressure head per node: Head − Elevation (m). Fixed-grade
	// nodes report level above their base.
	Pressure []float64

	// Flow is volumetric flow per link (m³/s), positive From→To. Closed
	// links carry zero.
	Flow []float64

	// EmitterFlow is leak outflow per node index (only emitter nodes).
	EmitterFlow map[int]float64

	// Demand is the consumer demand per node used in this solve (m³/s).
	Demand []float64

	// Iterations is the Newton iteration count used.
	Iterations int
}

// TotalEmitterFlow sums all leak outflow in m³/s. Summation runs in
// ascending node order so the float total is reproducible — Go map
// iteration order would otherwise vary it at the last bit.
func (r *Result) TotalEmitterFlow() float64 {
	nodes := make([]int, 0, len(r.EmitterFlow))
	for n := range r.EmitterFlow {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	total := 0.0
	for _, n := range nodes {
		total += r.EmitterFlow[n]
	}
	return total
}

// Solver solves steady-state hydraulics for one network. It precomputes
// topology indexes and link resistances; it is safe for sequential reuse
// across many solves (scenario generation), but not for concurrent use —
// clone one Solver per goroutine.
type Solver struct {
	net  *network.Network
	opts Options

	junctionOf []int // node index → junction ordinal, -1 for fixed grade
	junctions  []int // junction ordinal → node index
	resistance []float64
	minorRes   []float64

	// Head system and its precomputed assembly slots: diagSlot[j] for
	// junction ordinal j, linkSlot[li] for the off-diagonal pair of link
	// li (-1 when an endpoint is fixed-grade). Resolving slots here keeps
	// the Newton loop free of index arithmetic and map lookups.
	sys      matrix.SPDSystem
	diagSlot []int
	linkSlot []int

	// Scratch buffers reused across solves. The emitter aggregation and
	// tank-head staging are index-sorted parallel slices, not maps:
	// assembly never iterates a Go map, so float accumulation order — and
	// with it bit-level reproducibility — is fixed by construction.
	flow       []float64
	head       []float64
	diag       []float64
	rhs        []float64
	newHead    []float64
	demand     []float64
	emitNodes  []int     // ascending node indices of active emitters
	emitCoeffs []float64 // aggregated coefficients, parallel to emitNodes
	tankNodes  []int     // ascending node indices of tanks
	tankHead   []float64 // staged tank heads, parallel to tankNodes
	tankOrd    []int     // node index → tank ordinal, -1 otherwise

	// failHook, when set, is consulted at the top of every solve attempt;
	// returning true fails the attempt immediately with an injected
	// ConvergenceError. Fault-injection only (see the faults package).
	failHook func(t time.Duration, attempt int) bool

	// Telemetry handles, bound once at construction from the registry
	// active at that moment; nil (free no-ops) when telemetry is off.
	mSolves     *telemetry.Counter
	mIters      *telemetry.Counter
	mFailures   *telemetry.Counter
	mInjected   *telemetry.Counter
	mRetries    *telemetry.Counter
	mRecoveries *telemetry.Counter
	mWarm       *telemetry.Counter
	mFactor     *telemetry.Counter
	hIters      *telemetry.Histogram
	hSolveSec   *telemetry.Histogram
}

// NewSolver prepares a solver for the given network. The network is
// validated; the solver reads (never mutates) it afterwards.
func NewSolver(net *network.Network, opts Options) (*Solver, error) {
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("hydraulic: %w", err)
	}
	s := &Solver{
		net:        net,
		opts:       opts.withDefaults(),
		junctionOf: make([]int, len(net.Nodes)),
		resistance: make([]float64, len(net.Links)),
		minorRes:   make([]float64, len(net.Links)),
	}
	for i := range net.Nodes {
		if net.Nodes[i].Type == network.Junction {
			s.junctionOf[i] = len(s.junctions)
			s.junctions = append(s.junctions, i)
		} else {
			s.junctionOf[i] = -1
		}
	}
	for i := range net.Links {
		l := &net.Links[i]
		if l.Type != network.Pump {
			s.resistance[i] = pipeResistance(l)
			s.minorRes[i] = minorResistance(l)
		}
		if l.Type == network.Valve {
			// Valves are short devices: friction is negligible, the
			// setting acts through the minor-loss term. Keep a small
			// linear floor so an all-zero valve still has a gradient.
			s.resistance[i] = 1e-4
		}
	}
	nj := len(s.junctions)
	s.flow = make([]float64, len(net.Links))
	s.head = make([]float64, len(net.Nodes))
	s.diag = make([]float64, nj)
	s.rhs = make([]float64, nj)
	s.newHead = make([]float64, nj)
	s.demand = make([]float64, len(net.Nodes))

	// Tank staging: ascending node order, resolved once.
	s.tankOrd = make([]int, len(net.Nodes))
	for i := range net.Nodes {
		s.tankOrd[i] = -1
		if net.Nodes[i].Type == network.Tank {
			s.tankOrd[i] = len(s.tankNodes)
			s.tankNodes = append(s.tankNodes, i)
		}
	}
	s.tankHead = make([]float64, len(s.tankNodes))

	// Head system: the junction-to-junction coupling pattern is one pair
	// per link whose endpoints are both junctions (parallel links share a
	// slot). Symbolic work — ordering, elimination tree, factor layout —
	// happens here, once per network; every Newton iteration afterwards
	// only assembles and refactorizes numerically.
	if nj > 0 {
		var pairs [][2]int
		for i := range net.Links {
			jf := s.junctionOf[net.Links[i].From]
			jt := s.junctionOf[net.Links[i].To]
			if jf >= 0 && jt >= 0 {
				pairs = append(pairs, [2]int{jf, jt})
			}
		}
		backend := s.opts.Backend
		if backend == BackendAuto {
			if nj >= DefaultSparseJunctions {
				backend = BackendSparse
			} else {
				backend = BackendDense
			}
		}
		var err error
		if backend == BackendSparse {
			s.sys, err = matrix.NewSparseSPD(nj, pairs)
		} else {
			s.sys, err = matrix.NewDenseSPD(nj)
		}
		if err != nil {
			return nil, fmt.Errorf("hydraulic: %w", err)
		}
		s.diagSlot = make([]int, nj)
		for j := 0; j < nj; j++ {
			s.diagSlot[j] = s.sys.DiagSlot(j)
		}
		s.linkSlot = make([]int, len(net.Links))
		for i := range net.Links {
			jf := s.junctionOf[net.Links[i].From]
			jt := s.junctionOf[net.Links[i].To]
			s.linkSlot[i] = -1
			if jf >= 0 && jt >= 0 {
				s.linkSlot[i] = s.sys.PairSlot(jf, jt)
			}
		}
	}

	reg := telemetry.Default()
	s.mSolves = reg.Counter("hydraulic_solves_total")
	s.mIters = reg.Counter("hydraulic_newton_iterations_total")
	s.mFailures = reg.Counter("hydraulic_convergence_failures_total")
	s.mInjected = reg.Counter("hydraulic_injected_failures_total")
	s.mRetries = reg.Counter("hydraulic_retries_total")
	s.mRecoveries = reg.Counter("hydraulic_retry_recoveries_total")
	s.mWarm = reg.Counter("hydraulic_warm_restarts_total")
	s.mFactor = reg.Counter("hydraulic_numeric_factorizations_total")
	s.hIters = reg.Histogram("hydraulic_iterations_per_solve", telemetry.LinearBuckets(5, 5, 10))
	s.hSolveSec = reg.Histogram("hydraulic_linear_solve_seconds", telemetry.ExpBuckets(1e-6, 4, 12))
	if s.sys != nil {
		reg.Counter("hydraulic_symbolic_factorizations_total").Inc()
		reg.Gauge("hydraulic_factor_fill_ratio").Set(float64(s.sys.FactorNNZ()) / float64(s.sys.NNZ()))
	}
	return s, nil
}

// TankNodes returns the tank node indices in ascending order — the layout
// of the heads slice SolveSteadyHeads and SolveSteadyRetryHeads consume.
func (s *Solver) TankNodes() []int {
	out := make([]int, len(s.tankNodes))
	copy(out, s.tankNodes)
	return out
}

// stageTankHeadsMap loads per-solve tank head overrides from the map API
// into the staged slice; nodes absent from the map default to elevation +
// initial level.
func (s *Solver) stageTankHeadsMap(overrides map[int]float64) {
	for k, ti := range s.tankNodes {
		node := &s.net.Nodes[ti]
		h := node.Elevation + node.InitLevel
		if v, ok := overrides[ti]; ok {
			h = v
		}
		s.tankHead[k] = h
	}
}

// stageTankHeadsSlice loads overrides aligned with TankNodes; nil means
// all defaults.
func (s *Solver) stageTankHeadsSlice(heads []float64) error {
	if heads == nil {
		s.stageTankHeadsMap(nil)
		return nil
	}
	if len(heads) != len(s.tankNodes) {
		return fmt.Errorf("hydraulic: tank heads length %d, want %d", len(heads), len(s.tankNodes))
	}
	copy(s.tankHead, heads)
	return nil
}

// SetFailureHook installs (or, with nil, removes) a fault-injection
// predicate consulted at the top of every solve attempt with the solve's
// simulation time and the attempt number (0 for the first attempt, k for
// the k-th retry). When it returns true the attempt fails immediately with
// a ConvergenceError marked Injected, without touching solver state. It
// exists for the faults package and retry-path tests; production code
// never sets it.
func (s *Solver) SetFailureHook(fn func(t time.Duration, attempt int) bool) {
	s.failHook = fn
}

// Network returns the network this solver was built for.
func (s *Solver) Network() *network.Network { return s.net }

// SystemStats reports the head-system pattern size: stored coefficient
// count and factor nonzero count (equal for the dense backend; their
// ratio is the sparse fill-in). Zero values mean the network has no
// junctions and therefore no head system.
func (s *Solver) SystemStats() (nnz, factorNNZ int) {
	if s.sys == nil {
		return 0, 0
	}
	return s.sys.NNZ(), s.sys.FactorNNZ()
}

// SolveSteady computes a steady-state snapshot at elapsed time t (which
// selects demand-pattern multipliers), with the given active emitters and
// optional tank head overrides (node index → hydraulic head). Tank heads
// default to elevation + initial level when not overridden.
func (s *Solver) SolveSteady(t time.Duration, emitters []Emitter, tankHeads map[int]float64) (*Result, error) {
	s.stageTankHeadsMap(tankHeads)
	return s.solveOnce(t, emitters, 0, false, 1)
}

// SolveSteadyHeads is SolveSteady with tank head overrides as a slice
// aligned with TankNodes (nil means all defaults) — the allocation- and
// map-free form the EPS loop uses.
func (s *Solver) SolveSteadyHeads(t time.Duration, emitters []Emitter, tankHeads []float64) (*Result, error) {
	if err := s.stageTankHeadsSlice(tankHeads); err != nil {
		return nil, err
	}
	return s.solveOnce(t, emitters, 0, false, 1)
}

// solveOnce is one solve attempt against the staged tank heads. attempt
// numbers the attempt within a retry ladder (0 = first); warm keeps the
// head/flow iterate left by the previous attempt instead of cold-starting
// from the fixed initial guesses; relax is the Newton flow-update fraction
// (1 = the standard full step, smaller = stronger damping). SolveSteady
// always passes (0, false, 1), so cold solves stay independent of any
// earlier solve on the same Solver — the bit-identical session-reuse
// guarantee the dataset layer documents.
func (s *Solver) solveOnce(t time.Duration, emitters []Emitter, attempt int, warm bool, relax float64) (*Result, error) {
	if s.failHook != nil && s.failHook(t, attempt) {
		s.mInjected.Inc()
		return nil, &ConvergenceError{Residual: math.Inf(1), SimTime: t, Injected: true}
	}
	net := s.net
	beta := s.opts.EmitterExponent

	// Demands and fixed heads. A warm attempt keeps the previous attempt's
	// junction heads (and link flows, below) as its starting iterate; the
	// demand-driven quantities are recomputed either way.
	for i := range net.Nodes {
		node := &net.Nodes[i]
		switch node.Type {
		case network.Junction:
			s.demand[i] = net.DemandAt(i, t)
			if !warm {
				s.head[i] = node.Elevation + 30 // initial guess
			}
		case network.Reservoir:
			s.demand[i] = 0
			s.head[i] = node.Elevation
		case network.Tank:
			s.demand[i] = 0
			s.head[i] = s.tankHead[s.tankOrd[i]]
		}
	}

	// Aggregate emitter coefficients per node (multiple concurrent leaks
	// at one node sum their effective areas) into index-sorted slices, so
	// the linearization loop below runs in fixed node order.
	s.emitNodes = s.emitNodes[:0]
	s.emitCoeffs = s.emitCoeffs[:0]
	for _, e := range emitters {
		if e.Node < 0 || e.Node >= len(net.Nodes) {
			return nil, fmt.Errorf("hydraulic: emitter node %d out of range", e.Node)
		}
		if e.Coeff < 0 {
			return nil, fmt.Errorf("hydraulic: negative emitter coefficient %v at node %d", e.Coeff, e.Node)
		}
		k := sort.SearchInts(s.emitNodes, e.Node)
		if k < len(s.emitNodes) && s.emitNodes[k] == e.Node {
			s.emitCoeffs[k] += e.Coeff
			continue
		}
		s.emitNodes = append(s.emitNodes, 0)
		s.emitCoeffs = append(s.emitCoeffs, 0)
		copy(s.emitNodes[k+1:], s.emitNodes[k:])
		copy(s.emitCoeffs[k+1:], s.emitCoeffs[k:])
		s.emitNodes[k] = e.Node
		s.emitCoeffs[k] = e.Coeff
	}

	// Initial flows.
	for i := range net.Links {
		l := &net.Links[i]
		if l.Status == network.Closed {
			s.flow[i] = 0
			continue
		}
		if !warm {
			s.flow[i] = initialFlow(l)
		}
	}

	nj := len(s.junctions)
	converged := false
	iter := 0
	residual := math.Inf(1)
	for ; iter < s.opts.MaxIterations; iter++ {
		s.sys.Reset()
		for j := 0; j < nj; j++ {
			s.rhs[j] = 0
			s.diag[j] = 0
		}

		// Node balance contributions from demand. Under pressure-driven
		// analysis the delivered demand depends on head, so it is
		// linearized per Newton iteration like the emitters.
		for j, nodeIdx := range s.junctions {
			d := s.demand[nodeIdx]
			if !s.opts.PressureDriven || d == 0 {
				s.rhs[j] -= d
				continue
			}
			p := s.head[nodeIdx] - net.Nodes[nodeIdx].Elevation
			g, dg := wagner(p, s.opts.MinPressure, s.opts.RefPressure)
			delivered := d * g
			dd := d * dg
			s.diag[j] += dd
			s.rhs[j] += -delivered + dd*s.head[nodeIdx]
		}

		// Link contributions.
		for li := range net.Links {
			l := &net.Links[li]
			if l.Status == network.Closed {
				continue
			}
			c := evalLink(l, s.resistance[li], s.minorRes[li], s.flow[li])
			y := c.p * c.h // flow correction term
			jf := s.junctionOf[l.From]
			jt := s.junctionOf[l.To]

			// Continuity: flow From→To leaves From, enters To. The
			// junction-junction coupling goes straight to its precomputed
			// slot (one slot per symmetric pair).
			if jf >= 0 {
				s.diag[jf] += c.p
				s.rhs[jf] -= s.flow[li] - y // outflow
				if jt < 0 {
					s.rhs[jf] += c.p * s.head[l.To]
				}
			}
			if jt >= 0 {
				s.diag[jt] += c.p
				s.rhs[jt] += s.flow[li] - y // inflow
				if jf < 0 {
					s.rhs[jt] += c.p * s.head[l.From]
				}
			}
			if slot := s.linkSlot[li]; slot >= 0 {
				s.sys.Add(slot, -c.p)
			}
		}

		// Emitters: Newton linearization of Q = EC·p^β around current head.
		for k, nodeIdx := range s.emitNodes {
			coeff := s.emitCoeffs[k]
			j := s.junctionOf[nodeIdx]
			if j < 0 || coeff == 0 {
				continue // emitters at fixed-grade nodes discharge freely; ignore
			}
			elev := net.Nodes[nodeIdx].Elevation
			p := s.head[nodeIdx] - elev
			if p <= 0 {
				// No discharge; tiny derivative keeps the system stable
				// if the head rises above elevation next iteration.
				s.diag[j] += 1e-9
				continue
			}
			q := coeff * math.Pow(p, beta)
			dq := beta * coeff * math.Pow(p, beta-1)
			// Newton step on the outflow Q(H) ≈ q0 + dq·(H − H0):
			// the dq·H term joins the diagonal, the rest joins the RHS.
			s.diag[j] += dq
			s.rhs[j] += -q + dq*s.head[nodeIdx]
		}

		for j := 0; j < nj; j++ {
			s.sys.Add(s.diagSlot[j], s.diag[j])
		}

		var t0 time.Time
		if s.hSolveSec != nil {
			t0 = time.Now()
		}
		err := s.sys.Factorize()
		if err == nil {
			err = s.sys.Solve(s.rhs, s.newHead)
		}
		if err != nil {
			return nil, fmt.Errorf("hydraulic: head solve at iteration %d: %w", iter, err)
		}
		s.mFactor.Inc()
		if s.hSolveSec != nil {
			s.hSolveSec.Observe(time.Since(t0).Seconds())
		}
		for j, nodeIdx := range s.junctions {
			s.head[nodeIdx] = s.newHead[j]
		}

		// Flow update and convergence check.
		sumDQ, sumQ := 0.0, 0.0
		for li := range net.Links {
			l := &net.Links[li]
			if l.Status == network.Closed {
				continue
			}
			c := evalLink(l, s.resistance[li], s.minorRes[li], s.flow[li])
			dh := s.head[l.From] - s.head[l.To]
			newQ := s.flow[li] - c.p*c.h + c.p*dh
			step := relax
			if iter >= 20 {
				// Damp late iterations to break Hazen-Williams flow
				// oscillations (EPANET applies the same relaxation).
				step *= 0.6
			}
			if step != 1 {
				newQ = s.flow[li] + step*(newQ-s.flow[li])
			}
			sumDQ += math.Abs(newQ - s.flow[li])
			sumQ += math.Abs(newQ)
			s.flow[li] = newQ
		}
		if sumQ > 0 {
			residual = sumDQ / sumQ
		}
		if sumQ > 0 && residual < s.opts.Accuracy {
			converged = true
			iter++
			break
		}
	}
	if !converged {
		s.mFailures.Inc()
		return nil, &ConvergenceError{Iterations: iter, Residual: residual, SimTime: t}
	}
	s.mSolves.Inc()
	s.mIters.Add(int64(iter))
	s.hIters.Observe(float64(iter))
	return s.buildResult(beta, iter), nil
}

func (s *Solver) buildResult(beta float64, iterations int) *Result {
	net := s.net
	res := &Result{
		Head:        matrix.Clone(s.head),
		Pressure:    make([]float64, len(net.Nodes)),
		Flow:        matrix.Clone(s.flow),
		EmitterFlow: make(map[int]float64, len(s.emitNodes)),
		Demand:      matrix.Clone(s.demand),
		Iterations:  iterations,
	}
	for i := range net.Nodes {
		res.Pressure[i] = s.head[i] - net.Nodes[i].Elevation
	}
	if s.opts.PressureDriven {
		// Report delivered (not required) demand.
		for i := range net.Nodes {
			if net.Nodes[i].Type == network.Junction && s.demand[i] > 0 {
				g, _ := wagner(res.Pressure[i], s.opts.MinPressure, s.opts.RefPressure)
				res.Demand[i] = s.demand[i] * g
			}
		}
	}
	for k, nodeIdx := range s.emitNodes {
		p := res.Pressure[nodeIdx]
		if p <= 0 {
			res.EmitterFlow[nodeIdx] = 0
			continue
		}
		res.EmitterFlow[nodeIdx] = s.emitCoeffs[k] * math.Pow(p, beta)
	}
	return res
}

// MassBalanceError returns the worst junction continuity residual of a
// result (m³/s): |Σ inflow − Σ outflow − demand − leak| maximized over
// junctions. Useful as a solver-quality diagnostic and test invariant.
func (s *Solver) MassBalanceError(res *Result) float64 {
	net := s.net
	residual := make([]float64, len(net.Nodes))
	for i := range net.Nodes {
		residual[i] = -res.Demand[i]
	}
	for li := range net.Links {
		l := &net.Links[li]
		if l.Status == network.Closed {
			continue
		}
		residual[l.From] -= res.Flow[li]
		residual[l.To] += res.Flow[li]
	}
	for nodeIdx, q := range res.EmitterFlow {
		residual[nodeIdx] -= q
	}
	worst := 0.0
	for i := range net.Nodes {
		if net.Nodes[i].Type != network.Junction {
			continue
		}
		if a := math.Abs(residual[i]); a > worst {
			worst = a
		}
	}
	return worst
}
