package hydraulic

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/aquascale/aquascale/internal/matrix"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// ErrNotConverged is returned when the Newton iteration exhausts its
// iteration budget without meeting the accuracy target.
var ErrNotConverged = errors.New("hydraulic: solver did not converge")

// ConvergenceError is the concrete error SolveSteady returns on
// non-convergence. It wraps ErrNotConverged — errors.Is(err,
// ErrNotConverged) keeps working — and carries the failure context so
// callers and metrics can distinguish failure modes (budget too small vs.
// genuinely oscillating vs. near-singular late iterations).
type ConvergenceError struct {
	// Iterations is the Newton iteration count consumed.
	Iterations int

	// Residual is the last observed convergence ratio Σ|ΔQ| / Σ|Q|
	// (+Inf if no flow update completed).
	Residual float64

	// SimTime is the elapsed simulation time of the failing solve — the
	// demand-pattern instant, which locates the failure within an EPS run.
	SimTime time.Duration

	// Injected marks failures forced by a fault-injection hook (see
	// SetFailureHook) rather than produced by the Newton iteration. An
	// injected attempt never iterates, so it leaves no iterate for the
	// next attempt to warm-start from.
	Injected bool
}

func (e *ConvergenceError) Error() string {
	if e.Injected {
		return fmt.Sprintf("%v (injected fault, sim time %v)", ErrNotConverged, e.SimTime)
	}
	return fmt.Sprintf("%v after %d iterations (residual %.3g, sim time %v)",
		ErrNotConverged, e.Iterations, e.Residual, e.SimTime)
}

// Unwrap keeps errors.Is(err, ErrNotConverged) true.
func (e *ConvergenceError) Unwrap() error { return ErrNotConverged }

// Options configures the steady-state solver.
type Options struct {
	// Accuracy is the convergence target on Σ|ΔQ| / Σ|Q| per iteration.
	// Zero means the EPANET default of 1e-3.
	Accuracy float64

	// MaxIterations bounds the Newton loop. Zero means 200.
	MaxIterations int

	// EmitterExponent is β in Q = EC·p^β. Zero means the paper's 0.5.
	EmitterExponent float64

	// PressureDriven enables Wagner pressure-driven demand: delivered
	// demand scales with √((p−Pmin)/(Pref−Pmin)), clamped to [0, 1].
	// Demand-driven analysis (the default, and EPANET's) assumes full
	// delivery regardless of pressure, which overstates consumption when
	// severe multi-leak events depress service pressure.
	PressureDriven bool

	// MinPressure is the head below which no demand is delivered (m).
	// Used only with PressureDriven; default 0.
	MinPressure float64

	// RefPressure is the head at which full demand is delivered (m).
	// Used only with PressureDriven; zero means 20.
	RefPressure float64
}

func (o Options) withDefaults() Options {
	if o.Accuracy <= 0 {
		o.Accuracy = 1e-3
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.EmitterExponent <= 0 {
		o.EmitterExponent = 0.5
	}
	if o.RefPressure <= o.MinPressure {
		o.RefPressure = o.MinPressure + 20
	}
	return o
}

// wagner returns the delivered-demand fraction g(p) and its derivative
// dg/dp for the Wagner pressure-demand relationship.
func wagner(p, pMin, pRef float64) (g, dg float64) {
	switch {
	case p <= pMin:
		return 0, 0
	case p >= pRef:
		return 1, 0
	default:
		span := pRef - pMin
		g = math.Sqrt((p - pMin) / span)
		if g < 0.05 {
			g = 0.05 // keep the Newton derivative bounded near pMin
		}
		return g, 0.5 / (span * g)
	}
}

// Emitter is a pressure-dependent discharge at a node: Q = Coeff·p^β where
// p is the pressure head above the node elevation. This is the paper's leak
// model (eq. 1); Coeff is the effective leak area EC (the leak size e.s).
type Emitter struct {
	Node  int     // node index
	Coeff float64 // EC, in m³/s per m^β of pressure head
}

// Result is a steady-state hydraulic snapshot.
type Result struct {
	// Head is hydraulic head per node (m).
	Head []float64

	// Pressure is pressure head per node: Head − Elevation (m). Fixed-grade
	// nodes report level above their base.
	Pressure []float64

	// Flow is volumetric flow per link (m³/s), positive From→To. Closed
	// links carry zero.
	Flow []float64

	// EmitterFlow is leak outflow per node index (only emitter nodes).
	EmitterFlow map[int]float64

	// Demand is the consumer demand per node used in this solve (m³/s).
	Demand []float64

	// Iterations is the Newton iteration count used.
	Iterations int
}

// TotalEmitterFlow sums all leak outflow in m³/s.
func (r *Result) TotalEmitterFlow() float64 {
	total := 0.0
	for _, q := range r.EmitterFlow {
		total += q
	}
	return total
}

// Solver solves steady-state hydraulics for one network. It precomputes
// topology indexes and link resistances; it is safe for sequential reuse
// across many solves (scenario generation), but not for concurrent use —
// clone one Solver per goroutine.
type Solver struct {
	net  *network.Network
	opts Options

	junctionOf []int // node index → junction ordinal, -1 for fixed grade
	junctions  []int // junction ordinal → node index
	resistance []float64
	minorRes   []float64

	// Scratch buffers reused across solves.
	flow     []float64
	head     []float64
	diag     []float64
	rhs      []float64
	aMat     *matrix.Dense
	demand   []float64
	emitFlow map[int]float64

	// failHook, when set, is consulted at the top of every solve attempt;
	// returning true fails the attempt immediately with an injected
	// ConvergenceError. Fault-injection only (see the faults package).
	failHook func(t time.Duration, attempt int) bool

	// Telemetry handles, bound once at construction from the registry
	// active at that moment; nil (free no-ops) when telemetry is off.
	mSolves     *telemetry.Counter
	mIters      *telemetry.Counter
	mFailures   *telemetry.Counter
	mInjected   *telemetry.Counter
	mRetries    *telemetry.Counter
	mRecoveries *telemetry.Counter
	mWarm       *telemetry.Counter
	hIters      *telemetry.Histogram
}

// NewSolver prepares a solver for the given network. The network is
// validated; the solver reads (never mutates) it afterwards.
func NewSolver(net *network.Network, opts Options) (*Solver, error) {
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("hydraulic: %w", err)
	}
	s := &Solver{
		net:        net,
		opts:       opts.withDefaults(),
		junctionOf: make([]int, len(net.Nodes)),
		resistance: make([]float64, len(net.Links)),
		minorRes:   make([]float64, len(net.Links)),
	}
	for i := range net.Nodes {
		if net.Nodes[i].Type == network.Junction {
			s.junctionOf[i] = len(s.junctions)
			s.junctions = append(s.junctions, i)
		} else {
			s.junctionOf[i] = -1
		}
	}
	for i := range net.Links {
		l := &net.Links[i]
		if l.Type != network.Pump {
			s.resistance[i] = pipeResistance(l)
			s.minorRes[i] = minorResistance(l)
		}
		if l.Type == network.Valve {
			// Valves are short devices: friction is negligible, the
			// setting acts through the minor-loss term. Keep a small
			// linear floor so an all-zero valve still has a gradient.
			s.resistance[i] = 1e-4
		}
	}
	nj := len(s.junctions)
	s.flow = make([]float64, len(net.Links))
	s.head = make([]float64, len(net.Nodes))
	s.diag = make([]float64, nj)
	s.rhs = make([]float64, nj)
	if nj > 0 {
		s.aMat = matrix.NewDense(nj, nj)
	}
	s.demand = make([]float64, len(net.Nodes))
	s.emitFlow = make(map[int]float64)

	reg := telemetry.Default()
	s.mSolves = reg.Counter("hydraulic_solves_total")
	s.mIters = reg.Counter("hydraulic_newton_iterations_total")
	s.mFailures = reg.Counter("hydraulic_convergence_failures_total")
	s.mInjected = reg.Counter("hydraulic_injected_failures_total")
	s.mRetries = reg.Counter("hydraulic_retries_total")
	s.mRecoveries = reg.Counter("hydraulic_retry_recoveries_total")
	s.mWarm = reg.Counter("hydraulic_warm_restarts_total")
	s.hIters = reg.Histogram("hydraulic_iterations_per_solve", telemetry.LinearBuckets(5, 5, 10))
	return s, nil
}

// SetFailureHook installs (or, with nil, removes) a fault-injection
// predicate consulted at the top of every solve attempt with the solve's
// simulation time and the attempt number (0 for the first attempt, k for
// the k-th retry). When it returns true the attempt fails immediately with
// a ConvergenceError marked Injected, without touching solver state. It
// exists for the faults package and retry-path tests; production code
// never sets it.
func (s *Solver) SetFailureHook(fn func(t time.Duration, attempt int) bool) {
	s.failHook = fn
}

// Network returns the network this solver was built for.
func (s *Solver) Network() *network.Network { return s.net }

// SolveSteady computes a steady-state snapshot at elapsed time t (which
// selects demand-pattern multipliers), with the given active emitters and
// optional tank head overrides (node index → hydraulic head). Tank heads
// default to elevation + initial level when not overridden.
func (s *Solver) SolveSteady(t time.Duration, emitters []Emitter, tankHeads map[int]float64) (*Result, error) {
	return s.solveOnce(t, emitters, tankHeads, 0, false, 1)
}

// solveOnce is one solve attempt. attempt numbers the attempt within a
// retry ladder (0 = first); warm keeps the head/flow iterate left by the
// previous attempt instead of cold-starting from the fixed initial
// guesses; relax is the Newton flow-update fraction (1 = the standard full
// step, smaller = stronger damping). SolveSteady always passes
// (0, false, 1), so cold solves stay independent of any earlier solve on
// the same Solver — the bit-identical session-reuse guarantee the dataset
// layer documents.
func (s *Solver) solveOnce(t time.Duration, emitters []Emitter, tankHeads map[int]float64, attempt int, warm bool, relax float64) (*Result, error) {
	if s.failHook != nil && s.failHook(t, attempt) {
		s.mInjected.Inc()
		return nil, &ConvergenceError{Residual: math.Inf(1), SimTime: t, Injected: true}
	}
	net := s.net
	beta := s.opts.EmitterExponent

	// Demands and fixed heads. A warm attempt keeps the previous attempt's
	// junction heads (and link flows, below) as its starting iterate; the
	// demand-driven quantities are recomputed either way.
	for i := range net.Nodes {
		node := &net.Nodes[i]
		switch node.Type {
		case network.Junction:
			s.demand[i] = net.DemandAt(i, t)
			if !warm {
				s.head[i] = node.Elevation + 30 // initial guess
			}
		case network.Reservoir:
			s.demand[i] = 0
			s.head[i] = node.Elevation
		case network.Tank:
			s.demand[i] = 0
			if h, ok := tankHeads[i]; ok {
				s.head[i] = h
			} else {
				s.head[i] = node.Elevation + node.InitLevel
			}
		}
	}

	// Aggregate emitter coefficients per node (multiple concurrent leaks at
	// one node sum their effective areas).
	emitCoeff := make(map[int]float64, len(emitters))
	for _, e := range emitters {
		if e.Node < 0 || e.Node >= len(net.Nodes) {
			return nil, fmt.Errorf("hydraulic: emitter node %d out of range", e.Node)
		}
		if e.Coeff < 0 {
			return nil, fmt.Errorf("hydraulic: negative emitter coefficient %v at node %d", e.Coeff, e.Node)
		}
		emitCoeff[e.Node] += e.Coeff
	}

	// Initial flows.
	for i := range net.Links {
		l := &net.Links[i]
		if l.Status == network.Closed {
			s.flow[i] = 0
			continue
		}
		if !warm {
			s.flow[i] = initialFlow(l)
		}
	}

	nj := len(s.junctions)
	converged := false
	iter := 0
	residual := math.Inf(1)
	for ; iter < s.opts.MaxIterations; iter++ {
		s.aMat.Zero()
		for j := 0; j < nj; j++ {
			s.rhs[j] = 0
			s.diag[j] = 0
		}

		// Node balance contributions from demand. Under pressure-driven
		// analysis the delivered demand depends on head, so it is
		// linearized per Newton iteration like the emitters.
		for j, nodeIdx := range s.junctions {
			d := s.demand[nodeIdx]
			if !s.opts.PressureDriven || d == 0 {
				s.rhs[j] -= d
				continue
			}
			p := s.head[nodeIdx] - net.Nodes[nodeIdx].Elevation
			g, dg := wagner(p, s.opts.MinPressure, s.opts.RefPressure)
			delivered := d * g
			dd := d * dg
			s.diag[j] += dd
			s.rhs[j] += -delivered + dd*s.head[nodeIdx]
		}

		// Link contributions.
		for li := range net.Links {
			l := &net.Links[li]
			if l.Status == network.Closed {
				continue
			}
			c := evalLink(l, s.resistance[li], s.minorRes[li], s.flow[li])
			y := c.p * c.h // flow correction term
			jf := s.junctionOf[l.From]
			jt := s.junctionOf[l.To]

			// Continuity: flow From→To leaves From, enters To.
			if jf >= 0 {
				s.diag[jf] += c.p
				s.rhs[jf] -= s.flow[li] - y // outflow
				if jt >= 0 {
					s.aMat.Add(jf, jt, -c.p)
				} else {
					s.rhs[jf] += c.p * s.head[l.To]
				}
			}
			if jt >= 0 {
				s.diag[jt] += c.p
				s.rhs[jt] += s.flow[li] - y // inflow
				if jf >= 0 {
					s.aMat.Add(jt, jf, -c.p)
				} else {
					s.rhs[jt] += c.p * s.head[l.From]
				}
			}
		}

		// Emitters: Newton linearization of Q = EC·p^β around current head.
		for nodeIdx, coeff := range emitCoeff {
			j := s.junctionOf[nodeIdx]
			if j < 0 || coeff == 0 {
				continue // emitters at fixed-grade nodes discharge freely; ignore
			}
			elev := net.Nodes[nodeIdx].Elevation
			p := s.head[nodeIdx] - elev
			if p <= 0 {
				// No discharge; tiny derivative keeps the system stable
				// if the head rises above elevation next iteration.
				s.diag[j] += 1e-9
				continue
			}
			q := coeff * math.Pow(p, beta)
			dq := beta * coeff * math.Pow(p, beta-1)
			// Newton step on the outflow Q(H) ≈ q0 + dq·(H − H0):
			// the dq·H term joins the diagonal, the rest joins the RHS.
			s.diag[j] += dq
			s.rhs[j] += -q + dq*s.head[nodeIdx]
		}

		for j := 0; j < nj; j++ {
			s.aMat.Add(j, j, s.diag[j])
		}

		newHead, err := matrix.SolveSPD(s.aMat, s.rhs)
		if err != nil {
			return nil, fmt.Errorf("hydraulic: head solve at iteration %d: %w", iter, err)
		}
		for j, nodeIdx := range s.junctions {
			s.head[nodeIdx] = newHead[j]
		}

		// Flow update and convergence check.
		sumDQ, sumQ := 0.0, 0.0
		for li := range net.Links {
			l := &net.Links[li]
			if l.Status == network.Closed {
				continue
			}
			c := evalLink(l, s.resistance[li], s.minorRes[li], s.flow[li])
			dh := s.head[l.From] - s.head[l.To]
			newQ := s.flow[li] - c.p*c.h + c.p*dh
			step := relax
			if iter >= 20 {
				// Damp late iterations to break Hazen-Williams flow
				// oscillations (EPANET applies the same relaxation).
				step *= 0.6
			}
			if step != 1 {
				newQ = s.flow[li] + step*(newQ-s.flow[li])
			}
			sumDQ += math.Abs(newQ - s.flow[li])
			sumQ += math.Abs(newQ)
			s.flow[li] = newQ
		}
		if sumQ > 0 {
			residual = sumDQ / sumQ
		}
		if sumQ > 0 && residual < s.opts.Accuracy {
			converged = true
			iter++
			break
		}
	}
	if !converged {
		s.mFailures.Inc()
		return nil, &ConvergenceError{Iterations: iter, Residual: residual, SimTime: t}
	}
	s.mSolves.Inc()
	s.mIters.Add(int64(iter))
	s.hIters.Observe(float64(iter))
	return s.buildResult(emitCoeff, beta, iter), nil
}

func (s *Solver) buildResult(emitCoeff map[int]float64, beta float64, iterations int) *Result {
	net := s.net
	res := &Result{
		Head:        matrix.Clone(s.head),
		Pressure:    make([]float64, len(net.Nodes)),
		Flow:        matrix.Clone(s.flow),
		EmitterFlow: make(map[int]float64, len(emitCoeff)),
		Demand:      matrix.Clone(s.demand),
		Iterations:  iterations,
	}
	for i := range net.Nodes {
		res.Pressure[i] = s.head[i] - net.Nodes[i].Elevation
	}
	if s.opts.PressureDriven {
		// Report delivered (not required) demand.
		for i := range net.Nodes {
			if net.Nodes[i].Type == network.Junction && s.demand[i] > 0 {
				g, _ := wagner(res.Pressure[i], s.opts.MinPressure, s.opts.RefPressure)
				res.Demand[i] = s.demand[i] * g
			}
		}
	}
	for nodeIdx, coeff := range emitCoeff {
		p := res.Pressure[nodeIdx]
		if p <= 0 {
			res.EmitterFlow[nodeIdx] = 0
			continue
		}
		res.EmitterFlow[nodeIdx] = coeff * math.Pow(p, beta)
	}
	return res
}

// MassBalanceError returns the worst junction continuity residual of a
// result (m³/s): |Σ inflow − Σ outflow − demand − leak| maximized over
// junctions. Useful as a solver-quality diagnostic and test invariant.
func (s *Solver) MassBalanceError(res *Result) float64 {
	net := s.net
	residual := make([]float64, len(net.Nodes))
	for i := range net.Nodes {
		residual[i] = -res.Demand[i]
	}
	for li := range net.Links {
		l := &net.Links[li]
		if l.Status == network.Closed {
			continue
		}
		residual[l.From] -= res.Flow[li]
		residual[l.To] += res.Flow[li]
	}
	for nodeIdx, q := range res.EmitterFlow {
		residual[nodeIdx] -= q
	}
	worst := 0.0
	for i := range net.Nodes {
		if net.Nodes[i].Type != network.Junction {
			continue
		}
		if a := math.Abs(residual[i]); a > worst {
			worst = a
		}
	}
	return worst
}
