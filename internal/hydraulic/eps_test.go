package hydraulic

import (
	"math"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/network"
)

func TestRunEPSBasics(t *testing.T) {
	n := network.BuildTestNet()
	ts, err := RunEPS(n, EPSOptions{Duration: 2 * time.Hour, Step: 15 * time.Minute}, nil)
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	wantSteps := 9 // 0..2h inclusive at 15 min
	if ts.Steps() != wantSteps {
		t.Fatalf("steps = %d, want %d", ts.Steps(), wantSteps)
	}
	if ts.Times[0] != 0 || ts.Times[8] != 2*time.Hour {
		t.Fatalf("times = %v..%v", ts.Times[0], ts.Times[8])
	}
	for k := 0; k < ts.Steps(); k++ {
		if len(ts.Head[k]) != len(n.Nodes) || len(ts.Flow[k]) != len(n.Links) {
			t.Fatalf("step %d has wrong snapshot sizes", k)
		}
	}
	if got := ts.StepAt(30 * time.Minute); got != 2 {
		t.Fatalf("StepAt(30m) = %d, want 2", got)
	}
	if got := ts.StepAt(7 * time.Minute); got != -1 {
		t.Fatalf("StepAt(7m) = %d, want -1", got)
	}
}

func TestRunEPSLeakActivation(t *testing.T) {
	n := network.BuildTestNet()
	leakNode, _ := n.NodeIndex("J5")
	start := 30 * time.Minute
	ts, err := RunEPS(n, EPSOptions{Duration: time.Hour, Step: 15 * time.Minute},
		[]ScheduledEmitter{{Node: leakNode, Coeff: 0.002, Start: start}})
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	for k := range ts.Times {
		_, leaking := ts.EmitterOutflow[k][leakNode]
		wantLeaking := ts.Times[k] >= start
		if leaking != wantLeaking {
			t.Fatalf("step %d (t=%v): leaking=%v, want %v", k, ts.Times[k], leaking, wantLeaking)
		}
	}
	// Pressure at the leak node must drop when the leak activates.
	before := ts.Pressure[ts.StepAt(15*time.Minute)][leakNode]
	after := ts.Pressure[ts.StepAt(30*time.Minute)][leakNode]
	if after >= before {
		t.Fatalf("pressure did not drop at activation: %v → %v", before, after)
	}
	if ts.TotalLeakVolume(15*time.Minute) <= 0 {
		t.Fatal("no leak volume recorded")
	}
}

func TestRunEPSTankDynamics(t *testing.T) {
	n := network.BuildEPANet()
	ts, err := RunEPS(n, EPSOptions{Duration: 6 * time.Hour, Step: 15 * time.Minute}, nil)
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	if len(ts.TankLevel) != 3 {
		t.Fatalf("tank series count = %d, want 3", len(ts.TankLevel))
	}
	moved := false
	for tankIdx, levels := range ts.TankLevel {
		if len(levels) != ts.Steps() {
			t.Fatalf("tank %d has %d level samples, want %d", tankIdx, len(levels), ts.Steps())
		}
		node := n.Nodes[tankIdx]
		for k, lvl := range levels {
			if lvl < node.MinLevel-1e-9 || lvl > node.MaxLevel+1e-9 {
				t.Fatalf("tank %s level %v outside [%v,%v] at step %d",
					node.ID, lvl, node.MinLevel, node.MaxLevel, k)
			}
		}
		if math.Abs(levels[len(levels)-1]-levels[0]) > 1e-12 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no tank level changed over six hours")
	}
}

func TestRunEPSDefaults(t *testing.T) {
	opts := EPSOptions{}.withDefaults()
	if opts.Duration != 24*time.Hour || opts.Step != 15*time.Minute {
		t.Fatalf("defaults = %v/%v", opts.Duration, opts.Step)
	}
}

func TestRunEPSInvalidNetwork(t *testing.T) {
	n := network.New("empty")
	if _, err := RunEPS(n, EPSOptions{}, nil); err == nil {
		t.Fatal("invalid network should error")
	}
}

func TestRunEPSLeakIsolation(t *testing.T) {
	n := network.BuildTestNet()
	leakNode, _ := n.NodeIndex("J5")
	ts, err := RunEPS(n, EPSOptions{Duration: time.Hour, Step: 15 * time.Minute},
		[]ScheduledEmitter{{Node: leakNode, Coeff: 0.002, Start: 15 * time.Minute, End: 45 * time.Minute}})
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	for k := range ts.Times {
		_, leaking := ts.EmitterOutflow[k][leakNode]
		wantLeaking := ts.Times[k] >= 15*time.Minute && ts.Times[k] < 45*time.Minute
		if leaking != wantLeaking {
			t.Fatalf("t=%v: leaking=%v, want %v", ts.Times[k], leaking, wantLeaking)
		}
	}
}
