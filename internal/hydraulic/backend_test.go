package hydraulic

import (
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/matrix"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// crossCheckBackends solves the same scenario with the dense and sparse
// backends and verifies agreement within 1e-8 relative — the contract that
// lets BackendAuto switch without changing any experiment's meaning.
func crossCheckBackends(t *testing.T, net *network.Network, emitters []Emitter) {
	t.Helper()
	dense, err := NewSolver(net, Options{Backend: BackendDense})
	if err != nil {
		t.Fatalf("dense NewSolver: %v", err)
	}
	sparse, err := NewSolver(net, Options{Backend: BackendSparse})
	if err != nil {
		t.Fatalf("sparse NewSolver: %v", err)
	}
	dres, err := dense.SolveSteady(3*time.Hour, emitters, nil)
	if err != nil {
		t.Fatalf("dense SolveSteady: %v", err)
	}
	sres, err := sparse.SolveSteady(3*time.Hour, emitters, nil)
	if err != nil {
		t.Fatalf("sparse SolveSteady: %v", err)
	}
	if dres.Iterations != sres.Iterations {
		t.Fatalf("iteration counts diverge: dense %d, sparse %d", dres.Iterations, sres.Iterations)
	}
	const rel = 1e-8
	for i := range dres.Head {
		if diff := math.Abs(dres.Head[i] - sres.Head[i]); diff > rel*(1+math.Abs(dres.Head[i])) {
			t.Fatalf("head[%d]: dense %v vs sparse %v", i, dres.Head[i], sres.Head[i])
		}
	}
	for i := range dres.Flow {
		if diff := math.Abs(dres.Flow[i] - sres.Flow[i]); diff > rel*(1+math.Abs(dres.Flow[i])) {
			t.Fatalf("flow[%d]: dense %v vs sparse %v", i, dres.Flow[i], sres.Flow[i])
		}
	}
	for node, dq := range dres.EmitterFlow {
		sq, ok := sres.EmitterFlow[node]
		if !ok || math.Abs(dq-sq) > rel*(1+math.Abs(dq)) {
			t.Fatalf("emitter flow at %d: dense %v vs sparse %v", node, dq, sq)
		}
	}
}

func TestBackendCrossCheckEPANet(t *testing.T) {
	net := network.BuildEPANet()
	emitters := []Emitter{{Node: 17, Coeff: 0.0005}, {Node: 60, Coeff: 0.001}}
	crossCheckBackends(t, net, emitters)
}

func TestBackendCrossCheckWSSC(t *testing.T) {
	net := network.BuildWSSCSubnet()
	emitters := []Emitter{{Node: 42, Coeff: 0.0008}, {Node: 200, Coeff: 0.0004}}
	crossCheckBackends(t, net, emitters)
}

// TestBackendAutoSelection pins the BackendAuto switchover contract.
func TestBackendAutoSelection(t *testing.T) {
	small, err := NewSolver(network.BuildTestNet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := small.sys.(*matrix.DenseSPD); !ok {
		t.Fatalf("7-junction network picked %T, want *matrix.DenseSPD", small.sys)
	}
	big, err := NewSolver(network.BuildWSSCSubnet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := big.sys.(*matrix.SparseSPD); !ok {
		t.Fatalf("298-junction network picked %T, want *matrix.SparseSPD", big.sys)
	}
	forced, err := NewSolver(network.BuildWSSCSubnet(), Options{Backend: BackendDense})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := forced.sys.(*matrix.DenseSPD); !ok {
		t.Fatalf("BackendDense override picked %T", forced.sys)
	}
}

// TestNewtonIterationAllocationFree verifies the zero-allocations-per-
// iteration contract on both backends: tightening the accuracy multiplies
// the Newton iteration count but must not change the per-solve allocation
// count (which covers only the constant per-solve Result construction).
func TestNewtonIterationAllocationFree(t *testing.T) {
	net := network.BuildWSSCSubnet()
	for _, backend := range []Backend{BackendDense, BackendSparse} {
		loose, err := NewSolver(net, Options{Backend: backend, Accuracy: 1e-2})
		if err != nil {
			t.Fatal(err)
		}
		tight, err := NewSolver(net, Options{Backend: backend, Accuracy: 1e-9, MaxIterations: 400})
		if err != nil {
			t.Fatal(err)
		}
		solve := func(s *Solver) (func(), *int) {
			iters := new(int)
			return func() {
				res, err := s.SolveSteady(0, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				*iters = res.Iterations
			}, iters
		}
		looseFn, looseIters := solve(loose)
		tightFn, tightIters := solve(tight)
		looseFn() // warm up internal buffers (dense factor, emit slices)
		tightFn()
		if *tightIters <= *looseIters {
			t.Fatalf("backend %d: tight solve took %d iterations, loose %d — test needs contrast",
				backend, *tightIters, *looseIters)
		}
		la := testing.AllocsPerRun(5, looseFn)
		ta := testing.AllocsPerRun(5, tightFn)
		if la != ta {
			t.Fatalf("backend %d: allocations scale with iterations: %v allocs at %d iters vs %v at %d",
				backend, la, *looseIters, ta, *tightIters)
		}
	}
}

// TestTankHeadsSliceMatchesMap checks the slice-staged tank API against
// the map API bit for bit.
func TestTankHeadsSliceMatchesMap(t *testing.T) {
	net := network.BuildEPANet()
	s, err := NewSolver(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tanks := s.TankNodes()
	if len(tanks) != 3 {
		t.Fatalf("TankNodes = %v, want 3 tanks", tanks)
	}
	override := make(map[int]float64, len(tanks))
	heads := make([]float64, len(tanks))
	for k, ti := range tanks {
		h := net.Nodes[ti].Elevation + net.Nodes[ti].InitLevel + 0.5*float64(k)
		override[ti] = h
		heads[k] = h
	}
	want, err := s.SolveSteady(time.Hour, nil, override)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SolveSteadyHeads(time.Hour, nil, heads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Head {
		if want.Head[i] != got.Head[i] {
			t.Fatalf("head[%d] differs: map %v vs slice %v", i, want.Head[i], got.Head[i])
		}
	}
	if _, err := s.SolveSteadyHeads(0, nil, make([]float64, 2)); err == nil {
		t.Fatal("short tank-heads slice should error")
	}
	if _, _, err := s.SolveSteadyRetryHeads(0, nil, make([]float64, 5), RetryPolicy{}); err == nil {
		t.Fatal("long tank-heads slice should error")
	}
}

// TestGridSparseSolves exercises the scale dense cannot reach: a
// 2,116-junction grid solves through the sparse path with sound hydraulics.
func TestGridSparseSolves(t *testing.T) {
	net := network.BuildGrid(network.GridConfig{Rows: 46, Cols: 46})
	s, err := NewSolver(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.sys.(*matrix.SparseSPD); !ok {
		t.Fatalf("grid solver picked %T, want *matrix.SparseSPD", s.sys)
	}
	res, err := s.SolveSteady(8*time.Hour, []Emitter{{Node: 1000, Coeff: 0.001}}, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	if mbe := s.MassBalanceError(res); mbe > 1e-5 {
		t.Fatalf("mass balance error %v", mbe)
	}
	for i := range net.Nodes {
		if net.Nodes[i].Type != network.Junction {
			continue
		}
		if p := res.Pressure[i]; p < 5 || p > 90 {
			t.Fatalf("junction %d pressure %v m outside sane range", i, p)
		}
	}
}

// TestFactorizationTelemetry pins the linear-algebra instruments.
func TestFactorizationTelemetry(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	s, err := NewSolver(network.BuildWSSCSubnet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("hydraulic_symbolic_factorizations_total").Value(); got != 1 {
		t.Fatalf("symbolic factorizations = %d, want 1", got)
	}
	if fill := reg.Gauge("hydraulic_factor_fill_ratio").Value(); fill < 1 {
		t.Fatalf("fill ratio = %v, want >= 1", fill)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("hydraulic_numeric_factorizations_total").Value(); got != int64(res.Iterations) {
		t.Fatalf("numeric factorizations = %d, want %d", got, res.Iterations)
	}
	if got := reg.Histogram("hydraulic_linear_solve_seconds", nil).Count(); got != int64(res.Iterations) {
		t.Fatalf("solve latency observations = %d, want %d", got, res.Iterations)
	}
}

// BenchmarkSolveSteadyGrid measures one full steady solve across grid
// scales through the auto-selected sparse backend, with WSSC dense as the
// historical baseline.
func BenchmarkSolveSteadyGrid(b *testing.B) {
	cases := []struct {
		name    string
		net     *network.Network
		backend Backend
	}{
		{"wssc-dense", network.BuildWSSCSubnet(), BackendDense},
		{"wssc-sparse", network.BuildWSSCSubnet(), BackendSparse},
		{"grid-1024", network.BuildGrid(network.GridConfig{Rows: 32, Cols: 32}), BackendAuto},
		{"grid-2116", network.BuildGrid(network.GridConfig{Rows: 46, Cols: 46}), BackendAuto},
		{"grid-4096", network.BuildGrid(network.GridConfig{Rows: 64, Cols: 64}), BackendAuto},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("%s/nj=%d", tc.name, tc.net.JunctionCount()), func(b *testing.B) {
			s, err := NewSolver(tc.net, Options{Backend: tc.backend})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.SolveSteady(0, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
