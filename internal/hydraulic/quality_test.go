package hydraulic

import (
	"math"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/network"
)

func testNetTimeSeries(t *testing.T, hours int) (*network.Network, *TimeSeries) {
	t.Helper()
	net := network.BuildTestNet()
	ts, err := RunEPS(net, EPSOptions{
		Duration: time.Duration(hours) * time.Hour,
		Step:     15 * time.Minute,
	}, nil)
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	return net, ts
}

func TestRunQualityPropagatesDownstream(t *testing.T) {
	net, ts := testNetTimeSeries(t, 6)
	j1, _ := net.NodeIndex("J1")
	j7, _ := net.NodeIndex("J7") // far downstream dead end
	qr, err := RunQuality(net, ts, []Injection{
		{Node: j1, Concentration: 100, Start: 0},
	}, QualityOptions{})
	if err != nil {
		t.Fatalf("RunQuality: %v", err)
	}
	if qr.MaxAtNode(j1) < 99 {
		t.Fatalf("injection node peak = %v, want ~100", qr.MaxAtNode(j1))
	}
	// The constituent must reach the far end, delayed by pipe travel time.
	arrival := qr.ArrivalTime(j7, 50)
	if arrival < 0 {
		t.Fatal("constituent never reached J7")
	}
	if arrival == 0 {
		t.Fatal("constituent arrived instantaneously — no plug-flow delay")
	}
	// Travel check: J5 (two hops) must see it before J7 (three+ hops).
	j5, _ := net.NodeIndex("J5")
	if a5 := qr.ArrivalTime(j5, 50); a5 < 0 || a5 > arrival {
		t.Fatalf("J5 arrival %v should precede J7 arrival %v", a5, arrival)
	}
}

func TestRunQualityUpstreamStaysClean(t *testing.T) {
	net, ts := testNetTimeSeries(t, 4)
	j5, _ := net.NodeIndex("J5")
	j1, _ := net.NodeIndex("J1") // upstream of J5 in the gravity feed
	resIdx, _ := net.NodeIndex("R")
	qr, err := RunQuality(net, ts, []Injection{
		{Node: j5, Concentration: 100, Start: 0},
	}, QualityOptions{})
	if err != nil {
		t.Fatalf("RunQuality: %v", err)
	}
	if qr.MaxAtNode(resIdx) > 0 {
		t.Fatalf("reservoir contaminated: %v", qr.MaxAtNode(resIdx))
	}
	if qr.MaxAtNode(j1) > 1 {
		t.Fatalf("upstream J1 contaminated against the flow: %v", qr.MaxAtNode(j1))
	}
}

func TestRunQualityInjectionWindow(t *testing.T) {
	net, ts := testNetTimeSeries(t, 6)
	j1, _ := net.NodeIndex("J1")
	qr, err := RunQuality(net, ts, []Injection{
		{Node: j1, Concentration: 100, Start: time.Hour, End: 2 * time.Hour},
	}, QualityOptions{})
	if err != nil {
		t.Fatalf("RunQuality: %v", err)
	}
	early := qr.Node[qr.indexAt(t, 30*time.Minute)][j1]
	during := qr.Node[qr.indexAt(t, 90*time.Minute)][j1]
	late := qr.Node[qr.indexAt(t, 5*time.Hour)][j1]
	if early > 1 {
		t.Fatalf("concentration before injection = %v", early)
	}
	if during < 99 {
		t.Fatalf("concentration during injection = %v", during)
	}
	if late > 50 {
		t.Fatalf("concentration long after injection = %v (should flush)", late)
	}
}

// indexAt finds the snapshot index for a time, failing the test otherwise.
func (r *QualityResult) indexAt(t *testing.T, at time.Duration) int {
	t.Helper()
	for k, tt := range r.Times {
		if tt == at {
			return k
		}
	}
	t.Fatalf("no snapshot at %v", at)
	return -1
}

func TestRunQualityDecay(t *testing.T) {
	net, ts := testNetTimeSeries(t, 6)
	j1, _ := net.NodeIndex("J1")
	j7, _ := net.NodeIndex("J7")
	conservative, err := RunQuality(net, ts, []Injection{{Node: j1, Concentration: 100}}, QualityOptions{})
	if err != nil {
		t.Fatalf("conservative: %v", err)
	}
	decaying, err := RunQuality(net, ts, []Injection{{Node: j1, Concentration: 100}},
		QualityOptions{DecayRate: 2.0})
	if err != nil {
		t.Fatalf("decaying: %v", err)
	}
	if decaying.MaxAtNode(j7) >= conservative.MaxAtNode(j7) {
		t.Fatalf("decay did not reduce downstream peak: %v vs %v",
			decaying.MaxAtNode(j7), conservative.MaxAtNode(j7))
	}
}

func TestRunQualityValidation(t *testing.T) {
	net, ts := testNetTimeSeries(t, 2)
	if _, err := RunQuality(net, ts, []Injection{{Node: 999, Concentration: 1}}, QualityOptions{}); err == nil {
		t.Fatal("out-of-range injection node should error")
	}
	if _, err := RunQuality(net, ts, []Injection{{Node: 0, Concentration: -5}}, QualityOptions{}); err == nil {
		t.Fatal("negative concentration should error")
	}
	short := &TimeSeries{Times: []time.Duration{0}}
	if _, err := RunQuality(net, short, nil, QualityOptions{}); err == nil {
		t.Fatal("single-snapshot series should error")
	}
}

func TestRunQualityNoInjectionStaysClean(t *testing.T) {
	net, ts := testNetTimeSeries(t, 2)
	qr, err := RunQuality(net, ts, nil, QualityOptions{})
	if err != nil {
		t.Fatalf("RunQuality: %v", err)
	}
	for k := range qr.Node {
		for i, c := range qr.Node[k] {
			if math.Abs(c) > 1e-12 {
				t.Fatalf("phantom constituent %v at node %d step %d", c, i, k)
			}
		}
	}
}

func TestAdvectConservesMass(t *testing.T) {
	queue := []pipeSegment{{volume: 1.0, conc: 10}}
	// Push 0.4 m³ at conc 50; pull 0.4 m³ of the old water (conc 10).
	mass := advect(&queue, 0.4, 50, true)
	if math.Abs(mass-4.0) > 1e-12 {
		t.Fatalf("extracted mass = %v, want 4.0", mass)
	}
	totalVol := 0.0
	totalMass := 0.0
	for _, s := range queue {
		totalVol += s.volume
		totalMass += s.volume * s.conc
	}
	if math.Abs(totalVol-1.0) > 1e-12 {
		t.Fatalf("pipe volume changed: %v", totalVol)
	}
	// 0.4·50 new + 0.6·10 remaining = 26.
	if math.Abs(totalMass-26.0) > 1e-12 {
		t.Fatalf("pipe mass = %v, want 26", totalMass)
	}
	// Reverse flow pulls the newest water back out first.
	mass = advect(&queue, 0.4, 0, false)
	if math.Abs(mass-20.0) > 1e-9 {
		t.Fatalf("reverse extraction = %v, want 20 (the plug just pushed in)", mass)
	}
}
