package hydraulic

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// failingHook builds a faults.Injector hook that forces the first
// `attempts` attempts of every solve to fail (rate 1 = every solve hit).
func failingHook(t *testing.T, attempts int) func(time.Duration, int) bool {
	t.Helper()
	inj, err := faults.New(faults.Config{SolverFail: 1, SolverFailAttempts: attempts})
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	return inj.SolveHook(rand.New(rand.NewSource(1)))
}

// TestSolveSteadyRetryTable drives the retry ladder through the canonical
// budget/injection combinations.
func TestSolveSteadyRetryTable(t *testing.T) {
	cases := []struct {
		name        string
		failFirst   int // forced failures per solve (0 = no hook)
		policy      RetryPolicy
		wantErr     bool
		wantRetries int
	}{
		{name: "clean solve, no policy", failFirst: 0, policy: RetryPolicy{}, wantRetries: 0},
		{name: "clean solve, unused budget", failFirst: 0, policy: RetryPolicy{MaxRetries: 3}, wantRetries: 0},
		{name: "one forced failure, no budget", failFirst: 1, policy: RetryPolicy{}, wantErr: true, wantRetries: 0},
		{name: "one forced failure, recovered", failFirst: 1, policy: RetryPolicy{MaxRetries: 1}, wantRetries: 1},
		{name: "two forced failures, recovered", failFirst: 2, policy: RetryPolicy{MaxRetries: 3}, wantRetries: 2},
		{name: "budget exhausted", failFirst: 3, policy: RetryPolicy{MaxRetries: 2}, wantErr: true, wantRetries: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := network.BuildEPANet()
			solver, err := NewSolver(net, Options{})
			if err != nil {
				t.Fatalf("NewSolver: %v", err)
			}
			if tc.failFirst > 0 {
				solver.SetFailureHook(failingHook(t, tc.failFirst))
			}
			res, stats, err := solver.SolveSteadyRetry(8*time.Hour, nil, nil, tc.policy)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error after budget exhaustion")
				}
				if !errors.Is(err, ErrNotConverged) {
					t.Fatalf("err = %v, not errors.Is ErrNotConverged", err)
				}
				var ce *ConvergenceError
				if !errors.As(err, &ce) || !ce.Injected {
					t.Fatalf("err = %v, want injected ConvergenceError", err)
				}
			} else {
				if err != nil {
					t.Fatalf("SolveSteadyRetry: %v", err)
				}
				if res == nil {
					t.Fatal("nil result on success")
				}
				if mbe := solver.MassBalanceError(res); mbe > 1e-3 {
					t.Fatalf("mass balance error %v too large after retry", mbe)
				}
			}
			if stats.Retries != tc.wantRetries {
				t.Fatalf("retries = %d, want %d", stats.Retries, tc.wantRetries)
			}
			// Injected failures never iterate, so there is no iterate to
			// warm-restart from.
			if stats.WarmStarts != 0 {
				t.Fatalf("warm starts = %d, want 0 for injected failures", stats.WarmStarts)
			}
		})
	}
}

// TestSolveSteadyRetryZeroPolicyIdentical pins that the retry wrapper with
// a zero policy is bit-identical to plain SolveSteady on a fresh solver —
// the "faults disabled means nothing changes" half of the contract.
func TestSolveSteadyRetryZeroPolicyIdentical(t *testing.T) {
	net := network.BuildEPANet()
	a, err := NewSolver(net, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	b, err := NewSolver(net, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	plain, err := a.SolveSteady(8*time.Hour, []Emitter{{Node: 5, Coeff: 1e-3}}, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	retried, stats, err := b.SolveSteadyRetry(8*time.Hour, []Emitter{{Node: 5, Coeff: 1e-3}}, nil, RetryPolicy{})
	if err != nil {
		t.Fatalf("SolveSteadyRetry: %v", err)
	}
	if stats.Retries != 0 || stats.WarmStarts != 0 || stats.Steps != nil {
		t.Fatalf("stats = %+v, want zero", stats)
	}
	if !reflect.DeepEqual(plain, retried) {
		t.Fatal("zero-policy SolveSteadyRetry diverged from SolveSteady")
	}
}

// TestSolveSteadyRetryWarmRestart forces real (non-injected)
// non-convergence via a tiny iteration budget and checks that every retry
// resumes from the previous attempt's iterate.
func TestSolveSteadyRetryWarmRestart(t *testing.T) {
	net := network.BuildEPANet()
	solver, err := NewSolver(net, Options{MaxIterations: 2})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, stats, err := solver.SolveSteadyRetry(8*time.Hour, nil, nil, RetryPolicy{MaxRetries: 30, Relaxation: 1})
	if stats.Retries == 0 {
		t.Fatal("expected at least one retry with MaxIterations=2")
	}
	if stats.WarmStarts != stats.Retries {
		t.Fatalf("warm starts = %d, want %d (every real failure leaves an iterate)",
			stats.WarmStarts, stats.Retries)
	}
	// Warm restarts accumulate Newton progress across attempts, so the
	// ladder must eventually converge even at 2 iterations per attempt.
	if err != nil {
		t.Fatalf("warm-restart ladder did not recover: %v (retries=%d)", err, stats.Retries)
	}
	if mbe := solver.MassBalanceError(res); mbe > 1e-3 {
		t.Fatalf("mass balance error %v too large after warm-restart recovery", mbe)
	}
}

// TestSolveSteadyRetryOtherErrorsImmediate checks that errors other than
// non-convergence are returned immediately, without consuming the retry
// budget.
func TestSolveSteadyRetryOtherErrorsImmediate(t *testing.T) {
	net := network.BuildEPANet()
	solver, err := NewSolver(net, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	_, stats, err := solver.SolveSteadyRetry(0, []Emitter{{Node: -1, Coeff: 1}}, nil, RetryPolicy{MaxRetries: 5})
	if err == nil {
		t.Fatal("expected error for out-of-range emitter node")
	}
	if errors.Is(err, ErrNotConverged) {
		t.Fatalf("validation error misclassified as non-convergence: %v", err)
	}
	if stats.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (no retry on non-convergence-unrelated errors)", stats.Retries)
	}
}

// TestRetryPolicyRelaxationSteps pins the degradation ladder: the default
// first-retry fraction, per-retry halving, and the 0.05 floor.
func TestRetryPolicyRelaxationSteps(t *testing.T) {
	var p RetryPolicy
	for k, want := range map[int]float64{1: 0.5, 2: 0.25, 3: 0.125, 10: 0.05} {
		if got := p.relaxAt(k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("relaxAt(%d) = %v, want %v", k, got, want)
		}
	}
	p = RetryPolicy{Relaxation: 0.8}
	if got := p.relaxAt(1); got != 0.8 {
		t.Fatalf("relaxAt(1) with Relaxation=0.8 = %v", got)
	}
	p = RetryPolicy{Relaxation: 7}
	if got := p.relaxAt(1); got != 0.5 {
		t.Fatalf("out-of-range Relaxation should fall back to 0.5, got %v", got)
	}
}

// TestRetryTelemetryCounters checks the retry ladder's metrics: retries,
// recoveries, injected failures and warm restarts.
func TestRetryTelemetryCounters(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()

	net := network.BuildEPANet()
	solver, err := NewSolver(net, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	solver.SetFailureHook(failingHook(t, 2))
	if _, stats, err := solver.SolveSteadyRetry(8*time.Hour, nil, nil, RetryPolicy{MaxRetries: 2}); err != nil {
		t.Fatalf("SolveSteadyRetry: %v", err)
	} else if stats.Retries != 2 {
		t.Fatalf("retries = %d, want 2", stats.Retries)
	}
	if got := reg.Counter("hydraulic_retries_total").Value(); got != 2 {
		t.Fatalf("hydraulic_retries_total = %d, want 2", got)
	}
	if got := reg.Counter("hydraulic_retry_recoveries_total").Value(); got != 1 {
		t.Fatalf("hydraulic_retry_recoveries_total = %d, want 1", got)
	}
	if got := reg.Counter("hydraulic_injected_failures_total").Value(); got != 2 {
		t.Fatalf("hydraulic_injected_failures_total = %d, want 2", got)
	}
	if got := reg.Counter("hydraulic_warm_restarts_total").Value(); got != 0 {
		t.Fatalf("hydraulic_warm_restarts_total = %d, want 0 for injected failures", got)
	}
}

// TestEPSWithRetryPolicy checks that RunEPS accepts a retry policy and
// still produces the full snapshot series on a clean network.
func TestEPSWithRetryPolicy(t *testing.T) {
	net := network.BuildTestNet()
	opts := EPSOptions{Duration: 2 * time.Hour, Step: time.Hour, Retry: RetryPolicy{MaxRetries: 1}}
	ts, err := RunEPS(net, opts, nil)
	if err != nil {
		t.Fatalf("RunEPS: %v", err)
	}
	if ts.Steps() != 3 {
		t.Fatalf("steps = %d, want 3", ts.Steps())
	}
}
