package hydraulic

import (
	"math"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/network"
)

// pumpNet: low reservoir → pump → junction with demand.
func pumpNet(h0, r, n float64) *network.Network {
	net := network.New("pump")
	res, _ := net.AddNode(network.Node{ID: "R", Type: network.Reservoir, Elevation: 5})
	j, _ := net.AddNode(network.Node{ID: "J", Type: network.Junction, Elevation: 0, BaseDemand: 0.02})
	_, _ = net.AddLink(network.Link{
		ID: "PU", Type: network.Pump, From: res, To: j,
		PumpH0: h0, PumpR: r, PumpN: n,
	})
	return net
}

func TestPumpDeliversCurveHead(t *testing.T) {
	const h0, r, n = 50.0, 1000.0, 2.0
	net := pumpNet(h0, r, n)
	s, err := NewSolver(net, Options{Accuracy: 1e-7})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	j, _ := net.NodeIndex("J")
	pu, _ := net.LinkIndex("PU")
	q := res.Flow[pu]
	if math.Abs(q-0.02) > 1e-6 {
		t.Fatalf("pump flow = %v, want demand 0.02", q)
	}
	// Junction head must equal source head plus the pump curve gain.
	wantHead := 5 + h0 - r*math.Pow(q, n)
	if math.Abs(res.Head[j]-wantHead) > 0.01 {
		t.Fatalf("head = %v, want %v", res.Head[j], wantHead)
	}
}

func TestPumpBlocksBackflow(t *testing.T) {
	// A pump into a HIGHER fixed grade would run backward without its
	// check valve; flow must pin to ~0 instead of going negative.
	net := network.New("backflow")
	low, _ := net.AddNode(network.Node{ID: "LOW", Type: network.Reservoir, Elevation: 5})
	high, _ := net.AddNode(network.Node{ID: "HIGH", Type: network.Reservoir, Elevation: 200})
	j, _ := net.AddNode(network.Node{ID: "J", Type: network.Junction, Elevation: 0})
	// Weak pump from low reservoir to J; strong gravity main from high
	// reservoir to J pushes head at J far above the pump's shutoff.
	_, _ = net.AddLink(network.Link{
		ID: "PU", Type: network.Pump, From: low, To: j,
		PumpH0: 20, PumpR: 1000, PumpN: 2,
	})
	_, _ = net.AddLink(network.Link{
		ID: "G", Type: network.Pipe, From: high, To: j,
		Length: 100, Diameter: 0.5, Roughness: 120,
	})
	s, err := NewSolver(net, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	pu, _ := net.LinkIndex("PU")
	if res.Flow[pu] < -1e-4 {
		t.Fatalf("pump runs backward: %v", res.Flow[pu])
	}
}

func TestValveMinorLossDropsHead(t *testing.T) {
	// Two parallel paths R→J: a pipe, and a pipe+valve variant on a second
	// junction. The valve's minor loss must cost extra head.
	net := network.New("valve")
	r, _ := net.AddNode(network.Node{ID: "R", Type: network.Reservoir, Elevation: 50})
	a, _ := net.AddNode(network.Node{ID: "A", Type: network.Junction, Elevation: 0, BaseDemand: 0.02})
	b, _ := net.AddNode(network.Node{ID: "B", Type: network.Junction, Elevation: 0, BaseDemand: 0.02})
	mk := func(id string, from, to int) {
		_, _ = net.AddLink(network.Link{
			ID: id, Type: network.Pipe, From: from, To: to,
			Length: 500, Diameter: 0.2, Roughness: 100,
		})
	}
	mk("PA", r, a)
	mk("PB", r, b)
	// Valve in series after B's feed: B gets its demand through the valve.
	c, _ := net.AddNode(network.Node{ID: "C", Type: network.Junction, Elevation: 0, BaseDemand: 0.02})
	_, _ = net.AddLink(network.Link{
		ID: "V", Type: network.Valve, From: b, To: c,
		Diameter: 0.2, MinorLoss: 10,
	})
	s, err := NewSolver(net, Options{Accuracy: 1e-6})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	bIdx, _ := net.NodeIndex("B")
	cIdx, _ := net.NodeIndex("C")
	drop := res.Head[bIdx] - res.Head[cIdx]
	if drop <= 0 {
		t.Fatalf("valve drop = %v, want positive", drop)
	}
	// Analytic: m·Q² with m = 0.0826·K/d⁴.
	v, _ := net.LinkIndex("V")
	q := res.Flow[v]
	want := 8.0 / (9.81 * math.Pi * math.Pi) * 10 / math.Pow(0.2, 4) * q * q
	if math.Abs(drop-want) > 0.05*want+1e-6 {
		t.Fatalf("valve drop = %v, want ~%v", drop, want)
	}
}

func TestTankDrainsAndFills(t *testing.T) {
	// A tank above the junction head drains (supplies the network);
	// a tank below fills.
	mk := func(tankElev float64) (float64, float64) {
		net := network.New("tank")
		r, _ := net.AddNode(network.Node{ID: "R", Type: network.Reservoir, Elevation: 40})
		j, _ := net.AddNode(network.Node{ID: "J", Type: network.Junction, Elevation: 0, BaseDemand: 0.01})
		tk, _ := net.AddNode(network.Node{
			ID: "T", Type: network.Tank, Elevation: tankElev,
			TankDiameter: 10, InitLevel: 5, MinLevel: 0.2, MaxLevel: 9.8,
		})
		_, _ = net.AddLink(network.Link{
			ID: "P1", Type: network.Pipe, From: r, To: j,
			Length: 500, Diameter: 0.3, Roughness: 100,
		})
		_, _ = net.AddLink(network.Link{
			ID: "P2", Type: network.Pipe, From: tk, To: j,
			Length: 200, Diameter: 0.3, Roughness: 100,
		})
		ts, err := RunEPS(net, EPSOptions{Duration: 2 * time.Hour, Step: 15 * time.Minute}, nil)
		if err != nil {
			t.Fatalf("RunEPS: %v", err)
		}
		levels := ts.TankLevel[tk]
		return levels[0], levels[len(levels)-1]
	}
	start, end := mk(60) // grade 65 m, well above the ~40 m junction head
	if end >= start {
		t.Fatalf("high tank should drain: %v → %v", start, end)
	}
	start, end = mk(20) // grade 25 m, below the junction head
	if end <= start {
		t.Fatalf("low tank should fill: %v → %v", start, end)
	}
}
