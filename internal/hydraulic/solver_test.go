package hydraulic

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// singlePipeNet builds R(head=50) --pipe--> J(elev=0, demand).
func singlePipeNet(demand float64) *network.Network {
	n := network.New("single")
	r, _ := n.AddNode(network.Node{ID: "R", Type: network.Reservoir, Elevation: 50})
	j, _ := n.AddNode(network.Node{ID: "J", Type: network.Junction, Elevation: 0, BaseDemand: demand})
	_, _ = n.AddLink(network.Link{
		ID: "P", Type: network.Pipe, From: r, To: j,
		Length: 1000, Diameter: 0.3, Roughness: 100,
	})
	return n
}

func TestSolveSteadySinglePipeAnalytic(t *testing.T) {
	const demand = 0.05
	n := singlePipeNet(demand)
	s, err := NewSolver(n, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	// Hand-computed Hazen-Williams: r = 10.667·L/(C^1.852·d^4.871).
	r := 10.667 * 1000 / (math.Pow(100, 1.852) * math.Pow(0.3, 4.871))
	wantHead := 50 - r*math.Pow(demand, 1.852)
	jIdx, _ := n.NodeIndex("J")
	if math.Abs(res.Head[jIdx]-wantHead) > 0.01 {
		t.Fatalf("head = %v, want %v", res.Head[jIdx], wantHead)
	}
	pIdx, _ := n.LinkIndex("P")
	if math.Abs(res.Flow[pIdx]-demand) > 1e-6 {
		t.Fatalf("flow = %v, want %v", res.Flow[pIdx], demand)
	}
	if res.Iterations <= 0 {
		t.Fatal("iterations not reported")
	}
	if mbe := s.MassBalanceError(res); mbe > 1e-6 {
		t.Fatalf("mass balance error = %v", mbe)
	}
}

func TestSolveSteadyEmitterAnalytic(t *testing.T) {
	const ec = 0.01
	n := singlePipeNet(0)
	s, err := NewSolver(n, Options{Accuracy: 1e-6})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	jIdx, _ := n.NodeIndex("J")
	res, err := s.SolveSteady(0, []Emitter{{Node: jIdx, Coeff: ec}}, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	// Independent fixed-point solution of p = 50 − r·(ec·√p)^1.852.
	r := 10.667 * 1000 / (math.Pow(100, 1.852) * math.Pow(0.3, 4.871))
	p := 40.0
	for k := 0; k < 200; k++ {
		q := ec * math.Sqrt(p)
		p = 0.5*p + 0.5*(50-r*math.Pow(q, 1.852))
	}
	if math.Abs(res.Pressure[jIdx]-p) > 0.05 {
		t.Fatalf("pressure = %v, want %v", res.Pressure[jIdx], p)
	}
	wantQ := ec * math.Sqrt(p)
	if gotQ := res.EmitterFlow[jIdx]; math.Abs(gotQ-wantQ) > 1e-5 {
		t.Fatalf("emitter flow = %v, want %v", gotQ, wantQ)
	}
	if math.Abs(res.TotalEmitterFlow()-wantQ) > 1e-5 {
		t.Fatalf("TotalEmitterFlow = %v, want %v", res.TotalEmitterFlow(), wantQ)
	}
	if mbe := s.MassBalanceError(res); mbe > 1e-5 {
		t.Fatalf("mass balance error = %v", mbe)
	}
}

func TestEmitterValidation(t *testing.T) {
	n := singlePipeNet(0.01)
	s, _ := NewSolver(n, Options{})
	if _, err := s.SolveSteady(0, []Emitter{{Node: 99, Coeff: 1}}, nil); err == nil {
		t.Fatal("out-of-range emitter node should error")
	}
	if _, err := s.SolveSteady(0, []Emitter{{Node: 1, Coeff: -1}}, nil); err == nil {
		t.Fatal("negative emitter coefficient should error")
	}
}

func TestLeakDropsPressureAndRaisesInflow(t *testing.T) {
	n := network.BuildTestNet()
	s, err := NewSolver(n, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	base, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	leakNode, _ := n.NodeIndex("J5")
	leaky, err := s.SolveSteady(0, []Emitter{{Node: leakNode, Coeff: 0.002}}, nil)
	if err != nil {
		t.Fatalf("leak solve: %v", err)
	}
	// Pressure at the leak node must drop.
	if leaky.Pressure[leakNode] >= base.Pressure[leakNode] {
		t.Fatalf("leak did not drop pressure: %v → %v",
			base.Pressure[leakNode], leaky.Pressure[leakNode])
	}
	// Source pipe flow must rise to supply the leak.
	pr, _ := n.LinkIndex("PR")
	if leaky.Flow[pr] <= base.Flow[pr] {
		t.Fatalf("leak did not raise inflow: %v → %v", base.Flow[pr], leaky.Flow[pr])
	}
	// The inflow increase equals the leak outflow (mass conservation).
	dIn := leaky.Flow[pr] - base.Flow[pr]
	if math.Abs(dIn-leaky.EmitterFlow[leakNode]) > 1e-4 {
		t.Fatalf("inflow increase %v != leak outflow %v", dIn, leaky.EmitterFlow[leakNode])
	}
}

func TestPressureDropDecaysWithDistance(t *testing.T) {
	// The Fig-2 physics: nodes nearer the leak see larger pressure drops.
	n := network.BuildTestNet()
	s, _ := NewSolver(n, Options{Accuracy: 1e-5})
	base, _ := s.SolveSteady(0, nil, nil)
	leakNode, _ := n.NodeIndex("J5")
	leaky, err := s.SolveSteady(0, []Emitter{{Node: leakNode, Coeff: 0.003}}, nil)
	if err != nil {
		t.Fatalf("leak solve: %v", err)
	}
	j5 := leakNode
	j7, _ := n.NodeIndex("J7")
	dropAtLeak := base.Pressure[j5] - leaky.Pressure[j5]
	dropFar := base.Pressure[j7] - leaky.Pressure[j7]
	if dropAtLeak <= 0 {
		t.Fatal("no pressure drop at leak")
	}
	if dropFar > dropAtLeak+1e-9 {
		t.Fatalf("distant node dropped more (%v) than leak node (%v)", dropFar, dropAtLeak)
	}
}

func TestEPANetSolves(t *testing.T) {
	n := network.BuildEPANet()
	s, err := NewSolver(n, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(8*time.Hour, nil, nil) // morning peak
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	for i := range n.Nodes {
		if n.Nodes[i].Type != network.Junction {
			continue
		}
		if res.Pressure[i] < 5 {
			t.Errorf("junction %s pressure %0.2f m below 5 m service minimum",
				n.Nodes[i].ID, res.Pressure[i])
		}
		if res.Pressure[i] > 120 {
			t.Errorf("junction %s pressure %0.2f m implausibly high", n.Nodes[i].ID, res.Pressure[i])
		}
	}
	if mbe := s.MassBalanceError(res); mbe > 1e-5 {
		t.Fatalf("mass balance error = %v", mbe)
	}
	// Pumps must run forward.
	for li := range n.Links {
		if n.Links[li].Type == network.Pump && res.Flow[li] < 0 {
			t.Errorf("pump %s runs backward: %v", n.Links[li].ID, res.Flow[li])
		}
	}
}

func TestWSSCSubnetSolves(t *testing.T) {
	n := network.BuildWSSCSubnet()
	s, err := NewSolver(n, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(18*time.Hour, nil, nil) // evening peak
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	low := 0
	for i := range n.Nodes {
		if n.Nodes[i].Type == network.Junction && res.Pressure[i] < 5 {
			low++
		}
	}
	if low > 0 {
		t.Fatalf("%d junctions below 5 m service pressure", low)
	}
	if mbe := s.MassBalanceError(res); mbe > 1e-5 {
		t.Fatalf("mass balance error = %v", mbe)
	}
}

func TestMultiLeakSuperposition(t *testing.T) {
	// Two concurrent leaks drain more than either alone (paper: multi-leak
	// interactions are coupled, not separable).
	n := network.BuildEPANet()
	s, _ := NewSolver(n, Options{})
	a, _ := n.NodeIndex("J20")
	b, _ := n.NodeIndex("J70")
	ra, err := s.SolveSteady(0, []Emitter{{Node: a, Coeff: 0.002}}, nil)
	if err != nil {
		t.Fatalf("leak A: %v", err)
	}
	rb, err := s.SolveSteady(0, []Emitter{{Node: b, Coeff: 0.002}}, nil)
	if err != nil {
		t.Fatalf("leak B: %v", err)
	}
	rab, err := s.SolveSteady(0, []Emitter{{Node: a, Coeff: 0.002}, {Node: b, Coeff: 0.002}}, nil)
	if err != nil {
		t.Fatalf("leak A+B: %v", err)
	}
	if rab.TotalEmitterFlow() <= ra.TotalEmitterFlow() || rab.TotalEmitterFlow() <= rb.TotalEmitterFlow() {
		t.Fatal("two leaks should discharge more than one")
	}
	// Interaction: joint discharge is below the sum of individual
	// discharges (each leak lowers the other's driving pressure).
	if rab.TotalEmitterFlow() >= ra.TotalEmitterFlow()+rb.TotalEmitterFlow() {
		t.Fatal("expected sub-additive discharge from interacting leaks")
	}
}

func TestSameNodeEmittersAggregate(t *testing.T) {
	n := singlePipeNet(0)
	s, _ := NewSolver(n, Options{Accuracy: 1e-6})
	j, _ := n.NodeIndex("J")
	one, err := s.SolveSteady(0, []Emitter{{Node: j, Coeff: 0.02}}, nil)
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	two, err := s.SolveSteady(0, []Emitter{{Node: j, Coeff: 0.01}, {Node: j, Coeff: 0.01}}, nil)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if math.Abs(one.EmitterFlow[j]-two.EmitterFlow[j]) > 1e-6 {
		t.Fatalf("split emitters differ: %v vs %v", one.EmitterFlow[j], two.EmitterFlow[j])
	}
}

func TestNotConverged(t *testing.T) {
	n := network.BuildEPANet()
	s, _ := NewSolver(n, Options{MaxIterations: 1})
	_, err := s.SolveSteady(0, nil, nil)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestConvergenceErrorContext(t *testing.T) {
	n := network.BuildEPANet()
	s, _ := NewSolver(n, Options{MaxIterations: 2})
	simTime := 3 * time.Hour
	_, err := s.SolveSteady(simTime, nil, nil)
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *ConvergenceError", err, err)
	}
	if ce.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", ce.Iterations)
	}
	if !(ce.Residual > 0) {
		t.Fatalf("Residual = %v, want > 0", ce.Residual)
	}
	if ce.SimTime != simTime {
		t.Fatalf("SimTime = %v, want %v", ce.SimTime, simTime)
	}
	for _, want := range []string{"did not converge", "2 iterations", "residual", "3h"} {
		if !strings.Contains(ce.Error(), want) {
			t.Fatalf("error text %q missing %q", ce.Error(), want)
		}
	}
}

func TestSolverTelemetry(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	n := network.BuildTestNet()
	s, err := NewSolver(n, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	if got := reg.Counter("hydraulic_solves_total").Value(); got != 1 {
		t.Fatalf("solves counter = %d, want 1", got)
	}
	if got := reg.Counter("hydraulic_newton_iterations_total").Value(); got != int64(res.Iterations) {
		t.Fatalf("iterations counter = %d, want %d", got, res.Iterations)
	}
	if got := reg.Histogram("hydraulic_iterations_per_solve", nil).Count(); got != 1 {
		t.Fatalf("iterations histogram count = %d, want 1", got)
	}

	bad, _ := NewSolver(n, Options{MaxIterations: 1})
	if _, err := bad.SolveSteady(0, nil, nil); !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if got := reg.Counter("hydraulic_convergence_failures_total").Value(); got != 1 {
		t.Fatalf("failures counter = %d, want 1", got)
	}
	if got := reg.Counter("hydraulic_solves_total").Value(); got != 1 {
		t.Fatalf("failed solve counted as success: solves = %d", got)
	}
}

func TestInvalidNetworkRejected(t *testing.T) {
	n := network.New("empty")
	if _, err := NewSolver(n, Options{}); err == nil {
		t.Fatal("empty network should be rejected")
	}
}

func TestClosedLinkCarriesNoFlow(t *testing.T) {
	n := network.BuildTestNet()
	idx, _ := n.LinkIndex("P7") // J5—J6 loop pipe
	n.Links[idx].Status = network.Closed
	s, err := NewSolver(n, Options{})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	res, err := s.SolveSteady(0, nil, nil)
	if err != nil {
		t.Fatalf("SolveSteady: %v", err)
	}
	if res.Flow[idx] != 0 {
		t.Fatalf("closed link flow = %v, want 0", res.Flow[idx])
	}
	if mbe := s.MassBalanceError(res); mbe > 1e-5 {
		t.Fatalf("mass balance error = %v", mbe)
	}
}

func TestDemandPatternShiftsFlows(t *testing.T) {
	n := network.BuildEPANet()
	s, _ := NewSolver(n, Options{})
	night, err := s.SolveSteady(3*time.Hour, nil, nil)
	if err != nil {
		t.Fatalf("night: %v", err)
	}
	morning, err := s.SolveSteady(8*time.Hour, nil, nil)
	if err != nil {
		t.Fatalf("morning: %v", err)
	}
	var nightIn, morningIn float64
	for li := range n.Links {
		if n.Links[li].Type == network.Pump {
			nightIn += night.Flow[li]
			morningIn += morning.Flow[li]
		}
	}
	if morningIn <= nightIn {
		t.Fatalf("morning pump flow %v should exceed night %v", morningIn, nightIn)
	}
}
