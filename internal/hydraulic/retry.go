package hydraulic

import (
	"errors"
	"time"
)

// RetryPolicy bounds retry-with-degradation on solver non-convergence.
// The zero value disables retry: SolveSteadyRetry then behaves exactly
// like SolveSteady.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after a failed solve.
	// Zero disables retry.
	MaxRetries int

	// Relaxation is the Newton flow-update fraction of the first retry;
	// every further retry halves it (floored at 0.05), stepping toward
	// heavier damping as attempts fail. Zero means 0.5; values outside
	// (0, 1] fall back to the default.
	Relaxation float64
}

// relaxAt returns the update fraction for retry attempt k (k >= 1).
func (p RetryPolicy) relaxAt(k int) float64 {
	r := p.Relaxation
	if r <= 0 || r > 1 {
		r = 0.5
	}
	for i := 1; i < k; i++ {
		r *= 0.5
	}
	if r < 0.05 {
		r = 0.05
	}
	return r
}

// RetryStep records one rung of a retry ladder — the exact degradation
// sequence a scenario walked, in attempt order. Steps feed the tracing
// layer so fault-tolerance reports can name each re-attempt instead of
// just counting them.
type RetryStep struct {
	// Attempt is the 1-based re-attempt number.
	Attempt int

	// Relaxation is the Newton flow-update fraction this attempt used
	// (see RetryPolicy.relaxAt — halved per rung, floored at 0.05).
	Relaxation float64

	// Warm reports whether the attempt resumed from the failed attempt's
	// final iterate instead of cold-starting.
	Warm bool

	// Injected reports whether the failure that triggered this attempt
	// was fault-injected rather than a real non-convergence.
	Injected bool
}

// RetryStats reports what a retry ladder did.
type RetryStats struct {
	// Retries is the number of re-attempts consumed (0 = the first
	// attempt succeeded).
	Retries int

	// WarmStarts counts retries that resumed from the previous attempt's
	// final head/flow iterate instead of cold-starting. A retry after an
	// injected failure cold-starts (the failed attempt never iterated),
	// so WarmStarts <= Retries.
	WarmStarts int

	// Steps is the per-attempt retry sequence, nil when the first attempt
	// succeeded — the common case allocates nothing.
	Steps []RetryStep
}

// SolveSteadyRetry is SolveSteady with bounded retry-with-degradation: on
// a ConvergenceError it re-attempts the solve with stepped relaxation
// (each retry damps the Newton flow update harder) and a warm restart
// from the failing attempt's final iterate, up to policy.MaxRetries
// re-attempts. Errors other than non-convergence (singular head matrix,
// invalid emitters) are returned immediately — damping does not fix those
// and retrying would mask real defects.
//
// Determinism: a retry ladder consumes only state produced within itself
// (the previous attempt's iterate), never the outcome of earlier solves
// on the same Solver, so a retried scenario yields bit-identical results
// regardless of what the solver computed before it — the same guarantee
// cold-started SolveSteady gives session reuse.
func (s *Solver) SolveSteadyRetry(t time.Duration, emitters []Emitter, tankHeads map[int]float64, policy RetryPolicy) (*Result, RetryStats, error) {
	s.stageTankHeadsMap(tankHeads)
	return s.retryLadder(t, emitters, policy)
}

// SolveSteadyRetryHeads is SolveSteadyRetry with tank head overrides as a
// slice aligned with TankNodes (nil means all defaults) — the map-free
// form the EPS loop uses.
func (s *Solver) SolveSteadyRetryHeads(t time.Duration, emitters []Emitter, tankHeads []float64, policy RetryPolicy) (*Result, RetryStats, error) {
	var stats RetryStats
	if err := s.stageTankHeadsSlice(tankHeads); err != nil {
		return nil, stats, err
	}
	return s.retryLadder(t, emitters, policy)
}

// retryLadder runs the attempt sequence against the staged tank heads.
func (s *Solver) retryLadder(t time.Duration, emitters []Emitter, policy RetryPolicy) (*Result, RetryStats, error) {
	var stats RetryStats
	res, err := s.solveOnce(t, emitters, 0, false, 1)
	for attempt := 1; err != nil && attempt <= policy.MaxRetries; attempt++ {
		var ce *ConvergenceError
		if !errors.As(err, &ce) {
			return nil, stats, err
		}
		warm := !ce.Injected && ce.Iterations > 0
		if warm {
			stats.WarmStarts++
			s.mWarm.Inc()
		}
		stats.Retries++
		s.mRetries.Inc()
		relax := policy.relaxAt(attempt)
		stats.Steps = append(stats.Steps, RetryStep{
			Attempt:    attempt,
			Relaxation: relax,
			Warm:       warm,
			Injected:   ce.Injected,
		})
		res, err = s.solveOnce(t, emitters, attempt, warm, relax)
	}
	if err == nil && stats.Retries > 0 {
		s.mRecoveries.Inc()
	}
	return res, stats, err
}
