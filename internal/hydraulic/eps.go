package hydraulic

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// ScheduledEmitter is an emitter that activates at a given elapsed time —
// the EPS form of a leak event e = (l, s, t): Node is e.l, Coeff is e.s,
// Start is e.t. A positive End models repair-crew isolation: the emitter
// is active in [Start, End); zero End means the leak runs to the end of
// the simulation.
type ScheduledEmitter struct {
	Node  int
	Coeff float64
	Start time.Duration
	End   time.Duration
}

// EPSOptions configures an extended-period simulation.
type EPSOptions struct {
	// Duration is total simulated time. Zero means 24 hours.
	Duration time.Duration

	// Step is the hydraulic time step — also the IoT sampling period.
	// Zero means the paper's 15 minutes.
	Step time.Duration

	// Solver options for each steady solve.
	Solver Options

	// Retry bounds retry-with-degradation when a step's solve does not
	// converge. The zero value keeps the historical fail-hard behavior.
	Retry RetryPolicy
}

func (o EPSOptions) withDefaults() EPSOptions {
	if o.Duration <= 0 {
		o.Duration = 24 * time.Hour
	}
	if o.Step <= 0 {
		o.Step = 15 * time.Minute
	}
	return o
}

// TimeSeries holds extended-period simulation output: one snapshot per
// hydraulic step, aligned with IoT sampling instants.
type TimeSeries struct {
	// Times are the elapsed times of the snapshots (Times[0] == 0).
	Times []time.Duration

	// Head[k][i] is the hydraulic head of node i at step k (m).
	Head [][]float64

	// Pressure[k][i] is the pressure head of node i at step k (m).
	Pressure [][]float64

	// Flow[k][j] is the flow of link j at step k (m³/s, positive From→To).
	Flow [][]float64

	// TankLevel[i] is the level series for tank node i (m above base).
	TankLevel map[int][]float64

	// EmitterOutflow[k] maps node index to leak outflow at step k.
	EmitterOutflow []map[int]float64
}

// Steps returns the number of snapshots.
func (ts *TimeSeries) Steps() int { return len(ts.Times) }

// StepAt returns the snapshot index whose time equals t, or -1.
func (ts *TimeSeries) StepAt(t time.Duration) int {
	i := sort.Search(len(ts.Times), func(k int) bool { return ts.Times[k] >= t })
	if i < len(ts.Times) && ts.Times[i] == t {
		return i
	}
	return -1
}

// TotalLeakVolume integrates leak outflow over the run (m³), using the
// left-endpoint rule consistent with the step-frozen hydraulics. Each
// snapshot is summed in ascending node order so the float total is
// reproducible run to run.
func (ts *TimeSeries) TotalLeakVolume(step time.Duration) float64 {
	var nodes []int
	vol := 0.0
	for _, snap := range ts.EmitterOutflow {
		nodes = nodes[:0]
		for n := range snap {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes {
			vol += snap[n] * step.Seconds()
		}
	}
	return vol
}

// RunEPS performs an extended-period simulation: a steady solve per step
// with demand patterns advanced in time, emitters activated at their start
// times, and tank levels integrated forward between steps (EPANET's
// Euler scheme; levels clamp at tank min/max). It is shorthand for
// RunEPSContext with context.Background().
func RunEPS(net *network.Network, opts EPSOptions, emitters []ScheduledEmitter) (*TimeSeries, error) {
	return RunEPSContext(context.Background(), net, opts, emitters)
}

// RunEPSContext is RunEPS with cancellation: ctx is checked between
// hydraulic steps, so the in-flight steady solve finishes and the error
// is ctx.Err().
func RunEPSContext(ctx context.Context, net *network.Network, opts EPSOptions, emitters []ScheduledEmitter) (*TimeSeries, error) {
	opts = opts.withDefaults()
	solver, err := NewSolver(net, opts.Solver)
	if err != nil {
		return nil, err
	}

	// Tank state, in the solver's ascending tank-node order. Keeping it in
	// slices means the hot loop stages heads with one copy and never
	// iterates a map.
	tanks := solver.TankNodes()
	tankLevels := make([]float64, len(tanks))
	tankHeads := make([]float64, len(tanks))
	for k, ti := range tanks {
		node := &net.Nodes[ti]
		tankLevels[k] = node.InitLevel
		tankHeads[k] = node.Elevation + node.InitLevel
	}

	steps := int(opts.Duration/opts.Step) + 1
	ts := &TimeSeries{
		Times:          make([]time.Duration, 0, steps),
		Head:           make([][]float64, 0, steps),
		Pressure:       make([][]float64, 0, steps),
		Flow:           make([][]float64, 0, steps),
		TankLevel:      make(map[int][]float64, len(tanks)),
		EmitterOutflow: make([]map[int]float64, 0, steps),
	}

	mSteps := telemetry.Default().Counter("hydraulic_eps_steps_total")
	for k := 0; k < steps; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mSteps.Inc()
		t := time.Duration(k) * opts.Step
		active := activeEmitters(emitters, t)
		res, stats, err := solver.SolveSteadyRetryHeads(t, active, tankHeads, opts.Retry)
		if err != nil {
			return nil, fmt.Errorf("hydraulic: EPS step %d (t=%v, %d retries): %w", k, t, stats.Retries, err)
		}
		ts.Times = append(ts.Times, t)
		ts.Head = append(ts.Head, res.Head)
		ts.Pressure = append(ts.Pressure, res.Pressure)
		ts.Flow = append(ts.Flow, res.Flow)
		ts.EmitterOutflow = append(ts.EmitterOutflow, res.EmitterFlow)
		for j, ti := range tanks {
			ts.TankLevel[ti] = append(ts.TankLevel[ti], tankLevels[j])
		}

		// Integrate tank levels for the next step.
		if k == steps-1 {
			break
		}
		for j, ti := range tanks {
			node := &net.Nodes[ti]
			net_ := tankNetInflow(net, res, ti)
			area := math.Pi * node.TankDiameter * node.TankDiameter / 4
			lvl := tankLevels[j] + net_*opts.Step.Seconds()/area
			if lvl < node.MinLevel {
				lvl = node.MinLevel
			}
			if lvl > node.MaxLevel {
				lvl = node.MaxLevel
			}
			tankLevels[j] = lvl
			tankHeads[j] = node.Elevation + lvl
		}
	}
	return ts, nil
}

// activeEmitters returns the plain emitters active at time t.
func activeEmitters(scheduled []ScheduledEmitter, t time.Duration) []Emitter {
	var out []Emitter
	for _, se := range scheduled {
		if t < se.Start {
			continue
		}
		if se.End > 0 && t >= se.End {
			continue
		}
		out = append(out, Emitter{Node: se.Node, Coeff: se.Coeff})
	}
	return out
}

// tankNetInflow sums signed link flows into a tank node (m³/s).
func tankNetInflow(net *network.Network, res *Result, tank int) float64 {
	total := 0.0
	for li := range net.Links {
		l := &net.Links[li]
		if l.Status == network.Closed {
			continue
		}
		if l.To == tank {
			total += res.Flow[li]
		}
		if l.From == tank {
			total -= res.Flow[li]
		}
	}
	return total
}
