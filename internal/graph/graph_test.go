package graph

import (
	"math"
	"math/rand"
	"testing"
)

// lineGraph builds 0—1—2—…—(n-1) with unit weights.
func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Fatal("out-of-range edge should error")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Fatal("negative vertex should error")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Fatal("negative weight should error")
	}
	if err := g.AddEdge(0, 1, math.NaN()); err == nil {
		t.Fatal("NaN weight should error")
	}
}

func TestNewFromEdges(t *testing.T) {
	g, err := NewFromEdges(3, []Edge{{U: 0, V: 1, Weight: 2}, {U: 1, V: 2, Weight: 3}})
	if err != nil {
		t.Fatalf("NewFromEdges: %v", err)
	}
	if d := g.ShortestPath(0, 2); d != 5 {
		t.Fatalf("ShortestPath(0,2) = %v, want 5", d)
	}
	if _, err := NewFromEdges(2, []Edge{{U: 0, V: 5, Weight: 1}}); err == nil {
		t.Fatal("bad edge should propagate error")
	}
}

func TestShortestPathsLine(t *testing.T) {
	g := lineGraph(t, 5)
	dist := g.ShortestPaths(0)
	for i, want := range []float64{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], want)
		}
	}
}

func TestShortestPathsPicksCheaperRoute(t *testing.T) {
	// Triangle with a shortcut: 0-1 (10), 0-2 (1), 2-1 (2).
	g := New(3)
	_ = g.AddEdge(0, 1, 10)
	_ = g.AddEdge(0, 2, 1)
	_ = g.AddEdge(2, 1, 2)
	if d := g.ShortestPath(0, 1); d != 3 {
		t.Fatalf("ShortestPath(0,1) = %v, want 3", d)
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1, 1)
	dist := g.ShortestPaths(0)
	if !math.IsInf(dist[3], 1) {
		t.Fatalf("dist[3] = %v, want +Inf", dist[3])
	}
	// Invalid source yields all-Inf.
	dist = g.ShortestPaths(-1)
	for i, d := range dist {
		if !math.IsInf(d, 1) {
			t.Fatalf("dist[%d] = %v, want +Inf for invalid src", i, d)
		}
	}
}

func TestBFSOrderAndHops(t *testing.T) {
	g := lineGraph(t, 4)
	order := g.BFSOrder(1)
	if len(order) != 4 || order[0] != 1 {
		t.Fatalf("BFSOrder = %v", order)
	}
	hops := g.HopDistances(1)
	want := []int{1, 0, 1, 2}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}
	if got := g.BFSOrder(99); got != nil {
		t.Fatalf("BFSOrder(out of range) = %v, want nil", got)
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(3, 4, 1)
	ids, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if ids[0] != ids[1] || ids[3] != ids[4] || ids[0] == ids[2] || ids[0] == ids[3] {
		t.Fatalf("ids = %v", ids)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !lineGraph(t, 6).Connected() {
		t.Fatal("line graph reported disconnected")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1, 2.5)
	_ = g.AddEdge(0, 2, 1.5)
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Fatalf("degrees = %d,%d", g.Degree(0), g.Degree(1))
	}
	total := 0.0
	g.Neighbors(0, func(v int, w float64) { total += w })
	if total != 4 {
		t.Fatalf("sum of neighbor weights = %v, want 4", total)
	}
}

// Property: on random connected graphs, Dijkstra distances satisfy the
// triangle inequality over every edge (relaxation fixpoint).
func TestDijkstraFixpointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		type edge struct {
			u, v int
			w    float64
		}
		var edges []edge
		// Random spanning tree plus extra edges.
		for v := 1; v < n; v++ {
			u := rng.Intn(v)
			w := rng.Float64()*9 + 1
			_ = g.AddEdge(u, v, w)
			edges = append(edges, edge{u, v, w})
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := rng.Float64()*9 + 1
			_ = g.AddEdge(u, v, w)
			edges = append(edges, edge{u, v, w})
		}
		src := rng.Intn(n)
		dist := g.ShortestPaths(src)
		if dist[src] != 0 {
			t.Fatalf("trial %d: dist[src] = %v", trial, dist[src])
		}
		for _, e := range edges {
			if dist[e.v] > dist[e.u]+e.w+1e-9 || dist[e.u] > dist[e.v]+e.w+1e-9 {
				t.Fatalf("trial %d: edge (%d,%d,%v) violates fixpoint: %v vs %v",
					trial, e.u, e.v, e.w, dist[e.u], dist[e.v])
			}
		}
	}
}
