// Package graph provides weighted undirected graph utilities for water
// network analysis: shortest paths (Dijkstra), breadth-first traversal and
// connectivity checks.
//
// Water networks are modeled in the paper as undirected graphs G(V, E)
// where the distance between adjacent nodes is the length of the connecting
// pipeline. The Fig-2 analysis (pressure change vs. distance from a leak)
// and the tweet-clique construction both rely on these primitives.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Edge is a weighted undirected edge between two vertex indices.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is a weighted undirected graph over vertices 0..N-1 with an
// adjacency-list representation.
type Graph struct {
	n   int
	adj [][]halfEdge
}

type halfEdge struct {
	to     int
	weight float64
}

// New creates a graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// NewFromEdges creates a graph with n vertices and the given edges.
func NewFromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V, e.Weight); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts an undirected edge u—v with the given non-negative weight.
func (g *Graph) AddEdge(u, v int, weight float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if weight < 0 || math.IsNaN(weight) {
		return fmt.Errorf("graph: invalid edge weight %v for (%d,%d)", weight, u, v)
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, weight: weight})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, weight: weight})
	return nil
}

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors calls fn for every neighbor of u with the edge weight.
func (g *Graph) Neighbors(u int, fn func(v int, weight float64)) {
	for _, he := range g.adj[u] {
		fn(he.to, he.weight)
	}
}

// priority queue for Dijkstra.
type pqItem struct {
	vertex int
	dist   float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// ShortestPaths returns the weighted shortest-path distance from src to
// every vertex. Unreachable vertices get +Inf.
func (g *Graph) ShortestPaths(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	q := &pq{{vertex: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.vertex] {
			continue // stale entry
		}
		for _, he := range g.adj[it.vertex] {
			if nd := it.dist + he.weight; nd < dist[he.to] {
				dist[he.to] = nd
				heap.Push(q, pqItem{vertex: he.to, dist: nd})
			}
		}
	}
	return dist
}

// ShortestPath returns the shortest-path distance between u and v, or +Inf
// if v is unreachable from u.
func (g *Graph) ShortestPath(u, v int) float64 {
	return g.ShortestPaths(u)[v]
}

// BFSOrder returns vertices reachable from src in breadth-first order.
func (g *Graph) BFSOrder(src int) []int {
	if src < 0 || src >= g.n {
		return nil
	}
	seen := make([]bool, g.n)
	order := make([]int, 0, g.n)
	queue := []int{src}
	seen[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, he := range g.adj[u] {
			if !seen[he.to] {
				seen[he.to] = true
				queue = append(queue, he.to)
			}
		}
	}
	return order
}

// Components returns the connected-component id of every vertex and the
// number of components. Ids are assigned in increasing vertex order.
func (g *Graph) Components() (ids []int, count int) {
	ids = make([]int, g.n)
	for i := range ids {
		ids[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if ids[v] >= 0 {
			continue
		}
		for _, u := range g.BFSOrder(v) {
			ids[u] = count
		}
		count++
	}
	return ids, count
}

// Connected reports whether the graph has exactly one connected component
// (true for the empty graph with zero or one vertices).
func (g *Graph) Connected() bool {
	_, c := g.Components()
	return c <= 1
}

// HopDistances returns unweighted (hop-count) distances from src; -1 marks
// unreachable vertices.
func (g *Graph) HopDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, he := range g.adj[u] {
			if dist[he.to] < 0 {
				dist[he.to] = dist[u] + 1
				queue = append(queue, he.to)
			}
		}
	}
	return dist
}
