package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// gridbed caches a second district's fixtures — a trained profile over a
// small looped grid zone, deliberately a different network with a
// different sensor count than testbed — once per test binary.
var gridbed struct {
	once    sync.Once
	err     error
	net     *network.Network
	sensors []sensor.Sensor
	profile *core.Profile
}

func initGridbed() error {
	gridbed.once.Do(func() {
		net := network.BuildGrid(network.GridConfig{Rows: 3, Cols: 3, Seed: 7})
		base, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{Duration: 2 * time.Hour, Step: time.Hour}, nil)
		if err != nil {
			gridbed.err = fmt.Errorf("grid baseline EPS: %w", err)
			return
		}
		placer, err := sensor.NewPlacer(net, base)
		if err != nil {
			gridbed.err = err
			return
		}
		sensors, err := placer.KMedoids(3, rand.New(rand.NewSource(4)))
		if err != nil {
			gridbed.err = err
			return
		}
		factory, err := newTestFactory(net, sensors)
		if err != nil {
			gridbed.err = err
			return
		}
		sys := core.NewSystem(factory, net, core.SystemConfig{})
		err = sys.Train(40, core.ProfileConfig{Technique: core.TechniqueLinear, Seed: 6},
			rand.New(rand.NewSource(8)))
		if err != nil {
			gridbed.err = fmt.Errorf("grid train: %w", err)
			return
		}
		gridbed.net = net
		gridbed.sensors = sensors
		gridbed.profile = sys.Profile()
	})
	return gridbed.err
}

// newGridSystem builds a fresh trained System over the grid fixtures.
func newGridSystem(t *testing.T) *core.System {
	t.Helper()
	if err := initGridbed(); err != nil {
		t.Fatalf("gridbed: %v", err)
	}
	factory, err := newTestFactory(gridbed.net, gridbed.sensors)
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := core.NewSystem(factory, gridbed.net, core.SystemConfig{})
	if err := sys.SetProfile(gridbed.profile); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	return sys
}

// newTestFleet builds a two-district fleet: "east" over the 8-node test
// network (5 sensors) and "west" over the 3×3 grid (3 sensors).
func newTestFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := NewFleet([]District{
		{ID: "east", Sys: newTestSystem(t)},
		{ID: "west", Sys: newGridSystem(t)},
	}, cfg)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Shutdown(ctx)
	})
	return f
}

func postDistrictObserve(t *testing.T, ts *httptest.Server, district string, req ObserveRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/districts/"+district+"/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST observe %s: %v", district, err)
	}
	return resp
}

func TestNewFleetValidation(t *testing.T) {
	sys := newTestSystem(t)
	if _, err := NewFleet(nil, Config{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewFleet([]District{{ID: "a/b", Sys: sys}}, Config{}); err == nil {
		t.Fatal("district id with '/' accepted")
	}
	if _, err := NewFleet([]District{{ID: "", Sys: sys}}, Config{}); err == nil {
		t.Fatal("empty district id accepted")
	}
	f, err := NewFleet([]District{
		{ID: "dup", Sys: newTestSystem(t)},
		{ID: "dup", Sys: newTestSystem(t)},
	}, Config{Workers: 2})
	if err == nil {
		_ = f.Shutdown(context.Background())
		t.Fatal("duplicate district id accepted")
	}
}

// TestFleetWorkerPartition pins the shared-budget fairness rule: an
// equal share per district (remainder to the first ids in sorted order)
// and never less than one worker each.
func TestFleetWorkerPartition(t *testing.T) {
	f := newTestFleet(t, Config{Workers: 5})
	if got := f.Workers(); got != 5 {
		t.Fatalf("fleet workers = %d, want 5", got)
	}
	if e := f.District("east").Config().Workers; e != 3 {
		t.Fatalf("east workers = %d, want 3 (share 2 + remainder)", e)
	}
	if w := f.District("west").Config().Workers; w != 2 {
		t.Fatalf("west workers = %d, want 2", w)
	}

	// A budget smaller than the district count still leaves every
	// district serving: hard isolation means a floor of one worker.
	f1 := newTestFleet(t, Config{Workers: 1})
	if e, w := f1.District("east").Config().Workers, f1.District("west").Config().Workers; e != 1 || w != 1 {
		t.Fatalf("1-worker budget split = (%d, %d), want (1, 1)", e, w)
	}
}

// TestFleetRoutingIsolation pins cross-district isolation end to end: an
// observation routed to one district is scored by that district's
// profile only (bit-identical to its own offline Localize), a sibling
// district rejects it outright, and unknown districts 404.
func TestFleetRoutingIsolation(t *testing.T) {
	f := newTestFleet(t, Config{Workers: 2})
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	eastSys := f.District("east").System()
	westSys := f.District("west").System()
	eastFeats := testFeatures(eastSys, 31) // 5 sensors
	westFeats := testFeatures(westSys, 32) // 3 sensors

	for _, tc := range []struct {
		district string
		sys      *core.System
		feats    []float64
	}{
		{"east", eastSys, eastFeats},
		{"west", westSys, westFeats},
	} {
		resp := postDistrictObserve(t, ts, tc.district, ObserveRequest{Features: tc.feats, Seed: 3, Wait: true})
		jr := decodeJob(t, resp)
		if jr.State != JobDone || jr.Result == nil {
			t.Fatalf("%s observe: state %v, error %q", tc.district, jr.State, jr.Error)
		}
		pred, _, err := tc.sys.Localize(core.Observation{Features: tc.feats})
		if err != nil {
			t.Fatalf("%s offline Localize: %v", tc.district, err)
		}
		for v := range pred.Proba {
			if math.Float64bits(jr.Result.Proba[v]) != math.Float64bits(pred.Proba[v]) {
				t.Fatalf("%s proba[%d]: served %v != offline %v", tc.district, v, jr.Result.Proba[v], pred.Proba[v])
			}
		}

		// Poll and trace through the district routes.
		r, err := ts.Client().Get(ts.URL + "/v1/districts/" + tc.district + "/localize/" + jr.Job)
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("%s localize poll: %v (status %d)", tc.district, err, r.StatusCode)
		}
		r.Body.Close()
		r, err = ts.Client().Get(ts.URL + "/v1/districts/" + tc.district + "/status")
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("%s status: %v (status %d)", tc.district, err, r.StatusCode)
		}
		var st Status
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatalf("decode %s status: %v", tc.district, err)
		}
		r.Body.Close()
		if st.District != tc.district {
			t.Fatalf("status district = %q, want %q", st.District, tc.district)
		}
	}

	// East's 5-wide feature vector does not fit west's 3-sensor network:
	// the sibling district must refuse it, never score it.
	resp := postDistrictObserve(t, ts, "west", ObserveRequest{Features: eastFeats, Wait: true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-district observe status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postDistrictObserve(t, ts, "north", ObserveRequest{Features: eastFeats})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown district status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// A job id from east is not visible under west.
	resp = postDistrictObserve(t, ts, "east", ObserveRequest{Features: eastFeats, Seed: 9})
	jr := decodeJob(t, resp)
	if r, _ := ts.Client().Get(ts.URL + "/v1/districts/west/localize/" + jr.Job); r.StatusCode != http.StatusNotFound {
		t.Fatalf("east job visible in west: status %d, want 404", r.StatusCode)
	}
}

// TestFleetStatus pins the fleet-wide snapshot: every district listed in
// id order, each Status carrying its district tag, plus the aggregate
// worker budget.
func TestFleetStatus(t *testing.T) {
	f := newTestFleet(t, Config{Workers: 4})
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	r, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/status: %v (status %d)", err, r.StatusCode)
	}
	var fs FleetStatus
	if err := json.NewDecoder(r.Body).Decode(&fs); err != nil {
		t.Fatalf("decode fleet status: %v", err)
	}
	r.Body.Close()
	if len(fs.Districts) != 2 || fs.Districts[0] != "east" || fs.Districts[1] != "west" {
		t.Fatalf("districts = %v, want [east west]", fs.Districts)
	}
	if fs.Workers != 4 {
		t.Fatalf("fleet workers = %d, want 4", fs.Workers)
	}
	if len(fs.PerDistrict) != 2 || fs.PerDistrict[0].District != "east" || fs.PerDistrict[1].District != "west" {
		t.Fatalf("per-district snapshots mislabeled: %+v", fs.PerDistrict)
	}
	if fs.PerDistrict[0].Network == fs.PerDistrict[1].Network {
		t.Fatalf("districts report the same network %q, want distinct", fs.PerDistrict[0].Network)
	}
}

// TestFleetPerDistrictDrain pins independent drain: draining one
// district refuses its new submissions with 503 while its sibling keeps
// serving, and the fleet status reflects the split.
func TestFleetPerDistrictDrain(t *testing.T) {
	f := newTestFleet(t, Config{Workers: 2})
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/districts/east/drain", nil)
	r, err := ts.Client().Do(req)
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("drain east: %v (status %d)", err, r.StatusCode)
	}
	r.Body.Close()

	resp := postDistrictObserve(t, ts, "east", ObserveRequest{Features: testFeatures(f.District("east").System(), 1)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained east observe status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	westFeats := testFeatures(f.District("west").System(), 2)
	resp = postDistrictObserve(t, ts, "west", ObserveRequest{Features: westFeats, Seed: 5, Wait: true})
	jr := decodeJob(t, resp)
	if jr.State != JobDone {
		t.Fatalf("sibling west state = %v after east drain (error %q)", jr.State, jr.Error)
	}

	fs := f.Status()
	if !fs.PerDistrict[0].Draining || fs.PerDistrict[1].Draining {
		t.Fatalf("draining flags = (%v, %v), want (true, false)",
			fs.PerDistrict[0].Draining, fs.PerDistrict[1].Draining)
	}

	// Draining an already-drained district is an idempotent success.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/districts/east/drain", nil)
	if r, err := ts.Client().Do(req); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("re-drain east: %v (status %d)", err, r.StatusCode)
	}
}

// TestFleetHotSwapRace races per-district profile hot-swaps against
// concurrent submissions to both districts (run under -race). Every job
// must finish cleanly — a swap is atomic per district and never bleeds
// across districts.
func TestFleetHotSwapRace(t *testing.T) {
	const perDistrict = 40
	f := newTestFleet(t, Config{Workers: 2, QueueSize: 2 * perDistrict})
	profiles := map[string]*core.Profile{"east": testbed.profile, "west": gridbed.profile}

	var wg sync.WaitGroup
	for _, id := range f.Districts() {
		srv := f.District(id)
		feats := testFeatures(srv.System(), 77)
		wg.Add(2)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := f.District(id).SwapProfile(profiles[id]); err != nil {
					t.Errorf("SwapProfile %s: %v", id, err)
					return
				}
			}
		}(id)
		go func(id string, srv *Server, feats []float64) {
			defer wg.Done()
			jobs := make([]*Job, 0, perDistrict)
			for i := 0; i < perDistrict; i++ {
				j, err := srv.Submit(ObserveRequest{Features: feats, Seed: int64(i + 1)})
				if err != nil {
					t.Errorf("Submit %s %d: %v", id, i, err)
					return
				}
				jobs = append(jobs, j)
			}
			for _, j := range jobs {
				select {
				case <-j.Done():
				case <-time.After(30 * time.Second):
					t.Errorf("%s job %s stuck", id, j.ID())
					return
				}
				if _, _, err := j.Status(); err != nil {
					t.Errorf("%s job %s failed: %v", id, j.ID(), err)
					return
				}
			}
		}(id, srv, feats)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, id := range f.Districts() {
		if st := f.District(id).Status(); st.ProfileSwaps != 10 {
			t.Fatalf("%s profile swaps = %d, want 10", id, st.ProfileSwaps)
		}
	}
}
