package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// TestDefaultSeedsDistinctUnderRace pins the Submit seed-race fix: with
// Seed unset, concurrent submissions must never share a fault-injection
// rng stream. The old code re-read the sequence counter after Add(1), so
// two racing submissions could both observe the same value.
func TestDefaultSeedsDistinctUnderRace(t *testing.T) {
	const n = 64
	s := newTestServer(t, Config{Workers: 2, QueueSize: n})
	feats := testFeatures(s.System(), 21)

	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(ObserveRequest{Features: feats})
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[int64]string, n)
	for _, j := range jobs {
		if prev, dup := seen[j.seed]; dup {
			t.Fatalf("jobs %s and %s share default seed %d", prev, j.ID(), j.seed)
		}
		seen[j.seed] = j.ID()
	}
}

// TestRetryAfterSubSecondMax pins the Retry-After clamp fix: a
// RetryAfterMax below one second must still yield the documented
// positive integer (1), not 0.
func TestRetryAfterSubSecondMax(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetryAfterMax: 500 * time.Millisecond})
	// Load-derived branch: with an EWMA in place the estimate is clamped
	// to the (sub-second) cap, which itself must clamp to ≥ 1.
	s.observeService(3 * time.Second)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("retryAfterSeconds = %d with RetryAfterMax 500ms, want 1", got)
	}
}

// TestFastPathMetricsReportTakenPath pins the metrics-truth fix: the
// fast-path counter must report the path the evaluation actually took,
// not the snapshot state re-queried after the fact (which a concurrent
// SwapProfile can change mid-request).
func TestFastPathMetricsReportTakenPath(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	feats := testFeatures(s.System(), 17)

	j, err := s.Submit(ObserveRequest{Features: feats, Seed: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitResult(t, j)
	compiledJobs := s.Status().FastPathJobs
	if compiledJobs < 1 {
		t.Fatalf("FastPathJobs = %d after a compiled-path job, want ≥ 1", compiledJobs)
	}

	// Drop the snapshot without recompiling (SetProfile directly, unlike
	// SwapProfile): the next job runs the pointer path and must NOT count.
	if err := s.System().SetProfile(testbed.profile); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	if s.System().Compiled() {
		t.Fatal("snapshot survived SetProfile")
	}
	j, err = s.Submit(ObserveRequest{Features: feats, Seed: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitResult(t, j)
	if got := s.Status().FastPathJobs; got != compiledJobs {
		t.Fatalf("FastPathJobs = %d after a pointer-path job, want unchanged %d", got, compiledJobs)
	}

	// SwapProfile recompiles; fast-path accounting resumes.
	if err := s.SwapProfile(testbed.profile); err != nil {
		t.Fatalf("SwapProfile: %v", err)
	}
	j, err = s.Submit(ObserveRequest{Features: feats, Seed: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitResult(t, j)
	if got := s.Status().FastPathJobs; got != compiledJobs+1 {
		t.Fatalf("FastPathJobs = %d after recompile, want %d", got, compiledJobs+1)
	}
}

// TestRejectedSubmissionTraced pins the rejected-trace fix: a submission
// refused at queue-full with a client-forced traceparent must land in
// the flight recorder with an error stage and surface its trace id on
// the 429 response.
func TestRejectedSubmissionTraced(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:     1,
		QueueSize:   1,
		TraceSample: -1, // refusals are failures: captured regardless
		Faults:      faults.Config{RequestSlow: 1, RequestDelay: 400 * time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	feats := testFeatures(s.System(), 19)

	// Occupy the worker, then the 1-deep queue.
	if _, err := s.Submit(ObserveRequest{Features: feats, Seed: 1}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := s.Submit(ObserveRequest{Features: feats, Seed: 2}); err != nil {
		t.Fatalf("Submit queued: %v", err)
	}

	const tid = "af7651916cd43dd8448eb211c80319c6"
	body, _ := json.Marshal(ObserveRequest{Features: feats, Seed: 3})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/observe", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("refusal X-Trace-Id = %q, want %q", got, tid)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	var snap *telemetry.TraceSnapshot
	for _, cand := range s.Recorder().Recent(s.Recorder().Cap()) {
		if cand.TraceID == tid {
			snap = cand
			break
		}
	}
	if snap == nil {
		t.Fatal("rejected submission's trace not in the flight recorder")
	}
	if !hasStage(snap, telemetry.StageError) || !hasStage(snap, telemetry.StageDone) {
		t.Fatalf("rejection timeline incomplete: %v", stages(snap))
	}
	if snap.Error == "" {
		t.Fatal("rejection snapshot carries no error")
	}

	// Validation refusals are traced too, and the wrapped error still
	// matches the documented types.
	_, err = s.Submit(ObserveRequest{Features: feats[:1], TraceParent: "00-" + tid + "-00f067aa0ba902b7-01"})
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("validation refusal err = %v, want RequestError", err)
	}
	var se *SubmitError
	if !errors.As(err, &se) || se.TraceID != tid {
		t.Fatalf("validation refusal not a SubmitError with the forced id: %v", err)
	}
}

// TestBatchedObserveBitIdentity pins the micro-batching invariant under
// -race: concurrent same-hour Readings requests scored as one batch
// produce results bit-identical to offline System.Localize on each
// request's own subtracted deltas.
func TestBatchedObserveBitIdentity(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:        1,
		QueueSize:      16,
		BatchMax:       4,
		RequestTimeout: 30 * time.Second,
		Faults:         faults.Config{RequestSlow: 1, RequestDelay: 300 * time.Millisecond},
	})
	sys := s.System()
	want := sys.Factory().SensorCount()
	hour := 11
	base, err := sys.QuiescentBaseline(hour)
	if err != nil {
		t.Fatalf("QuiescentBaseline: %v", err)
	}

	// Block the single worker so the Readings submissions below queue up
	// and board together.
	blocker, err := s.Submit(ObserveRequest{Features: testFeatures(sys, 1), Seed: 1})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	time.Sleep(50 * time.Millisecond)

	const members = 3
	jobs := make([]*Job, members)
	readings := make([][]float64, members)
	for i := range jobs {
		deltas := testFeatures(sys, int64(40+i))
		readings[i] = make([]float64, want)
		for k := range deltas {
			readings[i][k] = base[k] + deltas[k]
		}
		j, err := s.Submit(ObserveRequest{Readings: readings[i], PatternHour: &hour, Seed: int64(50 + i)})
		if err != nil {
			t.Fatalf("Submit readings %d: %v", i, err)
		}
		jobs[i] = j
	}

	waitResult(t, blocker)
	var lead, share int
	for i, j := range jobs {
		got := waitResult(t, j)
		exp := make([]float64, want)
		for k := range exp {
			exp[k] = readings[i][k] - base[k]
		}
		pred, _, err := sys.Localize(core.Observation{Features: exp})
		if err != nil {
			t.Fatalf("offline Localize %d: %v", i, err)
		}
		for v := range pred.Proba {
			if math.Float64bits(got.Proba[v]) != math.Float64bits(pred.Proba[v]) {
				t.Fatalf("job %d proba[%d]: batched %v != offline %v", i, v, got.Proba[v], pred.Proba[v])
			}
		}
		if snap := j.Trace(); snap != nil {
			if hasStage(snap, telemetry.StageBatchLead) {
				lead++
			}
			if hasStage(snap, telemetry.StageBatchShare) {
				share++
			}
		}
	}
	st := s.Status()
	if st.Batches < 1 {
		t.Fatalf("observe_batches = %d, want ≥ 1 (no batch formed)", st.Batches)
	}
	if st.BatchedJobs < 2 {
		t.Fatalf("observe_batched_jobs = %d, want ≥ 2", st.BatchedJobs)
	}
	if lead < 1 || share < 1 {
		t.Fatalf("batch provenance stages: %d leaders, %d sharers (want ≥ 1 each)", lead, share)
	}
}

// TestBatchingDisabled pins the BatchMax=1 escape hatch: every Readings
// job resolves its own baseline and the batch counters stay zero.
func TestBatchingDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, BatchMax: 1})
	sys := s.System()
	hour := 5
	base, err := sys.QuiescentBaseline(hour)
	if err != nil {
		t.Fatalf("QuiescentBaseline: %v", err)
	}
	readings := make([]float64, len(base))
	copy(readings, base)
	for i := 0; i < 3; i++ {
		j, err := s.Submit(ObserveRequest{Readings: readings, PatternHour: &hour, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		waitResult(t, j)
	}
	if st := s.Status(); st.Batches != 0 || st.BatchedJobs != 0 {
		t.Fatalf("batch counters = (%d, %d) with batching disabled, want (0, 0)", st.Batches, st.BatchedJobs)
	}
	s.mu.Lock()
	boarded := len(s.pending)
	s.mu.Unlock()
	if boarded != 0 {
		t.Fatalf("pending board holds %d hours with batching disabled, want 0", boarded)
	}
}
