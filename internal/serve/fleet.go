package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// District is one member of a Fleet: a trained System served under an
// id. The id names the district in URLs (/v1/districts/{id}/...) and in
// telemetry labels, so it is restricted to [a-zA-Z0-9_.-].
type District struct {
	ID  string
	Sys *core.System
}

// Fleet hosts many districts' localization services in one process —
// one aquad serving N district metered areas. Each district gets its own
// Server (compiled snapshot, bounded queue, result window, flight
// recorder) carved from one shared worker budget, so a hot district can
// saturate only its own pool and never starve a sibling. Districts
// hot-swap profiles and drain independently; Handler routes by district
// id and adds a fleet-wide status endpoint.
type Fleet struct {
	servers map[string]*Server
	ids     []string // district ids, sorted
	workers int      // total budget actually allotted
	log     *slog.Logger
	start   time.Time
}

// NewFleet builds one Server per district over a shared Config and
// starts every pool. cfg.Workers is the fleet-wide worker budget: each
// district receives an equal share (remainder to the first districts in
// id order), never less than one worker — hard isolation is the
// fairness mechanism. Every other Config field applies to each district
// as-is (per-district queue of cfg.QueueSize, its own trace buffer, and
// so on).
func NewFleet(districts []District, cfg Config) (*Fleet, error) {
	if len(districts) == 0 {
		return nil, fmt.Errorf("serve: fleet needs at least one district")
	}
	byID := make(map[string]District, len(districts))
	ids := make([]string, 0, len(districts))
	for _, d := range districts {
		if !validDistrictID(d.ID) {
			return nil, fmt.Errorf("serve: bad district id %q (want [a-zA-Z0-9_.-]+)", d.ID)
		}
		if _, dup := byID[d.ID]; dup {
			return nil, fmt.Errorf("serve: duplicate district id %q", d.ID)
		}
		byID[d.ID] = d
		ids = append(ids, d.ID)
	}
	sort.Strings(ids)

	cfg = cfg.withDefaults()
	share := cfg.Workers / len(ids)
	rem := cfg.Workers % len(ids)
	f := &Fleet{
		servers: make(map[string]*Server, len(ids)),
		ids:     ids,
		log:     cfg.Logger,
		start:   time.Now(),
	}
	for i, id := range ids {
		dcfg := cfg
		dcfg.Workers = share
		if i < rem {
			dcfg.Workers++
		}
		if dcfg.Workers < 1 {
			dcfg.Workers = 1 // every district keeps at least one worker
		}
		srv, err := newServer(byID[id].Sys, dcfg, id)
		if err != nil {
			// Unwind the pools already started so a partial fleet never
			// leaks goroutines.
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			for _, started := range f.servers {
				_ = started.Shutdown(ctx)
			}
			cancel()
			return nil, fmt.Errorf("serve: district %q: %w", id, err)
		}
		f.servers[id] = srv
		f.workers += dcfg.Workers
	}
	return f, nil
}

func validDistrictID(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		ok := r == '_' || r == '.' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// District returns the named district's server (nil when unknown).
func (f *Fleet) District(id string) *Server { return f.servers[id] }

// Districts returns the fleet's district ids in sorted order.
func (f *Fleet) Districts() []string {
	out := make([]string, len(f.ids))
	copy(out, f.ids)
	return out
}

// Workers returns the total worker count across every district pool.
func (f *Fleet) Workers() int { return f.workers }

// Shutdown drains every district concurrently (each drain refuses new
// submissions, finishes in-flight jobs, and fails queued ones with
// ErrDraining). The first per-district error is joined per district id.
func (f *Fleet) Shutdown(ctx context.Context) error {
	errc := make(chan error, len(f.ids))
	for _, id := range f.ids {
		go func(id string, srv *Server) {
			if err := srv.Shutdown(ctx); err != nil {
				errc <- fmt.Errorf("serve: district %q drain: %w", id, err)
				return
			}
			errc <- nil
		}(id, f.servers[id])
	}
	var errs []error
	for range f.ids {
		if err := <-errc; err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// FleetStatus is the fleet-wide health snapshot behind GET /v1/status.
type FleetStatus struct {
	Districts     []string `json:"districts"`
	Workers       int      `json:"workers"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	PerDistrict   []Status `json:"per_district"`
}

// Status aggregates every district's snapshot, ordered by district id.
func (f *Fleet) Status() FleetStatus {
	fs := FleetStatus{
		Districts:     f.Districts(),
		Workers:       f.workers,
		UptimeSeconds: time.Since(f.start).Seconds(),
		PerDistrict:   make([]Status, 0, len(f.ids)),
	}
	for _, id := range f.ids {
		fs.PerDistrict = append(fs.PerDistrict, f.servers[id].Status())
	}
	return fs
}

// Handler returns the fleet's HTTP mux: the single-district API nested
// under /v1/districts/{district}/..., plus
//
//	GET  /v1/status                           fleet-wide snapshot
//	POST /v1/districts/{district}/drain       drain one district, leaving
//	                                          siblings serving
//	GET  /v1/districts/{district}/requests    that district's flight
//	                                          recorder
//	/metrics, /metrics.json, /debug/...       shared telemetry registry
//	                                          (district-labeled series)
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Status())
	})
	mux.HandleFunc("POST /v1/districts/{district}/observe", f.byDistrict((*Server).handleObserve))
	mux.HandleFunc("GET /v1/districts/{district}/localize/{job}", f.byDistrict((*Server).handleLocalize))
	mux.HandleFunc("GET /v1/districts/{district}/trace/{job}", f.byDistrict((*Server).handleTrace))
	mux.HandleFunc("GET /v1/districts/{district}/status", f.byDistrict((*Server).handleStatus))
	mux.HandleFunc("POST /v1/districts/{district}/profile", f.byDistrict((*Server).handleProfile))
	mux.HandleFunc("GET /v1/districts/{district}/requests", f.byDistrict((*Server).handleDebugRequests))
	mux.HandleFunc("POST /v1/districts/{district}/drain", f.handleDrain)
	if h := telemetry.Default().Handler(); h != nil {
		mux.Handle("/metrics", h)
		mux.Handle("/metrics.json", h)
		mux.Handle("/debug/", h)
	}
	return accessLog(f.log, mux)
}

// byDistrict adapts a Server handler method onto the fleet routes,
// resolving the {district} wildcard; an unknown id answers 404.
func (f *Fleet) byDistrict(h func(*Server, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("district")
		srv := f.servers[id]
		if srv == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown district %q", id))
			return
		}
		h(srv, w, r)
	}
}

// handleDrain drains one district under the request's context and
// reports when its pool has fully exited. Sibling districts keep
// serving; draining an already-drained district is a no-op success.
func (f *Fleet) handleDrain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("district")
	srv := f.servers[id]
	if srv == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown district %q", id))
		return
	}
	if err := srv.Shutdown(r.Context()); err != nil {
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: district %q drain: %w", id, err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "drained", "district": id})
}
