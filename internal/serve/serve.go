// Package serve is the online localization service behind the aquad
// daemon: a long-running HTTP/JSON front end over one trained
// core.System that ingests live observations (IoT reading deltas,
// temperature, human reports), runs Phase-II fusion concurrently across
// a bounded worker pool, and answers job polls and status queries.
//
// Concurrency model:
//
//   - One immutable System/Profile snapshot is shared by every worker.
//     The only mutable piece — the profile — sits behind an atomic
//     pointer in core.System, so a hot reload (Server.SwapProfile /
//     POST /v1/profile) is one pointer store; in-flight jobs finish on
//     the profile they started with.
//   - Jobs flow through one bounded channel. When it is full, Submit
//     refuses with ErrQueueFull (HTTP 429 + Retry-After) instead of
//     queueing unboundedly — latency stays flat under overload and the
//     process cannot OOM on a traffic spike.
//   - Every job carries its own rng (seeded per request), used only by
//     the fault injector's degradation draws. Localization itself is
//     deterministic: a served result is bit-identical to calling
//     System.Localize offline with the same observation.
//   - Shutdown drains: new submissions are refused, jobs already running
//     finish and stay retrievable, and jobs still queued fail with
//     ErrDraining (HTTP 503).
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/telemetry"
)

// Config parameterizes a Server. The zero value serves with sensible
// defaults (NumCPU workers, a 1024-deep queue, 5s request timeout).
type Config struct {
	// Workers is the localization worker-pool size. Zero means
	// runtime.NumCPU().
	Workers int

	// QueueSize bounds the job queue; submissions beyond it are refused
	// with ErrQueueFull. Zero means 1024.
	QueueSize int

	// RequestTimeout bounds a job's total latency from enqueue: a job
	// still unfinished past it fails with context.DeadlineExceeded.
	// Zero means 5s.
	RequestTimeout time.Duration

	// RetryAfter is the backoff hint returned with queue-full refusals
	// before any job has completed (once jobs flow, the hint is computed
	// from the observed per-job service time; see retryAfterSeconds).
	// Zero means 1s.
	RetryAfter time.Duration

	// RetryAfterMax caps the computed Retry-After hint. Zero means 60s.
	RetryAfterMax time.Duration

	// GammaM is the default tweet-coarseness γ (meters) for clique
	// extraction when a request does not set its own. Zero means 30,
	// the paper's default.
	GammaM float64

	// ResultCap bounds how many finished jobs stay retrievable; the
	// oldest are evicted first. Zero means 4096.
	ResultCap int

	// TombstoneLimit bounds how many evicted job ids are remembered so
	// polls for them can answer 410 Gone instead of 404 (the tombstones
	// age out oldest-first). Zero means 4096.
	TombstoneLimit int

	// TraceSample is the head-based trace sampling fraction: that share
	// of requests (chosen by a deterministic hash of the trace id, never
	// by an rng draw) lands in the flight recorder even when nothing goes
	// wrong. Failed and slow requests are always captured regardless.
	// Zero means 1 (capture everything — the recorder is bounded, so
	// memory stays flat); negative disables head sampling.
	TraceSample float64

	// TraceSlowThreshold is the latency above which a request's trace is
	// always captured, whatever the sampling decision. Zero means 250ms.
	TraceSlowThreshold time.Duration

	// TraceBuffer is the flight-recorder capacity: how many completed
	// traces GET /debug/requests and GET /v1/trace/{job} can replay
	// without an external collector. Zero means 256; negative disables
	// per-request tracing entirely (jobs carry no trace, responses carry
	// no X-Trace-Id, and the hot path pays one nil check).
	TraceBuffer int

	// BatchMax bounds observe micro-batching: when a worker dequeues a
	// Readings job it claims up to BatchMax-1 more queued Readings jobs
	// for the same pattern hour, resolves the quiescent baseline once,
	// and scores the whole batch back-to-back — amortizing the baseline
	// lookup without changing any result bit. Zero means 8; 1 disables
	// batching (every job resolves its own baseline).
	BatchMax int

	// Logger receives structured request logs — one access line per HTTP
	// request plus job failure events, each correlated by trace id. Nil
	// disables logging. Build one with telemetry.NewLogger.
	Logger *slog.Logger

	// Faults enables deterministic request-level degradation (slow and
	// forced-failed localize jobs; see faults.Config.RequestSlow /
	// RequestFail). The zero value injects nothing.
	Faults faults.Config
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RetryAfterMax <= 0 {
		c.RetryAfterMax = 60 * time.Second
	}
	if c.GammaM <= 0 {
		c.GammaM = 30
	}
	if c.ResultCap <= 0 {
		c.ResultCap = 4096
	}
	if c.TombstoneLimit <= 0 {
		c.TombstoneLimit = 4096
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	if c.TraceSlowThreshold <= 0 {
		c.TraceSlowThreshold = 250 * time.Millisecond
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 256
	}
	if c.BatchMax == 0 {
		c.BatchMax = 8
	} else if c.BatchMax < 0 {
		c.BatchMax = 1 // disabled: a batch is always just its leader
	}
	return c
}

// ErrQueueFull is returned by Submit when the bounded job queue is at
// capacity — the backpressure signal (HTTP 429 + Retry-After).
var ErrQueueFull = fmt.Errorf("serve: job queue full")

// ErrDraining is returned when the server is shutting down: new
// submissions are refused and still-queued jobs fail with it (HTTP 503).
var ErrDraining = fmt.Errorf("serve: server draining")

// ErrEvicted marks a job id whose finished result was evicted from the
// bounded result window (HTTP 410 Gone) — distinct from an id that was
// never submitted (HTTP 404).
var ErrEvicted = fmt.Errorf("serve: job result evicted")

// SubmitError wraps a submission refusal together with the trace id
// minted for the rejected request, so error responses can still carry
// X-Trace-Id and the refusal is findable in the flight recorder. Unwrap
// exposes the cause, keeping errors.Is(err, ErrQueueFull/ErrDraining)
// and errors.As(&RequestError{}) working unchanged.
type SubmitError struct {
	Cause   error
	TraceID string
}

func (e *SubmitError) Error() string { return e.Cause.Error() }
func (e *SubmitError) Unwrap() error { return e.Cause }

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Result is one completed localization.
type Result struct {
	// LeakNodes are the node indices in the predicted leak set S.
	LeakNodes []int `json:"leak_nodes"`

	// LeakIDs are the same nodes by network ID.
	LeakIDs []string `json:"leak_ids"`

	// Proba is the full fused per-node leak belief — bit-identical to
	// the offline System.Localize prediction for the same observation.
	Proba []float64 `json:"proba"`

	// HumanAdded are the nodes forced into S by human-report cliques.
	HumanAdded []int `json:"human_added,omitempty"`

	// LatencySeconds is the job's enqueue-to-done latency.
	LatencySeconds float64 `json:"latency_seconds"`
}

// Job is one queued/running/finished localization request.
type Job struct {
	id       string
	obs      core.Observation
	seed     int64
	enqueued time.Time
	trace    *telemetry.Trace // nil when tracing is disabled

	// readings holds a Readings request's raw sensor values until a
	// worker resolves them against the memoized quiescent baseline for
	// hour (wrapped into [0,24)); nil for Features requests. Deferring
	// the conversion to the worker lets concurrent same-hour requests
	// share one baseline lookup (observe micro-batching).
	readings []float64
	hour     int

	// claimed arbitrates scoring ownership between the worker that
	// dequeues this job from the channel and a batch leader that picks
	// it off the pending board — exactly one wins the CAS.
	claimed atomic.Bool

	mu     sync.Mutex
	state  JobState
	result *Result
	err    error
	done   chan struct{}
}

// claim marks the job as owned for scoring; false means another worker
// already took it (as a batch member or off the queue).
func (j *Job) claim() bool { return j.claimed.CompareAndSwap(false, true) }

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// TraceID returns the job's trace id as 32 hex characters, or "" when
// tracing is disabled.
func (j *Job) TraceID() string {
	if j.trace == nil {
		return ""
	}
	return j.trace.ID().String()
}

// Trace returns a point-in-time snapshot of the job's trace (nil when
// tracing is disabled). Safe to call while the job is still running.
func (j *Job) Trace() *telemetry.TraceSnapshot { return j.trace.Snapshot() }

// Done returns a channel closed when the job finishes (either way).
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the job's state and, once finished, its result or error.
func (j *Job) Status() (JobState, *Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.err
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

func (j *Job) complete(res *Result) {
	j.mu.Lock()
	j.state = JobDone
	j.result = res
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.err = err
	j.mu.Unlock()
	close(j.done)
}

// serveMetrics are the server's telemetry handles; all nil no-ops when
// telemetry is disabled at construction time.
type serveMetrics struct {
	submitted      *telemetry.Counter
	rejectedFull   *telemetry.Counter
	rejectedDrain  *telemetry.Counter
	jobsDone       *telemetry.Counter
	jobsFailed     *telemetry.Counter
	profileSwaps   *telemetry.Counter
	queueDepth     *telemetry.Gauge
	inflight       *telemetry.Gauge
	requestSeconds *telemetry.Histogram
	fastPath       *telemetry.Counter
	flatEvalSecs   *telemetry.Histogram
	traces         *telemetry.Counter
	batches        *telemetry.Counter
	batchedJobs    *telemetry.Counter
}

// bindServeMetrics registers the server's instruments. A non-empty
// district tags every name with a district label (telemetry.WithLabel),
// so fleet members export per-district series; a standalone server keeps
// the unlabeled names.
func bindServeMetrics(district string) serveMetrics {
	reg := telemetry.Default()
	name := func(n string) string { return telemetry.WithLabel(n, "district", district) }
	return serveMetrics{
		submitted:      reg.Counter(name("serve_jobs_submitted_total")),
		rejectedFull:   reg.Counter(name("serve_rejected_queue_full_total")),
		rejectedDrain:  reg.Counter(name("serve_rejected_draining_total")),
		jobsDone:       reg.Counter(name("serve_jobs_done_total")),
		jobsFailed:     reg.Counter(name("serve_jobs_failed_total")),
		profileSwaps:   reg.Counter(name("serve_profile_swaps_total")),
		queueDepth:     reg.Gauge(name("serve_queue_depth")),
		inflight:       reg.Gauge(name("serve_inflight_jobs")),
		requestSeconds: reg.Histogram(name("serve_request_seconds"), telemetry.ServingLatencyBuckets()),
		fastPath:       reg.Counter(name("serve_observe_fast_path_total")),
		flatEvalSecs:   reg.Histogram(name("serve_flat_eval_seconds"), telemetry.FastPathLatencyBuckets()),
		traces:         reg.Counter(name("serve_traces_captured_total")),
		batches:        reg.Counter(name("serve_observe_batches_total")),
		batchedJobs:    reg.Counter(name("serve_observe_batched_jobs_total")),
	}
}

// Server is the online localization service. Create one with New, mount
// Handler on an HTTP server, and Shutdown to drain.
type Server struct {
	sys      *core.System
	cfg      Config
	inj      *faults.Injector // nil when request faults are disabled
	district string           // fleet district id; "" for a standalone server

	queue chan *Job
	wg    sync.WaitGroup // worker goroutines

	mu         sync.Mutex // guards draining transition, job map, eviction order, pending board
	jobs       map[string]*Job
	finished   []string // finished job ids in completion order (eviction queue)
	tombstones map[string]struct{}
	tombOrder  []string       // tombstone ids in eviction order (aging queue)
	pending    map[int][]*Job // queued Readings jobs by pattern hour (the batching board)
	draining   bool

	drainOnce sync.Once
	seq       atomic.Int64
	running   atomic.Int64
	start     time.Time

	// ewmaServiceNs tracks the exponentially-weighted moving average
	// (α = 0.2) of per-job worker-occupancy time in nanoseconds, feeding
	// the Retry-After hint.
	ewmaServiceNs atomic.Int64

	// Per-server counters backing Status; the telemetry handles in met
	// mirror them onto the shared /metrics registry when telemetry is on.
	nSubmitted    atomic.Int64
	nDone         atomic.Int64
	nFailed       atomic.Int64
	nRejectedFull atomic.Int64
	nSwaps        atomic.Int64
	nFastPath     atomic.Int64
	nTraces       atomic.Int64
	nBatches      atomic.Int64
	nBatchedJobs  atomic.Int64

	// recorder is the bounded flight recorder holding recently captured
	// request traces (nil when cfg.TraceBuffer < 0 disabled tracing).
	recorder *telemetry.Recorder
	log      *slog.Logger // nil disables structured logging

	met serveMetrics
}

// New builds a Server over a trained system and starts its worker pool.
// The system must already hold a profile (trained or loaded); it is
// compiled (core.System.Compile) so workers evaluate observations
// through the flattened zero-allocation snapshot.
func New(sys *core.System, cfg Config) (*Server, error) {
	return newServer(sys, cfg, "")
}

// newServer is the shared constructor behind New and NewFleet; a
// non-empty district labels the server's telemetry and Status.
func newServer(sys *core.System, cfg Config, district string) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("serve: nil system")
	}
	if sys.Profile() == nil {
		return nil, fmt.Errorf("serve: system has no profile (train or load one first)")
	}
	if err := sys.Compile(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	cfg = cfg.withDefaults()
	inj, err := faults.New(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		sys:        sys,
		cfg:        cfg,
		inj:        inj,
		district:   district,
		queue:      make(chan *Job, cfg.QueueSize),
		jobs:       make(map[string]*Job),
		tombstones: make(map[string]struct{}),
		pending:    make(map[int][]*Job),
		start:      time.Now(),
		log:        cfg.Logger,
		met:        bindServeMetrics(district),
	}
	if cfg.TraceBuffer > 0 {
		s.recorder = telemetry.NewRecorder(cfg.TraceBuffer)
	}
	s.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker()
	}
	return s, nil
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// System returns the served system.
func (s *Server) System() *core.System { return s.sys }

// District returns the fleet district id this server belongs to, or ""
// for a standalone server.
func (s *Server) District() string { return s.district }

// Submit validates a request, enqueues its localization job and returns
// it. It never blocks: a full queue returns ErrQueueFull and a draining
// server ErrDraining; invalid evidence returns a *RequestError.
func (s *Server) Submit(req ObserveRequest) (*Job, error) {
	tr := s.newTrace(req.TraceParent)
	obs, readings, hour, err := s.buildObservation(req)
	if err != nil {
		return nil, s.rejectSubmit(tr, err)
	}
	n := s.seq.Add(1)
	id := fmt.Sprintf("j-%08d", n)
	tr.SetJob(id)
	seed := req.Seed
	if seed == 0 {
		// Distinct per-job default so fault draws are isolated between
		// requests even when clients never set a seed. The Add(1) return
		// value is this submission's alone — re-reading the counter here
		// could hand two concurrent submissions the same stream.
		seed = n
	}
	j := &Job{
		id:       id,
		obs:      obs,
		seed:     seed,
		readings: readings,
		hour:     hour,
		enqueued: time.Now(),
		trace:    tr,
		state:    JobQueued,
		done:     make(chan struct{}),
	}
	tr.Event(telemetry.StageEnqueue)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.rejectedDrain.Inc()
		return nil, s.rejectSubmit(tr, ErrDraining)
	}
	select {
	case s.queue <- j:
		s.jobs[id] = j
		// Boarding happens in the same critical section as the enqueue,
		// so a batch leader scanning the board never sees a job that is
		// not also in the channel.
		if j.readings != nil && s.cfg.BatchMax > 1 {
			s.pending[j.hour] = append(s.pending[j.hour], j)
		}
	default:
		s.mu.Unlock()
		s.nRejectedFull.Add(1)
		s.met.rejectedFull.Inc()
		return nil, s.rejectSubmit(tr, ErrQueueFull)
	}
	s.mu.Unlock()
	s.nSubmitted.Add(1)
	s.met.submitted.Inc()
	s.met.queueDepth.Set(float64(len(s.queue)))
	return j, nil
}

// rejectSubmit finalizes a refused submission's trace: the refusal is a
// failure, so it is always captured in the flight recorder (mirroring
// captureTrace's error contract) and the trace id is surfaced on the
// returned SubmitError so the HTTP layer can still answer X-Trace-Id.
// With tracing disabled the cause passes through untouched.
func (s *Server) rejectSubmit(tr *telemetry.Trace, cause error) error {
	if tr == nil {
		return cause
	}
	tr.Fail(cause)
	tr.Event(telemetry.StageDone)
	s.recorder.Put(tr.Snapshot())
	s.nTraces.Add(1)
	s.met.traces.Inc()
	return &SubmitError{Cause: cause, TraceID: tr.ID().String()}
}

// newTrace starts a per-request trace, honoring an inbound W3C
// traceparent header (its trace id is adopted; its sampled flag forces
// capture) and minting a fresh id otherwise. Returns nil — the no-op
// trace — when tracing is disabled, so untraced requests pay exactly
// one nil check per stage hook.
func (s *Server) newTrace(traceParent string) *telemetry.Trace {
	if s.recorder == nil {
		return nil
	}
	var id telemetry.TraceID
	var forced bool
	if traceParent != "" {
		if pid, sampled, ok := telemetry.ParseTraceParent(traceParent); ok {
			id, forced = pid, sampled
		}
	}
	tr := telemetry.NewTrace(id) // zero id mints a fresh one
	if forced {
		tr.Force()
	}
	return tr
}

// Lookup returns a submitted job by id (nil when unknown or evicted).
// Use LookupState to distinguish the two.
func (s *Server) Lookup(id string) *Job {
	j, _ := s.LookupState(id)
	return j
}

// LookupState returns the job by id plus an eviction marker: (job, false)
// for live jobs, (nil, true) when the id's finished result was evicted
// from the bounded result window, and (nil, false) when the id was never
// submitted (or its tombstone itself aged out of TombstoneLimit).
func (s *Server) LookupState(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, false
	}
	_, evicted := s.tombstones[id]
	return nil, evicted
}

// worker drains the queue. After Shutdown closes the queue, jobs still
// buffered in it are failed with ErrDraining instead of run — only the
// job a worker already held (in-flight) completes normally. Jobs whose
// claim CAS fails were already scored as members of an earlier batch and
// are skipped.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.met.queueDepth.Set(float64(len(s.queue)))
		if !j.claim() {
			continue // scored as a batch member by another worker
		}
		s.unboard(j)
		if s.isDraining() {
			s.finishJob(j, nil, ErrDraining)
			continue
		}
		if j.readings != nil {
			s.runBatch(j, s.takeBatch(j))
			continue
		}
		s.run(j)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// run executes one job under the request deadline.
func (s *Server) run(j *Job) {
	j.setRunning()
	j.trace.EventValue(telemetry.StageQueueWait, time.Since(j.enqueued).Seconds())
	s.running.Add(1)
	s.met.inflight.Set(float64(s.running.Load()))
	started := time.Now()
	defer func() {
		// Worker-occupancy time (not queue wait — that would feed the
		// backlog back into the estimate) drives the Retry-After EWMA.
		s.observeService(time.Since(started))
		s.running.Add(-1)
		s.met.inflight.Set(float64(s.running.Load()))
	}()

	// The deadline covers queue wait too: a job that sat queued past the
	// request timeout fails instead of serving a stale answer.
	ctx, cancel := context.WithDeadline(context.Background(), j.enqueued.Add(s.cfg.RequestTimeout))
	defer cancel()
	ctx = telemetry.ContextWithTrace(ctx, j.trace)

	// Per-request rng isolation: the only stochastic element of serving
	// is fault injection, drawn from this job's own stream.
	rng := rand.New(rand.NewSource(j.seed))
	delay, injErr := s.inj.RequestPlan(rng)
	if delay > 0 {
		j.trace.EventValue(telemetry.StageFaultDelay, delay.Seconds())
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			s.finishJob(j, nil, ctx.Err())
			return
		}
	}
	if injErr != nil {
		j.trace.Event(telemetry.StageFaultFail)
		s.finishJob(j, nil, injErr)
		return
	}
	if err := ctx.Err(); err != nil {
		s.finishJob(j, nil, err)
		return
	}

	evalStart := time.Now()
	pred, added, compiled, err := s.sys.LocalizeContextPath(ctx, j.obs)
	// compiled reports the path the evaluation itself took — re-querying
	// s.sys.Compiled() here would misattribute jobs that raced a
	// concurrent SwapProfile dropping or restoring the snapshot.
	if compiled {
		s.nFastPath.Add(1)
		s.met.fastPath.Inc()
		s.met.flatEvalSecs.ObserveDuration(time.Since(evalStart))
	}
	if err != nil {
		s.finishJob(j, nil, err)
		return
	}
	net := s.sys.Network()
	leakNodes := pred.LeakNodes()
	ids := make([]string, len(leakNodes))
	for i, v := range leakNodes {
		ids[i] = net.Nodes[v].ID
	}
	s.finishJob(j, &Result{
		LeakNodes:      leakNodes,
		LeakIDs:        ids,
		Proba:          pred.Proba,
		HumanAdded:     added,
		LatencySeconds: time.Since(j.enqueued).Seconds(),
	}, nil)
}

// finishJob completes or fails a job, records metrics, and evicts the
// oldest finished jobs beyond ResultCap.
func (s *Server) finishJob(j *Job, res *Result, err error) {
	latency := time.Since(j.enqueued)
	if err != nil {
		j.fail(err)
		s.nFailed.Add(1)
		s.met.jobsFailed.Inc()
		if s.log != nil {
			s.log.Error("job failed",
				telemetry.TraceAttr(j.trace.ID()),
				slog.String("job", j.id),
				slog.Float64("latency_seconds", latency.Seconds()),
				slog.String("error", err.Error()))
		}
	} else {
		j.complete(res)
		s.nDone.Add(1)
		s.met.jobsDone.Inc()
	}
	s.met.requestSeconds.ObserveDuration(latency)
	s.captureTrace(j, latency, err)

	s.mu.Lock()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.ResultCap {
		id := s.finished[0]
		delete(s.jobs, id)
		s.finished = s.finished[1:]
		// Leave a tombstone so polls for the evicted id get 410 Gone
		// instead of an indistinguishable 404.
		s.tombstones[id] = struct{}{}
		s.tombOrder = append(s.tombOrder, id)
	}
	for len(s.tombOrder) > s.cfg.TombstoneLimit {
		delete(s.tombstones, s.tombOrder[0])
		s.tombOrder = s.tombOrder[1:]
	}
	s.mu.Unlock()
}

// captureTrace decides whether a finished job's trace lands in the
// flight recorder: failed, slow (≥ TraceSlowThreshold) and
// traceparent-forced requests are always captured; everything else goes
// through head sampling on the trace id (deterministic, no rng draw).
func (s *Server) captureTrace(j *Job, latency time.Duration, err error) {
	tr := j.trace
	if tr == nil || s.recorder == nil {
		return
	}
	tr.Fail(err)
	tr.Event(telemetry.StageDone)
	if err == nil && latency < s.cfg.TraceSlowThreshold && !tr.Forced() &&
		!tr.ID().Sample(s.cfg.TraceSample) {
		return
	}
	s.recorder.Put(tr.Snapshot())
	s.nTraces.Add(1)
	s.met.traces.Inc()
}

// Recorder exposes the flight recorder (nil when tracing is disabled) —
// the store behind GET /debug/requests and GET /v1/trace/{job}.
func (s *Server) Recorder() *telemetry.Recorder { return s.recorder }

// Logger returns the server's structured logger (nil when disabled).
func (s *Server) Logger() *slog.Logger { return s.log }

// observeService folds one job's worker-occupancy time into the EWMA
// (α = 0.2) behind retryAfterSeconds.
func (s *Server) observeService(d time.Duration) {
	for {
		old := s.ewmaServiceNs.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)/5
		}
		if next < 1 {
			next = 1
		}
		if s.ewmaServiceNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds computes the backoff hint returned with 429s from
// observed load: draining the current backlog (queued + running + the
// refused job) across the worker pool at the EWMA per-job service time.
// The result is clamped to [1s, RetryAfterMax] so the header is always
// a positive integer; before any job has completed it falls back to the
// configured RetryAfter.
func (s *Server) retryAfterSeconds() int {
	ewma := time.Duration(s.ewmaServiceNs.Load())
	if ewma <= 0 {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		return secs
	}
	pending := len(s.queue) + int(s.running.Load()) + 1
	est := time.Duration(pending) * ewma / time.Duration(s.cfg.Workers)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	// A sub-second RetryAfterMax truncates to 0; clamping the cap to ≥ 1
	// keeps the documented "always a positive integer" contract.
	max := int(s.cfg.RetryAfterMax / time.Second)
	if max < 1 {
		max = 1
	}
	if secs > max {
		secs = max
	}
	return secs
}

// SwapProfile atomically installs a new profile; concurrent jobs see
// either the old or the new one in full. The profile must cover the
// served network (checked by core.System.SetProfile). The swap drops the
// compiled snapshot and its baseline memo, so the new profile is
// recompiled here; if that fails the swap stands and serving continues
// correctly on the pointer path.
func (s *Server) SwapProfile(p *core.Profile) error {
	if err := s.sys.SetProfile(p); err != nil {
		return err
	}
	s.nSwaps.Add(1)
	s.met.profileSwaps.Inc()
	if err := s.sys.Compile(); err != nil {
		return fmt.Errorf("serve: profile swapped but compile failed: %w", err)
	}
	return nil
}

// Shutdown drains the server: new submissions are refused immediately,
// in-flight jobs finish (and stay retrievable), queued-but-unstarted
// jobs fail with ErrDraining, and the worker pool exits. It returns
// ctx.Err() if the pool has not drained by the context deadline.
// Shutdown is idempotent; concurrent calls all wait for the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		// Safe: all sends are guarded by s.mu and refused once draining
		// is set, so nothing can send on the closed channel.
		close(s.queue)
		s.mu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status is the service health snapshot behind GET /v1/status (and, per
// district, GET /v1/districts/{id}/status).
type Status struct {
	District      string  `json:"district,omitempty"`
	Network       string  `json:"network"`
	Nodes         int     `json:"nodes"`
	Sensors       int     `json:"sensors"`
	Technique     string  `json:"technique"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	Inflight      int     `json:"inflight"`
	Draining      bool    `json:"draining"`
	Submitted     int64   `json:"jobs_submitted"`
	Done          int64   `json:"jobs_done"`
	Failed        int64   `json:"jobs_failed"`
	RejectedFull  int64   `json:"rejected_queue_full"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	ProfileSwaps  int64   `json:"profile_swaps"`
	Compiled      bool    `json:"compiled"`
	FastPathJobs  int64   `json:"fast_path_jobs"`
	Batches       int64   `json:"observe_batches"`
	BatchedJobs   int64   `json:"observe_batched_jobs"`

	// Runtime health (satellite gauges mirrored from the Go runtime) plus
	// the flight recorder's capture counter.
	Goroutines          int     `json:"goroutines"`
	HeapInuseBytes      uint64  `json:"heap_inuse_bytes"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	TracesCaptured      int64   `json:"traces_captured"`
}

// Status reports the current service snapshot. The counters are
// per-server (independent of the telemetry registry, which mirrors them
// on /metrics when telemetry is enabled).
func (s *Server) Status() Status {
	prof := s.sys.Profile()
	technique := ""
	if prof != nil {
		technique = prof.Technique().String()
	}
	net := s.sys.Network()
	health := telemetry.ReadRuntimeHealth()
	return Status{
		District:      s.district,
		Network:       net.Name,
		Nodes:         len(net.Nodes),
		Sensors:       s.sys.Factory().SensorCount(),
		Technique:     technique,
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.queue),
		QueueCap:      s.cfg.QueueSize,
		Inflight:      int(s.running.Load()),
		Draining:      s.isDraining(),
		Submitted:     s.nSubmitted.Load(),
		Done:          s.nDone.Load(),
		Failed:        s.nFailed.Load(),
		RejectedFull:  s.nRejectedFull.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		ProfileSwaps:  s.nSwaps.Load(),
		Compiled:      s.sys.Compiled(),
		FastPathJobs:  s.nFastPath.Load(),
		Batches:       s.nBatches.Load(),
		BatchedJobs:   s.nBatchedJobs.Load(),

		Goroutines:          health.Goroutines,
		HeapInuseBytes:      health.HeapInuseBytes,
		GCPauseTotalSeconds: health.GCPauseTotalSeconds,
		TracesCaptured:      s.nTraces.Load(),
	}
}
