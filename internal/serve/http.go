package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/social"
	"github.com/aquascale/aquascale/internal/telemetry"
	"github.com/aquascale/aquascale/internal/weather"
)

// ObserveRequest is the POST /v1/observe body: one live observation for
// the served network.
type ObserveRequest struct {
	// Features are the IoT sensor reading deltas, one per placed sensor
	// in placement order. The length must match the served sensor set.
	// Either Features or Readings is required, never both.
	Features []float64 `json:"features"`

	// Readings are absolute sensor readings (same order as Features).
	// The server subtracts the memoized quiescent baseline for
	// PatternHour to form the feature deltas — no hydraulic solve on the
	// request path after the first hit per hour.
	Readings []float64 `json:"readings,omitempty"`

	// PatternHour is the hour of the demand-pattern day the Readings
	// were taken at (wrapped into [0,24)). Only meaningful with
	// Readings; unset means the profile's training base hour.
	PatternHour *int `json:"pattern_hour,omitempty"`

	// TemperatureF is the current air temperature (°F). When set and not
	// freezing (per weather.Freezing), any FrozenNodes evidence is
	// discarded — frost bursts need frost. Unset means "trust
	// FrozenNodes as-is".
	TemperatureF *float64 `json:"temperature_f,omitempty"`

	// FrozenNodes lists node indices detected frozen by the
	// pressure-pattern analyzer (weather evidence). Optional.
	FrozenNodes []int `json:"frozen_nodes,omitempty"`

	// Reports are geotagged human reports ("water on the street") for
	// clique extraction. Optional.
	Reports []ReportIn `json:"reports,omitempty"`

	// GammaM overrides the server's clique coarseness γ (meters) for
	// this request. Zero means the server default.
	GammaM float64 `json:"gamma_m,omitempty"`

	// Seed isolates this request's rng stream (consumed only by fault
	// injection — localization itself is deterministic). Zero means a
	// server-assigned per-job seed.
	Seed int64 `json:"seed,omitempty"`

	// Wait makes the POST synchronous: the response is the finished
	// job's result (or error) instead of 202 + job id.
	Wait bool `json:"wait,omitempty"`

	// TraceParent is the inbound W3C trace-context header
	// ("00-<trace-id>-<parent-id>-<flags>"). The HTTP front end fills it
	// from the traceparent request header; programmatic Submit callers may
	// set it directly. The trace id is adopted and a set sampled flag
	// forces flight-recorder capture. Never serialized in request bodies.
	TraceParent string `json:"-"`
}

// ReportIn is one human report in an ObserveRequest.
type ReportIn struct {
	// X, Y is the report's geotag in network plan coordinates (m).
	X float64 `json:"x"`
	Y float64 `json:"y"`

	// Slot is the IoT sampling interval the report arrived in.
	Slot int `json:"slot"`
}

// RequestError is a client-side validation failure (HTTP 400).
type RequestError struct {
	Msg string
}

func (e *RequestError) Error() string { return "serve: bad request: " + e.Msg }

func badRequest(format string, args ...any) error {
	return &RequestError{Msg: fmt.Sprintf(format, args...)}
}

// buildObservation validates req against the served network and converts
// it to the exact core.Observation the offline pipeline uses, so served
// results are bit-identical to System.Localize on the same evidence.
// Readings requests are validated here but their readings→features
// conversion is deferred to the worker (returned as readings + pattern
// hour), where a batch leader resolves the quiescent baseline once for
// every concurrent same-hour request; obs.Features stays nil for them
// until then.
func (s *Server) buildObservation(req ObserveRequest) (core.Observation, []float64, int, error) {
	want := s.sys.Factory().SensorCount()
	var readings []float64
	hour := 0
	if len(req.Readings) > 0 {
		if len(req.Features) > 0 {
			return core.Observation{}, nil, 0, badRequest("set features or readings, not both")
		}
		if len(req.Readings) != want {
			return core.Observation{}, nil, 0, badRequest("got %d readings, served sensor set has %d", len(req.Readings), want)
		}
		hour = int(s.sys.Factory().BaseTime() / time.Hour)
		if req.PatternHour != nil {
			hour = *req.PatternHour
		}
		// Wrap into the demand-pattern day so the batching board and the
		// baseline memo agree that hour 25 and hour 1 share a baseline.
		hour = ((hour % 24) + 24) % 24
		readings = req.Readings
	} else if len(req.Features) != want {
		return core.Observation{}, nil, 0, badRequest("got %d features, served sensor set has %d", len(req.Features), want)
	}
	obs := core.Observation{Features: req.Features}

	net := s.sys.Network()
	freezing := req.TemperatureF == nil || weather.Freezing(*req.TemperatureF)
	if len(req.FrozenNodes) > 0 && freezing {
		frozen := make([]bool, len(net.Nodes))
		for _, v := range req.FrozenNodes {
			if v < 0 || v >= len(net.Nodes) {
				return core.Observation{}, nil, 0, badRequest("frozen node %d outside [0, %d)", v, len(net.Nodes))
			}
			frozen[v] = true
		}
		obs.Frozen = frozen
	}

	if len(req.Reports) > 0 {
		gamma := req.GammaM
		if gamma <= 0 {
			gamma = s.cfg.GammaM
		}
		pe := s.sys.Social().FalsePositiveRate
		if pe <= 0 {
			pe = 0.3
		}
		reports := make([]social.Report, len(req.Reports))
		for i, r := range req.Reports {
			reports[i] = social.Report{X: r.X, Y: r.Y, Slot: r.Slot}
		}
		obs.Cliques = social.BuildCliques(net, reports, gamma, pe)
	}
	return obs, readings, hour, nil
}

// jobResponse is the wire shape for job submission and polling. On a
// non-2xx answer Code carries the same machine-readable class the bare
// error envelope would, so every error body decodes uniformly as
// {"code": ..., "error": ...} whether or not job fields ride along.
type jobResponse struct {
	Job    string   `json:"job"`
	State  JobState `json:"state"`
	Result *Result  `json:"result,omitempty"`
	Error  string   `json:"error,omitempty"`
	Code   string   `json:"code,omitempty"`
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/observe        submit an observation (202 + job id, or the
//	                        result directly with "wait": true)
//	GET  /v1/localize/{job} poll a job
//	GET  /v1/trace/{job}    replay a job's stage timeline (live trace or
//	                        flight-recorder entry)
//	GET  /v1/status         service health snapshot
//	POST /v1/profile        hot-swap the profile (gob body, as written by
//	                        Profile.Save / aquatrain -out)
//	GET  /debug/requests    the flight recorder: recently captured traces,
//	                        newest first (?n= bounds the count)
//	/metrics, /metrics.json, /debug/...  telemetry (shared registry)
//
// When a Logger is configured the returned handler writes one structured
// access-log line per request, correlated by trace id.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/observe", s.handleObserve)
	mux.HandleFunc("GET /v1/localize/{job}", s.handleLocalize)
	mux.HandleFunc("GET /v1/trace/{job}", s.handleTrace)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/profile", s.handleProfile)
	// Exact pattern wins over the telemetry "/debug/" subtree below
	// (Go 1.22 ServeMux precedence), so both coexist.
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	if h := telemetry.Default().Handler(); h != nil {
		mux.Handle("/metrics", h)
		mux.Handle("/metrics.json", h)
		mux.Handle("/debug/", h)
	}
	return accessLog(s.log, mux)
}

// statusRecorder captures the response status for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// accessLog wraps a handler with one structured log line per request
// (shared by Server.Handler and Fleet.Handler). With a nil logger it
// returns the handler unwrapped — zero overhead.
func accessLog(log *slog.Logger, next http.Handler) http.Handler {
	if log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		log.Info("request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Float64("latency_seconds", time.Since(start).Seconds()),
			slog.String("trace_id", rec.Header().Get("X-Trace-Id")),
		)
	})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		req.Wait = true
	}
	req.TraceParent = r.Header.Get("traceparent")
	j, err := s.Submit(req)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	if tid := j.TraceID(); tid != "" {
		w.Header().Set("X-Trace-Id", tid)
	}
	if !req.Wait {
		w.Header().Set("Location", "/v1/localize/"+j.ID())
		writeJSON(w, http.StatusAccepted, jobResponse{Job: j.ID(), State: JobQueued})
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// Client went away; the job still runs and stays pollable.
		return
	}
	s.writeJob(w, j)
}

func (s *Server) handleLocalize(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("job")
	j, evicted := s.LookupState(id)
	if j == nil {
		if evicted {
			writeErrorCode(w, http.StatusGone, "evicted", fmt.Errorf("serve: job %q: %w", id, ErrEvicted))
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	s.writeJob(w, j)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// handleTrace replays a job's stage timeline: a still-live job answers
// with its in-flight trace snapshot, a finished one with its
// flight-recorder entry. 404 covers unknown jobs, jobs whose trace was
// not captured (sampled out), and tracing disabled outright.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("job")
	if j := s.Lookup(id); j != nil && j.trace != nil {
		if state, _, _ := j.Status(); state == JobQueued || state == JobRunning {
			writeJSON(w, http.StatusOK, j.Trace())
			return
		}
	}
	if snap := s.recorder.Find(id); snap != nil {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("serve: no trace for job %q (unknown, sampled out, or tracing disabled)", id))
}

// handleDebugRequests dumps the flight recorder, newest first. ?n=K
// bounds the count (default: everything retained).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: tracing disabled"))
		return
	}
	n := s.recorder.Cap()
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad n %q", q))
			return
		}
		n = v
	}
	traces := s.recorder.Recent(n)
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity": s.recorder.Cap(),
		"count":    len(traces),
		"traces":   traces,
	})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	p, err := core.LoadProfile(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.SwapProfile(p); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":    "profile swapped",
		"technique": p.Technique().String(),
	})
}

// writeJob renders a job's current state, mapping failure causes to
// status codes: timeouts 504, drain 503, injected or internal errors 500.
func (s *Server) writeJob(w http.ResponseWriter, j *Job) {
	state, res, err := j.Status()
	resp := jobResponse{Job: j.ID(), State: state, Result: res}
	code := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case errors.Is(err, ErrDraining):
			code = http.StatusServiceUnavailable
		case errors.Is(err, faults.ErrInjectedFailure):
			code = http.StatusInternalServerError
		default:
			code = http.StatusInternalServerError
		}
		resp.Code = errorCodeFor(code)
	}
	writeJSON(w, code, resp)
}

// writeSubmitError maps Submit failures onto the documented status codes:
// queue full 429 + Retry-After, draining 503, invalid evidence 400. The
// Retry-After hint is load-derived (see retryAfterSeconds). Refusals
// carrying a SubmitError still answer X-Trace-Id, so a client-forced
// traceparent stays correlatable even when the request never enqueued.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var se *SubmitError
	if errors.As(err, &se) && se.TraceID != "" {
		w.Header().Set("X-Trace-Id", se.TraceID)
	}
	var re *RequestError
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &re):
		writeError(w, http.StatusBadRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// errorEnvelope is the uniform non-2xx body shape: every error answer
// from the single-district and fleet handlers decodes as
// {"code": "<machine-readable class>", "error": "<human message>"}. The
// distributed-generation coordinator speaks the same envelope.
type errorEnvelope struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// errorCodeFor maps a status onto the envelope's default machine-readable
// code. Handlers that need to distinguish classes sharing a status (e.g.
// an evicted job vs. any other gone resource) pass an explicit code via
// writeErrorCode instead.
func errorCodeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusGone:
		return "gone"
	case http.StatusTooManyRequests:
		return "queue_full"
	case http.StatusServiceUnavailable:
		return "draining"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeErrorCode(w, code, errorCodeFor(code), err)
}

// writeErrorCode is writeError with an explicit "code" field overriding
// the status-derived default.
func writeErrorCode(w http.ResponseWriter, code int, errCode string, err error) {
	writeJSON(w, code, errorEnvelope{Code: errCode, Error: err.Error()})
}
