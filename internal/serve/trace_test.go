package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/telemetry"
)

func getTrace(t *testing.T, ts *httptest.Server, job string) (*telemetry.TraceSnapshot, int) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/trace/" + job)
	if err != nil {
		t.Fatalf("GET /v1/trace/%s: %v", job, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var snap telemetry.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	return &snap, resp.StatusCode
}

func stages(snap *telemetry.TraceSnapshot) []string {
	out := make([]string, len(snap.Events))
	for i, e := range snap.Events {
		out[i] = e.Stage
	}
	return out
}

func hasStage(snap *telemetry.TraceSnapshot, stage telemetry.Stage) bool {
	for _, e := range snap.Events {
		if e.Stage == string(stage) {
			return true
		}
	}
	return false
}

// TestObserveTraceRoundTrip is the tentpole acceptance path: a served
// observe returns X-Trace-Id, and GET /v1/trace/{job} replays the stage
// timeline with monotonically non-decreasing timestamps.
func TestObserveTraceRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postObserve(t, ts, ObserveRequest{Features: testFeatures(s.System(), 3), Seed: 1, Wait: true})
	tid := resp.Header.Get("X-Trace-Id")
	if len(tid) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", tid)
	}
	jr := decodeJob(t, resp)
	if jr.State != JobDone {
		t.Fatalf("state = %v", jr.State)
	}

	snap, code := getTrace(t, ts, jr.Job)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s = %d", jr.Job, code)
	}
	if snap.TraceID != tid {
		t.Fatalf("trace id %q != header %q", snap.TraceID, tid)
	}
	if snap.Job != jr.Job {
		t.Fatalf("trace job %q, want %q", snap.Job, jr.Job)
	}
	for _, want := range []telemetry.Stage{
		telemetry.StageEnqueue,
		telemetry.StageQueueWait,
		telemetry.StageEvalCompiled,
		telemetry.StageJunctionScatter,
		telemetry.StageDone,
	} {
		if !hasStage(snap, want) {
			t.Errorf("timeline missing stage %q: %v", want, stages(snap))
		}
	}
	prev := -1.0
	for i, e := range snap.Events {
		if e.AtSeconds < prev {
			t.Fatalf("timestamps went backwards at event %d: %s", i, snap)
		}
		prev = e.AtSeconds
	}
	if snap.Error != "" {
		t.Fatalf("unexpected error %q", snap.Error)
	}
}

// TestReadingsPathRecordsBaselineMemo pins the memo-provenance stages on
// the absolute-readings ingestion path: the first conversion for an hour
// misses (hydraulic solve), the second hits the (fingerprint, hour) memo.
func TestReadingsPathRecordsBaselineMemo(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base, err := s.System().QuiescentBaseline(7)
	if err != nil {
		t.Fatalf("QuiescentBaseline: %v", err)
	}
	readings := make([]float64, len(base))
	copy(readings, base)
	hour := 7

	// The warm-up above already populated hour 7, so clear-box: submit
	// twice and require a hit on both (the memo survives across requests).
	for i := 0; i < 2; i++ {
		resp := postObserve(t, ts, ObserveRequest{Readings: readings, PatternHour: &hour, Wait: true})
		jr := decodeJob(t, resp)
		snap, code := getTrace(t, ts, jr.Job)
		if code != http.StatusOK {
			t.Fatalf("trace fetch %d: %d", i, code)
		}
		if !hasStage(snap, telemetry.StageBaselineMemoHit) {
			t.Fatalf("request %d missing baseline_memo_hit: %v", i, stages(snap))
		}
	}
}

// TestErrorAlwaysCaptured pins the always-capture contract: with head
// sampling disabled outright (negative TraceSample) a failed request
// still lands in the flight recorder, while a clean fast one does not.
func TestErrorAlwaysCaptured(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:     1,
		TraceSample: -1,
		Faults:      faults.Config{RequestFail: 1},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postObserve(t, ts, ObserveRequest{Features: testFeatures(s.System(), 5), Seed: 11, Wait: true})
	jr := decodeJob(t, resp)
	if jr.State != JobFailed || jr.Error == "" {
		t.Fatalf("state = %v, error = %q (want injected failure)", jr.State, jr.Error)
	}
	snap, code := getTrace(t, ts, jr.Job)
	if code != http.StatusOK {
		t.Fatalf("failed job's trace not captured: %d", code)
	}
	if !hasStage(snap, telemetry.StageFaultFail) || !hasStage(snap, telemetry.StageError) {
		t.Fatalf("failure timeline incomplete: %v", stages(snap))
	}
	if snap.Error == "" {
		t.Fatal("snapshot carries no error")
	}
	if s.Status().TracesCaptured != 1 {
		t.Fatalf("TracesCaptured = %d, want 1", s.Status().TracesCaptured)
	}
}

// TestSampledOutRequestNotCaptured is the inverse: clean fast requests
// with head sampling disabled leave no flight-recorder entry (404).
func TestSampledOutRequestNotCaptured(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, TraceSample: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postObserve(t, ts, ObserveRequest{Features: testFeatures(s.System(), 5), Wait: true})
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("sampled-out request must still carry X-Trace-Id")
	}
	jr := decodeJob(t, resp)
	if jr.State != JobDone {
		t.Fatalf("state = %v", jr.State)
	}
	if _, code := getTrace(t, ts, jr.Job); code != http.StatusNotFound {
		t.Fatalf("sampled-out trace fetch = %d, want 404", code)
	}
	if s.Status().TracesCaptured != 0 {
		t.Fatalf("TracesCaptured = %d, want 0", s.Status().TracesCaptured)
	}
}

// TestSlowRequestAlwaysCaptured: an injected delay pushes the request
// past TraceSlowThreshold, which overrides the sampled-out decision.
func TestSlowRequestAlwaysCaptured(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:            1,
		TraceSample:        -1,
		TraceSlowThreshold: time.Millisecond,
		Faults:             faults.Config{RequestSlow: 1, RequestDelay: 20 * time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postObserve(t, ts, ObserveRequest{Features: testFeatures(s.System(), 5), Seed: 4, Wait: true})
	jr := decodeJob(t, resp)
	if jr.State != JobDone {
		t.Fatalf("state = %v, err = %q", jr.State, jr.Error)
	}
	snap, code := getTrace(t, ts, jr.Job)
	if code != http.StatusOK {
		t.Fatalf("slow job's trace not captured: %d", code)
	}
	if !hasStage(snap, telemetry.StageFaultDelay) {
		t.Fatalf("slow timeline missing fault_delay: %v", stages(snap))
	}
}

// TestTraceParentHonored: an inbound W3C traceparent's id is adopted and
// its sampled flag forces capture even with head sampling off.
func TestTraceParentHonored(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, TraceSample: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(ObserveRequest{Features: testFeatures(s.System(), 5), Wait: true})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/observe", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id = %q, want inbound id %q", got, tid)
	}
	jr := decodeJob(t, resp)
	snap, code := getTrace(t, ts, jr.Job)
	if code != http.StatusOK {
		t.Fatalf("forced trace not captured: %d", code)
	}
	if snap.TraceID != tid {
		t.Fatalf("captured trace id %q, want %q", snap.TraceID, tid)
	}
}

// TestTracingDisabled: a negative TraceBuffer removes tracing outright —
// no header, no trace endpoint, no recorder.
func TestTracingDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, TraceBuffer: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if s.Recorder() != nil {
		t.Fatal("recorder built despite TraceBuffer < 0")
	}
	resp := postObserve(t, ts, ObserveRequest{Features: testFeatures(s.System(), 5), Wait: true})
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("X-Trace-Id = %q with tracing disabled", got)
	}
	jr := decodeJob(t, resp)
	if jr.State != JobDone {
		t.Fatalf("state = %v", jr.State)
	}
	if _, code := getTrace(t, ts, jr.Job); code != http.StatusNotFound {
		t.Fatalf("trace fetch = %d, want 404", code)
	}
	r, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatalf("GET /debug/requests: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/requests = %d, want 404", r.StatusCode)
	}
}

// TestDebugRequestsEndpoint exercises the flight-recorder dump: newest
// first, ?n= bounds, capacity reported.
func TestDebugRequestsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, TraceBuffer: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var last string
	for i := 0; i < 3; i++ {
		jr := decodeJob(t, postObserve(t, ts, ObserveRequest{Features: testFeatures(s.System(), int64(i)), Wait: true}))
		last = jr.Job
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatalf("GET /debug/requests: %v", err)
	}
	defer resp.Body.Close()
	var dump struct {
		Capacity int                        `json:"capacity"`
		Count    int                        `json:"count"`
		Traces   []*telemetry.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dump.Capacity != 4 || dump.Count != 3 || len(dump.Traces) != 3 {
		t.Fatalf("dump = cap %d count %d len %d", dump.Capacity, dump.Count, len(dump.Traces))
	}
	if dump.Traces[0].Job != last {
		t.Fatalf("newest first violated: got %q, want %q", dump.Traces[0].Job, last)
	}

	resp2, err := ts.Client().Get(ts.URL + "/debug/requests?n=1")
	if err != nil {
		t.Fatalf("GET ?n=1: %v", err)
	}
	defer resp2.Body.Close()
	var bounded struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&bounded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if bounded.Count != 1 {
		t.Fatalf("?n=1 count = %d", bounded.Count)
	}

	resp3, err := ts.Client().Get(ts.URL + "/debug/requests?n=bogus")
	if err != nil {
		t.Fatalf("GET ?n=bogus: %v", err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("?n=bogus = %d, want 400", resp3.StatusCode)
	}
}

// syncWriter is a mutex-guarded log sink: slog may be written from
// handler goroutines while the test reads.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestAccessLog pins the structured-logging contract: one JSON line per
// HTTP request with method, path, status and the correlating trace id.
func TestAccessLog(t *testing.T) {
	var buf syncWriter
	s := newTestServer(t, Config{Workers: 1, Logger: telemetry.NewLogger(&buf, 0)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postObserve(t, ts, ObserveRequest{Features: testFeatures(s.System(), 9), Wait: true})
	tid := resp.Header.Get("X-Trace-Id")
	decodeJob(t, resp)

	var line struct {
		Msg     string  `json:"msg"`
		Method  string  `json:"method"`
		Path    string  `json:"path"`
		Status  int     `json:"status"`
		Latency float64 `json:"latency_seconds"`
		TraceID string  `json:"trace_id"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := buf.String()
		if idx := strings.Index(out, "\n"); idx > 0 {
			if err := json.Unmarshal([]byte(out[:idx]), &line); err != nil {
				t.Fatalf("unmarshal access line %q: %v", out[:idx], err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no access-log line appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if line.Msg != "request" || line.Method != http.MethodPost || line.Path != "/v1/observe" {
		t.Fatalf("access line = %+v", line)
	}
	if line.Status != http.StatusOK {
		t.Fatalf("status = %d, want 200", line.Status)
	}
	if line.TraceID != tid {
		t.Fatalf("trace_id = %q, want %q", line.TraceID, tid)
	}
}

// TestStatusRuntimeHealth pins the satellite gauges on GET /v1/status.
func TestStatusRuntimeHealth(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st := s.Status()
	if st.Goroutines <= 0 {
		t.Fatalf("Goroutines = %d", st.Goroutines)
	}
	if st.HeapInuseBytes == 0 {
		t.Fatal("HeapInuseBytes = 0")
	}
	var wire map[string]any
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal status: %v", err)
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatalf("unmarshal status: %v", err)
	}
	for _, key := range []string{"goroutines", "heap_inuse_bytes", "gc_pause_total_seconds", "traces_captured"} {
		if _, ok := wire[key]; !ok {
			t.Errorf("status JSON missing %q", key)
		}
	}
}

// TestConcurrentTracingDuringSwap hammers traced submissions while the
// profile hot-swaps — the acceptance's -race pin for concurrent
// flight-recorder writes against the atomic snapshot swap.
func TestConcurrentTracingDuringSwap(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 256})
	feats := testFeatures(s.System(), 21)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.SwapProfile(testbed.profile); err != nil {
				t.Errorf("SwapProfile: %v", err)
				return
			}
		}
	}()

	var jobs []*Job
	for i := 0; i < 64; i++ {
		j, err := s.Submit(ObserveRequest{Features: feats, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitResult(t, j)
	}
	close(stop)
	wg.Wait()

	if got := s.Recorder().Len(); got == 0 {
		t.Fatal("no traces captured")
	}
	for _, snap := range s.Recorder().Recent(0) {
		if !hasStage(snap, telemetry.StageDone) {
			t.Fatalf("captured trace missing done: %v", stages(snap))
		}
	}
	if int(s.Status().TracesCaptured) != len(jobs) {
		t.Fatalf("TracesCaptured = %d, want %d", s.Status().TracesCaptured, len(jobs))
	}
}
