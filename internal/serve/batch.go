package serve

import (
	"context"
	"fmt"

	"github.com/aquascale/aquascale/internal/telemetry"
)

// Observe micro-batching: Readings requests defer their readings→features
// conversion to the worker, where the job that a worker dequeues becomes
// the batch leader — it claims every other queued Readings job for the
// same pattern hour (up to Config.BatchMax), resolves the memoized
// quiescent baseline once, and scores the whole batch back-to-back. The
// shared baseline slice is the exact slice each job would have fetched
// alone, so batching changes wall-clock amortization and nothing else:
// every result stays bit-identical to the single-request path.

// unboard removes a claimed Readings job from the pending board (no-op
// for Features jobs, which are never boarded).
func (s *Server) unboard(j *Job) {
	if j.readings == nil || s.cfg.BatchMax <= 1 {
		return
	}
	s.mu.Lock()
	list := s.pending[j.hour]
	for i, cand := range list {
		if cand == j {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(s.pending, j.hour)
	} else {
		s.pending[j.hour] = list
	}
	s.mu.Unlock()
}

// takeBatch claims up to BatchMax-1 queued Readings jobs sharing the
// leader's pattern hour off the pending board. Entries whose claim CAS
// fails belong to another worker already and are pruned; claimed members
// are removed — the board never retains a job that has an owner.
func (s *Server) takeBatch(leader *Job) []*Job {
	want := s.cfg.BatchMax - 1
	if want <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.pending[leader.hour]
	if len(list) == 0 {
		return nil
	}
	var members []*Job
	rest := list[:0]
	for _, cand := range list {
		switch {
		case len(members) < want && cand.claim():
			members = append(members, cand)
		case !cand.claimed.Load():
			rest = append(rest, cand)
		}
	}
	for i := len(rest); i < len(list); i++ {
		list[i] = nil // let claimed members out of the board's backing array
	}
	if len(rest) == 0 {
		delete(s.pending, leader.hour)
	} else {
		s.pending[leader.hour] = rest
	}
	return members
}

// runBatch scores a Readings batch back-to-back on this worker: the
// leader resolves the quiescent baseline once (its trace carries the
// memo hit/miss stage) and every member reuses the identical slice, so
// features — and therefore results — are bit-for-bit what each job
// would have computed alone.
func (s *Server) runBatch(leader *Job, members []*Job) {
	jobs := append([]*Job{leader}, members...)
	lctx := telemetry.ContextWithTrace(context.Background(), leader.trace)
	base, err := s.sys.QuiescentBaselineContext(lctx, leader.hour)
	if err != nil {
		err = fmt.Errorf("serve: quiescent baseline: %w", err)
		for _, j := range jobs {
			s.finishJob(j, nil, err)
		}
		return
	}
	if len(members) > 0 {
		leader.trace.EventValue(telemetry.StageBatchLead, float64(len(jobs)))
		s.nBatches.Add(1)
		s.met.batches.Inc()
		s.nBatchedJobs.Add(int64(len(jobs)))
		s.met.batchedJobs.Add(int64(len(jobs)))
	}
	for _, j := range jobs {
		if j != leader {
			j.trace.EventValue(telemetry.StageBatchShare, float64(j.hour))
		}
		features := make([]float64, len(j.readings))
		for i, r := range j.readings {
			features[i] = r - base[i]
		}
		j.obs.Features = features
		s.run(j)
	}
}
