package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// epanetBed caches a trained EPA-NET system fixture for the load test —
// built once per binary because the baseline EPS and training solves are
// the expensive part.
var epanetBed struct {
	once sync.Once
	err  error
	sys  *core.System
}

func epanetSystem() (*core.System, error) {
	epanetBed.once.Do(func() {
		net := network.BuildEPANet()
		base, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{Duration: 2 * time.Hour, Step: time.Hour}, nil)
		if err != nil {
			epanetBed.err = fmt.Errorf("baseline EPS: %w", err)
			return
		}
		placer, err := sensor.NewPlacer(net, base)
		if err != nil {
			epanetBed.err = err
			return
		}
		sensors, err := placer.KMedoids(placer.CountForPercent(30), rand.New(rand.NewSource(4)))
		if err != nil {
			epanetBed.err = err
			return
		}
		factory, err := dataset.NewFactory(net, sensors, dataset.Config{
			Noise: sensor.DefaultNoise,
			Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
		})
		if err != nil {
			epanetBed.err = err
			return
		}
		sys := core.NewSystem(factory, net, core.SystemConfig{})
		err = sys.Train(120, core.ProfileConfig{Technique: core.TechniqueLinear, Seed: 5},
			rand.New(rand.NewSource(3)))
		if err != nil {
			epanetBed.err = fmt.Errorf("train: %w", err)
			return
		}
		epanetBed.sys = sys
	})
	return epanetBed.sys, epanetBed.err
}

// TestEPANetSustains500Concurrent is the serving acceptance bar: 500
// concurrent in-flight localize requests against one shared EPA-NET
// system — with profile hot-swaps racing the traffic — all complete, and
// every result is bit-identical to the offline answer for its evidence.
func TestEPANetSustains500Concurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("EPA-NET training is slow")
	}
	const jobs = 500
	sys, err := epanetSystem()
	if err != nil {
		t.Fatalf("epanet fixture: %v", err)
	}
	s, err := New(sys, Config{Workers: 8, QueueSize: jobs, RequestTimeout: 60 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	feats := testFeatures(sys, 21)
	want, _, err := sys.Localize(core.Observation{Features: feats})
	if err != nil {
		t.Fatalf("offline Localize: %v", err)
	}

	profile := sys.Profile()
	var wg sync.WaitGroup
	errCh := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(ObserveRequest{Features: feats, Seed: int64(i + 1)})
			if err != nil {
				errCh <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			<-j.Done()
			_, res, err := j.Status()
			if err != nil {
				errCh <- fmt.Errorf("job %d: %w", i, err)
				return
			}
			for v := range want.Proba {
				if res.Proba[v] != want.Proba[v] {
					errCh <- fmt.Errorf("job %d: proba[%d] = %v, offline %v", i, v, res.Proba[v], want.Proba[v])
					return
				}
			}
		}(i)
	}
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 25; i++ {
			if err := s.SwapProfile(profile); err != nil {
				errCh <- fmt.Errorf("swap %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-swapDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Status()
	if st.Done != jobs || st.Failed != 0 {
		t.Fatalf("done = %d, failed = %d, want %d/0", st.Done, st.Failed, jobs)
	}
}
