package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/faults"
)

// TestServedFastPathMatchesUncompiled pins the tentpole parity guarantee
// from the other side: the server (which compiles at New) must produce
// results bit-identical to an uncompiled system running the pointer path
// on the same observation.
func TestServedFastPathMatchesUncompiled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	if !s.Status().Compiled {
		t.Fatal("server not compiled after New")
	}

	req := ObserveRequest{
		Features:    testFeatures(s.System(), 7),
		FrozenNodes: []int{1, 3},
		Seed:        42,
	}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitResult(t, j)

	// A fresh system with the same profile, never compiled: pointer path.
	ref := newTestSystem(t)
	if ref.Compiled() {
		t.Fatal("reference system unexpectedly compiled")
	}
	obs, _, _, err := s.buildObservation(req)
	if err != nil {
		t.Fatalf("buildObservation: %v", err)
	}
	pred, _, err := ref.Localize(obs)
	if err != nil {
		t.Fatalf("pointer Localize: %v", err)
	}
	for v := range pred.Proba {
		if math.Float64bits(got.Proba[v]) != math.Float64bits(pred.Proba[v]) {
			t.Fatalf("proba[%d]: served %v != pointer %v", v, got.Proba[v], pred.Proba[v])
		}
	}
	if st := s.Status(); st.FastPathJobs < 1 {
		t.Fatalf("fast-path jobs = %d, want ≥ 1", st.FastPathJobs)
	}
}

// TestReadingsIngestion pins the absolute-readings request path: the
// conversion against the memoized quiescent baseline is deferred to the
// worker (so concurrent same-hour requests can batch), the end-to-end
// result matches offline Localize on the subtracted deltas bit-for-bit,
// and readings/features exclusivity is validated at submit time.
func TestReadingsIngestion(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	sys := s.System()
	want := sys.Factory().SensorCount()

	hour := 8
	base, err := sys.QuiescentBaseline(hour)
	if err != nil {
		t.Fatalf("QuiescentBaseline: %v", err)
	}
	deltas := testFeatures(sys, 3)
	readings := make([]float64, want)
	for i := range readings {
		readings[i] = base[i] + deltas[i]
	}

	obs, rdgs, gotHour, err := s.buildObservation(ObserveRequest{Readings: readings, PatternHour: &hour})
	if err != nil {
		t.Fatalf("buildObservation(readings): %v", err)
	}
	if obs.Features != nil {
		t.Fatal("readings resolved at submit time, want deferred to the worker")
	}
	if len(rdgs) != want || gotHour != hour {
		t.Fatalf("got %d readings for hour %d, want %d for %d", len(rdgs), gotHour, want, hour)
	}

	// End to end: a served readings request matches offline Localize on
	// the subtracted deltas bit-for-bit.
	j, err := s.Submit(ObserveRequest{Readings: readings, PatternHour: &hour, Seed: 9})
	if err != nil {
		t.Fatalf("Submit(readings): %v", err)
	}
	got := waitResult(t, j)
	exp := make([]float64, want)
	for i := range exp {
		exp[i] = readings[i] - base[i]
	}
	pred, _, err := sys.Localize(core.Observation{Features: exp})
	if err != nil {
		t.Fatalf("offline Localize: %v", err)
	}
	for v := range pred.Proba {
		if math.Float64bits(got.Proba[v]) != math.Float64bits(pred.Proba[v]) {
			t.Fatalf("proba[%d]: served %v != offline %v", v, got.Proba[v], pred.Proba[v])
		}
	}

	// Unset PatternHour falls back to the profile's training base hour.
	if _, _, _, err := s.buildObservation(ObserveRequest{Readings: readings}); err != nil {
		t.Fatalf("buildObservation(readings, no hour): %v", err)
	}

	var re *RequestError
	if _, _, _, err := s.buildObservation(ObserveRequest{Readings: readings, Features: deltas}); !errors.As(err, &re) {
		t.Fatalf("features+readings: err = %v, want RequestError", err)
	}
	if _, _, _, err := s.buildObservation(ObserveRequest{Readings: readings[:1]}); !errors.As(err, &re) {
		t.Fatalf("short readings: err = %v, want RequestError", err)
	}
}

// TestEvictedJobGone410 pins the eviction-ambiguity fix: polling an
// evicted job answers 410 Gone with a machine-readable "evicted" code,
// distinct from a never-submitted id's 404.
func TestEvictedJobGone410(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueSize: 16, ResultCap: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	feats := testFeatures(s.System(), 13)

	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(ObserveRequest{Features: feats, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitResult(t, j)
		ids = append(ids, j.ID())
	}

	// Filled past ResultCap=2: the two oldest results are gone.
	if j, evicted := s.LookupState(ids[0]); j != nil || !evicted {
		t.Fatalf("LookupState(evicted) = (%v, %v), want (nil, true)", j, evicted)
	}
	if j, evicted := s.LookupState(ids[3]); j == nil || evicted {
		t.Fatalf("LookupState(live) = (%v, %v), want (job, false)", j, evicted)
	}
	if j, evicted := s.LookupState("j-never-was"); j != nil || evicted {
		t.Fatalf("LookupState(unknown) = (%v, %v), want (nil, false)", j, evicted)
	}

	r, err := ts.Client().Get(ts.URL + "/v1/localize/" + ids[0])
	if err != nil {
		t.Fatalf("GET evicted: %v", err)
	}
	if r.StatusCode != http.StatusGone {
		t.Fatalf("evicted poll status = %d, want 410", r.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		t.Fatalf("decode 410 body: %v", err)
	}
	r.Body.Close()
	if body["code"] != "evicted" || body["error"] == "" {
		t.Fatalf("410 body = %v, want code=evicted and an error message", body)
	}

	if r, _ := ts.Client().Get(ts.URL + "/v1/localize/j-never-was"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown poll status = %d, want 404", r.StatusCode)
	}
}

// TestTombstoneAging pins the bound: tombstones past TombstoneLimit age
// out oldest-first and revert to 404.
func TestTombstoneAging(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueSize: 16, ResultCap: 1, TombstoneLimit: 2})
	feats := testFeatures(s.System(), 13)

	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit(ObserveRequest{Features: feats, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitResult(t, j)
		ids = append(ids, j.ID())
	}
	// ResultCap=1 evicted ids[0..3]; TombstoneLimit=2 keeps only the two
	// newest tombstones (ids[2], ids[3]).
	if _, evicted := s.LookupState(ids[0]); evicted {
		t.Fatal("oldest tombstone did not age out")
	}
	if _, evicted := s.LookupState(ids[3]); !evicted {
		t.Fatal("recent eviction lost its tombstone")
	}
}

// TestRetryAfterDynamic pins the 429 backoff hint: once jobs have
// completed, Retry-After is derived from queue depth and the observed
// per-job service time, stays a positive integer, and respects the
// configured cap.
func TestRetryAfterDynamic(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:        1,
		QueueSize:      2,
		RequestTimeout: 30 * time.Second,
		RetryAfter:     time.Second,
		RetryAfterMax:  10 * time.Second,
		Faults:         faults.Config{RequestSlow: 1, RequestDelay: 400 * time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	feats := testFeatures(s.System(), 13)

	// Cold server: falls back to the configured hint.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("cold retryAfterSeconds = %d, want 1", got)
	}

	// Seed the EWMA as if jobs were taking ~3s of worker time each. With
	// a full 2-deep queue + 1 running + the refused job, the estimate is
	// 4 × 3s / 1 worker = 12s, clamped to the 10s cap.
	s.observeService(3 * time.Second)

	var header string
	for i := 0; i < 8; i++ {
		resp := postObserve(t, ts, ObserveRequest{Features: feats, Seed: int64(i + 1)})
		if resp.StatusCode == http.StatusTooManyRequests {
			header = resp.Header.Get("Retry-After")
			resp.Body.Close()
			break
		}
		resp.Body.Close()
	}
	if header == "" {
		t.Fatal("never saw a 429 with Retry-After")
	}
	secs, err := strconv.Atoi(header)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", header, err)
	}
	if secs < 2 {
		t.Fatalf("Retry-After = %d, want ≥ 2 (load-derived, not the 1s fallback)", secs)
	}
	if secs > 10 {
		t.Fatalf("Retry-After = %d exceeds the 10s cap", secs)
	}

	// Even an absurd service time stays clamped.
	s.observeService(20 * time.Minute)
	s.observeService(20 * time.Minute)
	if got := s.retryAfterSeconds(); got < 1 || got > 10 {
		t.Fatalf("clamped retryAfterSeconds = %d, want within [1, 10]", got)
	}
}

// TestSwapProfileRecompiles pins the hot-swap invariant end to end: a
// swap drops the old snapshot and SwapProfile recompiles, so the fast
// path survives profile reloads.
func TestSwapProfileRecompiles(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if !s.System().Compiled() {
		t.Fatal("not compiled after New")
	}
	if err := s.SwapProfile(testbed.profile); err != nil {
		t.Fatalf("SwapProfile: %v", err)
	}
	if !s.System().Compiled() {
		t.Fatal("fast path lost after SwapProfile")
	}
}
