package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aquascale/aquascale/internal/core"
	"github.com/aquascale/aquascale/internal/dataset"
	"github.com/aquascale/aquascale/internal/faults"
	"github.com/aquascale/aquascale/internal/hydraulic"
	"github.com/aquascale/aquascale/internal/leak"
	"github.com/aquascale/aquascale/internal/network"
	"github.com/aquascale/aquascale/internal/sensor"
)

// testbed caches the expensive shared fixtures — a trained profile over
// the 8-node test network — once per test binary. Systems are rebuilt
// per test (cheap) so profile-swap tests can't leak state across tests.
var testbed struct {
	once    sync.Once
	err     error
	net     *network.Network
	sensors []sensor.Sensor
	profile *core.Profile
}

func initTestbed() error {
	testbed.once.Do(func() {
		net := network.BuildTestNet()
		base, err := hydraulic.RunEPS(net, hydraulic.EPSOptions{Duration: 2 * time.Hour, Step: time.Hour}, nil)
		if err != nil {
			testbed.err = fmt.Errorf("baseline EPS: %w", err)
			return
		}
		placer, err := sensor.NewPlacer(net, base)
		if err != nil {
			testbed.err = err
			return
		}
		sensors, err := placer.KMedoids(5, rand.New(rand.NewSource(2)))
		if err != nil {
			testbed.err = err
			return
		}
		factory, err := newTestFactory(net, sensors)
		if err != nil {
			testbed.err = err
			return
		}
		sys := core.NewSystem(factory, net, core.SystemConfig{})
		err = sys.Train(60, core.ProfileConfig{Technique: core.TechniqueLinear, Seed: 5},
			rand.New(rand.NewSource(3)))
		if err != nil {
			testbed.err = fmt.Errorf("train: %w", err)
			return
		}
		testbed.net = net
		testbed.sensors = sensors
		testbed.profile = sys.Profile()
	})
	return testbed.err
}

func newTestFactory(net *network.Network, sensors []sensor.Sensor) (*dataset.Factory, error) {
	return dataset.NewFactory(net, sensors, dataset.Config{
		Noise: sensor.DefaultNoise,
		Leaks: leak.GeneratorConfig{MinEvents: 1, MaxEvents: 2},
	})
}

// newTestSystem builds a fresh trained System over the shared fixtures.
func newTestSystem(t *testing.T) *core.System {
	t.Helper()
	if err := initTestbed(); err != nil {
		t.Fatalf("testbed: %v", err)
	}
	factory, err := newTestFactory(testbed.net, testbed.sensors)
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := core.NewSystem(factory, testbed.net, core.SystemConfig{})
	if err := sys.SetProfile(testbed.profile); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	return sys
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(newTestSystem(t), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// testFeatures returns a deterministic feature vector of the served width.
func testFeatures(sys *core.System, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, sys.Factory().SensorCount())
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func waitResult(t *testing.T, j *Job) *Result {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	state, res, err := j.Status()
	if err != nil {
		t.Fatalf("job %s failed: %v", j.ID(), err)
	}
	if state != JobDone || res == nil {
		t.Fatalf("job %s state = %v, result = %v", j.ID(), state, res)
	}
	return res
}

func TestNewRejectsUntrainedSystem(t *testing.T) {
	if err := initTestbed(); err != nil {
		t.Fatalf("testbed: %v", err)
	}
	factory, err := newTestFactory(testbed.net, testbed.sensors)
	if err != nil {
		t.Fatalf("NewFactory: %v", err)
	}
	sys := core.NewSystem(factory, testbed.net, core.SystemConfig{})
	if _, err := New(sys, Config{}); err == nil {
		t.Fatal("New should reject a system without a profile")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New should reject a nil system")
	}
}

// TestServedResultMatchesOffline is the parity guarantee: a served job is
// bit-identical to calling System.Localize offline on the same evidence.
func TestServedResultMatchesOffline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	sys := s.System()

	req := ObserveRequest{
		Features:    testFeatures(sys, 7),
		FrozenNodes: []int{1, 3},
		Reports: []ReportIn{
			{X: testbed.net.Nodes[1].X + 5, Y: testbed.net.Nodes[1].Y - 5, Slot: 0},
			{X: testbed.net.Nodes[1].X - 8, Y: testbed.net.Nodes[1].Y + 3, Slot: 1},
		},
		Seed: 99,
	}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitResult(t, j)

	obs, _, _, err := s.buildObservation(req)
	if err != nil {
		t.Fatalf("buildObservation: %v", err)
	}
	pred, added, err := sys.Localize(obs)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(got.Proba) != len(pred.Proba) {
		t.Fatalf("proba length %d != offline %d", len(got.Proba), len(pred.Proba))
	}
	for v := range pred.Proba {
		if got.Proba[v] != pred.Proba[v] {
			t.Fatalf("proba[%d] = %v, offline %v (must be bit-identical)", v, got.Proba[v], pred.Proba[v])
		}
	}
	if len(got.HumanAdded) != len(added) {
		t.Fatalf("human added %v, offline %v", got.HumanAdded, added)
	}
	wantNodes := pred.LeakNodes()
	if len(got.LeakNodes) != len(wantNodes) {
		t.Fatalf("leak nodes %v, offline %v", got.LeakNodes, wantNodes)
	}
	for i, v := range wantNodes {
		if got.LeakNodes[i] != v {
			t.Fatalf("leak nodes %v, offline %v", got.LeakNodes, wantNodes)
		}
		if got.LeakIDs[i] != testbed.net.Nodes[v].ID {
			t.Fatalf("leak id %q, want %q", got.LeakIDs[i], testbed.net.Nodes[v].ID)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	var re *RequestError

	if _, err := s.Submit(ObserveRequest{Features: []float64{1}}); !errors.As(err, &re) {
		t.Fatalf("short features: err = %v, want RequestError", err)
	}
	feats := testFeatures(s.System(), 1)
	if _, err := s.Submit(ObserveRequest{Features: feats, FrozenNodes: []int{99}}); !errors.As(err, &re) {
		t.Fatalf("out-of-range frozen node: err = %v, want RequestError", err)
	}
}

// TestWarmTemperatureDiscardsFreezeEvidence checks the weather gate: 60°F
// means no frost bursts, so frozen-node evidence must be dropped.
func TestWarmTemperatureDiscardsFreezeEvidence(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	feats := testFeatures(s.System(), 1)

	warm := 60.0
	obs, _, _, err := s.buildObservation(ObserveRequest{Features: feats, TemperatureF: &warm, FrozenNodes: []int{1}})
	if err != nil {
		t.Fatalf("buildObservation: %v", err)
	}
	if obs.Frozen != nil {
		t.Fatalf("warm observation kept frozen mask %v", obs.Frozen)
	}
	cold := 10.0
	obs, _, _, err = s.buildObservation(ObserveRequest{Features: feats, TemperatureF: &cold, FrozenNodes: []int{1}})
	if err != nil {
		t.Fatalf("buildObservation: %v", err)
	}
	if obs.Frozen == nil || !obs.Frozen[1] {
		t.Fatalf("cold observation lost frozen mask %v", obs.Frozen)
	}
}

// TestConcurrentLocalizeUnderHotSwap is the acceptance-bar race test:
// hundreds of concurrent in-flight localize requests against one shared
// System while the profile is hot-swapped under load.
func TestConcurrentLocalizeUnderHotSwap(t *testing.T) {
	const jobs = 500
	s := newTestServer(t, Config{Workers: 8, QueueSize: jobs})
	sys := s.System()
	feats := testFeatures(sys, 13)

	var wg sync.WaitGroup
	errCh := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(ObserveRequest{Features: feats, Seed: int64(i + 1)})
			if err != nil {
				errCh <- err
				return
			}
			<-j.Done()
			if _, _, err := j.Status(); err != nil {
				errCh <- err
			}
		}(i)
	}
	// Hot-swap the profile repeatedly while the requests are in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := s.SwapProfile(testbed.profile); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	<-done
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent serving: %v", err)
	}
	if got := s.Status().Done; got != jobs {
		t.Fatalf("jobs done = %d, want %d", got, jobs)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// One worker pinned on a slow job, a queue of 2: the 4th submission
	// (1 running + 2 queued) must be refused with ErrQueueFull.
	s := newTestServer(t, Config{
		Workers:        1,
		QueueSize:      2,
		RequestTimeout: 30 * time.Second,
		Faults:         faults.Config{RequestSlow: 1, RequestDelay: 500 * time.Millisecond},
	})
	feats := testFeatures(s.System(), 13)

	var accepted []*Job
	var sawFull bool
	for i := 0; i < 10; i++ {
		j, err := s.Submit(ObserveRequest{Features: feats, Seed: int64(i + 1)})
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		accepted = append(accepted, j)
	}
	if !sawFull {
		t.Fatal("never hit ErrQueueFull with a 2-deep queue and one slow worker")
	}
	if len(accepted) > 3 {
		t.Fatalf("accepted %d jobs, want at most 1 running + 2 queued", len(accepted))
	}
	for _, j := range accepted {
		waitResult(t, j)
	}
}

// TestDrain proves the shutdown contract: in-flight requests finish,
// queued ones fail with ErrDraining, new submissions are refused.
func TestDrain(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:        1,
		QueueSize:      8,
		RequestTimeout: 30 * time.Second,
		Faults:         faults.Config{RequestSlow: 1, RequestDelay: 400 * time.Millisecond},
	})
	feats := testFeatures(s.System(), 13)

	inflight, err := s.Submit(ObserveRequest{Features: feats, Seed: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Let the single worker pick the job up before draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if state, _, _ := inflight.Status(); state == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var queued []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(ObserveRequest{Features: feats, Seed: int64(i + 2)})
		if err != nil {
			t.Fatalf("Submit queued: %v", err)
		}
		queued = append(queued, j)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The in-flight job finished normally.
	state, res, err := inflight.Status()
	if err != nil || state != JobDone || res == nil {
		t.Fatalf("in-flight job: state %v, res %v, err %v; want done", state, res, err)
	}
	// Every queued job failed with ErrDraining.
	for _, j := range queued {
		_, _, err := j.Status()
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("queued job err = %v, want ErrDraining", err)
		}
	}
	// New submissions are refused.
	if _, err := s.Submit(ObserveRequest{Features: feats}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit err = %v, want ErrDraining", err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestResultEviction(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueSize: 16, ResultCap: 2})
	feats := testFeatures(s.System(), 13)

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(ObserveRequest{Features: feats, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitResult(t, j)
		jobs = append(jobs, j)
	}
	if s.Lookup(jobs[0].ID()) != nil {
		t.Fatal("oldest finished job should have been evicted")
	}
	if s.Lookup(jobs[3].ID()) == nil {
		t.Fatal("newest finished job should be retrievable")
	}
}

func TestInjectedRequestFailure(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1,
		Faults:  faults.Config{RequestFail: 1},
	})
	j, err := s.Submit(ObserveRequest{Features: testFeatures(s.System(), 13), Seed: 4})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-j.Done()
	if _, _, err := j.Status(); !errors.Is(err, faults.ErrInjectedFailure) {
		t.Fatalf("err = %v, want ErrInjectedFailure", err)
	}
	if got := s.Status().Failed; got != 1 {
		t.Fatalf("failed count = %d, want 1", got)
	}
}

// ---- HTTP layer ----

func postObserve(t *testing.T, ts *httptest.Server, req ObserveRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/observe: %v", err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) jobResponse {
	t.Helper()
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode job response: %v", err)
	}
	return jr
}

func TestHTTPRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	feats := testFeatures(s.System(), 13)

	// Async submit → 202 + Location, then poll until done.
	resp := postObserve(t, ts, ObserveRequest{Features: feats, Seed: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	jr := decodeJob(t, resp)
	if jr.Job == "" || loc != "/v1/localize/"+jr.Job {
		t.Fatalf("job %q, location %q", jr.Job, loc)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := ts.Client().Get(ts.URL + loc)
		if err != nil {
			t.Fatalf("GET %s: %v", loc, err)
		}
		got := decodeJob(t, r)
		if got.State == JobDone {
			if r.StatusCode != http.StatusOK || got.Result == nil {
				t.Fatalf("done poll: status %d, result %v", r.StatusCode, got.Result)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Synchronous submit matches the async result shape.
	resp = postObserve(t, ts, ObserveRequest{Features: feats, Seed: 1, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait status = %d, want 200", resp.StatusCode)
	}
	if jr := decodeJob(t, resp); jr.State != JobDone || jr.Result == nil {
		t.Fatalf("wait response: state %q, result %v", jr.State, jr.Result)
	}

	// Status endpoint.
	r, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatalf("GET /v1/status: %v", err)
	}
	var st Status
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	r.Body.Close()
	if st.Network != testbed.net.Name || st.Sensors != len(feats) || st.Technique != "linear" {
		t.Fatalf("status = %+v", st)
	}

	// Unknown job → 404; bad body → 400; wrong method → 405.
	if r, _ := ts.Client().Get(ts.URL + "/v1/localize/j-404"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", r.StatusCode)
	}
	r, err = ts.Client().Post(ts.URL+"/v1/observe", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("bad body POST: %v", err)
	}
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", r.StatusCode)
	}
	if r, _ := ts.Client().Get(ts.URL + "/v1/observe"); r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET observe status = %d, want 405", r.StatusCode)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:        1,
		QueueSize:      1,
		RequestTimeout: 30 * time.Second,
		RetryAfter:     2 * time.Second,
		Faults:         faults.Config{RequestSlow: 1, RequestDelay: 500 * time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	feats := testFeatures(s.System(), 13)

	var saw429 bool
	for i := 0; i < 6; i++ {
		resp := postObserve(t, ts, ObserveRequest{Features: feats, Seed: int64(i + 1)})
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("429 without Retry-After")
			}
			saw429 = true
			resp.Body.Close()
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status = %d, want 202 or 429", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Fatal("never saw 429 past the queue bound")
	}
}

// TestHTTPDrain drives the shutdown contract through httptest: the
// in-flight wait request completes 200, queued jobs answer 503, and a
// post-drain POST answers 503.
func TestHTTPDrain(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:        1,
		QueueSize:      8,
		RequestTimeout: 30 * time.Second,
		Faults:         faults.Config{RequestSlow: 1, RequestDelay: 400 * time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	feats := testFeatures(s.System(), 13)

	// In-flight synchronous request on the only worker. No t.Fatalf in
	// the goroutine — failures are reported through the channel.
	type waitOut struct {
		code int
		jr   jobResponse
		err  error
	}
	waitCh := make(chan waitOut, 1)
	go func() {
		body, _ := json.Marshal(ObserveRequest{Features: feats, Seed: 1, Wait: true})
		resp, err := ts.Client().Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(body))
		if err != nil {
			waitCh <- waitOut{err: err}
			return
		}
		defer resp.Body.Close()
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			waitCh <- waitOut{err: err}
			return
		}
		waitCh <- waitOut{code: resp.StatusCode, jr: jr}
	}()

	// Wait until the worker holds it, then queue more behind it.
	deadline := time.Now().Add(5 * time.Second)
	for s.Status().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var queuedIDs []string
	for i := 0; i < 3; i++ {
		resp := postObserve(t, ts, ObserveRequest{Features: feats, Seed: int64(i + 2)})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued submit status = %d, want 202", resp.StatusCode)
		}
		queuedIDs = append(queuedIDs, decodeJob(t, resp).Job)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The in-flight request finished with a real result.
	out := <-waitCh
	if out.err != nil {
		t.Fatalf("in-flight wait request: %v", out.err)
	}
	if out.code != http.StatusOK || out.jr.State != JobDone || out.jr.Result == nil {
		t.Fatalf("in-flight wait: code %d, state %q, result %v; want 200/done", out.code, out.jr.State, out.jr.Result)
	}
	// Queued jobs report 503 with the draining error.
	for _, id := range queuedIDs {
		r, err := ts.Client().Get(ts.URL + "/v1/localize/" + id)
		if err != nil {
			t.Fatalf("GET queued job: %v", err)
		}
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("queued job status = %d, want 503", r.StatusCode)
		}
		r.Body.Close()
	}
	// A fresh POST is refused with 503.
	resp := postObserve(t, ts, ObserveRequest{Features: feats})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain POST status = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHTTPProfileHotSwap reloads the profile over HTTP while requests
// stream against the server.
func TestHTTPProfileHotSwap(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueSize: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	feats := testFeatures(s.System(), 13)

	var buf bytes.Buffer
	if err := testbed.profile.Save(&buf); err != nil {
		t.Fatalf("save profile: %v", err)
	}
	profileBytes := buf.Bytes()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(ObserveRequest{Features: feats, Seed: int64(i + 1), Wait: true})
			resp, err := ts.Client().Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(body))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("observe status %d", resp.StatusCode)
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/profile", "application/octet-stream",
			bytes.NewReader(profileBytes))
		if err != nil {
			t.Fatalf("POST /v1/profile: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("profile swap status = %d, want 200", resp.StatusCode)
		}
		resp.Body.Close()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("request under hot swap: %v", err)
	}
	if got := s.Status().ProfileSwaps; got != 8 {
		t.Fatalf("profile swaps = %d, want 8", got)
	}

	// Garbage body → 400.
	resp, err := ts.Client().Post(ts.URL+"/v1/profile", "application/octet-stream",
		strings.NewReader("not a profile"))
	if err != nil {
		t.Fatalf("POST garbage profile: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage profile status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}
