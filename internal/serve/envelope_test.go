package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestErrorEnvelopeUniform pins the documented contract: every non-2xx
// answer from the single-district and fleet handlers decodes as
// {"code": "<machine-readable>", "error": "<message>"}, with the code
// derived from the status unless a handler overrides it.
func TestErrorEnvelopeUniform(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueSize: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	f := newTestFleet(t, Config{Workers: 2, QueueSize: 4})
	fs := httptest.NewServer(f.Handler())
	defer fs.Close()

	cases := []struct {
		name   string
		url    string
		method string
		body   string
		status int
		code   string
	}{
		{"bad observe body", srv.URL + "/v1/observe", "POST", "{not json", http.StatusBadRequest, "bad_request"},
		{"unknown feature count", srv.URL + "/v1/observe", "POST", `{"features":[1]}`, http.StatusBadRequest, "bad_request"},
		{"unknown job", srv.URL + "/v1/localize/j-nope", "GET", "", http.StatusNotFound, "not_found"},
		{"unknown trace", srv.URL + "/v1/trace/j-nope", "GET", "", http.StatusNotFound, "not_found"},
		{"bad profile body", srv.URL + "/v1/profile", "POST", "garbage", http.StatusBadRequest, "bad_request"},
		{"unknown district observe", fs.URL + "/v1/districts/nowhere/observe", "POST", `{"features":[]}`, http.StatusNotFound, "not_found"},
		{"unknown district status", fs.URL + "/v1/districts/nowhere/status", "GET", "", http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.url, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("%s %s: %v", tc.method, tc.url, err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			var env struct {
				Code  string `json:"code"`
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("non-envelope body: %v", err)
			}
			if env.Code != tc.code || env.Error == "" {
				t.Fatalf("envelope = %+v, want code %q and a message", env, tc.code)
			}
		})
	}
}
