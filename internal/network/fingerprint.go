package network

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"time"
)

// Fingerprint returns a stable FNV-1a hash of everything that determines
// the network's hydraulic behavior: name, node attributes (including tank
// geometry), link attributes (including pump curves), demand patterns and
// the pattern step. Two networks with equal fingerprints produce equal
// quiescent baselines, which is what lets the serving layer key its
// memoized baseline on (fingerprint, pattern hour) and survive network
// swaps without serving stale readings.
func (n *Network) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}

	str(n.Name)
	u64(uint64(n.PatternStep / time.Nanosecond))

	u64(uint64(len(n.Nodes)))
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		str(nd.ID)
		u64(uint64(nd.Type))
		f64(nd.Elevation)
		f64(nd.X)
		f64(nd.Y)
		f64(nd.BaseDemand)
		str(nd.PatternID)
		f64(nd.TankDiameter)
		f64(nd.InitLevel)
		f64(nd.MinLevel)
		f64(nd.MaxLevel)
	}

	u64(uint64(len(n.Links)))
	for i := range n.Links {
		l := &n.Links[i]
		str(l.ID)
		u64(uint64(l.Type))
		u64(uint64(l.From))
		u64(uint64(l.To))
		u64(uint64(l.Status))
		f64(l.Length)
		f64(l.Diameter)
		f64(l.Roughness)
		f64(l.MinorLoss)
		f64(l.PumpH0)
		f64(l.PumpR)
		f64(l.PumpN)
	}

	// Map iteration order is randomized; hash patterns in sorted-id order.
	ids := make([]string, 0, len(n.Patterns))
	for id := range n.Patterns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	u64(uint64(len(ids)))
	for _, id := range ids {
		p := n.Patterns[id]
		str(id)
		u64(uint64(len(p.Multipliers)))
		for _, m := range p.Multipliers {
			f64(m)
		}
	}
	return h.Sum64()
}
