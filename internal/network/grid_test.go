package network

import "testing"

func TestBuildGridCounts(t *testing.T) {
	cfg := GridConfig{Rows: 10, Cols: 10}
	n := BuildGrid(cfg)
	if got := n.JunctionCount(); got != 100 {
		t.Fatalf("JunctionCount = %d, want 100", got)
	}
	reservoirs := 0
	for i := range n.Nodes {
		if n.Nodes[i].Type == Reservoir {
			reservoirs++
		}
	}
	if reservoirs != 1 {
		t.Fatalf("reservoirs = %d, want 1", reservoirs)
	}
	// Spanning tree + 6% loops + one riser per source.
	wantLinks := 99 + 6 + 1
	if got := len(n.Links); got != wantLinks {
		t.Fatalf("links = %d, want %d", got, wantLinks)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildGridSourcesScale(t *testing.T) {
	n := BuildGrid(GridConfig{Rows: 45, Cols: 45}) // 2025 junctions → 4 sources
	reservoirs := 0
	for i := range n.Nodes {
		if n.Nodes[i].Type == Reservoir {
			reservoirs++
		}
	}
	if reservoirs != 4 {
		t.Fatalf("reservoirs = %d, want 4", reservoirs)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildGridConnected(t *testing.T) {
	n := BuildGrid(GridConfig{Rows: 12, Cols: 9, Sources: 2})
	if !n.Graph().Connected() {
		t.Fatal("grid network is not connected")
	}
}

func TestBuildGridDeterministic(t *testing.T) {
	a := BuildGrid(GridConfig{Rows: 8, Cols: 11, Seed: 7})
	b := BuildGrid(GridConfig{Rows: 8, Cols: 11, Seed: 7})
	if len(a.Nodes) != len(b.Nodes) || len(a.Links) != len(b.Links) {
		t.Fatalf("element counts differ: %d/%d vs %d/%d",
			len(a.Nodes), len(a.Links), len(b.Nodes), len(b.Links))
	}
	for i := range a.Nodes {
		if a.Nodes[i].Elevation != b.Nodes[i].Elevation || a.Nodes[i].BaseDemand != b.Nodes[i].BaseDemand {
			t.Fatalf("node %d differs between identical builds", i)
		}
	}
	for i := range a.Links {
		if a.Links[i].From != b.Links[i].From || a.Links[i].Diameter != b.Links[i].Diameter ||
			a.Links[i].Roughness != b.Links[i].Roughness {
			t.Fatalf("link %d differs between identical builds", i)
		}
	}
	c := BuildGrid(GridConfig{Rows: 8, Cols: 11, Seed: 8})
	same := true
	for i := range a.Links {
		if a.Links[i].From != c.Links[i].From || a.Links[i].To != c.Links[i].To {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical pipe selections")
	}
}

func TestBuildGridInvalid(t *testing.T) {
	for _, cfg := range []GridConfig{
		{Rows: 1, Cols: 10},
		{Rows: 10, Cols: 0},
		{Rows: 2, Cols: 2, Sources: 5}, // sources collide on a tiny grid
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BuildGrid(%+v) should panic", cfg)
				}
			}()
			BuildGrid(cfg)
		}()
	}
}
