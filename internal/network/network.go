// Package network models community water distribution networks: junctions,
// reservoirs and tanks connected by pipes, pumps and valves, with diurnal
// demand patterns and pump head curves.
//
// The package also ships deterministic builders for the two networks the
// paper evaluates on — the canonical EPA-NET network (96 nodes, 118 pipes,
// 2 pumps, 1 valve, 3 tanks, 2 sources) and WSSC-SUBNET (299 nodes, 316
// pipes, 2 valves, 1 source) — plus a reader/writer for a practical subset
// of the EPANET INP file format.
//
// All quantities are SI: meters, cubic meters per second, meters of head.
package network

import (
	"fmt"
	"math"
	"time"

	"github.com/aquascale/aquascale/internal/graph"
)

// NodeType distinguishes junctions from fixed-grade nodes.
type NodeType int

// Node types. Junction heads are unknowns solved by the hydraulic engine;
// reservoirs are fixed-grade; tanks are fixed-grade within a hydraulic step
// with levels integrated between steps.
const (
	Junction NodeType = iota + 1
	Reservoir
	Tank
)

// String implements fmt.Stringer.
func (t NodeType) String() string {
	switch t {
	case Junction:
		return "junction"
	case Reservoir:
		return "reservoir"
	case Tank:
		return "tank"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// LinkType distinguishes pipes, pumps and valves.
type LinkType int

// Link types.
const (
	Pipe LinkType = iota + 1
	Pump
	Valve
)

// String implements fmt.Stringer.
func (t LinkType) String() string {
	switch t {
	case Pipe:
		return "pipe"
	case Pump:
		return "pump"
	case Valve:
		return "valve"
	default:
		return fmt.Sprintf("LinkType(%d)", int(t))
	}
}

// LinkStatus is the operational status of a link.
type LinkStatus int

// Link statuses.
const (
	Open LinkStatus = iota + 1
	Closed
)

// String implements fmt.Stringer.
func (s LinkStatus) String() string {
	if s == Closed {
		return "closed"
	}
	return "open"
}

// Node is a vertex of the water network.
type Node struct {
	ID   string
	Type NodeType

	// Elevation of the node invert in meters. For reservoirs this is the
	// fixed hydraulic grade line.
	Elevation float64

	// X, Y are plan coordinates in meters, used for sensor-clique geometry
	// and DEM interpolation.
	X, Y float64

	// BaseDemand is the average consumption at a junction in m³/s,
	// modulated by the demand pattern.
	BaseDemand float64

	// PatternID names the demand pattern; empty means constant demand.
	PatternID string

	// Tank geometry (cylindrical). Levels are measured above Elevation.
	TankDiameter float64
	InitLevel    float64
	MinLevel     float64
	MaxLevel     float64
}

// Link is an edge of the water network.
type Link struct {
	ID     string
	Type   LinkType
	From   int // index into Network.Nodes
	To     int
	Status LinkStatus

	// Pipe attributes.
	Length    float64 // m
	Diameter  float64 // m
	Roughness float64 // Hazen-Williams C
	MinorLoss float64 // dimensionless minor-loss coefficient

	// Pump head curve H = H0 − R·Q^N (H in m, Q in m³/s), valid for Q ≥ 0.
	PumpH0 float64
	PumpR  float64
	PumpN  float64
}

// Pattern is a repeating multiplier sequence applied to base demand.
type Pattern struct {
	ID          string
	Multipliers []float64
}

// At returns the multiplier at elapsed time t for the given pattern step.
// Patterns repeat cyclically; an empty pattern yields 1.0.
func (p Pattern) At(t, step time.Duration) float64 {
	if len(p.Multipliers) == 0 || step <= 0 {
		return 1.0
	}
	idx := int(t/step) % len(p.Multipliers)
	if idx < 0 {
		idx += len(p.Multipliers)
	}
	return p.Multipliers[idx]
}

// Network is a complete water distribution network.
type Network struct {
	Name  string
	Nodes []Node
	Links []Link

	// Patterns maps pattern id to its multiplier sequence.
	Patterns map[string]Pattern

	// PatternStep is the duration each pattern multiplier spans.
	PatternStep time.Duration

	nodeIndex map[string]int
	linkIndex map[string]int
}

// New creates an empty network.
func New(name string) *Network {
	return &Network{
		Name:        name,
		Patterns:    make(map[string]Pattern),
		PatternStep: time.Hour,
		nodeIndex:   make(map[string]int),
		linkIndex:   make(map[string]int),
	}
}

// AddNode appends a node and returns its index. Duplicate ids are rejected.
func (n *Network) AddNode(node Node) (int, error) {
	if node.ID == "" {
		return 0, fmt.Errorf("network: node with empty id")
	}
	if _, dup := n.nodeIndex[node.ID]; dup {
		return 0, fmt.Errorf("network: duplicate node id %q", node.ID)
	}
	idx := len(n.Nodes)
	n.Nodes = append(n.Nodes, node)
	n.nodeIndex[node.ID] = idx
	return idx, nil
}

// AddLink appends a link and returns its index. Endpoints must exist.
func (n *Network) AddLink(link Link) (int, error) {
	if link.ID == "" {
		return 0, fmt.Errorf("network: link with empty id")
	}
	if _, dup := n.linkIndex[link.ID]; dup {
		return 0, fmt.Errorf("network: duplicate link id %q", link.ID)
	}
	if link.From < 0 || link.From >= len(n.Nodes) || link.To < 0 || link.To >= len(n.Nodes) {
		return 0, fmt.Errorf("network: link %q endpoints (%d,%d) out of range", link.ID, link.From, link.To)
	}
	if link.From == link.To {
		return 0, fmt.Errorf("network: link %q is a self-loop at node %d", link.ID, link.From)
	}
	if link.Status == 0 {
		link.Status = Open
	}
	idx := len(n.Links)
	n.Links = append(n.Links, link)
	n.linkIndex[link.ID] = idx
	return idx, nil
}

// NodeIndex returns the index of the node with the given id.
func (n *Network) NodeIndex(id string) (int, bool) {
	idx, ok := n.nodeIndex[id]
	return idx, ok
}

// LinkIndex returns the index of the link with the given id.
func (n *Network) LinkIndex(id string) (int, bool) {
	idx, ok := n.linkIndex[id]
	return idx, ok
}

// PatternMultiplier returns the demand multiplier for the given pattern id
// at elapsed time t (1.0 when the id is empty or unknown).
func (n *Network) PatternMultiplier(id string, t time.Duration) float64 {
	if id == "" {
		return 1.0
	}
	p, ok := n.Patterns[id]
	if !ok {
		return 1.0
	}
	return p.At(t, n.PatternStep)
}

// DemandAt returns node i's consumption in m³/s at elapsed time t.
func (n *Network) DemandAt(i int, t time.Duration) float64 {
	node := &n.Nodes[i]
	if node.Type != Junction {
		return 0
	}
	return node.BaseDemand * n.PatternMultiplier(node.PatternID, t)
}

// JunctionCount returns the number of junction nodes.
func (n *Network) JunctionCount() int { return n.countNodes(Junction) }

// ReservoirCount returns the number of reservoir nodes.
func (n *Network) ReservoirCount() int { return n.countNodes(Reservoir) }

// TankCount returns the number of tank nodes.
func (n *Network) TankCount() int { return n.countNodes(Tank) }

func (n *Network) countNodes(t NodeType) int {
	c := 0
	for i := range n.Nodes {
		if n.Nodes[i].Type == t {
			c++
		}
	}
	return c
}

// PipeCount returns the number of pipe links.
func (n *Network) PipeCount() int { return n.countLinks(Pipe) }

// PumpCount returns the number of pump links.
func (n *Network) PumpCount() int { return n.countLinks(Pump) }

// ValveCount returns the number of valve links.
func (n *Network) ValveCount() int { return n.countLinks(Valve) }

func (n *Network) countLinks(t LinkType) int {
	c := 0
	for i := range n.Links {
		if n.Links[i].Type == t {
			c++
		}
	}
	return c
}

// Graph converts the network to a weighted undirected graph over node
// indices, with pipe length as the edge weight (pumps and valves get a
// nominal short length so they do not distort path distances). Closed
// links are excluded.
func (n *Network) Graph() *graph.Graph {
	g := graph.New(len(n.Nodes))
	for i := range n.Links {
		l := &n.Links[i]
		if l.Status == Closed {
			continue
		}
		w := l.Length
		if l.Type != Pipe || w <= 0 {
			w = 1 // nominal device length in meters
		}
		// Endpoints were validated at AddLink time.
		_ = g.AddEdge(l.From, l.To, w)
	}
	return g
}

// Distance returns the Euclidean plan distance between nodes i and j.
func (n *Network) Distance(i, j int) float64 {
	dx := n.Nodes[i].X - n.Nodes[j].X
	dy := n.Nodes[i].Y - n.Nodes[j].Y
	return math.Hypot(dx, dy)
}

// TotalBaseDemand sums all junction base demands (m³/s).
func (n *Network) TotalBaseDemand() float64 {
	total := 0.0
	for i := range n.Nodes {
		if n.Nodes[i].Type == Junction {
			total += n.Nodes[i].BaseDemand
		}
	}
	return total
}

// Clone returns a deep copy of the network. The copy can be mutated (e.g.
// injecting leak emitters, closing valves) without affecting the original.
func (n *Network) Clone() *Network {
	out := New(n.Name)
	out.PatternStep = n.PatternStep
	out.Nodes = make([]Node, len(n.Nodes))
	copy(out.Nodes, n.Nodes)
	out.Links = make([]Link, len(n.Links))
	copy(out.Links, n.Links)
	for id, p := range n.Patterns {
		mult := make([]float64, len(p.Multipliers))
		copy(mult, p.Multipliers)
		out.Patterns[id] = Pattern{ID: p.ID, Multipliers: mult}
	}
	for id, idx := range n.nodeIndex {
		out.nodeIndex[id] = idx
	}
	for id, idx := range n.linkIndex {
		out.linkIndex[id] = idx
	}
	return out
}

// JunctionIndices returns the indices of all junction nodes in order.
func (n *Network) JunctionIndices() []int {
	out := make([]int, 0, len(n.Nodes))
	for i := range n.Nodes {
		if n.Nodes[i].Type == Junction {
			out = append(out, i)
		}
	}
	return out
}
