package network

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

const sampleINP = `
[TITLE]
Sample Network

[JUNCTIONS]
;ID  Elev  Demand  Pattern
J1   10.0  1.5     diurnal
J2   12.0  0.8
J3   8.0   0.0

[RESERVOIRS]
R1   60.0

[TANKS]
T1   50.0  3.0  0.5  6.0  15.0

[PIPES]
;ID  N1  N2  Len  Dia-mm  Rough
P1   R1  J1  500  400     110
P2   J1  J2  300  250     100  0.5
P3   J2  J3  300  200     95   0.0  Closed
P4   T1  J2  100  300     120

[PUMPS]
PU1  R1  J3  H0 50 R 1000 N 2

[VALVES]
V1   J1  J3  250  TCV  2.5

[PATTERNS]
diurnal 0.5 1.0
diurnal 1.5 1.0

[STATUS]
P2 Closed

[COORDINATES]
J1  0    0
J2  300  0
J3  600  0
R1  -500 0
T1  300  300

[TIMES]
PATTERN TIMESTEP 2:00

[OPTIONS]
UNITS LPS

[END]
`

func TestReadINP(t *testing.T) {
	n, err := ReadINP(strings.NewReader(sampleINP))
	if err != nil {
		t.Fatalf("ReadINP: %v", err)
	}
	if n.Name != "Sample Network" {
		t.Fatalf("name = %q", n.Name)
	}
	if n.JunctionCount() != 3 || n.ReservoirCount() != 1 || n.TankCount() != 1 {
		t.Fatalf("node counts wrong: %d/%d/%d", n.JunctionCount(), n.ReservoirCount(), n.TankCount())
	}
	if n.PipeCount() != 4 || n.PumpCount() != 1 || n.ValveCount() != 1 {
		t.Fatalf("link counts wrong: %d/%d/%d", n.PipeCount(), n.PumpCount(), n.ValveCount())
	}

	j1, _ := n.NodeIndex("J1")
	if got := n.Nodes[j1].BaseDemand; math.Abs(got-0.0015) > 1e-12 {
		t.Fatalf("J1 demand = %v, want 0.0015 (1.5 LPS)", got)
	}
	if n.Nodes[j1].PatternID != "diurnal" {
		t.Fatalf("J1 pattern = %q", n.Nodes[j1].PatternID)
	}
	if n.Nodes[j1].X != 0 || n.Nodes[j1].Y != 0 {
		t.Fatalf("J1 coords = %v,%v", n.Nodes[j1].X, n.Nodes[j1].Y)
	}

	p2, _ := n.LinkIndex("P2")
	if n.Links[p2].Status != Closed {
		t.Fatal("P2 should be closed via [STATUS]")
	}
	if math.Abs(n.Links[p2].Diameter-0.250) > 1e-12 {
		t.Fatalf("P2 diameter = %v, want 0.250", n.Links[p2].Diameter)
	}
	if n.Links[p2].MinorLoss != 0.5 {
		t.Fatalf("P2 minor loss = %v", n.Links[p2].MinorLoss)
	}
	p3, _ := n.LinkIndex("P3")
	if n.Links[p3].Status != Closed {
		t.Fatal("P3 should be closed via inline status")
	}

	pu, _ := n.LinkIndex("PU1")
	l := n.Links[pu]
	if l.PumpH0 != 50 || l.PumpR != 1000 || l.PumpN != 2 {
		t.Fatalf("pump curve = %v/%v/%v", l.PumpH0, l.PumpR, l.PumpN)
	}

	pat, ok := n.Patterns["diurnal"]
	if !ok || len(pat.Multipliers) != 4 {
		t.Fatalf("pattern = %+v", pat)
	}
	if n.PatternStep != 2*time.Hour {
		t.Fatalf("pattern step = %v, want 2h", n.PatternStep)
	}

	t1, _ := n.NodeIndex("T1")
	tank := n.Nodes[t1]
	if tank.InitLevel != 3 || tank.MinLevel != 0.5 || tank.MaxLevel != 6 || tank.TankDiameter != 15 {
		t.Fatalf("tank fields = %+v", tank)
	}
}

func TestReadINPErrors(t *testing.T) {
	cases := []struct {
		name string
		inp  string
	}{
		{"unterminated section", "[JUNCTIONS\nJ1 1\n"},
		{"bad number", "[JUNCTIONS]\nJ1 abc\n"},
		{"junction too short", "[JUNCTIONS]\nJ1\n"},
		{"unknown node ref", "[PIPES]\nP1 A B 10 100 100\n"},
		{"unknown pump keyword", "[JUNCTIONS]\nJ1 1\nJ2 2\n[PUMPS]\nPU J1 J2 XX 5\n"},
		{"bad status", "[JUNCTIONS]\nJ1 1\n[STATUS]\nP1 half\n"},
		{"bad units", "[OPTIONS]\nUNITS GPM\n"},
		{"tank too short", "[TANKS]\nT1 10 1 0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadINP(strings.NewReader(c.inp)); err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
		})
	}
}

func TestParseINPErrorHasLine(t *testing.T) {
	_, err := ReadINP(strings.NewReader("[JUNCTIONS]\nJ1 notanumber\n"))
	var pe *ParseINPError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *ParseINPError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

// TestParseClock covers the clock formats EPANET emits in [TIMES]:
// "H:MM", "H:MM:SS", plain fractional hours, and 12-hour AM/PM (attached
// or space-separated). The seconds and meridiem forms used to be
// rejected, which silently left PatternStep at its default for real
// exported files.
func TestParseClock(t *testing.T) {
	good := []struct {
		in   string
		want time.Duration
	}{
		{"2:00", 2 * time.Hour},
		{"1:30", 90 * time.Minute},
		{"0:15", 15 * time.Minute},
		{"0:15:30", 15*time.Minute + 30*time.Second},
		{"1:02:03", time.Hour + 2*time.Minute + 3*time.Second},
		{"24:00:00", 24 * time.Hour},
		{"2", 2 * time.Hour},
		{"1.5", 90 * time.Minute},
		{"12 AM", 0},
		{"12 PM", 12 * time.Hour},
		{"12:30 AM", 30 * time.Minute},
		{"6:30 PM", 18*time.Hour + 30*time.Minute},
		{"6:30PM", 18*time.Hour + 30*time.Minute},
		{"6:30:15 pm", 18*time.Hour + 30*time.Minute + 15*time.Second},
		{"9 am", 9 * time.Hour},
		{" 3:45 ", 3*time.Hour + 45*time.Minute},
	}
	for _, tc := range good {
		d, err := parseClock(tc.in)
		if err != nil {
			t.Errorf("parseClock(%q): %v", tc.in, err)
			continue
		}
		if d != tc.want {
			t.Errorf("parseClock(%q) = %v, want %v", tc.in, d, tc.want)
		}
	}
	bad := []string{
		"", "abc", "1:xx", "7:65", "1:02:60", "-1:00", "1:-5",
		"13 PM", "0:30 AM", "1:2:3:4", "1.5:00",
	}
	for _, in := range bad {
		if d, err := parseClock(in); err == nil {
			t.Errorf("parseClock(%q) = %v, want error", in, d)
		}
	}
}

// TestReadINPPatternTimestepFormats checks the [TIMES] parser end to end,
// including EPANET's space-separated meridiem field.
func TestReadINPPatternTimestepFormats(t *testing.T) {
	cases := []struct {
		line string
		want time.Duration
	}{
		{"PATTERN TIMESTEP 0:15:30", 15*time.Minute + 30*time.Second},
		{"PATTERN TIMESTEP 6:30 PM", 18*time.Hour + 30*time.Minute},
		{"Pattern Timestep 1:30 am", 90 * time.Minute},
		{"PATTERN TIMESTEP 1.5", 90 * time.Minute},
	}
	for _, tc := range cases {
		n, err := ReadINP(strings.NewReader("[TIMES]\n" + tc.line + "\n"))
		if err != nil {
			t.Errorf("ReadINP(%q): %v", tc.line, err)
			continue
		}
		if n.PatternStep != tc.want {
			t.Errorf("%q: PatternStep = %v, want %v", tc.line, n.PatternStep, tc.want)
		}
	}
	if _, err := ReadINP(strings.NewReader("[TIMES]\nPATTERN TIMESTEP 13:00 PM\n")); err == nil {
		t.Error("invalid meridiem hour accepted")
	}
}

func TestINPRoundTrip(t *testing.T) {
	for _, build := range []func() *Network{BuildTestNet, BuildEPANet, BuildWSSCSubnet} {
		orig := build()
		var buf bytes.Buffer
		if err := WriteINP(&buf, orig); err != nil {
			t.Fatalf("WriteINP: %v", err)
		}
		got, err := ReadINP(&buf)
		if err != nil {
			t.Fatalf("ReadINP(%s): %v", orig.Name, err)
		}
		if got.Name != orig.Name {
			t.Fatalf("name = %q, want %q", got.Name, orig.Name)
		}
		if len(got.Nodes) != len(orig.Nodes) || len(got.Links) != len(orig.Links) {
			t.Fatalf("%s: sizes %d/%d, want %d/%d", orig.Name,
				len(got.Nodes), len(got.Links), len(orig.Nodes), len(orig.Links))
		}
		for id := range orig.Patterns {
			gp, ok := got.Patterns[id]
			if !ok {
				t.Fatalf("%s: lost pattern %q", orig.Name, id)
			}
			if len(gp.Multipliers) != len(orig.Patterns[id].Multipliers) {
				t.Fatalf("%s: pattern %q length changed", orig.Name, id)
			}
		}
		if got.PatternStep != orig.PatternStep {
			t.Fatalf("%s: pattern step %v, want %v", orig.Name, got.PatternStep, orig.PatternStep)
		}
		// Every original node survives with its type and near-equal elevation.
		for i := range orig.Nodes {
			on := &orig.Nodes[i]
			gi, ok := got.NodeIndex(on.ID)
			if !ok {
				t.Fatalf("%s: lost node %q", orig.Name, on.ID)
			}
			gn := &got.Nodes[gi]
			if gn.Type != on.Type {
				t.Fatalf("%s: node %q type %v, want %v", orig.Name, on.ID, gn.Type, on.Type)
			}
			if math.Abs(gn.Elevation-on.Elevation) > 1e-3 {
				t.Fatalf("%s: node %q elevation drifted: %v vs %v", orig.Name, on.ID, gn.Elevation, on.Elevation)
			}
			if math.Abs(gn.BaseDemand-on.BaseDemand) > 1e-9 {
				t.Fatalf("%s: node %q demand drifted", orig.Name, on.ID)
			}
		}
		for i := range orig.Links {
			ol := &orig.Links[i]
			gi, ok := got.LinkIndex(ol.ID)
			if !ok {
				t.Fatalf("%s: lost link %q", orig.Name, ol.ID)
			}
			gl := &got.Links[gi]
			if gl.Type != ol.Type || gl.Status != ol.Status {
				t.Fatalf("%s: link %q type/status changed", orig.Name, ol.ID)
			}
			if got.Nodes[gl.From].ID != orig.Nodes[ol.From].ID || got.Nodes[gl.To].ID != orig.Nodes[ol.To].ID {
				t.Fatalf("%s: link %q endpoints changed", orig.Name, ol.ID)
			}
			if ol.Type == Pipe && math.Abs(gl.Diameter-ol.Diameter) > 1e-6 {
				t.Fatalf("%s: pipe %q diameter drifted", orig.Name, ol.ID)
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: round-tripped network invalid: %v", orig.Name, err)
		}
	}
}
