package network

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements a reader and writer for a practical subset of the
// EPANET INP text format, so networks built here can be exchanged with
// EPANET-compatible tooling and real INP files can be loaded.
//
// Supported sections: [TITLE], [JUNCTIONS], [RESERVOIRS], [TANKS], [PIPES],
// [PUMPS], [VALVES], [PATTERNS], [STATUS], [COORDINATES], [TIMES],
// [OPTIONS]. Unknown sections are skipped. Metric units only (LPS demand,
// meters elevation/length, millimeters diameter), matching the repository's
// SI-internal convention. Pumps use the parametric curve H = H0 − R·Qᴺ
// written as keyword triples "H0 <v> R <v> N <v>".

// ParseINPError reports a parse failure with its line number.
type ParseINPError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseINPError) Error() string {
	return fmt.Sprintf("inp: line %d: %s", e.Line, e.Msg)
}

type inpParser struct {
	net     *Network
	section string
	lineNo  int

	// Link endpoints are recorded by id and resolved after all node
	// sections are read, since INP allows links before nodes.
	pendingLinks []pendingLink
	statuses     map[string]LinkStatus
	coords       map[string][2]float64
	patternAccum map[string][]float64
}

type pendingLink struct {
	line int
	link Link
	from string
	to   string
}

// ReadINP parses a subset of the EPANET INP format from r.
func ReadINP(r io.Reader) (*Network, error) {
	p := &inpParser{
		net:          New(""),
		statuses:     make(map[string]LinkStatus),
		coords:       make(map[string][2]float64),
		patternAccum: make(map[string][]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		p.lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			end := strings.IndexByte(line, ']')
			if end < 0 {
				return nil, &ParseINPError{Line: p.lineNo, Msg: "unterminated section header"}
			}
			p.section = strings.ToUpper(strings.TrimSpace(line[1:end]))
			continue
		}
		if err := p.handleLine(line); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("inp: read: %w", err)
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return p.net, nil
}

func (p *inpParser) errf(format string, args ...interface{}) error {
	return &ParseINPError{Line: p.lineNo, Msg: fmt.Sprintf(format, args...)}
}

func (p *inpParser) handleLine(line string) error {
	f := strings.Fields(line)
	switch p.section {
	case "TITLE":
		if p.net.Name == "" {
			p.net.Name = line
		}
	case "JUNCTIONS":
		return p.parseJunction(f)
	case "RESERVOIRS":
		return p.parseReservoir(f)
	case "TANKS":
		return p.parseTank(f)
	case "PIPES":
		return p.parsePipe(f)
	case "PUMPS":
		return p.parsePump(f)
	case "VALVES":
		return p.parseValve(f)
	case "PATTERNS":
		return p.parsePattern(f)
	case "STATUS":
		return p.parseStatus(f)
	case "COORDINATES":
		return p.parseCoordinate(f)
	case "TIMES":
		return p.parseTimes(f)
	case "OPTIONS":
		return p.parseOptions(f)
	default:
		// Unknown or unsupported section: skip silently.
	}
	return nil
}

func (p *inpParser) float(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, p.errf("invalid number %q", s)
	}
	return v, nil
}

func (p *inpParser) parseJunction(f []string) error {
	// ID  Elevation  [Demand-LPS]  [Pattern]
	if len(f) < 2 {
		return p.errf("junction needs at least id and elevation")
	}
	elev, err := p.float(f[1])
	if err != nil {
		return err
	}
	node := Node{ID: f[0], Type: Junction, Elevation: elev}
	if len(f) >= 3 {
		d, err := p.float(f[2])
		if err != nil {
			return err
		}
		node.BaseDemand = d / 1000.0 // LPS → m³/s
	}
	if len(f) >= 4 {
		node.PatternID = f[3]
	}
	if _, err := p.net.AddNode(node); err != nil {
		return p.errf("%v", err)
	}
	return nil
}

func (p *inpParser) parseReservoir(f []string) error {
	// ID  Head
	if len(f) < 2 {
		return p.errf("reservoir needs id and head")
	}
	head, err := p.float(f[1])
	if err != nil {
		return err
	}
	if _, err := p.net.AddNode(Node{ID: f[0], Type: Reservoir, Elevation: head}); err != nil {
		return p.errf("%v", err)
	}
	return nil
}

func (p *inpParser) parseTank(f []string) error {
	// ID  Elevation  InitLevel  MinLevel  MaxLevel  Diameter
	if len(f) < 6 {
		return p.errf("tank needs id, elevation, init/min/max level and diameter")
	}
	vals := make([]float64, 5)
	for i := 0; i < 5; i++ {
		v, err := p.float(f[i+1])
		if err != nil {
			return err
		}
		vals[i] = v
	}
	if _, err := p.net.AddNode(Node{
		ID: f[0], Type: Tank,
		Elevation: vals[0], InitLevel: vals[1], MinLevel: vals[2],
		MaxLevel: vals[3], TankDiameter: vals[4],
	}); err != nil {
		return p.errf("%v", err)
	}
	return nil
}

func (p *inpParser) parsePipe(f []string) error {
	// ID  Node1  Node2  Length-m  Diameter-mm  Roughness  [MinorLoss] [Status]
	if len(f) < 6 {
		return p.errf("pipe needs id, endpoints, length, diameter, roughness")
	}
	length, err := p.float(f[3])
	if err != nil {
		return err
	}
	diam, err := p.float(f[4])
	if err != nil {
		return err
	}
	rough, err := p.float(f[5])
	if err != nil {
		return err
	}
	link := Link{
		ID: f[0], Type: Pipe,
		Length: length, Diameter: diam / 1000.0, Roughness: rough,
	}
	if len(f) >= 7 {
		ml, err := p.float(f[6])
		if err != nil {
			return err
		}
		link.MinorLoss = ml
	}
	if len(f) >= 8 && strings.EqualFold(f[7], "closed") {
		link.Status = Closed
	}
	p.pendingLinks = append(p.pendingLinks, pendingLink{line: p.lineNo, link: link, from: f[1], to: f[2]})
	return nil
}

func (p *inpParser) parsePump(f []string) error {
	// ID  Node1  Node2  H0 <v>  R <v>  N <v>
	if len(f) < 3 {
		return p.errf("pump needs id and endpoints")
	}
	link := Link{ID: f[0], Type: Pump, PumpN: 2} // default exponent
	for i := 3; i+1 < len(f); i += 2 {
		v, err := p.float(f[i+1])
		if err != nil {
			return err
		}
		switch strings.ToUpper(f[i]) {
		case "H0":
			link.PumpH0 = v
		case "R":
			link.PumpR = v
		case "N":
			link.PumpN = v
		default:
			return p.errf("unknown pump keyword %q", f[i])
		}
	}
	p.pendingLinks = append(p.pendingLinks, pendingLink{line: p.lineNo, link: link, from: f[1], to: f[2]})
	return nil
}

func (p *inpParser) parseValve(f []string) error {
	// ID  Node1  Node2  Diameter-mm  Type  Setting  [MinorLoss]
	if len(f) < 6 {
		return p.errf("valve needs id, endpoints, diameter, type, setting")
	}
	diam, err := p.float(f[3])
	if err != nil {
		return err
	}
	setting, err := p.float(f[5])
	if err != nil {
		return err
	}
	link := Link{
		ID: f[0], Type: Valve,
		Diameter: diam / 1000.0, MinorLoss: setting, Length: 5,
	}
	p.pendingLinks = append(p.pendingLinks, pendingLink{line: p.lineNo, link: link, from: f[1], to: f[2]})
	return nil
}

func (p *inpParser) parsePattern(f []string) error {
	// ID  mult mult mult ...  (may span multiple lines)
	if len(f) < 2 {
		return p.errf("pattern needs id and at least one multiplier")
	}
	for _, s := range f[1:] {
		v, err := p.float(s)
		if err != nil {
			return err
		}
		p.patternAccum[f[0]] = append(p.patternAccum[f[0]], v)
	}
	return nil
}

func (p *inpParser) parseStatus(f []string) error {
	// LinkID  Open|Closed
	if len(f) < 2 {
		return p.errf("status needs link id and state")
	}
	switch strings.ToLower(f[1]) {
	case "open":
		p.statuses[f[0]] = Open
	case "closed":
		p.statuses[f[0]] = Closed
	default:
		return p.errf("unknown status %q", f[1])
	}
	return nil
}

func (p *inpParser) parseCoordinate(f []string) error {
	// NodeID  X  Y
	if len(f) < 3 {
		return p.errf("coordinate needs node id, x, y")
	}
	x, err := p.float(f[1])
	if err != nil {
		return err
	}
	y, err := p.float(f[2])
	if err != nil {
		return err
	}
	p.coords[f[0]] = [2]float64{x, y}
	return nil
}

func (p *inpParser) parseTimes(f []string) error {
	// PATTERN TIMESTEP h:mm[:ss] [AM|PM]  (other TIMES lines ignored)
	if len(f) >= 3 && strings.EqualFold(f[0], "pattern") && strings.EqualFold(f[1], "timestep") {
		clock := f[2]
		// EPANET writes the meridiem as its own field ("6:30 PM").
		if len(f) >= 4 && (strings.EqualFold(f[3], "am") || strings.EqualFold(f[3], "pm")) {
			clock += " " + f[3]
		}
		d, err := parseClock(clock)
		if err != nil {
			return p.errf("%v", err)
		}
		p.net.PatternStep = d
	}
	return nil
}

func (p *inpParser) parseOptions(f []string) error {
	if len(f) >= 2 && strings.EqualFold(f[0], "units") {
		if !strings.EqualFold(f[1], "LPS") {
			return p.errf("unsupported units %q (only LPS is supported)", f[1])
		}
	}
	return nil
}

// parseClock parses the clock-time formats EPANET emits — "H:MM",
// "H:MM:SS", plain (possibly fractional) hours, each with an optional
// "AM"/"PM" suffix (attached or space-separated) — into a duration.
func parseClock(s string) (time.Duration, error) {
	clock := strings.ToUpper(strings.TrimSpace(s))
	meridiem := ""
	for _, suf := range []string{"AM", "PM"} {
		if strings.HasSuffix(clock, suf) {
			meridiem = suf
			clock = strings.TrimSpace(strings.TrimSuffix(clock, suf))
			break
		}
	}
	var d time.Duration
	parts := strings.Split(clock, ":")
	switch len(parts) {
	case 1:
		hv, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || hv < 0 {
			return 0, fmt.Errorf("invalid clock time %q", s)
		}
		d = time.Duration(hv * float64(time.Hour))
	case 2, 3:
		units := [...]time.Duration{time.Hour, time.Minute, time.Second}
		for i, part := range parts {
			v, err := strconv.Atoi(part)
			if err != nil || v < 0 || (i > 0 && v >= 60) {
				return 0, fmt.Errorf("invalid clock time %q", s)
			}
			d += time.Duration(v) * units[i]
		}
	default:
		return 0, fmt.Errorf("invalid clock time %q", s)
	}
	if meridiem != "" {
		// 12-hour convention: 12 AM is midnight, 12 PM is noon.
		h := d / time.Hour
		if h < 1 || h > 12 {
			return 0, fmt.Errorf("invalid clock time %q", s)
		}
		if meridiem == "PM" && h != 12 {
			d += 12 * time.Hour
		}
		if meridiem == "AM" && h == 12 {
			d -= 12 * time.Hour
		}
	}
	return d, nil
}

func (p *inpParser) finish() error {
	for id, mult := range p.patternAccum {
		p.net.Patterns[id] = Pattern{ID: id, Multipliers: mult}
	}
	for _, pl := range p.pendingLinks {
		from, ok := p.net.NodeIndex(pl.from)
		if !ok {
			return &ParseINPError{Line: pl.line, Msg: fmt.Sprintf("link %q references unknown node %q", pl.link.ID, pl.from)}
		}
		to, ok := p.net.NodeIndex(pl.to)
		if !ok {
			return &ParseINPError{Line: pl.line, Msg: fmt.Sprintf("link %q references unknown node %q", pl.link.ID, pl.to)}
		}
		link := pl.link
		link.From, link.To = from, to
		if st, ok := p.statuses[link.ID]; ok {
			link.Status = st
		}
		if _, err := p.net.AddLink(link); err != nil {
			return &ParseINPError{Line: pl.line, Msg: err.Error()}
		}
	}
	for id, xy := range p.coords {
		if idx, ok := p.net.NodeIndex(id); ok {
			p.net.Nodes[idx].X = xy[0]
			p.net.Nodes[idx].Y = xy[1]
		}
	}
	return nil
}

// WriteINP serializes the network in the INP subset understood by ReadINP.
// ReadINP(WriteINP(n)) reproduces the network.
func WriteINP(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	p := func(format string, args ...interface{}) {
		fmt.Fprintf(bw, format, args...)
	}
	p("[TITLE]\n%s\n\n", n.Name)

	p("[JUNCTIONS]\n;ID Elevation Demand-LPS Pattern\n")
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		if nd.Type != Junction {
			continue
		}
		p("%s %.4f %.6f %s\n", nd.ID, nd.Elevation, nd.BaseDemand*1000, patternOrDash(nd.PatternID))
	}
	p("\n[RESERVOIRS]\n;ID Head\n")
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		if nd.Type == Reservoir {
			p("%s %.4f\n", nd.ID, nd.Elevation)
		}
	}
	p("\n[TANKS]\n;ID Elevation Init Min Max Diameter\n")
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		if nd.Type == Tank {
			p("%s %.4f %.4f %.4f %.4f %.4f\n", nd.ID, nd.Elevation, nd.InitLevel, nd.MinLevel, nd.MaxLevel, nd.TankDiameter)
		}
	}

	p("\n[PIPES]\n;ID Node1 Node2 Length Diameter-mm Roughness MinorLoss Status\n")
	for i := range n.Links {
		l := &n.Links[i]
		if l.Type != Pipe {
			continue
		}
		p("%s %s %s %.4f %.4f %.4f %.4f %s\n",
			l.ID, n.Nodes[l.From].ID, n.Nodes[l.To].ID,
			l.Length, l.Diameter*1000, l.Roughness, l.MinorLoss, statusWord(l.Status))
	}
	p("\n[PUMPS]\n;ID Node1 Node2 H0 v R v N v\n")
	for i := range n.Links {
		l := &n.Links[i]
		if l.Type != Pump {
			continue
		}
		p("%s %s %s H0 %.4f R %.4f N %.4f\n",
			l.ID, n.Nodes[l.From].ID, n.Nodes[l.To].ID, l.PumpH0, l.PumpR, l.PumpN)
	}
	p("\n[VALVES]\n;ID Node1 Node2 Diameter-mm Type Setting\n")
	for i := range n.Links {
		l := &n.Links[i]
		if l.Type != Valve {
			continue
		}
		p("%s %s %s %.4f TCV %.4f\n",
			l.ID, n.Nodes[l.From].ID, n.Nodes[l.To].ID, l.Diameter*1000, l.MinorLoss)
	}

	p("\n[STATUS]\n")
	for i := range n.Links {
		l := &n.Links[i]
		if l.Status == Closed {
			p("%s Closed\n", l.ID)
		}
	}

	p("\n[PATTERNS]\n")
	ids := make([]string, 0, len(n.Patterns))
	for id := range n.Patterns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		pat := n.Patterns[id]
		for start := 0; start < len(pat.Multipliers); start += 6 {
			end := start + 6
			if end > len(pat.Multipliers) {
				end = len(pat.Multipliers)
			}
			p("%s", id)
			for _, m := range pat.Multipliers[start:end] {
				p(" %.4f", m)
			}
			p("\n")
		}
	}

	p("\n[COORDINATES]\n;Node X Y\n")
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		p("%s %.4f %.4f\n", nd.ID, nd.X, nd.Y)
	}

	hours := int(n.PatternStep / time.Hour)
	minutes := int(n.PatternStep/time.Minute) % 60
	p("\n[TIMES]\nPATTERN TIMESTEP %d:%02d\n", hours, minutes)
	p("\n[OPTIONS]\nUNITS LPS\n\n[END]\n")
	return bw.Flush()
}

func patternOrDash(id string) string {
	if id == "" {
		return ";"
	}
	return id
}

func statusWord(s LinkStatus) string {
	if s == Closed {
		return "Closed"
	}
	return "Open"
}
