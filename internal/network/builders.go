package network

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Builders for the two evaluation networks used in the paper. The real
// EPA-NET example file and the WSSC service-area subzone are not
// redistributable, so these builders synthesize networks with exactly the
// element counts the paper reports (Fig. 5) and physically plausible
// geometry, elevations, demands and device curves:
//
//	EPA-NET:      96 nodes (91 junctions, 3 tanks, 2 reservoirs),
//	              118 pipes, 2 pumps, 1 valve
//	WSSC-SUBNET:  299 nodes (298 junctions, 1 reservoir),
//	              316 pipes, 2 valves
//
// Both builders are fully deterministic.

// diurnalPattern is a 24-hour residential demand pattern with morning and
// evening peaks, normalized to mean 1.0.
func diurnalPattern() []float64 {
	raw := []float64{
		0.55, 0.45, 0.40, 0.40, 0.45, 0.60, // 00:00 - 05:00
		0.95, 1.45, 1.60, 1.35, 1.15, 1.05, // 06:00 - 11:00
		1.00, 0.95, 0.90, 0.95, 1.05, 1.25, // 12:00 - 17:00
		1.50, 1.40, 1.20, 1.00, 0.80, 0.65, // 18:00 - 23:00
	}
	mean := 0.0
	for _, v := range raw {
		mean += v
	}
	mean /= float64(len(raw))
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = v / mean
	}
	return out
}

// unionFind supports Kruskal spanning-tree construction.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}

// gridEdge is a candidate pipe between two junction indices.
type gridEdge struct{ a, b int }

// selectPipes picks exactly want edges from candidates over n vertices such
// that the selection is connected: a shuffled spanning tree first, then
// shuffled loop closures. It panics if want is infeasible, which would be a
// programming error in the builders.
func selectPipes(rng *rand.Rand, n int, candidates []gridEdge, want int) []gridEdge {
	if want < n-1 || want > len(candidates) {
		panic(fmt.Sprintf("network: cannot select %d pipes from %d candidates over %d vertices",
			want, len(candidates), n))
	}
	shuffled := make([]gridEdge, len(candidates))
	copy(shuffled, candidates)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	uf := newUnionFind(n)
	selected := make([]gridEdge, 0, want)
	var leftovers []gridEdge
	for _, e := range shuffled {
		if uf.union(e.a, e.b) {
			selected = append(selected, e)
		} else {
			leftovers = append(leftovers, e)
		}
	}
	if len(selected) != n-1 {
		panic("network: candidate edge set is not connected")
	}
	for _, e := range leftovers {
		if len(selected) == want {
			break
		}
		selected = append(selected, e)
	}
	if len(selected) != want {
		panic("network: not enough loop candidates")
	}
	return selected
}

// standardDiameters are commercial pipe sizes in meters.
var standardDiameters = []float64{0.150, 0.200, 0.250, 0.300, 0.350, 0.400, 0.450, 0.500, 0.600, 0.750, 0.900}

// diameterForFlow picks the smallest standard diameter keeping velocity at
// or below the design velocity for the given flow.
func diameterForFlow(q, designVelocity float64) float64 {
	if q < 0 {
		q = -q
	}
	for _, d := range standardDiameters {
		area := math.Pi * d * d / 4
		if q <= designVelocity*area {
			return d
		}
	}
	return standardDiameters[len(standardDiameters)-1]
}

// designFlows estimates a design flow for every selected pipe by routing
// each junction's base demand up a BFS tree toward the nearest seed
// (source). Tree edges accumulate their whole subtree's demand; loop edges
// (not on the tree) get a nominal local flow. This mirrors how real
// distribution systems are sized: trunk mains near sources, small
// distribution pipes at the periphery.
func designFlows(n *Network, pipes []gridEdge, seeds []int) []float64 {
	adj := make(map[int][]int, len(n.Nodes)) // node → incident pipe indices
	for pi, e := range pipes {
		adj[e.a] = append(adj[e.a], pi)
		adj[e.b] = append(adj[e.b], pi)
	}
	parentEdge := make([]int, len(n.Nodes))
	depth := make([]int, len(n.Nodes))
	for i := range parentEdge {
		parentEdge[i] = -1
		depth[i] = -1
	}
	var order []int
	queue := make([]int, 0, len(n.Nodes))
	for _, s := range seeds {
		if depth[s] < 0 {
			depth[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, pi := range adj[u] {
			e := pipes[pi]
			v := e.a
			if v == u {
				v = e.b
			}
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				parentEdge[v] = pi
				queue = append(queue, v)
			}
		}
	}

	flow := make([]float64, len(pipes))
	subtree := make([]float64, len(n.Nodes))
	for i := range n.Nodes {
		if n.Nodes[i].Type == Junction {
			subtree[i] = n.Nodes[i].BaseDemand * 1.6 // peak factor
		}
	}
	// Deepest-first accumulation up the tree.
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		pe := parentEdge[u]
		if pe < 0 {
			continue
		}
		flow[pe] += subtree[u]
		e := pipes[pe]
		parent := e.a
		if parent == u {
			parent = e.b
		}
		subtree[parent] += subtree[u]
	}
	// Loop edges: nominal local distribution flow.
	for pi := range flow {
		if flow[pi] == 0 {
			flow[pi] = 0.004
		}
	}
	return flow
}

// BuildEPANet constructs the canonical EPA-NET evaluation network: 96 nodes
// (91 junctions laid out on a jittered 13×7 grid, 3 elevated tanks, 2
// source reservoirs), 118 pipes, 2 pumps and 1 valve. The network is
// deterministic and passes Validate.
func BuildEPANet() *Network {
	const (
		cols, rows = 13, 7
		spacingM   = 200.0
		seed       = 20170605 // fixed: networks must be reproducible
	)
	rng := rand.New(rand.NewSource(seed))
	n := New("EPA-NET")
	n.PatternStep = time.Hour
	n.Patterns["diurnal"] = Pattern{ID: "diurnal", Multipliers: diurnalPattern()}

	// Terrain: gentle slope with low-frequency undulation, 2–22 m.
	terrain := func(x, y float64) float64 {
		return 10 +
			6*math.Sin(x/900)*math.Cos(y/700) +
			4*math.Sin((x+y)/1200) +
			x/1500
	}

	// Junction grid.
	junc := make([]int, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := float64(c)*spacingM + (rng.Float64()-0.5)*40
			y := float64(r)*spacingM + (rng.Float64()-0.5)*40
			demand := (0.2 + rng.Float64()*1.1) / 1000.0 // 0.2 – 1.3 L/s
			idx, err := n.AddNode(Node{
				ID:         fmt.Sprintf("J%d", r*cols+c+1),
				Type:       Junction,
				Elevation:  terrain(x, y),
				X:          x,
				Y:          y,
				BaseDemand: demand,
				PatternID:  "diurnal",
			})
			if err != nil {
				panic(err) // unreachable: ids are unique by construction
			}
			junc = append(junc, idx)
		}
	}

	at := func(r, c int) int { return junc[r*cols+c] }

	// Candidate grid edges (horizontal + vertical neighbors).
	var candidates []gridEdge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				candidates = append(candidates, gridEdge{at(r, c), at(r, c+1)})
			}
			if r+1 < rows {
				candidates = append(candidates, gridEdge{at(r, c), at(r+1, c)})
			}
		}
	}

	// 115 grid pipes + 3 tank risers = 118 pipes.
	gridPipes := selectPipes(rng, cols*rows, candidates, 115)

	// Sources: two reservoirs on the west and east edges. The network is
	// pump-fed from low reservoirs (treatment-plant clearwells).
	westJ := at(rows/2, 0)
	eastJ := at(rows/2, cols-1)
	resWest, _ := n.AddNode(Node{
		ID: "RES-W", Type: Reservoir,
		Elevation: 8,
		X:         n.Nodes[westJ].X - 300, Y: n.Nodes[westJ].Y,
	})
	resEast, _ := n.AddNode(Node{
		ID: "RES-E", Type: Reservoir,
		Elevation: 6,
		X:         n.Nodes[eastJ].X + 300, Y: n.Nodes[eastJ].Y,
	})

	// Tanks: three elevated storage tanks spread across the grid. Their
	// fixed grade (elevation + level) floats near the pumped HGL so they
	// neither drain nor overflow over a day.
	tankSpots := []struct {
		r, c int
		id   string
	}{
		{1, 3, "TANK-1"}, {5, 6, "TANK-2"}, {2, 10, "TANK-3"},
	}
	tankIdx := make([]int, 0, len(tankSpots))
	tankJ := make([]int, 0, len(tankSpots))
	for _, ts := range tankSpots {
		j := at(ts.r, ts.c)
		idx, _ := n.AddNode(Node{
			ID:           ts.id,
			Type:         Tank,
			Elevation:    52,
			X:            n.Nodes[j].X + 80,
			Y:            n.Nodes[j].Y + 80,
			TankDiameter: 18,
			InitLevel:    4.0,
			MinLevel:     0.5,
			MaxLevel:     8.0,
		})
		tankIdx = append(tankIdx, idx)
		tankJ = append(tankJ, j)
	}

	// Size pipes by accumulated downstream demand from the supply points
	// (pump discharge junctions and tank connections).
	flows := designFlows(n, gridPipes, append([]int{westJ, eastJ}, tankJ...))

	pipeSeq := 0
	addPipe := func(a, b int, diam float64) {
		pipeSeq++
		length := n.Distance(a, b) * 1.1 // routing slack over plan distance
		if length < 10 {
			length = 10
		}
		if _, err := n.AddLink(Link{
			ID:        fmt.Sprintf("P%d", pipeSeq),
			Type:      Pipe,
			From:      a,
			To:        b,
			Length:    length,
			Diameter:  diam,
			Roughness: 95 + rng.Float64()*35, // Hazen-Williams C: aged cast iron to newer PVC
		}); err != nil {
			panic(err)
		}
	}

	for pi, e := range gridPipes {
		addPipe(e.a, e.b, diameterForFlow(flows[pi], 0.7))
	}
	for i, tIdx := range tankIdx {
		addPipe(tIdx, tankJ[i], 0.350)
	}

	// Pumps: reservoir → adjacent junction. Curve H = H0 − R·Q².
	// Sized so each pump carries about half the total demand (~0.03 m³/s)
	// at ~52 m of lift.
	addPump := func(id string, from, to int) {
		if _, err := n.AddLink(Link{
			ID: id, Type: Pump, From: from, To: to,
			PumpH0: 66, PumpR: 9000, PumpN: 2,
		}); err != nil {
			panic(err)
		}
	}
	addPump("PU-W", resWest, westJ)
	addPump("PU-E", resEast, eastJ)

	// Valve: an isolation valve between two central junctions.
	if _, err := n.AddLink(Link{
		ID: "V1", Type: Valve,
		From: at(3, 5), To: at(3, 6),
		Diameter: 0.300, MinorLoss: 2.5, Length: 5,
	}); err != nil {
		panic(err)
	}
	return n
}

// BuildWSSCSubnet constructs the WSSC-SUBNET evaluation network: 299 nodes
// (298 junctions, 1 source reservoir), 316 pipes and 2 valves. Topology is
// a mostly dendritic suburban layout (loop ratio matches the paper's
// 316 pipes over 299 nodes) fed by gravity from a high reservoir.
func BuildWSSCSubnet() *Network {
	const (
		cols, rows = 23, 13 // 299 grid sites; one becomes the reservoir
		spacingM   = 150.0
		seed       = 20170606
	)
	rng := rand.New(rand.NewSource(seed))
	n := New("WSSC-SUBNET")
	n.PatternStep = time.Hour
	n.Patterns["diurnal"] = Pattern{ID: "diurnal", Multipliers: diurnalPattern()}

	// Terrain: ridge at the reservoir corner sloping down across the zone,
	// 20–90 m, so gravity feed sustains positive pressures.
	terrain := func(x, y float64) float64 {
		dx := x - 0
		dy := y - 0
		dist := math.Hypot(dx, dy)
		return 78 - dist/75 + 5*math.Sin(x/600)*math.Cos(y/500)
	}

	total := cols * rows // 299
	// Site (0,0) is the reservoir; remaining 298 sites are junctions.
	ids := make([]int, total)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			site := r*cols + c
			x := float64(c)*spacingM + (rng.Float64()-0.5)*50
			y := float64(r)*spacingM + (rng.Float64()-0.5)*50
			if site == 0 {
				idx, _ := n.AddNode(Node{
					ID:        "SRC",
					Type:      Reservoir,
					Elevation: 105, // hilltop storage feeding the zone
					X:         x, Y: y,
				})
				ids[site] = idx
				continue
			}
			demand := (0.15 + rng.Float64()*0.85) / 1000.0 // 0.15 – 1.0 L/s
			idx, err := n.AddNode(Node{
				ID:         fmt.Sprintf("W%d", site),
				Type:       Junction,
				Elevation:  terrain(x, y),
				X:          x,
				Y:          y,
				BaseDemand: demand,
				PatternID:  "diurnal",
			})
			if err != nil {
				panic(err)
			}
			ids[site] = idx
		}
	}

	at := func(r, c int) int { return ids[r*cols+c] }
	var candidates []gridEdge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				candidates = append(candidates, gridEdge{at(r, c), at(r, c+1)})
			}
			if r+1 < rows {
				candidates = append(candidates, gridEdge{at(r, c), at(r+1, c)})
			}
		}
	}

	// 316 pipes over 299 nodes: spanning tree (298) + 18 loops. Mostly
	// dendritic, so sizing must follow accumulated downstream demand.
	pipes := selectPipes(rng, total, candidates, 316)
	flows := designFlows(n, pipes, []int{ids[0]})

	pipeSeq := 0
	for pi, e := range pipes {
		pipeSeq++
		length := n.Distance(e.a, e.b) * 1.15
		if length < 10 {
			length = 10
		}
		if _, err := n.AddLink(Link{
			ID:        fmt.Sprintf("WP%d", pipeSeq),
			Type:      Pipe,
			From:      e.a,
			To:        e.b,
			Length:    length,
			Diameter:  diameterForFlow(flows[pi], 0.6),
			Roughness: 85 + rng.Float64()*40,
		}); err != nil {
			panic(err)
		}
	}

	// Two isolation valves on central corridors.
	for i, spot := range []struct{ r1, c1, r2, c2 int }{
		{6, 7, 6, 8}, {4, 15, 5, 15},
	} {
		if _, err := n.AddLink(Link{
			ID:   fmt.Sprintf("WV%d", i+1),
			Type: Valve,
			From: at(spot.r1, spot.c1), To: at(spot.r2, spot.c2),
			Diameter: 0.250, MinorLoss: 2.0, Length: 5,
		}); err != nil {
			panic(err)
		}
	}
	return n
}

// BuildTestNet constructs a small 7-junction looped network with one
// gravity reservoir, suitable for fast unit tests of the hydraulic engine.
//
//	R ── J1 ── J2 ── J3
//	      │     │     │
//	     J4 ── J5 ── J6
//	                  │
//	                 J7
func BuildTestNet() *Network {
	n := New("TESTNET")
	n.PatternStep = time.Hour
	res, _ := n.AddNode(Node{ID: "R", Type: Reservoir, Elevation: 60, X: -500, Y: 0})
	coords := []struct{ x, y float64 }{
		{0, 0}, {500, 0}, {1000, 0},
		{0, -500}, {500, -500}, {1000, -500},
		{1000, -1000},
	}
	idx := make([]int, 7)
	for i, c := range coords {
		idx[i], _ = n.AddNode(Node{
			ID:         fmt.Sprintf("J%d", i+1),
			Type:       Junction,
			Elevation:  5 + float64(i),
			X:          c.x,
			Y:          c.y,
			BaseDemand: 0.005, // 5 L/s
		})
	}
	pipes := []struct {
		a, b int
		d    float64
	}{
		{0, 1, 0.400}, {1, 2, 0.300},
		{0, 3, 0.300}, {1, 4, 0.250}, {2, 5, 0.250},
		{3, 4, 0.250}, {4, 5, 0.250}, {5, 6, 0.200},
	}
	for i, p := range pipes {
		if _, err := n.AddLink(Link{
			ID:        fmt.Sprintf("P%d", i+1),
			Type:      Pipe,
			From:      idx[p.a],
			To:        idx[p.b],
			Length:    500,
			Diameter:  p.d,
			Roughness: 110,
		}); err != nil {
			panic(err)
		}
	}
	if _, err := n.AddLink(Link{
		ID: "PR", Type: Pipe, From: res, To: idx[0],
		Length: 500, Diameter: 0.500, Roughness: 120,
	}); err != nil {
		panic(err)
	}
	return n
}
