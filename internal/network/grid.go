package network

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// GridConfig parameterizes BuildGrid, the scaled synthetic benchmark
// family. The zero value of every field means "default"; a zero-value
// config is invalid only because Rows/Cols must be set.
type GridConfig struct {
	// Rows, Cols set the junction grid; Rows*Cols junctions total.
	// Both must be at least 2.
	Rows, Cols int

	// SpacingM is the grid pitch in meters. Zero means 150.
	SpacingM float64

	// LoopFraction adds extra loop-closing pipes beyond the spanning
	// tree, as a fraction of the junction count. Zero means 0.06 (the
	// mostly-dendritic suburban ratio of WSSC-SUBNET); negative means
	// a pure tree.
	LoopFraction float64

	// Sources is the number of gravity reservoirs feeding the zone,
	// spread evenly over the grid. Zero means one per ~600 junctions
	// (at least one) so trunk velocities stay physical at any scale.
	Sources int

	// Seed drives the deterministic layout jitter, demands, pipe
	// selection and roughness. Zero means 20260801.
	Seed int64
}

func (c GridConfig) withDefaults() GridConfig {
	if c.SpacingM <= 0 {
		c.SpacingM = 150
	}
	if c.LoopFraction == 0 {
		c.LoopFraction = 0.06
	}
	if c.LoopFraction < 0 {
		c.LoopFraction = 0
	}
	if c.Sources <= 0 {
		c.Sources = (c.Rows*c.Cols + 599) / 600
		if c.Sources < 1 {
			c.Sources = 1
		}
	}
	if c.Seed == 0 {
		c.Seed = 20260801
	}
	return c
}

// BuildGrid constructs a gravity-fed synthetic distribution network of
// Rows×Cols junctions — the scaled-up sibling of BuildWSSCSubnet, built
// from the same grid-candidate/spanning-tree/design-flow machinery. It
// exists to measure solver scaling at 1k–10k+ junctions, far beyond the
// paper's twins, so the layout favors hydraulic robustness: gentle
// terrain, demand-sized pipes, and enough sources that every junction
// holds comfortably positive pressure. Deterministic for a fixed config;
// panics on an invalid one (Rows/Cols < 2 or more sources than fit the
// grid), which is a programming error like the other builders'.
func BuildGrid(cfg GridConfig) *Network {
	cfg = cfg.withDefaults()
	rows, cols := cfg.Rows, cfg.Cols
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("network: BuildGrid needs Rows, Cols >= 2, got %dx%d", rows, cols))
	}
	total := rows * cols
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := New(fmt.Sprintf("GRID-%dx%d", rows, cols))
	n.PatternStep = time.Hour
	n.Patterns["diurnal"] = Pattern{ID: "diurnal", Multipliers: diurnalPattern()}

	// Terrain: low-frequency undulation, 8–20 m, so the 75 m source grade
	// dominates everywhere regardless of zone extent.
	terrain := func(x, y float64) float64 {
		return 14 + 6*math.Sin(x/900)*math.Cos(y/700)
	}

	junc := make([]int, total)
	totalDemand := 0.0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := float64(c)*cfg.SpacingM + (rng.Float64()-0.5)*40
			y := float64(r)*cfg.SpacingM + (rng.Float64()-0.5)*40
			demand := (0.15 + rng.Float64()*0.45) / 1000.0 // 0.15 – 0.6 L/s
			totalDemand += demand
			idx, err := n.AddNode(Node{
				ID:         fmt.Sprintf("G%d", r*cols+c+1),
				Type:       Junction,
				Elevation:  terrain(x, y),
				X:          x,
				Y:          y,
				BaseDemand: demand,
				PatternID:  "diurnal",
			})
			if err != nil {
				panic(err) // unreachable: ids are unique by construction
			}
			junc[r*cols+c] = idx
		}
	}
	at := func(r, c int) int { return junc[r*cols+c] }

	var candidates []gridEdge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				candidates = append(candidates, gridEdge{at(r, c), at(r, c+1)})
			}
			if r+1 < rows {
				candidates = append(candidates, gridEdge{at(r, c), at(r+1, c)})
			}
		}
	}
	want := total - 1 + int(cfg.LoopFraction*float64(total))
	if want > len(candidates) {
		want = len(candidates)
	}
	pipes := selectPipes(rng, total, candidates, want)

	// Sources: reservoirs at the centers of a ⌈√S⌉×⌈√S⌉ partition of the
	// grid, each feeding its neighborhood through a riser main.
	side := int(math.Ceil(math.Sqrt(float64(cfg.Sources))))
	srcJ := make([]int, 0, cfg.Sources)
	seen := make(map[int]bool, cfg.Sources)
	for i := 0; i < cfg.Sources; i++ {
		r := ((2*(i/side) + 1) * rows) / (2 * side)
		c := ((2*(i%side) + 1) * cols) / (2 * side)
		j := at(r, c)
		if seen[j] {
			panic(fmt.Sprintf("network: BuildGrid cannot place %d sources on a %dx%d grid", cfg.Sources, rows, cols))
		}
		seen[j] = true
		srcJ = append(srcJ, j)
	}
	flows := designFlows(n, pipes, srcJ)

	pipeSeq := 0
	for pi, e := range pipes {
		pipeSeq++
		length := n.Distance(e.a, e.b) * 1.1
		if length < 10 {
			length = 10
		}
		if _, err := n.AddLink(Link{
			ID:        fmt.Sprintf("GP%d", pipeSeq),
			Type:      Pipe,
			From:      e.a,
			To:        e.b,
			Length:    length,
			Diameter:  diameterForFlow(flows[pi], 0.7),
			Roughness: 90 + rng.Float64()*40,
		}); err != nil {
			panic(err)
		}
	}

	// Risers sized for an even share of peak demand at ~0.9 m/s.
	riserDiam := diameterForFlow(totalDemand*1.6/float64(cfg.Sources), 0.9)
	for i, j := range srcJ {
		idx, err := n.AddNode(Node{
			ID:        fmt.Sprintf("GSRC%d", i+1),
			Type:      Reservoir,
			Elevation: 75 + float64(i%3), // staggered so parallel zones don't idle
			X:         n.Nodes[j].X + 60,
			Y:         n.Nodes[j].Y + 60,
		})
		if err != nil {
			panic(err)
		}
		if _, err := n.AddLink(Link{
			ID:        fmt.Sprintf("GR%d", i+1),
			Type:      Pipe,
			From:      idx,
			To:        j,
			Length:    200,
			Diameter:  riserDiam,
			Roughness: 120,
		}); err != nil {
			panic(err)
		}
	}
	return n
}
