package network

import (
	"strings"
	"testing"
	"time"
)

func TestAddNodeDuplicate(t *testing.T) {
	n := New("t")
	if _, err := n.AddNode(Node{ID: "A", Type: Junction}); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if _, err := n.AddNode(Node{ID: "A", Type: Junction}); err == nil {
		t.Fatal("duplicate node id should error")
	}
	if _, err := n.AddNode(Node{Type: Junction}); err == nil {
		t.Fatal("empty node id should error")
	}
}

func TestAddLinkValidation(t *testing.T) {
	n := New("t")
	a, _ := n.AddNode(Node{ID: "A", Type: Junction})
	b, _ := n.AddNode(Node{ID: "B", Type: Junction})
	if _, err := n.AddLink(Link{ID: "L", Type: Pipe, From: a, To: b, Length: 1, Diameter: 0.1, Roughness: 100}); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if _, err := n.AddLink(Link{ID: "L", Type: Pipe, From: a, To: b}); err == nil {
		t.Fatal("duplicate link id should error")
	}
	if _, err := n.AddLink(Link{ID: "L2", Type: Pipe, From: a, To: a}); err == nil {
		t.Fatal("self-loop should error")
	}
	if _, err := n.AddLink(Link{ID: "L3", Type: Pipe, From: a, To: 99}); err == nil {
		t.Fatal("out-of-range endpoint should error")
	}
	// Default status becomes Open.
	idx, _ := n.LinkIndex("L")
	if n.Links[idx].Status != Open {
		t.Fatalf("default status = %v, want Open", n.Links[idx].Status)
	}
}

func TestPatternAt(t *testing.T) {
	p := Pattern{ID: "x", Multipliers: []float64{1, 2, 3}}
	step := time.Hour
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 1}, {30 * time.Minute, 1}, {time.Hour, 2}, {2 * time.Hour, 3},
		{3 * time.Hour, 1}, // wraps
	}
	for _, c := range cases {
		if got := p.At(c.t, step); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	empty := Pattern{}
	if empty.At(time.Hour, step) != 1.0 {
		t.Fatal("empty pattern should yield 1.0")
	}
	if p.At(time.Hour, 0) != 1.0 {
		t.Fatal("zero step should yield 1.0")
	}
}

func TestDemandAt(t *testing.T) {
	n := New("t")
	n.Patterns["pk"] = Pattern{ID: "pk", Multipliers: []float64{0.5, 2.0}}
	j, _ := n.AddNode(Node{ID: "J", Type: Junction, BaseDemand: 0.01, PatternID: "pk"})
	r, _ := n.AddNode(Node{ID: "R", Type: Reservoir})
	if got := n.DemandAt(j, 0); got != 0.005 {
		t.Fatalf("DemandAt(0) = %v, want 0.005", got)
	}
	if got := n.DemandAt(j, time.Hour); got != 0.02 {
		t.Fatalf("DemandAt(1h) = %v, want 0.02", got)
	}
	if got := n.DemandAt(r, 0); got != 0 {
		t.Fatalf("reservoir demand = %v, want 0", got)
	}
	// Unknown pattern id falls back to multiplier 1.
	j2, _ := n.AddNode(Node{ID: "J2", Type: Junction, BaseDemand: 0.01, PatternID: "nope"})
	if got := n.DemandAt(j2, 0); got != 0.01 {
		t.Fatalf("unknown pattern demand = %v, want 0.01", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := BuildTestNet()
	c := n.Clone()
	c.Nodes[1].BaseDemand = 42
	c.Links[0].Status = Closed
	if n.Nodes[1].BaseDemand == 42 {
		t.Fatal("Clone shares node storage")
	}
	if n.Links[0].Status == Closed {
		t.Fatal("Clone shares link storage")
	}
	if idx, ok := c.NodeIndex("J1"); !ok || c.Nodes[idx].ID != "J1" {
		t.Fatal("Clone lost node index")
	}
}

func TestBuildEPANetCounts(t *testing.T) {
	n := BuildEPANet()
	if got := len(n.Nodes); got != 96 {
		t.Fatalf("|V| = %d, want 96", got)
	}
	if got := n.PipeCount(); got != 118 {
		t.Fatalf("pipes = %d, want 118", got)
	}
	if got := n.PumpCount(); got != 2 {
		t.Fatalf("pumps = %d, want 2", got)
	}
	if got := n.ValveCount(); got != 1 {
		t.Fatalf("valves = %d, want 1", got)
	}
	if got := n.TankCount(); got != 3 {
		t.Fatalf("tanks = %d, want 3", got)
	}
	if got := n.ReservoirCount(); got != 2 {
		t.Fatalf("reservoirs = %d, want 2", got)
	}
	if got := n.JunctionCount(); got != 91 {
		t.Fatalf("junctions = %d, want 91", got)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildEPANetDeterministic(t *testing.T) {
	a, b := BuildEPANet(), BuildEPANet()
	if len(a.Nodes) != len(b.Nodes) || len(a.Links) != len(b.Links) {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs between builds", i)
		}
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs between builds", i)
		}
	}
}

func TestBuildWSSCSubnetCounts(t *testing.T) {
	n := BuildWSSCSubnet()
	if got := len(n.Nodes); got != 299 {
		t.Fatalf("|V| = %d, want 299", got)
	}
	if got := n.PipeCount(); got != 316 {
		t.Fatalf("pipes = %d, want 316", got)
	}
	if got := n.ValveCount(); got != 2 {
		t.Fatalf("valves = %d, want 2", got)
	}
	if got := n.ReservoirCount(); got != 1 {
		t.Fatalf("reservoirs = %d, want 1", got)
	}
	if got := n.PumpCount(); got != 0 {
		t.Fatalf("pumps = %d, want 0", got)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	// No source.
	n := New("bad")
	_, _ = n.AddNode(Node{ID: "J", Type: Junction})
	if err := n.Validate(); err != ErrNoSource {
		t.Fatalf("err = %v, want ErrNoSource", err)
	}

	// Disconnected junction.
	n = New("bad2")
	_, _ = n.AddNode(Node{ID: "R", Type: Reservoir})
	_, _ = n.AddNode(Node{ID: "J", Type: Junction})
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("err = %v, want disconnected", err)
	}

	// Bad pipe geometry.
	n = New("bad3")
	r, _ := n.AddNode(Node{ID: "R", Type: Reservoir})
	j, _ := n.AddNode(Node{ID: "J", Type: Junction})
	_, _ = n.AddLink(Link{ID: "P", Type: Pipe, From: r, To: j, Length: -5, Diameter: 0.1, Roughness: 100})
	if err := n.Validate(); err == nil {
		t.Fatal("negative pipe length should fail validation")
	}

	// Bad tank levels.
	n = New("bad4")
	_, _ = n.AddNode(Node{ID: "T", Type: Tank, TankDiameter: 10, MinLevel: 5, MaxLevel: 1, InitLevel: 3})
	if err := n.Validate(); err == nil {
		t.Fatal("inverted tank levels should fail validation")
	}

	// Unknown pattern reference.
	n = New("bad5")
	r, _ = n.AddNode(Node{ID: "R", Type: Reservoir})
	j, _ = n.AddNode(Node{ID: "J", Type: Junction, PatternID: "ghost"})
	_, _ = n.AddLink(Link{ID: "P", Type: Pipe, From: r, To: j, Length: 10, Diameter: 0.1, Roughness: 100})
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "pattern") {
		t.Fatalf("err = %v, want unknown-pattern error", err)
	}
}

func TestGraphExcludesClosedLinks(t *testing.T) {
	n := BuildTestNet()
	g := n.Graph()
	if !g.Connected() {
		t.Fatal("test net graph should be connected")
	}
	// Close the only reservoir pipe: graph splits.
	idx, ok := n.LinkIndex("PR")
	if !ok {
		t.Fatal("missing link PR")
	}
	n.Links[idx].Status = Closed
	if n.Graph().Connected() {
		t.Fatal("graph should be disconnected after closing PR")
	}
}

func TestTotalBaseDemand(t *testing.T) {
	n := BuildTestNet()
	want := 7 * 0.005
	if got := n.TotalBaseDemand(); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("TotalBaseDemand = %v, want %v", got, want)
	}
}

func TestJunctionIndices(t *testing.T) {
	n := BuildTestNet()
	idx := n.JunctionIndices()
	if len(idx) != 7 {
		t.Fatalf("len = %d, want 7", len(idx))
	}
	for _, i := range idx {
		if n.Nodes[i].Type != Junction {
			t.Fatalf("index %d is %v, not junction", i, n.Nodes[i].Type)
		}
	}
}

func TestBuildersSizeTrunksByDemand(t *testing.T) {
	// Pipes touching the supply points must be sized as trunk mains,
	// well above the smallest distribution size.
	for _, build := range []func() *Network{BuildEPANet, BuildWSSCSubnet} {
		n := build()
		largest := 0.0
		smallest := 1e9
		for i := range n.Links {
			l := &n.Links[i]
			if l.Type != Pipe {
				continue
			}
			if l.Diameter > largest {
				largest = l.Diameter
			}
			if l.Diameter < smallest {
				smallest = l.Diameter
			}
		}
		if largest < 2*smallest {
			t.Fatalf("%s: no trunk/distribution hierarchy: %v vs %v", n.Name, largest, smallest)
		}
	}
}

func TestBuildWSSCSubnetDeterministic(t *testing.T) {
	a, b := BuildWSSCSubnet(), BuildWSSCSubnet()
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs between builds", i)
		}
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs between builds", i)
		}
	}
}

func TestNetworksAreDistinct(t *testing.T) {
	// EPA-NET is pump-fed with tanks; WSSC is gravity-fed without.
	epa, wssc := BuildEPANet(), BuildWSSCSubnet()
	if epa.PumpCount() == 0 || epa.TankCount() == 0 {
		t.Fatal("EPA-NET must have pumps and tanks")
	}
	if wssc.PumpCount() != 0 || wssc.TankCount() != 0 {
		t.Fatal("WSSC-SUBNET must be gravity fed without tanks")
	}
	// WSSC is mostly dendritic: far fewer loops per node than EPA-NET.
	epaLoops := float64(len(epa.Links)-(len(epa.Nodes)-1)) / float64(len(epa.Nodes))
	wsscLoops := float64(len(wssc.Links)-(len(wssc.Nodes)-1)) / float64(len(wssc.Nodes))
	if wsscLoops >= epaLoops {
		t.Fatalf("WSSC loop density %v should be below EPA-NET's %v", wsscLoops, epaLoops)
	}
}
