package network

import (
	"errors"
	"fmt"
)

// Validation errors that callers may want to match.
var (
	// ErrNoSource indicates the network has no reservoir or tank, so the
	// hydraulic problem has no fixed-grade boundary and is unsolvable.
	ErrNoSource = errors.New("network: no reservoir or tank")

	// ErrDisconnected indicates some node cannot reach any fixed-grade
	// node through open links.
	ErrDisconnected = errors.New("network: disconnected from all sources")
)

// Validate checks structural and physical consistency: at least one source,
// full hydraulic connectivity through open links, positive pipe geometry,
// sane tank levels and non-negative demands. It returns the first problem
// found.
func (n *Network) Validate() error {
	if len(n.Nodes) == 0 {
		return errors.New("network: no nodes")
	}
	hasSource := false
	for i := range n.Nodes {
		node := &n.Nodes[i]
		switch node.Type {
		case Reservoir:
			hasSource = true
		case Tank:
			hasSource = true
			if node.TankDiameter <= 0 {
				return fmt.Errorf("network: tank %q has non-positive diameter %v", node.ID, node.TankDiameter)
			}
			if node.MaxLevel < node.MinLevel {
				return fmt.Errorf("network: tank %q has max level %v below min level %v",
					node.ID, node.MaxLevel, node.MinLevel)
			}
			if node.InitLevel < node.MinLevel || node.InitLevel > node.MaxLevel {
				return fmt.Errorf("network: tank %q initial level %v outside [%v, %v]",
					node.ID, node.InitLevel, node.MinLevel, node.MaxLevel)
			}
		case Junction:
			if node.BaseDemand < 0 {
				return fmt.Errorf("network: junction %q has negative base demand %v", node.ID, node.BaseDemand)
			}
		default:
			return fmt.Errorf("network: node %q has invalid type %v", node.ID, node.Type)
		}
	}
	if !hasSource {
		return ErrNoSource
	}

	for i := range n.Links {
		l := &n.Links[i]
		switch l.Type {
		case Pipe:
			if l.Length <= 0 {
				return fmt.Errorf("network: pipe %q has non-positive length %v", l.ID, l.Length)
			}
			if l.Diameter <= 0 {
				return fmt.Errorf("network: pipe %q has non-positive diameter %v", l.ID, l.Diameter)
			}
			if l.Roughness <= 0 {
				return fmt.Errorf("network: pipe %q has non-positive roughness %v", l.ID, l.Roughness)
			}
		case Pump:
			if l.PumpH0 <= 0 {
				return fmt.Errorf("network: pump %q has non-positive shutoff head %v", l.ID, l.PumpH0)
			}
			if l.PumpR < 0 || l.PumpN <= 0 {
				return fmt.Errorf("network: pump %q has invalid curve (R=%v, N=%v)", l.ID, l.PumpR, l.PumpN)
			}
		case Valve:
			if l.Diameter <= 0 {
				return fmt.Errorf("network: valve %q has non-positive diameter %v", l.ID, l.Diameter)
			}
		default:
			return fmt.Errorf("network: link %q has invalid type %v", l.ID, l.Type)
		}
	}

	// Hydraulic connectivity: every junction must reach a fixed-grade node
	// through open links.
	g := n.Graph()
	reached := make([]bool, len(n.Nodes))
	for i := range n.Nodes {
		if n.Nodes[i].Type == Junction {
			continue
		}
		for _, v := range g.BFSOrder(i) {
			reached[v] = true
		}
	}
	for i := range n.Nodes {
		if !reached[i] {
			return fmt.Errorf("node %q: %w", n.Nodes[i].ID, ErrDisconnected)
		}
	}

	// Demand patterns must exist.
	for i := range n.Nodes {
		node := &n.Nodes[i]
		if node.PatternID == "" {
			continue
		}
		if _, ok := n.Patterns[node.PatternID]; !ok {
			return fmt.Errorf("network: node %q references unknown pattern %q", node.ID, node.PatternID)
		}
	}
	return nil
}
