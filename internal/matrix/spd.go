package matrix

import "fmt"

// SPDSystem is a reusable symmetric positive-definite linear system
// A·x = b with a fixed structure: resolve assembly slots once, then per
// solve Reset, Add coefficients, Factorize, and Solve — all without
// allocating. The hydraulic Newton loop drives one of these per solver;
// both the dense and sparse backends implement it.
type SPDSystem interface {
	// N is the system dimension.
	N() int

	// Reset zeroes the assembled coefficients, keeping the structure.
	Reset()

	// DiagSlot returns the assembly slot for diagonal entry (i, i).
	DiagSlot(i int) int

	// PairSlot returns the single slot shared by the symmetric pair
	// (i, j)/(j, i), or -1 when the backend has no such entry. Resolve at
	// setup time; it may be more than O(1).
	PairSlot(i, j int) int

	// Add accumulates v into a resolved slot.
	Add(slot int, v float64)

	// Factorize recomputes the factorization from the assembled
	// coefficients. Allocation-free after construction.
	Factorize() error

	// Solve solves A·x = b into dst using the current factorization.
	// dst may alias b. Allocation-free.
	Solve(b, dst []float64) error

	// NNZ is the stored coefficient count (upper triangle + diagonal).
	NNZ() int

	// FactorNNZ is the factor's nonzero count; FactorNNZ−NNZ is fill-in.
	FactorNNZ() int
}

// DenseSPD implements SPDSystem over a dense matrix with the reusable
// Cholesky factorization. Assembly writes the upper triangle plus the
// diagonal; Factorize mirrors it to the lower triangle the factorization
// reads (O(n²) against the factorization's O(n³/6)).
type DenseSPD struct {
	n    int
	a    *Dense
	chol Cholesky
}

// NewDenseSPD builds an n×n dense SPD system.
func NewDenseSPD(n int) (*DenseSPD, error) {
	if n <= 0 {
		return nil, fmt.Errorf("matrix: DenseSPD of invalid dimension %d", n)
	}
	return &DenseSPD{n: n, a: NewDense(n, n)}, nil
}

// N returns the system dimension.
func (d *DenseSPD) N() int { return d.n }

// Reset zeroes the coefficient matrix.
func (d *DenseSPD) Reset() { d.a.Zero() }

// DiagSlot returns the slot of diagonal entry (i, i).
func (d *DenseSPD) DiagSlot(i int) int { return i*d.n + i }

// PairSlot returns the slot of the upper-triangle cell of the pair.
func (d *DenseSPD) PairSlot(i, j int) int {
	if i < 0 || j < 0 || i >= d.n || j >= d.n || i == j {
		return -1
	}
	if i > j {
		i, j = j, i
	}
	return i*d.n + j
}

// Add accumulates v into a resolved slot.
func (d *DenseSPD) Add(slot int, v float64) { d.a.data[slot] += v }

// Factorize mirrors the assembled upper triangle into the lower and
// recomputes the Cholesky factor in place.
func (d *DenseSPD) Factorize() error {
	n := d.n
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d.a.data[j*n+i] = d.a.data[i*n+j]
		}
	}
	return d.chol.Refactorize(d.a)
}

// Solve solves A·x = b into dst; dst may alias b.
func (d *DenseSPD) Solve(b, dst []float64) error { return d.chol.SolveTo(dst, b) }

// NNZ counts the dense upper triangle plus diagonal.
func (d *DenseSPD) NNZ() int { return d.n * (d.n + 1) / 2 }

// FactorNNZ counts the dense factor's lower triangle plus diagonal.
func (d *DenseSPD) FactorNNZ() int { return d.n * (d.n + 1) / 2 }
