package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 4.5)
	if got := m.At(1, 2); got != 4.5 {
		t.Fatalf("At(1,2) = %v, want 4.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 5.0 {
		t.Fatalf("after Add, At(1,2) = %v, want 5.0", got)
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5.0 {
		t.Fatalf("Row(1) = %v", row)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases original storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero did not clear elements")
	}
}

func TestNewDenseFrom(t *testing.T) {
	m, err := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewDenseFrom: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := NewDenseFrom([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged input should error")
	}
	if _, err := NewDenseFrom(nil); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
	dst := make([]float64, 2)
	y2 := m.MulVec([]float64{0, 1, 0}, dst)
	if &y2[0] != &dst[0] {
		t.Fatal("MulVec did not reuse dst")
	}
	if y2[0] != 2 || y2[1] != 5 {
		t.Fatalf("MulVec = %v, want [2 5]", y2)
	}
}

func TestTransposeMul(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	// aᵀ·a should be symmetric.
	ata := a.TransposeMul(a)
	want := [][]float64{{35, 44}, {44, 56}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if ata.At(i, j) != want[i][j] {
				t.Fatalf("AtA(%d,%d) = %v, want %v", i, j, ata.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{
		{4, 1, 0},
		{1, 5, 2},
		{0, 2, 6},
	})
	x, err := SolveSPD(a, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	// Verify A·x == b.
	b := a.MulVec(x, nil)
	for i, want := range []float64{1, 2, 3} {
		if !almostEqual(b[i], want, 1e-10) {
			t.Fatalf("residual at %d: got %v, want %v", i, b[i], want)
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("non-square Cholesky should error")
	}
}

func TestLUSolve(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{
		{0, 2, 1}, // zero pivot forces row exchange
		{1, 1, 1},
		{2, 0, 3},
	})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatalf("NewLU: %v", err)
	}
	x, err := lu.Solve([]float64{5, 6, 13})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	b := a.MulVec(x, nil)
	for i, want := range []float64{5, 6, 13} {
		if !almostEqual(b[i], want, 1e-10) {
			t.Fatalf("residual at %d: got %v, want %v", i, b[i], want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// TestCholeskyRandomSPD checks the property A·Solve(A, b) == b for random
// SPD matrices A = MᵀM + n·I.
func TestCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		a := m.TransposeMul(m)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)) // guarantee positive definiteness
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ax := a.MulVec(x, nil)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-8) {
				t.Fatalf("trial %d: residual %v at %d", trial, ax[i]-b[i], i)
			}
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v, want 32", Dot(a, b))
	}
	y := Clone(b)
	AxpY(2, a, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("AxpY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3 {
		t.Fatalf("Scale = %v", y)
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 failed")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("NormInf failed")
	}
	if Sum(a) != 6 || Mean(a) != 2 {
		t.Fatal("Sum/Mean failed")
	}
	if !almostEqual(Variance([]float64{1, 3}), 1, 1e-15) {
		t.Fatalf("Variance = %v, want 1", Variance([]float64{1, 3}))
	}
	if Variance([]float64{5}) != 0 || Mean(nil) != 0 || NormInf(nil) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := raw[:half], raw[half:half*2]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological inputs
			}
		}
		d1 := Dot(a, b)
		d2 := Dot(b, a)
		return almostEqual(d1, d2, 1e-6*(1+math.Abs(d1)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
