package matrix

import (
	"fmt"
	"math/rand"
	"testing"
)

// gridPattern returns the 4-neighbor pattern of a rows×cols grid — the
// sparsity shape of the water-network junction matrices.
func gridPattern(rows, cols int) (int, [][2]int) {
	n := rows * cols
	var pairs [][2]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				pairs = append(pairs, [2]int{v, v + 1})
			}
			if r+1 < rows {
				pairs = append(pairs, [2]int{v, v + cols})
			}
		}
	}
	return n, pairs
}

func benchmarkSPD(b *testing.B, mk func(n int, pairs [][2]int) SPDSystem, sizes [][2]int) {
	for _, sz := range sizes {
		n, pairs := gridPattern(sz[0], sz[1])
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sys := mk(n, pairs)
			rng := rand.New(rand.NewSource(1))
			ref := NewDense(n, n)
			assemble(rng, sys, ref, n, pairs)
			rhs := make([]float64, n)
			x := make([]float64, n)
			for i := range rhs {
				rhs[i] = rng.NormFloat64()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Factorize(); err != nil {
					b.Fatal(err)
				}
				if err := sys.Solve(rhs, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveDense measures one dense factorize+solve at water-network
// grid sizes (91 ≈ EPA-NET, 299 ≈ WSSC, 1024 = scaling grid).
func BenchmarkSolveDense(b *testing.B) {
	benchmarkSPD(b, func(n int, pairs [][2]int) SPDSystem {
		de, err := NewDenseSPD(n)
		if err != nil {
			b.Fatal(err)
		}
		return de
	}, [][2]int{{13, 7}, {23, 13}, {32, 32}})
}

// BenchmarkSolveSparse measures one sparse refactorize+solve on the same
// patterns, plus a size dense cannot reach interactively.
func BenchmarkSolveSparse(b *testing.B) {
	benchmarkSPD(b, func(n int, pairs [][2]int) SPDSystem {
		sp, err := NewSparseSPD(n, pairs)
		if err != nil {
			b.Fatal(err)
		}
		return sp
	}, [][2]int{{13, 7}, {23, 13}, {32, 32}, {64, 64}})
}
