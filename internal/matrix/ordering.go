package matrix

import "sort"

// ReverseCuthillMcKee computes a fill-reducing ordering for a symmetric
// sparsity pattern given as adjacency lists (adj[i] lists the neighbors of
// vertex i; self-loops and duplicates are tolerated and ignored). The
// returned perm places original vertex perm[k] at position k.
//
// The ordering is deterministic: each connected component is entered at its
// minimum-degree vertex (ties broken by lowest index), neighbors are
// enqueued in (degree, index) order, and the complete Cuthill-McKee order
// is reversed. RCM confines fill to a band around the diagonal, which for
// near-planar water-network graphs keeps the Cholesky factor within a
// small constant of the original pattern.
func ReverseCuthillMcKee(adj [][]int) []int {
	n := len(adj)
	degree := make([]int, n)
	for i, nbrs := range adj {
		d := 0
		for _, j := range nbrs {
			if j != i {
				d++
			}
		}
		degree[i] = d
	}

	order := make([]int, 0, n)
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	nbuf := make([]int, 0, 16)
	for {
		// Pick the unvisited vertex of minimum degree as the next
		// component's root.
		root := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (root < 0 || degree[i] < degree[root]) {
				root = i
			}
		}
		if root < 0 {
			break
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbuf = nbuf[:0]
			for _, w := range adj[v] {
				if w != v && !visited[w] {
					visited[w] = true
					nbuf = append(nbuf, w)
				}
			}
			sort.Slice(nbuf, func(a, b int) bool {
				if degree[nbuf[a]] != degree[nbuf[b]] {
					return degree[nbuf[a]] < degree[nbuf[b]]
				}
				return nbuf[a] < nbuf[b]
			})
			queue = append(queue, nbuf...)
		}
	}

	// Reverse Cuthill-McKee = the CM order backwards.
	perm := make([]int, n)
	for k, v := range order {
		perm[n-1-k] = v
	}
	return perm
}

// InversePermutation returns iperm with iperm[perm[k]] = k.
func InversePermutation(perm []int) []int {
	iperm := make([]int, len(perm))
	for k, v := range perm {
		iperm[v] = k
	}
	return iperm
}
