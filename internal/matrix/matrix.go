// Package matrix provides the linear-algebra primitives used by the
// hydraulic solver (Global Gradient Algorithm) and the machine-learning
// package (ridge regression, logistic regression).
//
// Two symmetric positive-definite backends live behind the SPDSystem
// interface: a dense Cholesky (row-major, simplest possible) and a sparse
// LDLᵀ with a fill-reducing reverse Cuthill-McKee ordering and a one-time
// symbolic factorization (see sparse.go). Both refactorize and solve
// without allocating, so a Newton loop can reuse one system across
// iterations. Dense storage is row-major throughout.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("matrix: matrix not positive definite")

// Dense is a dense row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of row slices. All rows must
// have equal length.
func NewDenseFrom(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("matrix: empty input")
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged input: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments the element at (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Zero resets all elements to zero, retaining the allocation.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec computes y = m·x. The result slice is freshly allocated unless dst
// is non-nil and has length m.Rows(), in which case dst is reused.
func (m *Dense) MulVec(x, dst []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch: %d vs %d", len(x), m.cols))
	}
	if dst == nil || len(dst) != m.rows {
		dst = make([]float64, m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// TransposeMul computes C = mᵀ·b where b has the same number of rows as m.
func (m *Dense) TransposeMul(b *Dense) *Dense {
	if m.rows != b.rows {
		panic(fmt.Sprintf("matrix: TransposeMul dimension mismatch: %d vs %d", m.rows, b.rows))
	}
	out := NewDense(m.cols, b.cols)
	for k := 0; k < m.rows; k++ {
		mr := m.data[k*m.cols : (k+1)*m.cols]
		br := b.data[k*b.cols : (k+1)*b.cols]
		for i, mv := range mr {
			if mv == 0 {
				continue
			}
			or := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range br {
				or[j] += mv * bv
			}
		}
	}
	return out
}

// Cholesky holds the lower-triangular Cholesky factor of a symmetric
// positive-definite matrix, A = L·Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full storage for simplicity)
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Dense) (*Cholesky, error) {
	c := &Cholesky{}
	if err := c.Refactorize(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Refactorize recomputes the factorization for a new a, reusing the factor
// buffer whenever the dimension matches: after the first call no memory is
// allocated, which keeps repeated Newton-iteration factorizations off the
// garbage collector. Only the lower triangle of a is read. On error the
// factor is invalid and must be refactorized before the next Solve.
func (c *Cholesky) Refactorize(a *Dense) error {
	if a.rows != a.cols {
		return fmt.Errorf("matrix: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	if c.n != n || len(c.l) != n*n {
		c.n = n
		c.l = make([]float64, n*n)
	}
	l := c.l
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return ErrNotPositiveDefinite
				}
				l[i*n+j] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b into a fresh slice and returns x.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.n)
	if err := c.SolveTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTo solves A·x = b into dst without allocating. dst and b must have
// length n; dst may alias b.
func (c *Cholesky) SolveTo(dst, b []float64) error {
	if len(b) != c.n || len(dst) != c.n {
		return fmt.Errorf("matrix: Cholesky solve dimension mismatch: %d/%d vs %d", len(dst), len(b), c.n)
	}
	n := c.n
	x := dst
	copy(x, b)
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			x[i] -= c.l[i*n+k] * x[k]
		}
		x[i] /= c.l[i*n+i]
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= c.l[k*n+i] * x[k]
		}
		x[i] /= c.l[i*n+i]
	}
	return nil
}

// SolveSPD factorizes the symmetric positive-definite matrix a and solves
// a·x = b. Convenience wrapper for single-shot solves.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b)
}

// LU holds an LU factorization with partial pivoting.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// NewLU factorizes a general square matrix with partial pivoting.
func NewLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: LU of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	lu := make([]float64, n*n)
	copy(lu, a.data)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	f := &LU{n: n, lu: lu, piv: piv, sign: 1}
	for col := 0; col < n; col++ {
		// Pivot search.
		p := col
		maxAbs := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu[r*n+col]); a > maxAbs {
				maxAbs, p = a, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			for k := 0; k < n; k++ {
				lu[p*n+k], lu[col*n+k] = lu[col*n+k], lu[p*n+k]
			}
			piv[p], piv[col] = piv[col], piv[p]
			f.sign = -f.sign
		}
		inv := 1 / lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := lu[r*n+col] * inv
			lu[r*n+col] = m
			if m == 0 {
				continue
			}
			for k := col + 1; k < n; k++ {
				lu[r*n+k] -= m * lu[col*n+k]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("matrix: LU solve dimension mismatch: %d vs %d", len(b), f.n)
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			x[i] -= f.lu[i*n+k] * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= f.lu[i*n+k] * x[k]
		}
		x[i] /= f.lu[i*n+i]
	}
	return x, nil
}
