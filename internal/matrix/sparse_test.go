package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// randomPattern returns a connected random sparsity pattern on n vertices:
// a path (guaranteeing connectivity) plus extra random edges.
func randomPattern(rng *rand.Rand, n, extra int) [][2]int {
	var pairs [][2]int
	for i := 1; i < n; i++ {
		pairs = append(pairs, [2]int{i - 1, i})
	}
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// assemble fills sys and a dense reference with the same diagonally
// dominant SPD coefficients: negative off-diagonals (the hydraulic GGA
// shape) and diagonals exceeding the absolute row sums.
func assemble(rng *rand.Rand, sys SPDSystem, ref *Dense, n int, pairs [][2]int) {
	sys.Reset()
	ref.Zero()
	rowSum := make([]float64, n)
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		v := -(0.1 + rng.Float64())
		sys.Add(sys.PairSlot(i, j), v)
		ref.Add(i, j, v)
		ref.Add(j, i, v)
		rowSum[i] += -v
		rowSum[j] += -v
	}
	for i := 0; i < n; i++ {
		v := rowSum[i] + 0.5 + rng.Float64()
		sys.Add(sys.DiagSlot(i), v)
		ref.Add(i, i, v)
	}
}

// TestSparseMatchesDenseRandom is the backend property test: on random
// connected SPD systems the sparse and dense SPDSystem solutions agree
// with each other and with the reference dense solve to 1e-10.
func TestSparseMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		pairs := randomPattern(rng, n, rng.Intn(2*n))
		sp, err := NewSparseSPD(n, pairs)
		if err != nil {
			t.Fatalf("trial %d: NewSparseSPD: %v", trial, err)
		}
		de, err := NewDenseSPD(n)
		if err != nil {
			t.Fatalf("trial %d: NewDenseSPD: %v", trial, err)
		}
		ref := NewDense(n, n)

		// Assemble identical coefficients into all three via one value
		// stream per system (same seed → same values).
		valueSeed := rng.Int63()
		assemble(rand.New(rand.NewSource(valueSeed)), sp, ref, n, pairs)
		ref2 := NewDense(n, n)
		assemble(rand.New(rand.NewSource(valueSeed)), de, ref2, n, pairs)

		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := SolveSPD(ref, b)
		if err != nil {
			t.Fatalf("trial %d: reference solve: %v", trial, err)
		}
		for name, sys := range map[string]SPDSystem{"sparse": sp, "dense": de} {
			if err := sys.Factorize(); err != nil {
				t.Fatalf("trial %d: %s Factorize: %v", trial, name, err)
			}
			x := make([]float64, n)
			if err := sys.Solve(b, x); err != nil {
				t.Fatalf("trial %d: %s Solve: %v", trial, name, err)
			}
			for i := range x {
				if math.Abs(x[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
					t.Fatalf("trial %d: %s x[%d] = %v, want %v", trial, name, i, x[i], want[i])
				}
			}
		}
	}
}

// TestSparseRefactorizeReuses checks that a second assembly+factorization
// on the same pattern produces correct results (the Newton-loop usage).
func TestSparseRefactorizeReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	pairs := randomPattern(rng, n, n)
	sp, err := NewSparseSPD(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewDense(n, n)
	b := make([]float64, n)
	for round := 0; round < 3; round++ {
		assemble(rng, sp, ref, n, pairs)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		if err := sp.Factorize(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		x := make([]float64, n)
		if err := sp.Solve(b, x); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, err := SolveSPD(ref, b)
		if err != nil {
			t.Fatalf("round %d: reference: %v", round, err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("round %d: x[%d] = %v, want %v", round, i, x[i], want[i])
			}
		}
	}
}

// TestRCMPermutationRoundTrip checks that the ordering is a genuine
// permutation covering every vertex (including disconnected components)
// and that InversePermutation inverts it.
func TestRCMPermutationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		adj := make([][]int, n)
		for k := 0; k < n; k++ { // random edges; components may split
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
		perm := ReverseCuthillMcKee(adj)
		if len(perm) != n {
			t.Fatalf("trial %d: len(perm) = %d, want %d", trial, len(perm), n)
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("trial %d: perm %v is not a permutation", trial, perm)
			}
			seen[v] = true
		}
		iperm := InversePermutation(perm)
		for k, v := range perm {
			if iperm[v] != k {
				t.Fatalf("trial %d: iperm[perm[%d]] = %d", trial, k, iperm[v])
			}
		}
	}
}

// TestRCMDeterministic pins that the ordering depends only on the pattern.
func TestRCMDeterministic(t *testing.T) {
	adj := [][]int{{1, 2}, {0, 3}, {0, 3}, {1, 2, 4}, {3}}
	p1 := ReverseCuthillMcKee(adj)
	p2 := ReverseCuthillMcKee(adj)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("orders differ: %v vs %v", p1, p2)
		}
	}
}

func TestSparseSlots(t *testing.T) {
	sp, err := NewSparseSPD(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 0}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric access and duplicate pairs resolve to one slot.
	if sp.PairSlot(0, 1) != sp.PairSlot(1, 0) {
		t.Fatal("PairSlot not symmetric")
	}
	if sp.PairSlot(0, 1) < 0 || sp.PairSlot(1, 2) < 0 {
		t.Fatal("pattern pair missing")
	}
	if sp.PairSlot(0, 3) != -1 {
		t.Fatal("absent pair should resolve to -1")
	}
	if sp.PairSlot(2, 2) != -1 {
		t.Fatal("diagonal must use DiagSlot")
	}
	slots := map[int]bool{}
	for i := 0; i < 4; i++ {
		s := sp.DiagSlot(i)
		if s < 0 || s >= sp.NNZ() || slots[s] {
			t.Fatalf("DiagSlot(%d) = %d invalid or duplicated", i, s)
		}
		slots[s] = true
	}
	if sp.NNZ() != 4+3 { // 4 diagonals + 3 unique off-diagonal pairs
		t.Fatalf("NNZ = %d, want 7", sp.NNZ())
	}
	if sp.FactorNNZ() < sp.NNZ() {
		t.Fatalf("FactorNNZ %d < NNZ %d", sp.FactorNNZ(), sp.NNZ())
	}
}

// TestSparsePathNoFill: a path graph is tridiagonal; RCM keeps it banded,
// so elimination introduces no fill at all.
func TestSparsePathNoFill(t *testing.T) {
	n := 50
	sp, err := NewSparseSPD(n, randomPattern(rand.New(rand.NewSource(1)), n, 0))
	if err != nil {
		t.Fatal(err)
	}
	if sp.FactorNNZ() != sp.NNZ() {
		t.Fatalf("path graph fill: FactorNNZ %d != NNZ %d", sp.FactorNNZ(), sp.NNZ())
	}
}

func TestSparseNotPositiveDefinite(t *testing.T) {
	sp, err := NewSparseSPD(2, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	sp.Add(sp.DiagSlot(0), 1)
	sp.Add(sp.DiagSlot(1), 1)
	sp.Add(sp.PairSlot(0, 1), 2) // eigenvalues 3, -1
	if err := sp.Factorize(); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestSparseBadInputs(t *testing.T) {
	if _, err := NewSparseSPD(0, nil); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewSparseSPD(3, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range pair should error")
	}
	sp, _ := NewSparseSPD(2, [][2]int{{0, 1}})
	if err := sp.Solve(make([]float64, 3), make([]float64, 2)); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestCholeskyRefactorizeMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var c Cholesky
	for trial := 0; trial < 5; trial++ {
		n := 5 + rng.Intn(20)
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		a := m.TransposeMul(m)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		if err := c.Refactorize(a); err != nil {
			t.Fatalf("trial %d: Refactorize: %v", trial, err)
		}
		fresh, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: NewCholesky: %v", trial, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		if err := c.SolveTo(x, b); err != nil {
			t.Fatalf("trial %d: SolveTo: %v", trial, err)
		}
		want, err := fresh.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("trial %d: reused factor diverges at %d: %v vs %v", trial, i, x[i], want[i])
			}
		}
	}
}

// allocSystem prepares a factorize/solve closure for allocation counting.
func allocSystem(t *testing.T, sys SPDSystem, n int, pairs [][2]int) func() {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	ref := NewDense(n, n)
	assemble(rng, sys, ref, n, pairs)
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return func() {
		if err := sys.Factorize(); err != nil {
			t.Fatal(err)
		}
		if err := sys.Solve(b, x); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSPDSystemsAllocationFree verifies the per-iteration contract: once a
// system is constructed, refactorize + solve allocate nothing.
func TestSPDSystemsAllocationFree(t *testing.T) {
	n := 64
	pairs := randomPattern(rand.New(rand.NewSource(2)), n, n)
	sp, err := NewSparseSPD(n, pairs)
	if err != nil {
		t.Fatal(err)
	}
	de, err := NewDenseSPD(n)
	if err != nil {
		t.Fatal(err)
	}
	for name, sys := range map[string]SPDSystem{"sparse": sp, "dense": de} {
		fn := allocSystem(t, sys, n, pairs)
		fn() // warm up (dense factor buffer allocates on first use)
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Fatalf("%s: %v allocations per factorize+solve, want 0", name, allocs)
		}
	}
}
